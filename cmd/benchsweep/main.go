// Command benchsweep times the full Table 2 measurement grid — five
// policies × ten seeds of the 60-second MPEG workload — through the public
// Sweep API at a ladder of worker counts (1, 2, 4, NumCPU, plus -workers
// if it names another count), verifies every merge against the serial
// baseline, and records per-count throughput to a JSON file for the
// repo's benchmark history.
//
// Usage:
//
//	benchsweep                     # BENCH_sweep.json, 1/2/4/NumCPU ladder
//	benchsweep -workers 8 -out BENCH_sweep.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sort"
	"time"

	"clocksched"
)

// run is one timed leg of the ladder.
type run struct {
	Workers     int     `json:"workers"`
	Seconds     float64 `json:"seconds"`
	CellsPerSec float64 `json:"cells_per_sec"`
	Speedup     float64 `json:"speedup"`
	Identical   bool    `json:"identical"`
}

// report is the schema of BENCH_sweep.json.
type report struct {
	Grid          string  `json:"grid"`
	Cells         int     `json:"cells"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	NumCPU        int     `json:"num_cpu"`
	SerialSeconds float64 `json:"serial_seconds"`
	Runs          []run   `json:"runs"`
}

func table2Config(workers int) clocksched.SweepConfig {
	best := clocksched.PASTPegPeg()
	bestVS := clocksched.PASTPegPeg()
	bestVS.VoltageScale = true
	seeds := make([]uint64, 10)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return clocksched.SweepConfig{
		Workloads: []clocksched.Workload{clocksched.MPEG},
		Policies: []clocksched.Policy{
			clocksched.ConstantPolicy(206.4, false),
			clocksched.ConstantPolicy(132.7, false),
			clocksched.ConstantPolicy(132.7, true),
			best,
			bestVS,
		},
		Seeds:    seeds,
		Workers:  workers,
		FailFast: true,
	}
}

// ladder is the deduplicated, ascending worker-count schedule.
func ladder(extra int) []int {
	counts := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	if extra > 0 {
		counts[extra] = true
	}
	var out []int
	for w := range counts {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

func main() {
	var (
		out         = flag.String("out", "BENCH_sweep.json", "report file")
		workers     = flag.Int("workers", 0, "extra worker count added to the 1/2/4/NumCPU ladder (0 adds none)")
		cache       = flag.String("cache", "", "cell cache directory for the final ladder leg (empty disables)")
		journal     = flag.String("journal", "", "durable cell journal for the final ladder leg (needs -cache)")
		resume      = flag.Bool("resume", false, "replay cells already committed to -journal")
		cellTimeout = flag.Duration("cell-timeout", 0,
			"wall-clock budget per cell attempt on the ladder legs (0 disables)")
		retries = flag.Int("retries", 0,
			"per-cell retry budget for transient failures on the ladder legs")
		progress = flag.Bool("progress", false,
			"print per-cell completion counts; resumed runs start at the replayed count")
	)
	flag.Parse()

	start := time.Now()
	serial, err := clocksched.Sweep(context.Background(), table2Config(1))
	serialTime := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep: serial:", err)
		os.Exit(1)
	}

	counts := ladder(*workers)
	r := report{
		Grid:          "table2: 5 policies x 10 seeds, MPEG 60s",
		Cells:         len(serial.Cells),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		SerialSeconds: serialTime.Seconds(),
	}
	ok := true
	for i, w := range counts {
		cfg := table2Config(w)
		cfg.CellTimeout = *cellTimeout
		cfg.Retries = *retries
		// The durability knobs attach to the final (widest) leg only, so a
		// resumed journal replays into one timing instead of smearing every
		// leg with cached cells.
		if i == len(counts)-1 {
			if *cache != "" {
				c, err := clocksched.NewSweepCache(0, *cache)
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchsweep: cache:", err)
					os.Exit(1)
				}
				cfg.Cache = c
			}
			cfg.Journal = *journal
			cfg.Resume = *resume
		}
		if *progress {
			cfg.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "benchsweep: %d workers: cell %d/%d\n", w, done, total)
			}
		}
		legStart := time.Now()
		res, err := clocksched.Sweep(context.Background(), cfg)
		legTime := time.Since(legStart)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsweep: %d workers: %v\n", w, err)
			os.Exit(1)
		}
		identical := len(serial.Cells) == len(res.Cells)
		for i := range serial.Cells {
			if !identical {
				break
			}
			identical = reflect.DeepEqual(serial.Cells[i].Result, res.Cells[i].Result)
		}
		ok = ok && identical
		leg := run{
			Workers:   w,
			Seconds:   legTime.Seconds(),
			Identical: identical,
		}
		if legTime > 0 {
			leg.CellsPerSec = float64(len(res.Cells)) / legTime.Seconds()
			leg.Speedup = serialTime.Seconds() / legTime.Seconds()
		}
		r.Runs = append(r.Runs, leg)
		fmt.Printf("%d cells, %d workers: %.3fs (%.1f cells/s, %.2fx), identical=%v\n",
			len(res.Cells), w, leg.Seconds, leg.CellsPerSec, leg.Speedup, identical)
	}

	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
	fmt.Printf("serial %.3fs, %d ladder legs -> %s\n", r.SerialSeconds, len(r.Runs), *out)
	if !ok {
		fmt.Fprintln(os.Stderr, "benchsweep: a ladder leg diverged from the serial baseline")
		os.Exit(1)
	}
}
