// Command benchsweep times the full Table 2 measurement grid — five
// policies × ten seeds of the 60-second MPEG workload — through the public
// Sweep API, first serially and then across the worker pool, verifies the
// two merges produced identical results, and records the wall times to a
// JSON file for the repo's benchmark history.
//
// Usage:
//
//	benchsweep                     # BENCH_sweep.json, GOMAXPROCS workers
//	benchsweep -workers 4 -out BENCH_sweep.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"clocksched"
)

// report is the schema of BENCH_sweep.json.
type report struct {
	Grid            string  `json:"grid"`
	Cells           int     `json:"cells"`
	Workers         int     `json:"workers"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	NumCPU          int     `json:"num_cpu"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	Identical       bool    `json:"identical"`
}

func table2Config(workers int) clocksched.SweepConfig {
	best := clocksched.PASTPegPeg()
	bestVS := clocksched.PASTPegPeg()
	bestVS.VoltageScale = true
	seeds := make([]uint64, 10)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return clocksched.SweepConfig{
		Workloads: []clocksched.Workload{clocksched.MPEG},
		Policies: []clocksched.Policy{
			clocksched.ConstantPolicy(206.4, false),
			clocksched.ConstantPolicy(132.7, false),
			clocksched.ConstantPolicy(132.7, true),
			best,
			bestVS,
		},
		Seeds:    seeds,
		Workers:  workers,
		FailFast: true,
	}
}

func run(workers int) (*clocksched.SweepResult, time.Duration, error) {
	start := time.Now()
	res, err := clocksched.Sweep(context.Background(), table2Config(workers))
	return res, time.Since(start), err
}

func main() {
	var (
		out         = flag.String("out", "BENCH_sweep.json", "report file")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel worker count")
		cache       = flag.String("cache", "", "cell cache directory for the parallel leg (empty disables)")
		journal     = flag.String("journal", "", "durable cell journal for the parallel leg (needs -cache)")
		resume      = flag.Bool("resume", false, "replay cells already committed to -journal")
		cellTimeout = flag.Duration("cell-timeout", 0,
			"wall-clock budget per cell attempt on the parallel leg (0 disables)")
		retries = flag.Int("retries", 0,
			"per-cell retry budget for transient failures on the parallel leg")
		progress = flag.Bool("progress", false,
			"print per-cell completion counts for the parallel leg; resumed runs start at the replayed count")
	)
	flag.Parse()

	serial, serialTime, err := run(1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep: serial:", err)
		os.Exit(1)
	}
	// The durability knobs exercise only the parallel leg, so the serial
	// baseline stays the seed-identical reference the merge is checked
	// against.
	pcfg := table2Config(*workers)
	if *cache != "" {
		c, err := clocksched.NewSweepCache(0, *cache)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsweep: cache:", err)
			os.Exit(1)
		}
		pcfg.Cache = c
	}
	pcfg.Journal = *journal
	pcfg.Resume = *resume
	pcfg.CellTimeout = *cellTimeout
	pcfg.Retries = *retries
	if *progress {
		pcfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "benchsweep: cell %d/%d\n", done, total)
		}
	}
	start := time.Now()
	parallel, err := clocksched.Sweep(context.Background(), pcfg)
	parallelTime := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep: parallel:", err)
		os.Exit(1)
	}

	identical := len(serial.Cells) == len(parallel.Cells)
	for i := range serial.Cells {
		if !identical {
			break
		}
		identical = reflect.DeepEqual(serial.Cells[i].Result, parallel.Cells[i].Result)
	}

	r := report{
		Grid:            "table2: 5 policies x 10 seeds, MPEG 60s",
		Cells:           len(serial.Cells),
		Workers:         *workers,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		SerialSeconds:   serialTime.Seconds(),
		ParallelSeconds: parallelTime.Seconds(),
		Identical:       identical,
	}
	if parallelTime > 0 {
		r.Speedup = serialTime.Seconds() / parallelTime.Seconds()
	}

	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
	fmt.Printf("%d cells: serial %.3fs, %d workers %.3fs (%.2fx), identical=%v -> %s\n",
		r.Cells, r.SerialSeconds, r.Workers, r.ParallelSeconds, r.Speedup, identical, *out)
	if !identical {
		fmt.Fprintln(os.Stderr, "benchsweep: parallel merge diverged from serial")
		os.Exit(1)
	}
}
