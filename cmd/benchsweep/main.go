// Command benchsweep times the full Table 2 measurement grid — five
// policies × ten seeds of the 60-second MPEG workload — through the public
// Sweep API at a ladder of worker counts (1, 2, 4, NumCPU, plus -workers
// if it names another count), verifies every merge against the serial
// baseline, and records per-count throughput to a JSON file for the
// repo's benchmark history.
//
// Every leg records the GOMAXPROCS and CPU count it actually ran with, and
// a single-CPU host cannot publish multi-worker "speedups": those legs are
// annotated as concurrency-overhead measurements and any apparent speedup
// on one CPU fails the run rather than entering the benchmark history.
//
// Usage:
//
//	benchsweep                     # BENCH_sweep.json, 1/2/4/NumCPU ladder
//	benchsweep -workers 8 -out BENCH_sweep.json
//	benchsweep -guard              # serial-only regression check against
//	                               # the committed BENCH_sweep.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"sort"
	"time"

	"clocksched"
	"clocksched/internal/fabric"
	"clocksched/internal/fleet"
	"clocksched/internal/service"
)

// fabricLeg times the reference grid through the fabric coordinator over n
// in-process sweepd peers — real HTTP dispatch over loopback, leases,
// merge — and verifies the merged cells against the serial baseline.
func fabricLeg(n int, serial *clocksched.SweepResult, serialTime time.Duration) (run, error) {
	workers := max(1, runtime.NumCPU()/n)
	var urls []string
	for i := 0; i < n; i++ {
		dir, err := os.MkdirTemp("", "benchsweep-peer-*")
		if err != nil {
			return run{}, err
		}
		defer os.RemoveAll(dir)
		s, err := service.New(service.Config{DataDir: dir, Workers: workers, MaxActiveJobs: 2})
		if err != nil {
			return run{}, err
		}
		hs := httptest.NewServer(s)
		defer hs.Close()
		defer s.Close()
		urls = append(urls, hs.URL)
	}
	coordDir, err := os.MkdirTemp("", "benchsweep-coord-*")
	if err != nil {
		return run{}, err
	}
	defer os.RemoveAll(coordDir)
	co, err := fabric.New(fabric.Config{Peers: urls, Dir: coordDir, LocalWorkers: workers})
	if err != nil {
		return run{}, err
	}

	start := time.Now()
	res, err := co.Run(context.Background(), clocksched.NewSweepSpec(table2Config(0)))
	legTime := time.Since(start)
	if err != nil {
		return run{}, err
	}
	identical := len(serial.Cells) == len(res.Cells)
	for i := range serial.Cells {
		if !identical {
			break
		}
		identical = reflect.DeepEqual(serial.Cells[i].Result, res.Cells[i].Result)
	}
	leg := run{
		Workers:     n * workers,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Seconds:     legTime.Seconds(),
		Identical:   identical,
		FabricPeers: n,
	}
	if legTime > 0 {
		leg.CellsPerSec = float64(len(res.Cells)) / legTime.Seconds()
		leg.Speedup = serialTime.Seconds() / legTime.Seconds()
	}
	return leg, nil
}

// fleetSpec is the population the fleet leg times: a fixed-seed 500-device
// default mix under the best adaptive policy, the deadline scheduler, and a
// pinned 59 MHz constant — the last guaranteeing the feasibility pre-pass
// has real skips to price.
func fleetSpec() (fleet.Spec, error) {
	spec := fleet.NewSpec(500, 7)
	spec.Duration = clocksched.Duration(2 * time.Second)
	spec.ArrivalSpread = clocksched.Duration(500 * time.Millisecond)
	for _, ref := range []struct {
		name   string
		params map[string]float64
	}{
		{"past-peg-peg", nil},
		{"deadline", nil},
		{"constant", map[string]float64{"mhz": 59, "low_voltage": 1}},
	} {
		p, err := clocksched.NewPolicy(ref.name, ref.params)
		if err != nil {
			return fleet.Spec{}, err
		}
		spec.Policies = append(spec.Policies, p)
	}
	return spec, nil
}

// fleetLeg compiles the fleet population once, times it through the fleet
// engine serially and again at NumCPU workers, verifies the two population
// summaries are byte-identical, and records devices/sec plus the
// feasibility-skip rate of the pre-pass.
func fleetLeg() (run, error) {
	spec, err := fleetSpec()
	if err != nil {
		return run{}, err
	}
	plan, err := spec.Compile()
	if err != nil {
		return run{}, err
	}
	pairings := spec.Devices * len(spec.Policies)

	start := time.Now()
	serial, err := fleet.RunPlan(context.Background(), plan, fleet.RunConfig{Workers: 1})
	legTime := time.Since(start)
	if err != nil {
		return run{}, err
	}
	par, err := fleet.RunPlan(context.Background(), plan, fleet.RunConfig{Workers: runtime.NumCPU()})
	if err != nil {
		return run{}, err
	}

	leg := run{
		Workers:      1,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Seconds:      legTime.Seconds(),
		Identical:    serial.Render() == par.Render(),
		FleetDevices: spec.Devices,
		SkipRate:     float64(len(plan.Skips)) / float64(pairings),
	}
	if legTime > 0 {
		leg.CellsPerSec = float64(len(plan.Cells)) / legTime.Seconds()
		leg.DevicesPerSec = float64(spec.Devices) / legTime.Seconds()
	}
	return leg, nil
}

// run is one timed leg of the ladder.
type run struct {
	Workers     int     `json:"workers"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
	Seconds     float64 `json:"seconds"`
	CellsPerSec float64 `json:"cells_per_sec"`
	Speedup     float64 `json:"speedup"`
	Identical   bool    `json:"identical"`
	// FabricPeers marks a distributed-fabric leg: the grid was sharded
	// across this many in-process sweepd peers through the fabric
	// coordinator instead of the plain worker pool.
	FabricPeers int `json:"fabric_peers,omitempty"`
	// FleetDevices marks a fleet-population leg: this many seeded device
	// sessions compiled and reduced through internal/fleet, with
	// DevicesPerSec the population throughput and SkipRate the fraction
	// of device×policy pairings the feasibility pre-pass removed before
	// simulation.
	FleetDevices  int     `json:"fleet_devices,omitempty"`
	DevicesPerSec float64 `json:"devices_per_sec,omitempty"`
	SkipRate      float64 `json:"skip_rate,omitempty"`
	// Note flags legs whose Speedup must not be read as parallel scaling
	// (multi-worker legs on a single-CPU host).
	Note string `json:"note,omitempty"`
}

// report is the schema of BENCH_sweep.json.
type report struct {
	Grid              string  `json:"grid"`
	SimVersion        string  `json:"sim_version"`
	Cells             int     `json:"cells"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	NumCPU            int     `json:"num_cpu"`
	SerialSeconds     float64 `json:"serial_seconds"`
	SerialCellsPerSec float64 `json:"serial_cells_per_sec"`
	Note              string  `json:"note,omitempty"`
	Runs              []run   `json:"runs"`
}

const singleCPUNote = "single-CPU host: multi-worker legs measure scheduling overhead, not parallel speedup"

func table2Config(workers int) clocksched.SweepConfig {
	best := clocksched.PASTPegPeg()
	bestVS := clocksched.PASTPegPeg()
	bestVS.VoltageScale = true
	seeds := make([]uint64, 10)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return clocksched.SweepConfig{
		Workloads: []clocksched.Workload{clocksched.MPEG},
		Policies: []clocksched.Policy{
			clocksched.ConstantPolicy(206.4, false),
			clocksched.ConstantPolicy(132.7, false),
			clocksched.ConstantPolicy(132.7, true),
			best,
			bestVS,
		},
		Seeds:    seeds,
		Workers:  workers,
		FailFast: true,
	}
}

// ladder is the deduplicated, ascending worker-count schedule.
func ladder(extra int) []int {
	counts := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	if extra > 0 {
		counts[extra] = true
	}
	var out []int
	for w := range counts {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// timeSerial runs the reference grid on one worker and returns the result
// with its wall-clock time. An untimed warmup pass runs first so the timed
// figure does not carry first-touch costs (heap growth, page faults) that
// would make every later leg look spuriously faster than the baseline.
func timeSerial() (*clocksched.SweepResult, time.Duration, error) {
	if _, err := clocksched.Sweep(context.Background(), table2Config(1)); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	res, err := clocksched.Sweep(context.Background(), table2Config(1))
	return res, time.Since(start), err
}

// guard compares current serial throughput against the committed baseline,
// failing when it drops below (1 − tolerance) of the recorded figure. It is
// the `make bench-guard` tier: cheap enough for every check run, loose
// enough not to trip on machine noise, tight enough to catch a hot-path
// regression that halves throughput.
func guard(baselinePath string, tolerance float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	want := base.SerialCellsPerSec
	if want == 0 && base.SerialSeconds > 0 {
		// Baselines written before serial_cells_per_sec existed.
		want = float64(base.Cells) / base.SerialSeconds
	}
	if want <= 0 {
		return fmt.Errorf("baseline %s has no serial throughput figure", baselinePath)
	}
	res, serialTime, err := timeSerial()
	if err != nil {
		return fmt.Errorf("serial grid: %w", err)
	}
	got := float64(len(res.Cells)) / serialTime.Seconds()
	floor := want * (1 - tolerance)
	status := "ok"
	if got < floor {
		status = "REGRESSION"
	}
	fmt.Printf("bench-guard: serial %.1f cells/s vs baseline %.1f (floor %.1f, tolerance %.0f%%): %s\n",
		got, want, floor, tolerance*100, status)
	if base.SimVersion != "" && base.SimVersion != clocksched.SimVersion() {
		fmt.Printf("bench-guard: note: baseline recorded under %s, current %s\n",
			base.SimVersion, clocksched.SimVersion())
	}
	if got < floor {
		return fmt.Errorf("serial throughput %.1f cells/s below floor %.1f (baseline %.1f): rerun `make bench-sweep` if intentional",
			got, floor, want)
	}
	return nil
}

func main() {
	var (
		out         = flag.String("out", "BENCH_sweep.json", "report file")
		workers     = flag.Int("workers", 0, "extra worker count added to the 1/2/4/NumCPU ladder (0 adds none)")
		cache       = flag.String("cache", "", "cell cache directory for the final ladder leg (empty disables)")
		journal     = flag.String("journal", "", "durable cell journal for the final ladder leg (needs -cache)")
		resume      = flag.Bool("resume", false, "replay cells already committed to -journal")
		cellTimeout = flag.Duration("cell-timeout", 0,
			"wall-clock budget per cell attempt on the ladder legs (0 disables)")
		retries = flag.Int("retries", 0,
			"per-cell retry budget for transient failures on the ladder legs")
		progress = flag.Bool("progress", false,
			"print per-cell completion counts; resumed runs start at the replayed count")
		fabricLegs = flag.Bool("fabric", true,
			"append distributed-fabric legs (grid sharded across 1/2/4 in-process sweepd peers) to the ladder")
		fleetLegFlag = flag.Bool("fleet", true,
			"append a fleet-population leg (500 seeded devices through internal/fleet) recording devices/sec and the feasibility-skip rate")
		guardMode = flag.Bool("guard", false,
			"regression-check serial throughput against -baseline instead of recording a ladder")
		baseline  = flag.String("baseline", "BENCH_sweep.json", "committed report -guard compares against")
		tolerance = flag.Float64("tolerance", 0.5,
			"fraction of baseline serial throughput the -guard run may lose before failing")
	)
	flag.Parse()

	if *guardMode {
		if err := guard(*baseline, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchsweep:", err)
			os.Exit(1)
		}
		return
	}

	serial, serialTime, err := timeSerial()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep: serial:", err)
		os.Exit(1)
	}

	counts := ladder(*workers)
	singleCPU := runtime.NumCPU() == 1
	r := report{
		Grid:              "table2: 5 policies x 10 seeds, MPEG 60s",
		SimVersion:        clocksched.SimVersion(),
		Cells:             len(serial.Cells),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		NumCPU:            runtime.NumCPU(),
		SerialSeconds:     serialTime.Seconds(),
		SerialCellsPerSec: float64(len(serial.Cells)) / serialTime.Seconds(),
	}
	if singleCPU {
		r.Note = singleCPUNote
	}
	ok := true
	for i, w := range counts {
		cfg := table2Config(w)
		cfg.CellTimeout = *cellTimeout
		cfg.Retries = *retries
		// The durability knobs attach to the final (widest) leg only, so a
		// resumed journal replays into one timing instead of smearing every
		// leg with cached cells.
		if i == len(counts)-1 {
			if *cache != "" {
				c, err := clocksched.NewSweepCache(0, *cache)
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchsweep: cache:", err)
					os.Exit(1)
				}
				cfg.Cache = c
			}
			cfg.Journal = *journal
			cfg.Resume = *resume
		}
		if *progress {
			cfg.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "benchsweep: %d workers: cell %d/%d\n", w, done, total)
			}
		}
		legStart := time.Now()
		res, err := clocksched.Sweep(context.Background(), cfg)
		legTime := time.Since(legStart)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsweep: %d workers: %v\n", w, err)
			os.Exit(1)
		}
		identical := len(serial.Cells) == len(res.Cells)
		for i := range serial.Cells {
			if !identical {
				break
			}
			identical = reflect.DeepEqual(serial.Cells[i].Result, res.Cells[i].Result)
		}
		ok = ok && identical
		leg := run{
			Workers:    w,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			Seconds:    legTime.Seconds(),
			Identical:  identical,
		}
		if legTime > 0 {
			leg.CellsPerSec = float64(len(res.Cells)) / legTime.Seconds()
			leg.Speedup = serialTime.Seconds() / legTime.Seconds()
		}
		if singleCPU && w > 1 {
			// A "speedup" from more goroutines on one CPU is cache warmth
			// or timer noise, not parallelism. Refuse to publish the claim:
			// the recorded speedup is zeroed and the leg annotated, so a
			// single-core container can never masquerade as a multi-core
			// scaling result in the benchmark history.
			leg.Note = singleCPUNote
			if leg.Speedup > 1 {
				fmt.Fprintf(os.Stderr,
					"benchsweep: suppressing %.2fx apparent speedup with %d workers on 1 CPU\n",
					leg.Speedup, w)
			}
			leg.Speedup = 0
		}
		r.Runs = append(r.Runs, leg)
		fmt.Printf("%d cells, %d workers (GOMAXPROCS %d, %d cpu): %.3fs (%.1f cells/s, %.2fx), identical=%v\n",
			len(res.Cells), w, leg.GOMAXPROCS, leg.NumCPU, leg.Seconds, leg.CellsPerSec, leg.Speedup, identical)
	}

	if *fabricLegs {
		for _, peers := range []int{1, 2, 4} {
			leg, err := fabricLeg(peers, serial, serialTime)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchsweep: fabric %d peers: %v\n", peers, err)
				os.Exit(1)
			}
			if singleCPU && peers > 1 {
				leg.Note = singleCPUNote
				if leg.Speedup > 1 {
					fmt.Fprintf(os.Stderr,
						"benchsweep: suppressing %.2fx apparent fabric speedup with %d peers on 1 CPU\n",
						leg.Speedup, peers)
				}
				leg.Speedup = 0
			}
			ok = ok && leg.Identical
			r.Runs = append(r.Runs, leg)
			fmt.Printf("%d cells, fabric of %d peer(s): %.3fs (%.1f cells/s, %.2fx), identical=%v\n",
				r.Cells, peers, leg.Seconds, leg.CellsPerSec, leg.Speedup, leg.Identical)
		}
	}

	if *fleetLegFlag {
		leg, err := fleetLeg()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsweep: fleet leg:", err)
			os.Exit(1)
		}
		ok = ok && leg.Identical
		r.Runs = append(r.Runs, leg)
		fmt.Printf("fleet of %d devices: %.3fs (%.1f devices/s, %.1f cells/s, skip rate %.3f), identical=%v\n",
			leg.FleetDevices, leg.Seconds, leg.DevicesPerSec, leg.CellsPerSec, leg.SkipRate, leg.Identical)
	}

	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
	fmt.Printf("serial %.3fs, %d ladder legs -> %s\n", r.SerialSeconds, len(r.Runs), *out)
	if !ok {
		fmt.Fprintln(os.Stderr, "benchsweep: a ladder leg diverged from the serial baseline or claimed an impossible speedup")
		os.Exit(1)
	}
}
