// Command tracegen emits the deterministic input-event traces that drive
// the interactive workloads, in the line-oriented format of package trace.
// Generated traces can be edited and replayed through itsysim for
// repeatable interactive sessions, mirroring the paper's record/replay
// methodology.
//
// Usage:
//
//	tracegen -workload web -seed 2 > web.trace
//	tracegen -workload chess -o chess.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"clocksched/internal/trace"
	"clocksched/internal/workload"
)

func main() {
	var (
		name = flag.String("workload", "web", "workload: web, chess, editor")
		seed = flag.Uint64("seed", 1, "generation seed")
		out  = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var tr *trace.Trace
	switch *name {
	case "web":
		tr = workload.DefaultWebTrace(*seed)
	case "chess":
		tr = workload.DefaultChessTrace(*seed)
	case "editor":
		tr = workload.DefaultEditorTrace(*seed)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q (want web, chess, or editor)\n", *name)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if _, err := tr.WriteTo(w); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
