// Command sweepd is the networked sweep daemon: it accepts declarative
// sweep jobs over HTTP, queues them through a bounded admission queue,
// runs them across a shared worker budget, and checkpoints every completed
// cell so a killed daemon restarts with all of its work intact.
//
// Durability lives under -data: the job manifest, the shared cell cache,
// and one journal + result file per job. SIGKILL the daemon at any moment,
// start it again with the same -data, and every queued or running job
// resumes to the byte-identical result an uninterrupted run would have
// produced.
//
// Usage:
//
//	sweepd -addr :8900 -data /var/lib/sweepd
//	sweepd -addr 127.0.0.1:0 -data ./sweepd-data -max-jobs 2 -workers 4
//	sweepd -addr :8900 -data ./coord -peers http://node1:8900,http://node2:8900
//
// With -peers, the daemon becomes a fabric coordinator: every accepted job
// is decomposed into shards dispatched across the peer fleet (leases,
// work-stealing, and local fallback when every peer is down — see
// DESIGN.md §15), while the API surface stays identical.
//
// Fleet-population jobs need no special handling here: internal/fleet
// compiles a device population into an ordinary SweepSpec, so its cells
// pass through admission, sharding, caching, and resume exactly like any
// other job (`experiments -only fleet -peers ...` targets daemons like
// this one; see DESIGN.md §16).
//
// Submit work with curl (see the README quickstart) or programmatically
// via the service client used by `experiments -remote`. SIGTERM drains:
// admission stops, running jobs finish (up to -drain-timeout, then they
// are checkpoint-cancelled), queued jobs stay durably queued for the next
// start.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"clocksched"
	"clocksched/internal/fabric"
	"clocksched/internal/service"
	"clocksched/internal/telemetry"
)

func main() {
	var (
		addr    = flag.String("addr", ":8900", "HTTP listen address (host:port; :0 for an ephemeral port)")
		dataDir = flag.String("data", "sweepd-data",
			"durable state directory: job manifest, cell cache, per-job journals and results")
		maxQueue = flag.Int("max-queue", 16, "admission queue bound; a full queue answers 429 + Retry-After")
		maxJobs  = flag.Int("max-jobs", 2, "jobs running concurrently; the worker budget is split between them")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "total simulation workers shared across active jobs")
		retry    = flag.Duration("retry-after", 2*time.Second, "backoff hint attached to 429 responses")
		drain    = flag.Duration("drain-timeout", 30*time.Second,
			"how long SIGTERM waits for running jobs before checkpoint-cancelling them")
		tokens = flag.String("tokens", "",
			"token file enabling bearer auth and per-client quotas (name token [max_queued=N] [max_cells=N] per line)")
		retain = flag.Int("retain-results", 0,
			"terminal jobs kept by the retention reaper; 0 keeps everything")
		maxBytes = flag.Int64("max-data-bytes", 0,
			"jobs/ footprint the reaper trims terminal jobs down to; 0 is unlimited")
		gcEvery = flag.Duration("gc-interval", time.Minute, "retention reaper cadence")
		peers   = flag.String("peers", "",
			"comma-separated base URLs of peer sweepd daemons; jobs are sharded across them through the fabric coordinator (must not include this daemon)")
		peerToken = flag.String("peer-token", "", "bearer token sent to every -peers daemon")
	)
	flag.Parse()
	os.Exit(run(config{
		addr: *addr, dataDir: *dataDir, maxQueue: *maxQueue, maxJobs: *maxJobs,
		workers: *workers, retry: *retry, drain: *drain, tokens: *tokens,
		retain: *retain, maxBytes: *maxBytes, gcEvery: *gcEvery,
		peers: splitPeers(*peers), peerToken: *peerToken,
	}))
}

type config struct {
	addr, dataDir, tokens              string
	maxQueue, maxJobs, workers, retain int
	maxBytes                           int64
	retry, drain, gcEvery              time.Duration
	peers                              []string
	peerToken                          string
}

// splitPeers parses the comma-separated peer list, dropping empties.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func run(c config) int {
	var auth *service.AuthTable
	if c.tokens != "" {
		var err error
		if auth, err = service.LoadTokenFile(c.tokens); err != nil {
			fmt.Fprintln(os.Stderr, "sweepd:", err)
			return 1
		}
		fmt.Printf("sweepd: auth enabled, %d client tokens\n", auth.Len())
	}
	// With -peers, every accepted job runs through the fabric coordinator:
	// sharded across the fleet with leased re-dispatch, work-stealing, and
	// local fallback, its per-peer counters exported on /metrics.
	var executor func(ctx context.Context, job service.ExecJob) (*clocksched.SweepResult, error)
	var metrics []telemetry.Scoped
	if len(c.peers) > 0 {
		fabReg := telemetry.New()
		metrics = append(metrics, telemetry.Scoped{Reg: fabReg})
		executor = func(ctx context.Context, job service.ExecJob) (*clocksched.SweepResult, error) {
			co, err := fabric.New(fabric.Config{
				Peers:        c.peers,
				Token:        c.peerToken,
				Dir:          filepath.Join(job.Dir, "fabric"),
				Cache:        job.Config.Cache,
				LocalWorkers: job.Config.Workers,
				Progress:     job.Config.Progress,
				Telemetry:    fabReg,
			})
			if err != nil {
				return nil, err
			}
			return co.Run(ctx, job.Spec)
		}
		fmt.Printf("sweepd: fabric coordinator enabled across %d peer(s)\n", len(c.peers))
	}
	svc, err := service.New(service.Config{
		DataDir:       c.dataDir,
		MaxQueue:      c.maxQueue,
		MaxActiveJobs: c.maxJobs,
		Workers:       c.workers,
		RetryAfter:    c.retry,
		Auth:          auth,
		RetainResults: c.retain,
		MaxDataBytes:  c.maxBytes,
		GCInterval:    c.gcEvery,
		Executor:      executor,
		Metrics:       metrics,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		return 1
	}

	ln, err := net.Listen("tcp", c.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		return 1
	}
	// The bound address goes to stdout so scripts (and the crash tests)
	// can discover an ephemeral port.
	fmt.Printf("sweepd: listening on %s (sim %s, data %s)\n", ln.Addr(), clocksched.SimVersion(), c.dataDir)

	httpSrv := &http.Server{Handler: svc}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "sweepd: %v: draining (timeout %v)\n", sig, c.drain)
		ctx, cancel := context.WithTimeout(context.Background(), c.drain)
		defer cancel()
		if err := svc.Drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "sweepd: drain:", err)
		}
		sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer scancel()
		httpSrv.Shutdown(sctx)
		fmt.Fprintln(os.Stderr, "sweepd: drained; queued jobs remain journaled for the next start")
		return 0
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		svc.Close()
		return 1
	}
}
