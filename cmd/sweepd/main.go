// Command sweepd is the networked sweep daemon: it accepts declarative
// sweep jobs over HTTP, queues them through a bounded admission queue,
// runs them across a shared worker budget, and checkpoints every completed
// cell so a killed daemon restarts with all of its work intact.
//
// Durability lives under -data: the job manifest, the shared cell cache,
// and one journal + result file per job. SIGKILL the daemon at any moment,
// start it again with the same -data, and every queued or running job
// resumes to the byte-identical result an uninterrupted run would have
// produced.
//
// Usage:
//
//	sweepd -addr :8900 -data /var/lib/sweepd
//	sweepd -addr 127.0.0.1:0 -data ./sweepd-data -max-jobs 2 -workers 4
//
// Submit work with curl (see the README quickstart) or programmatically
// via the service client used by `experiments -remote`. SIGTERM drains:
// admission stops, running jobs finish (up to -drain-timeout, then they
// are checkpoint-cancelled), queued jobs stay durably queued for the next
// start.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"clocksched"
	"clocksched/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8900", "HTTP listen address (host:port; :0 for an ephemeral port)")
		dataDir = flag.String("data", "sweepd-data",
			"durable state directory: job manifest, cell cache, per-job journals and results")
		maxQueue = flag.Int("max-queue", 16, "admission queue bound; a full queue answers 429 + Retry-After")
		maxJobs  = flag.Int("max-jobs", 2, "jobs running concurrently; the worker budget is split between them")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "total simulation workers shared across active jobs")
		retry    = flag.Duration("retry-after", 2*time.Second, "backoff hint attached to 429 responses")
		drain    = flag.Duration("drain-timeout", 30*time.Second,
			"how long SIGTERM waits for running jobs before checkpoint-cancelling them")
	)
	flag.Parse()
	os.Exit(run(*addr, *dataDir, *maxQueue, *maxJobs, *workers, *retry, *drain))
}

func run(addr, dataDir string, maxQueue, maxJobs, workers int, retry, drainTimeout time.Duration) int {
	svc, err := service.New(service.Config{
		DataDir:       dataDir,
		MaxQueue:      maxQueue,
		MaxActiveJobs: maxJobs,
		Workers:       workers,
		RetryAfter:    retry,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		return 1
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		return 1
	}
	// The bound address goes to stdout so scripts (and the crash tests)
	// can discover an ephemeral port.
	fmt.Printf("sweepd: listening on %s (sim %s, data %s)\n", ln.Addr(), clocksched.SimVersion(), dataDir)

	httpSrv := &http.Server{Handler: svc}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "sweepd: %v: draining (timeout %v)\n", sig, drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := svc.Drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "sweepd: drain:", err)
		}
		sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer scancel()
		httpSrv.Shutdown(sctx)
		fmt.Fprintln(os.Stderr, "sweepd: drained; queued jobs remain journaled for the next start")
		return 0
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		svc.Close()
		return 1
	}
}
