// Command itsysim runs one workload on the simulated Itsy under one clock
// scheduling policy and prints a measurement report: energy, deadline
// behaviour, clock-setting stability, and residency.
//
// Usage:
//
//	itsysim -workload mpeg -policy past-peg-peg:93:98 -duration 60s
//	itsysim -workload editor -policy constant:132.7
//	itsysim -workload chess -policy avg9-one-one:50:70 -seed 3
//	itsysim -workload mpeg -policy past-peg-peg:93:98 -runs 10 -workers 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"clocksched"
)

func main() {
	var (
		workloadName = flag.String("workload", "mpeg", "workload: mpeg, web, chess, editor, rect")
		policySpec   = flag.String("policy", "constant:206.4",
			"policy: constant:<MHz>[:lowv] or <pred>-<up>-<down>:<lo>:<hi>[:vs] "+
				"where pred is past or avgN, setters are one/double/peg")
		seed     = flag.Uint64("seed", 1, "workload jitter seed (first seed with -runs)")
		runs     = flag.Int("runs", 1, "repeated runs over consecutive seeds, swept in parallel")
		workers  = flag.Int("workers", 0, "parallel workers for -runs > 1 (0 = GOMAXPROCS)")
		duration = flag.Duration("duration", 0, "run length (0 = workload's natural length)")
		trace    = flag.Bool("trace", false, "dump the per-quantum utilization/frequency trace")
		faults   = flag.String("faults", "",
			"fault injection plan: comma-separated key=value pairs among "+
				"clockfail, stall, drop, glitch, jitter, tracedrop, tracedelay, abort "+
				"(probabilities in [0,1]), e.g. clockfail=0.01,jitter=0.05")
		watchdog = flag.Bool("watchdog", false,
			"wrap the policy in the supervisory watchdog governor")
		telemetryAddr = flag.String("telemetry", "",
			"serve live telemetry on this address (e.g. :8080): /metrics, /metrics.json, /debug/vars, /debug/pprof")
	)
	flag.Parse()

	pol, err := parsePolicy(*policySpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "itsysim:", err)
		os.Exit(2)
	}
	plan, err := parseFaults(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "itsysim:", err)
		os.Exit(2)
	}
	var wd *clocksched.WatchdogConfig
	if *watchdog {
		wd = &clocksched.WatchdogConfig{}
	}

	// run holds the telemetry-drain defer so it fires on every exit path,
	// including an interrupted simulation; os.Exit would skip it.
	os.Exit(run(pol, plan, wd, *workloadName, *seed, *runs, *workers,
		*duration, *trace, *telemetryAddr))
}

func run(pol clocksched.Policy, plan *clocksched.FaultPlan, wd *clocksched.WatchdogConfig,
	workloadName string, seed uint64, runs, workers int,
	duration time.Duration, trace bool, telemetryAddr string) int {

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var tel *clocksched.Telemetry
	if telemetryAddr != "" {
		tel = clocksched.NewTelemetry()
		addr, err := tel.Serve(telemetryAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "itsysim:", err)
			return 2
		}
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			tel.Shutdown(sctx)
		}()
		fmt.Fprintf(os.Stderr, "itsysim: telemetry on http://%s/metrics\n", addr)
	}

	if runs > 1 {
		return runBatch(ctx, pol, workloadName, seed, runs, workers, duration, plan, wd, tel)
	}

	res, err := clocksched.RunContext(ctx, clocksched.Config{
		Workload:     clocksched.Workload(workloadName),
		Policy:       pol,
		Seed:         seed,
		Duration:     duration,
		CaptureTrace: trace,
		Faults:       plan,
		Watchdog:     wd,
		Telemetry:    tel,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "itsysim:", err)
		return 1
	}

	fmt.Printf("workload:        %s (seed %d)\n", workloadName, seed)
	fmt.Printf("policy:          %s\n", pol.Name())
	fmt.Printf("energy:          %.2f J\n", res.EnergyJoules)
	fmt.Printf("average power:   %.3f W (peak %.3f W)\n", res.AvgPowerWatts, res.PeakPowerWatts)
	fmt.Printf("utilization:     %.1f%%\n", res.MeanUtilization*100)
	fmt.Printf("deadlines:       %d, missed %d (max lateness %v)\n",
		res.Deadlines, res.Misses, res.MaxLateness)
	fmt.Printf("clock changes:   %d (stall %v), voltage changes: %d\n",
		res.ClockChanges, res.StallTime, res.VoltageChanges)
	if f := res.Faults; f != nil {
		fmt.Printf("faults injected: %d (clock fails %d, stalls %d/+%v, samples %d dropped/%d glitched,\n"+
			"                 timer jitter %d/+%v, trace %d dropped/%d delayed)\n",
			f.Total, f.ClockChangeFails, f.SettleStalls, f.ExtraStallTime.Round(time.Microsecond),
			f.SamplesDropped, f.SamplesGlitched,
			f.TimerJitters, f.TimerJitterTime.Round(time.Microsecond),
			f.TraceDrops, f.TraceDelays)
	}
	if w := res.Watchdog; w != nil {
		state := "healthy"
		if w.InSafeMode {
			state = "ended in safe mode"
		}
		fmt.Printf("watchdog:        %d trips (oscillation %d, pegging %d, miss streaks %d), %s\n",
			w.Trips, w.OscillationTrips, w.PeggingTrips, w.MissStreakTrips, state)
	}

	fmt.Println("residency:")
	mhzs := make([]float64, 0, len(res.TimeAtMHz))
	for mhz := range res.TimeAtMHz {
		mhzs = append(mhzs, mhz)
	}
	sort.Float64s(mhzs)
	for _, mhz := range mhzs {
		fmt.Printf("  %6.1f MHz  %v\n", mhz, res.TimeAtMHz[mhz].Round(time.Millisecond))
	}

	if trace {
		fmt.Println("trace (time, utilization, MHz):")
		for p := range res.TraceSeq() {
			fmt.Printf("%v\t%.4f\t%.1f\n", p.At, p.Utilization, p.MHz)
		}
	}
	return 0
}

// runBatch sweeps the same configuration over consecutive seeds and prints
// one row per run plus the aggregate.
func runBatch(ctx context.Context, pol clocksched.Policy, workload string,
	firstSeed uint64, runs, workers int, duration time.Duration,
	plan *clocksched.FaultPlan, wd *clocksched.WatchdogConfig,
	tel *clocksched.Telemetry) int {
	seeds := make([]uint64, runs)
	for i := range seeds {
		seeds[i] = firstSeed + uint64(i)
	}
	sweep, err := clocksched.Sweep(ctx, clocksched.SweepConfig{
		Workloads: []clocksched.Workload{clocksched.Workload(workload)},
		Policies:  []clocksched.Policy{pol},
		Seeds:     seeds,
		Duration:  duration,
		Faults:    plan,
		Watchdog:  wd,
		Workers:   workers,
		FailFast:  true,
		Telemetry: tel,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "itsysim:", err)
		return 1
	}
	fmt.Printf("workload: %s, policy: %s, %d runs (seeds %d..%d)\n",
		workload, pol.Name(), runs, firstSeed, seeds[len(seeds)-1])
	fmt.Printf("%-6s %10s %10s %8s %8s %9s\n", "seed", "energy(J)", "power(W)", "util%", "misses", "changes")
	for i, cell := range sweep.Cells {
		r := cell.Result
		fmt.Printf("%-6d %10.2f %10.3f %8.1f %8d %9d\n",
			seeds[i], r.EnergyJoules, r.AvgPowerWatts, r.MeanUtilization*100,
			r.Misses, r.ClockChanges)
	}
	st := sweep.Stats()
	fmt.Printf("energy: min %.2f J, mean %.2f J, max %.2f J; total misses %d\n",
		st.MinEnergyJoules, st.MeanEnergyJoules, st.MaxEnergyJoules, st.TotalMisses)
	pt := sweep.Telemetry
	fmt.Printf("pool: %d workers (peak busy %d); cells run %d, cached %d, failed %d\n",
		pt.Workers, pt.PeakBusy, pt.Ran, pt.Cached, pt.Failed)
	return 0
}

// parsePolicy understands "constant:<MHz>[:lowv]",
// "<pred>-<up>-<down>:<lo>:<hi>[:vs]", "deadline[:vs]", and
// "prop-<pred>:<target>[:vs]".
func parsePolicy(spec string) (clocksched.Policy, error) {
	parts := strings.Split(spec, ":")
	if parts[0] == "deadline" {
		switch {
		case len(parts) == 1:
			return clocksched.DeadlinePolicy(false), nil
		case len(parts) == 2 && parts[1] == "vs":
			return clocksched.DeadlinePolicy(true), nil
		default:
			return clocksched.Policy{}, fmt.Errorf("deadline policy wants deadline[:vs], got %q", spec)
		}
	}
	if strings.HasPrefix(parts[0], "prop-") {
		if len(parts) < 2 || len(parts) > 3 {
			return clocksched.Policy{}, fmt.Errorf("proportional policy wants prop-<pred>:<target>[:vs], got %q", spec)
		}
		n, err := parsePredictor(strings.TrimPrefix(parts[0], "prop-"))
		if err != nil {
			return clocksched.Policy{}, err
		}
		target, err := strconv.Atoi(parts[1])
		if err != nil {
			return clocksched.Policy{}, fmt.Errorf("bad target %q", parts[1])
		}
		p := clocksched.ProportionalPolicy(n, target)
		if len(parts) == 3 {
			if parts[2] != "vs" {
				return clocksched.Policy{}, fmt.Errorf("unknown option %q", parts[2])
			}
			p.VoltageScale = true
		}
		return p, nil
	}
	if parts[0] == "constant" {
		if len(parts) < 2 || len(parts) > 3 {
			return clocksched.Policy{}, fmt.Errorf("constant policy wants constant:<MHz>[:lowv], got %q", spec)
		}
		mhz, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return clocksched.Policy{}, fmt.Errorf("bad frequency %q: %v", parts[1], err)
		}
		lowV := false
		if len(parts) == 3 {
			if parts[2] != "lowv" {
				return clocksched.Policy{}, fmt.Errorf("unknown constant option %q", parts[2])
			}
			lowV = true
		}
		return clocksched.ConstantPolicy(mhz, lowV), nil
	}

	if len(parts) < 3 || len(parts) > 4 {
		return clocksched.Policy{}, fmt.Errorf("interval policy wants <pred>-<up>-<down>:<lo>:<hi>[:vs], got %q", spec)
	}
	names := strings.Split(parts[0], "-")
	if len(names) != 3 {
		return clocksched.Policy{}, fmt.Errorf("want <pred>-<up>-<down>, got %q", parts[0])
	}
	n, err := parsePredictor(names[0])
	if err != nil {
		return clocksched.Policy{}, err
	}
	lo, err := strconv.Atoi(parts[1])
	if err != nil {
		return clocksched.Policy{}, fmt.Errorf("bad lower bound %q", parts[1])
	}
	hi, err := strconv.Atoi(parts[2])
	if err != nil {
		return clocksched.Policy{}, fmt.Errorf("bad upper bound %q", parts[2])
	}
	vs := false
	if len(parts) == 4 {
		if parts[3] != "vs" {
			return clocksched.Policy{}, fmt.Errorf("unknown option %q", parts[3])
		}
		vs = true
	}
	return clocksched.Policy{
		AvgN: n,
		Up:   clocksched.SpeedSetter(names[1]), Down: clocksched.SpeedSetter(names[2]),
		LoPercent: lo, HiPercent: hi,
		VoltageScale: vs,
	}, nil
}

// parseFaults builds a fault plan from "key=prob,key=prob" pairs; an empty
// spec means no injection.
func parseFaults(spec string) (*clocksched.FaultPlan, error) {
	if spec == "" {
		return nil, nil
	}
	plan := &clocksched.FaultPlan{}
	for _, pair := range strings.Split(spec, ",") {
		kv := strings.SplitN(pair, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("fault spec wants key=prob, got %q", pair)
		}
		p, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("bad fault probability %q for %q", kv[1], kv[0])
		}
		switch kv[0] {
		case "clockfail":
			plan.ClockChangeFailProb = p
		case "stall":
			plan.SettleStallProb = p
		case "drop":
			plan.SampleDropProb = p
		case "glitch":
			plan.SampleGlitchProb = p
		case "jitter":
			plan.TimerJitterProb = p
		case "tracedrop":
			plan.TraceDropProb = p
		case "tracedelay":
			plan.TraceDelayProb = p
		case "abort":
			plan.CellAbortProb = p
		default:
			return nil, fmt.Errorf("unknown fault kind %q", kv[0])
		}
	}
	return plan, nil
}

// parsePredictor maps "past" or "avgN" onto the AVG_N decay parameter.
func parsePredictor(name string) (int, error) {
	switch {
	case name == "past":
		return 0, nil
	case strings.HasPrefix(name, "avg"):
		v, err := strconv.Atoi(name[3:])
		if err != nil || v < 0 {
			return 0, fmt.Errorf("bad predictor %q", name)
		}
		return v, nil
	default:
		return 0, fmt.Errorf("unknown predictor %q", name)
	}
}
