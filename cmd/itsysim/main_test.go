package main

import (
	"testing"

	"clocksched"
)

func TestParsePolicyConstant(t *testing.T) {
	p, err := parsePolicy("constant:132.7")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Constant || p.MHz != 132.7 || p.LowVoltage {
		t.Errorf("parsed %+v", p)
	}
	p, err = parsePolicy("constant:132.7:lowv")
	if err != nil {
		t.Fatal(err)
	}
	if !p.LowVoltage {
		t.Errorf("lowv not parsed: %+v", p)
	}
}

func TestParsePolicyInterval(t *testing.T) {
	p, err := parsePolicy("past-peg-peg:93:98")
	if err != nil {
		t.Fatal(err)
	}
	want := clocksched.PASTPegPeg()
	if p != want {
		t.Errorf("parsed %+v, want %+v", p, want)
	}

	p, err = parsePolicy("avg9-one-double:50:70:vs")
	if err != nil {
		t.Fatal(err)
	}
	if p.AvgN != 9 || p.Up != clocksched.One || p.Down != clocksched.Double ||
		p.LoPercent != 50 || p.HiPercent != 70 || !p.VoltageScale {
		t.Errorf("parsed %+v", p)
	}
}

func TestParsePolicyErrors(t *testing.T) {
	bad := []string{
		"constant",
		"constant:abc",
		"constant:132.7:weird",
		"constant:132.7:lowv:extra",
		"past-peg:93:98",
		"past-peg-peg",
		"past-peg-peg:93",
		"past-peg-peg:93:98:99:100",
		"past-peg-peg:abc:98",
		"past-peg-peg:93:xyz",
		"past-peg-peg:93:98:warp",
		"avgX-peg-peg:93:98",
		"avg-3-peg:93:98",
		"warp-peg-peg:93:98",
	}
	for _, spec := range bad {
		if _, err := parsePolicy(spec); err == nil {
			t.Errorf("accepted %q", spec)
		}
	}
}

// TestParsedPoliciesActuallyRun feeds parsed specs through the library to
// make sure the CLI surface and the API agree.
func TestParsedPoliciesActuallyRun(t *testing.T) {
	for _, spec := range []string{
		"constant:206.4",
		"constant:59:lowv",
		"past-peg-peg:93:98",
		"avg3-double-one:50:70:vs",
	} {
		p, err := parsePolicy(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		if _, err := clocksched.Run(clocksched.Config{
			Workload: clocksched.RectWave,
			Policy:   p,
			Duration: 500_000_000, // 0.5 s
		}); err != nil {
			t.Errorf("%q failed to run: %v", spec, err)
		}
	}
}

func TestParsePolicyDeadline(t *testing.T) {
	p, err := parsePolicy("deadline")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Deadline || p.VoltageScale {
		t.Errorf("parsed %+v", p)
	}
	p, err = parsePolicy("deadline:vs")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Deadline || !p.VoltageScale {
		t.Errorf("parsed %+v", p)
	}
	if _, err := parsePolicy("deadline:warp"); err == nil {
		t.Error("bad deadline option accepted")
	}
}

func TestParsePolicyProportional(t *testing.T) {
	p, err := parsePolicy("prop-avg3:70")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Proportional || p.AvgN != 3 || p.TargetPercent != 70 || p.VoltageScale {
		t.Errorf("parsed %+v", p)
	}
	p, err = parsePolicy("prop-past:90:vs")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Proportional || p.AvgN != 0 || !p.VoltageScale {
		t.Errorf("parsed %+v", p)
	}
	for _, bad := range []string{"prop-past", "prop-xyz:70", "prop-past:abc", "prop-past:70:zz", "prop-past:70:vs:extra"} {
		if _, err := parsePolicy(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseFaults(t *testing.T) {
	if p, err := parseFaults(""); p != nil || err != nil {
		t.Errorf("empty spec = %v, %v, want nil plan", p, err)
	}
	p, err := parseFaults("clockfail=0.01,jitter=0.05,drop=0.001,glitch=0.002,stall=0.1,tracedrop=0.01,tracedelay=0.02")
	if err != nil {
		t.Fatal(err)
	}
	if p.ClockChangeFailProb != 0.01 || p.TimerJitterProb != 0.05 ||
		p.SampleDropProb != 0.001 || p.SampleGlitchProb != 0.002 ||
		p.SettleStallProb != 0.1 || p.TraceDropProb != 0.01 || p.TraceDelayProb != 0.02 {
		t.Errorf("parsed plan = %+v", p)
	}
	for _, bad := range []string{
		"clockfail",       // no value
		"clockfail=x",     // not a number
		"clockfail=1.5",   // out of range
		"clockfail=-0.1",  // negative
		"warp=0.5",        // unknown kind
		"clockfail=0.1,,", // empty pair
	} {
		if _, err := parseFaults(bad); err == nil {
			t.Errorf("parseFaults(%q) accepted", bad)
		}
	}
}
