package main

// Remote execution: -remote hands the Table 2 measurement grid to a sweepd
// daemon instead of simulating locally. The daemon journals every cell, so
// a killed daemon resumes the job and the fetched result is byte-identical
// to an uninterrupted local Sweep over the same grid.

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"clocksched"
	"clocksched/internal/expt"
	"clocksched/internal/service"
	"clocksched/internal/stats"
)

// table2Algorithms names the grid's policy axis in presentation order; the
// positions match remoteTable2Config's Policies slice.
var table2Algorithms = []string{
	"Constant Speed @ 206.4 MHz, 1.5 Volts",
	"Constant Speed @ 132.7 MHz, 1.5 Volts",
	"Constant Speed @ 132.7 MHz, 1.23 Volts",
	"PAST, Peg-Peg, Thresholds: >98% up, <93% down, 1.5 Volts",
	"PAST, Peg-Peg, Thresholds: >98% up, <93% down, Voltage Scaling @ 162.2 MHz",
}

// remoteTable2Config builds the Table 2 grid through the public API: five
// policies × Table2Runs seeds of the 60-second MPEG workload, seeds starting
// at the -seed flag (default 1, matching the local table).
func remoteTable2Config(seed uint64) clocksched.SweepConfig {
	best := clocksched.PASTPegPeg()
	bestVS := clocksched.PASTPegPeg()
	bestVS.VoltageScale = true
	seeds := make([]uint64, expt.Table2Runs)
	for i := range seeds {
		seeds[i] = seed + uint64(i)
	}
	return clocksched.SweepConfig{
		Workloads: []clocksched.Workload{clocksched.MPEG},
		Policies: []clocksched.Policy{
			clocksched.ConstantPolicy(206.4, false),
			clocksched.ConstantPolicy(132.7, false),
			clocksched.ConstantPolicy(132.7, true),
			best,
			bestVS,
		},
		Seeds:    seeds,
		FailFast: true,
	}
}

// foldTable2 reduces the remote sweep result to the paper's Table 2 rows:
// a 95% CI over per-run energy, total deadline misses beyond the perceptual
// slack, and the mean clock-change count.
func foldTable2(res *clocksched.SweepResult) ([]expt.Table2Row, error) {
	rows := make([]expt.Table2Row, 0, len(table2Algorithms))
	for pi, name := range table2Algorithms {
		energies := make([]float64, 0, expt.Table2Runs)
		misses := 0
		changes := 0
		for si := 0; si < expt.Table2Runs; si++ {
			cell := res.CellAt(0, pi, si)
			if cell == nil {
				return nil, fmt.Errorf("remote result missing cell (policy %d, seed %d)", pi, si)
			}
			if cell.Err != nil {
				return nil, fmt.Errorf("remote cell (policy %d, seed %d): %w", pi, si, cell.Err)
			}
			energies = append(energies, cell.Result.EnergyJoules)
			misses += cell.Result.Misses
			changes += cell.Result.ClockChanges
		}
		ci95, err := stats.CI95(energies)
		if err != nil {
			return nil, err
		}
		rows = append(rows, expt.Table2Row{
			Algorithm:    name,
			Energy:       ci95,
			Misses:       misses,
			SpeedChanges: float64(changes) / expt.Table2Runs,
		})
	}
	return rows, nil
}

// runRemote submits the Table 2 grid to a sweepd daemon, follows the job's
// live progress, and renders the fetched result exactly as the local table
// experiment would. Only the table2 grid runs remotely; other experiments
// are trace- or closed-form-driven and stay local.
func runRemote(base, outDir, only string, seed uint64, progress bool) int {
	if only != "" && only != "table2" {
		fmt.Fprintf(os.Stderr, "experiments: -remote runs the table2 grid; %q is local-only (drop -remote)\n", only)
		return 2
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	spec := clocksched.NewSweepSpec(remoteTable2Config(seed))
	client := &service.Client{Base: base}

	st, err := client.Submit(ctx, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: remote submit:", err)
		return 1
	}
	fmt.Printf("==> table2 (remote %s) — job %s, %d cells\n", base, st.ID, st.Total)

	lastDone := -1
	onProgress := func(done, total int) {
		if !progress || done == lastDone {
			return
		}
		lastDone = done
		fmt.Fprintf(os.Stderr, "experiments: cell %d/%d\n", done, total)
	}
	st, err = client.Wait(ctx, st.ID, onProgress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: remote wait:", err)
		return 1
	}
	switch st.State {
	case service.StateDone:
	case service.StateFailed:
		fmt.Fprintf(os.Stderr, "experiments: remote job %s failed: %s\n", st.ID, st.Error)
		return 1
	default:
		fmt.Fprintf(os.Stderr, "experiments: remote job %s ended %s\n", st.ID, st.State)
		return 1
	}
	if st.Replayed > 0 {
		fmt.Fprintf(os.Stderr, "experiments: remote job %s replayed %d cell(s) from its journal\n", st.ID, st.Replayed)
	}

	res, err := client.Result(ctx, st.ID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: remote result:", err)
		return 1
	}
	rows, err := foldTable2(res)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: remote table2:", err)
		return 1
	}
	summary := expt.RenderTable2(rows)
	fmt.Print(summary)

	artifact := filepath.Join(outDir, "table2_remote.txt")
	if err := os.WriteFile(artifact, []byte(summary), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}
	fmt.Printf("\nartifact written to %s\n", artifact)
	return 0
}
