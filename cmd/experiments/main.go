// Command experiments regenerates every table and figure of the paper's
// evaluation — plus the extension experiments — from the simulation,
// printing each summary to stdout and writing the raw artifacts under -out.
//
// Usage:
//
//	experiments            # everything, results into ./results
//	experiments -only table2
//	experiments -list
//	experiments -out /tmp/repro -seed 3
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"clocksched/internal/expt"
)

func main() {
	var (
		outDir = flag.String("out", "results", "directory for raw artifact files")
		only   = flag.String("only", "", "run only the named experiment (see -list)")
		list   = flag.Bool("list", false, "list the available experiments and exit")
		seed   = flag.Uint64("seed", 1, "workload jitter seed")
	)
	flag.Parse()

	if *list {
		for _, e := range expt.Registry() {
			fmt.Printf("%-12s %s\n", e.Name, e.Paper)
		}
		return
	}

	experiments := expt.Registry()
	if *only != "" {
		e, ok := expt.Find(strings.ToLower(*only))
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", *only)
			os.Exit(2)
		}
		experiments = []expt.Experiment{e}
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	var written []string
	for _, e := range experiments {
		fmt.Printf("==> %s — %s\n", e.Name, e.Paper)
		summary, artifacts, err := e.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Print(summary)
		for _, a := range artifacts {
			if err := os.WriteFile(filepath.Join(*outDir, a.Name), []byte(a.Content), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			written = append(written, a.Name)
		}
		fmt.Println()
	}

	// Leave a browsable index behind when running the full suite.
	if *only == "" && len(written) > 0 {
		index := expt.IndexHTML(written)
		if err := os.WriteFile(filepath.Join(*outDir, "index.html"), []byte(index), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("index written to %s\n", filepath.Join(*outDir, "index.html"))
	}
}
