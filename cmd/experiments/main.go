// Command experiments regenerates every table and figure of the paper's
// evaluation — plus the extension experiments — from the simulation,
// printing each summary to stdout and writing the raw artifacts under -out.
//
// Grid-backed experiments fan their cells across -workers goroutines and
// reuse cached cells from <out>/cache between invocations; the results are
// bit-identical whatever the worker count or cache state. Interrupting the
// run (Ctrl-C) stops the simulations at the next quantum boundary.
//
// Usage:
//
//	experiments            # everything, results into ./results
//	experiments -only table2
//	experiments -list
//	experiments -out /tmp/repro -seed 3 -workers 4
//	experiments -nocache   # recompute every cell
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"

	"clocksched/internal/expt"
	"clocksched/internal/telemetry"
)

func main() {
	var (
		outDir  = flag.String("out", "results", "directory for raw artifact files")
		only    = flag.String("only", "", "run only the named experiment (see -list)")
		list    = flag.Bool("list", false, "list the available experiments and exit")
		seed    = flag.Uint64("seed", 1, "workload jitter seed")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel simulation workers for grid experiments")
		nocache = flag.Bool("nocache", false, "skip the on-disk cell cache under <out>/cache")
		telAddr = flag.String("telemetry", "",
			"serve live telemetry on this address (e.g. :8080): /metrics, /metrics.json, /debug/vars, /debug/pprof")
	)
	flag.Parse()

	if *list {
		for _, e := range expt.Registry() {
			fmt.Printf("%-12s %s\n", e.Name, e.Paper)
		}
		return
	}

	experiments := expt.Registry()
	if *only != "" {
		e, ok := expt.Find(strings.ToLower(*only))
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", *only)
			os.Exit(2)
		}
		experiments = []expt.Experiment{e}
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	env := expt.Env{Ctx: ctx, Seed: *seed, Workers: *workers}
	if *telAddr != "" {
		reg := telemetry.New()
		srv, err := telemetry.Serve(*telAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: telemetry:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "experiments: telemetry on http://%s/metrics\n", srv.Addr())
		env.Telemetry = reg
	}
	if !*nocache {
		cache, err := expt.NewCellCache(0, filepath.Join(*outDir, "cache"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: cache:", err)
			os.Exit(1)
		}
		env.Cache = cache
	}

	var written []string
	for _, e := range experiments {
		fmt.Printf("==> %s — %s\n", e.Name, e.Paper)
		summary, artifacts, err := e.Run(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Print(summary)
		for _, a := range artifacts {
			if err := os.WriteFile(filepath.Join(*outDir, a.Name), []byte(a.Content), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			written = append(written, a.Name)
		}
		fmt.Println()
	}

	// Leave a browsable index behind when running the full suite.
	if *only == "" && len(written) > 0 {
		index := expt.IndexHTML(written)
		if err := os.WriteFile(filepath.Join(*outDir, "index.html"), []byte(index), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("index written to %s\n", filepath.Join(*outDir, "index.html"))
	}
}
