// Command experiments regenerates every table and figure of the paper's
// evaluation — plus the extension experiments — from the simulation,
// printing each summary to stdout and writing the raw artifacts under -out.
//
// Grid-backed experiments fan their cells across -workers goroutines and
// reuse cached cells from <out>/cache between invocations; the results are
// bit-identical whatever the worker count or cache state. Interrupting the
// run (Ctrl-C) stops the simulations at the next quantum boundary.
//
// Usage:
//
//	experiments            # everything, results into ./results
//	experiments -only table2
//	experiments -list
//	experiments -out /tmp/repro -seed 3 -workers 4
//	experiments -nocache   # recompute every cell
//	experiments -peers http://node1:8900,http://node2:8900   # fleet-coordinated table2
//	experiments -only fleet                                  # 10k-device population sweep
//	experiments -only fleet -peers http://node1:8900,http://node2:8900
//
// The fleet experiment simulates a seeded population of device sessions
// (CLOCKSCHED_FLEET_DEVICES overrides the 10k default) and reduces them to
// per-policy energy percentiles, miss rates, and the infeasible bucket;
// with -peers the identical population is compiled once and fanned out
// across the daemons, byte-identical to the local run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"clocksched/internal/expt"
	"clocksched/internal/sweep"
	"clocksched/internal/telemetry"
)

func main() {
	var (
		outDir  = flag.String("out", "results", "directory for raw artifact files")
		only    = flag.String("only", "", "run only the named experiment (see -list)")
		list    = flag.Bool("list", false, "list the available experiments and exit")
		seed    = flag.Uint64("seed", 1, "workload jitter seed")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel simulation workers for grid experiments")
		nocache = flag.Bool("nocache", false, "skip the on-disk cell cache under <out>/cache")
		resume  = flag.Bool("resume", false,
			"resume an interrupted run: replay cells committed to <out>/sweep.wal from the cache")
		cellTimeout = flag.Duration("cell-timeout", 0,
			"wall-clock budget per grid cell attempt (0 disables)")
		retries = flag.Int("retries", 0,
			"retry budget per grid cell for transient failures, with seeded exponential backoff")
		telAddr = flag.String("telemetry", "",
			"serve live telemetry on this address (e.g. :8080): /metrics, /metrics.json, /debug/vars, /debug/pprof")
		progress = flag.Bool("progress", false,
			"print per-cell completion counts for grid experiments; resumed runs start at the replayed count")
		remote = flag.String("remote", "",
			"submit grid work to a sweepd daemon at this base URL (e.g. http://localhost:8900) instead of simulating locally")
		peers = flag.String("peers", "",
			"comma-separated sweepd base URLs: coordinate the grid across the fleet via the fabric (shards, leases, work-stealing)")
		peerToken = flag.String("peer-token", "", "bearer token sent to every -peers daemon")
	)
	flag.Parse()

	if *list {
		for _, e := range expt.Registry() {
			fmt.Printf("%-12s %s\n", e.Name, e.Paper)
		}
		return
	}

	// run holds the defers (telemetry drain, journal close) so they fire on
	// every exit path, including an interrupt; os.Exit would skip them.
	os.Exit(run(outDir, only, seed, workers, nocache, resume, cellTimeout, retries, telAddr, progress, remote, peers, peerToken))
}

func run(outDir, only *string, seed *uint64, workers *int, nocache, resume *bool,
	cellTimeout *time.Duration, retries *int, telAddr *string, progress *bool, remote, peers, peerToken *string) int {

	if *remote != "" && *peers != "" {
		fmt.Fprintln(os.Stderr, "experiments: -remote and -peers are mutually exclusive (one daemon vs a coordinated fleet)")
		return 2
	}
	if *remote != "" {
		return runRemote(*remote, *outDir, *only, *seed, *progress)
	}
	if *peers != "" {
		return runFleet(*peers, *peerToken, *outDir, *only, *seed, *progress)
	}

	experiments := expt.Registry()
	if *only != "" {
		e, ok := expt.Find(strings.ToLower(*only))
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", *only)
			return 2
		}
		experiments = []expt.Experiment{e}
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	env := expt.Env{
		Ctx:         ctx,
		Seed:        *seed,
		Workers:     *workers,
		CellTimeout: *cellTimeout,
		Retries:     *retries,
	}
	if *progress {
		env.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "experiments: cell %d/%d\n", done, total)
		}
	}
	if *telAddr != "" {
		reg := telemetry.New()
		srv, err := telemetry.Serve(*telAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: telemetry:", err)
			return 1
		}
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(sctx)
		}()
		fmt.Fprintf(os.Stderr, "experiments: telemetry on http://%s/metrics\n", srv.Addr())
		env.Telemetry = reg
	}
	if !*nocache {
		cache, err := expt.NewCellCache(0, filepath.Join(*outDir, "cache"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: cache:", err)
			return 1
		}
		env.Cache = cache
		// Each completed cell is committed to the journal; relaunching with
		// -resume replays them from the cache instead of re-simulating.
		jr, err := sweep.OpenCellJournal(filepath.Join(*outDir, "sweep.wal"), *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: journal:", err)
			return 1
		}
		defer jr.Close()
		jr.Instrument(env.Telemetry)
		if *resume {
			fmt.Fprintf(os.Stderr, "experiments: resume: %d cell(s) recovered from journal\n", jr.Recovered())
		}
		env.Journal = jr
		// Experiments that own their durable state (the fleet experiment's
		// result cache + fleet.wal) anchor it in the same output directory.
		env.DataDir = *outDir
		env.Resume = *resume
	} else if *resume {
		fmt.Fprintln(os.Stderr, "experiments: -resume needs the cell cache (drop -nocache)")
		return 2
	}

	var written []string
	for _, e := range experiments {
		fmt.Printf("==> %s — %s\n", e.Name, e.Paper)
		summary, artifacts, err := e.Run(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.Name, err)
			if ctx.Err() != nil && !*nocache {
				fmt.Fprintln(os.Stderr, "experiments: interrupted; completed cells are journaled — run again with -resume")
			}
			return 1
		}
		fmt.Print(summary)
		for _, a := range artifacts {
			if err := os.WriteFile(filepath.Join(*outDir, a.Name), []byte(a.Content), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return 1
			}
			written = append(written, a.Name)
		}
		fmt.Println()
	}

	// Leave a browsable index behind when running the full suite.
	if *only == "" && len(written) > 0 {
		index := expt.IndexHTML(written)
		if err := os.WriteFile(filepath.Join(*outDir, "index.html"), []byte(index), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		fmt.Printf("index written to %s\n", filepath.Join(*outDir, "index.html"))
	}
	return 0
}
