package main

// Fleet execution: -peers runs the Table 2 grid — or, with -only fleet,
// the population-scale fleet experiment — through the fabric coordinator
// from this process: shards leased across the listed sweepd daemons,
// stolen from stragglers near the tail, and executed locally when the
// whole fleet is unreachable. The merge is byte-identical to a local
// Sweep, so the fleet is purely a throughput decision; 100k+ device
// populations are the -only fleet -peers sweet spot.

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"clocksched"
	"clocksched/internal/expt"
	"clocksched/internal/fabric"
	"clocksched/internal/fleet"
)

// splitPeers parses the comma-separated -peers list, dropping empties.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runFleet coordinates the Table 2 grid across the peer fleet. Fabric
// state (lease ledger, committed shards) lives under <out>/fabric, so an
// interrupted run resumes from its committed shards on the next
// invocation.
func runFleet(peerList, token, outDir, only string, seed uint64, progress bool) int {
	if only == "fleet" {
		return runFleetPopulation(peerList, token, outDir, seed, progress)
	}
	if only != "" && only != "table2" {
		fmt.Fprintf(os.Stderr, "experiments: -peers runs table2 or fleet; %q is local-only (drop -peers)\n", only)
		return 2
	}
	peers := splitPeers(peerList)
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := fabric.Config{
		Peers: peers,
		Token: token,
		Dir:   filepath.Join(outDir, "fabric"),
	}
	if progress {
		cfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "experiments: cell %d/%d\n", done, total)
		}
	}
	co, err := fabric.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: fleet:", err)
		return 1
	}

	spec := clocksched.NewSweepSpec(remoteTable2Config(seed))
	fmt.Printf("==> table2 (fleet of %d peer(s)) — %d cells\n", len(peers), spec.NumCells())
	res, err := co.Run(ctx, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: fleet run:", err)
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "experiments: interrupted; committed shards are ledgered — run again to resume")
		}
		return 1
	}
	if res.Telemetry.Replayed > 0 {
		fmt.Fprintf(os.Stderr, "experiments: fleet replayed %d cell(s) from the shard ledger\n", res.Telemetry.Replayed)
	}

	rows, err := foldTable2(res)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: fleet table2:", err)
		return 1
	}
	summary := expt.RenderTable2(rows)
	fmt.Print(summary)

	artifact := filepath.Join(outDir, "table2_fleet.txt")
	if err := os.WriteFile(artifact, []byte(summary), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}
	fmt.Printf("\nartifact written to %s\n", artifact)
	return 0
}

// runFleetPopulation coordinates the standing fleet experiment across the
// peer list: the identical spec the local `-only fleet` path builds
// (ExperimentSpec + ExperimentDevices), compiled to cells and fanned out
// through the fabric, so the two summaries are byte-comparable.
func runFleetPopulation(peerList, token, outDir string, seed uint64, progress bool) int {
	peers := splitPeers(peerList)
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	spec, err := fleet.ExperimentSpec(seed, fleet.ExperimentDevices())
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: fleet:", err)
		return 1
	}
	rc := fleet.RunConfig{
		Peers:     peers,
		PeerToken: token,
		FabricDir: filepath.Join(outDir, "fabric"),
	}
	if progress {
		rc.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "experiments: cell %d/%d\n", done, total)
		}
	}
	fmt.Printf("==> fleet (fleet of %d peer(s)) — %d devices\n", len(peers), spec.Devices)
	pop, err := fleet.Run(ctx, spec, rc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: fleet run:", err)
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "experiments: interrupted; committed shards are ledgered — run again to resume")
		}
		return 1
	}
	summary := pop.Render()
	fmt.Print(summary)
	artifact := filepath.Join(outDir, "fleet_fleet.txt")
	if err := os.WriteFile(artifact, []byte(summary), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}
	fmt.Printf("\nartifact written to %s\n", artifact)
	return 0
}
