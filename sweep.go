package clocksched

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"sort"
	"time"

	"clocksched/internal/sim"
	"clocksched/internal/sweep"
)

// SweepConfig describes a batch of measurement runs: either the full cross
// product of the Workloads × Policies × Seeds axes, or an explicit list of
// Cells. The batch fans across a bounded worker pool; because every run is
// a self-contained deterministic simulation, the merged results are
// bit-identical to running the same cells in a serial loop, whatever the
// worker count or completion order.
type SweepConfig struct {
	// Workloads, Policies, and Seeds are the grid axes; the sweep runs
	// their cross product in workload-major order (all policies and seeds
	// of the first workload, then the second, …). An empty axis
	// contributes its single zero value, which Run resolves to its
	// documented default (MPEG, constant full speed, seed 0).
	Workloads []Workload
	Policies  []Policy
	Seeds     []uint64

	// Duration, DeadlineSlack, CaptureTrace, Faults, and Watchdog apply
	// to every axis-built cell, with the same semantics as in Config.
	Duration      time.Duration
	DeadlineSlack time.Duration
	CaptureTrace  bool
	Faults        *FaultPlan
	Watchdog      *WatchdogConfig

	// Cells, when non-empty, is the explicit grid; the axes and the
	// shared settings above are ignored, and each cell's own fields
	// govern its run. Use this for irregular grids.
	Cells []Config

	// Workers bounds the concurrency; values < 1 select GOMAXPROCS.
	Workers int
	// FailFast aborts the sweep at the first cell error, cancelling
	// outstanding cells. The default runs every cell and reports all
	// failures, both per cell and joined in the returned error.
	FailFast bool
	// Cache, when non-nil, serves repeated cells from the
	// content-addressed result cache instead of re-simulating them.
	Cache *SweepCache
	// Progress, when non-nil, is called after each cell completes (run,
	// cache hit, or failure) with the number done and the grid total. A
	// resumed sweep reports its journal-replayed cells in one initial call,
	// so done-counts start at the replayed count instead of zero. Calls
	// may run concurrently and out of order, but each carries a distinct
	// done count and the final one reports done == total; the callback runs
	// outside the pool's internal lock, so it may block — or run further
	// sweeps — without stalling the workers.
	Progress func(done, total int)
	// Telemetry, when non-nil, instruments the worker pool, the cache, and
	// every cell's simulation stack. Purely observational: cell results and
	// cache keys are unaffected.
	Telemetry *Telemetry

	// Journal, when non-empty, is the path of the sweep's crash-safe
	// write-ahead journal. Each completed cell is durably committed (key +
	// result hash, fsynced) the moment it finishes, so a sweep killed
	// mid-run can be relaunched with Resume and replay the committed cells
	// from the disk cache instead of re-simulating them. Requires Cache —
	// the journal records hashes; the cache holds the bytes.
	Journal string
	// Resume replays a previous run's Journal instead of truncating it.
	// Cells whose journal hash matches the cached bytes are served without
	// re-simulation; everything else (including a torn journal tail from
	// the crash) re-runs, so the final SweepResult is byte-identical to an
	// uninterrupted sweep.
	Resume bool
	// CellTimeout, when positive, bounds each cell attempt's wall time.
	// The deadline is enforced at the simulation's quantum boundaries via
	// context cancellation; a cell that blows it fails with a wrapped
	// context.DeadlineExceeded and is not retried.
	CellTimeout time.Duration
	// Retries is the per-cell retry budget for transient failures —
	// injected cell aborts, or any error exposing Transient() bool — with
	// seeded exponential backoff. Zero disables retries; non-transient
	// failures are never retried.
	Retries int
	// RetryBase is the first backoff delay, doubling per attempt (jittered,
	// capped at 5s); zero selects 100ms.
	RetryBase time.Duration
	// FS, when non-nil, routes the sweep's durable writes — journal
	// appends and fsyncs, and the journal compaction rewrite — through an
	// injectable filesystem surface. It exists for crash/chaos testing
	// (the sweep service threads its disk-fault injector here); production
	// sweeps leave it nil, the real filesystem. Like Workers and Cache it
	// is a runtime resource, excluded from cache keys and SweepSpecs.
	FS DiskFS
}

// DiskFS is the injectable filesystem surface for durable sweep state:
// writes, fsyncs, and renames. The internal chaos-test disk injector
// implements it; so does any test double. A nil DiskFS always means the
// real filesystem.
type DiskFS interface {
	Write(f *os.File, p []byte) (int, error)
	Sync(f *os.File) error
	Rename(oldpath, newpath string) error
}

// SweepCell is one completed cell of a sweep.
type SweepCell struct {
	// Config is the fully-resolved cell configuration.
	Config Config
	// Result is the cell's measurement; nil when Err is non-nil.
	Result *Result
	// Err is the cell's failure, or sweep.ErrSkipped semantics: cells the
	// sweep aborted before running carry an error too.
	Err error
	// Cached reports that Result was served from the cache rather than
	// simulated.
	Cached bool
	// Replayed reports that the cell was committed by a previous
	// (interrupted) run's journal and served from the cache after hash
	// verification; implies Cached.
	Replayed bool
	// Attempts counts how many times the cell actually simulated: zero for
	// cached/replayed/skipped cells, more than one when transient failures
	// were retried.
	Attempts int
}

// SweepResult holds every cell of a completed sweep in grid order.
type SweepResult struct {
	// Cells is indexed by grid position: for axis-built sweeps,
	// (wi*len(Policies)+pi)*len(Seeds)+si; for explicit grids, the Cells
	// slice index.
	Cells []SweepCell

	// Telemetry summarizes the worker pool's activity over the sweep.
	Telemetry SweepTelemetry

	nw, np, ns int // axis dimensions; all zero for explicit grids
}

// SweepTelemetry is the pool activity summary of one completed sweep.
type SweepTelemetry struct {
	// Workers is the resolved pool size the sweep ran with.
	Workers int
	// PeakBusy is the most workers ever simultaneously running cells.
	PeakBusy int
	// Ran, Cached, and Failed partition the completed cells: simulated,
	// served from the cache, and errored. Skipped counts cells abandoned
	// by a fail-fast abort or context cancellation.
	Ran     int
	Cached  int
	Failed  int
	Skipped int
	// Replayed is the subset of Cached committed by a previous run's
	// journal — the cells a resumed sweep did not have to re-simulate.
	Replayed int
	// Retried counts extra attempts spent re-running transient failures.
	Retried int
}

// CellAt returns the cell at the given axis indices of an axis-built
// sweep, or nil when out of range or when the sweep ran an explicit grid.
func (r *SweepResult) CellAt(wi, pi, si int) *SweepCell {
	if wi < 0 || wi >= r.nw || pi < 0 || pi >= r.np || si < 0 || si >= r.ns {
		return nil
	}
	return &r.Cells[(wi*r.np+pi)*r.ns+si]
}

// SweepCellError is one failed cell of a completed sweep, as reported by
// SweepResult.Errors.
type SweepCellError struct {
	// Index is the cell's grid position.
	Index int
	// Workload, Policy, and Seed identify the cell's configuration.
	Workload string
	Policy   string
	Seed     uint64
	// Attempts counts how many times the cell simulated before giving up.
	Attempts int
	// TimedOut marks a blown per-cell deadline budget.
	TimedOut bool
	// Transient marks a failure the retry layer classified as retryable —
	// the retry budget was exhausted without a success.
	Transient bool
	// Skipped marks a cell that never ran (fail-fast abort or context
	// cancellation).
	Skipped bool
	// Err is the cell's error.
	Err error
}

// Errors reports every failed cell in grid order — deterministic however
// the workers interleaved — classifying each failure so callers can triage
// a partial sweep (retry-exhausted vs timed out vs skipped) without string
// matching. An all-green sweep returns nil.
func (r *SweepResult) Errors() []SweepCellError {
	var out []SweepCellError
	for i, c := range r.Cells {
		if c.Err == nil {
			continue
		}
		out = append(out, SweepCellError{
			Index:     i,
			Workload:  string(c.Config.Workload),
			Policy:    c.Config.Policy.Name(),
			Seed:      c.Config.Seed,
			Attempts:  c.Attempts,
			TimedOut:  errors.Is(c.Err, context.DeadlineExceeded),
			Transient: sweep.IsTransient(c.Err),
			Skipped:   errors.Is(c.Err, sweep.ErrSkipped),
			Err:       c.Err,
		})
	}
	return out
}

// SweepStats aggregates a sweep's outcome.
type SweepStats struct {
	Cells  int // grid size
	Failed int // cells that errored or were skipped
	Cached int // cells served from the cache

	// Energy statistics over the successful cells.
	MinEnergyJoules  float64
	MeanEnergyJoules float64
	MaxEnergyJoules  float64
	// TotalMisses sums missed deadlines across successful cells.
	TotalMisses int
}

// Stats aggregates the sweep.
func (r *SweepResult) Stats() SweepStats {
	s := SweepStats{Cells: len(r.Cells)}
	sum := 0.0
	n := 0
	for _, c := range r.Cells {
		if c.Err != nil || c.Result == nil {
			s.Failed++
			continue
		}
		if c.Cached {
			s.Cached++
		}
		e := c.Result.EnergyJoules
		if n == 0 || e < s.MinEnergyJoules {
			s.MinEnergyJoules = e
		}
		if n == 0 || e > s.MaxEnergyJoules {
			s.MaxEnergyJoules = e
		}
		sum += e
		n++
		s.TotalMisses += c.Result.Misses
	}
	if n > 0 {
		s.MeanEnergyJoules = sum / float64(n)
	}
	return s
}

// grid expands the configuration into its cell list and axis dimensions.
func (cfg SweepConfig) grid() ([]Config, int, int, int) {
	if len(cfg.Cells) > 0 {
		cells := make([]Config, len(cfg.Cells))
		copy(cells, cfg.Cells)
		return cells, 0, 0, 0
	}
	ws := cfg.Workloads
	if len(ws) == 0 {
		ws = []Workload{""}
	}
	ps := cfg.Policies
	if len(ps) == 0 {
		ps = []Policy{{}}
	}
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{0}
	}
	cells := make([]Config, 0, len(ws)*len(ps)*len(seeds))
	for _, w := range ws {
		for _, p := range ps {
			for _, s := range seeds {
				cells = append(cells, Config{
					Workload:      w,
					Policy:        p,
					Seed:          s,
					Duration:      cfg.Duration,
					DeadlineSlack: cfg.DeadlineSlack,
					CaptureTrace:  cfg.CaptureTrace,
					Faults:        cfg.Faults,
					Watchdog:      cfg.Watchdog,
				})
			}
		}
	}
	return cells, len(ws), len(ps), len(seeds)
}

// GridSize reports how many cells the sweep will run: the axis cross
// product, or the explicit Cells length. Zero means an empty (invalid)
// grid.
func (cfg SweepConfig) GridSize() int {
	cells, _, _, _ := cfg.grid()
	return len(cells)
}

// Validate checks the whole sweep configuration eagerly — every cell of
// the expanded grid plus the durability and retry knobs — and reports all
// problems at once via errors.Join. Sweep calls it before anything runs;
// the sweep service calls it at admission so a malformed job is rejected
// at submit time instead of after it is queued.
func (cfg SweepConfig) Validate() error {
	cells, _, _, _ := cfg.grid()
	var verrs []error
	if len(cells) == 0 {
		verrs = append(verrs, fmt.Errorf("clocksched: empty sweep grid"))
	}
	for i, c := range cells {
		if err := c.Validate(); err != nil {
			verrs = append(verrs, fmt.Errorf("cell %d (%s, %s): %w",
				i, c.withDefaults().Workload, c.withDefaults().Policy.Name(), err))
		}
	}
	if cfg.Journal != "" && cfg.Cache == nil {
		verrs = append(verrs, fmt.Errorf("clocksched: Journal requires Cache — the journal records result hashes, the cache holds the bytes"))
	}
	if cfg.Resume && cfg.Journal == "" {
		verrs = append(verrs, fmt.Errorf("clocksched: Resume requires Journal"))
	}
	if cfg.CellTimeout < 0 {
		verrs = append(verrs, fmt.Errorf("clocksched: negative CellTimeout %v", cfg.CellTimeout))
	}
	if cfg.Retries < 0 {
		verrs = append(verrs, fmt.Errorf("clocksched: negative Retries %d", cfg.Retries))
	}
	if cfg.RetryBase < 0 {
		verrs = append(verrs, fmt.Errorf("clocksched: negative RetryBase %v", cfg.RetryBase))
	}
	return errors.Join(verrs...)
}

// Sweep executes the batch. Every cell is validated before anything runs,
// so a malformed grid fails fast with every problem joined into one error.
//
// Under FailFast a cell failure aborts the sweep and Sweep returns (nil,
// err). Otherwise every cell runs, per-cell failures land in
// SweepResult.Cells[i].Err, and the returned error is their errors.Join —
// a non-nil SweepResult alongside a non-nil error means a partial sweep.
// Cancelling the context aborts outstanding cells at their next quantum
// boundary; the returned error then satisfies errors.Is(err, ctx.Err()).
func Sweep(ctx context.Context, cfg SweepConfig) (*SweepResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cells, nw, np, ns := cfg.grid()

	var jr *sweep.CellJournal
	if cfg.Journal != "" {
		var err error
		jr, err = sweep.OpenCellJournalFS(cfg.Journal, cfg.Resume, cfg.FS)
		if err != nil {
			return nil, err
		}
		defer jr.Close()
	}

	jobs := make([]sweep.Job, len(cells))
	for i, c := range cells {
		c := c
		// The cache key is computed before the telemetry registry is
		// attached and hashes named fields only, so instrumentation can
		// never split the cache.
		key := cacheKey(c)
		if c.Telemetry == nil {
			c.Telemetry = cfg.Telemetry
		}
		jobs[i] = sweep.Job{
			Key: key,
			Run: func(ctx context.Context) (any, error) {
				return RunContext(ctx, c)
			},
		}
	}
	var inner *sweep.Cache
	if cfg.Cache != nil {
		inner = cfg.Cache.inner
	}
	var pstats sweep.PoolStats
	outs, err := sweep.Run(ctx, jobs, sweep.Options{
		Workers:     cfg.Workers,
		FailFast:    cfg.FailFast,
		Cache:       inner,
		OnProgress:  cfg.Progress,
		Telemetry:   cfg.Telemetry.registry(),
		Stats:       &pstats,
		CellTimeout: cfg.CellTimeout,
		Retry:       sweep.RetryPolicy{Max: cfg.Retries, Base: cfg.RetryBase},
		Journal:     jr,
	})
	if cfg.FailFast && err != nil {
		return nil, err
	}
	res := &SweepResult{
		Cells: make([]SweepCell, len(cells)),
		Telemetry: SweepTelemetry{
			Workers:  pstats.Workers,
			PeakBusy: pstats.PeakBusy,
			Ran:      pstats.Ran,
			Cached:   pstats.Cached,
			Failed:   pstats.Failed,
			Skipped:  pstats.Skipped,
			Replayed: pstats.Replayed,
			Retried:  pstats.Retries,
		},
		nw: nw, np: np, ns: ns,
	}
	for i, o := range outs {
		cell := SweepCell{
			Config:   cells[i].withDefaults(),
			Err:      o.Err,
			Cached:   o.Cached,
			Replayed: o.Replayed,
			Attempts: o.Attempts,
		}
		if o.Err == nil {
			r, ok := o.Value.(*Result)
			if !ok {
				cell.Err = fmt.Errorf("clocksched: sweep cell %d returned %T", i, o.Value)
			} else {
				cell.Result = r
			}
		}
		res.Cells[i] = cell
	}
	return res, err
}

// SweepCache is a content-addressed cache of sweep cell results: a bounded
// in-memory LRU with an optional persistent on-disk layer. Keys hash the
// full cell configuration together with the simulation version, so any
// change to the simulation (a sim.Version bump) or to the cell spec misses
// cleanly rather than serving stale results. It is safe for concurrent use
// and can be shared across sweeps.
type SweepCache struct {
	inner *sweep.Cache
}

// SweepCacheStats counts cache traffic.
type SweepCacheStats struct {
	Hits     int // served from memory or disk
	DiskHits int // subset of Hits that came off disk
	Misses   int
	Corrupt  int   // corrupt disk entries quarantined (deleted) as misses
	Entries  int   // live in-memory entries
	Bytes    int64 // encoded bytes held in memory
}

// NewSweepCache builds a cache holding at most maxEntries results in
// memory (non-positive selects a default of 1024). A non-empty dir adds a
// persistent disk layer under it — one file per cell, written atomically —
// so repeated sweeps across process restarts skip already-measured cells.
func NewSweepCache(maxEntries int, dir string) (*SweepCache, error) {
	inner, err := sweep.NewCache(maxEntries, dir, sweep.Codec{
		Encode: func(v any) ([]byte, error) {
			r, ok := v.(*Result)
			if !ok {
				return nil, fmt.Errorf("clocksched: caching %T, want *Result", v)
			}
			return encodeResult(r)
		},
		Decode: func(b []byte) (any, error) {
			return decodeResult(b)
		},
	})
	if err != nil {
		return nil, err
	}
	return &SweepCache{inner: inner}, nil
}

// SetFS routes the cache's disk writes through an injectable filesystem
// surface (see DiskFS). Call it once, before the cache sees traffic; the
// sweep service does this at boot when chaos faults are armed. Production
// caches leave the default (real) filesystem.
func (c *SweepCache) SetFS(fs DiskFS) {
	c.inner.SetFS(fs)
}

// Stats reports the cache's traffic counters.
func (c *SweepCache) Stats() SweepCacheStats {
	s := c.inner.Stats()
	return SweepCacheStats{
		Hits:     s.Hits,
		DiskHits: s.DiskHits,
		Misses:   s.Misses,
		Corrupt:  s.Corrupt,
		Entries:  s.Entries,
		Bytes:    s.Bytes,
	}
}

// cacheKey is the content address of one cell's Result under the current
// simulation version.
func cacheKey(cfg Config) string {
	return cacheKeyAt(sim.Version, cfg)
}

// cacheKeyAt hashes the cell configuration under an explicit simulation
// version; bumping sim.Version therefore invalidates every existing entry.
func cacheKeyAt(version string, cfg Config) string {
	cfg = cfg.withDefaults()
	h := sim.NewHasherAt("clocksched.Result", version).
		Field("workload", cfg.Workload).
		Field("policy", cfg.Policy.cacheString()).
		Field("seed", cfg.Seed).
		Field("duration", int64(cfg.Duration)).
		Field("slack", int64(cfg.DeadlineSlack)).
		Field("trace", cfg.CaptureTrace)
	if cfg.Faults != nil {
		h.Field("faults", fmt.Sprintf("%+v", *cfg.Faults))
	}
	if cfg.Watchdog != nil {
		h.Field("watchdog", fmt.Sprintf("%+v", *cfg.Watchdog))
	}
	return h.Sum()
}

// residencyWire is one TimeAtMHz entry, flattened for canonical encoding.
type residencyWire struct {
	MHz float64
	D   time.Duration
}

// resultWire is the canonical serialization of a Result. Gob randomizes
// map iteration order, so TimeAtMHz is flattened into a slice sorted by
// frequency: the encoded bytes of equal Results are equal, which both the
// byte-identity determinism guarantee and the disk cache rely on.
type resultWire struct {
	EnergyJoules    float64
	AvgPowerWatts   float64
	PeakPowerWatts  float64
	MeanUtilization float64

	Deadlines   int
	Misses      int
	MaxLateness time.Duration

	ClockChanges   int
	VoltageChanges int
	StallTime      time.Duration

	ContextSwitches int
	IdleShare       float64

	Residency []residencyWire
	Trace     []UtilPoint

	Faults   *FaultReport
	Watchdog *WatchdogReport

	Telemetry RunTelemetry
}

// encodeResult serializes a Result canonically: equal Results produce
// equal bytes.
func encodeResult(r *Result) ([]byte, error) {
	w := resultWire{
		EnergyJoules:    r.EnergyJoules,
		AvgPowerWatts:   r.AvgPowerWatts,
		PeakPowerWatts:  r.PeakPowerWatts,
		MeanUtilization: r.MeanUtilization,
		Deadlines:       r.Deadlines,
		Misses:          r.Misses,
		MaxLateness:     r.MaxLateness,
		ClockChanges:    r.ClockChanges,
		VoltageChanges:  r.VoltageChanges,
		StallTime:       r.StallTime,
		ContextSwitches: r.ContextSwitches,
		IdleShare:       r.IdleShare,
		Trace:           r.trace,
		Faults:          r.Faults,
		Watchdog:        r.Watchdog,
		Telemetry:       r.Telemetry,
	}
	for mhz, d := range r.TimeAtMHz {
		w.Residency = append(w.Residency, residencyWire{MHz: mhz, D: d})
	}
	sort.Slice(w.Residency, func(i, j int) bool { return w.Residency[i].MHz < w.Residency[j].MHz })
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(w); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// decodeResult reverses encodeResult.
func decodeResult(b []byte) (*Result, error) {
	var w resultWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return nil, err
	}
	r := &Result{
		EnergyJoules:    w.EnergyJoules,
		AvgPowerWatts:   w.AvgPowerWatts,
		PeakPowerWatts:  w.PeakPowerWatts,
		MeanUtilization: w.MeanUtilization,
		Deadlines:       w.Deadlines,
		Misses:          w.Misses,
		MaxLateness:     w.MaxLateness,
		ClockChanges:    w.ClockChanges,
		VoltageChanges:  w.VoltageChanges,
		StallTime:       w.StallTime,
		ContextSwitches: w.ContextSwitches,
		IdleShare:       w.IdleShare,
		TimeAtMHz:       map[float64]time.Duration{},
		trace:           w.Trace,
		Faults:          w.Faults,
		Watchdog:        w.Watchdog,
		Telemetry:       w.Telemetry,
	}
	for _, e := range w.Residency {
		r.TimeAtMHz[e.MHz] = e.D
	}
	return r, nil
}
