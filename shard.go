package clocksched

// Shard-scoped sweep specs. The distributed sweep fabric decomposes one
// SweepSpec into contiguous runs of grid cells, ships each run to a peer
// daemon as a self-contained explicit-cells SweepSpec, and stitches the
// returned results back into the full grid. The decomposition is exact by
// construction: a shard's cells are the same CellSpec projections the
// peer's own grid expansion would produce, the peer resolves defaults the
// same way a local run does, and MergeShardResults restores the original
// axis dimensions — so EncodeSweepResult of the merged result is
// byte-identical to an uninterrupted serial run of the whole spec,
// whatever mix of peers (or local fallback) computed the pieces.

import "fmt"

// cellSpecs expands the spec's grid into per-cell specs in grid order —
// workload-major, exactly mirroring SweepConfig.grid — with the shared
// settings copied onto every axis-built cell. An explicit-cells spec
// returns its cells unchanged.
func (s SweepSpec) cellSpecs() []CellSpec {
	if len(s.Cells) > 0 {
		cells := make([]CellSpec, len(s.Cells))
		copy(cells, s.Cells)
		return cells
	}
	ws := s.Workloads
	if len(ws) == 0 {
		ws = []Workload{""}
	}
	ps := s.Policies
	if len(ps) == 0 {
		ps = []Policy{{}}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{0}
	}
	cells := make([]CellSpec, 0, len(ws)*len(ps)*len(seeds))
	for _, w := range ws {
		for _, p := range ps {
			for _, sd := range seeds {
				cells = append(cells, CellSpec{
					Workload:      w,
					Policy:        p,
					Seed:          sd,
					Duration:      s.Duration,
					DeadlineSlack: s.DeadlineSlack,
					CaptureTrace:  s.CaptureTrace,
					Faults:        s.Faults,
					Watchdog:      s.Watchdog,
				})
			}
		}
	}
	return cells
}

// dims reports the spec's axis dimensions as SweepConfig.grid would:
// empty axes contribute their single default value, and an explicit-cells
// spec is dimensionless (0, 0, 0).
func (s SweepSpec) dims() (nw, np, ns int) {
	if len(s.Cells) > 0 {
		return 0, 0, 0
	}
	nw, np, ns = len(s.Workloads), len(s.Policies), len(s.Seeds)
	if nw == 0 {
		nw = 1
	}
	if np == 0 {
		np = 1
	}
	if ns == 0 {
		ns = 1
	}
	return nw, np, ns
}

// NumCells reports the spec's grid size: the axis cross product, or the
// explicit Cells length. It does not check the version stamp — counting
// cells is shape arithmetic, not execution.
func (s SweepSpec) NumCells() int {
	if len(s.Cells) > 0 {
		return len(s.Cells)
	}
	nw, np, ns := s.dims()
	return nw * np * ns
}

// Shard returns the sub-spec covering grid cells [lo, hi) as an
// explicit-cells spec carrying the parent's version stamp and
// failure-handling knobs. Running the shard anywhere produces exactly the
// cells a full run would produce at those grid positions.
func (s SweepSpec) Shard(lo, hi int) (SweepSpec, error) {
	total := s.NumCells()
	if lo < 0 || hi > total || lo >= hi {
		return SweepSpec{}, fmt.Errorf("clocksched: shard [%d, %d) out of grid [0, %d)", lo, hi, total)
	}
	return SweepSpec{
		SimVersion:  s.SimVersion,
		Cells:       s.cellSpecs()[lo:hi],
		FailFast:    s.FailFast,
		CellTimeout: s.CellTimeout,
		Retries:     s.Retries,
		RetryBase:   s.RetryBase,
	}, nil
}

// MergeShardResults stitches per-shard results — contiguous, in grid
// order, jointly covering the spec's whole grid — back into the full-grid
// SweepResult, restoring the spec's axis dimensions so CellAt and the
// canonical encoding behave exactly as after a local run. Shard telemetry
// is summed; it is runtime provenance and never crosses the canonical
// encoding anyway.
func MergeShardResults(spec SweepSpec, shards []*SweepResult) (*SweepResult, error) {
	total := spec.NumCells()
	nw, np, ns := spec.dims()
	merged := &SweepResult{
		Cells: make([]SweepCell, 0, total),
		nw:    nw, np: np, ns: ns,
	}
	for i, sh := range shards {
		if sh == nil {
			return nil, fmt.Errorf("clocksched: merging shard %d: nil result", i)
		}
		merged.Cells = append(merged.Cells, sh.Cells...)
		t := &merged.Telemetry
		t.PeakBusy = max(t.PeakBusy, sh.Telemetry.PeakBusy)
		t.Workers = max(t.Workers, sh.Telemetry.Workers)
		t.Ran += sh.Telemetry.Ran
		t.Cached += sh.Telemetry.Cached
		t.Failed += sh.Telemetry.Failed
		t.Skipped += sh.Telemetry.Skipped
		t.Replayed += sh.Telemetry.Replayed
		t.Retried += sh.Telemetry.Retried
	}
	if len(merged.Cells) != total {
		return nil, fmt.Errorf("clocksched: merged %d cells, grid needs %d", len(merged.Cells), total)
	}
	return merged, nil
}
