package clocksched

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// This file is the extensible policy registry: the open-ended replacement
// for the package's original closed constructor set. A policy is named by a
// PolicyRef — a registry name plus a flat numeric parameter map — and
// materialized through the builder registered under that name. The five
// paper policies are pre-registered below; future families (OA, AVR, BKP,
// the optimal-schedule oracle) plug in from their own files with
// RegisterPolicy and need no changes to clocksched.go.
//
// A Policy built from a ref keeps the ref alongside its resolved fields, so
// it serializes in the compact {"name": ..., "params": ...} wire form
// inside a SweepSpec and reconstructs through the receiving process's
// registry. Its Name(), validation, and execution are exactly those of the
// resolved fields: a ref-built PAST-peg-peg is indistinguishable at run
// time from the deprecated PASTPegPeg() constructor's output, so Table 2
// rows and result semantics are stable across the two forms.

// PolicyRef names a registered policy and its parameters. The zero Params
// map selects every default. Params values are plain float64s so the ref
// round-trips through JSON canonically; booleans are 0/1 and enumerations
// (like speed setters) are small integer codes documented per policy.
type PolicyRef struct {
	Name   string             `json:"name"`
	Params map[string]float64 `json:"params,omitempty"`
}

// Build materializes the referenced policy through the registry.
func (r PolicyRef) Build() (Policy, error) { return NewPolicy(r.Name, r.Params) }

// PolicyBuilder materializes a Policy from a parameter map. Builders must
// be deterministic and must reject parameters they do not understand — a
// misspelled key silently meaning "default" would corrupt a sweep grid.
// The Params helper wraps both concerns.
type PolicyBuilder func(params Params) (Policy, error)

var policyReg = struct {
	sync.RWMutex
	m map[string]PolicyBuilder
}{m: map[string]PolicyBuilder{}}

// RegisterPolicy adds a named policy builder to the registry. Registering
// an empty name, a nil builder, or a name already taken returns an error;
// names are case-sensitive and conventionally lower-kebab-case.
func RegisterPolicy(name string, build PolicyBuilder) error {
	if name == "" {
		return fmt.Errorf("clocksched: RegisterPolicy with empty name")
	}
	if build == nil {
		return fmt.Errorf("clocksched: RegisterPolicy(%q) with nil builder", name)
	}
	policyReg.Lock()
	defer policyReg.Unlock()
	if _, dup := policyReg.m[name]; dup {
		return fmt.Errorf("clocksched: policy %q already registered", name)
	}
	policyReg.m[name] = build
	return nil
}

// mustRegister is RegisterPolicy for this package's own init-time entries,
// where a failure is a programming error.
func mustRegister(name string, build PolicyBuilder) {
	if err := RegisterPolicy(name, build); err != nil {
		panic(err)
	}
}

// RegisteredPolicies lists every registered policy name, sorted.
func RegisteredPolicies() []string {
	policyReg.RLock()
	defer policyReg.RUnlock()
	names := make([]string, 0, len(policyReg.m))
	for n := range policyReg.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewPolicy materializes the named registered policy. The returned Policy
// carries the ref, so it serializes in the {"name", "params"} wire form and
// its cache identity includes the registry name. Unknown names and unknown
// or out-of-domain parameters are errors.
func NewPolicy(name string, params map[string]float64) (Policy, error) {
	policyReg.RLock()
	build := policyReg.m[name]
	policyReg.RUnlock()
	if build == nil {
		return Policy{}, fmt.Errorf("clocksched: unknown policy %q (registered: %s)",
			name, strings.Join(RegisteredPolicies(), ", "))
	}
	ps := newParams(params)
	p, err := build(ps)
	if err != nil {
		return Policy{}, fmt.Errorf("clocksched: building policy %q: %w", name, err)
	}
	if err := ps.err(); err != nil {
		return Policy{}, fmt.Errorf("clocksched: building policy %q: %w", name, err)
	}
	ref := &PolicyRef{Name: name}
	if len(params) > 0 {
		ref.Params = make(map[string]float64, len(params))
		for k, v := range params {
			ref.Params[k] = v
		}
	}
	p.Ref = ref
	return p, nil
}

// Params hands a builder its parameter map with bookkeeping: each Get
// consumes a key, and err reports any keys the builder never consumed, so
// a typo in a sweep spec fails the build instead of silently defaulting.
type Params struct {
	m    map[string]float64
	used map[string]bool
}

func newParams(m map[string]float64) Params {
	return Params{m: m, used: map[string]bool{}}
}

// Get returns the named parameter, or def when absent.
func (p Params) Get(name string, def float64) float64 {
	p.used[name] = true
	if v, ok := p.m[name]; ok {
		return v
	}
	return def
}

// Bool reads a 0/1-coded parameter.
func (p Params) Bool(name string, def bool) bool {
	d := 0.0
	if def {
		d = 1
	}
	return p.Get(name, d) != 0
}

// Int reads an integer-valued parameter, erroring via err() on fractions.
func (p Params) Int(name string, def int) int {
	v := p.Get(name, float64(def))
	if v != float64(int(v)) {
		p.used["\x00frac:"+name] = true // poison: reported by err
	}
	return int(v)
}

// err reports unconsumed or malformed parameters.
func (p Params) err() error {
	var bad []string
	for k := range p.m {
		if !p.used[k] {
			bad = append(bad, fmt.Sprintf("unknown parameter %q", k))
		}
	}
	for k := range p.used {
		if strings.HasPrefix(k, "\x00frac:") {
			bad = append(bad, fmt.Sprintf("parameter %q must be an integer", strings.TrimPrefix(k, "\x00frac:")))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("%s", strings.Join(bad, "; "))
}

// setterFromCode decodes the numeric speed-setter encoding used in
// parameter maps: 0 one, 1 double, 2 peg.
func setterFromCode(code int) (SpeedSetter, error) {
	switch code {
	case 0:
		return One, nil
	case 1:
		return Double, nil
	case 2:
		return Peg, nil
	default:
		return "", fmt.Errorf("speed-setter code %d outside 0 (one), 1 (double), 2 (peg)", code)
	}
}

// The five paper policies plus the deadline-feasible zoo. Parameter
// documentation:
//
//	constant       mhz (default 206.4), low_voltage (0/1)
//	past-peg-peg   lo_percent (93), hi_percent (98), voltage_scale (0/1)
//	pering-avg-n   n (12), up (2), down (2) [setter codes], voltage_scale
//	deadline       voltage_scale (0/1)
//	proportional   n (12), target_percent (80), voltage_scale (0/1)
//	oa             slack_quanta (3), voltage_scale (0/1)
//	avr            slack_quanta (3), voltage_scale (0/1)
//	bkp            slack_quanta (3), voltage_scale (0/1)
func init() {
	zoo := func(name string) {
		mustRegister(name, func(ps Params) (Policy, error) {
			p := Policy{
				Zoo:          name,
				SlackQuanta:  ps.Int("slack_quanta", 3),
				VoltageScale: ps.Bool("voltage_scale", false),
			}
			if err := p.Validate(); err != nil {
				return Policy{}, err
			}
			return p, nil
		})
	}
	zoo("oa")
	zoo("avr")
	zoo("bkp")
	mustRegister("constant", func(ps Params) (Policy, error) {
		return ConstantPolicy(ps.Get("mhz", 206.4), ps.Bool("low_voltage", false)), nil
	})
	mustRegister("past-peg-peg", func(ps Params) (Policy, error) {
		p := PASTPegPeg()
		p.LoPercent = ps.Int("lo_percent", p.LoPercent)
		p.HiPercent = ps.Int("hi_percent", p.HiPercent)
		p.VoltageScale = ps.Bool("voltage_scale", false)
		return p, nil
	})
	mustRegister("pering-avg-n", func(ps Params) (Policy, error) {
		up, err := setterFromCode(ps.Int("up", 2))
		if err != nil {
			return Policy{}, fmt.Errorf("up: %w", err)
		}
		down, err := setterFromCode(ps.Int("down", 2))
		if err != nil {
			return Policy{}, fmt.Errorf("down: %w", err)
		}
		p := PeringAvgN(ps.Int("n", 12), up, down)
		p.VoltageScale = ps.Bool("voltage_scale", false)
		return p, nil
	})
	mustRegister("deadline", func(ps Params) (Policy, error) {
		return DeadlinePolicy(ps.Bool("voltage_scale", false)), nil
	})
	mustRegister("proportional", func(ps Params) (Policy, error) {
		return ProportionalPolicy(ps.Int("n", 12), ps.Int("target_percent", 80)), nil
	})
}

// MarshalJSON emits the registry wire form {"name", "params"} for a
// ref-built policy and the flat field form otherwise, so specs written
// before the registry existed keep their exact encoding.
func (p Policy) MarshalJSON() ([]byte, error) {
	if p.Ref != nil {
		return json.Marshal(*p.Ref)
	}
	type plain Policy
	return json.Marshal(plain(p))
}

// UnmarshalJSON accepts both wire forms. The registry form is rebuilt
// through this process's registry, so a SweepSpec naming a policy the
// receiving daemon does not have fails at decode — admission time — rather
// than mid-sweep.
func (p *Policy) UnmarshalJSON(data []byte) error {
	var probe struct {
		Name *string `json:"name"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return err
	}
	if probe.Name != nil {
		var ref PolicyRef
		if err := json.Unmarshal(data, &ref); err != nil {
			return err
		}
		built, err := ref.Build()
		if err != nil {
			return err
		}
		*p = built
		return nil
	}
	type plain Policy
	var pl plain
	if err := json.Unmarshal(data, &pl); err != nil {
		return err
	}
	*p = Policy(pl)
	return nil
}

// policyRefWire is the gob form of a PolicyRef: parameters as parallel
// sorted-key slices, because a Go map gob-encodes in random iteration
// order and EncodeSweepResult promises canonical bytes.
type policyRefWire struct {
	Name string
	Keys []string
	Vals []float64
}

// GobEncode serializes the ref with sorted parameter keys so equal refs
// always produce equal bytes inside EncodeSweepResult envelopes.
func (r PolicyRef) GobEncode() ([]byte, error) {
	w := policyRefWire{Name: r.Name}
	for k := range r.Params {
		w.Keys = append(w.Keys, k)
	}
	sort.Strings(w.Keys)
	w.Vals = make([]float64, len(w.Keys))
	for i, k := range w.Keys {
		w.Vals[i] = r.Params[k]
	}
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(w); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// GobDecode reverses GobEncode.
func (r *PolicyRef) GobDecode(data []byte) error {
	var w policyRefWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if len(w.Keys) != len(w.Vals) {
		return fmt.Errorf("clocksched: policy ref wire form has %d keys, %d values", len(w.Keys), len(w.Vals))
	}
	r.Name = w.Name
	r.Params = nil
	if len(w.Keys) > 0 {
		r.Params = make(map[string]float64, len(w.Keys))
		for i, k := range w.Keys {
			r.Params[k] = w.Vals[i]
		}
	}
	return nil
}

// cacheString renders the policy canonically for content-addressed cache
// keys. The flat field form has a deterministic %+v rendering; a ref adds
// its name and sorted parameters (a map, so %+v alone would not be
// canonical, and the pointer identity must not leak into the key).
func (p Policy) cacheString() string {
	flat := p
	flat.Ref = nil
	if p.Ref == nil {
		return fmt.Sprintf("%+v", flat)
	}
	keys := make([]string, 0, len(p.Ref.Params))
	for k := range p.Ref.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%+v;ref=%s{", flat, p.Ref.Name)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%v,", k, p.Ref.Params[k])
	}
	b.WriteString("}")
	return b.String()
}
