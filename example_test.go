package clocksched_test

import (
	"fmt"
	"log"
	"time"

	"clocksched"
)

// The simulation is deterministic, so examples print stable output.

// Run the paper's best heuristic policy against the MPEG workload.
func ExampleRun() {
	res, err := clocksched.Run(clocksched.Config{
		Workload: clocksched.MPEG,
		Policy:   clocksched.PASTPegPeg(),
		Seed:     1,
		Duration: 10 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("missed %d of %d deadlines\n", res.Misses, res.Deadlines)
	fmt.Printf("visited 59.0 MHz: %v\n", res.TimeAtMHz[59.0] > 0)
	fmt.Printf("visited 206.4 MHz: %v\n", res.TimeAtMHz[206.4] > 0)
	// Output:
	// missed 0 of 250 deadlines
	// visited 59.0 MHz: true
	// visited 206.4 MHz: true
}

// Compare a constant baseline against an interval policy.
func ExampleConstantPolicy() {
	baseline, err := clocksched.Run(clocksched.Config{
		Workload: clocksched.MPEG,
		Policy:   clocksched.ConstantPolicy(206.4, false),
		Seed:     1,
		Duration: 10 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	sweet, err := clocksched.Run(clocksched.Config{
		Workload: clocksched.MPEG,
		Policy:   clocksched.ConstantPolicy(132.7, false),
		Seed:     1,
		Duration: 10 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("132.7 MHz saves energy: %v\n", sweet.EnergyJoules < baseline.EnergyJoules)
	fmt.Printf("and still misses nothing: %v\n", sweet.Misses == 0)
	// Output:
	// 132.7 MHz saves energy: true
	// and still misses nothing: true
}

// Policies are described in the paper's own naming style.
func ExamplePolicy_Name() {
	fmt.Println(clocksched.PASTPegPeg().Name())
	fmt.Println(clocksched.PeringAvgN(9, clocksched.One, clocksched.One).Name())
	fmt.Println(clocksched.ConstantPolicy(132.7, true).Name())
	// Output:
	// PAST, peg-peg, 93%-98%
	// AVG_9, one-one, 50%-70%
	// Constant @ 132.7MHz, 1.23V
}

// The SA-1100's discrete clock steps.
func ExampleClockStepsMHz() {
	steps := clocksched.ClockStepsMHz()
	fmt.Println(len(steps), "steps from", steps[0], "to", steps[len(steps)-1], "MHz")
	// Output:
	// 11 steps from 59 to 206.4 MHz
}
