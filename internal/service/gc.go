package service

// Retention GC: an unattended daemon accumulates terminal jobs — result
// bytes, cell journals, manifest records — until the disk fills and every
// durable write starts failing. The reaper bounds that growth two ways
// (job count and byte footprint), deleting only terminal jobs and always
// oldest-first, then compacts the manifest so deleted jobs' records do not
// grow the WAL forever.
//
// Compaction is the one moment the manifest — the daemon's root of trust —
// is rewritten rather than appended, so it is guarded: a complete verified
// snapshot (manifest.bak) is written first, and only then is manifest.wal
// rewritten and verified. A crash or injected fault at any point leaves
// either a complete wal, or a complete bak that the next boot merges back
// in (union of submits, terminal-wins on states). The invariant the chaos
// suite asserts: an acknowledged job's submit record is never lost.

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"clocksched/internal/journal"
)

// GCStats reports one reaper pass.
type GCStats struct {
	// JobsDeleted counts terminal jobs removed (dirs, records, table
	// entries).
	JobsDeleted int
	// BytesFreed is the on-disk footprint of the deleted job dirs.
	BytesFreed int64
	// DataBytes is the jobs/ footprint after the pass.
	DataBytes int64
	// Compacted reports whether the manifest was rewritten.
	Compacted bool
}

// gcLoop runs GC on the configured cadence until the server stops.
func (s *Server) gcLoop() {
	defer s.gcWg.Done()
	t := time.NewTicker(s.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-s.gcStop:
			return
		case <-t.C:
			s.GC()
		}
	}
}

// GC runs one retention pass: terminal jobs beyond Config.RetainResults
// are deleted oldest-first, then more oldest-terminal jobs until the
// jobs/ footprint fits Config.MaxDataBytes. Queued, running, and
// preempted jobs are never candidates — retention can only ever discard
// finished work, not accepted work. If anything was deleted the manifest
// is compacted (see compactManifestLocked). Safe to call at any time,
// including with both limits unset (it then only measures).
func (s *Server) GC() (GCStats, error) {
	var st GCStats
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return st, nil
	}

	// Snapshot, oldest-first (s.order is submission order), and measure.
	var terminals []*job
	sizes := map[string]int64{}
	var total int64
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		isTerminal := j.state.terminal()
		j.mu.Unlock()
		sz := dirSize(j.dir)
		sizes[id] = sz
		total += sz
		if isTerminal {
			terminals = append(terminals, j)
		}
	}

	victims := map[string]*job{}
	if n := s.cfg.RetainResults; n > 0 && len(terminals) > n {
		for _, j := range terminals[:len(terminals)-n] {
			victims[j.id] = j
			total -= sizes[j.id]
		}
	}
	if max := s.cfg.MaxDataBytes; max > 0 {
		for _, j := range terminals {
			if total <= max {
				break
			}
			if _, dup := victims[j.id]; dup {
				continue
			}
			victims[j.id] = j
			total -= sizes[j.id]
		}
	}
	st.DataBytes = total
	s.reg.Gauge(mDataBytes).Set(float64(total))
	s.reg.Counter(mGCRuns).Inc()
	if len(victims) == 0 {
		return st, nil
	}

	keep := s.order[:0]
	for _, id := range s.order {
		if _, gone := victims[id]; gone {
			delete(s.jobs, id)
			st.JobsDeleted++
			st.BytesFreed += sizes[id]
			os.RemoveAll(s.jobDir(id))
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
	s.reg.Counter(mGCJobsDeleted).Add(int64(st.JobsDeleted))
	s.reg.Counter(mGCBytesDeleted).Add(st.BytesFreed)

	err := s.compactManifestLocked()
	if err == nil {
		st.Compacted = true
	}
	return st, err
}

// compactManifestLocked rewrites the manifest to exactly the live job
// table (one submit record per job, plus its terminal record). The caller
// holds s.mu — or, during recovery, has the server to itself.
//
// Crash-safety protocol, every durable step through the injectable FS:
//
//  1. Write the complete record set to manifest.bak and verify it by
//     replay. Failure aborts the compaction with manifest.wal untouched.
//  2. Close the writer, rewrite manifest.wal, verify by replay.
//  3. Reopen the writer. On a verified rewrite the backup is dropped; on
//     failure it is kept, and the next boot (or the recovery path) merges
//     wal ∪ bak — so whichever file is torn, the union is complete.
func (s *Server) compactManifestLocked() error {
	s.manifestMu.Lock()
	defer s.manifestMu.Unlock()

	var payloads [][]byte
	// The meta record pins the id counter: deleted jobs' submit records
	// are about to vanish, and a rebooted daemon must not re-issue their
	// ids.
	meta, err := json.Marshal(manifestRecord{Op: "meta", NextID: s.nextID})
	if err != nil {
		return fmt.Errorf("service: compacting manifest: %w", err)
	}
	payloads = append(payloads, meta)
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		state, errText := j.state, j.errText
		j.mu.Unlock()
		sub, err := json.Marshal(manifestRecord{
			Op: "submit", ID: id, Spec: &j.spec,
			Priority: j.priority, Client: j.client,
		})
		if err != nil {
			return fmt.Errorf("service: compacting manifest: %w", err)
		}
		payloads = append(payloads, sub)
		if state.terminal() {
			rec, err := json.Marshal(manifestRecord{Op: "state", ID: id, State: state, Error: errText})
			if err != nil {
				return fmt.Errorf("service: compacting manifest: %w", err)
			}
			payloads = append(payloads, rec)
		}
	}

	// Step 1: the safety copy must be complete and verified before the
	// real manifest is touched.
	if err := rewriteVerified(s.manifestBakPath(), payloads, s.cfg.FS); err != nil {
		os.Remove(s.manifestBakPath())
		return fmt.Errorf("service: manifest backup: %w", err)
	}

	// Step 2+3: rewrite the manifest and reopen it for appending whatever
	// happens — a daemon with no appendable manifest cannot accept work.
	if err := s.manifest.Close(); err != nil {
		s.reg.Counter(mManifestErrs).Inc()
	}
	rewriteErr := rewriteVerified(s.manifestPath(), payloads, s.cfg.FS)
	w, _, openErr := journal.OpenFS(s.manifestPath(), true, nil, s.cfg.FS)
	if openErr != nil {
		return fmt.Errorf("service: reopening manifest after compaction: %w", openErr)
	}
	s.manifest = w
	if rewriteErr != nil {
		// The wal may be torn; the verified bak guards it until a later
		// pass (or the next boot) converges.
		return fmt.Errorf("service: manifest compaction: %w", rewriteErr)
	}
	os.Remove(s.manifestBakPath())
	s.reg.Counter(mCompactions).Inc()
	return nil
}

// rewriteVerified rewrites path to exactly the payloads and confirms by
// replay that every record landed intact — an injected torn rename leaves
// a CRC-valid prefix, which replays clean but short, so the count check is
// what catches it.
func rewriteVerified(path string, payloads [][]byte, fs journal.FS) error {
	if err := journal.RewriteFS(path, payloads, fs); err != nil {
		return err
	}
	n := 0
	if _, err := journal.ReplayFile(path, func([]byte) error { n++; return nil }); err != nil {
		return err
	}
	if n != len(payloads) {
		return fmt.Errorf("journal: rewrite verification: %d of %d records readable", n, len(payloads))
	}
	return nil
}

// dirSize sums the regular files under dir; a missing dir is 0 bytes.
func dirSize(dir string) int64 {
	var total int64
	filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}
