package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"clocksched"
)

// testGrid is the grid the service tests submit: one policy over a few
// seeds of the 2-second rect wave, so each cell simulates in milliseconds.
func testGrid(seeds int) clocksched.SweepConfig {
	ss := make([]uint64, seeds)
	for i := range ss {
		ss[i] = uint64(i + 1)
	}
	return clocksched.SweepConfig{
		Workloads: []clocksched.Workload{clocksched.RectWave},
		Policies:  []clocksched.Policy{clocksched.PASTPegPeg()},
		Seeds:     ss,
		Duration:  2 * time.Second,
	}
}

func testSpec(seeds int) clocksched.SweepSpec {
	return clocksched.NewSweepSpec(testGrid(seeds))
}

// newTestServer builds a Server over a temp data dir, fronted by a real
// HTTP listener, and a Client pointed at it. Everything is torn down with
// the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, &Client{Base: hs.URL}
}

// waitState polls until the job reaches want (or any terminal state, which
// fails the test if it isn't want).
func waitState(t *testing.T, c *Client, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Status(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.terminal() {
			t.Fatalf("job %s ended %s (err %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobStatus{}
}

// TestSubmitRunFetchByteIdentical is the tentpole acceptance path: a grid
// job submitted over HTTP produces exactly the bytes an uninterrupted local
// Sweep encodes to.
func TestSubmitRunFetchByteIdentical(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2, MaxActiveJobs: 1})
	ctx := context.Background()

	st, err := c.Submit(ctx, testSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Total != 4 || st.State.terminal() {
		t.Fatalf("submit status %+v", st)
	}

	var progress []int
	st, err = c.Wait(ctx, st.ID, func(done, total int) {
		progress = append(progress, done)
		if total != 4 {
			t.Errorf("progress total %d, want 4", total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Done != 4 {
		t.Fatalf("final status %+v", st)
	}
	for i := 1; i < len(progress); i++ {
		if progress[i] < progress[i-1] {
			t.Fatalf("progress not monotone: %v", progress)
		}
	}

	got, err := c.ResultBytes(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := clocksched.Sweep(ctx, testGrid(4))
	if err != nil {
		t.Fatal(err)
	}
	want, err := clocksched.EncodeSweepResult(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("remote result (%d bytes) != local encode (%d bytes)", len(got), len(want))
	}
	res, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 || res.CellAt(0, 0, 2) == nil {
		t.Fatalf("decoded result shape: %d cells", len(res.Cells))
	}
}

// TestVersionMismatchRejected pins the structured 409: a spec stamped with
// a different sim version never reaches the queue.
func TestVersionMismatchRejected(t *testing.T) {
	s, c := newTestServer(t, Config{})

	spec := testSpec(2)
	spec.SimVersion = "clocksched-sim/0"

	// In-process and over the wire, the same *APIError comes back.
	if _, err := s.Submit(spec); !isAPIError(err, 409, CodeVersionMismatch) {
		t.Fatalf("in-process submit: %v", err)
	}
	_, err := c.Submit(context.Background(), spec)
	if !isAPIError(err, 409, CodeVersionMismatch) {
		t.Fatalf("wire submit: %v", err)
	}
	var apiErr *APIError
	errors.As(err, &apiErr)
	if !strings.Contains(apiErr.Message, "clocksched-sim/0") ||
		!strings.Contains(apiErr.Message, clocksched.SimVersion()) {
		t.Errorf("mismatch message names neither version: %q", apiErr.Message)
	}
	if jobs, _ := c.Jobs(context.Background()); len(jobs) != 0 {
		t.Errorf("rejected spec created %d job(s)", len(jobs))
	}
}

// TestBadSpecsRejected covers the 400 family: invalid configs and unknown
// JSON fields.
func TestBadSpecsRejected(t *testing.T) {
	s, c := newTestServer(t, Config{})

	bad := testSpec(2)
	bad.Duration = clocksched.Duration(-time.Second)
	if _, err := s.Submit(bad); !isAPIError(err, 400, CodeInvalidSpec) {
		t.Errorf("negative duration: %v", err)
	}

	// A typo'd field must fail loudly, not run a default grid.
	resp, err := http.Post(c.url("/v1/jobs"), "application/json",
		strings.NewReader(`{"sim_version":"x","workloadz":["rect"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("unknown field accepted: %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), CodeBadRequest) {
		t.Errorf("unknown-field error body: %s", body)
	}
}

// TestQueueFullBackpressure fills the admission queue and checks the 429,
// its machine-readable code, and the Retry-After header on the wire.
func TestQueueFullBackpressure(t *testing.T) {
	_, c := newTestServer(t, Config{
		MaxQueue:      1,
		MaxActiveJobs: 1,
		Workers:       1,
		RetryAfter:    3 * time.Second,
		CellDelay:     20 * time.Millisecond, // keep the first job busy
	})
	ctx := context.Background()

	first, err := c.Submit(ctx, testSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, first.ID, StateRunning)

	second, err := c.Submit(ctx, testSpec(2))
	if err != nil {
		t.Fatalf("second submit should queue: %v", err)
	}

	_, err = c.Submit(ctx, testSpec(2))
	if !isAPIError(err, 429, CodeQueueFull) {
		t.Fatalf("third submit: %v", err)
	}
	var apiErr *APIError
	errors.As(err, &apiErr)
	if apiErr.RetryAfter != 3*time.Second {
		t.Errorf("RetryAfter %v, want 3s", apiErr.RetryAfter)
	}

	// The raw response carries the standard header too.
	body, _ := json.Marshal(testSpec(2))
	resp, err := http.Post(c.url("/v1/jobs"), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 429 || resp.Header.Get("Retry-After") != "3" {
		t.Errorf("raw 429: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Free the queue so teardown is quick.
	if _, err := c.Cancel(ctx, second.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
}

// TestCancelRunningJob cancels mid-run and checks the terminal state plus
// the 409 on fetching a result that never finished.
func TestCancelRunningJob(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, MaxActiveJobs: 1, CellDelay: 20 * time.Millisecond})
	ctx := context.Background()

	st, err := c.Submit(ctx, testSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, st.ID, StateRunning)
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCancelled {
		t.Fatalf("cancelled job ended %s", final.State)
	}
	if _, err := c.ResultBytes(ctx, st.ID); !isAPIError(err, 409, CodeNotFinished) {
		t.Errorf("result of cancelled job: %v", err)
	}
	if _, err := c.Status(ctx, "j999"); !isAPIError(err, 404, CodeNotFound) {
		t.Errorf("unknown id: %v", err)
	}
}

// TestRestartResumesJobs is the in-process half of the durability story: a
// server hard-stopped mid-job reboots from the same data dir, re-queues the
// job, replays its journal, and finishes to the byte-identical result.
func TestRestartResumesJobs(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s1, err := New(Config{DataDir: dir, Workers: 1, MaxActiveJobs: 1, CellDelay: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s1.Submit(testSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	// Let some cells commit, then stop without draining.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := s1.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Done >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never progressed: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{DataDir: dir, Workers: 1, MaxActiveJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	hs := httptest.NewServer(s2)
	defer hs.Close()
	c := &Client{Base: hs.URL}

	final, err := c.Wait(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Done != 8 {
		t.Fatalf("resumed job ended %+v", final)
	}
	if final.Replayed < 3 {
		t.Errorf("resumed job replayed %d cells, want >= 3", final.Replayed)
	}

	got, err := c.ResultBytes(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := clocksched.Sweep(ctx, testGrid(8))
	if err != nil {
		t.Fatal(err)
	}
	want, err := clocksched.EncodeSweepResult(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed result diverged from uninterrupted local sweep")
	}

	// A third boot must keep the terminal job terminal and fetchable.
	s2.Close()
	hs.Close()
	s3, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	again, err := s3.ResultBytes(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatal("result changed across an idle reboot")
	}
}

// TestDrainLeavesQueuedJobsDurable checks graceful shutdown: running jobs
// finish, queued jobs survive to the next boot, and a draining server
// answers 503.
func TestDrainLeavesQueuedJobsDurable(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{DataDir: dir, Workers: 1, MaxActiveJobs: 1, CellDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	running, err := s1.Submit(testSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	// Drain only promises to finish jobs that are already running; wait for
	// the runner to pick this one up before queueing the second.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := s1.Status(running.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	queued, err := s1.Submit(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Submit(testSpec(2)); !isAPIError(err, 503, CodeDraining) {
		t.Errorf("submit while drained: %v", err)
	}
	st, err := s1.Status(running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("running job after drain: %+v (drain must let it finish)", st)
	}

	// The queued job reboots into the queue and completes.
	s2, err := New(Config{DataDir: dir, Workers: 1, MaxActiveJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	hs := httptest.NewServer(s2)
	defer hs.Close()
	c := &Client{Base: hs.URL}
	final, err := c.Wait(context.Background(), queued.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Done != 2 {
		t.Fatalf("queued job after reboot: %+v", final)
	}
}

// TestConcurrentSubmitCancelDrain hammers the admission path from many
// goroutines — submits (some invalid), cancels, status probes, event
// subscribers — and then drains. Run under -race, this is the service's
// synchronization proof.
func TestConcurrentSubmitCancelDrain(t *testing.T) {
	s, c := newTestServer(t, Config{
		MaxQueue:      4,
		MaxActiveJobs: 2,
		Workers:       2,
		CellDelay:     time.Millisecond,
	})
	ctx := context.Background()

	var (
		mu  sync.Mutex
		ids []string
	)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 10; i++ {
				switch rng.Intn(4) {
				case 0, 1:
					spec := testSpec(1 + rng.Intn(2))
					if g == 0 && i%3 == 0 {
						spec.SimVersion = "clocksched-sim/0" // must only ever 409
					}
					st, err := c.Submit(ctx, spec)
					if err == nil {
						mu.Lock()
						ids = append(ids, st.ID)
						mu.Unlock()
					} else if !isAnyAPIError(err, 409, 429, 503) {
						t.Errorf("submit: %v", err)
					}
				case 2:
					mu.Lock()
					var id string
					if len(ids) > 0 {
						id = ids[rng.Intn(len(ids))]
					}
					mu.Unlock()
					if id != "" {
						if _, err := c.Cancel(ctx, id); err != nil {
							t.Errorf("cancel %s: %v", id, err)
						}
					}
				case 3:
					if _, err := c.Jobs(ctx); err != nil {
						t.Errorf("list: %v", err)
					}
					mu.Lock()
					var id string
					if len(ids) > 0 {
						id = ids[rng.Intn(len(ids))]
					}
					mu.Unlock()
					if id != "" {
						ectx, ecancel := context.WithTimeout(ctx, 50*time.Millisecond)
						err := c.Events(ectx, id, nil)
						ecancel()
						if err != nil && !errors.Is(err, context.DeadlineExceeded) &&
							err != io.EOF && !errors.Is(err, context.Canceled) {
							// A subscriber dropped mid-stream is fine; a
							// structured error is not.
							if _, ok := err.(*APIError); !ok && !isNetErr(err) {
								t.Errorf("events %s: %v", id, err)
							}
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()

	dctx, dcancel := context.WithTimeout(ctx, 60*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	// Every job must be in a coherent state: terminal or still queued
	// (awaiting the next boot), never stuck running.
	for _, st := range s.Jobs() {
		if st.State == StateRunning {
			t.Errorf("job %s still running after drain", st.ID)
		}
	}
}

// TestMetricsAndHealth checks the merged Prometheus page and the liveness
// probe.
func TestMetricsAndHealth(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, MaxActiveJobs: 1})
	ctx := context.Background()

	st, err := c.Submit(ctx, testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID, nil); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(c.url("/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`service_jobs_total{state="done"} 1`,
		fmt.Sprintf(`job=%q`, st.ID), // the job's scoped sweep metrics
		"sweep_cells_total",
	} {
		if !strings.Contains(string(page), want) {
			t.Errorf("metrics page missing %q:\n%s", want, page)
		}
	}

	hresp, err := http.Get(c.url("/healthz"))
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		OK         bool   `json:"ok"`
		SimVersion string `json:"sim_version"`
	}
	err = json.NewDecoder(hresp.Body).Decode(&health)
	hresp.Body.Close()
	if err != nil || !health.OK || health.SimVersion != clocksched.SimVersion() {
		t.Errorf("healthz: %+v err %v", health, err)
	}
}

// isAPIError reports whether err is an *APIError with the given status and
// code.
func isAPIError(err error, status int, code string) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == status && apiErr.Code == code
}

func isAnyAPIError(err error, statuses ...int) bool {
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		return false
	}
	for _, s := range statuses {
		if apiErr.Status == s {
			return true
		}
	}
	return false
}

// isNetErr reports whether err came from the transport rather than the
// service (connections torn down by a context timeout mid-body).
func isNetErr(err error) bool {
	s := err.Error()
	return strings.Contains(s, "connection") || strings.Contains(s, "EOF") ||
		strings.Contains(s, "deadline") || strings.Contains(s, "canceled")
}
