package service

// Satellite coverage for the client's 429 retry machinery and the /readyz
// probe: jitter bounds, fixed-seed determinism, exact Retry-After
// honouring, and readiness state transitions.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"clocksched"
)

func TestRetryDelayBounds(t *testing.T) {
	for _, hint := range []time.Duration{0, 100 * time.Millisecond, time.Second, 3 * time.Second} {
		c := &Client{RetrySeed: 1}
		base := hint
		if base <= 0 {
			base = time.Second // the documented default when the server sent no hint
		}
		for i := 0; i < 500; i++ {
			d := c.retryDelay(hint)
			if d < base || d > base+base/2 {
				t.Fatalf("hint %v draw %d: delay %v outside [%v, %v]", hint, i, d, base, base+base/2)
			}
		}
	}
}

func TestRetryDelayDeterministicUnderSeed(t *testing.T) {
	draw := func(seed uint64) []time.Duration {
		c := &Client{RetrySeed: seed}
		out := make([]time.Duration, 64)
		for i := range out {
			out[i] = c.retryDelay(time.Second)
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical jitter schedule")
	}
}

// retry429Server answers the first n submissions with a 429 carrying the
// given Retry-After hint, then accepts.
func retry429Server(t *testing.T, n int, hint time.Duration) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if int(calls.Add(1)) <= n {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]any{
				"error": &APIError{Code: CodeQueueFull, Message: "full", RetryAfter: hint},
			})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(JobStatus{ID: "j1", State: StateQueued})
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func TestSubmitRetries429ToAcceptance(t *testing.T) {
	hint := 40 * time.Millisecond
	srv, calls := retry429Server(t, 2, hint)
	c := &Client{Base: srv.URL, Retry429: 3, RetrySeed: 7}
	start := time.Now()
	st, err := c.Submit(context.Background(), clocksched.NewSweepSpec(testGrid(1)))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j1" || calls.Load() != 3 {
		t.Fatalf("accepted as %q after %d calls, want j1 after 3", st.ID, calls.Load())
	}
	// Two backoffs, each in [hint, 1.5*hint]: the total must honour the
	// server's hint exactly — never resubmit early.
	if elapsed < 2*hint {
		t.Errorf("retried after %v, before the server's %v hint allowed", elapsed, hint)
	}
	if elapsed > 2*(hint+hint/2)+2*time.Second {
		t.Errorf("retries took %v, far beyond the jitter bound", elapsed)
	}
}

func TestSubmitRetry429Exhausted(t *testing.T) {
	srv, calls := retry429Server(t, 1000, time.Millisecond)
	c := &Client{Base: srv.URL, Retry429: 2, RetrySeed: 7}
	_, err := c.Submit(context.Background(), clocksched.NewSweepSpec(testGrid(1)))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 429 || apiErr.Code != CodeQueueFull {
		t.Fatalf("exhausted retries surfaced %v, want the 429", err)
	}
	if calls.Load() != 3 { // initial attempt + 2 retries
		t.Errorf("made %d requests, want 3", calls.Load())
	}
	// Retry429 zero must surface the first 429 untouched.
	c0 := &Client{Base: srv.URL}
	before := calls.Load()
	if _, err := c0.Submit(context.Background(), clocksched.NewSweepSpec(testGrid(1))); err == nil {
		t.Fatal("Retry429=0 swallowed the 429")
	}
	if calls.Load() != before+1 {
		t.Errorf("Retry429=0 made %d requests, want 1", calls.Load()-before)
	}
}

func TestSubmitHonorsRetryAfterHeader(t *testing.T) {
	// No hint in the body; the header alone (integer seconds, as real
	// servers send) must drive the backoff.
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]any{
				"error": &APIError{Code: CodeQueueFull, Message: "full"},
			})
			return
		}
		json.NewEncoder(w).Encode(JobStatus{ID: "j2", State: StateQueued})
	}))
	t.Cleanup(srv.Close)
	c := &Client{Base: srv.URL, Retry429: 1, RetrySeed: 3}
	start := time.Now()
	st, err := c.Submit(context.Background(), clocksched.NewSweepSpec(testGrid(1)))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Errorf("resubmitted after %v, before the 1s Retry-After header allowed", elapsed)
	}
	if st.ID != "j2" {
		t.Errorf("accepted as %q", st.ID)
	}
}

func TestReadyzProbe(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, MaxQueue: 4})
	resp, err := http.Get(c.Base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rd Readiness
	if err := json.NewDecoder(resp.Body).Decode(&rd); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !rd.Ready || rd.Draining {
		t.Fatalf("idle daemon readiness: status %d, %+v", resp.StatusCode, rd)
	}
	if rd.MaxQueue != 4 || rd.SimVersion != clocksched.SimVersion() {
		t.Errorf("readiness snapshot wrong: %+v", rd)
	}

	// Draining flips the probe to 503 with Ready false, same body shape.
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(c.Base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rd2 Readiness
	if err := json.NewDecoder(resp2.Body).Decode(&rd2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable || rd2.Ready || !rd2.Draining {
		t.Fatalf("draining daemon readiness: status %d, %+v", resp2.StatusCode, rd2)
	}
}

func TestReadyzNeedsNoToken(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, Auth: authTable(t)})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(c.Base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusUnauthorized {
			t.Errorf("%s demands authentication; probes cannot carry tokens", path)
		}
	}
	// Everything else still does.
	resp, err := http.Get(c.Base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("/v1/jobs without a token answered %d, want 401", resp.StatusCode)
	}
}
