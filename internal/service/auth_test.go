package service

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestParseTokenFile(t *testing.T) {
	table, err := ParseTokenFile([]byte(`
# experiment drivers
alice  alice-token  max_queued=2  max_cells=100

bob    bob-token
  carol carol-token max_cells=50
`))
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != 3 {
		t.Fatalf("parsed %d tokens, want 3", table.Len())
	}
	cl, ok := table.Lookup("alice-token")
	if !ok || cl.Name != "alice" || cl.MaxQueued != 2 || cl.MaxCells != 100 {
		t.Fatalf("alice: %+v ok=%v", cl, ok)
	}
	cl, ok = table.Lookup("bob-token")
	if !ok || cl.Name != "bob" || cl.MaxQueued != 0 || cl.MaxCells != 0 {
		t.Fatalf("bob: %+v ok=%v", cl, ok)
	}
	if _, ok := table.Lookup("unknown"); ok {
		t.Error("unknown token resolved")
	}
	if cl, ok := table.Limit("carol"); !ok || cl.MaxCells != 50 {
		t.Errorf("Limit(carol): %+v ok=%v", cl, ok)
	}
	if _, ok := table.Limit("nobody"); ok {
		t.Error("Limit resolved a name no token grants")
	}
}

func TestParseTokenFileRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"missing token":    "alice",
		"bad option":       "alice tok nonsense",
		"unknown option":   "alice tok max_ram=3",
		"negative limit":   "alice tok max_queued=-1",
		"non-numeric":      "alice tok max_cells=lots",
		"duplicate token":  "alice tok\nbob tok",
		"duplicate name":   "alice tok1\nalice tok2",
		"equals in name":   "a=b tok",
		"equals in token":  "alice to=k",
		"option-only line": "max_queued=3 max_cells=4",
	}
	for name, input := range cases {
		if _, err := ParseTokenFile([]byte(input)); err == nil {
			t.Errorf("%s: %q parsed without error", name, input)
		}
	}
	// An empty or comment-only file is a valid (empty) table.
	table, err := ParseTokenFile([]byte("\n# nothing here\n"))
	if err != nil || table.Len() != 0 {
		t.Errorf("empty file: %v, %d tokens", err, table.Len())
	}
}

// FuzzTokenFileParse asserts the parser never panics and that every
// accepted table is internally coherent (no '=' in names, non-negative
// limits).
func FuzzTokenFileParse(f *testing.F) {
	f.Add([]byte("alice tok max_queued=2 max_cells=10"))
	f.Add([]byte("# comment\n\nbob b-tok\n"))
	f.Add([]byte("a b\nc d\ne f max_queued=0"))
	f.Add([]byte("x"))
	f.Add([]byte("a=b c"))
	f.Add([]byte("n t max_queued=99999999999999999999"))
	f.Add([]byte{0xff, 0xfe, 0x00, '\n'})
	f.Fuzz(func(t *testing.T, data []byte) {
		table, err := ParseTokenFile(data)
		if err != nil {
			return
		}
		for token, cl := range table.byToken {
			if token == "" || cl.Name == "" {
				t.Fatalf("accepted empty token or name: %q -> %+v", token, cl)
			}
			if strings.ContainsAny(token, " \t\n") || strings.ContainsAny(cl.Name, " \t\n") {
				t.Fatalf("accepted whitespace in token or name: %q -> %+v", token, cl)
			}
			if cl.MaxQueued < 0 || cl.MaxCells < 0 {
				t.Fatalf("accepted negative limit: %+v", cl)
			}
		}
	})
}

// authTable builds the table the auth tests share.
func authTable(t *testing.T) *AuthTable {
	t.Helper()
	table, err := ParseTokenFile([]byte(
		"alice alice-token max_queued=1\n" +
			"bob bob-token max_cells=6\n" +
			"carol carol-token\n"))
	if err != nil {
		t.Fatal(err)
	}
	return table
}

// TestAuthRequired pins the bearer-token gate: without a valid token every
// endpoint but /healthz answers a structured 401; with one, the job
// carries the client's identity.
func TestAuthRequired(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, MaxActiveJobs: 1, Auth: authTable(t)})
	ctx := context.Background()

	// No token.
	if _, err := c.Submit(ctx, testSpec(1)); !isAPIError(err, 401, CodeUnauthorized) {
		t.Fatalf("tokenless submit: %v", err)
	}
	if _, err := c.Jobs(ctx); !isAPIError(err, 401, CodeUnauthorized) {
		t.Errorf("tokenless list: %v", err)
	}

	// Wrong token.
	bad := &Client{Base: c.Base, Token: "stolen"}
	if _, err := bad.Submit(ctx, testSpec(1)); !isAPIError(err, 401, CodeUnauthorized) {
		t.Fatalf("bad-token submit: %v", err)
	}

	// Liveness stays open.
	resp, err := http.Get(c.url("/healthz"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz behind auth: %d", resp.StatusCode)
	}

	// Right token: accepted, and the job is labelled with the client.
	alice := &Client{Base: c.Base, Token: "alice-token"}
	st, err := alice.Submit(ctx, testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.Client != "alice" {
		t.Errorf("job client %q, want alice", st.Client)
	}
	final, err := alice.Wait(ctx, st.ID, nil)
	if err != nil || final.State != StateDone {
		t.Fatalf("authed job: %+v, %v", final, err)
	}
}

// TestQuotaEnforced pins both quota axes: max_queued bounds live jobs,
// max_cells bounds summed grid cells, the rejection is a structured 429
// whose Usage names the offender's holdings, and a terminal job frees its
// share.
func TestQuotaEnforced(t *testing.T) {
	s, c := newTestServer(t, Config{
		Workers: 1, MaxActiveJobs: 1, Auth: authTable(t),
		CellDelay: 10 * time.Millisecond, RetryAfter: 5 * time.Second,
	})
	ctx := context.Background()
	alice := &Client{Base: c.Base, Token: "alice-token"}
	bob := &Client{Base: c.Base, Token: "bob-token"}
	carol := &Client{Base: c.Base, Token: "carol-token"}

	// alice: max_queued=1. One live job, then 429.
	first, err := alice.Submit(ctx, testSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	_, err = alice.Submit(ctx, testSpec(1))
	if !isAPIError(err, 429, CodeQuotaExceeded) {
		t.Fatalf("over-quota submit: %v", err)
	}
	var apiErr *APIError
	errors.As(err, &apiErr)
	if apiErr.Usage == nil || apiErr.Usage.Client != "alice" ||
		apiErr.Usage.Jobs != 1 || apiErr.Usage.MaxJobs != 1 {
		t.Fatalf("quota usage: %+v", apiErr.Usage)
	}
	if apiErr.RetryAfter != 5*time.Second {
		t.Errorf("quota RetryAfter %v", apiErr.RetryAfter)
	}

	// bob: max_cells=6. A 4-cell job fits; a second 4-cell job would sum
	// to 8 and is rejected with the cell usage.
	if _, err := bob.Submit(ctx, testSpec(4)); err != nil {
		t.Fatal(err)
	}
	_, err = bob.Submit(ctx, testSpec(4))
	if !isAPIError(err, 429, CodeQuotaExceeded) {
		t.Fatalf("over-cell submit: %v", err)
	}
	errors.As(err, &apiErr)
	if apiErr.Usage == nil || apiErr.Usage.Cells != 4 || apiErr.Usage.MaxCells != 6 {
		t.Fatalf("cell usage: %+v", apiErr.Usage)
	}

	// carol has no limits: quota never rejects her.
	for i := 0; i < 3; i++ {
		if _, err := carol.Submit(ctx, testSpec(1)); err != nil {
			t.Fatalf("unlimited client submit %d: %v", i, err)
		}
	}

	// A terminal job frees alice's slot.
	if _, err := alice.Cancel(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, alice, first.ID)
	if _, err := alice.Submit(ctx, testSpec(1)); err != nil {
		t.Fatalf("submit after freeing quota: %v", err)
	}

	// Anonymous in-process submits bypass quota (no identity to bill).
	if _, err := s.Submit(testSpec(1)); err != nil {
		t.Fatalf("anonymous in-process submit: %v", err)
	}
}

// TestClientRetry429 pins the satellite: with Retry429 set, Submit retries
// a full queue per Retry-After and lands once a slot frees; with it unset
// the 429 surfaces immediately. Context cancellation interrupts the wait.
func TestClientRetry429(t *testing.T) {
	_, c := newTestServer(t, Config{
		MaxQueue: 1, MaxActiveJobs: 1, Workers: 1,
		RetryAfter: 100 * time.Millisecond, CellDelay: 5 * time.Millisecond,
	})
	ctx := context.Background()

	first, err := c.Submit(ctx, testSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, first.ID, StateRunning)
	second, err := c.Submit(ctx, testSpec(4)) // fills the queue
	if err != nil {
		t.Fatal(err)
	}

	// No retries configured: immediate structured 429.
	if _, err := c.Submit(ctx, testSpec(1)); !isAPIError(err, 429, CodeQueueFull) {
		t.Fatalf("direct 429: %v", err)
	}

	// Retrying client: the queue drains as jobs finish, so a bounded
	// retry loop lands.
	retrier := &Client{Base: c.Base, Retry429: 50, RetrySeed: 7}
	st, err := retrier.Submit(ctx, testSpec(1))
	if err != nil {
		t.Fatalf("retrying submit: %v", err)
	}
	waitTerminal(t, c, st.ID)
	waitTerminal(t, c, first.ID)
	waitTerminal(t, c, second.ID)

	// Context-aware: a cancelled context stops the loop promptly.
	_, cFull := newTestServer(t, Config{
		MaxQueue: 1, MaxActiveJobs: 1, Workers: 1,
		RetryAfter: 10 * time.Second, CellDelay: 50 * time.Millisecond,
	})
	f1, err := cFull.Submit(ctx, testSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, cFull, f1.ID, StateRunning)
	if _, err := cFull.Submit(ctx, testSpec(8)); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	impatient := &Client{Base: cFull.Base, Retry429: 10}
	_, err = impatient.Submit(cctx, testSpec(1))
	if err == nil {
		t.Fatal("submit into a full queue with a 10s hint somehow landed")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled retry: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("retry loop ignored the context for %v", elapsed)
	}
}

// waitTerminal polls until the job reaches any terminal state.
func waitTerminal(t *testing.T, c *Client, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Status(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}
