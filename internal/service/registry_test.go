package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"clocksched"
)

// TestRegisteredPolicyThroughService is the registry acceptance path over
// the wire: a policy that exists only via RegisterPolicy travels inside a
// JSON SweepSpec in its {"name", "params"} form, is rebuilt by the
// receiving daemon's registry at decode, and the stored result bytes are
// exactly what an uninterrupted local Sweep of the same grid encodes.
func TestRegisteredPolicyThroughService(t *testing.T) {
	err := clocksched.RegisterPolicy("svc-test-past", func(ps clocksched.Params) (clocksched.Policy, error) {
		p := clocksched.PASTPegPeg()
		p.LoPercent = ps.Int("lo_percent", p.LoPercent)
		p.HiPercent = ps.Int("hi_percent", p.HiPercent)
		return p, nil
	})
	if err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	pol, err := clocksched.NewPolicy("svc-test-past", map[string]float64{
		"lo_percent": 89, "hi_percent": 96,
	})
	if err != nil {
		t.Fatal(err)
	}
	grid := clocksched.SweepConfig{
		Workloads: []clocksched.Workload{clocksched.RectWave},
		Policies:  []clocksched.Policy{pol},
		Seeds:     []uint64{1, 2, 3},
		Duration:  2 * time.Second,
	}
	spec := clocksched.NewSweepSpec(grid)

	// The spec must actually cross the wire in the registry form: force a
	// JSON round trip and check the compact encoding is what travels.
	wire, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(wire), `"name":"svc-test-past"`) {
		t.Fatalf("spec JSON does not use the registry wire form: %s", wire)
	}
	var shipped clocksched.SweepSpec
	if err := json.Unmarshal(wire, &shipped); err != nil {
		t.Fatal(err)
	}

	_, c := newTestServer(t, Config{Workers: 2, MaxActiveJobs: 1})
	ctx := context.Background()
	st, err := c.Submit(ctx, shipped)
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Done != 3 {
		t.Fatalf("final status %+v", st)
	}
	got, err := c.ResultBytes(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	ref, err := clocksched.Sweep(ctx, grid)
	if err != nil {
		t.Fatal(err)
	}
	want, err := clocksched.EncodeSweepResult(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("remote result (%d bytes) != local encode (%d bytes) for a registry-only policy",
			len(got), len(want))
	}
}

// TestZooPoliciesThroughService proves ISSUE 8's wire-form criterion: the
// deadline-feasible family (OA, AVR, BKP) built purely from the registry's
// {"name", "params"} form survives the JSON round trip, is rebuilt by the
// daemon at admission, and the stored result bytes are exactly what a local
// Sweep of the same grid encodes.
func TestZooPoliciesThroughService(t *testing.T) {
	var pols []clocksched.Policy
	for _, ref := range []clocksched.PolicyRef{
		{Name: "oa"},
		{Name: "avr", Params: map[string]float64{"slack_quanta": 4}},
		{Name: "bkp", Params: map[string]float64{"voltage_scale": 1}},
	} {
		p, err := ref.Build()
		if err != nil {
			t.Fatal(err)
		}
		pols = append(pols, p)
	}
	grid := clocksched.SweepConfig{
		Workloads: []clocksched.Workload{clocksched.RectWave},
		Policies:  pols,
		Seeds:     []uint64{1, 2},
		Duration:  2 * time.Second,
	}
	spec := clocksched.NewSweepSpec(grid)
	wire, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"oa"`, `"name":"avr"`, `"name":"bkp"`} {
		if !strings.Contains(string(wire), want) {
			t.Fatalf("spec JSON lacks %s: %s", want, wire)
		}
	}
	var shipped clocksched.SweepSpec
	if err := json.Unmarshal(wire, &shipped); err != nil {
		t.Fatal(err)
	}

	_, c := newTestServer(t, Config{Workers: 2, MaxActiveJobs: 1})
	ctx := context.Background()
	st, err := c.Submit(ctx, shipped)
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Done != 6 {
		t.Fatalf("final status %+v", st)
	}
	got, err := c.ResultBytes(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	ref, err := clocksched.Sweep(ctx, grid)
	if err != nil {
		t.Fatal(err)
	}
	want, err := clocksched.EncodeSweepResult(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("remote result (%d bytes) != local encode (%d bytes) for zoo policies",
			len(got), len(want))
	}
}

// TestUnknownPolicyRejectedAtAdmission pins the failure mode: a spec
// naming a policy the daemon's registry lacks is refused at submit, not
// accepted and failed mid-sweep.
func TestUnknownPolicyRejectedAtAdmission(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, MaxActiveJobs: 1})
	spec := testSpec(1)
	wire, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	wire = bytes.Replace(wire,
		[]byte(`"policies":[`),
		[]byte(`"policies":[{"name":"not-registered-anywhere"},`), 1)
	req, err := http.NewRequest("POST", c.Base+"/v1/jobs", bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 == 2 {
		t.Fatalf("spec with unregistered policy admitted: %s", resp.Status)
	}
}
