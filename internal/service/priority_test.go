package service

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"testing"
	"time"

	"clocksched"
)

func TestParsePriority(t *testing.T) {
	cases := []struct {
		in   string
		want Priority
		ok   bool
	}{
		{"", PriorityNormal, true},
		{"normal", PriorityNormal, true},
		{"batch", PriorityBatch, true},
		{"interactive", PriorityInteractive, true},
		{"BATCH", PriorityBatch, true},   // case-insensitive
		{" batch ", PriorityBatch, true}, // whitespace-tolerant
		{"urgent", "", false},
		{"low", "", false},
	}
	for _, tc := range cases {
		got, err := ParsePriority(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParsePriority(%q) = %v, %v; want %v ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if !(PriorityBatch.rank() < PriorityNormal.rank() && PriorityNormal.rank() < PriorityInteractive.rank()) {
		t.Error("priority ranks out of order")
	}
}

func TestSubmitRejectsBadPriority(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	_, err := c.SubmitWith(context.Background(), testSpec(1), SubmitOptions{Priority: "urgent"})
	if !isAPIError(err, 400, CodeBadRequest) {
		t.Fatalf("bad priority: %v", err)
	}
}

// TestPrioritySchedulingOrder pins the scheduler: with one runner occupied
// by a batch job, an interactive submission preempts it, and the remaining
// queue drains highest-class-first with FIFO inside a class. Expected
// completion order: interactive, normal, the preempted batch job (oldest
// batch), then the queued batch job.
func TestPrioritySchedulingOrder(t *testing.T) {
	_, c := newTestServer(t, Config{
		Workers: 1, MaxActiveJobs: 1, CellDelay: 20 * time.Millisecond,
	})
	ctx := context.Background()
	submit := func(seeds int, p Priority) string {
		t.Helper()
		st, err := c.SubmitWith(ctx, testSpec(seeds), SubmitOptions{Priority: p})
		if err != nil {
			t.Fatal(err)
		}
		if st.Priority != p {
			t.Fatalf("submitted priority %q, status says %q", p, st.Priority)
		}
		return st.ID
	}

	b1 := submit(8, PriorityBatch)
	waitState(t, c, b1, StateRunning)
	b2 := submit(4, PriorityBatch)
	n1 := submit(4, PriorityNormal)
	i1 := submit(4, PriorityInteractive) // preempts b1

	// Record the order in which jobs reach done. Each job runs >= 80ms of
	// injected delay, so a 5ms poll cannot miss a transition.
	var done []string
	seen := map[string]bool{}
	deadline := time.Now().Add(60 * time.Second)
	for len(done) < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("jobs never finished; done so far: %v", done)
		}
		jobs, err := c.Jobs(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs {
			if j.State == StateDone && !seen[j.ID] {
				seen[j.ID] = true
				done = append(done, j.ID)
			}
			if j.State == StateFailed {
				t.Fatalf("job %s failed: %s", j.ID, j.Error)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	want := []string{i1, n1, b1, b2}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion order %v, want %v", done, want)
		}
	}

	st, err := c.Status(ctx, b1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Preemptions < 1 {
		t.Errorf("batch job was never preempted: %+v", st)
	}
	if st.Done != 8 {
		t.Errorf("preempted job finished %d of 8 cells", st.Done)
	}
}

// TestEqualPriorityNoPreemption: a submission never bumps a running job of
// the same class — preemption requires a strictly higher class.
func TestEqualPriorityNoPreemption(t *testing.T) {
	_, c := newTestServer(t, Config{
		Workers: 1, MaxActiveJobs: 1, CellDelay: 20 * time.Millisecond,
	})
	ctx := context.Background()
	first, err := c.Submit(ctx, testSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, first.ID, StateRunning)
	second, err := c.Submit(ctx, testSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	fin1 := waitTerminal(t, c, first.ID)
	if fin1.Preemptions != 0 {
		t.Errorf("equal-priority submission preempted the running job: %+v", fin1)
	}
	sec, err := c.Status(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sec.State == StateDone {
		t.Error("second job finished before the first it queued behind")
	}
	waitTerminal(t, c, second.ID)
}

// TestServicePreemptChild is the subprocess half of the preemption
// byte-identity test: a one-runner daemon with a wide cell delay, so the
// parent can preempt a batch job mid-flight. Skips unless the parent set
// its data-dir environment variable.
func TestServicePreemptChild(t *testing.T) {
	dir := os.Getenv("CLOCKSCHED_SERVICE_PRIO_CHILD_DIR")
	if dir == "" {
		t.Skip("subprocess helper; run via TestPreemptedResultByteIdentical")
	}
	s, err := New(Config{
		DataDir:       dir,
		Workers:       1,
		MaxActiveJobs: 1,
		CellDelay:     100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("addr %s\n", ln.Addr())
	t.Fatal(http.Serve(ln, s))
}

// TestPreemptedResultByteIdentical is the preemption acceptance test: a
// batch job is preempted mid-flight by an interactive job in a separate
// daemon process, resumes from its cell journal, and its final result
// bytes equal an uninterrupted local sweep's — preemption must be
// invisible in the output.
func TestPreemptedResultByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	ctx := context.Background()

	child, base := startChild(t, "TestServicePreemptChild",
		"CLOCKSCHED_SERVICE_PRIO_CHILD_DIR="+dir)
	defer func() {
		child.Process.Kill()
		child.Wait()
	}()
	c := &Client{Base: base}

	batch, err := c.SubmitWith(ctx, clocksched.NewSweepSpec(killGrid()),
		SubmitOptions{Priority: PriorityBatch})
	if err != nil {
		t.Fatal(err)
	}

	// Let a few cells commit so the preemption lands mid-job, then submit
	// the interactive job that bumps it.
	ectx, ecancel := context.WithTimeout(ctx, 60*time.Second)
	err = c.Events(ectx, batch.ID, func(ev Event) error {
		if ev.Type == "progress" && ev.Done >= 3 {
			return errSeenEnough
		}
		return nil
	})
	ecancel()
	if err != errSeenEnough {
		t.Fatalf("waiting for progress: %v", err)
	}
	inter, err := c.SubmitWith(ctx, testSpec(2), SubmitOptions{Priority: PriorityInteractive})
	if err != nil {
		t.Fatal(err)
	}

	wctx, wcancel := context.WithTimeout(ctx, 120*time.Second)
	defer wcancel()
	if fin, err := c.Wait(wctx, inter.ID, nil); err != nil || fin.State != StateDone {
		t.Fatalf("interactive job: %+v, %v", fin, err)
	}
	final, err := c.Wait(wctx, batch.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Done != 12 {
		t.Fatalf("preempted job ended %+v", final)
	}
	if final.Preemptions < 1 {
		t.Fatalf("batch job was never preempted: %+v", final)
	}
	if final.Replayed < 3 {
		t.Errorf("resumed job replayed %d cells, want >= 3", final.Replayed)
	}

	got, err := c.ResultBytes(wctx, batch.ID)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := clocksched.Sweep(ctx, killGrid())
	if err != nil {
		t.Fatal(err)
	}
	want, err := clocksched.EncodeSweepResult(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("preempted result (%d bytes) != uninterrupted local sweep (%d bytes)",
			len(got), len(want))
	}
}
