package service

// Priority classes, client identity, and quota enforcement for the sweep
// daemon. Authentication is deliberately small: a flat token file maps
// bearer tokens to named clients with optional per-client admission
// limits. That is exactly enough for an unattended lab daemon shared by a
// handful of experiment drivers — no accounts, no hashing, no expiry — and
// the file format is simple enough to audit at a glance and fuzz
// exhaustively (see FuzzTokenFileParse).

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Priority is a job's scheduling class. Higher classes run first; an
// interactive submission preempts a running batch job at its next quantum
// boundary (the preempted job's completed cells are journaled, so nothing
// re-simulates when it resumes).
type Priority string

const (
	// PriorityBatch yields to everything: overnight grids, bulk rebuilds.
	PriorityBatch Priority = "batch"
	// PriorityNormal is the default class.
	PriorityNormal Priority = "normal"
	// PriorityInteractive runs ahead of the other classes and may preempt
	// a running lower-class job when every runner is busy.
	PriorityInteractive Priority = "interactive"
)

// rank orders priorities; larger runs first.
func (p Priority) rank() int {
	switch p {
	case PriorityInteractive:
		return 2
	case PriorityBatch:
		return 0
	default:
		return 1
	}
}

// valid reports whether p is a known class (empty means "default").
func (p Priority) valid() bool {
	switch p {
	case "", PriorityBatch, PriorityNormal, PriorityInteractive:
		return true
	}
	return false
}

// ParsePriority maps the wire form to a Priority; empty selects
// PriorityNormal.
func ParsePriority(s string) (Priority, error) {
	p := Priority(strings.ToLower(strings.TrimSpace(s)))
	if p == "" {
		return PriorityNormal, nil
	}
	if !p.valid() {
		return "", fmt.Errorf("service: unknown priority %q (want batch, normal, or interactive)", s)
	}
	return p, nil
}

// ClientLimit is one authenticated client's identity and admission quota.
// Zero limits are unlimited.
type ClientLimit struct {
	// Name is the client's identity — the value job records, metrics
	// labels, and quota errors carry.
	Name string
	// MaxQueued bounds the client's live (non-terminal) jobs.
	MaxQueued int
	// MaxCells bounds the total grid cells across the client's live jobs,
	// so one client cannot monopolize the worker budget with a single
	// enormous sweep per queue slot.
	MaxCells int
}

// QuotaUsage reports a client's admission-time resource usage; it rides on
// quota-rejection errors so a rejected client can see exactly what it is
// holding.
type QuotaUsage struct {
	Client   string `json:"client"`
	Jobs     int    `json:"jobs"`
	MaxJobs  int    `json:"max_jobs,omitempty"`
	Cells    int    `json:"cells"`
	MaxCells int    `json:"max_cells,omitempty"`
}

// AuthTable maps bearer tokens to client limits. A nil table disables
// authentication (every request is anonymous and unlimited).
type AuthTable struct {
	byToken map[string]ClientLimit
}

// Lookup resolves a bearer token.
func (t *AuthTable) Lookup(token string) (ClientLimit, bool) {
	if t == nil {
		return ClientLimit{}, false
	}
	cl, ok := t.byToken[token]
	return cl, ok
}

// Limit returns the named client's quota, if any token grants that name.
func (t *AuthTable) Limit(name string) (ClientLimit, bool) {
	if t == nil {
		return ClientLimit{}, false
	}
	for _, cl := range t.byToken {
		if cl.Name == name {
			return cl, true
		}
	}
	return ClientLimit{}, false
}

// Len reports the number of tokens in the table.
func (t *AuthTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.byToken)
}

// ParseTokenFile parses the daemon's token file. One client per line:
//
//	# comment
//	alice  s3cret-token            max_queued=4  max_cells=2000
//	batch  another-token
//
// Fields are whitespace-separated: a client name, its bearer token, then
// optional key=value limits (max_queued, max_cells; omitted or zero means
// unlimited). Blank lines and #-comments are skipped. Duplicate tokens and
// duplicate names are errors — a token that silently shadowed another
// client's quota would be an audit hazard, not a convenience.
func ParseTokenFile(b []byte) (*AuthTable, error) {
	t := &AuthTable{byToken: map[string]ClientLimit{}}
	names := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(b))
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("service: token file line %d: want \"name token [max_queued=N] [max_cells=N]\"", lineNo)
		}
		cl := ClientLimit{Name: fields[0]}
		token := fields[1]
		if strings.Contains(cl.Name, "=") {
			return nil, fmt.Errorf("service: token file line %d: client name %q contains '='", lineNo, cl.Name)
		}
		if strings.Contains(token, "=") {
			return nil, fmt.Errorf("service: token file line %d: token contains '='", lineNo)
		}
		for _, f := range fields[2:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("service: token file line %d: bad option %q (want key=value)", lineNo, f)
			}
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("service: token file line %d: %s must be a non-negative integer, got %q", lineNo, k, v)
			}
			switch k {
			case "max_queued":
				cl.MaxQueued = n
			case "max_cells":
				cl.MaxCells = n
			default:
				return nil, fmt.Errorf("service: token file line %d: unknown option %q", lineNo, k)
			}
		}
		if _, dup := t.byToken[token]; dup {
			return nil, fmt.Errorf("service: token file line %d: duplicate token", lineNo)
		}
		if names[cl.Name] {
			return nil, fmt.Errorf("service: token file line %d: duplicate client name %q", lineNo, cl.Name)
		}
		names[cl.Name] = true
		t.byToken[token] = cl
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("service: token file: %w", err)
	}
	return t, nil
}

// LoadTokenFile reads and parses the token file at path.
func LoadTokenFile(path string) (*AuthTable, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("service: token file: %w", err)
	}
	t, err := ParseTokenFile(b)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return t, nil
}
