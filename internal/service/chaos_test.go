package service

// The service chaos harness: the whole daemon — submit, preempt, GC,
// restart — run over a disk that lies. Every durable write goes through a
// seeded fault.DiskInjector; rounds of work are cut short by Close and by
// SIGKILL; and at the end a clean daemon over the same data dir must
// converge every surviving job to one of exactly two outcomes:
//
//   - StateDone with result bytes identical to an uninterrupted local
//     sweep of the same spec, or
//   - StateFailed with a non-empty structured error.
//
// Never a third thing: no silent corruption, no job stuck non-terminal,
// no daemon that cannot boot off its own data dir.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"syscall"
	"testing"
	"time"

	"clocksched"
	"clocksched/internal/fault"
	"clocksched/internal/journal"
)

// chaosPlan is the fault mix the chaos rounds run under: low enough that
// most operations succeed and jobs make progress, high enough that every
// round sees several injected failures across all five modes.
func chaosPlan() *fault.DiskPlan {
	return &fault.DiskPlan{
		WriteErrProb:   0.05,
		ShortWriteProb: 0.05,
		SyncErrProb:    0.05,
		ENOSPCProb:     0.02,
		TornRenameProb: 0.05,
	}
}

// chaosSpecs is the deterministic spec pool chaos jobs draw from, paired
// with the clean result bytes each must reproduce.
func chaosSpecs(t *testing.T) ([]clocksched.SweepSpec, [][]byte) {
	t.Helper()
	var specs []clocksched.SweepSpec
	var clean [][]byte
	for seeds := 1; seeds <= 4; seeds++ {
		specs = append(specs, testSpec(seeds))
		res, err := clocksched.Sweep(context.Background(), testGrid(seeds))
		if err != nil {
			t.Fatal(err)
		}
		b, err := clocksched.EncodeSweepResult(res)
		if err != nil {
			t.Fatal(err)
		}
		clean = append(clean, b)
	}
	return specs, clean
}

var chaosPriorities = []Priority{PriorityBatch, PriorityNormal, PriorityInteractive}

// TestServiceChaos runs several daemon lifetimes over one data dir with
// disk faults injected under every journal, manifest, and result write,
// exercising submit, preemption, GC, and mid-work Close. A final
// fault-free daemon must drain everything within a bounded deadline and
// every acknowledged job must end byte-identical-or-structured-failure.
func TestServiceChaos(t *testing.T) {
	dir := t.TempDir()
	specs, clean := chaosSpecs(t)
	acked := map[string]int{} // job id -> spec index, across all rounds

	const rounds = 5
	for round := 0; round < rounds; round++ {
		in, err := fault.NewDiskInjector(chaosPlan(), 0xC4A05+uint64(round))
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{
			DataDir: dir, Workers: 2, MaxActiveJobs: 2, MaxQueue: 64,
			CellDelay: time.Millisecond, RetainResults: 8, FS: in,
		})
		if err != nil {
			// A boot refused under injected faults is a crash at startup:
			// the data dir must still carry the next round.
			t.Logf("round %d: boot refused under faults: %v", round, err)
			continue
		}
		for i := 0; i < 6; i++ {
			k := (round + i) % len(specs)
			st, err := s.SubmitWith(specs[k], SubmitOptions{
				Priority: chaosPriorities[(round+i)%len(chaosPriorities)],
			})
			if err != nil {
				var apiErr *APIError
				if !errors.As(err, &apiErr) {
					t.Fatalf("round %d submit %d: unstructured error %v", round, i, err)
				}
				continue
			}
			acked[st.ID] = k
			if i == 2 {
				if _, err := s.GC(); err != nil {
					t.Logf("round %d: gc under faults: %v", round, err)
				}
			}
		}
		// Let some work land, then vanish mid-flight.
		time.Sleep(time.Duration(40+round*20) * time.Millisecond)
		if _, err := s.GC(); err != nil {
			t.Logf("round %d: gc under faults: %v", round, err)
		}
		if err := s.Close(); err != nil {
			t.Logf("round %d: close under faults: %v", round, err)
		}
		t.Logf("round %d: %s", round, in.Counts())
	}

	// Final clean daemon: everything must converge, bounded.
	s, err := New(Config{
		DataDir: dir, Workers: 2, MaxActiveJobs: 2, MaxQueue: 64,
	})
	if err != nil {
		t.Fatalf("clean boot after chaos rounds: %v", err)
	}
	defer s.Close()

	deadline := time.Now().Add(120 * time.Second)
	for {
		live := 0
		for _, j := range s.Jobs() {
			if !j.State.terminal() {
				live++
			}
		}
		if live == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon stuck: %d jobs still non-terminal after chaos", live)
		}
		time.Sleep(10 * time.Millisecond)
	}

	checkedDone := 0
	for _, j := range s.Jobs() {
		switch j.State {
		case StateDone:
			got, err := s.ResultBytes(j.ID)
			if err != nil {
				t.Errorf("done job %s result unreadable: %v", j.ID, err)
				continue
			}
			if k, ok := acked[j.ID]; ok {
				if !bytes.Equal(got, clean[k]) {
					t.Errorf("job %s result (%d bytes) != clean sweep of its spec (%d bytes)",
						j.ID, len(got), len(clean[k]))
				}
				checkedDone++
			}
		case StateFailed, StateCancelled:
			if j.State == StateFailed && j.Error == "" {
				t.Errorf("failed job %s carries no error", j.ID)
			}
		default:
			t.Errorf("job %s non-terminal after drain: %s", j.ID, j.State)
		}
	}
	if checkedDone == 0 {
		t.Error("chaos run completed zero verifiable jobs; fault rates too high to mean anything")
	}
	t.Logf("chaos: %d acked jobs, %d byte-verified done", len(acked), checkedDone)
}

// TestServiceChaosChild serves a daemon with an armed disk injector (seed
// from the environment; 0 means clean) until the parent kills it.
func TestServiceChaosChild(t *testing.T) {
	dir := os.Getenv("CLOCKSCHED_SERVICE_CHAOS_CHILD_DIR")
	if dir == "" {
		t.Skip("subprocess helper; run via TestServiceChaosKillAndResume")
	}
	seed, err := strconv.ParseUint(os.Getenv("CLOCKSCHED_SERVICE_CHAOS_SEED"), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	var fs journal.FS
	if seed != 0 {
		in, err := fault.NewDiskInjector(chaosPlan(), seed)
		if err != nil {
			t.Fatal(err)
		}
		fs = in
	}
	s, err := New(Config{
		DataDir: dir, Workers: 1, MaxActiveJobs: 1,
		CellDelay: 50 * time.Millisecond, FS: fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("addr %s\n", ln.Addr())
	t.Fatal(http.Serve(ln, s))
}

// TestServiceChaosKillAndResume combines the two failure injectors: disk
// faults inside the daemon and SIGKILL from outside, twice, then a clean
// daemon. The job either resumes to the byte-identical result or fails
// with a structured error — the crash/fault combination is never allowed
// to produce a third outcome.
func TestServiceChaosKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	ctx := context.Background()
	spec := clocksched.NewSweepSpec(killGrid())

	kill := func(child *os.Process, wait func() error, ps func() *os.ProcessState) {
		t.Helper()
		if err := child.Kill(); err != nil {
			t.Fatal(err)
		}
		err := wait()
		if ws, ok := ps().Sys().(syscall.WaitStatus); !ok || !ws.Signaled() {
			t.Fatalf("child did not die of the signal: err=%v state=%v", err, ps())
		}
	}

	// Lifetime 1: chaos daemon, submit, let it work, SIGKILL.
	child, base := startChild(t, "TestServiceChaosChild",
		"CLOCKSCHED_SERVICE_CHAOS_CHILD_DIR="+dir,
		"CLOCKSCHED_SERVICE_CHAOS_SEED=101")
	c := &Client{Base: base}
	st, err := c.Submit(ctx, spec)
	if err != nil {
		// The submit itself may be refused by an injected manifest fault —
		// structured — in which case there is nothing to resume; rerun
		// against the same daemon until one is acked (bounded).
		var apiErr *APIError
		for tries := 0; err != nil && tries < 20; tries++ {
			if !errors.As(err, &apiErr) {
				t.Fatalf("chaos submit: unstructured error %v", err)
			}
			time.Sleep(50 * time.Millisecond)
			st, err = c.Submit(ctx, spec)
		}
		if err != nil {
			t.Fatalf("no submit acked under chaos: %v", err)
		}
	}
	// Wait for progress or a (legitimate) structured failure before killing.
	deadline := time.Now().Add(60 * time.Second)
	for {
		js, serr := c.Status(ctx, st.ID)
		if serr == nil && (js.Done >= 2 || js.State.terminal()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("chaos child made no progress")
		}
		time.Sleep(25 * time.Millisecond)
	}
	kill(child.Process, child.Wait, func() *os.ProcessState { return child.ProcessState })

	// Lifetime 2: different fault schedule, same data dir, SIGKILL again.
	child2, _ := startChild(t, "TestServiceChaosChild",
		"CLOCKSCHED_SERVICE_CHAOS_CHILD_DIR="+dir,
		"CLOCKSCHED_SERVICE_CHAOS_SEED=202")
	time.Sleep(500 * time.Millisecond) // let it replay and work a little
	kill(child2.Process, child2.Wait, func() *os.ProcessState { return child2.ProcessState })

	// Lifetime 3: clean daemon; the job must converge.
	child3, base3 := startChild(t, "TestServiceChaosChild",
		"CLOCKSCHED_SERVICE_CHAOS_CHILD_DIR="+dir,
		"CLOCKSCHED_SERVICE_CHAOS_SEED=0")
	defer func() {
		child3.Process.Kill()
		child3.Wait()
	}()
	c3 := &Client{Base: base3}
	wctx, wcancel := context.WithTimeout(ctx, 120*time.Second)
	defer wcancel()
	final, err := c3.Wait(wctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	switch final.State {
	case StateDone:
		got, err := c3.ResultBytes(wctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := clocksched.Sweep(ctx, killGrid())
		if err != nil {
			t.Fatal(err)
		}
		want, err := clocksched.EncodeSweepResult(ref)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("post-chaos result (%d bytes) != clean sweep (%d bytes)", len(got), len(want))
		}
	case StateFailed:
		if final.Error == "" {
			t.Fatalf("failed job carries no error: %+v", final)
		}
		t.Logf("job failed structurally under chaos: %s", final.Error)
	default:
		t.Fatalf("job ended %s — neither done nor a structured failure", final.State)
	}
}
