// Package service is the networked sweep daemon's engine: an HTTP+JSON job
// API over the existing sweep machinery. Clients POST a declarative
// SweepSpec, the server queues it through a bounded admission queue, runs
// it across a shared worker budget, checkpoints every completed cell to a
// per-job write-ahead journal, and retains the canonical result bytes on
// disk — so a SIGKILL'd daemon restarts with every queued and running job
// intact and resumes them to byte-identical results.
//
// Layering: the service sits strictly above the public clocksched API (it
// imports the root package, never the reverse). Determinism is inherited,
// not re-implemented — a job's result bytes are EncodeSweepResult of a
// Sweep, which is canonical whatever mix of fresh runs, cache hits, and
// journal replays produced it.
//
// Durability model, in order of trust:
//
//   - The job manifest (dataDir/manifest.wal) is the job table's source of
//     truth: a submit record at admission, a state record only when a job
//     reaches a terminal state. A job's terminal record is appended only
//     after its result bytes are atomically on disk, so a crash between
//     the two leaves a non-terminal job that simply re-runs (resuming its
//     cell journal) on the next boot.
//   - Each job's cell journal (dataDir/jobs/<id>/sweep.wal) plus the
//     shared content-addressed cell cache (dataDir/cache) make the re-run
//     cheap: completed cells replay instead of re-simulating.
//   - Everything else — queue order, progress counts, subscriber state —
//     is in-memory and rebuilt or recomputed on boot.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"clocksched"
	"clocksched/internal/journal"
	"clocksched/internal/telemetry"
)

// Service-level metric names, exported on /metrics alongside each job's
// scoped registry.
const (
	mJobsQueued   = "service_jobs_queued"
	mJobsActive   = "service_jobs_active"
	mJobsDone     = `service_jobs_total{state="done"}`
	mJobsFailed   = `service_jobs_total{state="failed"}`
	mJobsCanceled = `service_jobs_total{state="cancelled"}`
	mRejectedFull = `service_rejects_total{reason="queue_full"}`
	mRejectedVer  = `service_rejects_total{reason="version_mismatch"}`
	mRejectedSpec = `service_rejects_total{reason="invalid_spec"}`
	mRejectedDrn  = `service_rejects_total{reason="draining"}`
)

// Config tunes one Server. The zero value of every field but DataDir is
// usable; see the field defaults.
type Config struct {
	// DataDir roots the server's durable state: manifest.wal, cache/, and
	// jobs/<id>/ directories. Required.
	DataDir string
	// MaxQueue bounds the admission queue: at most this many jobs may be
	// waiting (not yet running) before submissions are rejected with 429.
	// Non-positive selects 16. Jobs recovered from the manifest on boot
	// are admitted above the bound — they were accepted before the crash.
	MaxQueue int
	// MaxActiveJobs bounds how many jobs run concurrently; the worker
	// budget is split evenly between them. Non-positive selects 2.
	MaxActiveJobs int
	// Workers is the total simulation worker budget shared fairly across
	// active jobs (each job gets max(1, Workers/MaxActiveJobs)).
	// Non-positive selects GOMAXPROCS.
	Workers int
	// RetryAfter is the backoff hint attached to 429 responses.
	// Non-positive selects 2s.
	RetryAfter time.Duration
	// CellDelay, when positive, sleeps this long in each job's progress
	// callback after every completed cell. Simulated cells finish in
	// milliseconds, far too fast to kill a daemon mid-job on purpose; the
	// crash tests widen the window with this. Zero for production.
	CellDelay time.Duration
}

// withDefaults resolves the zero fields.
func (c Config) withDefaults() Config {
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	if c.MaxActiveJobs <= 0 {
		c.MaxActiveJobs = 2
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	return c
}

// JobState is a job's lifecycle position. Terminal states are StateDone,
// StateFailed, and StateCancelled.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// manifestRecord is one entry of the job manifest WAL.
type manifestRecord struct {
	Op    string                `json:"op"` // "submit" | "state"
	ID    string                `json:"id"`
	Spec  *clocksched.SweepSpec `json:"spec,omitempty"`
	State JobState              `json:"state,omitempty"`
	Error string                `json:"error,omitempty"`
}

// job is the server-side record of one submitted sweep.
type job struct {
	id    string
	spec  clocksched.SweepSpec
	dir   string // dataDir/jobs/<id>
	total int    // grid size

	mu        sync.Mutex
	state     JobState
	errText   string // terminal failure text
	done      int    // completed cells
	replayed  int    // cells recovered via journal replay on the last run
	cancelled bool   // user asked for cancellation
	cancel    context.CancelFunc
	tel       *clocksched.Telemetry
	subs      map[chan Event]struct{}
	submitted time.Time
}

// Event is one job lifecycle or progress notification, streamed to
// /v1/jobs/{id}/events subscribers.
type Event struct {
	// Type is "state" (job changed lifecycle state) or "progress" (cells
	// completed).
	Type  string   `json:"type"`
	State JobState `json:"state"`
	Done  int      `json:"done"`
	Total int      `json:"total"`
	// Error carries the terminal failure text with a "state" event of
	// StateFailed.
	Error string `json:"error,omitempty"`
}

// Server owns the job table, the admission queue, and the runner pool. It
// is an http.Handler (see http.go) and is safe for concurrent use.
type Server struct {
	cfg   Config
	cache *clocksched.SweepCache
	reg   *telemetry.Registry // service-level metrics

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for listing
	queue    []*job   // admission queue (head runs next)
	queued   int      // len(queue) minus cancelled entries
	recovery int      // boot-recovered jobs still queued, exempt from MaxQueue
	draining bool
	closed   bool
	nextID   int

	cond     *sync.Cond // signals runners: queue non-empty or shutdown
	manifest *journal.Writer

	muxOnce sync.Once
	muxVal  *http.ServeMux

	runCtx    context.Context // cancelled on Close (hard stop)
	cancelRun context.CancelFunc
	wg        sync.WaitGroup // runner goroutines
}

// New builds the server, replaying the job manifest under cfg.DataDir:
// jobs that reached a terminal state before the last shutdown stay
// terminal (their results remain fetchable), and every queued or running
// job is re-queued — with its cell journal, so completed cells replay
// rather than re-simulate. Runner goroutines start immediately.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("service: Config.DataDir is required")
	}
	for _, d := range []string{cfg.DataDir, filepath.Join(cfg.DataDir, "jobs")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	cache, err := clocksched.NewSweepCache(0, filepath.Join(cfg.DataDir, "cache"))
	if err != nil {
		return nil, fmt.Errorf("service: cache: %w", err)
	}

	s := &Server{
		cfg:   cfg,
		cache: cache,
		reg:   telemetry.New(),
		jobs:  map[string]*job{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.runCtx, s.cancelRun = context.WithCancel(context.Background())

	if err := s.recover(); err != nil {
		return nil, err
	}

	for i := 0; i < cfg.MaxActiveJobs; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s, nil
}

// recover replays the manifest into the job table and reopens it for
// appending.
func (s *Server) recover() error {
	path := s.manifestPath()
	specs := map[string]*clocksched.SweepSpec{}
	states := map[string]JobState{}
	errs := map[string]string{}
	var order []string
	_, err := journal.ReplayFile(path, func(p []byte) error {
		var rec manifestRecord
		if err := json.Unmarshal(p, &rec); err != nil {
			return fmt.Errorf("service: manifest %s: bad record: %w", path, err)
		}
		switch rec.Op {
		case "submit":
			if rec.ID == "" || rec.Spec == nil {
				return fmt.Errorf("service: manifest %s: submit record missing id or spec", path)
			}
			if _, dup := specs[rec.ID]; !dup {
				order = append(order, rec.ID)
			}
			specs[rec.ID] = rec.Spec
		case "state":
			states[rec.ID] = rec.State
			errs[rec.ID] = rec.Error
		default:
			return fmt.Errorf("service: manifest %s: unknown op %q", path, rec.Op)
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Reopen for appending; the replay above already parsed the records,
	// so the second scan only finds the append offset and drops any torn
	// tail. The torn records (if any) were never acknowledged to a client
	// — an fsync'd append is the admission commit point.
	w, _, err := journal.Open(path, true, nil)
	if err != nil {
		return err
	}
	s.manifest = w

	for _, id := range order {
		spec := specs[id]
		j := &job{
			id:    id,
			spec:  *spec,
			dir:   s.jobDir(id),
			state: StateQueued,
			subs:  map[chan Event]struct{}{},
		}
		if cfg, err := spec.Config(); err == nil {
			j.total = cfg.GridSize()
		}
		if st, ok := states[id]; ok && st.terminal() {
			j.state = st
			j.errText = errs[id]
			if st == StateDone {
				if _, err := os.Stat(s.resultPath(id)); err != nil {
					// The terminal record exists but the bytes do not
					// (deleted out of band): fall back to re-running.
					j.state = StateQueued
					j.errText = ""
				} else {
					j.done = j.total
				}
			}
		}
		s.jobs[id] = j
		s.order = append(s.order, id)
		if n := idNum(id); n >= s.nextID {
			s.nextID = n + 1
		}
		if !j.state.terminal() {
			// Recovered jobs re-enter the queue above the admission bound:
			// they were admitted (and fsynced) before the crash, and
			// rejecting them now would drop accepted work.
			s.queue = append(s.queue, j)
			s.queued++
			s.recovery++
		}
	}
	s.updateGauges()
	return nil
}

func (s *Server) manifestPath() string { return filepath.Join(s.cfg.DataDir, "manifest.wal") }
func (s *Server) jobDir(id string) string {
	return filepath.Join(s.cfg.DataDir, "jobs", id)
}
func (s *Server) resultPath(id string) string { return filepath.Join(s.jobDir(id), "result.bin") }
func (s *Server) walPath(id string) string    { return filepath.Join(s.jobDir(id), "sweep.wal") }

// idNum parses the numeric suffix of a job id ("j17" → 17), -1 otherwise.
func idNum(id string) int {
	if !strings.HasPrefix(id, "j") {
		return -1
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// updateGauges refreshes the queue-occupancy gauges; callers hold s.mu.
func (s *Server) updateGauges() {
	s.reg.Gauge(mJobsQueued).Set(float64(s.queued))
	active := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == StateRunning {
			active++
		}
		j.mu.Unlock()
	}
	s.reg.Gauge(mJobsActive).Set(float64(active))
}

// Submit admits a job: version-checks and validates the spec, reserves a
// queue slot, durably appends the submit record, and returns the new job's
// status. The error is an *APIError describing the structured rejection
// (version mismatch, invalid spec, queue full, draining) so both the HTTP
// layer and in-process callers get the same classification.
func (s *Server) Submit(spec clocksched.SweepSpec) (JobStatus, error) {
	cfg, err := spec.Config()
	if err != nil {
		s.reg.Counter(mRejectedVer).Inc()
		return JobStatus{}, &APIError{
			Status:  409,
			Code:    CodeVersionMismatch,
			Message: err.Error(),
		}
	}
	if err := cfg.Validate(); err != nil {
		s.reg.Counter(mRejectedSpec).Inc()
		return JobStatus{}, &APIError{Status: 400, Code: CodeInvalidSpec, Message: err.Error()}
	}
	total := cfg.GridSize()

	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		s.reg.Counter(mRejectedDrn).Inc()
		return JobStatus{}, &APIError{Status: 503, Code: CodeDraining, Message: "server is draining"}
	}
	if s.queued-s.recovery >= s.cfg.MaxQueue {
		retry := s.cfg.RetryAfter
		s.mu.Unlock()
		s.reg.Counter(mRejectedFull).Inc()
		return JobStatus{}, &APIError{
			Status:     429,
			Code:       CodeQueueFull,
			Message:    fmt.Sprintf("admission queue full (%d waiting)", s.cfg.MaxQueue),
			RetryAfter: retry,
		}
	}
	id := fmt.Sprintf("j%d", s.nextID)
	s.nextID++
	j := &job{
		id:        id,
		spec:      spec,
		dir:       s.jobDir(id),
		total:     total,
		state:     StateQueued,
		subs:      map[chan Event]struct{}{},
		submitted: time.Now(),
	}

	// Durable admission: the submit record is fsynced before the job is
	// acknowledged, so an accepted job survives any crash after this call
	// returns. A failed append rejects the submission — accepting work we
	// could lose would be worse than refusing it.
	rec, err := json.Marshal(manifestRecord{Op: "submit", ID: id, Spec: &spec})
	if err == nil {
		if err = s.manifest.Append(rec); err == nil {
			err = s.manifest.Sync()
		}
	}
	if err != nil {
		s.nextID-- // the id was never acknowledged
		s.mu.Unlock()
		return JobStatus{}, &APIError{Status: 500, Code: CodeInternal,
			Message: fmt.Sprintf("recording submission: %v", err)}
	}

	s.jobs[id] = j
	s.order = append(s.order, id)
	s.queue = append(s.queue, j)
	s.queued++
	s.updateGauges()
	s.cond.Signal()
	st := s.statusLocked(j)
	s.mu.Unlock()
	return st, nil
}

// Cancel requests cancellation: a queued job turns terminal immediately; a
// running one is cancelled at the next quantum boundary through the sweep
// context. Cancelling a terminal job is a no-op reporting its final state.
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, &APIError{Status: 404, Code: CodeNotFound, Message: "no such job"}
	}
	j.mu.Lock()
	j.cancelled = true
	cancel := j.cancel
	state := j.state
	j.mu.Unlock()
	s.mu.Unlock()

	switch state {
	case StateQueued:
		// The runner discards cancelled queue entries, but turning the job
		// terminal here makes cancellation immediate and synchronous.
		s.finishJob(j, StateCancelled, "")
	case StateRunning:
		if cancel != nil {
			cancel()
		}
	}
	return s.Status(id)
}

// Status reports one job.
func (s *Server) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, &APIError{Status: 404, Code: CodeNotFound, Message: "no such job"}
	}
	return s.statusLocked(j), nil
}

// Jobs lists every job in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

// statusLocked snapshots one job; the caller holds s.mu.
func (s *Server) statusLocked(j *job) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:       j.id,
		State:    j.state,
		Done:     j.done,
		Total:    j.total,
		Replayed: j.replayed,
		Error:    j.errText,
	}
}

// ResultBytes returns a finished job's canonical result envelope.
func (s *Server) ResultBytes(id string) ([]byte, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, &APIError{Status: 404, Code: CodeNotFound, Message: "no such job"}
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	if state != StateDone {
		return nil, &APIError{Status: 409, Code: CodeNotFinished,
			Message: fmt.Sprintf("job is %s, result available once done", state)}
	}
	b, err := os.ReadFile(s.resultPath(id))
	if err != nil {
		return nil, &APIError{Status: 500, Code: CodeInternal, Message: err.Error()}
	}
	return b, nil
}

// subscribe attaches an event channel to the job and returns the current
// snapshot event; the caller must call unsubscribe. The buffer absorbs
// progress bursts; if a subscriber falls behind, intermediate progress
// events are dropped — state transitions are never dropped, because
// publish retries them synchronously.
func (s *Server) subscribe(id string) (*job, chan Event, Event, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, nil, Event{}, &APIError{Status: 404, Code: CodeNotFound, Message: "no such job"}
	}
	ch := make(chan Event, 64)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	snap := Event{Type: "state", State: j.state, Done: j.done, Total: j.total, Error: j.errText}
	j.mu.Unlock()
	return j, ch, snap, nil
}

func (j *job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// publish fans an event to the job's subscribers without ever blocking: a
// subscriber that has fallen 64 events behind loses its oldest buffered
// event to make room for a state transition, and merely misses
// intermediate progress events — the next one it reads carries the current
// done-count anyway.
func (j *job) publish(ev Event) {
	j.mu.Lock()
	chans := make([]chan Event, 0, len(j.subs))
	for ch := range j.subs {
		chans = append(chans, ch)
	}
	j.mu.Unlock()
	for _, ch := range chans {
		select {
		case ch <- ev:
			continue
		default:
		}
		if ev.Type != "state" {
			continue
		}
		select {
		case <-ch: // shed the oldest buffered event
		default:
		}
		select {
		case ch <- ev:
		default:
		}
	}
}

// runner is one of MaxActiveJobs job-execution loops.
func (s *Server) runner() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.draining && !s.closed {
			s.cond.Wait()
		}
		if s.draining || s.closed {
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.queued--
		if s.recovery > 0 {
			s.recovery--
		}

		j.mu.Lock()
		if j.cancelled || j.state.terminal() {
			// Cancelled while queued (Cancel already finished it) or a
			// stale entry; skip.
			j.mu.Unlock()
			s.updateGauges()
			s.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(s.runCtx)
		j.state = StateRunning
		j.cancel = cancel
		j.tel = clocksched.NewTelemetry()
		j.mu.Unlock()
		s.updateGauges()
		s.mu.Unlock()

		j.publish(Event{Type: "state", State: StateRunning, Total: j.total})
		s.execute(ctx, j)
		cancel()
	}
}

// execute runs one job to a terminal state (or back to queued on a drain).
func (s *Server) execute(ctx context.Context, j *job) {
	cfg, err := j.spec.Config()
	if err != nil {
		// Can only happen if the daemon restarted under a different
		// sim.Version than the one that admitted the job.
		s.finishJob(j, StateFailed, err.Error())
		return
	}
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		s.finishJob(j, StateFailed, fmt.Sprintf("job dir: %v", err))
		return
	}

	cfg.Workers = s.cfg.Workers / s.cfg.MaxActiveJobs
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	cfg.Cache = s.cache
	cfg.Journal = s.walPath(j.id)
	// Resume unconditionally: a fresh journal replays nothing, a journal
	// left by a killed daemon replays every committed cell.
	cfg.Resume = true
	cfg.Telemetry = j.tel
	// The first progress call of a resumed sweep carries the replayed
	// count (see SweepConfig.Progress), so a restarted job's done-count
	// starts where the killed daemon left off.
	cfg.Progress = func(done, total int) {
		j.mu.Lock()
		j.done = done
		j.mu.Unlock()
		j.publish(Event{Type: "progress", State: StateRunning, Done: done, Total: total})
		if s.cfg.CellDelay > 0 {
			select {
			case <-time.After(s.cfg.CellDelay):
			case <-ctx.Done():
			}
		}
	}

	res, sweepErr := clocksched.Sweep(ctx, cfg)
	if res != nil {
		j.mu.Lock()
		j.replayed = res.Telemetry.Replayed
		j.mu.Unlock()
	}

	j.mu.Lock()
	userCancel := j.cancelled
	j.mu.Unlock()

	switch {
	case sweepErr == nil:
		enc, err := clocksched.EncodeSweepResult(res)
		if err == nil {
			err = writeFileAtomic(s.resultPath(j.id), enc)
		}
		if err != nil {
			s.finishJob(j, StateFailed, fmt.Sprintf("storing result: %v", err))
			return
		}
		s.finishJob(j, StateDone, "")
	case userCancel:
		s.finishJob(j, StateCancelled, "")
	case ctx.Err() != nil:
		// Shutdown or drain, not the user: the job goes back to queued —
		// in memory for this process's lifetime, and on the next boot via
		// its still-non-terminal manifest state. Completed cells are in
		// the journal; nothing is lost.
		j.mu.Lock()
		j.state = StateQueued
		j.cancel = nil
		done := j.done
		j.mu.Unlock()
		j.publish(Event{Type: "state", State: StateQueued, Done: done, Total: j.total})
	default:
		s.finishJob(j, StateFailed, sweepErr.Error())
	}
}

// finishJob moves the job to a terminal state, durably records it, and
// notifies subscribers. The terminal manifest record is appended after the
// result bytes (if any) are on disk — see the package durability model.
func (s *Server) finishJob(j *job, state JobState, errText string) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.errText = errText
	j.cancel = nil
	if state == StateDone {
		j.done = j.total
	}
	done, total := j.done, j.total
	j.mu.Unlock()

	rec, err := json.Marshal(manifestRecord{Op: "state", ID: j.id, State: state, Error: errText})
	if err == nil {
		if err = s.manifest.Append(rec); err == nil {
			err = s.manifest.Sync()
		}
	}
	if err != nil {
		// The job re-runs on the next boot; for this process's lifetime
		// the in-memory state stands.
		s.reg.Counter(`service_manifest_errors_total`).Inc()
	}

	switch state {
	case StateDone:
		s.reg.Counter(mJobsDone).Inc()
	case StateFailed:
		s.reg.Counter(mJobsFailed).Inc()
	case StateCancelled:
		s.reg.Counter(mJobsCanceled).Inc()
	}
	s.mu.Lock()
	s.updateGauges()
	s.mu.Unlock()
	j.publish(Event{Type: "state", State: state, Done: done, Total: total, Error: errText})
}

// Drain gracefully winds the server down: admission stops (503), runners
// finish their current jobs, and still-queued jobs are left durably queued
// for the next boot. If ctx expires first, running jobs are cancelled —
// their completed cells are journaled, so the next boot resumes them.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-ctx.Done():
		s.cancelRun()
		<-finished
	}
	return s.closeManifest()
}

// Close hard-stops the server: running jobs are cancelled at the next
// quantum boundary and re-queued durably, then the manifest is closed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.cancelRun()
	s.wg.Wait()
	return s.closeManifest()
}

func (s *Server) closeManifest() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.manifest.Close()
}

// writeFileAtomic writes bytes via a same-directory temp file, fsync, and
// rename, so the destination is never observable half-written.
func writeFileAtomic(path string, b []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	_, werr := tmp.Write(b)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	return os.Rename(tmp.Name(), path)
}

// scopes snapshots the metric export set: the service registry plus every
// job's registry labelled job="<id>", in stable id order.
func (s *Server) scopes() []telemetry.Scoped {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := []telemetry.Scoped{{Reg: s.reg}}
	ids := append([]string(nil), s.order...)
	sort.Strings(ids)
	for _, id := range ids {
		j := s.jobs[id]
		j.mu.Lock()
		tel := j.tel
		j.mu.Unlock()
		if tel != nil {
			out = append(out, telemetry.Scoped{
				Labels: `job="` + id + `"`,
				Reg:    tel.Registry(),
			})
		}
	}
	return out
}
