// Package service is the networked sweep daemon's engine: an HTTP+JSON job
// API over the existing sweep machinery. Clients POST a declarative
// SweepSpec, the server queues it through a bounded admission queue, runs
// it across a shared worker budget, checkpoints every completed cell to a
// per-job write-ahead journal, and retains the canonical result bytes on
// disk — so a SIGKILL'd daemon restarts with every queued and running job
// intact and resumes them to byte-identical results.
//
// Layering: the service sits strictly above the public clocksched API (it
// imports the root package, never the reverse). Determinism is inherited,
// not re-implemented — a job's result bytes are EncodeSweepResult of a
// Sweep, which is canonical whatever mix of fresh runs, cache hits, and
// journal replays produced it.
//
// Durability model, in order of trust:
//
//   - The job manifest (dataDir/manifest.wal) is the job table's source of
//     truth: a submit record at admission, a state record only when a job
//     reaches a terminal state. A job's terminal record is appended only
//     after its result bytes are atomically on disk, so a crash between
//     the two leaves a non-terminal job that simply re-runs (resuming its
//     cell journal) on the next boot.
//   - Each job's cell journal (dataDir/jobs/<id>/sweep.wal) plus the
//     shared content-addressed cell cache (dataDir/cache) make the re-run
//     cheap: completed cells replay instead of re-simulating.
//   - Manifest compaction (the retention reaper dropping deleted jobs'
//     records) is guarded by a backup copy: manifest.bak is written before
//     the rewrite and merged back in on the next boot if the rewrite was
//     torn, so an accepted job's submit record can never be lost to a
//     crash mid-compaction.
//   - Everything else — queue order, progress counts, subscriber state —
//     is in-memory and rebuilt or recomputed on boot.
//
// Scheduling: jobs carry a Priority class (batch < normal < interactive).
// The queue pops the highest class first (FIFO within a class), and an
// interactive submission arriving while every runner is busy preempts the
// lowest-class running job at its next quantum boundary. Preemption is
// cheap by construction: the victim's completed cells are already in its
// cell journal, so when it re-runs they replay instead of re-simulating,
// and its final result bytes are identical to a never-preempted run.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"clocksched"
	"clocksched/internal/journal"
	"clocksched/internal/telemetry"
)

// newEpoch draws the per-boot token that qualifies SSE event ids. Event
// sequence numbers restart from zero on every boot (and a data-dir reset
// even reuses job ids), so a bare sequence from a previous daemon life can
// collide with a current one; the epoch makes such an id visibly foreign.
// Random rather than persisted: two boots must never share a token, even
// after the data dir is wiped.
func newEpoch() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the supported platforms; a broken
		// entropy source degrades to snapshot-on-every-reconnect, which is
		// safe (just wasteful), so don't take the daemon down over it.
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Service-level metric names, exported on /metrics alongside each job's
// scoped registry.
const (
	mJobsQueued     = "service_jobs_queued"
	mJobsActive     = "service_jobs_active"
	mJobsDone       = `service_jobs_total{state="done"}`
	mJobsFailed     = `service_jobs_total{state="failed"}`
	mJobsCanceled   = `service_jobs_total{state="cancelled"}`
	mRejectedFull   = `service_rejects_total{reason="queue_full"}`
	mRejectedVer    = `service_rejects_total{reason="version_mismatch"}`
	mRejectedSpec   = `service_rejects_total{reason="invalid_spec"}`
	mRejectedDrn    = `service_rejects_total{reason="draining"}`
	mRejectedQuota  = `service_rejects_total{reason="quota_exceeded"}`
	mRejectedAuth   = `service_rejects_total{reason="unauthorized"}`
	mPreemptions    = "service_preemptions_total"
	mManifestErrs   = "service_manifest_errors_total"
	mCompactions    = "service_manifest_compactions_total"
	mGCRuns         = "service_gc_runs_total"
	mGCJobsDeleted  = "service_gc_jobs_deleted_total"
	mGCBytesDeleted = "service_gc_bytes_freed_total"
	mDataBytes      = "service_data_bytes"
)

// Config tunes one Server. The zero value of every field but DataDir is
// usable; see the field defaults.
type Config struct {
	// DataDir roots the server's durable state: manifest.wal, cache/, and
	// jobs/<id>/ directories. Required.
	DataDir string
	// MaxQueue bounds the admission queue: at most this many jobs may be
	// waiting (not yet running) before submissions are rejected with 429.
	// Non-positive selects 16. Jobs recovered from the manifest on boot
	// and jobs re-queued by preemption are admitted above the bound —
	// they were accepted before.
	MaxQueue int
	// MaxActiveJobs bounds how many jobs run concurrently; the worker
	// budget is split evenly between them. Non-positive selects 2.
	MaxActiveJobs int
	// Workers is the total simulation worker budget shared fairly across
	// active jobs (each job gets max(1, Workers/MaxActiveJobs)).
	// Non-positive selects GOMAXPROCS.
	Workers int
	// RetryAfter is the backoff hint attached to 429 responses.
	// Non-positive selects 2s.
	RetryAfter time.Duration
	// CellDelay, when positive, sleeps this long in each job's progress
	// callback after every completed cell. Simulated cells finish in
	// milliseconds, far too fast to kill a daemon mid-job on purpose; the
	// crash tests widen the window with this. Zero for production.
	CellDelay time.Duration
	// Auth, when non-nil, requires a bearer token from the table on every
	// endpoint but /healthz, and enforces each client's quota at
	// admission. Nil disables authentication entirely.
	Auth *AuthTable
	// RetainResults, when positive, bounds how many terminal jobs the
	// retention reaper keeps; the oldest beyond the bound are deleted
	// (result bytes, cell journal, manifest records). Zero keeps
	// everything.
	RetainResults int
	// MaxDataBytes, when positive, bounds the on-disk footprint of
	// dataDir/jobs; when exceeded, the reaper deletes terminal jobs
	// oldest-first until back under. Queued, running, and preempted jobs
	// are never touched. Zero is unlimited.
	MaxDataBytes int64
	// GCInterval is the reaper's cadence when retention is armed.
	// Non-positive selects 1 minute.
	GCInterval time.Duration
	// FS, when non-nil, routes every durable write the daemon performs —
	// manifest appends and fsyncs, manifest compaction, result-file
	// writes, cell-journal appends, cache entry files — through an
	// injectable filesystem surface. The chaos harness arms it with a
	// fault.DiskInjector; production leaves it nil (the real filesystem).
	FS journal.FS
	// Executor, when non-nil, replaces the in-process clocksched.Sweep
	// call for every job: it receives the job's identity, durable
	// directory, spec, and the fully-resolved local SweepConfig (workers,
	// cache, journal, progress, FS), and returns the job's result. The
	// sweep daemon wires the distributed fabric coordinator here when a
	// peer list is configured; nil runs every job locally, exactly as
	// before.
	Executor func(ctx context.Context, job ExecJob) (*clocksched.SweepResult, error)
	// Metrics adds extra scoped registries to the /metrics export — the
	// daemon exports the fabric coordinator's per-peer counters here.
	Metrics []telemetry.Scoped
}

// ExecJob is the execution request handed to Config.Executor: everything
// the server resolved about one job's run.
type ExecJob struct {
	// ID is the job id ("j17").
	ID string
	// Dir is the job's durable directory (dataDir/jobs/<id>), already
	// created; an executor may keep its own state there.
	Dir string
	// Spec is the job's submitted spec, version-checked at admission.
	Spec clocksched.SweepSpec
	// Config is the fully-resolved configuration a local run would use:
	// worker share, shared cache, per-job cell journal (Resume set),
	// progress callback, telemetry, and the injectable FS. An executor
	// that delegates elsewhere should still honour Progress and reuse
	// Cache/FS for any local work.
	Config clocksched.SweepConfig
}

// withDefaults resolves the zero fields.
func (c Config) withDefaults() Config {
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	if c.MaxActiveJobs <= 0 {
		c.MaxActiveJobs = 2
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.GCInterval <= 0 {
		c.GCInterval = time.Minute
	}
	return c
}

// JobState is a job's lifecycle position. Terminal states are StateDone,
// StateFailed, and StateCancelled. StatePreempted is a waiting state: the
// job was pushed off its runner by a higher-priority submission and sits
// in the queue with its completed cells journaled.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StatePreempted JobState = "preempted"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// manifestRecord is one entry of the job manifest WAL.
type manifestRecord struct {
	Op       string                `json:"op"` // "submit" | "state" | "meta"
	ID       string                `json:"id,omitempty"`
	Spec     *clocksched.SweepSpec `json:"spec,omitempty"`
	State    JobState              `json:"state,omitempty"`
	Error    string                `json:"error,omitempty"`
	Priority Priority              `json:"priority,omitempty"`
	Client   string                `json:"client,omitempty"`
	// NextID rides on "meta" records, written at compaction: once the
	// reaper drops a deleted job's submit record, the id counter can no
	// longer be recomputed from the surviving ids, and without this a
	// reboot could hand a deleted job's id to a new job.
	NextID int `json:"next_id,omitempty"`
}

// job is the server-side record of one submitted sweep.
type job struct {
	id       string
	spec     clocksched.SweepSpec
	dir      string // dataDir/jobs/<id>
	total    int    // grid size
	priority Priority
	client   string // authenticated submitter, "" if anonymous
	seq      int    // admission order, for FIFO within a priority class

	mu          sync.Mutex
	state       JobState
	errText     string // terminal failure text
	done        int    // completed cells
	replayed    int    // cells recovered via journal replay on the last run
	cancelled   bool   // user asked for cancellation
	preempt     bool   // a higher-priority job asked for this one's runner
	preemptions int    // times this job has been preempted
	exempt      bool   // queued above the admission bound (recovery, preemption)
	cancel      context.CancelFunc
	tel         *clocksched.Telemetry
	subs        map[chan Event]struct{}
	evSeq       int64 // monotonically increasing event id (per process)
	submitted   time.Time
}

// rank is the job's scheduling rank; larger runs first.
func (j *job) rank() int { return j.priority.rank() }

// Event is one job lifecycle or progress notification, streamed to
// /v1/jobs/{id}/events subscribers.
type Event struct {
	// Type is "state" (job changed lifecycle state) or "progress" (cells
	// completed).
	Type  string   `json:"type"`
	State JobState `json:"state"`
	Done  int      `json:"done"`
	Total int      `json:"total"`
	// Error carries the terminal failure text with a "state" event of
	// StateFailed.
	Error string `json:"error,omitempty"`
	// Seq is the event's per-job sequence number. On the wire it is
	// carried inside the SSE id qualified by the server's boot epoch
	// ("<epoch>.<seq>"), so a reconnecting client's Last-Event-ID from a
	// previous daemon life — whose sequence numbering restarted and may
	// coincide numerically — can never be mistaken for being caught up;
	// the server answers any foreign-epoch or legacy id with a full
	// snapshot, which is exactly what a client that slept through a
	// reboot (or a data-dir reset that reused job ids) needs.
	Seq int64 `json:"seq,omitempty"`
}

// Server owns the job table, the admission queue, and the runner pool. It
// is an http.Handler (see http.go) and is safe for concurrent use.
type Server struct {
	cfg   Config
	cache *clocksched.SweepCache
	reg   *telemetry.Registry // service-level metrics
	epoch string              // per-boot token qualifying SSE event ids

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for listing
	queue    []*job   // admission queue (popLocked picks by priority)
	queued   int      // queue entries not yet popped (gauge)
	admitted int      // non-exempt queue entries, counted against MaxQueue
	draining bool
	closed   bool
	nextID   int
	nextSeq  int

	cond *sync.Cond // signals runners: queue non-empty or shutdown

	// manifestMu guards the manifest writer — appends, syncs, the
	// close/rewrite/reopen of compaction. Lock order: s.mu may be held
	// when taking manifestMu (Submit, GC); never the reverse.
	manifestMu sync.Mutex
	manifest   *journal.Writer

	muxOnce sync.Once
	muxVal  *http.ServeMux

	runCtx    context.Context // cancelled on Close (hard stop)
	cancelRun context.CancelFunc
	wg        sync.WaitGroup // runner goroutines

	gcStop chan struct{}
	gcOnce sync.Once
	gcWg   sync.WaitGroup
}

// New builds the server, replaying the job manifest under cfg.DataDir:
// jobs that reached a terminal state before the last shutdown stay
// terminal (their results remain fetchable), and every queued or running
// job is re-queued — with its cell journal, so completed cells replay
// rather than re-simulate. Runner goroutines (and the retention reaper,
// when configured) start immediately.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("service: Config.DataDir is required")
	}
	for _, d := range []string{cfg.DataDir, filepath.Join(cfg.DataDir, "jobs")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	cache, err := clocksched.NewSweepCache(0, filepath.Join(cfg.DataDir, "cache"))
	if err != nil {
		return nil, fmt.Errorf("service: cache: %w", err)
	}
	if cfg.FS != nil {
		cache.SetFS(cfg.FS)
	}

	s := &Server{
		cfg:    cfg,
		cache:  cache,
		reg:    telemetry.New(),
		epoch:  newEpoch(),
		jobs:   map[string]*job{},
		gcStop: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.runCtx, s.cancelRun = context.WithCancel(context.Background())

	if err := s.recover(); err != nil {
		return nil, err
	}

	for i := 0; i < cfg.MaxActiveJobs; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	if cfg.RetainResults > 0 || cfg.MaxDataBytes > 0 {
		s.gcWg.Add(1)
		go s.gcLoop()
	}
	return s, nil
}

// replayManifest accumulates one manifest file's records into the maps.
// Missing files replay zero records; a torn tail is dropped by the
// journal's CRC framing.
func replayManifest(path string, specs map[string]*manifestRecord,
	states map[string]JobState, errs map[string]string, order *[]string, nextID *int) error {
	_, err := journal.ReplayFile(path, func(p []byte) error {
		var rec manifestRecord
		if err := json.Unmarshal(p, &rec); err != nil {
			return fmt.Errorf("service: manifest %s: bad record: %w", path, err)
		}
		switch rec.Op {
		case "meta":
			if rec.NextID > *nextID {
				*nextID = rec.NextID
			}
		case "submit":
			if rec.ID == "" || rec.Spec == nil {
				return fmt.Errorf("service: manifest %s: submit record missing id or spec", path)
			}
			if _, dup := specs[rec.ID]; !dup {
				*order = append(*order, rec.ID)
				r := rec
				specs[rec.ID] = &r
			}
		case "state":
			// Terminal wins: once any record says the job finished, a
			// stale non-terminal record (from a merged backup) must not
			// resurrect it into the queue.
			if cur, ok := states[rec.ID]; !ok || !cur.terminal() {
				states[rec.ID] = rec.State
				errs[rec.ID] = rec.Error
			}
		default:
			return fmt.Errorf("service: manifest %s: unknown op %q", path, rec.Op)
		}
		return nil
	})
	return err
}

// recover replays the manifest into the job table and reopens it for
// appending. If a compaction backup (manifest.bak) survived the last
// shutdown, the compaction was interrupted: the backup is merged in —
// union of submits, terminal-wins on states — and a fresh compaction
// converges the pair back to one file.
func (s *Server) recover() error {
	path := s.manifestPath()
	specs := map[string]*manifestRecord{}
	states := map[string]JobState{}
	errs := map[string]string{}
	var order []string
	if err := replayManifest(path, specs, states, errs, &order, &s.nextID); err != nil {
		return err
	}
	bak := s.manifestBakPath()
	_, bakErr := os.Stat(bak)
	hadBak := bakErr == nil
	if hadBak {
		// The interrupted rewrite may have left manifest.wal holding any
		// prefix of the compacted records; the backup holds everything
		// that existed before the compaction began. The union can only
		// add back jobs the reaper meant to delete — wasteful, never
		// wrong — and the reaper deletes them again on its next pass.
		if err := replayManifest(bak, specs, states, errs, &order, &s.nextID); err != nil {
			return err
		}
	}

	// Reopen for appending; the replay above already parsed the records,
	// so the second scan only finds the append offset and drops any torn
	// tail. The torn records (if any) were never acknowledged to a client
	// — an fsync'd append is the admission commit point.
	w, _, err := journal.OpenFS(path, true, nil, s.cfg.FS)
	if err != nil {
		return err
	}
	s.manifest = w

	for _, id := range order {
		rec := specs[id]
		j := &job{
			id:       id,
			spec:     *rec.Spec,
			dir:      s.jobDir(id),
			state:    StateQueued,
			priority: rec.Priority,
			client:   rec.Client,
			seq:      s.nextSeq,
			subs:     map[chan Event]struct{}{},
		}
		s.nextSeq++
		if !j.priority.valid() || j.priority == "" {
			j.priority = PriorityNormal
		}
		if cfg, err := rec.Spec.Config(); err == nil {
			j.total = cfg.GridSize()
		}
		if st, ok := states[id]; ok && st.terminal() {
			j.state = st
			j.errText = errs[id]
			if st == StateDone {
				if _, err := os.Stat(s.resultPath(id)); err != nil {
					// The terminal record exists but the bytes do not
					// (deleted out of band): fall back to re-running.
					j.state = StateQueued
					j.errText = ""
				} else {
					j.done = j.total
				}
			}
		}
		s.jobs[id] = j
		s.order = append(s.order, id)
		if n := idNum(id); n >= s.nextID {
			s.nextID = n + 1
		}
		if !j.state.terminal() {
			// Recovered jobs re-enter the queue above the admission bound:
			// they were admitted (and fsynced) before the crash, and
			// rejecting them now would drop accepted work.
			j.exempt = true
			s.queue = append(s.queue, j)
			s.queued++
		}
	}

	if hadBak {
		// Converge: rewrite one clean manifest from the merged table, then
		// drop the backup. New() is single-threaded, so no locks yet. If
		// the rewrite fails (disk still faulty) the backup stays and the
		// next boot merges again — idempotent.
		if err := s.compactManifestLocked(); err == nil {
			os.Remove(bak)
		}
	}
	s.updateGauges()
	return nil
}

func (s *Server) manifestPath() string    { return filepath.Join(s.cfg.DataDir, "manifest.wal") }
func (s *Server) manifestBakPath() string { return filepath.Join(s.cfg.DataDir, "manifest.bak") }
func (s *Server) jobDir(id string) string {
	return filepath.Join(s.cfg.DataDir, "jobs", id)
}
func (s *Server) resultPath(id string) string { return filepath.Join(s.jobDir(id), "result.bin") }
func (s *Server) walPath(id string) string    { return filepath.Join(s.jobDir(id), "sweep.wal") }

// idNum parses the numeric suffix of a job id ("j17" → 17), -1 otherwise.
func idNum(id string) int {
	if !strings.HasPrefix(id, "j") {
		return -1
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// updateGauges refreshes the queue-occupancy gauges; callers hold s.mu.
func (s *Server) updateGauges() {
	s.reg.Gauge(mJobsQueued).Set(float64(s.queued))
	active := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == StateRunning {
			active++
		}
		j.mu.Unlock()
	}
	s.reg.Gauge(mJobsActive).Set(float64(active))
}

// appendManifest durably appends one record. Callers may hold s.mu (the
// lock order is s.mu → manifestMu); they must not hold any j.mu.
func (s *Server) appendManifest(rec manifestRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	s.manifestMu.Lock()
	defer s.manifestMu.Unlock()
	if err := s.manifest.Append(b); err != nil {
		return err
	}
	return s.manifest.Sync()
}

// SubmitOptions carries a submission's scheduling class and identity.
type SubmitOptions struct {
	// Priority is the job's scheduling class; empty selects
	// PriorityNormal.
	Priority Priority
	// Client is the authenticated submitter, used for quota accounting
	// and carried on the job's records and metric labels. Empty is
	// anonymous (never quota-limited).
	Client string
}

// Submit admits a job at normal priority with no client identity. See
// SubmitWith.
func (s *Server) Submit(spec clocksched.SweepSpec) (JobStatus, error) {
	return s.SubmitWith(spec, SubmitOptions{})
}

// SubmitWith admits a job: version-checks and validates the spec, enforces
// the submitter's quota, reserves a queue slot, durably appends the submit
// record, and returns the new job's status. If the submission outranks the
// lowest-priority running job while every runner is busy, that job is
// preempted at its next quantum boundary. The error is an *APIError
// describing the structured rejection (version mismatch, invalid spec,
// queue full, quota exceeded, draining) so both the HTTP layer and
// in-process callers get the same classification.
func (s *Server) SubmitWith(spec clocksched.SweepSpec, opts SubmitOptions) (JobStatus, error) {
	if opts.Priority == "" {
		opts.Priority = PriorityNormal
	}
	if !opts.Priority.valid() {
		return JobStatus{}, &APIError{Status: 400, Code: CodeBadRequest,
			Message: fmt.Sprintf("unknown priority %q", opts.Priority)}
	}
	cfg, err := spec.Config()
	if err != nil {
		s.reg.Counter(mRejectedVer).Inc()
		return JobStatus{}, &APIError{
			Status:  409,
			Code:    CodeVersionMismatch,
			Message: err.Error(),
		}
	}
	if err := cfg.Validate(); err != nil {
		s.reg.Counter(mRejectedSpec).Inc()
		return JobStatus{}, &APIError{Status: 400, Code: CodeInvalidSpec, Message: err.Error()}
	}
	total := cfg.GridSize()

	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		s.reg.Counter(mRejectedDrn).Inc()
		return JobStatus{}, &APIError{Status: 503, Code: CodeDraining, Message: "server is draining"}
	}
	if s.admitted >= s.cfg.MaxQueue {
		retry := s.cfg.RetryAfter
		s.mu.Unlock()
		s.reg.Counter(mRejectedFull).Inc()
		return JobStatus{}, &APIError{
			Status:     429,
			Code:       CodeQueueFull,
			Message:    fmt.Sprintf("admission queue full (%d waiting)", s.cfg.MaxQueue),
			RetryAfter: retry,
		}
	}
	if apiErr := s.checkQuotaLocked(opts.Client, total); apiErr != nil {
		retry := s.cfg.RetryAfter
		s.mu.Unlock()
		s.reg.Counter(mRejectedQuota).Inc()
		apiErr.RetryAfter = retry
		return JobStatus{}, apiErr
	}
	id := fmt.Sprintf("j%d", s.nextID)
	s.nextID++
	j := &job{
		id:        id,
		spec:      spec,
		dir:       s.jobDir(id),
		total:     total,
		state:     StateQueued,
		priority:  opts.Priority,
		client:    opts.Client,
		seq:       s.nextSeq,
		subs:      map[chan Event]struct{}{},
		submitted: time.Now(),
	}
	s.nextSeq++

	// Durable admission: the submit record is fsynced before the job is
	// acknowledged, so an accepted job survives any crash after this call
	// returns. A failed append rejects the submission — accepting work we
	// could lose would be worse than refusing it.
	err = s.appendManifest(manifestRecord{
		Op: "submit", ID: id, Spec: &spec,
		Priority: opts.Priority, Client: opts.Client,
	})
	if err != nil {
		// The id is burned, not reused: the append may have landed before
		// the fsync failed, and handing the same id to a different spec
		// would make the boot-time replay resurrect the wrong job.
		s.mu.Unlock()
		return JobStatus{}, &APIError{Status: 500, Code: CodeInternal,
			Message: fmt.Sprintf("recording submission: %v", err)}
	}

	s.jobs[id] = j
	s.order = append(s.order, id)
	s.queue = append(s.queue, j)
	s.queued++
	s.admitted++
	s.updateGauges()
	s.cond.Signal()
	victim := s.preemptVictimLocked(j)
	var preemptCancel context.CancelFunc
	if victim != nil {
		victim.mu.Lock()
		victim.preempt = true
		preemptCancel = victim.cancel
		victim.mu.Unlock()
	}
	st := s.statusLocked(j)
	s.mu.Unlock()

	if preemptCancel != nil {
		s.reg.Counter(mPreemptions).Inc()
		preemptCancel()
	}
	return st, nil
}

// checkQuotaLocked enforces the client's admission quota; the caller holds
// s.mu. Anonymous clients and clients without a configured limit are
// unlimited. The returned error (nil when within quota) carries the
// client's current usage so the rejection is actionable.
func (s *Server) checkQuotaLocked(client string, cells int) *APIError {
	if client == "" || s.cfg.Auth == nil {
		return nil
	}
	lim, ok := s.cfg.Auth.Limit(client)
	if !ok || (lim.MaxQueued == 0 && lim.MaxCells == 0) {
		return nil
	}
	usage := QuotaUsage{Client: client, MaxJobs: lim.MaxQueued, MaxCells: lim.MaxCells}
	for _, j := range s.jobs {
		if j.client != client {
			continue
		}
		j.mu.Lock()
		live := !j.state.terminal()
		j.mu.Unlock()
		if live {
			usage.Jobs++
			usage.Cells += j.total
		}
	}
	overJobs := lim.MaxQueued > 0 && usage.Jobs+1 > lim.MaxQueued
	overCells := lim.MaxCells > 0 && usage.Cells+cells > lim.MaxCells
	if !overJobs && !overCells {
		return nil
	}
	what := "jobs"
	if overCells {
		what = "cells"
	}
	return &APIError{
		Status:  429,
		Code:    CodeQuotaExceeded,
		Message: fmt.Sprintf("client %q over %s quota", client, what),
		Usage:   &usage,
	}
}

// preemptVictimLocked decides whether admitting j warrants a preemption:
// only when every runner is busy and the lowest-ranked running job ranks
// strictly below j. Ties never preempt — churning equal-priority work
// would waste quanta for no latency win. The caller holds s.mu.
func (s *Server) preemptVictimLocked(j *job) *job {
	running := 0
	var victim *job
	victimRank := 0
	for _, cand := range s.jobs {
		cand.mu.Lock()
		isRunning := cand.state == StateRunning && !cand.preempt
		cand.mu.Unlock()
		if !isRunning {
			continue
		}
		running++
		r := cand.rank()
		// Among equal-rank candidates prefer the youngest: it has had the
		// least runtime, so the quantum thrown away is smallest.
		if victim == nil || r < victimRank || (r == victimRank && cand.seq > victim.seq) {
			victim, victimRank = cand, r
		}
	}
	if running < s.cfg.MaxActiveJobs || victim == nil || victimRank >= j.rank() {
		return nil
	}
	return victim
}

// popLocked removes and returns the best queue entry: highest priority
// rank first, FIFO (lowest seq) within a rank. The caller holds s.mu and
// has checked the queue is non-empty.
func (s *Server) popLocked() *job {
	best := 0
	for i := 1; i < len(s.queue); i++ {
		a, b := s.queue[i], s.queue[best]
		if a.rank() > b.rank() || (a.rank() == b.rank() && a.seq < b.seq) {
			best = i
		}
	}
	j := s.queue[best]
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	s.queued--
	j.mu.Lock()
	if j.exempt {
		j.exempt = false
	} else {
		s.admitted--
	}
	j.mu.Unlock()
	return j
}

// Cancel requests cancellation: a queued or preempted job turns terminal
// immediately; a running one is cancelled at the next quantum boundary
// through the sweep context. Cancelling a terminal job is a no-op
// reporting its final state.
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, &APIError{Status: 404, Code: CodeNotFound, Message: "no such job"}
	}
	j.mu.Lock()
	j.cancelled = true
	cancel := j.cancel
	state := j.state
	j.mu.Unlock()
	s.mu.Unlock()

	switch state {
	case StateQueued, StatePreempted:
		// The runner discards cancelled queue entries, but turning the job
		// terminal here makes cancellation immediate and synchronous.
		s.finishJob(j, StateCancelled, "")
	case StateRunning:
		if cancel != nil {
			cancel()
		}
	}
	return s.Status(id)
}

// Status reports one job.
func (s *Server) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, &APIError{Status: 404, Code: CodeNotFound, Message: "no such job"}
	}
	return s.statusLocked(j), nil
}

// Readiness is the /readyz payload: whether the daemon is accepting work,
// and the admission/runner occupancy a coordinator or load balancer needs
// to route around a busy or draining peer.
type Readiness struct {
	// Ready reports the daemon accepts submissions right now: not
	// draining, not closed, admission queue below its bound.
	Ready bool `json:"ready"`
	// Draining reports a graceful shutdown is underway (every submission
	// answers 503).
	Draining bool `json:"draining"`
	// Queued is the admission-queue depth; MaxQueue its bound.
	Queued   int `json:"queued"`
	MaxQueue int `json:"max_queue"`
	// ActiveJobs is how many jobs are running; MaxActiveJobs the runner
	// count.
	ActiveJobs    int `json:"active_jobs"`
	MaxActiveJobs int `json:"max_active_jobs"`
	// SimVersion is the daemon's simulation revision — a coordinator
	// probing readiness learns version compatibility in the same call.
	SimVersion string `json:"sim_version"`
}

// Readiness snapshots the daemon's admission state; see /readyz.
func (s *Server) Readiness() Readiness {
	s.mu.Lock()
	defer s.mu.Unlock()
	active := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == StateRunning {
			active++
		}
		j.mu.Unlock()
	}
	return Readiness{
		Ready:         !s.draining && !s.closed && s.admitted < s.cfg.MaxQueue,
		Draining:      s.draining,
		Queued:        s.queued,
		MaxQueue:      s.cfg.MaxQueue,
		ActiveJobs:    active,
		MaxActiveJobs: s.cfg.MaxActiveJobs,
		SimVersion:    clocksched.SimVersion(),
	}
}

// Jobs lists every job in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

// statusLocked snapshots one job; the caller holds s.mu.
func (s *Server) statusLocked(j *job) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:          j.id,
		State:       j.state,
		Done:        j.done,
		Total:       j.total,
		Replayed:    j.replayed,
		Error:       j.errText,
		Priority:    j.priority,
		Client:      j.client,
		Preemptions: j.preemptions,
	}
}

// ResultBytes returns a finished job's canonical result envelope.
func (s *Server) ResultBytes(id string) ([]byte, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, &APIError{Status: 404, Code: CodeNotFound, Message: "no such job"}
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	if state != StateDone {
		return nil, &APIError{Status: 409, Code: CodeNotFinished,
			Message: fmt.Sprintf("job is %s, result available once done", state)}
	}
	b, err := os.ReadFile(s.resultPath(id))
	if err != nil {
		return nil, &APIError{Status: 500, Code: CodeInternal, Message: err.Error()}
	}
	return b, nil
}

// subscribe attaches an event channel to the job and returns the current
// snapshot event; the caller must call unsubscribe. The buffer absorbs
// progress bursts; if a subscriber falls behind, intermediate progress
// events are dropped — state transitions are never dropped, because
// publish retries them synchronously.
func (s *Server) subscribe(id string) (*job, chan Event, Event, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, nil, Event{}, &APIError{Status: 404, Code: CodeNotFound, Message: "no such job"}
	}
	ch := make(chan Event, 64)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	snap := Event{Type: "state", State: j.state, Done: j.done, Total: j.total,
		Error: j.errText, Seq: j.evSeq}
	j.mu.Unlock()
	return j, ch, snap, nil
}

func (j *job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// publish stamps the event with the job's next sequence number and fans it
// to the subscribers without ever blocking: a subscriber that has fallen
// 64 events behind loses its oldest buffered event to make room for a
// state transition, and merely misses intermediate progress events — the
// next one it reads carries the current done-count anyway.
func (j *job) publish(ev Event) {
	j.mu.Lock()
	j.evSeq++
	ev.Seq = j.evSeq
	chans := make([]chan Event, 0, len(j.subs))
	for ch := range j.subs {
		chans = append(chans, ch)
	}
	j.mu.Unlock()
	for _, ch := range chans {
		select {
		case ch <- ev:
			continue
		default:
		}
		if ev.Type != "state" {
			continue
		}
		select {
		case <-ch: // shed the oldest buffered event
		default:
		}
		select {
		case ch <- ev:
		default:
		}
	}
}

// runner is one of MaxActiveJobs job-execution loops.
func (s *Server) runner() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.draining && !s.closed {
			s.cond.Wait()
		}
		if s.draining || s.closed {
			s.mu.Unlock()
			return
		}
		j := s.popLocked()

		j.mu.Lock()
		if j.cancelled || j.state.terminal() {
			// Cancelled while queued (Cancel already finished it) or a
			// stale entry; skip.
			j.mu.Unlock()
			s.updateGauges()
			s.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(s.runCtx)
		j.state = StateRunning
		j.preempt = false
		j.cancel = cancel
		j.tel = clocksched.NewTelemetry()
		j.mu.Unlock()
		s.updateGauges()
		s.mu.Unlock()

		j.publish(Event{Type: "state", State: StateRunning, Total: j.total})
		s.execute(ctx, j)
		cancel()
	}
}

// execute runs one job to a terminal state (or back to a waiting state on
// a drain or preemption).
func (s *Server) execute(ctx context.Context, j *job) {
	cfg, err := j.spec.Config()
	if err != nil {
		// Can only happen if the daemon restarted under a different
		// sim.Version than the one that admitted the job.
		s.finishJob(j, StateFailed, err.Error())
		return
	}
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		s.finishJob(j, StateFailed, fmt.Sprintf("job dir: %v", err))
		return
	}

	cfg.Workers = s.cfg.Workers / s.cfg.MaxActiveJobs
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	cfg.Cache = s.cache
	cfg.Journal = s.walPath(j.id)
	// Resume unconditionally: a fresh journal replays nothing, a journal
	// left by a killed daemon (or a preemption) replays every committed
	// cell.
	cfg.Resume = true
	cfg.Telemetry = j.tel
	cfg.FS = s.cfg.FS
	// The first progress call of a resumed sweep carries the replayed
	// count (see SweepConfig.Progress), so a restarted job's done-count
	// starts where the killed daemon left off.
	cfg.Progress = func(done, total int) {
		j.mu.Lock()
		j.done = done
		j.mu.Unlock()
		j.publish(Event{Type: "progress", State: StateRunning, Done: done, Total: total})
		if s.cfg.CellDelay > 0 {
			select {
			case <-time.After(s.cfg.CellDelay):
			case <-ctx.Done():
			}
		}
	}

	var res *clocksched.SweepResult
	var sweepErr error
	if s.cfg.Executor != nil {
		res, sweepErr = s.cfg.Executor(ctx, ExecJob{ID: j.id, Dir: j.dir, Spec: j.spec, Config: cfg})
	} else {
		res, sweepErr = clocksched.Sweep(ctx, cfg)
	}
	if res != nil {
		j.mu.Lock()
		j.replayed = res.Telemetry.Replayed
		j.mu.Unlock()
	}

	j.mu.Lock()
	userCancel := j.cancelled
	preempted := j.preempt
	j.mu.Unlock()

	switch {
	case sweepErr == nil:
		enc, err := clocksched.EncodeSweepResult(res)
		if err == nil {
			err = writeFileAtomic(s.resultPath(j.id), enc, s.cfg.FS)
		}
		if err != nil {
			s.finishJob(j, StateFailed, fmt.Sprintf("storing result: %v", err))
			return
		}
		s.finishJob(j, StateDone, "")
	case userCancel:
		s.finishJob(j, StateCancelled, "")
	case preempted && s.runCtx.Err() == nil:
		// Preempted by a higher-priority submission (not a shutdown): back
		// into the queue above the admission bound, completed cells safely
		// journaled. The runner this frees picks the preemptor next.
		j.mu.Lock()
		j.state = StatePreempted
		j.preempt = false
		j.preemptions++
		j.cancel = nil
		j.exempt = true
		done := j.done
		j.mu.Unlock()
		s.mu.Lock()
		s.queue = append(s.queue, j)
		s.queued++
		s.updateGauges()
		s.cond.Signal()
		s.mu.Unlock()
		j.publish(Event{Type: "state", State: StatePreempted, Done: done, Total: j.total})
	case ctx.Err() != nil:
		// Shutdown or drain, not the user: the job goes back to queued —
		// in memory for this process's lifetime, and on the next boot via
		// its still-non-terminal manifest state. Completed cells are in
		// the journal; nothing is lost.
		j.mu.Lock()
		j.state = StateQueued
		j.cancel = nil
		done := j.done
		j.mu.Unlock()
		j.publish(Event{Type: "state", State: StateQueued, Done: done, Total: j.total})
	default:
		s.finishJob(j, StateFailed, sweepErr.Error())
	}
}

// finishJob moves the job to a terminal state, durably records it, and
// notifies subscribers. The terminal manifest record is appended after the
// result bytes (if any) are on disk — see the package durability model.
func (s *Server) finishJob(j *job, state JobState, errText string) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.errText = errText
	j.cancel = nil
	if state == StateDone {
		j.done = j.total
	}
	done, total := j.done, j.total
	j.mu.Unlock()

	err := s.appendManifest(manifestRecord{Op: "state", ID: j.id, State: state, Error: errText})
	if err != nil {
		// The job re-runs on the next boot; for this process's lifetime
		// the in-memory state stands.
		s.reg.Counter(mManifestErrs).Inc()
	}

	switch state {
	case StateDone:
		s.reg.Counter(mJobsDone).Inc()
	case StateFailed:
		s.reg.Counter(mJobsFailed).Inc()
	case StateCancelled:
		s.reg.Counter(mJobsCanceled).Inc()
	}
	s.mu.Lock()
	s.updateGauges()
	s.mu.Unlock()
	j.publish(Event{Type: "state", State: state, Done: done, Total: total, Error: errText})
}

// Drain gracefully winds the server down: admission stops (503), runners
// finish their current jobs, and still-queued jobs are left durably queued
// for the next boot. If ctx expires first, running jobs are cancelled —
// their completed cells are journaled, so the next boot resumes them.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-ctx.Done():
		s.cancelRun()
		<-finished
	}
	s.stopGC()
	return s.closeManifest()
}

// Close hard-stops the server: running jobs are cancelled at the next
// quantum boundary and re-queued durably, then the manifest is closed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.cancelRun()
	s.wg.Wait()
	s.stopGC()
	return s.closeManifest()
}

// stopGC stops the retention reaper (idempotent) and waits for an
// in-flight pass: the reaper touches the manifest, so it must be quiescent
// before closeManifest.
func (s *Server) stopGC() {
	s.gcOnce.Do(func() { close(s.gcStop) })
	s.gcWg.Wait()
}

func (s *Server) closeManifest() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.manifestMu.Lock()
	defer s.manifestMu.Unlock()
	return s.manifest.Close()
}

// writeFileAtomic writes bytes via a same-directory temp file, fsync, and
// rename, so the destination is never observable half-written. A non-nil
// fs routes the write, fsync, and rename through the injectable surface.
func writeFileAtomic(path string, b []byte, fs journal.FS) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	var werr error
	if fs == nil {
		_, werr = tmp.Write(b)
	} else {
		_, werr = fs.Write(tmp, b)
	}
	if werr == nil {
		if fs == nil {
			werr = tmp.Sync()
		} else {
			werr = fs.Sync(tmp)
		}
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	if fs == nil {
		return os.Rename(tmp.Name(), path)
	}
	return fs.Rename(tmp.Name(), path)
}

// scopes snapshots the metric export set: the service registry, any extra
// registries from Config.Metrics (the fabric coordinator's), plus every
// job's registry labelled job="<id>" (and client="…" when the job was
// submitted with an identity), in stable id order.
func (s *Server) scopes() []telemetry.Scoped {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := []telemetry.Scoped{{Reg: s.reg}}
	out = append(out, s.cfg.Metrics...)
	ids := append([]string(nil), s.order...)
	sort.Strings(ids)
	for _, id := range ids {
		j := s.jobs[id]
		j.mu.Lock()
		tel := j.tel
		j.mu.Unlock()
		if tel != nil {
			labels := `job="` + id + `"`
			if j.client != "" {
				labels += `,client="` + j.client + `"`
			}
			out = append(out, telemetry.Scoped{
				Labels: labels,
				Reg:    tel.Registry(),
			})
		}
	}
	return out
}
