package service

// The HTTP surface of the sweep service. Every error response is a
// structured JSON object with a machine-readable code, and every endpoint
// is safe to hit concurrently with job execution:
//
//	POST   /v1/jobs             submit a SweepSpec, 202 + status
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        one job's status
//	GET    /v1/jobs/{id}/result canonical result bytes (done jobs only)
//	GET    /v1/jobs/{id}/events live progress via Server-Sent Events
//	DELETE /v1/jobs/{id}        cancel at the next quantum boundary
//	GET    /metrics             service + per-job Prometheus metrics
//	GET    /healthz             liveness
//	GET    /readyz              readiness: drain state + queue/runner occupancy
//
// Backpressure is visible at the protocol level: a full admission queue
// answers 429 with a Retry-After header, a mismatched sim.Version answers
// 409 with code "version_mismatch", and a draining server answers 503.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"clocksched"
	"clocksched/internal/telemetry"
)

// Error codes carried in structured error responses.
const (
	CodeVersionMismatch = "version_mismatch"
	CodeInvalidSpec     = "invalid_spec"
	CodeQueueFull       = "queue_full"
	CodeDraining        = "draining"
	CodeNotFound        = "not_found"
	CodeNotFinished     = "not_finished"
	CodeBadRequest      = "bad_request"
	CodeInternal        = "internal"
	CodeUnauthorized    = "unauthorized"
	CodeQuotaExceeded   = "quota_exceeded"
)

// APIError is the service's structured error: an HTTP status, a stable
// machine-readable code, and a human-readable message. The server returns
// it from Submit/Status/…; the HTTP layer serializes it; the client
// deserializes it back, so in-process and over-the-wire callers see the
// same type.
type APIError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfter, when positive, tells the client how long to back off
	// before resubmitting (429 responses; sent as the Retry-After header).
	RetryAfter time.Duration `json:"retry_after_seconds,omitempty"`
	// Usage rides on quota rejections (code "quota_exceeded"): the owning
	// client's live jobs and cells against its limits, so the rejection
	// says exactly what to cancel or wait out.
	Usage *QuotaUsage `json:"usage,omitempty"`
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: %s (%d %s)", e.Message, e.Status, e.Code)
}

// JobStatus is the wire form of one job's state.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Done and Total are the job's cell progress; a resumed job's Done
	// starts at the journal-replayed count.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Replayed counts the cells the job's last run recovered from its
	// journal instead of re-simulating.
	Replayed int `json:"replayed,omitempty"`
	// Error is the terminal failure text of a failed job.
	Error string `json:"error,omitempty"`
	// Priority is the job's scheduling class.
	Priority Priority `json:"priority,omitempty"`
	// Client is the authenticated submitter, empty when anonymous.
	Client string `json:"client,omitempty"`
	// Preemptions counts how many times a higher-priority job pushed this
	// one off its runner.
	Preemptions int `json:"preemptions,omitempty"`
}

// maxSpecBytes bounds a submitted job spec. A grid spec is axes plus
// flags; even an explicit 10k-cell spec fits comfortably — anything larger
// is hostile or broken.
const maxSpecBytes = 8 << 20

// clientKey carries the authenticated client's name through the request
// context.
type clientKey struct{}

// authenticate resolves the request's bearer token against the configured
// table. With no table every request is anonymous; with one, every
// endpoint but /healthz requires a known token.
func (s *Server) authenticate(r *http.Request) (string, error) {
	if s.cfg.Auth == nil {
		return "", nil
	}
	h := r.Header.Get("Authorization")
	token, ok := strings.CutPrefix(h, "Bearer ")
	if !ok || token == "" {
		s.reg.Counter(mRejectedAuth).Inc()
		return "", &APIError{Status: 401, Code: CodeUnauthorized,
			Message: "missing bearer token"}
	}
	cl, ok := s.cfg.Auth.Lookup(strings.TrimSpace(token))
	if !ok {
		s.reg.Counter(mRejectedAuth).Inc()
		return "", &APIError{Status: 401, Code: CodeUnauthorized,
			Message: "unknown bearer token"}
	}
	return cl.Name, nil
}

// ServeHTTP implements http.Handler over the method+path patterns of the
// standard mux, gated by bearer-token authentication when a token table is
// configured (liveness stays open — a monitor should not need a secret to
// ask if the daemon is up).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Auth != nil && r.URL.Path != "/healthz" && r.URL.Path != "/readyz" {
		client, err := s.authenticate(r)
		if err != nil {
			writeError(w, err)
			return
		}
		r = r.WithContext(context.WithValue(r.Context(), clientKey{}, client))
	}
	s.mux().ServeHTTP(w, r)
}

// mux builds the route table (once; ServeMux registration is cheap enough
// to rebuild, but the handler set is static).
func (s *Server) mux() *http.ServeMux {
	s.muxOnce.Do(func() {
		m := http.NewServeMux()
		m.HandleFunc("POST /v1/jobs", s.handleSubmit)
		m.HandleFunc("GET /v1/jobs", s.handleList)
		m.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
		m.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
		m.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
		m.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
		m.HandleFunc("GET /metrics", s.handleMetrics)
		m.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"ok":true,"sim_version":%q}`+"\n", clocksched.SimVersion())
		})
		m.HandleFunc("GET /readyz", s.handleReady)
		s.muxVal = m
	})
	return s.muxVal
}

// handleReady answers readiness probes: 200 with the admission snapshot
// while the daemon accepts work, 503 with the same body once it is
// draining, closed, or backed up — so a probe can branch on the status
// code alone and a coordinator can read the occupancy. Like /healthz it
// is exempt from authentication: a load balancer should not need a secret
// to route around a draining peer.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	rd := s.Readiness()
	status := http.StatusOK
	if !rd.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rd)
}

// writeError serializes any error as the structured JSON error envelope,
// mapping non-APIError values to 500/internal.
func writeError(w http.ResponseWriter, err error) {
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		apiErr = &APIError{Status: 500, Code: CodeInternal, Message: err.Error()}
	}
	if apiErr.RetryAfter > 0 {
		secs := int(apiErr.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(apiErr.Status)
	json.NewEncoder(w).Encode(struct {
		Error *APIError `json:"error"`
	}{apiErr})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// DecodeJobSpec parses one submitted job spec, enforcing the size bound
// and rejecting unknown fields — a typo'd field name in a hand-written
// spec should fail loudly, not silently run a default grid. It is the
// exact decoder the HTTP handler uses; the fuzz target drives it directly.
func DecodeJobSpec(b []byte) (clocksched.SweepSpec, error) {
	var spec clocksched.SweepSpec
	if len(b) > maxSpecBytes {
		return spec, &APIError{Status: 400, Code: CodeBadRequest,
			Message: fmt.Sprintf("spec exceeds %d bytes", maxSpecBytes)}
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, &APIError{Status: 400, Code: CodeBadRequest,
			Message: fmt.Sprintf("decoding spec: %v", err)}
	}
	return spec, nil
}

// readBody reads at most limit bytes of the request body, rejecting larger
// payloads with a structured 400.
func readBody(r *http.Request, limit int64) ([]byte, error) {
	b, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		return nil, &APIError{Status: 400, Code: CodeBadRequest,
			Message: fmt.Sprintf("reading body: %v", err)}
	}
	if int64(len(b)) > limit {
		return nil, &APIError{Status: 400, Code: CodeBadRequest,
			Message: fmt.Sprintf("body exceeds %d bytes", limit)}
	}
	return b, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r, maxSpecBytes)
	if err != nil {
		writeError(w, err)
		return
	}
	spec, err := DecodeJobSpec(body)
	if err != nil {
		writeError(w, err)
		return
	}
	prio, err := ParsePriority(r.URL.Query().Get("priority"))
	if err != nil {
		writeError(w, &APIError{Status: 400, Code: CodeBadRequest, Message: err.Error()})
		return
	}
	client, _ := r.Context().Value(clientKey{}).(string)
	st, err := s.SubmitWith(spec, SubmitOptions{Priority: prio, Client: client})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{s.Jobs()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	b, err := s.ResultBytes(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.Write(b)
}

// eventID renders one event's SSE id: the server's boot epoch qualifying
// the per-job sequence number, "<epoch>.<seq>". Clients treat it as opaque
// and echo it verbatim in Last-Event-ID.
func (s *Server) eventID(seq int64) string {
	return s.epoch + "." + strconv.FormatInt(seq, 10)
}

// caughtUp reports whether a reconnecting client's Last-Event-ID proves it
// has already seen everything up to snapSeq from THIS server boot. Sequence
// numbers restart every boot — and a daemon restarted against a fresh data
// dir even reuses job ids — so a bare numeric match means nothing; only an
// id carrying the current epoch counts. Anything else (empty, a foreign
// epoch, a legacy bare integer, garbage) is stale and earns the full
// snapshot.
func (s *Server) caughtUp(lastEventID string, snapSeq int64) bool {
	epoch, seqStr, ok := strings.Cut(lastEventID, ".")
	if !ok || epoch != s.epoch {
		return false
	}
	seq, err := strconv.ParseInt(seqStr, 10, 64)
	return err == nil && seq > 0 && seq == snapSeq
}

// handleEvents streams the job's lifecycle over Server-Sent Events: one
// snapshot event on connect, then every progress update and state change
// until the job reaches a terminal state or the client disconnects. Every
// event carries an epoch-qualified sequence id (see eventID); a
// reconnecting client that presents the current one in Last-Event-ID skips
// the redundant snapshot, while an id from any other daemon life — however
// its numbers compare — gets the snapshot re-sent.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ch, snap, err := s.subscribe(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	defer j.unsubscribe(ch)

	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %s\nevent: %s\ndata: %s\n\n", s.eventID(ev.Seq), ev.Type, data); err != nil {
			return false
		}
		if canFlush {
			fl.Flush()
		}
		return true
	}

	caughtUp := s.caughtUp(r.Header.Get("Last-Event-ID"), snap.Seq)
	if !caughtUp {
		if !send(snap) {
			return
		}
	}
	if snap.State.terminal() {
		if caughtUp {
			// The client saw everything up to the terminal event already;
			// re-send the terminal snapshot so the stream still ends with
			// one rather than closing silently.
			send(snap)
		}
		return
	}
	for {
		select {
		case ev := <-ch:
			if !send(ev) {
				return
			}
			if ev.Type == "state" && ev.State.terminal() {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleMetrics merges the service registry and every job's scoped
// registry onto one Prometheus page, one TYPE line per metric family.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	telemetry.WritePrometheusAll(w, s.scopes()...)
}
