package service

// Client is the Go-side of the job API, used by `experiments -remote` and
// the service tests. Every error a server rejects a request with comes
// back as the same *APIError the server constructed — code, message, and
// Retry-After hint intact — so callers branch on Code, not on substrings.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"clocksched"
)

// Client talks to one sweepd daemon.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8900".
	Base string
	// HTTP, when non-nil, overrides http.DefaultClient (tests inject a
	// transport; CLIs set timeouts).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.Base, "/") + path
}

// decodeError reconstructs the server's structured error from a non-2xx
// response.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env struct {
		Error *APIError `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil {
		env.Error.Status = resp.StatusCode
		if env.Error.RetryAfter == 0 {
			if h := resp.Header.Get("Retry-After"); h != "" {
				if d, err := time.ParseDuration(h + "s"); err == nil {
					env.Error.RetryAfter = d
				}
			}
		}
		return env.Error
	}
	return &APIError{Status: resp.StatusCode, Code: CodeInternal,
		Message: fmt.Sprintf("unexpected response: %s", bytes.TrimSpace(body))}
}

// do issues one request and decodes a JSON response into out (unless nil).
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts the spec and returns the accepted job's status. Rejections
// (429 queue full, 409 version mismatch, 400 invalid, 503 draining) come
// back as *APIError.
func (c *Client) Submit(ctx context.Context, spec clocksched.SweepSpec) (JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	err = c.do(ctx, http.MethodPost, "/v1/jobs", body, &st)
	return st, err
}

// Status fetches one job's status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Jobs lists every job on the daemon in submission order.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out struct {
		Jobs []JobStatus `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out.Jobs, err
}

// Cancel asks the daemon to cancel the job at its next quantum boundary.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// ResultBytes fetches a finished job's canonical result envelope.
func (c *Client) ResultBytes(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/result"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Result fetches and decodes a finished job's SweepResult.
func (c *Client) Result(ctx context.Context, id string) (*clocksched.SweepResult, error) {
	b, err := c.ResultBytes(ctx, id)
	if err != nil {
		return nil, err
	}
	return clocksched.DecodeSweepResult(b)
}

// Events streams the job's SSE feed, invoking fn per event until the job
// reaches a terminal state, fn returns an error, or ctx is cancelled. It
// returns nil on a terminal event; io.EOF from a dropped connection is
// surfaced so callers can reconnect or fall back to polling.
func (c *Client) Events(ctx context.Context, id string, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/events"), nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return fmt.Errorf("service: bad event payload: %w", err)
		}
		if fn != nil {
			if err := fn(ev); err != nil {
				return err
			}
		}
		if ev.Type == "state" && ev.State.terminal() {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return io.EOF // stream ended without a terminal event
}

// Wait blocks until the job is terminal, preferring the event stream and
// falling back to status polling if the stream drops (daemon restart). A
// non-nil onProgress observes done/total counts as they arrive.
func (c *Client) Wait(ctx context.Context, id string, onProgress func(done, total int)) (JobStatus, error) {
	for {
		// The stream can drop (daemon restart) or end on a state the
		// server has since rolled back to queued; the status probe below
		// is the arbiter either way.
		_ = c.Events(ctx, id, func(ev Event) error {
			if onProgress != nil && ev.Total > 0 {
				onProgress(ev.Done, ev.Total)
			}
			return nil
		})
		if ctx.Err() != nil {
			return JobStatus{}, ctx.Err()
		}
		if st, err := c.Status(ctx, id); err == nil && st.State.terminal() {
			return st, nil
		}
		select {
		case <-time.After(250 * time.Millisecond):
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		}
	}
}
