package service

// Client is the Go-side of the job API, used by `experiments -remote` and
// the service tests. Every error a server rejects a request with comes
// back as the same *APIError the server constructed — code, message, and
// Retry-After hint intact — so callers branch on Code, not on substrings.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"clocksched"
	"clocksched/internal/sim"
)

// Client talks to one sweepd daemon.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8900".
	Base string
	// HTTP, when non-nil, overrides the client's default http.Client
	// entirely (tests inject one; CLIs with exotic needs set their own
	// policies). When nil, the client builds a private http.Client over a
	// transport with sane dial/TLS/response-header timeouts — never
	// http.DefaultClient, whose zero timeouts let one hung peer wedge a
	// caller forever.
	HTTP *http.Client
	// Transport, when non-nil (and HTTP is nil), is the RoundTripper
	// under the default client — the seam the fabric chaos suite uses to
	// thread a fault.NetInjector beneath every request.
	Transport http.RoundTripper
	// RequestTimeout bounds each non-streaming request (submit, status,
	// cancel, result fetch) with a context deadline. Zero selects 30s;
	// negative disables the per-request deadline. The SSE event stream is
	// exempt — it is long-lived by design and has its own reconnect
	// budget — but still inherits the transport's response-header timeout,
	// so a peer that accepts the connection and then hangs is surfaced.
	RequestTimeout time.Duration
	// Token, when non-empty, is sent as the bearer token on every request
	// — required when the daemon runs with a token file.
	Token string
	// Retry429, when positive, makes Submit/SubmitWith retry up to this
	// many additional times after a 429 (queue full, quota exceeded),
	// honouring the server's Retry-After hint plus seeded jitter. Zero
	// surfaces the 429 to the caller unchanged.
	Retry429 int
	// RetrySeed seeds the retry jitter, so a test's backoff schedule — and
	// a fleet of batch submitters started from distinct seeds — is
	// deterministic. Zero is a fixed default stream.
	RetrySeed uint64

	jitterOnce sync.Once
	jitterMu   sync.Mutex
	jitter     *sim.RNG

	httpOnce sync.Once
	httpVal  *http.Client
}

// retryStream is the client's RNG stream id for retry jitter, distinct
// from every simulation stream.
const retryStream = 0xBACC0FF5

// defaultRequestTimeout is the per-request deadline when RequestTimeout
// is zero: generous against a big result download, tiny against a wedged
// peer's infinity.
const defaultRequestTimeout = 30 * time.Second

// defaultTransport builds the client's private transport: bounded dial,
// TLS handshake, and response-header waits, so no single peer interaction
// can block longer than its budget. Deliberately not http.Client.Timeout —
// that would also kill long-lived SSE streams mid-read.
func defaultTransport() *http.Transport {
	return &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout:   10 * time.Second,
		ResponseHeaderTimeout: 30 * time.Second,
		ExpectContinueTimeout: time.Second,
		MaxIdleConnsPerHost:   4,
	}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	c.httpOnce.Do(func() {
		tr := c.Transport
		if tr == nil {
			tr = defaultTransport()
		}
		c.httpVal = &http.Client{Transport: tr}
	})
	return c.httpVal
}

// reqCtx applies the per-request deadline; see Client.RequestTimeout.
func (c *Client) reqCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	d := c.RequestTimeout
	if d == 0 {
		d = defaultRequestTimeout
	}
	if d < 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.Base, "/") + path
}

// newRequest builds a request with the client's auth header attached.
func (c *Client) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), body)
	if err != nil {
		return nil, err
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	return req, nil
}

// retryDelay draws one backoff: the server's hint (or a second when it
// sent none) plus up to 50% seeded jitter, so a herd of rejected clients
// does not resubmit in lockstep.
func (c *Client) retryDelay(hint time.Duration) time.Duration {
	c.jitterOnce.Do(func() {
		c.jitter = sim.NewRNGStream(c.RetrySeed, retryStream)
	})
	if hint <= 0 {
		hint = time.Second
	}
	c.jitterMu.Lock()
	defer c.jitterMu.Unlock()
	return hint + time.Duration(c.jitter.Int63n(int64(hint)/2+1))
}

// decodeError reconstructs the server's structured error from a non-2xx
// response.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env struct {
		Error *APIError `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil {
		env.Error.Status = resp.StatusCode
		if env.Error.RetryAfter == 0 {
			if h := resp.Header.Get("Retry-After"); h != "" {
				if d, err := time.ParseDuration(h + "s"); err == nil {
					env.Error.RetryAfter = d
				}
			}
		}
		return env.Error
	}
	return &APIError{Status: resp.StatusCode, Code: CodeInternal,
		Message: fmt.Sprintf("unexpected response: %s", bytes.TrimSpace(body))}
}

// do issues one request under the per-request deadline and decodes a JSON
// response into out (unless nil).
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := c.newRequest(ctx, method, path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts the spec at normal priority and returns the accepted job's
// status. Rejections (429 queue full or quota, 409 version mismatch, 400
// invalid, 401 unauthorized, 503 draining) come back as *APIError. With
// Retry429 set, 429s are retried per the server's Retry-After hint.
func (c *Client) Submit(ctx context.Context, spec clocksched.SweepSpec) (JobStatus, error) {
	return c.SubmitWith(ctx, spec, SubmitOptions{})
}

// SubmitWith is Submit with an explicit priority class. The client's
// identity is not a request field — the server derives it from the bearer
// token — so SubmitOptions.Client is ignored here.
func (c *Client) SubmitWith(ctx context.Context, spec clocksched.SweepSpec, opts SubmitOptions) (JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, err
	}
	path := "/v1/jobs"
	if opts.Priority != "" {
		path += "?priority=" + url.QueryEscape(string(opts.Priority))
	}
	for attempt := 0; ; attempt++ {
		var st JobStatus
		err := c.do(ctx, http.MethodPost, path, body, &st)
		if err == nil {
			return st, nil
		}
		var apiErr *APIError
		if attempt >= c.Retry429 || !errors.As(err, &apiErr) || apiErr.Status != 429 {
			return JobStatus{}, err
		}
		select {
		case <-time.After(c.retryDelay(apiErr.RetryAfter)):
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		}
	}
}

// Status fetches one job's status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Jobs lists every job on the daemon in submission order.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out struct {
		Jobs []JobStatus `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out.Jobs, err
}

// Cancel asks the daemon to cancel the job at its next quantum boundary.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// ResultBytes fetches a finished job's canonical result envelope, under
// the per-request deadline.
func (c *Client) ResultBytes(ctx context.Context, id string) ([]byte, error) {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Result fetches and decodes a finished job's SweepResult.
func (c *Client) Result(ctx context.Context, id string) (*clocksched.SweepResult, error) {
	b, err := c.ResultBytes(ctx, id)
	if err != nil {
		return nil, err
	}
	return clocksched.DecodeSweepResult(b)
}

// eventsMaxReconnects bounds consecutive failed stream attempts before
// Events gives up and surfaces the drop; any successfully read event
// resets the count, so a long watch survives any number of spaced-out
// daemon restarts.
const eventsMaxReconnects = 4

// Events streams the job's SSE feed, invoking fn per event until the job
// reaches a terminal state, fn returns an error, or ctx is cancelled. A
// dropped connection (daemon restart, proxy timeout) is reconnected
// transparently with the SSE Last-Event-ID header, so the server skips
// the snapshot the client already has; only after eventsMaxReconnects
// consecutive failures is the drop surfaced (io.EOF or the transport
// error) for callers to fall back to polling.
func (c *Client) Events(ctx context.Context, id string, fn func(Event) error) error {
	var lastID string
	fails := 0
	for {
		sawEvent, retryable, err := c.eventsOnce(ctx, id, fn, &lastID)
		if err == nil || !retryable || ctx.Err() != nil {
			return err
		}
		if sawEvent {
			fails = 0 // progress since the last failure: fresh budget
		}
		fails++
		if fails > eventsMaxReconnects {
			return err
		}
		select {
		case <-time.After(time.Duration(fails) * 250 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// eventsOnce runs one SSE connection, tracking the last SSE id in *lastID
// for the next attempt's Last-Event-ID header. The id is opaque to the
// client — the server qualifies sequence numbers with its boot epoch, and
// deciding whether a held id is current or stale is the server's job — so
// it is stored and echoed verbatim. A nil error means the stream ended on
// a terminal event. retryable marks transport-level drops (dial failure,
// mid-stream cut, clean close without a terminal event); structured API
// rejections, malformed payloads, and fn's own errors are not retryable —
// they are the caller's business.
func (c *Client) eventsOnce(ctx context.Context, id string, fn func(Event) error, lastID *string) (sawEvent, retryable bool, err error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return false, false, err
	}
	if *lastID != "" {
		req.Header.Set("Last-Event-ID", *lastID)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return false, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return false, false, decodeError(resp)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if idStr, ok := strings.CutPrefix(line, "id: "); ok {
			*lastID = strings.TrimSpace(idStr)
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return sawEvent, false, fmt.Errorf("service: bad event payload: %w", err)
		}
		sawEvent = true
		if fn != nil {
			if err := fn(ev); err != nil {
				return sawEvent, false, err
			}
		}
		if ev.Type == "state" && ev.State.terminal() {
			return sawEvent, false, nil
		}
	}
	if err := sc.Err(); err != nil {
		return sawEvent, true, err
	}
	return sawEvent, true, io.EOF // stream ended without a terminal event
}

// Wait blocks until the job is terminal, preferring the event stream and
// falling back to status polling if the stream drops (daemon restart). A
// non-nil onProgress observes done/total counts as they arrive.
func (c *Client) Wait(ctx context.Context, id string, onProgress func(done, total int)) (JobStatus, error) {
	for {
		// The stream can drop (daemon restart) or end on a state the
		// server has since rolled back to queued; the status probe below
		// is the arbiter either way.
		_ = c.Events(ctx, id, func(ev Event) error {
			if onProgress != nil && ev.Total > 0 {
				onProgress(ev.Done, ev.Total)
			}
			return nil
		})
		if ctx.Err() != nil {
			return JobStatus{}, ctx.Err()
		}
		if st, err := c.Status(ctx, id); err == nil && st.State.terminal() {
			return st, nil
		}
		select {
		case <-time.After(250 * time.Millisecond):
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		}
	}
}
