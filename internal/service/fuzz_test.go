package service

import (
	"encoding/json"
	"errors"
	"testing"

	"clocksched"
)

// FuzzJobSpecDecode drives the exact decoder the submit handler uses with
// arbitrary bytes. Invariants: the decoder never panics, every rejection is
// a structured *APIError, and anything it accepts survives the rest of the
// admission pipeline (re-marshal, version check, validation, grid sizing)
// without panicking.
func FuzzJobSpecDecode(f *testing.F) {
	valid, err := json.Marshal(testSpec(2))
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(nil))
	f.Add([]byte(`{}`))
	f.Add(valid)
	f.Add([]byte(`{"sim_version":"clocksched-sim/0"}`))
	f.Add([]byte(`{"sim_version":"x","workloadz":["rect"]}`)) // unknown field
	f.Add([]byte(`{"sim_version":"x","duration":"2s","seeds":[1,2,3]}`))
	f.Add([]byte(`{"duration":-9223372036854775808,"seeds":[18446744073709551615]}`))
	f.Add([]byte(`{"cells":[{"workload":"mpeg","faults":{"sample_drop_prob":0.25}}]}`))
	f.Add([]byte(`{"axes":`))   // truncated
	f.Add([]byte("\xff\xfe{}")) // invalid UTF-8 prefix
	f.Add([]byte(`[1,2,3]`))    // wrong top-level type
	f.Add([]byte(`{"duration":{}}`))

	f.Fuzz(func(t *testing.T, b []byte) {
		spec, err := DecodeJobSpec(b)
		if err != nil {
			var apiErr *APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("unstructured decode error: %v", err)
			}
			if apiErr.Status != 400 {
				t.Fatalf("decode rejection with status %d: %v", apiErr.Status, err)
			}
			return
		}
		// Accepted specs must round-trip and must not panic anywhere on the
		// admission path.
		if _, err := json.Marshal(spec); err != nil {
			t.Fatalf("accepted spec does not re-marshal: %v", err)
		}
		cfg, err := spec.Config()
		if err != nil {
			if !errors.Is(err, clocksched.ErrVersionMismatch) {
				t.Fatalf("spec.Config: %v", err)
			}
			return
		}
		_ = cfg.Validate()
		_ = cfg.GridSize()
	})
}
