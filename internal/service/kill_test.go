package service

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"clocksched"
)

// killGrid is the grid the daemon crash test submits: small cells, enough
// of them that a SIGKILL always lands mid-job.
func killGrid() clocksched.SweepConfig {
	seeds := make([]uint64, 12)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return clocksched.SweepConfig{
		Workloads: []clocksched.Workload{clocksched.RectWave},
		Policies:  []clocksched.Policy{clocksched.PASTPegPeg()},
		Seeds:     seeds,
		Duration:  2 * time.Second,
	}
}

// TestServiceKillChild is the subprocess half of the daemon crash test: it
// serves a Server over a loopback listener, printing the bound address,
// until the parent SIGKILLs it. It skips unless the parent set the data-dir
// environment variable.
func TestServiceKillChild(t *testing.T) {
	dir := os.Getenv("CLOCKSCHED_SERVICE_CHILD_DIR")
	if dir == "" {
		t.Skip("subprocess helper; run via TestServiceKillAndResume")
	}
	s, err := New(Config{
		DataDir:       dir,
		Workers:       1,
		MaxActiveJobs: 1,
		// Real cells finish in milliseconds; the delay widens the window so
		// the parent's SIGKILL always lands between journal commits.
		CellDelay: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("addr %s\n", ln.Addr())
	// Serve until killed; by design this never returns cleanly.
	t.Fatal(http.Serve(ln, s))
}

// startChild re-execs the test binary as a sweepd-like daemon running the
// named child test with the given environment, and returns the base URL it
// bound.
func startChild(t *testing.T, testName string, env ...string) (*exec.Cmd, string) {
	t.Helper()
	child := exec.Command(os.Args[0], "-test.run="+testName+"$", "-test.v")
	child.Env = append(os.Environ(), env...)
	stdout, err := child.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	child.Stderr = os.Stderr
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "addr "); ok {
			// Keep draining stdout so the child never blocks on a full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return child, "http://" + addr
		}
	}
	t.Fatalf("child never printed its address: %v", child.Wait())
	return nil, ""
}

// TestServiceKillAndResume is the daemon durability acceptance test: a job
// is submitted over HTTP, the daemon is SIGKILLed mid-job — no drain, no
// cleanup — and a second daemon over the same data dir resumes the job to a
// result byte-identical to an uninterrupted local Sweep, replaying the
// committed cells instead of re-simulating them.
func TestServiceKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	ctx := context.Background()

	child, base := startChild(t, "TestServiceKillChild", "CLOCKSCHED_SERVICE_CHILD_DIR="+dir)
	c := &Client{Base: base}

	st, err := c.Submit(ctx, clocksched.NewSweepSpec(killGrid()))
	if err != nil {
		t.Fatal(err)
	}

	// Watch the event stream until three cells have committed — each
	// progress event is published only after the cell's journal record is
	// fsynced — then kill without warning.
	ectx, ecancel := context.WithTimeout(ctx, 60*time.Second)
	err = c.Events(ectx, st.ID, func(ev Event) error {
		if ev.Type == "progress" && ev.Done >= 3 {
			return errSeenEnough
		}
		return nil
	})
	ecancel()
	if err != errSeenEnough {
		t.Fatalf("waiting for progress: %v", err)
	}
	if err := child.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	err = child.Wait()
	if ws, ok := child.ProcessState.Sys().(syscall.WaitStatus); !ok || !ws.Signaled() {
		t.Fatalf("child did not die of the signal: err=%v state=%v", err, child.ProcessState)
	}

	// Second daemon, same data dir: the manifest re-queues the job and the
	// cell journal replays the committed cells.
	child2, base2 := startChild(t, "TestServiceKillChild", "CLOCKSCHED_SERVICE_CHILD_DIR="+dir)
	defer func() {
		child2.Process.Kill()
		child2.Wait()
	}()
	c2 := &Client{Base: base2}

	wctx, wcancel := context.WithTimeout(ctx, 120*time.Second)
	defer wcancel()
	final, err := c2.Wait(wctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Done != 12 {
		t.Fatalf("resumed job ended %+v", final)
	}
	if final.Replayed < 3 {
		t.Errorf("resumed job replayed %d cells, want >= 3", final.Replayed)
	}

	got, err := c2.ResultBytes(wctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := clocksched.Sweep(ctx, killGrid())
	if err != nil {
		t.Fatal(err)
	}
	want, err := clocksched.EncodeSweepResult(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-kill result (%d bytes) != uninterrupted local sweep (%d bytes)",
			len(got), len(want))
	}
}

// errSeenEnough is the sentinel the event watcher returns once the kill
// window is open.
var errSeenEnough = fmt.Errorf("seen enough progress")
