package service

import (
	"bytes"
	"context"
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"clocksched"
)

// waitSrvTerminal polls the in-process API until the job is terminal.
func waitSrvTerminal(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

// waitSrvState polls until the job reaches the wanted non-terminal state.
func waitSrvState(t *testing.T, s *Server, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.terminal() {
			t.Fatalf("job %s ended %s (err %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobStatus{}
}

// TestGCRetainResults pins count-based retention: with RetainResults=2 and
// four finished jobs, a pass deletes the two oldest — records, dirs, and
// table entries — compacts the manifest, and a rebooted daemon sees only
// the survivors and never re-issues a deleted job's id.
func TestGCRetainResults(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{DataDir: dir, Workers: 1, RetainResults: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		st, err := s.Submit(testSpec(1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
		waitSrvTerminal(t, s, st.ID)
	}

	st, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.JobsDeleted != 2 || st.BytesFreed <= 0 || !st.Compacted {
		t.Fatalf("gc stats %+v, want 2 jobs deleted, bytes freed, compacted", st)
	}

	for _, id := range ids[:2] {
		if _, err := s.Status(id); !isAPIError(err, 404, CodeNotFound) {
			t.Errorf("deleted job %s status: %v", id, err)
		}
		if _, err := os.Stat(s.jobDir(id)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("deleted job %s dir survives: %v", id, err)
		}
	}
	for _, id := range ids[2:] {
		if _, err := s.ResultBytes(id); err != nil {
			t.Errorf("retained job %s result: %v", id, err)
		}
	}

	// Reboot over the compacted manifest: survivors intact, deleted ids
	// never re-issued (the meta record pins the counter).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{DataDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	jobs := s2.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("rebooted daemon lists %d jobs, want 2", len(jobs))
	}
	for _, j := range jobs {
		if j.State != StateDone {
			t.Errorf("rebooted job %s in state %s", j.ID, j.State)
		}
		if _, err := s2.ResultBytes(j.ID); err != nil {
			t.Errorf("rebooted job %s result: %v", j.ID, err)
		}
	}
	fresh, err := s2.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range ids {
		if fresh.ID == old {
			t.Fatalf("rebooted daemon re-issued deleted id %s", old)
		}
	}
	waitSrvTerminal(t, s2, fresh.ID)
}

// TestGCMaxDataBytes pins byte-based retention: when the jobs/ footprint
// exceeds MaxDataBytes, oldest terminal jobs are deleted until it fits.
func TestGCMaxDataBytes(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{DataDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := s.Submit(testSpec(2))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
		waitSrvTerminal(t, s, st.ID)
	}
	perJob := dirSize(s.jobDir(ids[0]))
	if perJob <= 0 {
		t.Fatalf("job dir measured %d bytes", perJob)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A budget of ~2.5 jobs forces exactly the oldest one out.
	s2, err := New(Config{DataDir: dir, Workers: 1, MaxDataBytes: perJob*2 + perJob/2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st, err := s2.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.JobsDeleted != 1 {
		t.Fatalf("gc deleted %d jobs, want 1 (per-job %d bytes, stats %+v)", st.JobsDeleted, perJob, st)
	}
	if st.DataBytes > perJob*2+perJob/2 {
		t.Errorf("footprint %d still over the %d budget", st.DataBytes, perJob*2+perJob/2)
	}
	if _, err := s2.Status(ids[0]); !isAPIError(err, 404, CodeNotFound) {
		t.Errorf("oldest job survived the byte cap: %v", err)
	}
	for _, id := range ids[1:] {
		if _, err := s2.ResultBytes(id); err != nil {
			t.Errorf("retained job %s result: %v", id, err)
		}
	}
}

// TestGCNeverTouchesLiveJobs is the retention safety property: a pass run
// while jobs are queued, running, and preempted deletes only terminal work,
// and the surviving jobs complete byte-identical to a clean local sweep —
// GC can never cost accepted work.
func TestGCNeverTouchesLiveJobs(t *testing.T) {
	s, err := New(Config{
		DataDir: t.TempDir(), Workers: 1, MaxActiveJobs: 1,
		CellDelay: 20 * time.Millisecond, RetainResults: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Two finished jobs — GC fodder.
	var done []string
	for i := 0; i < 2; i++ {
		st, err := s.Submit(testSpec(1))
		if err != nil {
			t.Fatal(err)
		}
		done = append(done, st.ID)
		waitSrvTerminal(t, s, st.ID)
	}

	// A running batch job, a queued job, and an interactive job that
	// preempts the batch one — all three non-terminal states live at once.
	run, err := s.SubmitWith(testSpec(8), SubmitOptions{Priority: PriorityBatch})
	if err != nil {
		t.Fatal(err)
	}
	waitSrvState(t, s, run.ID, StateRunning)
	queued, err := s.SubmitWith(testSpec(4), SubmitOptions{Priority: PriorityBatch})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := s.SubmitWith(testSpec(4), SubmitOptions{Priority: PriorityInteractive})
	if err != nil {
		t.Fatal(err)
	}
	waitSrvState(t, s, run.ID, StatePreempted)

	st, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.JobsDeleted != 1 {
		t.Fatalf("gc deleted %d jobs, want only the oldest terminal one", st.JobsDeleted)
	}
	if _, err := s.Status(done[0]); !isAPIError(err, 404, CodeNotFound) {
		t.Errorf("oldest terminal job: %v", err)
	}
	for _, id := range []string{done[1], run.ID, queued.ID, inter.ID} {
		if _, err := s.Status(id); err != nil {
			t.Errorf("live or retained job %s deleted by gc: %v", id, err)
		}
	}

	// The preempted job resumes and every survivor completes; the preempted
	// one's result is byte-identical to an uninterrupted local sweep.
	for _, id := range []string{run.ID, queued.ID, inter.ID} {
		if fin := waitSrvTerminal(t, s, id); fin.State != StateDone {
			t.Fatalf("job %s ended %s: %s", id, fin.State, fin.Error)
		}
	}
	got, err := s.ResultBytes(run.ID)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := clocksched.Sweep(context.Background(), testGrid(8))
	if err != nil {
		t.Fatal(err)
	}
	want, err := clocksched.EncodeSweepResult(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("preempted+GC'd-around job result (%d bytes) != clean sweep (%d bytes)",
			len(got), len(want))
	}
}

// TestCompactionRaceSubmit races manifest compaction against job
// submission — the one writer-swap moment in the daemon — and then proves
// the manifest survived: accounting is coherent and a reboot recovers
// every retained job. Run under -race this also checks the locking.
func TestCompactionRaceSubmit(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{
		DataDir: dir, Workers: 2, MaxActiveJobs: 2,
		MaxQueue: 64, RetainResults: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 20
	var ids []string
	var idsMu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < jobs; i++ {
			st, err := s.Submit(testSpec(1))
			if err != nil {
				var apiErr *APIError
				if !errors.As(err, &apiErr) {
					t.Errorf("submit %d returned an unstructured error: %v", i, err)
				}
				continue
			}
			idsMu.Lock()
			ids = append(ids, st.ID)
			idsMu.Unlock()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < jobs; i++ {
			if _, err := s.GC(); err != nil {
				t.Errorf("gc pass %d: %v", i, err)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	// Drain the accepted jobs, then one final pass and a reboot.
	for _, id := range ids {
		if _, err := s.Status(id); isAPIError(err, 404, CodeNotFound) {
			continue // already reaped
		}
		waitSrvTerminal(t, s, id)
	}
	if _, err := s.GC(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{DataDir: dir, Workers: 1})
	if err != nil {
		t.Fatalf("reboot after compaction race: %v", err)
	}
	defer s2.Close()
	for _, j := range s2.Jobs() {
		fin := waitSrvTerminal(t, s2, j.ID)
		if fin.State == StateDone {
			if _, err := s2.ResultBytes(j.ID); err != nil {
				t.Errorf("recovered job %s result: %v", j.ID, err)
			}
		}
	}
}
