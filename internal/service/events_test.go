package service

import (
	"bufio"
	"context"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestEventsSurviveDaemonRestart pins the reconnect satellite: a client
// watching a job's event stream keeps one Events call alive across a full
// daemon restart — the dropped connection is redialed with Last-Event-ID
// and the call still ends on the job's terminal event, so Wait-style
// watchers never need to know the daemon bounced.
func TestEventsSurviveDaemonRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s1, err := New(Config{
		DataDir: dir, Workers: 1, MaxActiveJobs: 1,
		CellDelay: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hs1 := &http.Server{Handler: s1}
	go hs1.Serve(ln)

	c := &Client{Base: "http://" + addr}
	st, err := c.Submit(ctx, testSpec(12))
	if err != nil {
		t.Fatal(err)
	}

	var events atomic.Int32
	watch := make(chan error, 1)
	go func() {
		watch <- c.Events(ctx, st.ID, func(Event) error {
			events.Add(1)
			return nil
		})
	}()

	// Let a few cells commit, then bounce the daemon: connection torn, job
	// left non-terminal on disk.
	deadline := time.Now().Add(30 * time.Second)
	for {
		js, err := c.Status(ctx, st.ID)
		if err == nil && js.Done >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job made no progress before restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	before := events.Load()
	hs1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{
		DataDir: dir, Workers: 1, MaxActiveJobs: 1,
		CellDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hs2 := &http.Server{Handler: s2}
	go hs2.Serve(ln2)
	defer hs2.Close()

	select {
	case err := <-watch:
		if err != nil {
			t.Fatalf("Events did not survive the restart: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Events never ended after the restart")
	}
	if events.Load() <= before {
		t.Errorf("no events observed after the restart (before %d, after %d)", before, events.Load())
	}
	final, err := c.Status(ctx, st.ID)
	if err != nil || final.State != StateDone {
		t.Fatalf("job after restart: %+v, %v", final, err)
	}
	if final.Replayed < 2 {
		t.Errorf("restarted job replayed %d cells, want >= 2", final.Replayed)
	}
}

// readSSEEvent reads one Server-Sent Event off the stream, returning its id
// and event-type lines.
func readSSEEvent(t *testing.T, br *bufio.Reader) (id, typ string) {
	t.Helper()
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "id: "):
			id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			typ = strings.TrimPrefix(line, "event: ")
		case line == "" && typ != "":
			return id, typ
		}
	}
}

// openSSE opens one raw event-stream connection with the given
// Last-Event-ID (empty omits the header) and returns a reader over it.
func openSSE(t *testing.T, ctx context.Context, base, jobID, lastEventID string) (*bufio.Reader, func()) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		resp.Body.Close()
		t.Fatalf("events: %s", resp.Status)
	}
	return bufio.NewReader(resp.Body), func() { resp.Body.Close() }
}

// TestEventsStaleLastEventIDGetsSnapshot pins the epoch half of the SSE
// reconnect fix at the protocol level: only a Last-Event-ID carrying this
// boot's epoch can skip the connect-time snapshot. A bare sequence number —
// what a pre-epoch client from a previous daemon life would present, and
// exactly the form whose numeric coincidence with the fresh daemon's
// restarted sequence used to be mistaken for "caught up" — and a
// foreign-epoch id with the same sequence must both be answered with an
// immediate snapshot; the genuine current id must not re-receive the event
// it already has.
func TestEventsStaleLastEventIDGetsSnapshot(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, c := newTestServer(t, Config{
		Workers: 1, MaxActiveJobs: 1, CellDelay: 300 * time.Millisecond,
	})
	st, err := c.Submit(ctx, testSpec(20))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for real progress so the job's event sequence is past zero (a
	// zero sequence never counts as caught up, by design).
	for {
		js, err := c.Status(ctx, st.ID)
		if err == nil && js.Done >= 1 {
			break
		}
		if ctx.Err() != nil {
			t.Fatal("job made no progress")
		}
		time.Sleep(10 * time.Millisecond)
	}

	br, done := openSSE(t, ctx, c.Base, st.ID, "")
	heldID, typ := readSSEEvent(t, br)
	done()
	if typ != "state" {
		t.Fatalf("first event on a fresh connection is %q, want the state snapshot", typ)
	}
	epoch, seq, ok := strings.Cut(heldID, ".")
	if !ok || epoch == "" || seq == "" {
		t.Fatalf("SSE id %q is not epoch-qualified", heldID)
	}

	for _, stale := range []string{seq, "feedfacefeedface." + seq} {
		br, done := openSSE(t, ctx, c.Base, st.ID, stale)
		_, typ := readSSEEvent(t, br)
		done()
		if typ != "state" {
			t.Errorf("Last-Event-ID %q: first event is %q, want an immediate snapshot", stale, typ)
		}
	}

	br, done = openSSE(t, ctx, c.Base, st.ID, heldID)
	id, _ := readSSEEvent(t, br)
	done()
	if id == heldID {
		t.Errorf("current Last-Event-ID %q re-received its own event", heldID)
	}
}

// TestEventsResetAfterDataDirReset is the end-to-end regression for the
// satellite: a client's Events call rides across a daemon restart onto a
// FRESH data dir, where job ids and event sequence numbers both restart
// from scratch. The reconnect presents an id from the dead daemon's epoch;
// the server must treat it as stale and resync the client with a full
// snapshot of the new job now wearing the old job's id, and the watch must
// end on that new job's terminal event. The client counts running-state
// "state" events: one per daemon life proves the post-reset snapshot was
// sent rather than skipped on a sequence-number coincidence.
func TestEventsResetAfterDataDirReset(t *testing.T) {
	ctx := context.Background()

	s1, err := New(Config{
		DataDir: t.TempDir(), Workers: 1, MaxActiveJobs: 1,
		CellDelay: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hs1 := &http.Server{Handler: s1}
	go hs1.Serve(ln)

	c := &Client{Base: "http://" + addr}
	st, err := c.Submit(ctx, testSpec(12))
	if err != nil {
		t.Fatal(err)
	}

	var events, runningSnaps atomic.Int32
	watch := make(chan error, 1)
	go func() {
		watch <- c.Events(ctx, st.ID, func(ev Event) error {
			events.Add(1)
			if ev.Type == "state" && ev.State == StateRunning {
				runningSnaps.Add(1)
			}
			return nil
		})
	}()

	// Let the watcher see the job running, then tear the daemon down.
	deadline := time.Now().Add(30 * time.Second)
	for runningSnaps.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never saw the job running")
		}
		time.Sleep(10 * time.Millisecond)
	}
	hs1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// A new daemon on a FRESH data dir: the manifest is empty, so the first
	// submitted job takes the same id the dead daemon handed out. Submit it
	// in-process before serving HTTP, so the watcher's reconnect can never
	// race a 404.
	s2, err := New(Config{
		DataDir: t.TempDir(), Workers: 1, MaxActiveJobs: 1,
		CellDelay: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st2, err := s2.SubmitWith(testSpec(12), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID {
		t.Fatalf("fresh daemon assigned job id %q, want the reused %q", st2.ID, st.ID)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hs2 := &http.Server{Handler: s2}
	go hs2.Serve(ln2)
	defer hs2.Close()

	select {
	case err := <-watch:
		if err != nil {
			t.Fatalf("Events did not survive the data-dir reset: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Events never ended after the reset")
	}
	if runningSnaps.Load() < 2 {
		t.Errorf("watcher saw %d running-state events, want one per daemon life (snapshot after reset)",
			runningSnaps.Load())
	}
	final, err := c.Status(ctx, st.ID)
	if err != nil || final.State != StateDone {
		t.Fatalf("job after reset: %+v, %v", final, err)
	}
}
