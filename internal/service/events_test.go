package service

import (
	"context"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// TestEventsSurviveDaemonRestart pins the reconnect satellite: a client
// watching a job's event stream keeps one Events call alive across a full
// daemon restart — the dropped connection is redialed with Last-Event-ID
// and the call still ends on the job's terminal event, so Wait-style
// watchers never need to know the daemon bounced.
func TestEventsSurviveDaemonRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s1, err := New(Config{
		DataDir: dir, Workers: 1, MaxActiveJobs: 1,
		CellDelay: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hs1 := &http.Server{Handler: s1}
	go hs1.Serve(ln)

	c := &Client{Base: "http://" + addr}
	st, err := c.Submit(ctx, testSpec(12))
	if err != nil {
		t.Fatal(err)
	}

	var events atomic.Int32
	watch := make(chan error, 1)
	go func() {
		watch <- c.Events(ctx, st.ID, func(Event) error {
			events.Add(1)
			return nil
		})
	}()

	// Let a few cells commit, then bounce the daemon: connection torn, job
	// left non-terminal on disk.
	deadline := time.Now().Add(30 * time.Second)
	for {
		js, err := c.Status(ctx, st.ID)
		if err == nil && js.Done >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job made no progress before restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	before := events.Load()
	hs1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{
		DataDir: dir, Workers: 1, MaxActiveJobs: 1,
		CellDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hs2 := &http.Server{Handler: s2}
	go hs2.Serve(ln2)
	defer hs2.Close()

	select {
	case err := <-watch:
		if err != nil {
			t.Fatalf("Events did not survive the restart: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Events never ended after the restart")
	}
	if events.Load() <= before {
		t.Errorf("no events observed after the restart (before %d, after %d)", before, events.Load())
	}
	final, err := c.Status(ctx, st.ID)
	if err != nil || final.State != StateDone {
		t.Fatalf("job after restart: %+v, %v", final, err)
	}
	if final.Replayed < 2 {
		t.Errorf("restarted job replayed %d cells, want >= 2", final.Replayed)
	}
}
