// Package power models the Itsy's instantaneous power draw and provides an
// exact piecewise-constant recorder that the simulated DAQ samples.
//
// The model is behavioural: its coefficients are calibrated against the
// component structure the paper reports rather than against SA-1100 data
// sheets. Three measured facts anchor it:
//
//  1. Whole-system average power running MPEG at 206.4 MHz/1.5 V is about
//     1.43 W (Table 2: ≈86 J over 60 s).
//  2. Dropping the core supply from 1.5 V to 1.23 V reduces the power
//     consumed by the processor by about 15% (Section 2.3), which showed up
//     as an ≈8% whole-system energy reduction at 132.7 MHz (Table 2) —
//     implying the processor rail accounts for roughly half the system
//     power and that only part of it scales with V².
//  3. Power varies non-linearly with clock frequency because memory timing
//     is fixed in wall-clock terms (Section 6); frequency dependence is
//     carried by the cycle model in package cpu, so here power is linear in
//     F for a given activity.
//
// The processor-rail active power is therefore modelled as
//
//	P_core(F, V) = (a·V² + b) · F
//
// with a and b solved from anchors (1) and (2): P(206.4 MHz, 1.5 V) = 1.0 W
// and P(206.4 MHz, 1.23 V) = 0.85 W.
package power

import (
	"fmt"

	"clocksched/internal/cpu"
)

// Mode describes what the processor is doing, which selects the core-rail
// power term.
type Mode int

const (
	// ModeNap: the idle process is running and the integrated power
	// manager has stalled the pipeline until the next interrupt. The
	// clock tree and DRAM interface stay powered.
	ModeNap Mode = iota
	// ModeActive: a process is executing instructions.
	ModeActive
	// ModeStall: the PLL is relocking after a clock change. No
	// instructions execute, but the core draws active-level power.
	ModeStall
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeNap:
		return "nap"
	case ModeActive:
		return "active"
	case ModeStall:
		return "stall"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// State is everything the power model needs to produce instantaneous watts.
type State struct {
	Step cpu.Step
	V    cpu.Voltage
	Mode Mode
}

// Model converts a State into watts.
type Model struct {
	// CoeffA and CoeffB define the processor-rail active power
	// (a·V² + b)·F, in W/(V²·Hz) and W/Hz.
	CoeffA float64
	CoeffB float64
	// NapRatio is nap-mode core power as a fraction of active power at
	// the same step and voltage (clock tree and DRAM interface keep
	// running; the pipeline is gated).
	NapRatio float64
	// PeriphWatts is the constant draw of the 3.3 V peripheral rail:
	// display, touchscreen, audio codec, serial, and regulators.
	PeriphWatts float64
	// DVSVolts, when non-nil, models an ideal dynamic-voltage-scaling
	// processor: each clock step runs at its own minimal stable core
	// voltage (indexed by step) instead of the Itsy's two fixed levels.
	// This is the hardware the paper's Section 2.1 looks forward to
	// (StrongARM SA-2 class), used by the ideal-DVS projection
	// experiment; the Itsy itself is modelled with DVSVolts nil.
	DVSVolts []float64
}

// Reference anchors used by DefaultModel; exported so tests and docs can
// assert the calibration.
const (
	// AnchorCoreActiveMax is the modelled processor-rail power at
	// 206.4 MHz and 1.5 V.
	AnchorCoreActiveMax = 1.00 // watts
	// AnchorVoltageSaving is the fractional processor-power reduction
	// measured when dropping the core supply to 1.23 V (Section 2.3).
	AnchorVoltageSaving = 0.15
)

// DefaultModel returns the calibrated Itsy model with the full device
// profile (display, touchscreen and audio active), matching the workload
// measurement setup.
func DefaultModel() Model {
	fMax := float64(cpu.MaxStep.KHz()) * 1000 // Hz
	vHi := cpu.VHigh.Volts()
	vLo := cpu.VLow.Volts()
	// Solve (a·vHi² + b)·fMax = anchor and (a·vLo² + b)·fMax = (1-s)·anchor.
	aF := AnchorCoreActiveMax * AnchorVoltageSaving / (vHi*vHi - vLo*vLo)
	bF := AnchorCoreActiveMax - aF*vHi*vHi
	return Model{
		CoeffA:      aF / fMax,
		CoeffB:      bF / fMax,
		NapRatio:    0.12,
		PeriphWatts: 0.70,
	}
}

// IdleProfileModel returns the model with peripherals at the minimal idle
// profile (display on, audio path quiescent) used by the battery-lifetime
// observation in Section 2.1.
func IdleProfileModel() Model {
	m := DefaultModel()
	m.PeriphWatts = 0.08
	return m
}

// IdealDVSModel returns the calibrated model with an idealized
// voltage-scaling core: the supply tracks the minimum stable level for each
// step, falling linearly from 1.5 V at 206.4 MHz to 0.8 V at 59 MHz. Energy
// per cycle then shrinks quadratically at low clocks — the regime in which
// "voltage scheduling" (Pering's term) pays off.
func IdealDVSModel() Model {
	m := DefaultModel()
	volts := make([]float64, cpu.NumSteps)
	fMin := float64(cpu.MinStep.KHz())
	fMax := float64(cpu.MaxStep.KHz())
	for s := cpu.MinStep; s <= cpu.MaxStep; s++ {
		frac := (float64(s.KHz()) - fMin) / (fMax - fMin)
		volts[s] = 0.8 + frac*(1.5-0.8)
	}
	m.DVSVolts = volts
	return m
}

// volts resolves the effective core voltage for a state.
func (m Model) volts(s cpu.Step, v cpu.Voltage) float64 {
	if m.DVSVolts != nil && s.Valid() {
		return m.DVSVolts[s]
	}
	return v.Volts()
}

// CoreActive returns the processor-rail power when executing at step s with
// voltage v (ignored when the model is an ideal DVS core).
func (m Model) CoreActive(s cpu.Step, v cpu.Voltage) float64 {
	f := float64(s.KHz()) * 1000
	volts := m.volts(s, v)
	return (m.CoeffA*volts*volts + m.CoeffB) * f
}

// CoreNap returns the processor-rail power in nap mode.
func (m Model) CoreNap(s cpu.Step, v cpu.Voltage) float64 {
	return m.NapRatio * m.CoreActive(s, v)
}

// Power returns the instantaneous whole-system power for st, in watts.
func (m Model) Power(st State) float64 {
	var core float64
	switch st.Mode {
	case ModeNap:
		core = m.CoreNap(st.Step, st.V)
	default: // active and stall draw active-level power
		core = m.CoreActive(st.Step, st.V)
	}
	return core + m.PeriphWatts
}
