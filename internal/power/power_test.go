package power

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"clocksched/internal/cpu"
	"clocksched/internal/sim"
)

func TestDefaultModelAnchors(t *testing.T) {
	m := DefaultModel()
	// Anchor 1: processor rail at 206.4 MHz / 1.5 V is 1.0 W.
	if got := m.CoreActive(cpu.MaxStep, cpu.VHigh); math.Abs(got-AnchorCoreActiveMax) > 1e-9 {
		t.Errorf("CoreActive(max, 1.5V) = %v, want %v", got, AnchorCoreActiveMax)
	}
	// Anchor 2: dropping to 1.23 V saves 15% of processor power.
	hi := m.CoreActive(cpu.MaxStep, cpu.VHigh)
	lo := m.CoreActive(cpu.MaxStep, cpu.VLow)
	if saving := (hi - lo) / hi; math.Abs(saving-AnchorVoltageSaving) > 1e-9 {
		t.Errorf("voltage saving = %v, want %v", saving, AnchorVoltageSaving)
	}
}

func TestCoreActiveLinearInFrequency(t *testing.T) {
	m := DefaultModel()
	p59 := m.CoreActive(cpu.MinStep, cpu.VHigh)
	pMax := m.CoreActive(cpu.MaxStep, cpu.VHigh)
	wantRatio := float64(cpu.MinStep.KHz()) / float64(cpu.MaxStep.KHz())
	if got := p59 / pMax; math.Abs(got-wantRatio) > 1e-9 {
		t.Errorf("power ratio = %v, want frequency ratio %v", got, wantRatio)
	}
}

func TestNapPower(t *testing.T) {
	m := DefaultModel()
	active := m.CoreActive(cpu.MaxStep, cpu.VHigh)
	nap := m.CoreNap(cpu.MaxStep, cpu.VHigh)
	if math.Abs(nap-m.NapRatio*active) > 1e-12 {
		t.Errorf("nap = %v, want %v", nap, m.NapRatio*active)
	}
	if nap >= active {
		t.Error("nap power not below active power")
	}
}

func TestPowerByMode(t *testing.T) {
	m := DefaultModel()
	st := State{Step: cpu.MaxStep, V: cpu.VHigh}

	st.Mode = ModeActive
	active := m.Power(st)
	st.Mode = ModeStall
	stall := m.Power(st)
	st.Mode = ModeNap
	nap := m.Power(st)

	if stall != active {
		t.Errorf("stall power %v != active power %v", stall, active)
	}
	if nap >= active {
		t.Errorf("nap power %v not below active %v", nap, active)
	}
	if nap <= m.PeriphWatts {
		t.Errorf("nap system power %v should exceed the peripheral floor %v",
			nap, m.PeriphWatts)
	}
}

func TestIdleProfileModel(t *testing.T) {
	full := DefaultModel()
	idle := IdleProfileModel()
	if idle.PeriphWatts >= full.PeriphWatts {
		t.Error("idle profile should draw less peripheral power")
	}
	if idle.CoeffA != full.CoeffA || idle.CoeffB != full.CoeffB {
		t.Error("idle profile should not change core coefficients")
	}
}

func TestModeString(t *testing.T) {
	if ModeNap.String() != "nap" || ModeActive.String() != "active" || ModeStall.String() != "stall" {
		t.Error("mode names wrong")
	}
	if Mode(42).String() != "Mode(42)" {
		t.Errorf("unknown mode = %q", Mode(42).String())
	}
}

func activeState() State {
	return State{Step: cpu.MaxStep, V: cpu.VHigh, Mode: ModeActive}
}

func TestRecorderEnergyExact(t *testing.T) {
	m := DefaultModel()
	r := NewRecorder(m, activeState())
	napSt := State{Step: cpu.MaxStep, V: cpu.VHigh, Mode: ModeNap}
	// 1 s active, 1 s nap.
	r.SetState(sim.Second, napSt)
	r.Finish(2 * sim.Second)

	activeW := m.Power(activeState())
	napW := m.Power(napSt)

	e, err := r.Energy(0, 2*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := activeW + napW
	if math.Abs(e-want) > 1e-9 {
		t.Errorf("energy = %v, want %v", e, want)
	}

	// Sub-ranges.
	e, _ = r.Energy(0, sim.Second)
	if math.Abs(e-activeW) > 1e-9 {
		t.Errorf("first-second energy = %v, want %v", e, activeW)
	}
	e, _ = r.Energy(500*sim.Millisecond, 1500*sim.Millisecond)
	if math.Abs(e-(activeW+napW)/2) > 1e-9 {
		t.Errorf("straddling energy = %v, want %v", e, (activeW+napW)/2)
	}
}

func TestRecorderEnergyAdditive(t *testing.T) {
	m := DefaultModel()
	r := NewRecorder(m, activeState())
	st := activeState()
	for i := 1; i <= 9; i++ {
		st.Mode = Mode(i % 2) // alternate nap/active
		st.Step = cpu.Step(i % cpu.NumSteps)
		r.SetState(sim.Time(i)*100*sim.Millisecond, st)
	}
	r.Finish(sim.Second)
	whole, err := r.Energy(0, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	split := 0.0
	for i := sim.Time(0); i < 10; i++ {
		e, err := r.Energy(i*100*sim.Millisecond, (i+1)*100*sim.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		split += e
	}
	if math.Abs(whole-split) > 1e-9 {
		t.Errorf("energy not additive: whole %v vs split %v", whole, split)
	}
}

func TestRecorderPowerAt(t *testing.T) {
	m := DefaultModel()
	r := NewRecorder(m, activeState())
	napSt := State{Step: cpu.MinStep, V: cpu.VHigh, Mode: ModeNap}
	r.SetState(100, napSt)
	r.Finish(200)

	p, err := r.PowerAt(50)
	if err != nil || p != m.Power(activeState()) {
		t.Errorf("PowerAt(50) = %v, %v", p, err)
	}
	p, _ = r.PowerAt(100) // boundary belongs to the new state
	if p != m.Power(napSt) {
		t.Errorf("PowerAt(100) = %v, want nap power", p)
	}
	p, _ = r.PowerAt(200)
	if p != m.Power(napSt) {
		t.Errorf("PowerAt(end) = %v, want nap power", p)
	}
	if _, err := r.PowerAt(201); !errors.Is(err, ErrRange) {
		t.Error("PowerAt beyond end did not return ErrRange")
	}
	if _, err := r.PowerAt(-1); !errors.Is(err, ErrRange) {
		t.Error("PowerAt(-1) did not return ErrRange")
	}
}

func TestRecorderCollapsesNoChange(t *testing.T) {
	r := NewRecorder(DefaultModel(), activeState())
	r.SetState(100, activeState())
	r.SetState(200, activeState())
	if len(r.Points()) != 1 {
		t.Errorf("recorder kept %d points for a constant timeline, want 1", len(r.Points()))
	}
}

func TestRecorderSameInstantRevision(t *testing.T) {
	m := DefaultModel()
	r := NewRecorder(m, activeState())
	napSt := State{Step: cpu.MaxStep, V: cpu.VHigh, Mode: ModeNap}
	stallSt := State{Step: cpu.MinStep, V: cpu.VHigh, Mode: ModeStall}
	r.SetState(100, napSt)
	r.SetState(100, stallSt) // same instant: later write wins
	r.Finish(200)
	p, _ := r.PowerAt(150)
	if p != m.Power(stallSt) {
		t.Errorf("PowerAt after same-instant revision = %v, want stall power", p)
	}
	// Revising back to the original value must collapse the point.
	r2 := NewRecorder(m, activeState())
	r2.SetState(100, napSt)
	r2.SetState(100, activeState())
	if len(r2.Points()) != 1 {
		t.Errorf("same-instant revert kept %d points, want 1", len(r2.Points()))
	}
}

func TestRecorderMisuseErrors(t *testing.T) {
	t.Run("out of order", func(t *testing.T) {
		r := NewRecorder(DefaultModel(), activeState())
		if err := r.SetState(100, State{Mode: ModeNap, V: cpu.VHigh}); err != nil {
			t.Fatal(err)
		}
		if err := r.SetState(50, activeState()); !errors.Is(err, ErrOrder) {
			t.Errorf("out-of-order SetState err = %v, want ErrOrder", err)
		}
	})
	t.Run("after finish", func(t *testing.T) {
		r := NewRecorder(DefaultModel(), activeState())
		if err := r.Finish(100); err != nil {
			t.Fatal(err)
		}
		if err := r.SetState(150, activeState()); !errors.Is(err, ErrClosed) {
			t.Errorf("SetState after Finish err = %v, want ErrClosed", err)
		}
	})
	t.Run("finish before last", func(t *testing.T) {
		r := NewRecorder(DefaultModel(), activeState())
		if err := r.SetState(100, State{Mode: ModeNap, V: cpu.VHigh}); err != nil {
			t.Fatal(err)
		}
		if err := r.Finish(50); !errors.Is(err, ErrOrder) {
			t.Errorf("early Finish err = %v, want ErrOrder", err)
		}
	})
}

func TestRecorderEnergyRangeErrors(t *testing.T) {
	r := NewRecorder(DefaultModel(), activeState())
	r.Finish(100)
	for _, c := range []struct{ from, to sim.Time }{
		{-1, 50}, {0, 101}, {60, 40},
	} {
		if _, err := r.Energy(c.from, c.to); !errors.Is(err, ErrRange) {
			t.Errorf("Energy(%d,%d) err = %v, want ErrRange", c.from, c.to, err)
		}
	}
	if _, err := r.AveragePower(50, 50); !errors.Is(err, ErrRange) {
		t.Error("AveragePower over empty span did not return ErrRange")
	}
}

func TestRecorderAveragePower(t *testing.T) {
	m := DefaultModel()
	r := NewRecorder(m, activeState())
	r.Finish(10 * sim.Second)
	avg, err := r.AveragePower(0, 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg-m.Power(activeState())) > 1e-9 {
		t.Errorf("average = %v, want constant %v", avg, m.Power(activeState()))
	}
}

// Property: energy over any split point equals the sum of the parts.
func TestRecorderAdditivityProperty(t *testing.T) {
	f := func(changes []uint16, split uint16) bool {
		m := DefaultModel()
		r := NewRecorder(m, activeState())
		now := sim.Time(0)
		st := activeState()
		for i, c := range changes {
			now += sim.Time(c%1000) + 1
			st.Mode = Mode(i % 2)
			st.Step = cpu.Step(i % cpu.NumSteps)
			r.SetState(now, st)
		}
		end := now + 1000
		r.Finish(end)
		mid := sim.Time(split) % (end + 1)
		whole, err1 := r.Energy(0, end)
		a, err2 := r.Energy(0, mid)
		b, err3 := r.Energy(mid, end)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return math.Abs(whole-(a+b)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIdealDVSModelVoltages(t *testing.T) {
	m := IdealDVSModel()
	if len(m.DVSVolts) != cpu.NumSteps {
		t.Fatalf("%d voltages", len(m.DVSVolts))
	}
	if math.Abs(m.DVSVolts[cpu.MinStep]-0.8) > 1e-12 {
		t.Errorf("59MHz voltage = %v, want 0.8", m.DVSVolts[cpu.MinStep])
	}
	if math.Abs(m.DVSVolts[cpu.MaxStep]-1.5) > 1e-12 {
		t.Errorf("206.4MHz voltage = %v, want 1.5", m.DVSVolts[cpu.MaxStep])
	}
	for s := cpu.MinStep + 1; s <= cpu.MaxStep; s++ {
		if m.DVSVolts[s] <= m.DVSVolts[s-1] {
			t.Errorf("voltage not increasing at %v", s)
		}
	}
}

func TestIdealDVSEnergyPerCycleFalls(t *testing.T) {
	// On the fixed-voltage Itsy, active power per Hz is constant; on the
	// DVS core it falls with frequency, so energy per cycle shrinks.
	itsy := DefaultModel()
	dvs := IdealDVSModel()
	perCycle := func(m Model, s cpu.Step) float64 {
		return m.CoreActive(s, cpu.VHigh) / (float64(s.KHz()) * 1000)
	}
	// Itsy: identical per-cycle energy at every step.
	if math.Abs(perCycle(itsy, cpu.MinStep)-perCycle(itsy, cpu.MaxStep)) > 1e-15 {
		t.Error("fixed-voltage per-cycle energy is not constant")
	}
	// DVS: strictly decreasing per-cycle energy at lower steps.
	for s := cpu.MinStep; s < cpu.MaxStep; s++ {
		if perCycle(dvs, s) >= perCycle(dvs, s+1) {
			t.Errorf("DVS per-cycle energy not decreasing at %v", s)
		}
	}
	// At the top step the two models agree (both 1.5 V).
	if math.Abs(perCycle(dvs, cpu.MaxStep)-perCycle(itsy, cpu.MaxStep)) > 1e-15 {
		t.Error("models disagree at the top step")
	}
}

func TestDVSModelIgnoresVoltageEnum(t *testing.T) {
	m := IdealDVSModel()
	hi := m.CoreActive(cpu.Step(5), cpu.VHigh)
	lo := m.CoreActive(cpu.Step(5), cpu.VLow)
	if hi != lo {
		t.Error("DVS model should override the discrete voltage enum")
	}
}

// Property: active power is strictly increasing in clock step for both
// models at fixed voltage.
func TestPowerMonotoneInStepProperty(t *testing.T) {
	for _, m := range []Model{DefaultModel(), IdealDVSModel()} {
		for s := cpu.MinStep; s < cpu.MaxStep; s++ {
			if m.CoreActive(s, cpu.VHigh) >= m.CoreActive(s+1, cpu.VHigh) {
				t.Errorf("power not increasing at %v", s)
			}
		}
	}
}
