package power

import (
	"errors"
	"fmt"
	"sort"

	"clocksched/internal/sim"
)

// TimePoint is one change-point in a piecewise-constant power timeline: the
// system drew Watts from At until the next point.
type TimePoint struct {
	At    sim.Time
	Watts float64
}

// Recorder accumulates the exact piecewise-constant power timeline of a run.
// The kernel reports every state change; energy integrals over the recorded
// span are then exact, and the simulated DAQ samples the same timeline at
// 5 kHz the way the real instrument sampled the shunt resistor.
type Recorder struct {
	model  Model
	points []TimePoint
	last   sim.Time // latest time seen; timeline is valid up to here
	closed bool
}

// NewRecorder creates a recorder that starts at time 0 in the given state.
func NewRecorder(m Model, initial State) *Recorder {
	r := &Recorder{model: m}
	r.points = append(r.points, TimePoint{At: 0, Watts: m.Power(initial)})
	return r
}

// Model returns the power model in use.
func (r *Recorder) Model() Model { return r.model }

// ErrClosed is returned for state changes after Finish.
var ErrClosed = errors.New("power: state change after Finish")

// ErrOrder is returned for state changes that move backwards in time.
var ErrOrder = errors.New("power: state change out of time order")

// SetState records that the system entered st at time now. Calls must be in
// nondecreasing time order; an out-of-order call returns ErrOrder, since
// the kernel driving the recorder is single-threaded virtual time and
// regression means its event schedule is inconsistent.
func (r *Recorder) SetState(now sim.Time, st State) error {
	return r.setWatts(now, r.model.Power(st))
}

// SetWatts records a raw power level, for experiments that bypass the model
// (e.g. injecting a measured trace).
func (r *Recorder) SetWatts(now sim.Time, w float64) error { return r.setWatts(now, w) }

func (r *Recorder) setWatts(now sim.Time, w float64) error {
	if r.closed {
		return fmt.Errorf("%w: at %v", ErrClosed, now)
	}
	if now < r.last {
		return fmt.Errorf("%w: %v after %v", ErrOrder, now, r.last)
	}
	r.last = now
	last := &r.points[len(r.points)-1]
	if last.Watts == w {
		return nil // no change; keep the timeline minimal
	}
	if last.At == now {
		// Same-instant revision (e.g. step change and mode change in one
		// event): the later write wins.
		last.Watts = w
		// Collapse if this made it equal to its predecessor.
		if n := len(r.points); n >= 2 && r.points[n-2].Watts == w {
			r.points = r.points[:n-1]
		}
		return nil
	}
	r.points = append(r.points, TimePoint{At: now, Watts: w})
	return nil
}

// Grow ensures capacity for at least n further change-points, so a caller
// that can estimate a run's timeline density (the kernel: a few changes per
// quantum) avoids the append-doubling churn of a long run.
func (r *Recorder) Grow(n int) {
	if free := cap(r.points) - len(r.points); free < n {
		pts := make([]TimePoint, len(r.points), len(r.points)+n)
		copy(pts, r.points)
		r.points = pts
	}
}

// Finish marks the timeline complete at time end. Further SetState calls
// return ErrClosed. Energy and PowerAt remain usable up to end.
func (r *Recorder) Finish(end sim.Time) error {
	if end < r.last {
		return fmt.Errorf("%w: finish at %v before last change at %v", ErrOrder, end, r.last)
	}
	r.last = end
	r.closed = true
	return nil
}

// End returns the latest time covered by the timeline.
func (r *Recorder) End() sim.Time { return r.last }

// Points returns the recorded change-points. The slice is the recorder's
// own; callers must not modify it.
func (r *Recorder) Points() []TimePoint { return r.points }

// ErrRange is returned for queries outside the recorded timeline.
var ErrRange = errors.New("power: query outside recorded timeline")

// PowerAt returns the instantaneous power at time t.
func (r *Recorder) PowerAt(t sim.Time) (float64, error) {
	if t < 0 || t > r.last {
		return 0, ErrRange
	}
	// Binary search for the last point with At <= t.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].At > t })
	return r.points[i-1].Watts, nil
}

// Energy integrates power over [from, to] exactly, returning joules.
func (r *Recorder) Energy(from, to sim.Time) (float64, error) {
	if from < 0 || to > r.last || from > to {
		return 0, ErrRange
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].At > from }) - 1
	total := 0.0
	for t := from; t < to; {
		segEnd := to
		if i+1 < len(r.points) && r.points[i+1].At < to {
			segEnd = r.points[i+1].At
		}
		total += r.points[i].Watts * (segEnd - t).Seconds()
		t = segEnd
		i++
	}
	return total, nil
}

// AveragePower returns the mean power over [from, to] in watts.
func (r *Recorder) AveragePower(from, to sim.Time) (float64, error) {
	if to <= from {
		return 0, ErrRange
	}
	e, err := r.Energy(from, to)
	if err != nil {
		return 0, err
	}
	return e / (to - from).Seconds(), nil
}
