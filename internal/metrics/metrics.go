// Package metrics collects the quality-of-service measures the paper judges
// schedulers by: whether application deadlines were met ("we consider an
// event to have occurred on time if delaying its completion did not
// adversely affect the user"), how late misses were, and how unstable the
// clock setting was.
package metrics

import (
	"fmt"
	"strings"

	"clocksched/internal/sim"
)

// Deadline is one timing obligation an application reported: work that was
// due at Due and actually completed at Done.
type Deadline struct {
	Name string
	Due  sim.Time
	Done sim.Time
}

// Late returns how far past its due time the work completed (≤ 0 if on
// time).
func (d Deadline) Late() sim.Duration { return d.Done - d.Due }

// Collector accumulates deadlines and derived statistics. The zero value is
// ready to use.
type Collector struct {
	deadlines []Deadline
	// OnRecord, when set, observes each deadline as it is recorded. The
	// run harness uses it to feed the watchdog's miss detector without
	// policies importing this package.
	OnRecord func(Deadline)
}

// Record notes one completed obligation.
func (c *Collector) Record(name string, due, done sim.Time) {
	d := Deadline{Name: name, Due: due, Done: done}
	c.deadlines = append(c.deadlines, d)
	if c.OnRecord != nil {
		c.OnRecord(d)
	}
}

// Deadlines returns everything recorded.
func (c *Collector) Deadlines() []Deadline { return c.deadlines }

// Count returns the number of recorded deadlines.
func (c *Collector) Count() int { return len(c.deadlines) }

// Misses returns the obligations that completed more than slack after their
// due time. The paper's inelastic-constraint assumption corresponds to a
// small perceptual slack.
func (c *Collector) Misses(slack sim.Duration) []Deadline {
	var out []Deadline
	for _, d := range c.deadlines {
		if d.Late() > slack {
			out = append(out, d)
		}
	}
	return out
}

// MissCount returns len(Misses(slack)).
func (c *Collector) MissCount(slack sim.Duration) int { return len(c.Misses(slack)) }

// MaxLateness returns the largest lateness observed (zero if everything was
// early or nothing was recorded).
func (c *Collector) MaxLateness() sim.Duration {
	return c.MaxLatenessFor("")
}

// MaxLatenessFor returns the largest lateness among deadlines whose name
// starts with prefix (all deadlines for the empty prefix). Zero if nothing
// matched or everything was early.
func (c *Collector) MaxLatenessFor(prefix string) sim.Duration {
	var max sim.Duration
	for _, d := range c.deadlines {
		if !strings.HasPrefix(d.Name, prefix) {
			continue
		}
		if l := d.Late(); l > max {
			max = l
		}
	}
	return max
}

// Desync returns the difference between the worst lateness of two deadline
// streams — the paper's audio/video synchronization measure: when the video
// stream runs late while the audio stream stays on schedule, the clip is
// audibly out of sync.
func (c *Collector) Desync(prefixA, prefixB string) sim.Duration {
	a := c.MaxLatenessFor(prefixA)
	b := c.MaxLatenessFor(prefixB)
	if a > b {
		return a - b
	}
	return b - a
}

// MissRate returns the fraction of deadlines missed by more than slack.
func (c *Collector) MissRate(slack sim.Duration) float64 {
	if len(c.deadlines) == 0 {
		return 0
	}
	return float64(c.MissCount(slack)) / float64(len(c.deadlines))
}

// Summary formats the collector for reports.
func (c *Collector) Summary(slack sim.Duration) string {
	return fmt.Sprintf("%d deadlines, %d missed (slack %v), max lateness %v",
		c.Count(), c.MissCount(slack), slack, c.MaxLateness())
}
