package metrics

import (
	"strings"
	"testing"

	"clocksched/internal/sim"
)

func TestDeadlineLate(t *testing.T) {
	d := Deadline{Due: 100, Done: 130}
	if d.Late() != 30 {
		t.Errorf("Late = %v", d.Late())
	}
	early := Deadline{Due: 100, Done: 80}
	if early.Late() != -20 {
		t.Errorf("early Late = %v", early.Late())
	}
}

func TestCollectorZeroValue(t *testing.T) {
	var c Collector
	if c.Count() != 0 || c.MissCount(0) != 0 || c.MaxLateness() != 0 || c.MissRate(0) != 0 {
		t.Error("zero-value collector not empty")
	}
}

func TestCollectorMisses(t *testing.T) {
	var c Collector
	c.Record("frame-1", 100, 90)  // early
	c.Record("frame-2", 200, 205) // 5 late
	c.Record("frame-3", 300, 350) // 50 late
	if c.Count() != 3 {
		t.Fatalf("Count = %d", c.Count())
	}
	if got := c.MissCount(0); got != 2 {
		t.Errorf("MissCount(0) = %d, want 2", got)
	}
	if got := c.MissCount(10); got != 1 {
		t.Errorf("MissCount(10) = %d, want 1", got)
	}
	if got := c.MissCount(100); got != 0 {
		t.Errorf("MissCount(100) = %d, want 0", got)
	}
	if got := c.MaxLateness(); got != 50 {
		t.Errorf("MaxLateness = %v, want 50", got)
	}
	if got := c.MissRate(0); got != 2.0/3 {
		t.Errorf("MissRate = %v", got)
	}
	misses := c.Misses(0)
	if len(misses) != 2 || misses[0].Name != "frame-2" {
		t.Errorf("Misses = %+v", misses)
	}
	if len(c.Deadlines()) != 3 {
		t.Error("Deadlines() incomplete")
	}
}

func TestCollectorSummary(t *testing.T) {
	var c Collector
	c.Record("x", 100, 200)
	s := c.Summary(sim.Millisecond)
	if !strings.Contains(s, "1 deadlines") || !strings.Contains(s, "0 missed") {
		t.Errorf("Summary = %q", s)
	}
	s = c.Summary(0)
	if !strings.Contains(s, "1 missed") {
		t.Errorf("Summary = %q", s)
	}
}

func TestMaxLatenessFor(t *testing.T) {
	var c Collector
	c.Record("frame-1", 100, 150) // 50 late
	c.Record("frame-2", 200, 210) // 10 late
	c.Record("audio-1", 100, 105) // 5 late
	if got := c.MaxLatenessFor("frame"); got != 50 {
		t.Errorf("MaxLatenessFor(frame) = %v, want 50", got)
	}
	if got := c.MaxLatenessFor("audio"); got != 5 {
		t.Errorf("MaxLatenessFor(audio) = %v, want 5", got)
	}
	if got := c.MaxLatenessFor(""); got != 50 {
		t.Errorf("MaxLatenessFor(all) = %v, want 50", got)
	}
	if got := c.MaxLatenessFor("nothing"); got != 0 {
		t.Errorf("MaxLatenessFor(miss) = %v, want 0", got)
	}
}

func TestDesync(t *testing.T) {
	var c Collector
	c.Record("frame-1", 100, 180) // 80 late
	c.Record("audio-1", 100, 110) // 10 late
	if got := c.Desync("frame", "audio"); got != 70 {
		t.Errorf("Desync = %v, want 70", got)
	}
	// Symmetric.
	if got := c.Desync("audio", "frame"); got != 70 {
		t.Errorf("Desync reversed = %v, want 70", got)
	}
	var empty Collector
	if empty.Desync("a", "b") != 0 {
		t.Error("empty collector desync nonzero")
	}
}
