package plot

import (
	"encoding/xml"
	"strings"
	"testing"
)

func chart() Chart {
	return Chart{
		Title:  "Figure 9: utilization vs clock",
		XLabel: "MHz",
		YLabel: "utilization (%)",
		Lines: []Line{{
			Name: "mpeg",
			Points: []Point{
				{59, 100}, {132.7, 92}, {162.2, 75.5}, {176.9, 76}, {206.4, 70},
			},
		}},
	}
}

func TestSVGWellFormed(t *testing.T) {
	out, err := SVG(chart())
	if err != nil {
		t.Fatal(err)
	}
	// Must be parseable XML end to end.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	for _, want := range []string{"<svg", "polyline", "Figure 9", "utilization"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestSVGMultipleLinesGetLegend(t *testing.T) {
	c := chart()
	c.Lines = append(c.Lines, Line{Name: "web", Points: []Point{{59, 10}, {206.4, 20}}})
	out, err := SVG(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, ">mpeg</text>") || !strings.Contains(out, ">web</text>") {
		t.Error("legend entries missing for multi-line chart")
	}
	// Distinct stroke colors.
	if !strings.Contains(out, strokes[0]) || !strings.Contains(out, strokes[1]) {
		t.Error("distinct colors missing")
	}
}

func TestSVGSingleLineNoLegend(t *testing.T) {
	out, _ := SVG(chart())
	if strings.Contains(out, ">mpeg</text>") {
		t.Error("single-line chart should not draw a legend")
	}
}

func TestSVGErrors(t *testing.T) {
	if _, err := SVG(Chart{}); err == nil {
		t.Error("empty chart accepted")
	}
	c := chart()
	c.Lines[0].Points = nil
	if _, err := SVG(c); err == nil {
		t.Error("empty line accepted")
	}
	c = chart()
	c.Width, c.Height = 10, 10
	if _, err := SVG(c); err == nil {
		t.Error("tiny dimensions accepted")
	}
	c = chart()
	c.YMin, c.YMax = 10, 10 // empty fixed range is not distinguishable from unset 0,0? use inverted
	c.YMin, c.YMax = 10, 5
	if _, err := SVG(c); err == nil {
		t.Error("inverted y range accepted")
	}
}

func TestSVGFixedRangeClamps(t *testing.T) {
	c := chart()
	c.YMin, c.YMax = 0, 50 // data exceeds the range; points must clamp
	out, err := SVG(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "polyline") {
		t.Error("no polyline with fixed range")
	}
}

func TestSVGConstantSeries(t *testing.T) {
	c := Chart{Title: "flat", Lines: []Line{{
		Name:   "flat",
		Points: []Point{{0, 5}, {1, 5}, {2, 5}},
	}}}
	if _, err := SVG(c); err != nil {
		t.Fatalf("constant series failed: %v", err)
	}
}

func TestSVGEscapesMarkup(t *testing.T) {
	c := chart()
	c.Title = `<script>&"attack"</script>`
	out, err := SVG(c)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "<script>") {
		t.Error("markup not escaped")
	}
	if !strings.Contains(out, "&lt;script&gt;") {
		t.Error("escaped title missing")
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.5:     "0.5",
		1500:    "1.5e+03",
		15000:   "15k",
		2500000: "2.5M",
		-15000:  "-15k",
	}
	for in, want := range cases {
		if got := formatTick(in); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", in, got, want)
		}
	}
}
