// Package plot renders experiment series as standalone SVG line charts
// using only the standard library, so the regenerated figures can actually
// be looked at next to the paper's. The output is deliberately spartan —
// axes, ticks, one polyline per series — in the spirit of the original
// gnuplot figures.
package plot

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Line is one named curve.
type Line struct {
	Name   string
	Points []Point
}

// Chart describes a figure to render.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Lines  []Line
	// Width and Height are the SVG dimensions in pixels; zero selects
	// 640×400.
	Width, Height int
	// YMin/YMax fix the vertical range; when both are zero the range is
	// fitted to the data with 5% headroom.
	YMin, YMax float64
}

// Palette for successive lines (color-blind-safe-ish hues).
var strokes = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e"}

const (
	marginLeft   = 60
	marginRight  = 15
	marginTop    = 30
	marginBottom = 45
	ticks        = 5
)

// SVG renders the chart.
func SVG(c Chart) (string, error) {
	if len(c.Lines) == 0 {
		return "", errors.New("plot: no lines")
	}
	for _, l := range c.Lines {
		if len(l.Points) == 0 {
			return "", fmt.Errorf("plot: line %q has no points", l.Name)
		}
	}
	w, h := c.Width, c.Height
	if w == 0 {
		w = 640
	}
	if h == 0 {
		h = 400
	}
	if w < marginLeft+marginRight+50 || h < marginTop+marginBottom+50 {
		return "", fmt.Errorf("plot: dimensions %dx%d too small", w, h)
	}

	// Data ranges.
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, l := range c.Lines {
		for _, p := range l.Points {
			xMin = math.Min(xMin, p.X)
			xMax = math.Max(xMax, p.X)
			yMin = math.Min(yMin, p.Y)
			yMax = math.Max(yMax, p.Y)
		}
	}
	if c.YMin != 0 || c.YMax != 0 {
		yMin, yMax = c.YMin, c.YMax
	} else {
		pad := (yMax - yMin) * 0.05
		if pad == 0 {
			pad = math.Abs(yMax)*0.05 + 0.001
		}
		yMin -= pad
		yMax += pad
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax <= yMin {
		return "", fmt.Errorf("plot: empty y range [%v, %v]", yMin, yMax)
	}

	plotW := float64(w - marginLeft - marginRight)
	plotH := float64(h - marginTop - marginBottom)
	px := func(x float64) float64 { return marginLeft + (x-xMin)/(xMax-xMin)*plotW }
	py := func(y float64) float64 { return marginTop + (1-(y-yMin)/(yMax-yMin))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="18" font-family="sans-serif" font-size="14" text-anchor="middle">%s</text>`+"\n",
		w/2, escape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<g stroke="black" stroke-width="1">`+"\n")
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d"/>`+"\n",
		marginLeft, h-marginBottom, w-marginRight, h-marginBottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d"/>`+"\n",
		marginLeft, marginTop, marginLeft, h-marginBottom)
	b.WriteString("</g>\n")

	// Ticks and grid.
	b.WriteString(`<g font-family="sans-serif" font-size="10" fill="black">` + "\n")
	for i := 0; i <= ticks; i++ {
		fx := xMin + (xMax-xMin)*float64(i)/ticks
		fy := yMin + (yMax-yMin)*float64(i)/ticks
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			px(fx), h-marginBottom+15, formatTick(fx))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, py(fy)+3, formatTick(fy))
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#dddddd"/>`+"\n",
			px(fx), marginTop, px(fx), h-marginBottom)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
			marginLeft, py(fy), w-marginRight, py(fy))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" font-size="11">%s</text>`+"\n",
		w/2, h-8, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%d" text-anchor="middle" font-size="11" transform="rotate(-90 14 %d)">%s</text>`+"\n",
		h/2, h/2, escape(c.YLabel))
	b.WriteString("</g>\n")

	// Curves.
	for i, l := range c.Lines {
		color := strokes[i%len(strokes)]
		var pts strings.Builder
		for _, p := range l.Points {
			fmt.Fprintf(&pts, "%.1f,%.1f ", px(p.X), py(clamp(p.Y, yMin, yMax)))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`+"\n",
			color, strings.TrimSpace(pts.String()))
		if len(c.Lines) > 1 {
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" fill="%s">%s</text>`+"\n",
				w-marginRight-150, marginTop+14*(i+1), color, escape(l.Name))
		}
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.3gk", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
