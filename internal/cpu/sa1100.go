// Package cpu models the StrongARM SA-1100 processor as used in the Itsy
// pocket computer: its eleven discrete clock steps, its two core-supply
// voltages, the measured cost of changing either, and the frequency-dependent
// cost of memory accesses (Table 3 of the paper).
//
// The package is a pure model — tables and arithmetic with no simulation
// state — so that the kernel and experiment layers can own all mutable state.
package cpu

import "fmt"

// Step indexes one of the SA-1100's discrete clock settings, 0 (slowest,
// 59.0 MHz) through NumSteps-1 (fastest, 206.4 MHz). The paper's speed-setting
// policies (one, double, peg) navigate this index.
type Step int

// NumSteps is the number of discrete clock settings ("clock steps") the
// SA-1100 supports.
const NumSteps = 11

// freqKHz lists the SA-1100 core clock for each step, in kHz. Kilohertz keeps
// all burst-duration arithmetic integral: kHz/1000 is exactly cycles per
// microsecond.
var freqKHz = [NumSteps]int64{
	59000, 73700, 88500, 103200, 118000,
	132700, 147500, 162200, 176900, 191700, 206400,
}

// Table 3 of the paper: the number of processor cycles needed for a single
// memory-word reference and for a full cache-line fill at each clock step.
// EDO DRAM timing is fixed in wall-clock terms, so a faster core burns more
// cycles per access; the jump between 162.2 and 176.9 MHz is what produces
// the utilization plateau of Figure 9.
var (
	memCycles   = [NumSteps]int64{11, 11, 11, 11, 13, 14, 14, 15, 18, 19, 20}
	cacheCycles = [NumSteps]int64{39, 39, 39, 39, 41, 42, 49, 50, 60, 61, 69}
)

// Transition costs measured in Section 5.4 of the paper.
const (
	// ClockChangeStall is how long the processor cannot execute
	// instructions while the PLL relocks after a clock-step change,
	// independent of the starting or target speed.
	ClockChangeStall = 200 // microseconds

	// VoltageSettleDown is how long the core supply takes to settle after
	// being lowered from 1.5 V to 1.23 V (decoupling capacitance drains
	// slowly). The processor keeps executing; power decays over this span.
	VoltageSettleDown = 250 // microseconds

	// VoltageSettleUp is the settle time for raising the voltage, which the
	// paper found to be effectively instantaneous.
	VoltageSettleUp = 0
)

// MinStep and MaxStep are the slowest and fastest clock steps.
const (
	MinStep Step = 0
	MaxStep Step = NumSteps - 1
)

// Valid reports whether s is a legal clock step.
func (s Step) Valid() bool { return s >= MinStep && s <= MaxStep }

// KHz returns the clock frequency of step s in kHz. It panics on an invalid
// step: a step outside the table is a programming error, not an input error.
func (s Step) KHz() int64 {
	if !s.Valid() {
		panic(fmt.Sprintf("cpu: invalid step %d", int(s)))
	}
	return freqKHz[s]
}

// MHz returns the clock frequency of step s in MHz.
func (s Step) MHz() float64 { return float64(s.KHz()) / 1000 }

// MemCycles returns the cycles consumed by one memory-word reference at s
// (Table 3).
func (s Step) MemCycles() int64 {
	if !s.Valid() {
		panic(fmt.Sprintf("cpu: invalid step %d", int(s)))
	}
	return memCycles[s]
}

// CacheLineCycles returns the cycles consumed by one full cache-line fill at
// s (Table 3).
func (s Step) CacheLineCycles() int64 {
	if !s.Valid() {
		panic(fmt.Sprintf("cpu: invalid step %d", int(s)))
	}
	return cacheCycles[s]
}

// String formats the step as its frequency, e.g. "206.4MHz".
func (s Step) String() string {
	if !s.Valid() {
		return fmt.Sprintf("Step(%d)", int(s))
	}
	return fmt.Sprintf("%.1fMHz", s.MHz())
}

// Clamp returns s limited to the valid range.
func (s Step) Clamp() Step {
	if s < MinStep {
		return MinStep
	}
	if s > MaxStep {
		return MaxStep
	}
	return s
}

// StepForKHz returns the slowest step whose frequency is at least khz, or
// MaxStep if no step is fast enough. It is the "minimum speed that meets the
// demand" selection primitive.
func StepForKHz(khz int64) Step {
	for s := MinStep; s <= MaxStep; s++ {
		if freqKHz[s] >= khz {
			return s
		}
	}
	return MaxStep
}

// NearestStep returns the step whose frequency is closest to khz.
func NearestStep(khz int64) Step {
	best := MinStep
	bestDiff := int64(-1)
	for s := MinStep; s <= MaxStep; s++ {
		d := freqKHz[s] - khz
		if d < 0 {
			d = -d
		}
		if bestDiff < 0 || d < bestDiff {
			best, bestDiff = s, d
		}
	}
	return best
}

// Voltage is a core-supply setting. The Itsy v1.5 units in the study were
// modified to run the core at either 1.5 V (the manufacturer specification)
// or 1.23 V (below specification but safe at moderate clock speeds).
type Voltage int

const (
	// VHigh is the specified 1.5 V core supply, required at the fastest
	// clock steps.
	VHigh Voltage = iota
	// VLow is the out-of-spec 1.23 V supply, usable only at moderate
	// speeds; the paper enables it below 162.2 MHz.
	VLow
)

// Volts returns the supply level in volts.
func (v Voltage) Volts() float64 {
	if v == VLow {
		return 1.23
	}
	return 1.5
}

// String formats the voltage, e.g. "1.5V".
func (v Voltage) String() string {
	if v == VLow {
		return "1.23V"
	}
	return "1.5V"
}

// MaxLowVoltageStep is the fastest step at which the 1.23 V supply is safe.
// The paper's voltage-scaling configuration drops the voltage only when the
// clock falls below 162.2 MHz, i.e. at 147.5 MHz and slower.
const MaxLowVoltageStep Step = 6 // 147.5 MHz

// VoltageOK reports whether voltage v is safe at step s.
func VoltageOK(s Step, v Voltage) bool {
	return v == VHigh || s <= MaxLowVoltageStep
}
