package cpu

import (
	"fmt"

	"clocksched/internal/sim"
)

// Burst is a unit of computational work expressed in architectural terms:
// core-bound cycles plus explicit memory traffic. Because memory-word and
// cache-line accesses cost more cycles at higher clock steps (Table 3), the
// wall-clock duration of a Burst does not scale linearly with frequency —
// this is the mechanism behind the paper's Figure 9 plateau and the
// "non-linear relationship between power and clock speed" noted by Martin.
type Burst struct {
	Core  int64 // cycles that hit in cache and scale perfectly with frequency
	Mem   int64 // individual memory-word references
	Cache int64 // full cache-line fills
}

// Zero reports whether the burst contains no work.
func (b Burst) Zero() bool { return b.Core == 0 && b.Mem == 0 && b.Cache == 0 }

// Cycles returns the total processor cycles the burst consumes at step s.
func (b Burst) Cycles(s Step) int64 {
	return b.Core + b.Mem*s.MemCycles() + b.Cache*s.CacheLineCycles()
}

// Duration returns the wall-clock time the burst takes at step s, rounded up
// to the next microsecond. A non-empty burst always takes at least 1 µs.
func (b Burst) Duration(s Step) sim.Duration {
	c := b.Cycles(s)
	if c <= 0 {
		return 0
	}
	khz := s.KHz()
	// cycles per microsecond = kHz / 1000, so µs = cycles*1000/kHz.
	return sim.Duration((c*1000 + khz - 1) / khz)
}

// Scale returns the burst with every component multiplied by f (rounded to
// nearest). Negative results clamp to zero.
func (b Burst) Scale(f float64) Burst {
	scale := func(v int64) int64 {
		x := float64(v)*f + 0.5
		if x < 0 {
			return 0
		}
		return int64(x)
	}
	return Burst{Core: scale(b.Core), Mem: scale(b.Mem), Cache: scale(b.Cache)}
}

// Add returns the component-wise sum of two bursts.
func (b Burst) Add(o Burst) Burst {
	return Burst{Core: b.Core + o.Core, Mem: b.Mem + o.Mem, Cache: b.Cache + o.Cache}
}

// String describes the burst compactly.
func (b Burst) String() string {
	return fmt.Sprintf("burst{core=%d mem=%d cache=%d}", b.Core, b.Mem, b.Cache)
}

// BurstForDuration constructs a purely core-bound burst that takes
// approximately d at step s. Workload generators use it to express "about
// 1 ms of work at full speed".
func BurstForDuration(d sim.Duration, s Step) Burst {
	if d <= 0 {
		return Burst{}
	}
	return Burst{Core: int64(d) * s.KHz() / 1000}
}

// Execution tracks the progress of one burst across preemptions and clock
// changes. The instruction mix is assumed uniform across the burst, so a
// fraction f of elapsed progress retires a fraction f of each component.
type Execution struct {
	burst     Burst
	remaining float64 // fraction of the burst still to run, in [0,1]
}

// NewExecution starts executing b from the beginning.
func NewExecution(b Burst) *Execution {
	e := StartExecution(b)
	return &e
}

// StartExecution returns an Execution running b from the beginning, by
// value, so callers owning the storage (the kernel's process table) can
// start a burst without a per-action heap allocation.
func StartExecution(b Burst) Execution {
	return Execution{burst: b, remaining: 1}
}

// Done reports whether the burst has fully retired.
func (e *Execution) Done() bool { return e.remaining <= 0 || e.burst.Zero() }

// Remaining returns the fraction of the burst still to run.
func (e *Execution) Remaining() float64 {
	if e.remaining < 0 {
		return 0
	}
	return e.remaining
}

// Burst returns the burst being executed.
func (e *Execution) Burst() Burst { return e.burst }

// TimeToFinish returns how long the rest of the burst takes at step s,
// rounded up to a whole microsecond (minimum 1 µs if any work remains).
func (e *Execution) TimeToFinish(s Step) sim.Duration {
	if e.Done() {
		return 0
	}
	full := e.burst.Duration(s)
	d := sim.Duration(float64(full)*e.remaining + 0.999999)
	if d < 1 {
		d = 1
	}
	return d
}

// Advance runs the burst for d microseconds at step s and reports whether it
// finished. Advancing a finished execution is a no-op that reports true.
func (e *Execution) Advance(d sim.Duration, s Step) bool {
	if e.Done() {
		return true
	}
	full := e.burst.Duration(s)
	if full <= 0 {
		e.remaining = 0
		return true
	}
	e.remaining -= float64(d) / float64(full)
	// Guard against accumulated floating-point residue: if less than a
	// microsecond of work remains, call it done.
	if e.remaining*float64(full) < 1 {
		e.remaining = 0
	}
	return e.Done()
}
