package cpu

import (
	"testing"
	"testing/quick"

	"clocksched/internal/sim"
)

func TestBurstCycles(t *testing.T) {
	b := Burst{Core: 1000, Mem: 10, Cache: 2}
	// At 206.4 MHz: 1000 + 10*20 + 2*69 = 1338 cycles.
	if got := b.Cycles(MaxStep); got != 1338 {
		t.Errorf("Cycles(max) = %d, want 1338", got)
	}
	// At 59 MHz: 1000 + 10*11 + 2*39 = 1188 cycles.
	if got := b.Cycles(MinStep); got != 1188 {
		t.Errorf("Cycles(min) = %d, want 1188", got)
	}
}

func TestBurstDurationRoundsUp(t *testing.T) {
	// 59 cycles at 59 MHz is exactly 1 µs; 60 cycles must round to 2 µs.
	if got := (Burst{Core: 59}).Duration(MinStep); got != 1 {
		t.Errorf("59 cycles at 59MHz = %v, want 1µs", got)
	}
	if got := (Burst{Core: 60}).Duration(MinStep); got != 2 {
		t.Errorf("60 cycles at 59MHz = %v, want 2µs", got)
	}
	if got := (Burst{}).Duration(MinStep); got != 0 {
		t.Errorf("empty burst duration = %v, want 0", got)
	}
}

func TestBurstSublinearSpeedup(t *testing.T) {
	// A memory-heavy burst speeds up less than the frequency ratio —
	// the Figure 9 effect.
	b := Burst{Core: 4_000_000, Mem: 143_000, Cache: 40_000}
	slow := b.Duration(Step(5))                                  // 132.7 MHz
	fast := b.Duration(MaxStep)                                  // 206.4 MHz
	freqRatio := float64(MaxStep.KHz()) / float64(Step(5).KHz()) // 1.555
	timeRatio := float64(slow) / float64(fast)
	if timeRatio >= freqRatio {
		t.Fatalf("time ratio %.3f not sublinear vs freq ratio %.3f", timeRatio, freqRatio)
	}
	if timeRatio < 1.05 {
		t.Fatalf("time ratio %.3f suspiciously flat", timeRatio)
	}
}

func TestBurstPlateau(t *testing.T) {
	// Between 162.2 and 176.9 MHz the memory-cost jump can make a
	// memory-bound burst take *longer* per unit of frequency gained:
	// busy time barely improves.
	b := Burst{Core: 4_000_000, Mem: 143_000, Cache: 40_000}
	d7 := b.Duration(Step(7)) // 162.2 MHz
	d8 := b.Duration(Step(8)) // 176.9 MHz
	improvement := float64(d7-d8) / float64(d7)
	if improvement > 0.02 {
		t.Fatalf("162.2→176.9 MHz improved duration by %.1f%%, want ≈0 (plateau)",
			improvement*100)
	}
}

func TestBurstScale(t *testing.T) {
	b := Burst{Core: 100, Mem: 10, Cache: 4}
	half := b.Scale(0.5)
	if half != (Burst{Core: 50, Mem: 5, Cache: 2}) {
		t.Errorf("Scale(0.5) = %v", half)
	}
	if z := b.Scale(-1); !z.Zero() {
		t.Errorf("Scale(-1) = %v, want zero", z)
	}
	if b.Scale(1) != b {
		t.Errorf("Scale(1) changed the burst")
	}
}

func TestBurstAdd(t *testing.T) {
	a := Burst{Core: 1, Mem: 2, Cache: 3}
	b := Burst{Core: 10, Mem: 20, Cache: 30}
	if got := a.Add(b); got != (Burst{Core: 11, Mem: 22, Cache: 33}) {
		t.Errorf("Add = %v", got)
	}
}

func TestBurstForDuration(t *testing.T) {
	b := BurstForDuration(1000, MaxStep) // 1 ms at 206.4 MHz
	if b.Core != 206400 {
		t.Errorf("Core = %d, want 206400", b.Core)
	}
	if got := b.Duration(MaxStep); got != 1000 {
		t.Errorf("round trip duration = %v, want 1000", got)
	}
	if !BurstForDuration(-5, MaxStep).Zero() {
		t.Error("negative duration should give zero burst")
	}
}

func TestExecutionLifecycle(t *testing.T) {
	b := Burst{Core: 206400 * 10} // 10 ms at max step
	e := NewExecution(b)
	if e.Done() {
		t.Fatal("fresh execution reports Done")
	}
	if got := e.TimeToFinish(MaxStep); got != 10000 {
		t.Fatalf("TimeToFinish = %v, want 10000", got)
	}
	if e.Advance(4000, MaxStep) {
		t.Fatal("Advance(4ms) of a 10ms burst reported finished")
	}
	if got := e.TimeToFinish(MaxStep); got < 5999 || got > 6001 {
		t.Fatalf("after 4ms, TimeToFinish = %v, want ≈6000", got)
	}
	if !e.Advance(6001, MaxStep) {
		t.Fatal("burst not finished after full duration")
	}
	if !e.Done() {
		t.Fatal("Done() false after completion")
	}
	if e.TimeToFinish(MaxStep) != 0 {
		t.Fatal("finished execution still reports time to finish")
	}
	if !e.Advance(100, MaxStep) {
		t.Fatal("advancing a finished execution should report true")
	}
}

func TestExecutionAcrossSpeedChange(t *testing.T) {
	// Run half the burst at max speed, the rest at min: remaining work
	// converts consistently.
	b := Burst{Core: 206400 * 10} // 10 ms at max, 34.98 ms at 59 MHz
	e := NewExecution(b)
	e.Advance(5000, MaxStep) // half done
	slowFull := b.Duration(MinStep)
	want := sim.Duration(float64(slowFull) * 0.5)
	got := e.TimeToFinish(MinStep)
	if got < want-2 || got > want+2 {
		t.Fatalf("TimeToFinish at 59MHz after half at 206MHz = %v, want ≈%v", got, want)
	}
}

func TestExecutionZeroBurst(t *testing.T) {
	e := NewExecution(Burst{})
	if !e.Done() {
		t.Fatal("zero burst not immediately done")
	}
	if e.TimeToFinish(MaxStep) != 0 {
		t.Fatal("zero burst has nonzero time to finish")
	}
}

func TestExecutionResidueCollapses(t *testing.T) {
	// Advancing in many small unequal slices must terminate exactly, not
	// leave an un-finishable sliver.
	b := Burst{Core: 206400} // 1 ms at max step
	e := NewExecution(b)
	steps := 0
	for !e.Done() {
		e.Advance(7, MaxStep)
		steps++
		if steps > 1000 {
			t.Fatal("execution never finished: floating-point sliver")
		}
	}
}

func TestExecutionProperty(t *testing.T) {
	// Property: total time spent advancing to completion at a fixed step
	// is within one slice of the burst's duration at that step.
	f := func(core uint32, stepRaw uint8, slice uint16) bool {
		s := Step(int(stepRaw) % NumSteps)
		b := Burst{Core: int64(core%50_000_000) + 1}
		sl := sim.Duration(slice%5000) + 1
		e := NewExecution(b)
		var total sim.Duration
		for !e.Done() {
			e.Advance(sl, s)
			total += sl
		}
		want := b.Duration(s)
		return total >= want-sl && total <= want+sl+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBurstString(t *testing.T) {
	got := Burst{Core: 1, Mem: 2, Cache: 3}.String()
	if got != "burst{core=1 mem=2 cache=3}" {
		t.Errorf("String() = %q", got)
	}
}
