package cpu

import (
	"testing"
	"testing/quick"
)

func TestStepFrequencies(t *testing.T) {
	// Endpoints and a middle value straight from the paper.
	if got := MinStep.KHz(); got != 59000 {
		t.Errorf("MinStep = %d kHz, want 59000", got)
	}
	if got := MaxStep.KHz(); got != 206400 {
		t.Errorf("MaxStep = %d kHz, want 206400", got)
	}
	if got := Step(5).KHz(); got != 132700 {
		t.Errorf("Step(5) = %d kHz, want 132700 (the MPEG sweet spot)", got)
	}
}

func TestStepsStrictlyIncreasing(t *testing.T) {
	for s := MinStep + 1; s <= MaxStep; s++ {
		if s.KHz() <= (s - 1).KHz() {
			t.Errorf("step %v not faster than %v", s, s-1)
		}
	}
}

func TestTable3Monotone(t *testing.T) {
	// Memory costs in cycles never decrease as the clock speeds up.
	for s := MinStep + 1; s <= MaxStep; s++ {
		if s.MemCycles() < (s - 1).MemCycles() {
			t.Errorf("mem cycles decreased at %v", s)
		}
		if s.CacheLineCycles() < (s - 1).CacheLineCycles() {
			t.Errorf("cache cycles decreased at %v", s)
		}
	}
}

func TestTable3PlateauJump(t *testing.T) {
	// The paper singles out the jump between 162.2 MHz (step 7) and
	// 176.9 MHz (step 8): 15→18 cycles/word and 50→60 cycles/line.
	if Step(7).MemCycles() != 15 || Step(8).MemCycles() != 18 {
		t.Errorf("mem cycles at steps 7,8 = %d,%d, want 15,18",
			Step(7).MemCycles(), Step(8).MemCycles())
	}
	if Step(7).CacheLineCycles() != 50 || Step(8).CacheLineCycles() != 60 {
		t.Errorf("cache cycles at steps 7,8 = %d,%d, want 50,60",
			Step(7).CacheLineCycles(), Step(8).CacheLineCycles())
	}
}

func TestStepValidAndClamp(t *testing.T) {
	if Step(-1).Valid() || Step(NumSteps).Valid() {
		t.Error("out-of-range steps report Valid")
	}
	if got := Step(-3).Clamp(); got != MinStep {
		t.Errorf("Clamp(-3) = %v", got)
	}
	if got := Step(99).Clamp(); got != MaxStep {
		t.Errorf("Clamp(99) = %v", got)
	}
	if got := Step(4).Clamp(); got != Step(4) {
		t.Errorf("Clamp(4) = %v", got)
	}
}

func TestStepPanicsOnInvalid(t *testing.T) {
	for _, fn := range []func(){
		func() { Step(-1).KHz() },
		func() { Step(NumSteps).MemCycles() },
		func() { Step(-2).CacheLineCycles() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid step access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestStepString(t *testing.T) {
	if got := MaxStep.String(); got != "206.4MHz" {
		t.Errorf("MaxStep.String() = %q", got)
	}
	if got := MinStep.String(); got != "59.0MHz" {
		t.Errorf("MinStep.String() = %q", got)
	}
	if got := Step(-1).String(); got != "Step(-1)" {
		t.Errorf("invalid String() = %q", got)
	}
}

func TestStepForKHz(t *testing.T) {
	cases := []struct {
		khz  int64
		want Step
	}{
		{0, MinStep},
		{59000, MinStep},
		{59001, Step(1)},
		{132700, Step(5)},
		{200000, MaxStep},
		{206400, MaxStep},
		{999999, MaxStep}, // demand beyond the hardware pegs at max
	}
	for _, c := range cases {
		if got := StepForKHz(c.khz); got != c.want {
			t.Errorf("StepForKHz(%d) = %v, want %v", c.khz, got, c.want)
		}
	}
}

func TestNearestStep(t *testing.T) {
	cases := []struct {
		khz  int64
		want Step
	}{
		{0, MinStep},
		{59000, MinStep},
		{67000, Step(1)}, // closer to 73.7 than 59.0
		{132000, Step(5)},
		{1 << 40, MaxStep},
	}
	for _, c := range cases {
		if got := NearestStep(c.khz); got != c.want {
			t.Errorf("NearestStep(%d) = %v, want %v", c.khz, got, c.want)
		}
	}
}

func TestNearestStepProperty(t *testing.T) {
	// NearestStep really is nearest: no other step is strictly closer.
	f := func(khz uint32) bool {
		target := int64(khz)
		got := NearestStep(target)
		diff := func(s Step) int64 {
			d := s.KHz() - target
			if d < 0 {
				d = -d
			}
			return d
		}
		for s := MinStep; s <= MaxStep; s++ {
			if diff(s) < diff(got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVoltage(t *testing.T) {
	if VHigh.Volts() != 1.5 || VLow.Volts() != 1.23 {
		t.Errorf("volts = %v, %v", VHigh.Volts(), VLow.Volts())
	}
	if VHigh.String() != "1.5V" || VLow.String() != "1.23V" {
		t.Errorf("strings = %q, %q", VHigh.String(), VLow.String())
	}
}

func TestVoltageOK(t *testing.T) {
	// 1.23 V is allowed only below 162.2 MHz.
	if !VoltageOK(Step(6), VLow) { // 147.5 MHz
		t.Error("1.23V at 147.5MHz should be allowed")
	}
	if VoltageOK(Step(7), VLow) { // 162.2 MHz
		t.Error("1.23V at 162.2MHz should be rejected")
	}
	for s := MinStep; s <= MaxStep; s++ {
		if !VoltageOK(s, VHigh) {
			t.Errorf("1.5V rejected at %v", s)
		}
	}
}

func TestTransitionConstants(t *testing.T) {
	// Section 5.4: ~200 µs clock stall, ~250 µs down-settle, instant rise;
	// both under 2% of the 10 ms scheduling interval.
	if ClockChangeStall != 200 || VoltageSettleDown != 250 || VoltageSettleUp != 0 {
		t.Fatalf("transition constants = %d, %d, %d",
			ClockChangeStall, VoltageSettleDown, VoltageSettleUp)
	}
	if ClockChangeStall*100 > 10000*2 {
		t.Error("clock stall exceeds 2% of a quantum")
	}
}
