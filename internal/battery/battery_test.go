package battery

import (
	"math"
	"testing"

	"clocksched/internal/sim"
)

func TestNewPeukertValidation(t *testing.T) {
	cases := []struct {
		volts, k, amps float64
		life           sim.Duration
	}{
		{0, 1.2, 0.1, sim.Second},
		{3, 0.9, 0.1, sim.Second}, // exponent below 1
		{3, 1.2, 0, sim.Second},
		{3, 1.2, 0.1, 0},
	}
	for _, c := range cases {
		if _, err := NewPeukert(c.volts, c.k, c.amps, c.life); err == nil {
			t.Errorf("NewPeukert(%v,%v,%v,%v) accepted bad input", c.volts, c.k, c.amps, c.life)
		}
	}
}

func TestPeukertIdealCell(t *testing.T) {
	// k=1: lifetime scales exactly inversely with load.
	p, err := NewPeukert(3.0, 1.0, 0.1, 10*3600*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := p.Lifetime(0.3) // 0.1 A
	if err != nil {
		t.Fatal(err)
	}
	l2, _ := p.Lifetime(0.6) // 0.2 A
	if math.Abs(float64(l1)/float64(l2)-2.0) > 1e-9 {
		t.Errorf("ideal cell lifetime ratio = %v, want 2", float64(l1)/float64(l2))
	}
}

func TestPeukertRateCapacity(t *testing.T) {
	// k>1: doubling the load more than halves the lifetime.
	p, err := NewPeukert(3.0, 1.5, 0.1, 10*3600*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	l1, _ := p.Lifetime(0.3)
	l2, _ := p.Lifetime(0.6)
	ratio := float64(l1) / float64(l2)
	want := math.Pow(2, 1.5)
	if math.Abs(ratio-want) > 1e-6 {
		t.Errorf("lifetime ratio = %v, want %v", ratio, want)
	}
	// Effective capacity shrinks with current.
	c1, _ := p.EffectiveCapacityAh(0.1)
	c2, _ := p.EffectiveCapacityAh(0.2)
	if c2 >= c1 {
		t.Errorf("capacity did not shrink with load: %v → %v", c1, c2)
	}
}

func TestPeukertReferencePointRoundTrip(t *testing.T) {
	ref := 18 * 3600 * sim.Second
	p, err := NewPeukert(3.0, 1.7, 0.04, ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Lifetime(0.04 * 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got-ref)) > float64(sim.Second) {
		t.Errorf("lifetime at reference load = %v, want %v", got, ref)
	}
}

func TestFitPeukertItsyObservation(t *testing.T) {
	// Section 2.1: ~2 h at the 206 MHz idle draw, ~18 h at the 59 MHz idle
	// draw. The fitted model must pass through both points exactly.
	p206, p59 := 0.20, 0.114 // watts, from the idle power profile
	fit, err := FitPeukert(3.0, p206, 2*3600*sim.Second, p59, 18*3600*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	l206, _ := fit.Lifetime(p206)
	l59, _ := fit.Lifetime(p59)
	if math.Abs(l206.Seconds()-2*3600) > 1 {
		t.Errorf("lifetime at 206MHz idle = %v, want 2h", l206)
	}
	if math.Abs(l59.Seconds()-18*3600) > 1 {
		t.Errorf("lifetime at 59MHz idle = %v, want 18h", l59)
	}
	// The paper's framing: 9× battery life for a 3.5× speed reduction.
	if ratio := l59.Seconds() / l206.Seconds(); math.Abs(ratio-9) > 0.01 {
		t.Errorf("lifetime ratio = %v, want 9", ratio)
	}
}

func TestFitPeukertErrors(t *testing.T) {
	h := 3600 * sim.Second
	if _, err := FitPeukert(3.0, 0.2, 2*h, 0.2, 18*h); err == nil {
		t.Error("equal powers accepted")
	}
	if _, err := FitPeukert(3.0, 0, 2*h, 0.1, 18*h); err == nil {
		t.Error("zero power accepted")
	}
	// Inverted points (more power, longer life) imply k<1 → reject.
	if _, err := FitPeukert(3.0, 0.1, 2*h, 0.2, 18*h); err == nil {
		t.Error("anti-rate-limited points accepted")
	}
}

func TestPeukertLoadErrors(t *testing.T) {
	p, _ := NewPeukert(3.0, 1.2, 0.1, 3600*sim.Second)
	if _, err := p.Lifetime(0); err == nil {
		t.Error("Lifetime(0) accepted")
	}
	if _, err := p.EffectiveCapacityAh(-1); err == nil {
		t.Error("EffectiveCapacityAh(-1) accepted")
	}
}

func TestNewKiBaMValidation(t *testing.T) {
	cases := []struct{ v, cap, c, k float64 }{
		{0, 1, 0.5, 0.001},
		{3, 0, 0.5, 0.001},
		{3, 1, 0, 0.001},
		{3, 1, 1, 0.001},
		{3, 1, 0.5, 0},
	}
	for _, c := range cases {
		if _, err := NewKiBaM(c.v, c.cap, c.c, c.k); err == nil {
			t.Errorf("NewKiBaM(%v,%v,%v,%v) accepted bad input", c.v, c.cap, c.c, c.k)
		}
	}
}

func TestKiBaMStartsFull(t *testing.T) {
	b, err := NewKiBaM(3.0, 1.0, 0.4, 0.0005)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.TotalAh()-1.0) > 1e-9 {
		t.Errorf("TotalAh = %v, want 1.0", b.TotalAh())
	}
	if math.Abs(b.AvailableAh()-0.4) > 1e-9 {
		t.Errorf("AvailableAh = %v, want 0.4", b.AvailableAh())
	}
	if b.Exhausted() {
		t.Error("fresh cell reports exhausted")
	}
}

func TestKiBaMChargeConservationUnderRest(t *testing.T) {
	b, _ := NewKiBaM(3.0, 1.0, 0.3, 0.001)
	before := b.TotalAh()
	b.Rest(3600 * sim.Second)
	if math.Abs(b.TotalAh()-before) > 1e-9 {
		t.Errorf("rest changed total charge: %v → %v", before, b.TotalAh())
	}
	// Resting a full cell changes nothing.
	if math.Abs(b.AvailableAh()-0.3) > 1e-9 {
		t.Errorf("rest moved charge in a full cell: %v", b.AvailableAh())
	}
}

func TestKiBaMDrainsAndDies(t *testing.T) {
	b, _ := NewKiBaM(3.0, 0.1, 0.5, 0.0001)
	// 0.1 Ah at 3 V is 1.08 kJ; a 3 W load (1 A) should kill it well
	// before the nominal 6 minutes because only half is available fast.
	survived, ok := b.Drain(3600*sim.Second, 3.0)
	if ok {
		t.Fatal("cell survived a draining load for an hour")
	}
	if survived <= 0 || survived >= 3600*sim.Second {
		t.Fatalf("survived = %v, want in (0, 1h)", survived)
	}
	if !b.Exhausted() {
		t.Error("Exhausted() false after death")
	}
}

func TestKiBaMRecoveryExtendsLife(t *testing.T) {
	// Same average power, but pulsed with rests: the pulsed pattern
	// must last at least as long in active time delivered — the
	// pulsed-power effect of Chiasserini & Rao.
	constant, _ := NewKiBaM(3.0, 0.5, 0.3, 0.0002)
	pulsed, _ := NewKiBaM(3.0, 0.5, 0.3, 0.0002)

	constLife, err := constant.LifetimeUnder(
		[]LoadPhase{{Watts: 2.0, For: sim.Second}}, 100*3600*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Pulse: 2 W for 10 s, rest 10 s — average 1 W.
	pulsedLife, err := pulsed.LifetimeUnder([]LoadPhase{
		{Watts: 2.0, For: 10 * sim.Second},
		{Watts: 0, For: 10 * sim.Second},
	}, 100*3600*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The pulsed run delivers ~half duty, so compare delivered-on time:
	// it must exceed half the constant life (recovery bonus).
	deliveredPulsed := pulsedLife / 2
	if deliveredPulsed <= constLife {
		t.Errorf("pulsed delivered-on time %v not longer than constant life %v",
			deliveredPulsed, constLife)
	}
}

func TestKiBaMRestRecoversAvailableCharge(t *testing.T) {
	b, _ := NewKiBaM(3.0, 0.5, 0.3, 0.0005)
	b.Drain(600*sim.Second, 1.5)
	availAfterDrain := b.AvailableAh()
	total := b.TotalAh()
	b.Rest(3600 * sim.Second)
	if b.AvailableAh() <= availAfterDrain {
		t.Errorf("rest did not recover available charge: %v → %v",
			availAfterDrain, b.AvailableAh())
	}
	if math.Abs(b.TotalAh()-total) > 1e-9 {
		t.Error("rest created or destroyed charge")
	}
}

func TestKiBaMNegativeLoadClamps(t *testing.T) {
	b, _ := NewKiBaM(3.0, 0.5, 0.3, 0.0005)
	before := b.TotalAh()
	if _, ok := b.Drain(10*sim.Second, -5); !ok {
		t.Fatal("negative load killed the cell")
	}
	if b.TotalAh() > before+1e-9 {
		t.Error("negative load charged the battery")
	}
}

func TestLifetimeUnderValidation(t *testing.T) {
	b, _ := NewKiBaM(3.0, 0.5, 0.3, 0.0005)
	if _, err := b.LifetimeUnder(nil, 3600*sim.Second); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := b.LifetimeUnder([]LoadPhase{{Watts: 1, For: 0}}, 3600*sim.Second); err == nil {
		t.Error("zero-duration phase accepted")
	}
}

func TestLifetimeUnderHitsMaxLife(t *testing.T) {
	b, _ := NewKiBaM(3.0, 10.0, 0.5, 0.001) // huge cell
	life, err := b.LifetimeUnder([]LoadPhase{{Watts: 0.01, For: sim.Second}}, 60*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if life != 60*sim.Second {
		t.Errorf("life = %v, want capped at 60s", life)
	}
}
