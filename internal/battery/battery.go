// Package battery models the two non-ideal battery properties Section 2.1 of
// the paper leans on:
//
//  1. Rate-capacity effect: the energy a cell can deliver drops as the power
//     drawn from it rises. The Itsy observation — a pair of AAA alkaline
//     cells lasts about 2 hours with the system idle at 206 MHz but about
//     18 hours idle at 59 MHz, a 9× lifetime change for a 3.5× clock
//     change — is modelled with a Peukert law fitted through the observed
//     points. The fitted exponent is larger than textbook alkaline values
//     because it folds in DC-DC converter efficiency collapse and
//     cutoff-voltage effects, which the paper does not separate either.
//
//  2. Charge recovery under pulsed discharge (Chiasserini & Rao): resting a
//     cell lets bound charge migrate to the electrode and extends life. This
//     is modelled with the kinetic battery model (KiBaM), two charge wells
//     coupled by a rate constant.
package battery

import (
	"errors"
	"fmt"
	"math"

	"clocksched/internal/sim"
)

// Peukert is a rate-capacity battery model: I^k · t = constant. Lifetime
// under a constant load I is t = Cp / I^k.
type Peukert struct {
	// Volts is the pack's nominal terminal voltage, used to convert a
	// power draw into a current draw.
	Volts float64
	// Exponent is Peukert's k; k = 1 is an ideal (rate-independent) cell.
	Exponent float64
	// Cp is the Peukert capacity constant in A^k·s, fixed by one
	// (current, lifetime) reference point.
	Cp float64
}

// NewPeukert builds a model from its pack voltage, exponent, and one
// reference point: the pack lasts refLife under a constant refAmps draw.
func NewPeukert(volts, exponent, refAmps float64, refLife sim.Duration) (Peukert, error) {
	if volts <= 0 || exponent < 1 || refAmps <= 0 || refLife <= 0 {
		return Peukert{}, fmt.Errorf(
			"battery: bad Peukert parameters (volts=%v k=%v refAmps=%v refLife=%v)",
			volts, exponent, refAmps, refLife)
	}
	return Peukert{
		Volts:    volts,
		Exponent: exponent,
		Cp:       math.Pow(refAmps, exponent) * refLife.Seconds(),
	}, nil
}

// FitPeukert builds a model that passes exactly through two observed
// (constant power, lifetime) points, such as the Itsy's 2 h at the 206 MHz
// idle draw and 18 h at the 59 MHz idle draw.
func FitPeukert(volts, watts1 float64, life1 sim.Duration, watts2 float64, life2 sim.Duration) (Peukert, error) {
	if volts <= 0 || watts1 <= 0 || watts2 <= 0 || life1 <= 0 || life2 <= 0 {
		return Peukert{}, errors.New("battery: non-positive fit inputs")
	}
	if watts1 == watts2 {
		return Peukert{}, errors.New("battery: fit points have equal power")
	}
	i1, i2 := watts1/volts, watts2/volts
	k := math.Log(life2.Seconds()/life1.Seconds()) / math.Log(i1/i2)
	if k < 1 {
		return Peukert{}, fmt.Errorf("battery: fit gives exponent %v < 1; points not rate-limited", k)
	}
	return NewPeukert(volts, k, i1, life1)
}

// Lifetime returns how long the pack powers a constant draw of watts.
func (p Peukert) Lifetime(watts float64) (sim.Duration, error) {
	if watts <= 0 {
		return 0, errors.New("battery: non-positive load")
	}
	amps := watts / p.Volts
	secs := p.Cp / math.Pow(amps, p.Exponent)
	return sim.FromSeconds(secs), nil
}

// EffectiveCapacityAh returns the charge the pack delivers before exhaustion
// at a constant current draw, in ampere-hours. This is the quantity that
// shrinks as the draw grows.
func (p Peukert) EffectiveCapacityAh(amps float64) (float64, error) {
	if amps <= 0 {
		return 0, errors.New("battery: non-positive current")
	}
	return p.Cp / math.Pow(amps, p.Exponent-1) / 3600, nil
}

// KiBaM is the kinetic battery model: total charge is split between an
// available well (fraction c) feeding the load directly and a bound well
// that replenishes the available well at a rate set by κ and the difference
// in well heights. Resting the battery lets charge flow back and recovers
// capacity — the pulsed-discharge effect.
type KiBaM struct {
	Volts float64
	c     float64 // available-well capacity fraction, 0 < c < 1
	kappa float64 // well-coupling rate constant, 1/s

	y1 float64 // available charge, ampere-seconds
	y2 float64 // bound charge, ampere-seconds
}

// NewKiBaM builds a cell with total charge capacityAh, available fraction c,
// coupling rate kappa (1/s), and pack voltage volts. The cell starts full.
func NewKiBaM(volts, capacityAh, c, kappa float64) (*KiBaM, error) {
	if volts <= 0 || capacityAh <= 0 || kappa <= 0 || c <= 0 || c >= 1 {
		return nil, fmt.Errorf("battery: bad KiBaM parameters (volts=%v cap=%v c=%v κ=%v)",
			volts, capacityAh, c, kappa)
	}
	total := capacityAh * 3600
	return &KiBaM{
		Volts: volts,
		c:     c,
		kappa: kappa,
		y1:    c * total,
		y2:    (1 - c) * total,
	}, nil
}

// AvailableAh returns the charge in the available well, in ampere-hours.
func (b *KiBaM) AvailableAh() float64 { return b.y1 / 3600 }

// TotalAh returns the total remaining charge, in ampere-hours.
func (b *KiBaM) TotalAh() float64 { return (b.y1 + b.y2) / 3600 }

// Exhausted reports whether the available well has emptied: the terminal
// voltage has collapsed and the pack can no longer supply the load.
func (b *KiBaM) Exhausted() bool { return b.y1 <= 0 }

// integrationStep bounds the Euler step so the well-coupling dynamics stay
// stable and accurate.
const integrationStep = 1.0 // seconds

// Drain runs the cell under a constant power load for dt. It returns how
// long the cell actually survived (dt if it survived the whole interval) and
// whether it is still usable afterwards.
func (b *KiBaM) Drain(dt sim.Duration, watts float64) (sim.Duration, bool) {
	if watts < 0 {
		watts = 0
	}
	amps := watts / b.Volts
	total := dt.Seconds()
	elapsed := 0.0
	for elapsed < total && !b.Exhausted() {
		h := integrationStep
		if total-elapsed < h {
			h = total - elapsed
		}
		b.step(h, amps)
		elapsed += h
	}
	if b.Exhausted() {
		return sim.FromSeconds(elapsed), false
	}
	return dt, true
}

// Rest lets the cell recover with no load for dt.
func (b *KiBaM) Rest(dt sim.Duration) { _, _ = b.Drain(dt, 0) }

func (b *KiBaM) step(h, amps float64) {
	h1 := b.y1 / b.c
	h2 := b.y2 / (1 - b.c)
	flow := b.kappa * (h2 - h1) // charge per second migrating to the available well
	b.y1 += (-amps + flow) * h
	b.y2 += -flow * h
	if b.y2 < 0 {
		b.y2 = 0
	}
}

// LifetimeUnder runs the cell to exhaustion under a repeating load pattern
// and returns how long it lasted. Each phase applies a constant power for
// its duration; the pattern repeats until exhaustion or maxLife elapses.
func (b *KiBaM) LifetimeUnder(pattern []LoadPhase, maxLife sim.Duration) (sim.Duration, error) {
	if len(pattern) == 0 {
		return 0, errors.New("battery: empty load pattern")
	}
	for _, ph := range pattern {
		if ph.For <= 0 {
			return 0, errors.New("battery: non-positive phase duration")
		}
	}
	elapsed := sim.Duration(0)
	for elapsed < maxLife {
		for _, ph := range pattern {
			d := ph.For
			if elapsed+d > maxLife {
				d = maxLife - elapsed
			}
			survived, ok := b.Drain(d, ph.Watts)
			elapsed += survived
			if !ok || elapsed >= maxLife {
				if elapsed > maxLife {
					elapsed = maxLife
				}
				return elapsed, nil
			}
		}
	}
	return maxLife, nil
}

// LoadPhase is one segment of a repeating load pattern.
type LoadPhase struct {
	Watts float64
	For   sim.Duration
}
