package battery_test

import (
	"fmt"

	"clocksched/internal/battery"
	"clocksched/internal/sim"
)

// Fit the paper's Section 2.1 observation exactly: a pair of AAA cells
// lasts 2 hours at the 206 MHz idle draw but 18 hours at the 59 MHz draw.
func ExampleFitPeukert() {
	cell, _ := battery.FitPeukert(3.0,
		0.200, 2*3600*sim.Second, // 206.4 MHz idle
		0.114, 18*3600*sim.Second) // 59 MHz idle
	mid, _ := cell.Lifetime(0.157) // 132.7 MHz idle draw
	fmt.Printf("idle at 132.7 MHz: %.1f hours\n", mid.Seconds()/3600)
	// Output:
	// idle at 132.7 MHz: 5.2 hours
}
