package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzRead asserts the parser's contract on arbitrary bytes: Read either
// returns an error or a trace that validates, serializes, and survives a
// write/read round trip unchanged — and it never panics on any input.
func FuzzRead(f *testing.F) {
	f.Add([]byte("# itsy input trace\nname demo\n0 tap 1\n1000 scroll -3\n"))
	f.Add([]byte("name x\n"))
	f.Add([]byte("name keys\n0 key 104\n0 key 105\n500000 key 33\n"))
	f.Add([]byte("name bad\n100 tap 1\n50 tap 2\n"))
	f.Add([]byte("name over\n99999999999999999999 tap 1\n"))
	f.Add([]byte("9223372036854775807 tap 1\nname t\n"))
	f.Add([]byte("\xff\xfe garbage # not a trace"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only other acceptable outcome
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Read accepted a trace Validate rejects: %v", err)
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatalf("valid trace failed to serialize: %v", err)
		}
		tr2, err := Read(&buf)
		if err != nil {
			t.Fatalf("serialized trace failed to re-read: %v\n%s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("round trip changed the trace:\nbefore %+v\nafter  %+v", tr, tr2)
		}
	})
}
