// Package trace records and replays timestamped input events, mirroring the
// paper's tracing mechanism: "we used a tracing mechanism that recorded
// timestamped input events and then allowed us to replay those events with
// millisecond accuracy." Traces make interactive workloads exactly
// repeatable across runs and policies.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"unicode"

	"clocksched/internal/sim"
)

// Event is one recorded input event: a pen tap, a scroll, a menu selection.
// Kind is application-defined; Arg carries an application payload (e.g.
// scroll distance or a move index).
type Event struct {
	At   sim.Time
	Kind string
	Arg  int64
}

// Trace is an ordered sequence of input events for one application session.
type Trace struct {
	Name   string
	Events []Event
}

// MaxEventTime bounds trace timestamps to one simulated year. Real sessions
// run minutes; anything past this is a corrupt or hostile trace, and
// rejecting it here keeps downstream virtual-time arithmetic (which adds
// burst durations and jitter to event times) far from int64 overflow.
const MaxEventTime = 365 * 24 * 3600 * sim.Second

// Validate checks that events are in nondecreasing time order with
// non-negative, bounded timestamps and non-empty whitespace-free kinds.
// A trace that validates is guaranteed to survive a WriteTo/Read round trip
// unchanged.
func (t *Trace) Validate() error {
	if t.Name == "" {
		return errors.New("trace: empty name")
	}
	if strings.IndexFunc(t.Name, unicode.IsSpace) >= 0 {
		return fmt.Errorf("trace: name %q contains whitespace", t.Name)
	}
	for i, e := range t.Events {
		if e.At < 0 {
			return fmt.Errorf("trace: event %d at negative time %v", i, e.At)
		}
		if e.At > MaxEventTime {
			return fmt.Errorf("trace: event %d at %v beyond the %v limit", i, e.At, MaxEventTime)
		}
		if e.Kind == "" {
			return fmt.Errorf("trace: event %d has empty kind", i)
		}
		if strings.IndexFunc(e.Kind, unicode.IsSpace) >= 0 {
			return fmt.Errorf("trace: event %d kind %q contains whitespace", i, e.Kind)
		}
		if i > 0 && e.At < t.Events[i-1].At {
			return fmt.Errorf("trace: event %d at %v before predecessor at %v",
				i, e.At, t.Events[i-1].At)
		}
	}
	return nil
}

// Duration returns the time of the last event (the session length).
func (t *Trace) Duration() sim.Duration {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].At
}

// Recorder captures events during a live session.
type Recorder struct {
	name   string
	events []Event
}

// NewRecorder starts recording a session under the given name.
func NewRecorder(name string) *Recorder { return &Recorder{name: name} }

// Add records one event. Events may arrive out of order (from multiple
// sources); Finish sorts them.
func (r *Recorder) Add(at sim.Time, kind string, arg int64) {
	r.events = append(r.events, Event{At: at, Kind: kind, Arg: arg})
}

// Finish returns the completed, validated trace.
func (r *Recorder) Finish() (*Trace, error) {
	sort.SliceStable(r.events, func(i, j int) bool { return r.events[i].At < r.events[j].At })
	t := &Trace{Name: r.name, Events: r.events}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteTo serializes the trace in a line-oriented text format:
//
//	# itsy input trace
//	name <name>
//	<microseconds> <kind> <arg>
//	...
//
// It returns the number of bytes written.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(w)
	n := int64(0)
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	if err := count(fmt.Fprintf(bw, "# itsy input trace\nname %s\n", t.Name)); err != nil {
		return n, err
	}
	for _, e := range t.Events {
		if err := count(fmt.Fprintf(bw, "%d %s %d\n", int64(e.At), e.Kind, e.Arg)); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses a trace in the WriteTo format.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "name" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: line %d: bad name directive", line)
			}
			t.Name = fields[1]
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 'time kind arg', got %q", line, text)
		}
		at, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad timestamp: %v", line, err)
		}
		arg, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad arg: %v", line, err)
		}
		t.Events = append(t.Events, Event{At: sim.Time(at), Kind: fields[1], Arg: arg})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Replayer walks a trace in time order.
type Replayer struct {
	trace *Trace
	next  int
}

// NewReplayer returns a replayer positioned at the first event.
func NewReplayer(t *Trace) (*Replayer, error) {
	if t == nil {
		return nil, errors.New("trace: nil trace")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &Replayer{trace: t}, nil
}

// Peek returns the next event without consuming it; ok is false at the end.
func (r *Replayer) Peek() (Event, bool) {
	if r.next >= len(r.trace.Events) {
		return Event{}, false
	}
	return r.trace.Events[r.next], true
}

// Next consumes and returns the next event; ok is false at the end.
func (r *Replayer) Next() (Event, bool) {
	e, ok := r.Peek()
	if ok {
		r.next++
	}
	return e, ok
}

// Remaining returns how many events are left.
func (r *Replayer) Remaining() int { return len(r.trace.Events) - r.next }
