package trace

import (
	"bytes"
	"strings"
	"testing"

	"clocksched/internal/sim"
)

func sample() *Trace {
	return &Trace{
		Name: "web",
		Events: []Event{
			{At: 0, Kind: "tap", Arg: 1},
			{At: 1500 * sim.Millisecond, Kind: "scroll", Arg: 120},
			{At: 3 * sim.Second, Kind: "scroll", Arg: -40},
			{At: 10 * sim.Second, Kind: "open", Arg: 2},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := sample()
	bad.Name = ""
	if bad.Validate() == nil {
		t.Error("empty name accepted")
	}
	bad = sample()
	bad.Events[2].At = 100 // out of order
	if bad.Validate() == nil {
		t.Error("out-of-order events accepted")
	}
	bad = sample()
	bad.Events[0].At = -1
	if bad.Validate() == nil {
		t.Error("negative timestamp accepted")
	}
	bad = sample()
	bad.Events[0].Kind = ""
	if bad.Validate() == nil {
		t.Error("empty kind accepted")
	}
	bad = sample()
	bad.Events[0].Kind = "two words"
	if bad.Validate() == nil {
		t.Error("whitespace kind accepted")
	}
}

func TestDuration(t *testing.T) {
	if got := sample().Duration(); got != 10*sim.Second {
		t.Errorf("Duration = %v", got)
	}
	empty := &Trace{Name: "x"}
	if empty.Duration() != 0 {
		t.Error("empty trace duration nonzero")
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	orig := sample()
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || len(got.Events) != len(orig.Events) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	for i := range orig.Events {
		if got.Events[i] != orig.Events[i] {
			t.Errorf("event %d: %+v != %+v", i, got.Events[i], orig.Events[i])
		}
	}
}

func TestWriteToRejectsInvalid(t *testing.T) {
	bad := sample()
	bad.Name = ""
	var buf bytes.Buffer
	if _, err := bad.WriteTo(&buf); err == nil {
		t.Error("invalid trace written")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"bad name":      "name\n",
		"bad fields":    "name x\n100 tap\n",
		"bad timestamp": "name x\nzzz tap 1\n",
		"bad arg":       "name x\n100 tap zzz\n",
		"unsorted":      "name x\n100 tap 1\n50 tap 1\n",
		"missing name":  "100 tap 1\n",
	}
	for label, text := range cases {
		if _, err := Read(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted %q", label, text)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	text := "# header\n\nname chess\n# event below\n1000 move 4\n"
	tr, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "chess" || len(tr.Events) != 1 || tr.Events[0].Arg != 4 {
		t.Errorf("parsed %+v", tr)
	}
}

func TestRecorderSortsEvents(t *testing.T) {
	r := NewRecorder("session")
	r.Add(300, "b", 0)
	r.Add(100, "a", 0)
	r.Add(200, "c", 0)
	tr, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Events[0].Kind != "a" || tr.Events[1].Kind != "c" || tr.Events[2].Kind != "b" {
		t.Errorf("events not sorted: %+v", tr.Events)
	}
}

func TestRecorderRejectsBadEvents(t *testing.T) {
	r := NewRecorder("s")
	r.Add(100, "", 0)
	if _, err := r.Finish(); err == nil {
		t.Error("empty kind accepted by recorder")
	}
}

func TestReplayer(t *testing.T) {
	rp, err := NewReplayer(sample())
	if err != nil {
		t.Fatal(err)
	}
	if rp.Remaining() != 4 {
		t.Errorf("Remaining = %d", rp.Remaining())
	}
	e, ok := rp.Peek()
	if !ok || e.Kind != "tap" {
		t.Errorf("Peek = %+v, %v", e, ok)
	}
	if rp.Remaining() != 4 {
		t.Error("Peek consumed an event")
	}
	count := 0
	for {
		_, ok := rp.Next()
		if !ok {
			break
		}
		count++
	}
	if count != 4 {
		t.Errorf("replayed %d events", count)
	}
	if _, ok := rp.Peek(); ok {
		t.Error("Peek after end returned an event")
	}
}

func TestNewReplayerValidation(t *testing.T) {
	if _, err := NewReplayer(nil); err == nil {
		t.Error("nil trace accepted")
	}
	bad := sample()
	bad.Events[0].At = -5
	if _, err := NewReplayer(bad); err == nil {
		t.Error("invalid trace accepted")
	}
}
