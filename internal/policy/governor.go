package policy

import (
	"fmt"

	"clocksched/internal/cpu"
	"clocksched/internal/sim"
	"clocksched/internal/telemetry"
)

// Bounds is the hysteresis pair that decides *when* to scale: if the
// weighted utilization rises above Hi the clock scales up; below Lo it
// scales down; in between it holds. Values are PP10K. Pering et al. used
// 50%/70%; the paper's best-found policy used 93%/98%.
type Bounds struct {
	Lo, Hi int
}

// Validate checks the bounds are ordered and in range.
func (b Bounds) Validate() error {
	if b.Lo < 0 || b.Hi > FullUtil || b.Lo > b.Hi {
		return fmt.Errorf("policy: bad bounds %d/%d", b.Lo, b.Hi)
	}
	return nil
}

// PeringBounds are the 50%/70% thresholds of Pering et al., the paper's
// starting point.
var PeringBounds = Bounds{Lo: 5000, Hi: 7000}

// BestBounds are the thresholds of the best policy the paper found
// empirically: scale up above 98% utilization, down below 93%.
var BestBounds = Bounds{Lo: 9300, Hi: 9800}

// Decision is one quantum's output of a governor.
type Decision struct {
	Step     cpu.Step
	V        cpu.Voltage
	Weighted int  // weighted utilization used for the decision, PP10K
	ScaledUp bool // the decision was a scale-up
	ScaledDn bool // the decision was a scale-down
}

// Governor is a complete interval scheduler: predictor + hysteresis bounds
// + per-direction speed setters + optional voltage scaling. It satisfies
// the kernel's SpeedPolicy interface.
type Governor struct {
	pred   Predictor
	up     SpeedSetter
	down   SpeedSetter
	bounds Bounds
	// voltageScale, when true, drops the core to 1.23 V whenever the
	// chosen step permits it (below 162.2 MHz), as in the last row of the
	// paper's Table 2.
	voltageScale bool

	upCount, downCount int

	// Telemetry counters; nil (no-op) unless Instrument was called.
	telUp, telDown, telHold *telemetry.Counter
}

// Instrument attaches per-decision telemetry counters
// (policy_decisions_total by decision). A nil registry detaches them.
func (g *Governor) Instrument(reg *telemetry.Registry) {
	g.telUp = reg.Counter(telemetry.MPolicyScaleUp)
	g.telDown = reg.Counter(telemetry.MPolicyScaleDown)
	g.telHold = reg.Counter(telemetry.MPolicyHold)
}

// NewGovernor builds a governor. Separate setters may be given for scaling
// up and down ("PAST, Peg-Peg" in Table 2 names the pair).
func NewGovernor(pred Predictor, up, down SpeedSetter, bounds Bounds, voltageScale bool) (*Governor, error) {
	if pred == nil || up == nil || down == nil {
		return nil, fmt.Errorf("policy: governor needs a predictor and two setters")
	}
	if err := bounds.Validate(); err != nil {
		return nil, err
	}
	return &Governor{pred: pred, up: up, down: down, bounds: bounds, voltageScale: voltageScale}, nil
}

// MustGovernor is NewGovernor that panics on error, for composing literals
// in tests and experiment tables.
func MustGovernor(pred Predictor, up, down SpeedSetter, bounds Bounds, voltageScale bool) *Governor {
	g, err := NewGovernor(pred, up, down, bounds, voltageScale)
	if err != nil {
		panic(err)
	}
	return g
}

// Name describes the governor in the paper's style, e.g.
// "PAST, peg-peg, 93%-98%".
func (g *Governor) Name() string {
	v := ""
	if g.voltageScale {
		v = ", voltage scaling"
	}
	return fmt.Sprintf("%s, %s-%s, %d%%-%d%%%s",
		g.pred.Name(), g.up.Name(), g.down.Name(),
		g.bounds.Lo/100, g.bounds.Hi/100, v)
}

// Decide observes one quantum's utilization and returns the step and
// voltage to run the next quantum at.
func (g *Governor) Decide(util int, cur cpu.Step) Decision {
	w := g.pred.Observe(util)
	d := Decision{Step: cur, Weighted: w}
	switch {
	case w > g.bounds.Hi:
		d.Step = g.up.Up(cur)
		d.ScaledUp = d.Step != cur
		if d.ScaledUp {
			g.upCount++
		}
	case w < g.bounds.Lo:
		d.Step = g.down.Down(cur)
		d.ScaledDn = d.Step != cur
		if d.ScaledDn {
			g.downCount++
		}
	}
	switch {
	case d.ScaledUp:
		g.telUp.Inc()
	case d.ScaledDn:
		g.telDown.Inc()
	default:
		g.telHold.Inc()
	}
	d.V = g.voltageFor(d.Step)
	return d
}

func (g *Governor) voltageFor(s cpu.Step) cpu.Voltage {
	if g.voltageScale && cpu.VoltageOK(s, cpu.VLow) {
		return cpu.VLow
	}
	return cpu.VHigh
}

// OnQuantum implements the kernel's SpeedPolicy interface.
func (g *Governor) OnQuantum(_ sim.Time, util int, cur cpu.Step, _ cpu.Voltage) (cpu.Step, cpu.Voltage) {
	d := g.Decide(util, cur)
	return d.Step, d.V
}

// ScaleCounts reports how many scale-up and scale-down actions the governor
// has taken — the paper notes its best policy "changes clock settings
// frequently", so this is a first-class metric.
func (g *Governor) ScaleCounts() (up, down int) { return g.upCount, g.downCount }

// Reset restores the governor (and its predictor) to the initial state.
func (g *Governor) Reset() {
	g.pred.Reset()
	g.upCount, g.downCount = 0, 0
}

// Constant is the baseline policy: a fixed clock step and voltage,
// corresponding to the "Constant Speed" rows of Table 2.
type Constant struct {
	S cpu.Step
	V cpu.Voltage
}

// OnQuantum implements the kernel's SpeedPolicy interface.
func (c Constant) OnQuantum(_ sim.Time, _ int, _ cpu.Step, _ cpu.Voltage) (cpu.Step, cpu.Voltage) {
	return c.S, c.V
}

// Name describes the baseline in the paper's style.
func (c Constant) Name() string {
	return fmt.Sprintf("Constant Speed @ %s, %s", c.S, c.V)
}
