package policy

import (
	"testing"
	"testing/quick"
)

func TestFlatAlwaysPredictsTarget(t *testing.T) {
	f := NewFlat(6500)
	for _, u := range []int{0, 10000, 3000} {
		if got := f.Observe(u); got != 6500 {
			t.Errorf("Observe(%d) = %d", u, got)
		}
	}
	if f.Weighted() != 6500 {
		t.Error("Weighted drifted")
	}
	f.Reset()
	if f.Weighted() != 6500 {
		t.Error("Reset changed the target")
	}
	if f.Name() != "FLAT_65" {
		t.Errorf("Name = %q", f.Name())
	}
	if NewFlat(99999).Target != FullUtil {
		t.Error("target not clamped")
	}
}

func TestLongShortRespondsBetweenItsWindows(t *testing.T) {
	// After a step from idle to busy, LONG_SHORT's estimate sits between
	// a pure 3-quantum average and a pure 12-quantum average.
	ls := NewLongShort()
	long := MustSimpleWindow(longWindow)
	short := MustSimpleWindow(shortWindow)
	for i := 0; i < longWindow; i++ {
		ls.Observe(0)
		long.Observe(0)
		short.Observe(0)
	}
	for i := 0; i < 3; i++ {
		ls.Observe(FullUtil)
		long.Observe(FullUtil)
		short.Observe(FullUtil)
	}
	got := ls.Weighted()
	if !(got > long.Weighted() && got <= short.Weighted()) {
		t.Errorf("LONG_SHORT = %d, long = %d, short = %d",
			got, long.Weighted(), short.Weighted())
	}
	if ls.Name() != "LONG_SHORT" {
		t.Errorf("Name = %q", ls.Name())
	}
	ls.Reset()
	if ls.Weighted() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestCycleDetectsPeriodicWave(t *testing.T) {
	// The Section 5.3 nemesis: a 9-busy/1-idle wave. CYCLE should find
	// the period and predict the idle quantum coming.
	c := NewCycle()
	var predictions []int
	var actual []int
	for i := 0; i < 60; i++ {
		u := FullUtil
		if i%10 == 9 {
			u = 0
		}
		if i > 0 {
			actual = append(actual, u)
		}
		pred := c.Observe(u)
		if i < 59 {
			predictions = append(predictions, pred)
		}
	}
	if c.Detected == 0 {
		t.Fatal("no cycle detected in a perfectly periodic wave")
	}
	// Score the tail predictions (after warm-up): CYCLE must beat AVG_3
	// by predicting the idle dips.
	errCycle := 0
	for i := 40; i < len(predictions); i++ {
		d := predictions[i] - actual[i]
		if d < 0 {
			d = -d
		}
		errCycle += d
	}
	avg := MustAvgN(3)
	errAvg := 0
	for i := 0; i < 59; i++ {
		u := FullUtil
		if i%10 == 9 {
			u = 0
		}
		pred := avg.Observe(u)
		if i >= 40 {
			next := FullUtil
			if (i+1)%10 == 9 {
				next = 0
			}
			d := pred - next
			if d < 0 {
				d = -d
			}
			errAvg += d
		}
	}
	if errCycle >= errAvg {
		t.Errorf("CYCLE error %d not below AVG_3 error %d on a periodic wave",
			errCycle, errAvg)
	}
}

func TestCycleFallsBackOnNoise(t *testing.T) {
	c := NewCycle()
	rng := newTestRNG()
	for i := 0; i < 60; i++ {
		c.Observe(int(rng.next() % (FullUtil + 1)))
	}
	// Detection of long exact cycles in noise is astronomically
	// unlikely; the predictor must report the fallback's estimate.
	if c.Detected != 0 {
		t.Errorf("detected period %d in noise", c.Detected)
	}
}

func TestCycleReset(t *testing.T) {
	c := NewCycle()
	for i := 0; i < 40; i++ {
		u := 0
		if i%2 == 0 {
			u = FullUtil
		}
		c.Observe(u)
	}
	c.Reset()
	if c.Weighted() != 0 || c.Detected != 0 {
		t.Error("Reset incomplete")
	}
	if c.Name() != "CYCLE" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestPatternRecallsRepeatedSequence(t *testing.T) {
	// A repeating motif long enough to exceed CYCLE-style periods:
	// after seeing the motif twice, the 4-quantum suffix match should
	// predict the next element correctly.
	motif := []int{10000, 8000, 2000, 0, 4000, 10000, 6000, 1000}
	p := NewPattern()
	hits, total := 0, 0
	for rep := 0; rep < 4; rep++ {
		for i, u := range motif {
			pred := p.Observe(u)
			if rep >= 2 {
				next := motif[(i+1)%len(motif)]
				total++
				d := pred - next
				if d < 0 {
					d = -d
				}
				if d <= 500 {
					hits++
				}
			}
		}
	}
	if hits*2 < total {
		t.Errorf("pattern matcher hit only %d/%d predictions", hits, total)
	}
}

func TestPatternFallsBackWithoutHistory(t *testing.T) {
	p := NewPattern()
	if got := p.Observe(4000); p.Matched {
		t.Errorf("matched on first observation (pred %d)", got)
	}
	p.Reset()
	if p.Weighted() != 0 || p.Matched {
		t.Error("Reset incomplete")
	}
	if p.Name() != "PATTERN" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestPeakHeuristic(t *testing.T) {
	p := NewPeak()
	p.Observe(2000)
	// Rising: predict retreat to the pre-rise level.
	if got := p.Observe(9000); got != 2000 {
		t.Errorf("rising prediction = %d, want 2000", got)
	}
	// Falling: predict the current level.
	if got := p.Observe(1000); got != 1000 {
		t.Errorf("falling prediction = %d, want 1000", got)
	}
	// Steady: predict itself.
	if got := p.Observe(1000); got != 1000 {
		t.Errorf("steady prediction = %d, want 1000", got)
	}
	p.Reset()
	if p.Weighted() != 0 {
		t.Error("Reset incomplete")
	}
	if p.Name() != "PEAK" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestPeakFirstObservationIsItself(t *testing.T) {
	p := NewPeak()
	if got := p.Observe(7000); got != 7000 {
		t.Errorf("first prediction = %d, want 7000", got)
	}
}

// All Govil predictors stay within [0, FullUtil] on arbitrary input.
func TestGovilPredictorsBoundedProperty(t *testing.T) {
	f := func(inputs []int16) bool {
		preds := []Predictor{
			NewFlat(7000), NewLongShort(), NewCycle(), NewPattern(), NewPeak(),
		}
		for _, p := range preds {
			for _, in := range inputs {
				w := p.Observe(int(in))
				if w < 0 || w > FullUtil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Govil predictors compose with the Governor like any other predictor.
func TestGovilPredictorsInGovernor(t *testing.T) {
	for _, pred := range []Predictor{NewLongShort(), NewCycle(), NewPattern(), NewPeak()} {
		g := MustGovernor(pred, Peg{}, Peg{}, PeringBounds, false)
		cur := cpuStepMid
		for i := 0; i < 50; i++ {
			u := 0
			if i%2 == 0 {
				u = FullUtil
			}
			d := g.Decide(u, cur)
			if !d.Step.Valid() {
				t.Fatalf("%s produced invalid step", pred.Name())
			}
			cur = d.Step
		}
	}
}

// testRNG is a tiny deterministic generator local to the tests (the
// policy package cannot import internal/sim's RNG without an import cycle
// in some configurations, and the tests only need noise).
type testRNG struct{ state uint64 }

func newTestRNG() *testRNG { return &testRNG{state: 88172645463325252} }

func (r *testRNG) next() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}
