package policy

import (
	"math"
	"sort"
)

// This file ports the deadline-feasible online speed-scaling family that
// Abousamra, Bunde and Pruhs compare experimentally — Average Rate (AVR,
// Yao–Demers–Shenker), Optimal Available (OA, Bansal–Kimbrel–Pruhs's name
// for the YDS-on-remaining-work heuristic), and BKP (Bansal–Kimbrel–Pruhs)
// — at the trace level: job instances on a unit-interval grid, per-interval
// speeds out. Unlike the Weiser heuristics in offline.go these algorithms
// carry worst-case deadline guarantees, which the randomized differential
// suite checks against the Li–Yao–Yuan oracle: they never miss a deadline
// and never beat the oracle's energy.
//
// The algorithms are defined in continuous time with unbounded speed. Here
// speed is recomputed at each interval boundary and held for the interval
// (releases and deadlines are integral, so nothing changes mid-interval),
// and each interval's speed additionally gets a criticality clamp — at
// least the remaining work due at the next boundary — so discretization
// can never turn a guaranteed-feasible schedule into a near miss. Speeds
// are uncapped (may exceed 1); capping is the caller's concern and voids
// the feasibility guarantee.

// feasibleJob is the mutable per-run view of an OracleJob.
type feasibleJob struct {
	release, due float64
	work, left   float64
	late         bool
}

func liveJobs(jobs []OracleJob) []feasibleJob {
	live := make([]feasibleJob, 0, len(jobs))
	for _, j := range jobs {
		if j.Work > 0 {
			live = append(live, feasibleJob{
				release: j.Release, due: j.Due, work: j.Work, left: j.Work,
			})
		}
	}
	sort.Slice(live, func(a, b int) bool {
		if live[a].due != live[b].due {
			return live[a].due < live[b].due
		}
		return live[a].release < live[b].release
	})
	return live
}

// runFeasible drives the shared quantum loop: at each interval boundary i
// the algorithm callback proposes a speed from the released-and-unfinished
// job set, the criticality clamp raises it to at least the work due by
// i+1, and earliest-deadline-first service consumes the capacity.
func runFeasible(jobs []OracleJob, n int,
	propose func(i int, live []feasibleJob) float64) []float64 {
	live := liveJobs(jobs)
	speeds := make([]float64, n)
	for i := 0; i < n; i++ {
		t := float64(i)
		s := propose(i, live)
		// Criticality clamp: everything released and due by the next
		// boundary must fit in this interval.
		urgent := 0.0
		for _, j := range live {
			if j.left > 0 && j.release <= t && j.due <= t+1 {
				urgent += j.left
			}
		}
		if urgent > s {
			s = urgent
		}
		speeds[i] = s
		// EDF service (live is due-sorted).
		cap := s
		for k := range live {
			if cap <= 0 {
				break
			}
			j := &live[k]
			if j.left <= 0 || j.release > t {
				continue
			}
			amt := math.Min(cap, j.left)
			j.left -= amt
			cap -= amt
		}
	}
	return speeds
}

// AVRSpeeds computes the Average Rate schedule: every job is run at its
// own density Work/(Due−Release) for its whole window, and the processor
// speed is the sum of the active densities. Feasible with EDF dispatch;
// at most 2^α-competitive in energy.
func AVRSpeeds(jobs []OracleJob, n int) []float64 {
	return runFeasible(jobs, n, func(i int, live []feasibleJob) float64 {
		t := float64(i)
		s := 0.0
		for _, j := range live {
			if j.release <= t && t < j.due {
				s += j.work / (j.due - j.release)
			}
		}
		return s
	})
}

// OASpeeds computes Optimal Available: at each boundary, run at the speed
// the optimal schedule would use if no further work ever arrived — the
// maximum density of remaining released work over any deadline horizon,
// max over deadlines d > t of (remaining work due by d)/(d − t). This is
// the same rule DeadlineScheduler.RequiredKHz applies to kernel cycles.
func OASpeeds(jobs []OracleJob, n int) []float64 {
	return runFeasible(jobs, n, func(i int, live []feasibleJob) float64 {
		t := float64(i)
		s, cum := 0.0, 0.0
		for _, j := range live { // due-sorted: prefixes are horizons
			if j.left <= 0 || j.release > t {
				continue
			}
			cum += j.left
			if j.due > t {
				if d := cum / (j.due - t); d > s {
					s = d
				}
			}
		}
		return s
	})
}

// BKPSpeeds computes the Bansal–Kimbrel–Pruhs schedule: speed e·v(t),
// where v(t) is the maximum over look-ahead horizons t' > t of
// w(t, et−(e−1)t', t')/(e(t'−t)) and w(t, t₁, t₂) is the original work of
// jobs released in [t₁, t] with deadlines ≤ t₂ — a windowed density that
// remembers recently released work whether or not it has been served,
// which is what buys the constant competitive ratio. Only deadlines are
// candidate horizons (the maximum is attained there).
func BKPSpeeds(jobs []OracleJob, n int) []float64 {
	const e = math.E
	all := liveJobs(jobs)
	return runFeasible(jobs, n, func(i int, _ []feasibleJob) float64 {
		t := float64(i)
		best := 0.0
		for _, h := range all {
			if h.due <= t {
				continue
			}
			delta := h.due - t
			lo := t - (e-1)*delta
			w := 0.0
			for _, j := range all {
				if j.release <= t && j.release >= lo && j.due <= h.due {
					w += j.work
				}
			}
			// e · w/(e·Δ) = w/Δ.
			if d := w / delta; d > best {
				best = d
			}
		}
		return best
	})
}

// TraceScore is a deadline-aware schedule score on a job instance.
type TraceScore struct {
	Energy     float64 // Σ work·speed², late work charged at full speed when makeup is set
	MissedWork float64 // work served after its deadline or never served
	LateJobs   int     // jobs that missed their deadline
	Jobs       int     // jobs in the instance
}

// ScoreSpeeds serves a job instance earliest-deadline-first at the given
// per-interval speeds and scores it in the trace energy model. Work served
// in its window costs speed²; when makeup is set, work served late — or
// still unserved at the end — is charged at full speed (speed 1, or the
// actual speed if higher), the cost of eventually doing it with no slack
// left. The oracle minimizes exactly this objective among miss-free
// schedules, so with makeup a score below the oracle's is impossible for
// feasible service and empirically hard even for deadline-missing
// policies — that gap is what the zoo experiment reports.
func ScoreSpeeds(jobs []OracleJob, speeds []float64, makeup bool) TraceScore {
	const residue = 1e-9 // below this, float accumulation, not a real miss
	live := liveJobs(jobs)
	sc := TraceScore{Jobs: len(live)}
	for i, s := range speeds {
		t := float64(i)
		cap := s
		for k := range live {
			if cap <= 0 {
				break
			}
			j := &live[k]
			if j.left <= 0 || j.release > t {
				continue
			}
			amt := math.Min(cap, j.left)
			j.left -= amt
			cap -= amt
			if j.due <= t { // the whole interval lies past the deadline
				if amt > residue {
					sc.MissedWork += amt
					if !j.late {
						j.late = true
						sc.LateJobs++
					}
				}
				if makeup {
					sc.Energy += amt * math.Max(1, s) * math.Max(1, s)
					continue
				}
			}
			sc.Energy += amt * s * s
		}
	}
	for _, j := range live {
		if j.left > residue {
			sc.MissedWork += j.left
			if !j.late {
				sc.LateJobs++
			}
			if makeup {
				sc.Energy += j.left // × 1²
			}
		}
	}
	return sc
}
