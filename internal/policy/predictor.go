// Package policy implements the paper's contribution: interval-based
// dynamic clock scheduling. An interval scheduler performs two tasks at
// every 10 ms quantum — prediction (estimate the coming interval's processor
// utilization from past intervals) and speed-setting (choose one of the
// SA-1100's discrete clock steps, and optionally the core voltage).
//
// Predictors: PAST and AVG_N (Weiser et al., Govil et al., Pering et al.)
// plus the naive fixed-window average the paper uses as a foil in Figure 5.
// Speed setters: one, double, and peg. A Governor combines a predictor, a
// pair of hysteresis bounds, and separate up/down speed setters, and is
// installable as the kernel's speed policy.
//
// Utilization is carried in parts-per-ten-thousand (PP10K): 10000 means the
// quantum was fully busy. With the kernel's 10 ms quantum this is exactly
// the count of busy microseconds divided by the quantum in microseconds,
// and it is the scale in which the paper's Table 1 prints weighted
// utilizations (7000 = 70%).
package policy

import "fmt"

// FullUtil is a fully-busy interval in PP10K.
const FullUtil = 10000

// Predictor estimates the coming interval's utilization from the sequence
// of observed past intervals.
type Predictor interface {
	// Observe feeds the utilization of the interval that just ended
	// (PP10K) and returns the updated weighted utilization (PP10K).
	// Out-of-range inputs are clamped.
	Observe(util int) int
	// Weighted returns the current weighted utilization without
	// observing anything, floored to an integer as the paper's Table 1
	// prints it.
	Weighted() int
	// Reset returns the predictor to its initial state.
	Reset()
	// Name identifies the predictor, e.g. "PAST" or "AVG_9".
	Name() string
}

func clampUtil(u int) int {
	if u < 0 {
		return 0
	}
	if u > FullUtil {
		return FullUtil
	}
	return u
}

// AvgN is the exponential moving average predictor:
//
//	W_t = (N·W_{t−1} + U_{t−1}) / (N + 1)
//
// AVG_0 is the PAST policy — the current interval is predicted to be exactly
// as busy as the immediately preceding one. The weighted state is kept at
// full precision and floored only for reporting, which is what reproduces
// the paper's Table 1 digit-for-digit.
type AvgN struct {
	n int
	w float64
}

// NewAvgN returns an AVG_N predictor, or an error if n is negative.
func NewAvgN(n int) (*AvgN, error) {
	if n < 0 {
		return nil, fmt.Errorf("policy: AVG_%d is meaningless", n)
	}
	return &AvgN{n: n}, nil
}

// MustAvgN is NewAvgN that panics on error, for composing literals in tests
// and experiment tables where n is a known-good constant.
func MustAvgN(n int) *AvgN {
	a, err := NewAvgN(n)
	if err != nil {
		panic(err)
	}
	return a
}

// NewPAST returns the PAST predictor (AVG_0).
func NewPAST() *AvgN { return MustAvgN(0) }

// N returns the decay parameter.
func (a *AvgN) N() int { return a.n }

// Observe implements Predictor.
func (a *AvgN) Observe(util int) int {
	u := clampUtil(util)
	a.w = (float64(a.n)*a.w + float64(u)) / float64(a.n+1)
	return a.Weighted()
}

// Weighted implements Predictor.
func (a *AvgN) Weighted() int { return int(a.w) }

// Reset implements Predictor.
func (a *AvgN) Reset() { a.w = 0 }

// Name implements Predictor.
func (a *AvgN) Name() string {
	if a.n == 0 {
		return "PAST"
	}
	return fmt.Sprintf("AVG_%d", a.n)
}

// SimpleWindow is the naive speed-setting foil of the paper's Figure 5: it
// averages the busy fraction of the previous N quanta with equal weight.
// The paper shows it responds asymmetrically — it slows down quickly when
// idle cycles flood the window but speeds back up very slowly, because the
// total number of non-idle cycles across the window grows one quantum at a
// time.
type SimpleWindow struct {
	hist []int
	next int
	full bool
}

// NewSimpleWindow returns a window averaging the last n quanta, or an error
// if n < 1.
func NewSimpleWindow(n int) (*SimpleWindow, error) {
	if n < 1 {
		return nil, fmt.Errorf("policy: window of %d quanta is meaningless", n)
	}
	return &SimpleWindow{hist: make([]int, n)}, nil
}

// MustSimpleWindow is NewSimpleWindow that panics on error, for composing
// literals where n is a known-good constant.
func MustSimpleWindow(n int) *SimpleWindow {
	s, err := NewSimpleWindow(n)
	if err != nil {
		panic(err)
	}
	return s
}

// Observe implements Predictor.
func (s *SimpleWindow) Observe(util int) int {
	s.hist[s.next] = clampUtil(util)
	s.next++
	if s.next == len(s.hist) {
		s.next = 0
		s.full = true
	}
	return s.Weighted()
}

// Weighted implements Predictor. Before the window fills it averages over
// the observations seen so far.
func (s *SimpleWindow) Weighted() int {
	n := len(s.hist)
	if !s.full {
		n = s.next
	}
	if n == 0 {
		return 0
	}
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.hist[i]
	}
	return sum / n
}

// Reset implements Predictor.
func (s *SimpleWindow) Reset() {
	for i := range s.hist {
		s.hist[i] = 0
	}
	s.next = 0
	s.full = false
}

// Name implements Predictor.
func (s *SimpleWindow) Name() string { return fmt.Sprintf("WINDOW_%d", len(s.hist)) }
