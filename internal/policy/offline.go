package policy

import (
	"errors"
	"fmt"
)

// This file implements the offline trace algorithms of Weiser et al. that
// the paper discusses as un-implementable baselines: OPT and FUTURE. They
// operate on a recorded per-interval utilization trace (fractions of a
// fully-busy interval at full speed) and produce a relative speed for each
// interval, 0 < speed ≤ 1. They exist to reproduce the related-work
// comparison and for ablation benchmarks; a real kernel cannot run them
// because they use future information.

// ErrEmptyTrace is returned for empty utilization traces.
var ErrEmptyTrace = errors.New("policy: empty utilization trace")

func validateTrace(util []float64) error {
	if len(util) == 0 {
		return ErrEmptyTrace
	}
	for i, u := range util {
		if u < 0 || u > 1 {
			return fmt.Errorf("policy: trace utilization[%d] = %v out of [0,1]", i, u)
		}
	}
	return nil
}

func validateFloor(minSpeed float64) error {
	if minSpeed <= 0 || minSpeed > 1 {
		return fmt.Errorf("policy: bad minimum speed %v", minSpeed)
	}
	return nil
}

// OptSpeeds implements Weiser's OPT: with perfect future knowledge and the
// freedom to delay work arbitrarily (all deadlines at trace end), the
// energy-minimal schedule "perfectly stretches" computation into idle
// periods. Work cannot be done before it arrives, so the optimal cumulative
// service curve is the taut string pulled from (0,0) to (n, total work)
// beneath the arrival curve — the lower convex hull of the cumulative
// demand — and the per-interval speeds are its slopes. A floor keeps each
// speed positive.
func OptSpeeds(util []float64, minSpeed float64) ([]float64, error) {
	if err := validateTrace(util); err != nil {
		return nil, err
	}
	if err := validateFloor(minSpeed); err != nil {
		return nil, err
	}
	n := len(util)
	// Cumulative arrivals A[0..n], A[0] = 0.
	arrive := make([]float64, n+1)
	for i, u := range util {
		arrive[i+1] = arrive[i] + u
	}
	// Lower convex hull of the points (i, A[i]) by monotone chain. The
	// hull is the tightest convex curve under the arrivals from (0,0) to
	// (n, A[n]); its slopes are the optimal speeds.
	type pt struct {
		x int
		y float64
	}
	hull := make([]pt, 0, n+1)
	for i := 0; i <= n; i++ {
		p := pt{i, arrive[i]}
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			// Pop b if it lies on or above segment a→p (cross ≤ 0 keeps
			// the hull strictly convex-down).
			cross := float64(b.x-a.x)*(p.y-a.y) - (b.y-a.y)*float64(p.x-a.x)
			if cross <= 0 {
				hull = hull[:len(hull)-1]
				continue
			}
			break
		}
		hull = append(hull, p)
	}
	out := make([]float64, n)
	for h := 1; h < len(hull); h++ {
		a, b := hull[h-1], hull[h]
		slope := (b.y - a.y) / float64(b.x-a.x)
		if slope < minSpeed {
			slope = minSpeed
		}
		// The true slope never exceeds 1 (util is per-quantum work in
		// [0,1]), but the cumulative-sum arithmetic can overshoot by an
		// ulp, and downstream validation rejects speeds above 1.
		if slope > 1 {
			slope = 1
		}
		for i := a.x; i < b.x; i++ {
			out[i] = slope
		}
	}
	return out, nil
}

// FutureSpeeds implements Weiser's FUTURE: the scheduler peers into the
// window it is about to run and sets the speed to exactly the demand of
// that interval — perfect one-window lookahead with no deferral.
func FutureSpeeds(util []float64, minSpeed float64) ([]float64, error) {
	if err := validateTrace(util); err != nil {
		return nil, err
	}
	if err := validateFloor(minSpeed); err != nil {
		return nil, err
	}
	out := make([]float64, len(util))
	for i, u := range util {
		if u < minSpeed {
			u = minSpeed
		}
		out[i] = u
	}
	return out, nil
}

// PastSpeeds is the trace-level PAST policy for comparison against OPT and
// FUTURE: each interval runs at the speed the previous interval would have
// needed.
func PastSpeeds(util []float64, minSpeed float64) ([]float64, error) {
	if err := validateTrace(util); err != nil {
		return nil, err
	}
	if err := validateFloor(minSpeed); err != nil {
		return nil, err
	}
	out := make([]float64, len(util))
	prev := 1.0 // start at full speed, as an implementation would
	for i := range out {
		if prev < minSpeed {
			prev = minSpeed
		}
		out[i] = prev
		prev = util[i]
	}
	return out, nil
}

// TraceResult scores a speed schedule against a utilization trace in
// Weiser's model: per-cycle energy scales with speed² (voltage tracks
// frequency), so an interval doing w work at speed s costs w·s².
type TraceResult struct {
	Energy     float64 // relative energy, Σ work-done·speed²
	MissedWork float64 // demand left undone at trace end
}

// EvaluateSpeeds scores a speed schedule. When deferWork is true, demand
// that does not fit in its interval is carried forward as backlog and may
// complete later (Weiser's OPT assumption: deadlines at trace end); only
// backlog remaining at the end counts as missed. When false, any interval
// spill is missed immediately (the paper's inelastic-deadline assumption).
func EvaluateSpeeds(util, speeds []float64, deferWork bool) (TraceResult, error) {
	if err := validateTrace(util); err != nil {
		return TraceResult{}, err
	}
	if len(speeds) != len(util) {
		return TraceResult{}, fmt.Errorf("policy: %d speeds for %d intervals",
			len(speeds), len(util))
	}
	var res TraceResult
	backlog := 0.0
	for i, u := range util {
		s := speeds[i]
		if s <= 0 || s > 1 {
			return TraceResult{}, fmt.Errorf("policy: speed[%d] = %v out of (0,1]", i, s)
		}
		avail := u
		if deferWork {
			avail += backlog
		}
		done := avail
		if done > s {
			done = s
		}
		res.Energy += done * s * s
		spill := avail - done
		if deferWork {
			backlog = spill
		} else {
			res.MissedWork += spill
		}
	}
	res.MissedWork += backlog
	return res, nil
}
