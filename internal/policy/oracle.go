package policy

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the offline optimal continuous voltage schedule of
// Li, Yao and Yuan ("An O(n²) Algorithm for Computing Optimal Continuous
// Voltage Schedules"): given jobs with release times, deadlines, and work,
// compute the piecewise-constant speed function that finishes every job
// inside its window with minimum energy, for any convex power function.
//
// Two algorithms back the same API, chosen by instance structure:
//
// Agreeable instances — ordering jobs by release also orders them by
// deadline, which covers everything the trace adapter produces — are
// solved by the taut-string characterization: the optimal
// cumulative-service curve S(t) is the shortest path from (t₀, 0) to
// (t_end, W) through the corridor
//
//	D(t) ≤ S(t) ≤ A(t)
//
// where A(t) is cumulative released work (service cannot run ahead of
// arrivals) and D(t) is cumulative due work (service cannot run behind
// deadlines). For agreeable deadlines the corridor constraints imply every
// pairwise window constraint — a violation would need a job released
// before t₁ but due after t₂ alongside a job released after t₁ and due by
// t₂, which is exactly a deadline inversion — so the corridor's feasible
// set equals the true feasible set, and the shortest path through it
// minimizes ∫φ(S′(t))dt for every convex φ simultaneously (why the YDS
// schedule does not depend on the power exponent). The anchor-and-scan
// below re-scans at most the remaining gates per emitted segment: O(n²),
// the Li–Yao–Yuan bound, on every instance the experiments construct.
//
// General instances (crossed deadlines) fall back to Yao–Demers–Shenker
// critical-interval peeling — repeatedly extract the densest (release,
// deadline) window — with free-time bookkeeping in original time instead
// of the classical interval-collapsing, at O(n³)-ish worst case. The
// randomized differential suite cross-checks the two implementations
// against each other and against an independent O(n⁴) reference.

// OracleJob is one unit of obligated work for the offline oracle: Work
// (in full-speed units: 1.0 is one fully-busy interval at relative speed
// 1) released at Release and due at Due, on an arbitrary continuous time
// axis (the trace adapter uses interval indices).
type OracleJob struct {
	Release float64
	Due     float64
	Work    float64
}

// SpeedSegment is one constant-speed piece of an oracle schedule.
type SpeedSegment struct {
	Start, End float64
	Speed      float64
}

// Schedule is a piecewise-constant speed function, contiguous and ordered.
type Schedule []SpeedSegment

// validateJobs rejects malformed instances.
func validateJobs(jobs []OracleJob) error {
	for i, j := range jobs {
		if math.IsNaN(j.Release) || math.IsNaN(j.Due) || math.IsNaN(j.Work) {
			return fmt.Errorf("policy: oracle job %d has NaN fields", i)
		}
		if j.Work < 0 {
			return fmt.Errorf("policy: oracle job %d has negative work %v", i, j.Work)
		}
		if j.Work > 0 && j.Due <= j.Release {
			return fmt.Errorf("policy: oracle job %d due %v at or before release %v",
				i, j.Due, j.Release)
		}
	}
	return nil
}

// OptimalSchedule computes the optimal continuous schedule for the job
// set. Zero-work jobs are ignored; an empty effective instance yields an
// empty schedule. The returned segments tile [min release, max due]
// contiguously (idle stretches appear as zero-speed segments), and total
// service equals total work exactly up to float accumulation.
func OptimalSchedule(jobs []OracleJob) (Schedule, error) {
	if err := validateJobs(jobs); err != nil {
		return nil, err
	}
	live := make([]OracleJob, 0, len(jobs))
	for _, j := range jobs {
		if j.Work > 0 {
			live = append(live, j)
		}
	}
	if len(live) == 0 {
		return Schedule{}, nil
	}
	sort.Slice(live, func(a, b int) bool {
		if live[a].Release != live[b].Release {
			return live[a].Release < live[b].Release
		}
		return live[a].Due < live[b].Due
	})
	agreeable := true
	for i := 1; i < len(live); i++ {
		if live[i].Due < live[i-1].Due {
			agreeable = false
			break
		}
	}
	if agreeable {
		return tautString(live), nil
	}
	return ydsPeel(live)
}

// tautString solves an agreeable instance as the shortest path through
// the cumulative-service corridor (see the file comment for why the
// corridor is exact here).
func tautString(live []OracleJob) Schedule {
	// Gate grid: every release and deadline, deduplicated and sorted.
	times := make([]float64, 0, 2*len(live))
	for _, j := range live {
		times = append(times, j.Release, j.Due)
	}
	sort.Float64s(times)
	grid := times[:1]
	for _, t := range times[1:] {
		if t != grid[len(grid)-1] {
			grid = append(grid, t)
		}
	}
	m := len(grid)

	// Gate bounds. upper[k] = work released strictly before grid[k] (a job
	// released at t has had no time to run by t); lower[k] = work due at or
	// before grid[k]. Both staircases meet at (grid[m-1], W).
	upper := make([]float64, m)
	lower := make([]float64, m)
	for _, j := range live {
		// First gate strictly after the release: binary search.
		k := sort.SearchFloat64s(grid, j.Release)
		for kk := k + 1; kk < m; kk++ {
			upper[kk] += j.Work
		}
		k = sort.SearchFloat64s(grid, j.Due)
		for kk := k; kk < m; kk++ {
			lower[kk] += j.Work
		}
	}
	// The O(n·m) bound fill above is within the advertised O(n²) budget.

	// Taut string through the gates by anchor-and-scan: from the current
	// anchor, tighten the feasible slope window [lo, hi] gate by gate;
	// when a gate inverts the window the string bends at the gate that set
	// the binding bound, which becomes the next anchor.
	const eps = 1e-12
	var sched Schedule
	anchorK, anchorS := 0, 0.0
	for anchorK < m-1 {
		hi, lo := math.Inf(1), math.Inf(-1)
		hiIdx, loIdx := -1, -1
		bendK, bendS := -1, 0.0
		for k := anchorK + 1; k < m; k++ {
			dt := grid[k] - grid[anchorK]
			sHi := (upper[k] - anchorS) / dt
			sLo := (lower[k] - anchorS) / dt
			if sLo > hi+eps {
				// Must climb above the tightest ceiling: bend on it.
				bendK, bendS = hiIdx, upper[hiIdx]
				break
			}
			if sHi < lo-eps {
				// Must duck below the tightest floor: bend on it.
				bendK, bendS = loIdx, lower[loIdx]
				break
			}
			if sHi < hi {
				hi, hiIdx = sHi, k
			}
			if sLo > lo {
				lo, loIdx = sLo, k
			}
		}
		if bendK < 0 {
			// Reached the final gate, where lower == upper == W pinches
			// the window to the exact finishing slope.
			bendK, bendS = m-1, lower[m-1]
		}
		speed := (bendS - anchorS) / (grid[bendK] - grid[anchorK])
		if speed < 0 && speed > -eps {
			speed = 0
		}
		sched = append(sched, SpeedSegment{
			Start: grid[anchorK], End: grid[bendK], Speed: speed,
		})
		anchorK, anchorS = bendK, bendS
	}
	return sched
}

// ydsPeel solves a general instance by Yao–Demers–Shenker peeling. Instead
// of collapsing each extracted critical interval and remapping times, it
// keeps original time and measures candidate windows by their remaining
// free time; the two are equivalent, and this way the occupied pieces are
// already the final schedule segments.
func ydsPeel(live []OracleJob) (Schedule, error) {
	type piece struct{ a, b, speed float64 }
	var occ []piece // disjoint, sorted by a

	// freeParts returns the unoccupied sub-intervals of [a, b].
	freeParts := func(a, b float64) [][2]float64 {
		var parts [][2]float64
		at := a
		for _, p := range occ {
			if p.b <= a {
				continue
			}
			if p.a >= b {
				break
			}
			if p.a > at {
				parts = append(parts, [2]float64{at, math.Min(p.a, b)})
			}
			if p.b > at {
				at = p.b
			}
		}
		if at < b {
			parts = append(parts, [2]float64{at, b})
		}
		return parts
	}

	rem := append([]OracleJob(nil), live...)
	for len(rem) > 0 {
		// Candidate windows: distinct releases × distinct deadlines of the
		// remaining jobs, deterministic order.
		rels := make([]float64, 0, len(rem))
		dues := make([]float64, 0, len(rem))
		for _, j := range rem {
			rels = append(rels, j.Release)
			dues = append(dues, j.Due)
		}
		sort.Float64s(rels)
		sort.Float64s(dues)
		bestG, bestA, bestB := -1.0, 0.0, 0.0
		for _, a := range rels {
			for _, b := range dues {
				if b <= a {
					continue
				}
				w := 0.0
				for _, j := range rem {
					if j.Release >= a && j.Due <= b {
						w += j.Work
					}
				}
				if w <= 0 {
					continue
				}
				free := 0.0
				for _, fp := range freeParts(a, b) {
					free += fp[1] - fp[0]
				}
				if free <= 0 {
					return nil, fmt.Errorf("policy: oracle window [%v, %v] has work %v but no free time", a, b, w)
				}
				if g := w / free; g > bestG {
					bestG, bestA, bestB = g, a, b
				}
			}
		}
		if bestG < 0 {
			return nil, fmt.Errorf("policy: oracle found no critical interval for %d jobs", len(rem))
		}
		for _, fp := range freeParts(bestA, bestB) {
			p := piece{a: fp[0], b: fp[1], speed: bestG}
			at := sort.Search(len(occ), func(i int) bool { return occ[i].a > p.a })
			occ = append(occ, piece{})
			copy(occ[at+1:], occ[at:])
			occ[at] = p
		}
		kept := rem[:0]
		for _, j := range rem {
			if !(j.Release >= bestA && j.Due <= bestB) {
				kept = append(kept, j)
			}
		}
		rem = kept
	}

	// Tile [min release, max due] with the occupied pieces, zero-speed in
	// the gaps, merging adjacent equal-speed pieces.
	start, end := live[0].Release, live[0].Due
	for _, j := range live {
		start = math.Min(start, j.Release)
		end = math.Max(end, j.Due)
	}
	var sched Schedule
	emit := func(a, b, s float64) {
		if b <= a {
			return
		}
		if n := len(sched); n > 0 && sched[n-1].Speed == s && sched[n-1].End == a {
			sched[n-1].End = b
			return
		}
		sched = append(sched, SpeedSegment{Start: a, End: b, Speed: s})
	}
	at := start
	for _, p := range occ {
		emit(at, p.a, 0)
		emit(p.a, p.b, p.speed)
		at = math.Max(at, p.b)
	}
	emit(at, end, 0)
	return sched, nil
}

// Energy integrates the schedule's energy in the package's trace model
// (energy per unit work scales with speed², so a segment serving s·len
// work at speed s costs s³·len).
func (s Schedule) Energy() float64 {
	e := 0.0
	for _, seg := range s {
		e += (seg.End - seg.Start) * seg.Speed * seg.Speed * seg.Speed
	}
	return e
}

// TotalWork integrates the schedule's service.
func (s Schedule) TotalWork() float64 {
	w := 0.0
	for _, seg := range s {
		w += (seg.End - seg.Start) * seg.Speed
	}
	return w
}

// MaxSpeed reports the schedule's fastest segment (the instance's maximum
// density); 0 for an empty schedule.
func (s Schedule) MaxSpeed() float64 {
	max := 0.0
	for _, seg := range s {
		if seg.Speed > max {
			max = seg.Speed
		}
	}
	return max
}

// PerInterval resamples the schedule onto n unit intervals [i, i+1) by
// integrating the speed across each. For instances whose releases and
// deadlines are integers — everything the trace adapter produces — the
// segment boundaries are integral, so the per-interval speeds are exact,
// not averaged approximations.
func (s Schedule) PerInterval(n int) []float64 {
	out := make([]float64, n)
	for _, seg := range s {
		lo := int(math.Floor(seg.Start))
		if lo < 0 {
			lo = 0
		}
		for i := lo; i < n && float64(i) < seg.End; i++ {
			a := math.Max(seg.Start, float64(i))
			b := math.Min(seg.End, float64(i+1))
			if b > a {
				out[i] += (b - a) * seg.Speed
			}
		}
	}
	return out
}

// OracleFromTrace adapts a per-interval utilization trace (the package's
// standard recording: fractions of a fully-busy full-speed interval) into
// an oracle job instance: interval i's work is released at its start and
// due slack intervals after its end, clamped to the trace end so the
// instance stays comparable to schedules that stop at n. A negative slack
// selects Weiser's OPT assumption — every deadline at the trace end —
// which makes the oracle instance exactly the one OptSpeeds solves.
func OracleFromTrace(util []float64, slack int) []OracleJob {
	n := len(util)
	jobs := make([]OracleJob, 0, n)
	for i, u := range util {
		if u <= 0 {
			continue
		}
		due := float64(n)
		if slack >= 0 {
			due = math.Min(float64(i+1+slack), float64(n))
		}
		jobs = append(jobs, OracleJob{Release: float64(i), Due: due, Work: u})
	}
	return jobs
}

// VerifySchedule checks deadline feasibility by explicit simulation: work
// is served earliest-deadline-first at the schedule's speeds, and every
// job must complete by its due time. It returns the total work that
// misses (0 for a feasible schedule) and the number of late jobs;
// per-unit tolerances absorb float accumulation.
func VerifySchedule(jobs []OracleJob, sched Schedule) (missedWork float64, lateJobs int) {
	const tol = 1e-9
	type pending struct {
		due  float64
		left float64
	}
	live := make([]OracleJob, 0, len(jobs))
	for _, j := range jobs {
		if j.Work > 0 {
			live = append(live, j)
		}
	}
	sort.Slice(live, func(a, b int) bool { return live[a].Release < live[b].Release })

	// Merge segment boundaries and release times into one event sweep.
	var queue []pending // sorted by due
	next := 0
	admit := func(t float64) {
		for next < len(live) && live[next].Release <= t+tol {
			j := live[next]
			next++
			at := sort.Search(len(queue), func(i int) bool { return queue[i].due > j.Due })
			queue = append(queue, pending{})
			copy(queue[at+1:], queue[at:])
			queue[at] = pending{due: j.Due, left: j.Work}
		}
	}
	serve := func(from, to, speed float64) {
		for from < to-tol {
			admit(from)
			// Next instant the queue changes character: a release, or a
			// queued deadline passing (work served after it is late).
			slice := to
			if next < len(live) && live[next].Release < slice {
				slice = live[next].Release
			}
			for _, p := range queue {
				if p.due > from+tol {
					if p.due < slice {
						slice = p.due
					}
					break // due-sorted: later entries are no tighter
				}
			}
			cap := (slice - from) * speed
			for cap > tol && len(queue) > 0 {
				amt := math.Min(cap, queue[0].left)
				queue[0].left -= amt
				cap -= amt
				// The whole slice lies before any queued deadline, so
				// work is late exactly when its deadline already passed.
				if queue[0].due < from+tol && amt > tol {
					missedWork += amt
				}
				if queue[0].left <= tol {
					if queue[0].due < from+tol {
						lateJobs++
					}
					queue = queue[1:]
				}
			}
			from = slice
		}
	}
	for _, seg := range sched {
		serve(seg.Start, seg.End, seg.Speed)
	}
	admit(math.Inf(1))
	for _, p := range queue {
		if p.left > tol {
			missedWork += p.left
			lateJobs++
		}
	}
	return missedWork, lateJobs
}
