package policy

import (
	"math"
	"math/rand/v2"
	"testing"
)

// The randomized differential suite of ISSUE 8: the oracle is the
// instrument, and every other scheduler is measured against it. With
// unbounded speed every instance is feasible, so across seeded random
// instances the deadline-feasible family must (a) never miss a deadline
// and (b) never spend less energy than the oracle — a policy beating the
// oracle would disprove one implementation or the other.

func TestDifferentialOracleVsFeasibleFamily(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xD1FF, 0))
	algos := []struct {
		name   string
		speeds func([]OracleJob, int) []float64
	}{
		{"AVR", AVRSpeeds},
		{"OA", OASpeeds},
		{"BKP", BKPSpeeds},
	}
	const instances = 140
	for i := 0; i < instances; i++ {
		jobs := randomInstance(rng, 12)
		n := instanceHorizon(jobs)
		sched, err := OptimalSchedule(jobs)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if missed, late := VerifySchedule(jobs, sched); missed > 1e-6 || late != 0 {
			t.Fatalf("instance %d %+v: oracle misses %v work (%d jobs)", i, jobs, missed, late)
		}
		opt := sched.Energy()
		for _, a := range algos {
			speeds := a.speeds(jobs, n)
			sc := ScoreSpeeds(jobs, speeds, false)
			if sc.MissedWork > 1e-6 || sc.LateJobs != 0 {
				t.Fatalf("instance %d %+v: %s misses %v work (%d of %d jobs)",
					i, jobs, a.name, sc.MissedWork, sc.LateJobs, sc.Jobs)
			}
			if sc.Energy < opt-1e-6*(1+opt) {
				t.Fatalf("instance %d %+v: %s energy %v beats the oracle's %v",
					i, jobs, a.name, sc.Energy, opt)
			}
		}
	}
}

// TestDifferentialTraceInstances repeats the comparison on the agreeable
// instances the trace adapter produces (the taut-string code path), at
// trace-realistic sizes, with OptSpeeds in the lineup: on end-deadline
// instances the hull must tie the oracle, and with finite slack the
// oracle must still lower-bound everything.
func TestDifferentialTraceInstances(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x7ACE, 0))
	for trial := 0; trial < 40; trial++ {
		n := 20 + rng.IntN(200)
		util := make([]float64, n)
		for i := range util {
			if rng.Float64() < 0.4 {
				continue
			}
			util[i] = rng.Float64()
		}
		slack := 1 + rng.IntN(5)
		jobs := OracleFromTrace(util, slack)
		if len(jobs) == 0 {
			continue
		}
		sched, err := OptimalSchedule(jobs)
		if err != nil {
			t.Fatal(err)
		}
		if missed, late := VerifySchedule(jobs, sched); missed > 1e-6 || late != 0 {
			t.Fatalf("trial %d: oracle misses %v work (%d jobs)", trial, missed, late)
		}
		opt := sched.Energy()
		for _, a := range []struct {
			name   string
			speeds []float64
		}{
			{"AVR", AVRSpeeds(jobs, n)},
			{"OA", OASpeeds(jobs, n)},
			{"BKP", BKPSpeeds(jobs, n)},
		} {
			sc := ScoreSpeeds(jobs, a.speeds, false)
			if sc.MissedWork > 1e-6 || sc.LateJobs != 0 {
				t.Fatalf("trial %d: %s misses %v work (%d jobs)",
					trial, a.name, sc.MissedWork, sc.LateJobs)
			}
			if sc.Energy < opt-1e-6*(1+opt) {
				t.Fatalf("trial %d: %s energy %v beats oracle %v", trial, a.name, sc.Energy, opt)
			}
		}
		// OptSpeeds solves the slack=∞ relaxation, so its energy lower-
		// bounds even the oracle — and ties it when slack is infinite.
		speeds, err := OptSpeeds(util, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		res, err := EvaluateSpeeds(util, speeds, true)
		if err != nil {
			t.Fatal(err)
		}
		if res.Energy > opt+1e-6*(1+opt) {
			t.Fatalf("trial %d: hull relaxation energy %v above slack-%d oracle %v",
				trial, res.Energy, slack, opt)
		}
	}
}

// TestOptSpeedsFloorFeasibility is the ISSUE 8 floor-feasibility property
// test for OptSpeeds: at every interval boundary the remaining capacity
// must cover the remaining arrivals (no interior deficit that later
// segments cannot absorb), and the schedule must complete the whole trace
// (equal final totals, i.e. no missed work under deferral). The audit
// conclusion this pins: the minSpeed clamp only ever raises a hull slope,
// which adds service capacity, so no deficit carry exists to fix; the >1
// clamp can shave at most float ulps. Were either conclusion wrong, this
// test is the one that fails.
func TestOptSpeedsFloorFeasibility(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xF100A, 0))
	for trial := 0; trial < 120; trial++ {
		n := 10 + rng.IntN(300)
		util := make([]float64, n)
		for i := range util {
			switch {
			case rng.Float64() < 0.35: // idle
			case rng.Float64() < 0.2: // saturated
				util[i] = 1
			default:
				util[i] = rng.Float64()
			}
		}
		minSpeed := []float64{1e-6, 0.01, 0.2861, 0.9}[rng.IntN(4)]
		speeds, err := OptSpeeds(util, minSpeed)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, u := range util {
			total += u
		}
		// Remaining capacity must dominate remaining arrivals at every
		// boundary, scanned from the trace end.
		capacity, arrivals := 0.0, 0.0
		for i := n - 1; i >= 0; i-- {
			capacity += speeds[i]
			arrivals += util[i]
			if capacity < arrivals-1e-6*(1+total) {
				t.Fatalf("trial %d (floor %v): deficit at boundary %d: capacity %v < arrivals %v",
					trial, minSpeed, i, capacity, arrivals)
			}
		}
		res, err := EvaluateSpeeds(util, speeds, true)
		if err != nil {
			t.Fatal(err)
		}
		if res.MissedWork > 1e-6*(1+total) {
			t.Fatalf("trial %d (floor %v): OptSpeeds leaves %v work unserved",
				trial, minSpeed, res.MissedWork)
		}
	}
}

// TestOptSpeedsDifferentialVsOracle is the companion differential test:
// on the end-deadline instance OptSpeeds claims to solve, its schedule's
// energy must match the oracle's optimum (the floor's contribution made
// negligible), and must never fall below it — below the optimum would
// mean OptSpeeds under-serves.
func TestOptSpeedsDifferentialVsOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xD1FF2, 0))
	for trial := 0; trial < 60; trial++ {
		n := 10 + rng.IntN(200)
		util := make([]float64, n)
		for i := range util {
			if rng.Float64() < 0.3 {
				continue
			}
			util[i] = rng.Float64()
		}
		jobs := OracleFromTrace(util, -1)
		if len(jobs) == 0 {
			continue
		}
		sched, err := OptimalSchedule(jobs)
		if err != nil {
			t.Fatal(err)
		}
		opt := sched.Energy()
		speeds, err := OptSpeeds(util, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		res, err := EvaluateSpeeds(util, speeds, true)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Energy-opt) > 1e-6*(1+opt) {
			t.Fatalf("trial %d: OptSpeeds energy %v != oracle %v", trial, res.Energy, opt)
		}
	}
}
