package policy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOptSpeedsStretchesEvenly(t *testing.T) {
	// Early-arriving work can be deferred: {1,0,1,0} runs at a constant
	// half speed.
	util := []float64{1, 0, 1, 0}
	speeds, err := OptSpeeds(util, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range speeds {
		if math.Abs(s-0.5) > 1e-12 {
			t.Fatalf("OPT speeds = %v, want all 0.5", speeds)
		}
	}
	res, err := EvaluateSpeeds(util, speeds, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.MissedWork > 1e-9 {
		t.Errorf("OPT missed %v work", res.MissedWork)
	}
}

func TestOptSpeedsCannotRunWorkEarly(t *testing.T) {
	// Late-arriving work cannot be smoothed backwards in time: the hull
	// must hug the arrival curve.
	util := []float64{0, 0, 1, 1}
	speeds, err := OptSpeeds(util, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if speeds[0] > 0.02 || speeds[1] > 0.02 {
		t.Fatalf("OPT runs before work arrives: %v", speeds)
	}
	if math.Abs(speeds[2]-1) > 1e-9 || math.Abs(speeds[3]-1) > 1e-9 {
		t.Fatalf("OPT too slow for the late burst: %v", speeds)
	}
	res, _ := EvaluateSpeeds(util, speeds, true)
	if res.MissedWork > 1e-9 {
		t.Errorf("OPT missed %v work", res.MissedWork)
	}
}

func TestOptSpeedsMixedShape(t *testing.T) {
	// Decreasing-pressure trace: a heavy prefix then quiet. OPT's speeds
	// must be nonincreasing (convex hull slopes) and never miss work.
	util := []float64{1, 1, 0.5, 0, 0.25, 0, 0, 0}
	speeds, err := OptSpeeds(util, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(speeds); i++ {
		if speeds[i] > speeds[i-1]+1e-12 {
			t.Fatalf("OPT speeds not nonincreasing under front-loaded demand: %v", speeds)
		}
	}
	res, _ := EvaluateSpeeds(util, speeds, true)
	if res.MissedWork > 1e-9 {
		t.Errorf("OPT missed %v", res.MissedWork)
	}
}

func TestOptSpeedsFloor(t *testing.T) {
	speeds, err := OptSpeeds([]float64{0, 0, 0}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range speeds {
		if s != 0.25 {
			t.Fatalf("idle-trace OPT speed = %v, want the 0.25 floor", s)
		}
	}
}

func TestFutureSpeedsMeetDemandExactly(t *testing.T) {
	util := []float64{0.2, 0.8, 0.4}
	speeds, err := FutureSpeeds(util, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.2, 0.8, 0.4}
	for i := range want {
		if speeds[i] != want[i] {
			t.Fatalf("FUTURE speeds = %v, want %v", speeds, want)
		}
	}
	res, _ := EvaluateSpeeds(util, speeds, false)
	if res.MissedWork != 0 {
		t.Errorf("FUTURE missed %v with perfect lookahead", res.MissedWork)
	}
}

func TestPastSpeedsLagOneBehind(t *testing.T) {
	util := []float64{0.2, 0.8, 0.4}
	speeds, err := PastSpeeds(util, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.0, 0.2, 0.8}
	for i := range want {
		if speeds[i] != want[i] {
			t.Fatalf("PAST speeds = %v, want %v", speeds, want)
		}
	}
	// The lag costs it: the 0.8 interval ran at speed 0.2.
	res, _ := EvaluateSpeeds(util, speeds, false)
	if math.Abs(res.MissedWork-0.6) > 1e-12 {
		t.Errorf("PAST missed %v, want 0.6", res.MissedWork)
	}
}

func TestTraceValidation(t *testing.T) {
	if _, err := OptSpeeds(nil, 0.1); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := OptSpeeds([]float64{1.5}, 0.1); err == nil {
		t.Error("out-of-range utilization accepted")
	}
	if _, err := OptSpeeds([]float64{0.5}, 0); err == nil {
		t.Error("zero floor accepted")
	}
	if _, err := FutureSpeeds([]float64{-0.1}, 0.1); err == nil {
		t.Error("negative utilization accepted")
	}
	if _, err := FutureSpeeds([]float64{0.5}, 1.5); err == nil {
		t.Error("floor above 1 accepted")
	}
	if _, err := PastSpeeds([]float64{0.5}, 2); err == nil {
		t.Error("floor above 1 accepted")
	}
	if _, err := PastSpeeds(nil, 0.5); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestEvaluateSpeedsInelastic(t *testing.T) {
	util := []float64{0.5, 1.0}
	res, err := EvaluateSpeeds(util, []float64{1, 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-1.5) > 1e-12 || res.MissedWork != 0 {
		t.Errorf("full-speed result = %+v", res)
	}
	res, err = EvaluateSpeeds(util, []float64{0.5, 0.5}, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MissedWork-0.5) > 1e-12 {
		t.Errorf("missed work = %v, want 0.5", res.MissedWork)
	}
	if math.Abs(res.Energy-(0.5*0.25+0.5*0.25)) > 1e-12 {
		t.Errorf("energy = %v", res.Energy)
	}
}

func TestEvaluateSpeedsDeferred(t *testing.T) {
	// With deferral, a half-speed schedule completes {1,0} fully.
	res, err := EvaluateSpeeds([]float64{1, 0}, []float64{0.5, 0.5}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.MissedWork > 1e-12 {
		t.Errorf("deferred evaluation missed %v", res.MissedWork)
	}
	if math.Abs(res.Energy-1*0.25) > 1e-12 {
		t.Errorf("energy = %v, want 0.25", res.Energy)
	}
	// Backlog left at the end counts as missed.
	res, err = EvaluateSpeeds([]float64{1, 1}, []float64{0.5, 0.5}, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MissedWork-1.0) > 1e-12 {
		t.Errorf("end backlog = %v, want 1.0", res.MissedWork)
	}
}

func TestEvaluateSpeedsErrors(t *testing.T) {
	if _, err := EvaluateSpeeds([]float64{0.5}, []float64{0.5, 0.5}, false); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := EvaluateSpeeds([]float64{0.5}, []float64{0}, false); err == nil {
		t.Error("zero speed accepted")
	}
	if _, err := EvaluateSpeeds([]float64{0.5}, []float64{1.5}, false); err == nil {
		t.Error("speed above 1 accepted")
	}
	if _, err := EvaluateSpeeds(nil, nil, false); err == nil {
		t.Error("empty trace accepted")
	}
}

// TestWeiserOrdering reproduces the qualitative result of Weiser et al.
// that motivated the whole line of work: with deferral allowed, OPT uses
// the least energy of the three and misses nothing; PAST, lagging one
// interval behind, leaves work undone that FUTURE's lookahead completes.
func TestWeiserOrdering(t *testing.T) {
	util := []float64{
		0.9, 0.1, 0.8, 0.2, 1.0, 0.0, 0.7, 0.3, 0.95, 0.05,
		0.6, 0.4, 1.0, 1.0, 0.1, 0.0, 0.5, 0.9, 0.2, 0.8,
	}
	const floor = 0.05
	opt, _ := OptSpeeds(util, floor)
	fut, _ := FutureSpeeds(util, floor)
	pst, _ := PastSpeeds(util, floor)

	eOpt, _ := EvaluateSpeeds(util, opt, true)
	eFut, _ := EvaluateSpeeds(util, fut, false)
	ePst, _ := EvaluateSpeeds(util, pst, false)

	if eOpt.Energy > eFut.Energy {
		t.Errorf("OPT energy %.4f exceeds FUTURE %.4f", eOpt.Energy, eFut.Energy)
	}
	if eOpt.MissedWork > 1e-9 || eFut.MissedWork > 1e-9 {
		t.Errorf("clairvoyant schedules missed work: OPT %v, FUTURE %v",
			eOpt.MissedWork, eFut.MissedWork)
	}
	if ePst.MissedWork <= 0 {
		t.Error("PAST missed no work on a bursty trace; the lag should cost it")
	}
}

// Property: OPT never misses work and never exceeds full-speed energy.
func TestOptNeverWorseThanFullSpeedProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		util := make([]float64, len(raw))
		full := make([]float64, len(raw))
		for i, v := range raw {
			util[i] = float64(v) / 255
			full[i] = 1
		}
		opt, err := OptSpeeds(util, 0.01)
		if err != nil {
			return false
		}
		eOpt, err1 := EvaluateSpeeds(util, opt, true)
		eFull, err2 := EvaluateSpeeds(util, full, false)
		if err1 != nil || err2 != nil {
			return false
		}
		return eOpt.MissedWork < 1e-6 && eOpt.Energy <= eFull.Energy+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: OPT speeds form a feasible schedule — the cumulative service
// never outruns the cumulative arrivals.
func TestOptFeasibleProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		util := make([]float64, len(raw))
		for i, v := range raw {
			util[i] = float64(v) / 255
		}
		speeds, err := OptSpeeds(util, 0.001)
		if err != nil {
			return false
		}
		// Simulate with deferral; the backlog-respecting evaluator
		// enforces causality, so "no missed work" certifies feasibility.
		res, err := EvaluateSpeeds(util, speeds, true)
		return err == nil && res.MissedWork < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
