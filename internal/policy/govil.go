package policy

// This file implements the predictor family of Govil, Chan and Wasserman
// ("Comparing algorithms for dynamic speed-setting of a low-power CPU",
// MobiCom 1995), which the paper discusses as the broadest prior study of
// interval heuristics. Where the published descriptions under-specify
// details, the implementations follow the stated intent and say so. All of
// them plug into the same Governor as PAST/AVG_N.

import (
	"fmt"
)

// Flat always predicts the same utilization — Govil's FLAT policy, which
// "tries to smooth the speed to a global average": paired with tight
// bounds it pins the clock at one level regardless of behaviour.
type Flat struct {
	// Target is the constant prediction, PP10K.
	Target int
}

// NewFlat returns a FLAT predictor. The target is clamped into range.
func NewFlat(target int) *Flat { return &Flat{Target: clampUtil(target)} }

// Observe implements Predictor.
func (f *Flat) Observe(int) int { return f.Target }

// Weighted implements Predictor.
func (f *Flat) Weighted() int { return f.Target }

// Reset implements Predictor.
func (f *Flat) Reset() {}

// Name implements Predictor.
func (f *Flat) Name() string { return fmt.Sprintf("FLAT_%d", f.Target/100) }

// LongShort combines a long-term and a short-term window average,
// weighting the short term more heavily (3:1, per Govil's description of
// favouring recent behaviour while remembering the longer trend).
type LongShort struct {
	long, short *SimpleWindow
}

// Default window sizes: 12 quanta of history against the last 3.
const (
	longWindow  = 12
	shortWindow = 3
)

// NewLongShort returns the LONG_SHORT predictor with the standard windows.
func NewLongShort() *LongShort {
	return &LongShort{
		long:  MustSimpleWindow(longWindow),
		short: MustSimpleWindow(shortWindow),
	}
}

// Observe implements Predictor.
func (l *LongShort) Observe(util int) int {
	l.long.Observe(util)
	l.short.Observe(util)
	return l.Weighted()
}

// Weighted implements Predictor: (3·short + long) / 4.
func (l *LongShort) Weighted() int {
	return (3*l.short.Weighted() + l.long.Weighted()) / 4
}

// Reset implements Predictor.
func (l *LongShort) Reset() {
	l.long.Reset()
	l.short.Reset()
}

// Name implements Predictor.
func (l *LongShort) Name() string { return "LONG_SHORT" }

// history is a small ring of recent utilizations shared by the
// pattern-matching predictors.
type history struct {
	buf []int
	n   int // total observations
}

func newHistory(size int) *history { return &history{buf: make([]int, size)} }

func (h *history) add(u int) {
	h.buf[h.n%len(h.buf)] = u
	h.n++
}

// at returns the utilization observed i steps ago (0 = most recent). It
// reports false when the history does not reach that far.
func (h *history) at(i int) (int, bool) {
	if i < 0 || i >= len(h.buf) || i >= h.n {
		return 0, false
	}
	return h.buf[(h.n-1-i)%len(h.buf)], true
}

func (h *history) len() int {
	if h.n < len(h.buf) {
		return h.n
	}
	return len(h.buf)
}

// Cycle looks for a periodic cycle in the recent quanta and, when one
// explains the window well, predicts the next quantum from the
// corresponding phase of the cycle; otherwise it falls back to an AVG
// estimate. This targets exactly the workloads of Section 5.3: periodic
// demand that AVG_N can only smear.
type Cycle struct {
	hist     *history
	fallback *AvgN
	// MaxPeriod bounds the cycle lengths tried (2..MaxPeriod).
	MaxPeriod int
	// Tolerance is the mean absolute per-quantum mismatch (PP10K) below
	// which a candidate period is accepted.
	Tolerance int

	lastPrediction int
	// Detected reports the period found on the last observation, 0 if
	// none.
	Detected int
}

// NewCycle returns a CYCLE predictor with a 32-quantum window, periods up
// to 16, and a 5-point tolerance.
func NewCycle() *Cycle {
	return &Cycle{
		hist:      newHistory(32),
		fallback:  MustAvgN(3),
		MaxPeriod: 16,
		Tolerance: 500,
	}
}

// Observe implements Predictor.
func (c *Cycle) Observe(util int) int {
	u := clampUtil(util)
	c.hist.add(u)
	c.fallback.Observe(u)
	c.Detected = c.detect()
	if c.Detected == 0 {
		c.lastPrediction = c.fallback.Weighted()
		return c.lastPrediction
	}
	// The next quantum repeats the value one period back in the cycle:
	// the sample (period-1) steps before the most recent one.
	v, ok := c.hist.at(c.Detected - 1)
	if !ok {
		c.lastPrediction = c.fallback.Weighted()
		return c.lastPrediction
	}
	c.lastPrediction = v
	return v
}

// detect returns the shortest period that explains the window within
// tolerance, or 0.
func (c *Cycle) detect() int {
	n := c.hist.len()
	for period := 2; period <= c.MaxPeriod; period++ {
		// Need at least three repetitions to believe a cycle.
		if n < 3*period {
			continue
		}
		var err, count int
		for i := 0; i+period < n; i++ {
			a, _ := c.hist.at(i)
			b, _ := c.hist.at(i + period)
			d := a - b
			if d < 0 {
				d = -d
			}
			err += d
			count++
		}
		if count > 0 && err/count <= c.Tolerance {
			return period
		}
	}
	return 0
}

// Weighted implements Predictor.
func (c *Cycle) Weighted() int { return c.lastPrediction }

// Reset implements Predictor.
func (c *Cycle) Reset() {
	c.hist = newHistory(len(c.hist.buf))
	c.fallback.Reset()
	c.lastPrediction = 0
	c.Detected = 0
}

// Name implements Predictor.
func (c *Cycle) Name() string { return "CYCLE" }

// Pattern searches the recent history for the most recent earlier
// occurrence of the last few quanta and predicts the value that followed
// it — Govil's generalization of CYCLE to non-periodic but recurring
// behaviour.
type Pattern struct {
	hist     *history
	fallback *AvgN
	// Length is the pattern length matched.
	Length int
	// Tolerance is the per-quantum mismatch allowed within a match.
	Tolerance int

	lastPrediction int
	// Matched reports whether the last observation found a pattern.
	Matched bool
}

// NewPattern returns a PATTERN predictor with a 32-quantum window,
// 4-quantum patterns, and a 5-point tolerance.
func NewPattern() *Pattern {
	return &Pattern{
		hist:      newHistory(32),
		fallback:  MustAvgN(3),
		Length:    4,
		Tolerance: 500,
	}
}

// Observe implements Predictor.
func (p *Pattern) Observe(util int) int {
	u := clampUtil(util)
	p.hist.add(u)
	p.fallback.Observe(u)
	p.Matched = false
	n := p.hist.len()
	// Slide back through history looking for the most recent earlier
	// match of the final Length quanta.
	for shift := 1; shift+p.Length < n; shift++ {
		ok := true
		for i := 0; i < p.Length; i++ {
			a, _ := p.hist.at(i)
			b, okB := p.hist.at(i + shift)
			if !okB {
				ok = false
				break
			}
			d := a - b
			if d < 0 {
				d = -d
			}
			if d > p.Tolerance {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// The value that followed the earlier occurrence.
		v, okV := p.hist.at(shift - 1)
		if !okV {
			break
		}
		p.Matched = true
		p.lastPrediction = v
		return v
	}
	p.lastPrediction = p.fallback.Weighted()
	return p.lastPrediction
}

// Weighted implements Predictor.
func (p *Pattern) Weighted() int { return p.lastPrediction }

// Reset implements Predictor.
func (p *Pattern) Reset() {
	p.hist = newHistory(len(p.hist.buf))
	p.fallback.Reset()
	p.lastPrediction = 0
	p.Matched = false
}

// Name implements Predictor.
func (p *Pattern) Name() string { return "PATTERN" }

// Peak encodes Govil's narrow-peaks heuristic: utilization spikes tend to
// be narrow, so a rise predicts an imminent fall back to the pre-rise
// level, while falling or steady utilization predicts itself.
type Peak struct {
	prev, cur      int
	seen           int
	lastPrediction int
}

// NewPeak returns a PEAK predictor.
func NewPeak() *Peak { return &Peak{} }

// Observe implements Predictor.
func (p *Peak) Observe(util int) int {
	u := clampUtil(util)
	p.prev, p.cur = p.cur, u
	p.seen++
	if p.seen >= 2 && p.cur > p.prev {
		// Rising: expect the peak to be narrow and fall back.
		p.lastPrediction = p.prev
	} else {
		p.lastPrediction = p.cur
	}
	return p.lastPrediction
}

// Weighted implements Predictor.
func (p *Peak) Weighted() int { return p.lastPrediction }

// Reset implements Predictor.
func (p *Peak) Reset() { *p = Peak{} }

// Name implements Predictor.
func (p *Peak) Name() string { return "PEAK" }
