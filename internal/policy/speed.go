package policy

import "clocksched/internal/cpu"

// SpeedSetter maps a scale-up or scale-down decision onto the SA-1100's
// discrete clock steps. "Deciding how much to scale the processor clock is
// separate from the decision of when to scale" — separate setters may be
// used for the two directions.
type SpeedSetter interface {
	// Up returns the step to use after a scale-up decision at s.
	Up(s cpu.Step) cpu.Step
	// Down returns the step to use after a scale-down decision at s.
	Down(s cpu.Step) cpu.Step
	// Name identifies the setter: "one", "double", or "peg".
	Name() string
}

// One increments or decrements the clock step by one.
type One struct{}

// Up implements SpeedSetter.
func (One) Up(s cpu.Step) cpu.Step { return (s + 1).Clamp() }

// Down implements SpeedSetter.
func (One) Down(s cpu.Step) cpu.Step { return (s - 1).Clamp() }

// Name implements SpeedSetter.
func (One) Name() string { return "one" }

// Double tries to double (or halve) the clock step. Since the lowest clock
// step on the Itsy is zero, the step index is incremented before doubling,
// exactly as the paper describes; halving inverts that mapping.
type Double struct{}

// Up implements SpeedSetter.
func (Double) Up(s cpu.Step) cpu.Step { return ((s + 1) * 2).Clamp() }

// Down implements SpeedSetter.
func (Double) Down(s cpu.Step) cpu.Step {
	down := (s+1)/2 - 1
	if down < cpu.MinStep {
		down = cpu.MinStep
	}
	return down
}

// Name implements SpeedSetter.
func (Double) Name() string { return "double" }

// Peg sets the clock to the highest (or lowest) value.
type Peg struct{}

// Up implements SpeedSetter.
func (Peg) Up(cpu.Step) cpu.Step { return cpu.MaxStep }

// Down implements SpeedSetter.
func (Peg) Down(cpu.Step) cpu.Step { return cpu.MinStep }

// Name implements SpeedSetter.
func (Peg) Name() string { return "peg" }

// SetterByName returns the named speed setter, or false if the name is
// unknown. Command-line tools use it to parse policy specifications.
func SetterByName(name string) (SpeedSetter, bool) {
	switch name {
	case "one":
		return One{}, true
	case "double":
		return Double{}, true
	case "peg":
		return Peg{}, true
	default:
		return nil, false
	}
}
