package policy

import (
	"strings"
	"testing"

	"clocksched/internal/cpu"
	"clocksched/internal/sim"
)

// seesaw is a pathological policy that alternates scale-up and scale-down
// every quantum — the flip-flop pattern the oscillation detector exists for.
type seesaw struct{ up bool }

func (s *seesaw) OnQuantum(_ sim.Time, _ int, cur cpu.Step, v cpu.Voltage) (cpu.Step, cpu.Voltage) {
	s.up = !s.up
	if s.up {
		return (cur + 1).Clamp(), v
	}
	return (cur - 1).Clamp(), v
}

// stuck always holds the current step, whatever the load.
type stuck struct{ resets int }

func (s *stuck) OnQuantum(_ sim.Time, _ int, cur cpu.Step, v cpu.Voltage) (cpu.Step, cpu.Voltage) {
	return cur, v
}
func (s *stuck) Reset() { s.resets++ }

func TestWatchdogValidation(t *testing.T) {
	if _, err := NewWatchdog(nil, WatchdogConfig{}); err == nil {
		t.Error("nil inner accepted")
	}
	bad := []WatchdogConfig{
		{Window: 1},
		{Window: 4, MaxReversals: 4},
		{PegQuanta: -1},
		{PegUtil: FullUtil + 1},
		{MissStreak: -1},
		{SafeQuanta: 10, MaxSafeQuanta: 5},
	}
	for i, c := range bad {
		if _, err := NewWatchdog(&stuck{}, c); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	w := MustWatchdog(&stuck{}, WatchdogConfig{})
	if w.Config() != DefaultWatchdogConfig() {
		t.Errorf("zero config did not default: %+v", w.Config())
	}
}

func TestWatchdogTripsOnOscillation(t *testing.T) {
	w := MustWatchdog(&seesaw{}, WatchdogConfig{Window: 8, MaxReversals: 4, SafeQuanta: 10})
	cur := cpu.Step(5)
	tripped := -1
	for q := 0; q < 20; q++ {
		s, v := w.OnQuantum(0, 5000, cur, cpu.VHigh)
		if w.InSafeMode() {
			tripped = q
			if s != cpu.MaxStep || v != cpu.VHigh {
				t.Fatalf("safe mode returned %v/%v", s, v)
			}
			break
		}
		cur = s
	}
	// The seesaw reverses every quantum, so 4 reversals accumulate within
	// 5 decisions of the first direction change.
	if tripped < 0 || tripped > 8 {
		t.Fatalf("oscillation tripped at quantum %d, want within 8", tripped)
	}
	if tr := w.Trips(); tr.Oscillation != 1 || tr.Total() != 1 {
		t.Errorf("trips = %+v", tr)
	}
}

func TestWatchdogTripsOnPegging(t *testing.T) {
	w := MustWatchdog(&stuck{}, WatchdogConfig{PegQuanta: 5, SafeQuanta: 10})
	for q := 0; q < 4; q++ {
		if s, _ := w.OnQuantum(0, FullUtil, cpu.MinStep, cpu.VHigh); s != cpu.MinStep {
			t.Fatalf("quantum %d altered the decision to %v", q, s)
		}
	}
	if s, _ := w.OnQuantum(0, FullUtil, cpu.MinStep, cpu.VHigh); s != cpu.MaxStep {
		t.Fatalf("5th saturated quantum at MinStep did not trip: step %v", s)
	}
	if tr := w.Trips(); tr.Pegging != 1 {
		t.Errorf("trips = %+v", tr)
	}
	// An idle quantum clears the run: no trip at higher steps or low util.
	w2 := MustWatchdog(&stuck{}, WatchdogConfig{PegQuanta: 5, SafeQuanta: 10})
	for q := 0; q < 40; q++ {
		util := FullUtil
		if q%4 == 3 {
			util = 1000
		}
		w2.OnQuantum(0, util, cpu.MinStep, cpu.VHigh)
	}
	if w2.Trips().Total() != 0 {
		t.Errorf("interrupted peg runs tripped: %+v", w2.Trips())
	}
}

func TestWatchdogTripsOnMissStreak(t *testing.T) {
	w := MustWatchdog(&stuck{}, WatchdogConfig{MissStreak: 3, SafeQuanta: 10})
	w.NoteDeadline(true)
	w.NoteDeadline(true)
	w.NoteDeadline(false) // on-time clears the streak
	w.NoteDeadline(true)
	w.NoteDeadline(true)
	if w.InSafeMode() {
		t.Fatal("tripped before streak complete")
	}
	w.NoteDeadline(true)
	if !w.InSafeMode() {
		t.Fatal("3-miss streak did not trip")
	}
	if tr := w.Trips(); tr.MissStreak != 1 {
		t.Errorf("trips = %+v", tr)
	}
	// Misses reported while already degraded do not re-trip.
	w.NoteDeadline(true)
	w.NoteDeadline(true)
	w.NoteDeadline(true)
	if w.Trips().Total() != 1 {
		t.Errorf("safe-mode misses re-tripped: %+v", w.Trips())
	}
}

func TestWatchdogReadmitsAndEscalates(t *testing.T) {
	inner := &stuck{}
	w := MustWatchdog(inner, WatchdogConfig{PegQuanta: 3, SafeQuanta: 4, MaxSafeQuanta: 8})
	peg := func() (quanta int) {
		for q := 0; q < 100; q++ {
			w.OnQuantum(0, FullUtil, cpu.MinStep, cpu.VHigh)
			if w.InSafeMode() {
				return q + 1
			}
		}
		t.Fatal("never tripped")
		return 0
	}
	safeSpan := func() (quanta int) {
		for q := 0; q < 100; q++ {
			if s, _ := w.OnQuantum(0, 0, cpu.MaxStep, cpu.VHigh); s != cpu.MaxStep {
				t.Fatalf("safe mode returned %v", s)
			}
			if !w.InSafeMode() {
				return q + 1
			}
		}
		t.Fatal("never re-admitted")
		return 0
	}

	peg()
	first := safeSpan()
	if first != 4 {
		t.Errorf("first safe hold = %d quanta, want 4", first)
	}
	if inner.resets != 1 {
		t.Errorf("inner resets after readmit = %d, want 1", inner.resets)
	}
	peg()
	second := safeSpan()
	if second != 8 {
		t.Errorf("second safe hold = %d quanta, want 8 (doubled)", second)
	}
	peg()
	third := safeSpan()
	if third != 8 {
		t.Errorf("third safe hold = %d quanta, want 8 (capped)", third)
	}
	if tr := w.Trips(); tr.Pegging != 3 {
		t.Errorf("trips = %+v", tr)
	}

	w.Reset()
	if w.InSafeMode() || w.Trips().Total() != 0 {
		t.Error("Reset did not clear state")
	}
	peg()
	if got := safeSpan(); got != 4 {
		t.Errorf("post-Reset safe hold = %d quanta, want 4 (de-escalated)", got)
	}
}

func TestWatchdogTransparentWhenHealthy(t *testing.T) {
	// A well-behaved governor under a steady 60% load should never trip,
	// and every decision should pass through identically.
	mk := func() *Governor {
		return MustGovernor(MustAvgN(3), One{}, One{}, PeringBounds, false)
	}
	w := MustWatchdog(mk(), WatchdogConfig{})
	bare := mk()
	cur, bareCur := cpu.MaxStep, cpu.MaxStep
	for q := 0; q < 2000; q++ {
		util := 6000
		s, _ := w.OnQuantum(0, util, cur, cpu.VHigh)
		bs, _ := bare.OnQuantum(0, util, bareCur, cpu.VHigh)
		if s != bs {
			t.Fatalf("quantum %d: watchdog %v != bare %v", q, s, bs)
		}
		cur, bareCur = s, bs
	}
	if w.Trips().Total() != 0 {
		t.Errorf("healthy run tripped: %+v", w.Trips())
	}
}

func TestWatchdogName(t *testing.T) {
	w := MustWatchdog(MustGovernor(NewPAST(), Peg{}, Peg{}, BestBounds, false), WatchdogConfig{})
	if !strings.HasPrefix(w.Name(), "WATCHDOG(PAST") {
		t.Errorf("Name = %q", w.Name())
	}
	if MustWatchdog(&seesaw{}, WatchdogConfig{}).Name() != "WATCHDOG" {
		t.Error("anonymous inner should name plain WATCHDOG")
	}
}
