package policy_test

import (
	"fmt"

	"clocksched/internal/cpu"
	"clocksched/internal/policy"
)

// Reproduce the first rows of the paper's Table 1: AVG_9 observing
// fully-busy quanta.
func ExampleAvgN() {
	pred := policy.MustAvgN(9)
	for i := 0; i < 5; i++ {
		fmt.Println(pred.Observe(policy.FullUtil))
	}
	// Output:
	// 1000
	// 1900
	// 2710
	// 3439
	// 4095
}

// The paper's best policy: PAST prediction with peg-peg speed setting and
// 93%/98% hysteresis bounds.
func ExampleGovernor() {
	gov := policy.MustGovernor(policy.NewPAST(), policy.Peg{}, policy.Peg{},
		policy.BestBounds, false)
	// A fully busy quantum pegs the clock to the top...
	d := gov.Decide(10000, cpu.MinStep)
	fmt.Println(d.Step)
	// ...and an idle one pegs it to the bottom.
	d = gov.Decide(0, d.Step)
	fmt.Println(d.Step)
	// Output:
	// 206.4MHz
	// 59.0MHz
}

// The future-work deadline scheduler runs at the slowest speed that still
// meets every registered obligation.
func ExampleDeadlineScheduler() {
	ds := policy.NewDeadlineScheduler()
	// 120 million (worst-case) cycles due in one second: 132.7 MHz is the
	// slowest sufficient step.
	ds.Submit(120_000_000, 1_000_000)
	step, _ := ds.OnQuantum(0, 0, cpu.MaxStep, cpu.VHigh)
	fmt.Println(step)
	// Output:
	// 132.7MHz
}

// Weiser's offline OPT stretches early work into later idle time.
func ExampleOptSpeeds() {
	speeds, _ := policy.OptSpeeds([]float64{1, 0, 1, 0}, 0.01)
	fmt.Printf("%.2f\n", speeds)
	// Output:
	// [0.50 0.50 0.50 0.50]
}
