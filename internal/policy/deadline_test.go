package policy

import (
	"strings"
	"testing"

	"clocksched/internal/cpu"
	"clocksched/internal/sim"
)

func TestDeadlineSubmitOrdering(t *testing.T) {
	d := NewDeadlineScheduler()
	d.Submit(100, 300)
	d.Submit(100, 100)
	d.Submit(100, 200)
	if d.Pending() != 3 {
		t.Fatalf("pending = %d", d.Pending())
	}
	if d.jobs[0].Due != 100 || d.jobs[1].Due != 200 || d.jobs[2].Due != 300 {
		t.Errorf("jobs not sorted by due: %+v", d.jobs)
	}
}

func TestDeadlineSubmitIgnoresEmptyWork(t *testing.T) {
	d := NewDeadlineScheduler()
	id := d.Submit(0, 100)
	if id == 0 {
		t.Error("id not allocated")
	}
	if d.Pending() != 0 {
		t.Error("empty job queued")
	}
	d.Submit(-5, 100)
	if d.Pending() != 0 {
		t.Error("negative job queued")
	}
}

func TestDeadlineComplete(t *testing.T) {
	d := NewDeadlineScheduler()
	a := d.Submit(100, 100)
	b := d.Submit(100, 200)
	d.Complete(a)
	if d.Pending() != 1 || d.jobs[0].ID != b {
		t.Errorf("after complete: %+v", d.jobs)
	}
	d.Complete(9999) // unknown id: no-op
	if d.Pending() != 1 {
		t.Error("unknown Complete removed a job")
	}
}

func TestDeadlineRequiredKHz(t *testing.T) {
	d := NewDeadlineScheduler()
	// 59,000 kcycles due in 1 s needs exactly 59 MHz.
	d.Submit(59_000_000, sim.Second)
	if got := d.RequiredKHz(0); got != 59_000 {
		t.Errorf("RequiredKHz = %d, want 59000", got)
	}
	// Add a tighter job: 103,200 kcycles more due at 500 ms: by then
	// 103.2M+0 (the 1s job is later)... cumulative ordering: the 500ms
	// job comes first, needing 103.2M/0.5s = 206.4 MHz.
	d.Submit(103_200_000, 500*sim.Millisecond)
	if got := d.RequiredKHz(0); got != 206_400 {
		t.Errorf("RequiredKHz = %d, want 206400", got)
	}
}

func TestDeadlineRequiredKHzCumulative(t *testing.T) {
	// Two jobs each feasible alone can be infeasible together: the
	// prefix-sum test must catch the later deadline.
	d := NewDeadlineScheduler()
	d.Submit(59_000_000, sim.Second)    // 59 MHz alone
	d.Submit(118_000_000, 2*sim.Second) // 59 MHz alone
	// Together: by t=2s we owe 177M cycles → 88.5 MHz.
	if got := d.RequiredKHz(0); got != 88_500 {
		t.Errorf("RequiredKHz = %d, want 88500", got)
	}
}

func TestDeadlineOnQuantumPicksSlowestSufficientStep(t *testing.T) {
	d := NewDeadlineScheduler()
	d.Submit(100_000_000, sim.Second) // needs 100 MHz → step 103.2
	s, v := d.OnQuantum(0, 0, cpu.MaxStep, cpu.VHigh)
	if s != cpu.Step(3) {
		t.Errorf("step = %v, want 103.2MHz", s)
	}
	if v != cpu.VHigh {
		t.Errorf("voltage = %v without scaling enabled", v)
	}
}

func TestDeadlineVoltageScaling(t *testing.T) {
	d := NewDeadlineScheduler()
	d.VoltageScale = true
	d.Submit(50_000_000, sim.Second) // 59 MHz suffices → 1.23 V allowed
	s, v := d.OnQuantum(0, 0, cpu.MaxStep, cpu.VHigh)
	if s != cpu.MinStep || v != cpu.VLow {
		t.Errorf("got %v @ %v, want 59MHz @ 1.23V", s, v)
	}
	// A demanding job forces the clock and voltage back up.
	d.Submit(400_000_000, 2*sim.Second)
	s, v = d.OnQuantum(0, 0, s, v)
	if s <= cpu.MaxLowVoltageStep || v != cpu.VHigh {
		t.Errorf("got %v @ %v, want a fast step @ 1.5V", s, v)
	}
}

func TestDeadlineIdleWithNoJobs(t *testing.T) {
	d := NewDeadlineScheduler()
	s, _ := d.OnQuantum(0, 0, cpu.MaxStep, cpu.VHigh)
	if s != cpu.MinStep {
		t.Errorf("no jobs but step = %v, want the slowest", s)
	}
}

func TestDeadlineRetire(t *testing.T) {
	d := NewDeadlineScheduler()
	// One quantum fully busy at 206.4 MHz retires 2.064M cycles.
	d.Submit(3_000_000, sim.Second)
	d.OnQuantum(10*sim.Millisecond, FullUtil, cpu.MaxStep, cpu.VHigh)
	if d.Pending() != 1 {
		t.Fatalf("pending = %d", d.Pending())
	}
	if got := d.jobs[0].Cycles; got != 3_000_000-2_064_000 {
		t.Errorf("remaining cycles = %d, want 936000", got)
	}
	// Another fully-busy quantum finishes it.
	d.OnQuantum(20*sim.Millisecond, FullUtil, cpu.MaxStep, cpu.VHigh)
	if d.Pending() != 0 {
		t.Errorf("job not retired: %+v", d.jobs)
	}
}

func TestDeadlineRetireSpansJobs(t *testing.T) {
	d := NewDeadlineScheduler()
	d.Submit(1_000_000, sim.Second)
	d.Submit(1_500_000, 2*sim.Second)
	// 2.064M cycles retire the whole first job and part of the second.
	d.OnQuantum(10*sim.Millisecond, FullUtil, cpu.MaxStep, cpu.VHigh)
	if d.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", d.Pending())
	}
	if got := d.jobs[0].Cycles; got != 1_500_000-(2_064_000-1_000_000) {
		t.Errorf("second job remaining = %d, want 436000", got)
	}
}

func TestDeadlineExpiry(t *testing.T) {
	d := NewDeadlineScheduler()
	id := d.Submit(1_000_000_000, 5*sim.Millisecond) // hopeless
	s, _ := d.OnQuantum(10*sim.Millisecond, 0, cpu.MinStep, cpu.VHigh)
	// The overdue job stays pending and pins the clock at the top until
	// the application completes it — the work still has to happen.
	if d.Pending() != 1 {
		t.Error("overdue job vanished; demand signal lost")
	}
	if s != cpu.MaxStep {
		t.Errorf("step = %v with an overdue job, want max", s)
	}
	if d.Expired != 1 {
		t.Errorf("Expired = %d, want 1", d.Expired)
	}
	// Expiry is counted once, not per quantum.
	d.OnQuantum(20*sim.Millisecond, 0, cpu.MaxStep, cpu.VHigh)
	if d.Expired != 1 {
		t.Errorf("Expired double-counted: %d", d.Expired)
	}
	// Completion releases the clock.
	d.Complete(id)
	s, _ = d.OnQuantum(30*sim.Millisecond, 0, cpu.MaxStep, cpu.VHigh)
	if s != cpu.MinStep {
		t.Errorf("step = %v after completion, want min", s)
	}
}

func TestDeadlinePastDuePegsMax(t *testing.T) {
	d := NewDeadlineScheduler()
	d.Submit(1000, 100)
	// now beyond due but before dropExpired is consulted.
	if got := d.RequiredKHz(100); got != cpu.MaxStep.KHz() {
		t.Errorf("RequiredKHz at due = %d, want max", got)
	}
}

func TestDeadlineNames(t *testing.T) {
	d := NewDeadlineScheduler()
	if d.Name() != "DEADLINE" {
		t.Errorf("Name = %q", d.Name())
	}
	d.VoltageScale = true
	if !strings.Contains(d.Name(), "voltage scaling") {
		t.Errorf("Name = %q", d.Name())
	}
	if !strings.Contains(d.String(), "pending=0") {
		t.Errorf("String = %q", d.String())
	}
}

// TestDeadlineSchedulerRunsSlowAndLate verifies the energy-scheduling
// property the paper distinguishes from an RTOS: the scheduler prefers the
// slowest feasible speed, meeting the deadline as late as possible.
func TestDeadlineSchedulerRunsSlowAndLate(t *testing.T) {
	d := NewDeadlineScheduler()
	// Work sized so 132.7 MHz exactly fits the horizon.
	cycles := int64(132_700) * 1000 // 1 s at 132.7 MHz, in cycles
	d.Submit(cycles*1000/1000, sim.Second)
	s, _ := d.OnQuantum(0, 0, cpu.MaxStep, cpu.VHigh)
	if s != cpu.Step(5) {
		t.Errorf("step = %v, want exactly 132.7MHz", s)
	}
	// Never faster than needed even when currently at max.
	if s2, _ := d.OnQuantum(0, 0, cpu.MaxStep, cpu.VHigh); s2 > cpu.Step(5) {
		t.Errorf("scheduler overshot to %v", s2)
	}
}
