package policy

import (
	"fmt"

	"clocksched/internal/cpu"
	"clocksched/internal/sim"
	"clocksched/internal/telemetry"
)

// QuantumPolicy is the per-quantum decision interface the watchdog
// supervises. It is structurally identical to the kernel's SpeedPolicy, so
// any installable policy (Governor, Proportional, DeadlineScheduler,
// Constant) can be wrapped without this package importing the kernel.
type QuantumPolicy interface {
	OnQuantum(now sim.Time, utilPP10K int, s cpu.Step, v cpu.Voltage) (cpu.Step, cpu.Voltage)
}

// WatchdogConfig tunes the supervisory detectors. The zero value selects
// the defaults below; explicit fields override individually.
type WatchdogConfig struct {
	// Window is how many recent quanta the oscillation detector examines.
	Window int
	// MaxReversals trips the oscillation detector: this many direction
	// reversals (an up-step after a down-step or vice versa) within
	// Window quanta means the policy is flip-flopping rather than
	// converging, burning a 200 µs PLL relock each time.
	MaxReversals int
	// PegQuanta trips the pegging detector: this many consecutive quanta
	// at the minimum clock step with utilization at or above PegUtil
	// means work is saturating a policy that refuses to speed up.
	PegQuanta int
	// PegUtil is the PP10K utilization the pegging detector considers
	// saturated.
	PegUtil int
	// MissStreak trips the deadline detector: this many consecutive late
	// deadlines reported via NoteDeadline.
	MissStreak int
	// SafeQuanta is how long the first trip holds safe mode before the
	// inner policy is re-admitted. Each further trip doubles the hold, up
	// to MaxSafeQuanta — the hysteresis that keeps a persistently broken
	// policy from flapping in and out of safe mode.
	SafeQuanta int
	// MaxSafeQuanta caps the escalation.
	MaxSafeQuanta int
}

// DefaultWatchdogConfig returns the standard detector settings: a 16-quantum
// oscillation window tripping at 6 reversals, pegging after 50 saturated
// quanta (half a second) at the minimum step, 8 straight missed deadlines,
// and a 100-quantum (1 s) initial safe hold escalating to 800.
func DefaultWatchdogConfig() WatchdogConfig {
	return WatchdogConfig{
		Window:        16,
		MaxReversals:  6,
		PegQuanta:     50,
		PegUtil:       9900,
		MissStreak:    8,
		SafeQuanta:    100,
		MaxSafeQuanta: 800,
	}
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	d := DefaultWatchdogConfig()
	if c.Window == 0 {
		c.Window = d.Window
	}
	if c.MaxReversals == 0 {
		c.MaxReversals = d.MaxReversals
	}
	if c.PegQuanta == 0 {
		c.PegQuanta = d.PegQuanta
	}
	if c.PegUtil == 0 {
		c.PegUtil = d.PegUtil
	}
	if c.MissStreak == 0 {
		c.MissStreak = d.MissStreak
	}
	if c.SafeQuanta == 0 {
		c.SafeQuanta = d.SafeQuanta
	}
	if c.MaxSafeQuanta == 0 {
		c.MaxSafeQuanta = 8 * c.SafeQuanta
	}
	return c
}

// Validate checks a fully-defaulted config for sanity.
func (c WatchdogConfig) Validate() error {
	c = c.withDefaults()
	switch {
	case c.Window < 2:
		return fmt.Errorf("policy: watchdog window %d is too short", c.Window)
	case c.MaxReversals < 1 || c.MaxReversals >= c.Window:
		return fmt.Errorf("policy: watchdog reversal threshold %d outside [1, window)", c.MaxReversals)
	case c.PegQuanta < 1:
		return fmt.Errorf("policy: watchdog peg threshold %d quanta", c.PegQuanta)
	case c.PegUtil < 1 || c.PegUtil > FullUtil:
		return fmt.Errorf("policy: watchdog peg utilization %d outside (0, %d]", c.PegUtil, FullUtil)
	case c.MissStreak < 1:
		return fmt.Errorf("policy: watchdog miss streak %d", c.MissStreak)
	case c.SafeQuanta < 1 || c.MaxSafeQuanta < c.SafeQuanta:
		return fmt.Errorf("policy: watchdog safe hold %d/%d quanta", c.SafeQuanta, c.MaxSafeQuanta)
	}
	return nil
}

// WatchdogTrips counts safe-mode entries by cause.
type WatchdogTrips struct {
	Oscillation int // step flip-flop within the window
	Pegging     int // saturated at minimum step
	MissStreak  int // consecutive late deadlines
}

// Total is the number of times the watchdog entered safe mode.
func (t WatchdogTrips) Total() int { return t.Oscillation + t.Pegging + t.MissStreak }

// Watchdog wraps a speed policy with a supervisory state machine. While the
// inner policy behaves, decisions pass through untouched. When a detector
// trips — sustained oscillation, pegging at the minimum step under load, or
// a missed-deadline streak — the watchdog degrades to the safe setting
// (maximum clock step at 1.5 V, the configuration that can never cause a
// deadline miss the hardware could have avoided) and holds it for an
// escalating number of quanta before resetting and re-admitting the inner
// policy.
//
// Watchdog itself satisfies QuantumPolicy and the kernel's SpeedPolicy, so
// it installs anywhere the policy it wraps does.
type Watchdog struct {
	inner QuantumPolicy
	cfg   WatchdogConfig

	// Oscillation detector: ring of the last Window decision directions
	// (+1 scale-up, −1 scale-down, 0 hold).
	dirs   []int8
	next   int
	filled int

	pegRun  int // consecutive saturated quanta at MinStep
	missRun int // consecutive late deadlines

	safe     bool
	safeLeft int // quanta of safe hold remaining
	hold     int // current escalation level, quanta
	trips    WatchdogTrips
	quanta   int // total quanta observed, for TrippedAt diagnostics

	// Telemetry; all nil (no-op) unless Instrument was called. reg is kept
	// for emitting trip/readmit events to the run-event stream.
	reg     *telemetry.Registry
	telOsc  *telemetry.Counter
	telPeg  *telemetry.Counter
	telMiss *telemetry.Counter
	telSafe *telemetry.Gauge
}

// Instrument attaches trip counters, the safe-mode gauge, and the event
// stream, and forwards the registry to the supervised policy when it is
// instrumentable too. A nil registry detaches everything.
func (w *Watchdog) Instrument(reg *telemetry.Registry) {
	w.reg = reg
	w.telOsc = reg.Counter(telemetry.MWatchdogOscillation)
	w.telPeg = reg.Counter(telemetry.MWatchdogPegging)
	w.telMiss = reg.Counter(telemetry.MWatchdogMissStreak)
	w.telSafe = reg.Gauge(telemetry.MWatchdogSafeMode)
	if in, ok := w.inner.(interface{ Instrument(*telemetry.Registry) }); ok {
		in.Instrument(reg)
	}
}

// NewWatchdog wraps inner with the given supervisory config (zero fields
// take defaults).
func NewWatchdog(inner QuantumPolicy, cfg WatchdogConfig) (*Watchdog, error) {
	if inner == nil {
		return nil, fmt.Errorf("policy: watchdog needs a policy to supervise")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Watchdog{
		inner: inner,
		cfg:   cfg,
		dirs:  make([]int8, cfg.Window),
		hold:  cfg.SafeQuanta,
	}, nil
}

// MustWatchdog is NewWatchdog that panics on error.
func MustWatchdog(inner QuantumPolicy, cfg WatchdogConfig) *Watchdog {
	w, err := NewWatchdog(inner, cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// Inner returns the supervised policy.
func (w *Watchdog) Inner() QuantumPolicy { return w.inner }

// Config returns the fully-defaulted supervisory config in effect.
func (w *Watchdog) Config() WatchdogConfig { return w.cfg }

// InSafeMode reports whether the watchdog is currently holding the safe
// setting.
func (w *Watchdog) InSafeMode() bool { return w.safe }

// Trips returns the per-cause safe-mode entry counts so far.
func (w *Watchdog) Trips() WatchdogTrips { return w.trips }

// Name describes the wrapped policy in the experiment tables.
func (w *Watchdog) Name() string {
	if n, ok := w.inner.(interface{ Name() string }); ok {
		return fmt.Sprintf("WATCHDOG(%s)", n.Name())
	}
	return "WATCHDOG"
}

// NoteDeadline feeds the deadline detector: late reports whether the
// deadline just completed missed its slack. A streak of MissStreak lates
// trips safe mode immediately; any on-time completion clears the streak.
// Reports while already in safe mode are ignored — the misses they describe
// were incurred by work queued before degradation.
func (w *Watchdog) NoteDeadline(late bool) {
	if w.safe {
		w.missRun = 0
		return
	}
	if !late {
		w.missRun = 0
		return
	}
	w.missRun++
	if w.missRun >= w.cfg.MissStreak {
		w.trip(&w.trips.MissStreak, w.telMiss, "miss_streak")
	}
}

// OnQuantum implements QuantumPolicy (and the kernel's SpeedPolicy).
func (w *Watchdog) OnQuantum(now sim.Time, util int, cur cpu.Step, v cpu.Voltage) (cpu.Step, cpu.Voltage) {
	w.quanta++
	if w.safe {
		w.safeLeft--
		if w.safeLeft <= 0 {
			w.readmit()
		}
		return cpu.MaxStep, cpu.VHigh
	}

	s, nv := w.inner.OnQuantum(now, util, cur, v)

	// Oscillation: push this quantum's direction and count reversals over
	// the window.
	var dir int8
	switch {
	case s > cur:
		dir = 1
	case s < cur:
		dir = -1
	}
	w.dirs[w.next] = dir
	w.next = (w.next + 1) % len(w.dirs)
	if w.filled < len(w.dirs) {
		w.filled++
	}
	if w.reversals() >= w.cfg.MaxReversals {
		w.trip(&w.trips.Oscillation, w.telOsc, "oscillation")
		return cpu.MaxStep, cpu.VHigh
	}

	// Pegging: the policy holds the minimum step while work saturates.
	if s == cpu.MinStep && cur == cpu.MinStep && util >= w.cfg.PegUtil {
		w.pegRun++
		if w.pegRun >= w.cfg.PegQuanta {
			w.trip(&w.trips.Pegging, w.telPeg, "pegging")
			return cpu.MaxStep, cpu.VHigh
		}
	} else {
		w.pegRun = 0
	}

	return s, nv
}

// reversals counts sign flips among the nonzero directions in the window,
// oldest to newest.
func (w *Watchdog) reversals() int {
	count := 0
	var last int8
	start := (w.next - w.filled + len(w.dirs)) % len(w.dirs)
	for i := 0; i < w.filled; i++ {
		d := w.dirs[(start+i)%len(w.dirs)]
		if d == 0 {
			continue
		}
		if last != 0 && d != last {
			count++
		}
		last = d
	}
	return count
}

// trip enters safe mode, charges the given cause, and doubles the next hold
// (escalating hysteresis, capped).
func (w *Watchdog) trip(cause *int, tel *telemetry.Counter, kind string) {
	*cause++
	tel.Inc()
	w.telSafe.Set(1)
	w.reg.Emit("watchdog.trip",
		telemetry.F("kind", kind),
		telemetry.F("quantum", fmt.Sprint(w.quanta)),
		telemetry.F("hold_quanta", fmt.Sprint(w.hold)))
	w.safe = true
	w.safeLeft = w.hold
	if w.hold < w.cfg.MaxSafeQuanta {
		w.hold *= 2
		if w.hold > w.cfg.MaxSafeQuanta {
			w.hold = w.cfg.MaxSafeQuanta
		}
	}
	w.clearDetectors()
}

// readmit leaves safe mode and hands control back to a freshly-reset inner
// policy. Trip counts and the escalated hold survive; only another full
// Reset forgives history.
func (w *Watchdog) readmit() {
	w.safe = false
	w.telSafe.Set(0)
	w.reg.Emit("watchdog.readmit", telemetry.F("quantum", fmt.Sprint(w.quanta)))
	w.clearDetectors()
	if r, ok := w.inner.(interface{ Reset() }); ok {
		r.Reset()
	}
}

func (w *Watchdog) clearDetectors() {
	for i := range w.dirs {
		w.dirs[i] = 0
	}
	w.next, w.filled = 0, 0
	w.pegRun, w.missRun = 0, 0
}

// Reset restores the watchdog and its inner policy to the initial state,
// including trip counts and hold escalation.
func (w *Watchdog) Reset() {
	w.safe = false
	w.telSafe.Set(0)
	w.safeLeft = 0
	w.hold = w.cfg.SafeQuanta
	w.trips = WatchdogTrips{}
	w.quanta = 0
	w.clearDetectors()
	if r, ok := w.inner.(interface{ Reset() }); ok {
		r.Reset()
	}
}
