package policy

import (
	"fmt"
	"sort"

	"clocksched/internal/cpu"
	"clocksched/internal/sim"
)

// This file implements the direction the paper's Conclusions point to as
// future work: "Our immediate future work is to provide 'deadline'
// mechanisms in Linux. These deadlines are not precisely the same mechanism
// needed in a true real-time O/S – in a RTOS, the application does not care
// if the deadline is reached early, while energy scheduling would prefer
// for the deadline to be met as late as possible."
//
// DeadlineScheduler is that mechanism: applications submit (work, due-time)
// jobs, and at every quantum the scheduler picks the *slowest* clock step
// that still finishes every job by its deadline — meeting deadlines as late
// as possible, which is exactly where the energy is.

// DeadlineJob is one submitted obligation.
type DeadlineJob struct {
	ID int
	// Cycles is the job's remaining work, expressed in worst-case
	// (fastest-step) processor cycles; memory-heavy work costs the most
	// cycles at the top step, so this is the conservative estimate.
	Cycles int64
	// Due is the absolute completion deadline.
	Due sim.Time
	// Overdue marks a job whose deadline passed while still pending. The
	// work still has to be done (the application keeps computing it), so
	// an overdue job pins the clock at the top step until the
	// application reports completion — dropping it silently would leave
	// no demand signal and strand the clock at the bottom while the
	// application ran ever later.
	Overdue bool
}

// DeadlineScheduler is a kernel speed policy driven by application-supplied
// deadlines instead of utilization prediction. It satisfies the kernel's
// SpeedPolicy interface.
type DeadlineScheduler struct {
	jobs   []DeadlineJob // sorted by Due
	nextID int
	// VoltageScale drops the core to 1.23 V when the chosen step allows.
	VoltageScale bool
	// Quantum must match the kernel's scheduling quantum; the default is
	// the Linux 10 ms.
	Quantum sim.Duration

	// Expired counts jobs whose deadlines passed before completion.
	Expired int
}

// NewDeadlineScheduler returns a scheduler for the standard 10 ms quantum.
func NewDeadlineScheduler() *DeadlineScheduler {
	return &DeadlineScheduler{Quantum: sim.Quantum}
}

// Submit registers work that must finish by due and returns a job id. A
// non-positive cycle count or an id of already-passed work is legal and
// simply never constrains the speed.
func (d *DeadlineScheduler) Submit(cycles int64, due sim.Time) int {
	d.nextID++
	if cycles <= 0 {
		return d.nextID
	}
	job := DeadlineJob{ID: d.nextID, Cycles: cycles, Due: due}
	at := sort.Search(len(d.jobs), func(i int) bool { return d.jobs[i].Due > due })
	d.jobs = append(d.jobs, DeadlineJob{})
	copy(d.jobs[at+1:], d.jobs[at:])
	d.jobs[at] = job
	return d.nextID
}

// Complete removes a job the application has finished (whether or not the
// scheduler's own estimate had retired it). Unknown ids are ignored.
func (d *DeadlineScheduler) Complete(id int) {
	for i, j := range d.jobs {
		if j.ID == id {
			d.jobs = append(d.jobs[:i], d.jobs[i+1:]...)
			return
		}
	}
}

// Pending returns the number of outstanding jobs.
func (d *DeadlineScheduler) Pending() int { return len(d.jobs) }

// retire deducts an estimate of the cycles executed during the last quantum
// from the earliest-due jobs: busy time × the clock rate that was in
// effect.
func (d *DeadlineScheduler) retire(utilPP10K int, s cpu.Step) {
	busyMicros := int64(utilPP10K) * int64(d.Quantum) / FullUtil
	cycles := busyMicros * s.KHz() / 1000
	for len(d.jobs) > 0 && cycles > 0 {
		if d.jobs[0].Cycles > cycles {
			d.jobs[0].Cycles -= cycles
			return
		}
		cycles -= d.jobs[0].Cycles
		d.jobs = d.jobs[1:]
	}
}

// markExpired flags jobs whose deadlines have passed. They stay pending —
// and pin the clock — until the application completes them or the retire
// estimate drains them.
func (d *DeadlineScheduler) markExpired(now sim.Time) {
	for i := range d.jobs {
		if d.jobs[i].Due > now {
			break // sorted by due: nothing later is expired either
		}
		if !d.jobs[i].Overdue {
			d.jobs[i].Overdue = true
			d.Expired++
		}
	}
}

// RequiredKHz returns the minimum clock rate that completes every pending
// job by its deadline, assuming the processor runs the jobs back to back:
// the maximum over deadlines d of (cycles due by d) / (d − now). Any
// overdue job demands the top step.
func (d *DeadlineScheduler) RequiredKHz(now sim.Time) int64 {
	var needKHz int64
	var cum int64
	for _, j := range d.jobs {
		cum += j.Cycles
		horizon := int64(j.Due - now)
		if horizon <= 0 {
			return cpu.MaxStep.KHz()
		}
		// kHz = cycles×1000 / µs, rounded up.
		need := (cum*1000 + horizon - 1) / horizon
		if need > needKHz {
			needKHz = need
		}
	}
	return needKHz
}

// OnQuantum implements the kernel's SpeedPolicy interface.
func (d *DeadlineScheduler) OnQuantum(now sim.Time, utilPP10K int, cur cpu.Step, _ cpu.Voltage) (cpu.Step, cpu.Voltage) {
	d.retire(utilPP10K, cur)
	d.markExpired(now)
	step := cpu.StepForKHz(d.RequiredKHz(now))
	v := cpu.VHigh
	if d.VoltageScale && cpu.VoltageOK(step, cpu.VLow) {
		v = cpu.VLow
	}
	return step, v
}

// Name identifies the policy.
func (d *DeadlineScheduler) Name() string {
	if d.VoltageScale {
		return "DEADLINE, voltage scaling"
	}
	return "DEADLINE"
}

// String summarizes the scheduler state for debugging.
func (d *DeadlineScheduler) String() string {
	return fmt.Sprintf("deadline{pending=%d expired=%d}", len(d.jobs), d.Expired)
}
