package policy

import (
	"strings"
	"testing"

	"clocksched/internal/cpu"
	"clocksched/internal/sim"
)

// --- ISSUE 8 satellite: DeadlineScheduler due-exactly-now boundary. The
// audit found markExpired/RequiredKHz correct at due == now — the job is
// marked overdue exactly once (the !Overdue guard) and RequiredKHz's
// horizon <= 0 early return pins the top step, so it still contributes.
// These boundary-value tests pin that behavior against regression.

func TestDeadlineDueExactlyNowContributes(t *testing.T) {
	d := NewDeadlineScheduler()
	now := sim.Time(10 * sim.Quantum)
	d.Submit(1, now) // one cycle due exactly at the boundary
	// Even a 1-cycle job due at now demands the top step: there is no
	// horizon left to amortize it over.
	if got := d.RequiredKHz(now); got != cpu.MaxStep.KHz() {
		t.Fatalf("RequiredKHz(due==now) = %d, want top step %d", got, cpu.MaxStep.KHz())
	}
	step, _ := d.OnQuantum(now, 0, cpu.MinStep, cpu.VHigh)
	if step != cpu.MaxStep {
		t.Fatalf("step %v, want pinned %v", step, cpu.MaxStep)
	}
	// Expired exactly once, and the job is still pending — it must not
	// vanish (the work remains) nor double-count.
	if d.Expired != 1 || d.Pending() != 1 {
		t.Fatalf("expired %d pending %d, want 1 and 1", d.Expired, d.Pending())
	}
	// A second quantum at the same deadline state must not re-count it.
	d.OnQuantum(now+sim.Time(sim.Quantum), 0, cpu.MaxStep, cpu.VHigh)
	if d.Expired != 1 || d.Pending() != 1 {
		t.Fatalf("after second quantum: expired %d pending %d, want 1 and 1", d.Expired, d.Pending())
	}
}

func TestDeadlineDueExactlyNowDrainedIsNotExpired(t *testing.T) {
	d := NewDeadlineScheduler()
	now := sim.Time(sim.Quantum)
	// Work that exactly fits one fully-busy quantum at the top step:
	// 10 ms × 206,400 kHz / 1000 = 2,064,000 cycles.
	cycles := int64(sim.Quantum) * cpu.MaxStep.KHz() / 1000
	d.Submit(cycles, now)
	// OnQuantum at the deadline edge retires before marking expiry, so a
	// job whose work completed during the elapsed quantum meets its
	// deadline "as late as possible" without being counted expired.
	d.OnQuantum(now, FullUtil, cpu.MaxStep, cpu.VHigh)
	if d.Expired != 0 {
		t.Fatalf("drained-at-deadline job counted expired (%d)", d.Expired)
	}
	if d.Pending() != 0 {
		t.Fatalf("drained job still pending (%d)", d.Pending())
	}
}

func TestDeadlineDueOneMicrosecondLater(t *testing.T) {
	d := NewDeadlineScheduler()
	now := sim.Time(10 * sim.Quantum)
	d.Submit(1, now+1) // due 1 µs past the boundary: finite horizon
	if got := d.RequiredKHz(now); got != 1000 {
		// 1 cycle in 1 µs = 1000 kHz, rounded up.
		t.Fatalf("RequiredKHz = %d, want 1000", got)
	}
	d.OnQuantum(now, 0, cpu.MinStep, cpu.VHigh)
	if d.Expired != 0 {
		t.Fatalf("job due after now counted expired")
	}
}

// --- ZooScheduler unit tests.

func TestZooRejectsBadConfig(t *testing.T) {
	if _, err := NewZooScheduler("yds", 3); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := NewZooScheduler(AlgoOA, 0); err == nil {
		t.Error("zero slack accepted")
	}
}

func TestZooOAMatchesDeadlineRequiredKHz(t *testing.T) {
	// OA's rule is DeadlineScheduler's RequiredKHz; with the same app
	// stream the two must demand the same step.
	z, err := NewZooScheduler(AlgoOA, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDeadlineScheduler()
	for _, j := range []struct {
		cycles int64
		due    sim.Time
	}{
		{59_000_000, sim.Second},
		{10_000_000, 300 * sim.Millisecond},
		{2_000_000, 40 * sim.Millisecond},
	} {
		z.Submit(j.cycles, j.due)
		d.Submit(j.cycles, j.due)
	}
	if zk, dk := z.requiredKHz(0), d.RequiredKHz(0); zk != dk {
		t.Fatalf("OA requires %d kHz, DeadlineScheduler %d", zk, dk)
	}
}

func TestZooAVRSumsDensities(t *testing.T) {
	z, err := NewZooScheduler(AlgoAVR, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Two jobs, densities 59 MHz and 20 MHz ⇒ AVR sums to 79 MHz even
	// though OA would only need the max prefix density.
	z.Submit(59_000_000, sim.Second)          // 59,000 kHz over 1 s
	z.Submit(10_000_000, 500*sim.Millisecond) // 20,000 kHz over 500 ms
	if got := z.requiredKHz(0); got != 79_000 {
		t.Fatalf("AVR requires %d kHz, want 79000", got)
	}
}

func TestZooBKPSeesRecentWindowWork(t *testing.T) {
	z, err := NewZooScheduler(AlgoBKP, 3)
	if err != nil {
		t.Fatal(err)
	}
	// One job: 2,064,000 cycles due in 20 ms. Horizon Δ = 20 ms; window
	// [now−(e−1)Δ, now] holds the job (released now). Need = w/Δ =
	// 2,064,000 cycles / 20,000 µs × 1000 = 103,200 kHz.
	z.Submit(2_064_000, 20*sim.Millisecond)
	if got := z.requiredKHz(0); got != 103_200 {
		t.Fatalf("BKP requires %d kHz, want 103200", got)
	}
}

func TestZooOverduePinsTopStep(t *testing.T) {
	for _, algo := range []ZooAlgo{AlgoOA, AlgoAVR, AlgoBKP} {
		z, err := NewZooScheduler(algo, 3)
		if err != nil {
			t.Fatal(err)
		}
		z.Submit(1000, 5*sim.Millisecond)
		step, _ := z.OnQuantum(sim.Time(sim.Quantum), 0, cpu.MinStep, cpu.VHigh)
		if step != cpu.MaxStep {
			t.Errorf("%s: overdue job left step at %v", algo, step)
		}
		if z.Expired != 1 {
			t.Errorf("%s: expired = %d, want 1", algo, z.Expired)
		}
		// Same-state re-quantum must not double count.
		z.OnQuantum(2*sim.Time(sim.Quantum), 0, cpu.MaxStep, cpu.VHigh)
		if z.Expired != 1 {
			t.Errorf("%s: expired re-counted to %d", algo, z.Expired)
		}
	}
}

func TestZooSynthesizesFromUtilization(t *testing.T) {
	z, err := NewZooScheduler(AlgoOA, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A fully busy quantum at the top step synthesizes a job, and OA then
	// asks for enough speed to repeat that work within the slack.
	now := sim.Time(sim.Quantum)
	step, _ := z.OnQuantum(now, FullUtil, cpu.MaxStep, cpu.VHigh)
	if z.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 synthesized job", z.Pending())
	}
	// 2,064,000 cycles due in 3 quanta (30 ms) ⇒ 68,800 kHz ⇒ 73.7 MHz
	// is the slowest sufficient step.
	if want := cpu.StepForKHz(68_800); step != want {
		t.Fatalf("step %v, want %v", step, want)
	}
	// An idle quantum synthesizes nothing.
	z2, _ := NewZooScheduler(AlgoAVR, 3)
	z2.OnQuantum(now, 0, cpu.MaxStep, cpu.VHigh)
	if z2.Pending() != 0 {
		t.Fatalf("idle quantum synthesized %d jobs", z2.Pending())
	}
}

func TestZooAppStreamDisablesSynthesis(t *testing.T) {
	z, err := NewZooScheduler(AlgoOA, 3)
	if err != nil {
		t.Fatal(err)
	}
	z.OnQuantum(sim.Time(sim.Quantum), FullUtil, cpu.MaxStep, cpu.VHigh)
	if z.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 synthesized", z.Pending())
	}
	// The first app submission evicts synthesized jobs and pins the
	// scheduler to the app stream for good.
	id := z.Submit(1_000_000, sim.Second)
	if z.Pending() != 1 {
		t.Fatalf("pending = %d after app submit, want only the app job", z.Pending())
	}
	z.OnQuantum(2*sim.Time(sim.Quantum), FullUtil, cpu.MaxStep, cpu.VHigh)
	// retire drains the app job estimate; no synthesized job may appear.
	for _, j := range z.jobs {
		if j.synthesized {
			t.Fatalf("synthesized job %+v created after app stream started", j)
		}
	}
	z.Complete(id)
	if z.Pending() != 0 {
		t.Fatalf("pending = %d after Complete", z.Pending())
	}
}

func TestZooRetireDrainsEarliestDue(t *testing.T) {
	z, err := NewZooScheduler(AlgoOA, 3)
	if err != nil {
		t.Fatal(err)
	}
	z.Submit(1_000_000, 100*sim.Millisecond)
	z.Submit(5_000_000, sim.Second)
	// One fully busy quantum at top step executes 2,064,000 cycles:
	// drains the first job and 1,064,000 of the second.
	z.OnQuantum(sim.Time(sim.Quantum), FullUtil, cpu.MaxStep, cpu.VHigh)
	if z.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", z.Pending())
	}
	if left := z.jobs[0].cycles; left != 5_000_000-(2_064_000-1_000_000) {
		t.Fatalf("remaining cycles %d", left)
	}
}

func TestZooNames(t *testing.T) {
	z, _ := NewZooScheduler(AlgoBKP, 4)
	if got := z.Name(); got != "BKP(slack=4)" {
		t.Errorf("Name() = %q", got)
	}
	z.VoltageScale = true
	if got := z.Name(); !strings.Contains(got, "voltage scaling") {
		t.Errorf("Name() = %q lacks voltage scaling", got)
	}
	if z.Algo() != AlgoBKP {
		t.Errorf("Algo() = %v", z.Algo())
	}
	if s := z.String(); !strings.Contains(s, "BKP") {
		t.Errorf("String() = %q", s)
	}
}
