package policy

import (
	"fmt"

	"clocksched/internal/cpu"
	"clocksched/internal/sim"
)

// Proportional is the speed-setting idea sketched (and then dismantled) at
// the start of the paper's Section 5.2: predict the coming interval's busy
// fraction and "set the clock speed to insure enough busy cycles" — pick
// the slowest step whose frequency covers the predicted demand at a target
// utilization. It is the ancestor of Linux's ondemand governor. The paper's
// Figure 5 shows why the naive version responds poorly; this implementation
// lets that pathology be reproduced in closed loop with any predictor.
//
// Note the saturation blindness the paper attributes to Weiser's PAST: with
// a 100% target the governor can never scale up, because observed
// utilization cannot exceed 100% and therefore never demands more than the
// current frequency. A target below 100% is what gives the governor
// headroom to discover pent-up demand, one ratio step at a time.
type Proportional struct {
	pred Predictor
	// TargetUtil is the utilization the governor aims to run at, PP10K:
	// demanded kHz = current kHz × predicted / target.
	TargetUtil int
	// VoltageScale drops the core to 1.23 V when the chosen step allows.
	VoltageScale bool

	changes int
}

// NewProportional builds the governor. Target must be in (0, FullUtil].
func NewProportional(pred Predictor, targetUtil int, voltageScale bool) (*Proportional, error) {
	if pred == nil {
		return nil, fmt.Errorf("policy: proportional governor needs a predictor")
	}
	if targetUtil <= 0 || targetUtil > FullUtil {
		return nil, fmt.Errorf("policy: bad target utilization %d", targetUtil)
	}
	return &Proportional{pred: pred, TargetUtil: targetUtil, VoltageScale: voltageScale}, nil
}

// OnQuantum implements the kernel's SpeedPolicy interface.
func (p *Proportional) OnQuantum(_ sim.Time, util int, cur cpu.Step, _ cpu.Voltage) (cpu.Step, cpu.Voltage) {
	w := p.pred.Observe(util)
	// Busy cycles observed ≈ w × current frequency; demand the slowest
	// step that runs them at the target utilization.
	needKHz := int64(w) * cur.KHz() / int64(p.TargetUtil)
	step := cpu.StepForKHz(needKHz)
	if step != cur {
		p.changes++
	}
	v := cpu.VHigh
	if p.VoltageScale && cpu.VoltageOK(step, cpu.VLow) {
		v = cpu.VLow
	}
	return step, v
}

// Changes reports how many step changes the governor has made.
func (p *Proportional) Changes() int { return p.changes }

// Name identifies the governor.
func (p *Proportional) Name() string {
	return fmt.Sprintf("PROPORTIONAL(%s, %d%%)", p.pred.Name(), p.TargetUtil/100)
}
