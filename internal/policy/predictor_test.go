package policy

import (
	"testing"
	"testing/quick"
)

// TestAvg9Table1 reproduces the paper's Table 1 digit-for-digit: AVG_9 fed
// 15 fully-active quanta then 5 idle quanta, weighted utilization printed
// as its integer floor. (The paper's printed value at t=80 ms, "5965", is a
// transposition typo for 5695: the recurrence (9·5217.031+10000)/10 =
// 5695.3 and the following row, 6125, only follows from 5695.)
func TestAvg9Table1(t *testing.T) {
	want := []int{
		1000, 1900, 2710, 3439, 4095, 4685, 5217, 5695, 6125, 6513,
		6861, 7175, 7458, 7712, 7941, // 15 active quanta
		7146, 6432, 5789, 5210, 4689, // 5 idle quanta
	}
	a := MustAvgN(9)
	for i, w := range want {
		u := 0
		if i < 15 {
			u = FullUtil
		}
		if got := a.Observe(u); got != w {
			t.Errorf("t=%dms: W = %d, want %d", (i+1)*10, got, w)
		}
	}
}

// TestAvg9Table1Actions checks the scale actions Table 1 annotates: with an
// upper bound of 70% the clock scales up at t=120…160 ms (five times — the
// first idle quantum still leaves W above 70%) and, with a 50% lower bound,
// scales down at t=200 ms.
func TestAvg9Table1Actions(t *testing.T) {
	// The worked example starts from an idle state, i.e. already at the
	// bottom step, so the early low-average quanta produce no-op
	// scale-downs that the table does not annotate.
	g := MustGovernor(MustAvgN(9), One{}, One{}, PeringBounds, false)
	var ups, downs []int
	cur := stepMin
	for i := 0; i < 20; i++ {
		u := 0
		if i < 15 {
			u = FullUtil
		}
		d := g.Decide(u, cur)
		tMs := (i + 1) * 10
		if d.ScaledUp {
			ups = append(ups, tMs)
		}
		if d.ScaledDn {
			downs = append(downs, tMs)
		}
		cur = d.Step
	}
	wantUps := []int{120, 130, 140, 150, 160}
	if len(ups) != len(wantUps) {
		t.Fatalf("scale-ups at %v, want %v", ups, wantUps)
	}
	for i := range wantUps {
		if ups[i] != wantUps[i] {
			t.Fatalf("scale-ups at %v, want %v", ups, wantUps)
		}
	}
	if len(downs) != 1 || downs[0] != 200 {
		t.Fatalf("scale-downs at %v, want [200]", downs)
	}
}

func TestPASTTracksLastInterval(t *testing.T) {
	p := NewPAST()
	for _, u := range []int{0, 10000, 3000, 7421} {
		if got := p.Observe(u); got != u {
			t.Errorf("PAST.Observe(%d) = %d", u, got)
		}
	}
	if p.Name() != "PAST" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestAvgNLagBeforeFullSpeed(t *testing.T) {
	// "Starting from an idle state, the clock will not scale to 206 MHz
	// for 120 ms (12 quanta)": AVG_9 with a 70% upper bound takes 12
	// fully-busy quanta before its weighted utilization first crosses the
	// bound. With peg scaling that is exactly when 206.4 MHz is reached.
	g := MustGovernor(MustAvgN(9), Peg{}, Peg{}, PeringBounds, false)
	cur := stepMin
	quanta := 0
	for cur != stepMax {
		d := g.Decide(FullUtil, cur)
		cur = d.Step
		quanta++
		if quanta > 100 {
			t.Fatal("never reached full speed")
		}
	}
	if quanta != 12 {
		t.Errorf("reached 206MHz after %d quanta, want 12", quanta)
	}

	// With one-step scaling the first upward move also happens at
	// quantum 12; the top arrives only after ten further steps.
	g2 := MustGovernor(MustAvgN(9), One{}, One{}, PeringBounds, false)
	cur = stepMin
	firstUp := 0
	for i := 1; i <= 30 && firstUp == 0; i++ {
		if d := g2.Decide(FullUtil, cur); d.ScaledUp {
			firstUp = i
		} else {
			cur = d.Step
		}
	}
	if firstUp != 12 {
		t.Errorf("first one-step scale-up at quantum %d, want 12", firstUp)
	}
}

func TestAvgNClampsInput(t *testing.T) {
	a := MustAvgN(0)
	if got := a.Observe(-500); got != 0 {
		t.Errorf("Observe(-500) = %d", got)
	}
	if got := a.Observe(20000); got != FullUtil {
		t.Errorf("Observe(20000) = %d", got)
	}
}

func TestAvgNReset(t *testing.T) {
	a := MustAvgN(5)
	a.Observe(FullUtil)
	a.Observe(FullUtil)
	if a.Weighted() == 0 {
		t.Fatal("weighted zero after observations")
	}
	a.Reset()
	if a.Weighted() != 0 {
		t.Errorf("Weighted after Reset = %d", a.Weighted())
	}
}

func TestAvgNNames(t *testing.T) {
	if MustAvgN(9).Name() != "AVG_9" {
		t.Errorf("Name = %q", MustAvgN(9).Name())
	}
	if MustAvgN(9).N() != 9 {
		t.Error("N() wrong")
	}
}

func TestNewAvgNRejectsNegative(t *testing.T) {
	if a, err := NewAvgN(-1); err == nil {
		t.Fatalf("NewAvgN(-1) = %v, want error", a)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustAvgN(-1) did not panic")
		}
	}()
	MustAvgN(-1)
}

func TestSimpleWindowAveraging(t *testing.T) {
	s := MustSimpleWindow(4)
	// Figure 5 "going to idle": four active quanta then idles.
	for i := 0; i < 4; i++ {
		s.Observe(FullUtil)
	}
	if got := s.Weighted(); got != FullUtil {
		t.Fatalf("full window = %d", got)
	}
	// One idle quantum: average of {1,1,1,0} = 7500.
	if got := s.Observe(0); got != 7500 {
		t.Errorf("after 1 idle = %d, want 7500", got)
	}
	if got := s.Observe(0); got != 5000 {
		t.Errorf("after 2 idle = %d, want 5000", got)
	}
}

func TestSimpleWindowPartialFill(t *testing.T) {
	s := MustSimpleWindow(4)
	if got := s.Weighted(); got != 0 {
		t.Errorf("empty window weighted = %d", got)
	}
	if got := s.Observe(6000); got != 6000 {
		t.Errorf("first observation = %d, want 6000 (average of one)", got)
	}
	if got := s.Observe(0); got != 3000 {
		t.Errorf("second = %d, want 3000", got)
	}
}

func TestSimpleWindowSlowSpeedup(t *testing.T) {
	// The Figure 5 pathology: coming out of idle, the windowed average
	// rises by only 1/N of full per quantum (2500, 5000, 7500, 10000),
	// so with a 70% bound the first two fully-busy recovery quanta
	// produce no scale-up at all — "the processor speed increases very
	// slowly".
	s := MustSimpleWindow(4)
	for i := 0; i < 4; i++ {
		s.Observe(0)
	}
	var above []int
	for i := 1; i <= 4; i++ {
		if s.Observe(FullUtil) > 7000 {
			above = append(above, i)
		}
	}
	if len(above) != 2 || above[0] != 3 || above[1] != 4 {
		t.Errorf("window exceeded 70%% at recovery quanta %v, want [3 4]", above)
	}
}

func TestSimpleWindowResetAndName(t *testing.T) {
	s := MustSimpleWindow(3)
	s.Observe(FullUtil)
	s.Reset()
	if s.Weighted() != 0 {
		t.Error("Reset did not clear")
	}
	if s.Name() != "WINDOW_3" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestNewSimpleWindowRejectsEmpty(t *testing.T) {
	if s, err := NewSimpleWindow(0); err == nil {
		t.Fatalf("NewSimpleWindow(0) = %v, want error", s)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustSimpleWindow(0) did not panic")
		}
	}()
	MustSimpleWindow(0)
}

// Property: every predictor's weighted output stays within [0, FullUtil]
// for arbitrary (clamped) inputs.
func TestPredictorsBoundedProperty(t *testing.T) {
	f := func(inputs []int16, nRaw uint8) bool {
		preds := []Predictor{
			MustAvgN(int(nRaw % 12)),
			MustSimpleWindow(int(nRaw%12) + 1),
		}
		for _, p := range preds {
			for _, in := range inputs {
				w := p.Observe(int(in))
				if w < 0 || w > FullUtil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AVG_N converges to a constant input's level.
func TestAvgNConvergesProperty(t *testing.T) {
	f := func(level uint16, nRaw uint8) bool {
		u := int(level) % (FullUtil + 1)
		n := int(nRaw % 10)
		a := MustAvgN(n)
		for i := 0; i < 2000; i++ {
			a.Observe(u)
		}
		w := a.Weighted()
		return w >= u-1 && w <= u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
