package policy

import (
	"strings"
	"testing"

	"clocksched/internal/cpu"
)

// Shared step aliases for readability in tests.
const (
	stepMin    = cpu.MinStep
	stepMax    = cpu.MaxStep
	cpuStepMid = cpu.Step(5) // 132.7 MHz
)

func TestSpeedSetterOne(t *testing.T) {
	var s One
	if s.Up(cpuStepMid) != cpuStepMid+1 || s.Down(cpuStepMid) != cpuStepMid-1 {
		t.Error("one setter did not move a single step")
	}
	if s.Up(stepMax) != stepMax {
		t.Error("one setter overflowed the top step")
	}
	if s.Down(stepMin) != stepMin {
		t.Error("one setter underflowed the bottom step")
	}
	if s.Name() != "one" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestSpeedSetterDouble(t *testing.T) {
	var s Double
	// "we increment the clock index value before doubling it": 0 → 2.
	if got := s.Up(0); got != 2 {
		t.Errorf("double.Up(0) = %v, want 2", got)
	}
	if got := s.Up(2); got != 6 {
		t.Errorf("double.Up(2) = %v, want 6", got)
	}
	if got := s.Up(stepMax); got != stepMax {
		t.Errorf("double.Up(max) = %v", got)
	}
	// Down inverts Up where possible.
	if got := s.Down(2); got != 0 {
		t.Errorf("double.Down(2) = %v, want 0", got)
	}
	if got := s.Down(6); got != 2 {
		t.Errorf("double.Down(6) = %v, want 2", got)
	}
	if got := s.Down(0); got != 0 {
		t.Errorf("double.Down(0) = %v, want 0", got)
	}
	if s.Name() != "double" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestSpeedSetterPeg(t *testing.T) {
	var s Peg
	for st := stepMin; st <= stepMax; st++ {
		if s.Up(st) != stepMax {
			t.Fatalf("peg.Up(%v) != max", st)
		}
		if s.Down(st) != stepMin {
			t.Fatalf("peg.Down(%v) != min", st)
		}
	}
	if s.Name() != "peg" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestSetterByName(t *testing.T) {
	for _, name := range []string{"one", "double", "peg"} {
		s, ok := SetterByName(name)
		if !ok || s.Name() != name {
			t.Errorf("SetterByName(%q) = %v, %v", name, s, ok)
		}
	}
	if _, ok := SetterByName("warp"); ok {
		t.Error("unknown setter accepted")
	}
}

func TestBoundsValidate(t *testing.T) {
	for _, b := range []Bounds{{-1, 5000}, {5000, 10001}, {8000, 7000}} {
		if b.Validate() == nil {
			t.Errorf("bounds %+v accepted", b)
		}
	}
	if PeringBounds.Validate() != nil || BestBounds.Validate() != nil {
		t.Error("canonical bounds rejected")
	}
	if PeringBounds != (Bounds{5000, 7000}) {
		t.Errorf("PeringBounds = %+v, want 50%%/70%%", PeringBounds)
	}
	if BestBounds != (Bounds{9300, 9800}) {
		t.Errorf("BestBounds = %+v, want 93%%/98%%", BestBounds)
	}
}

func TestNewGovernorValidation(t *testing.T) {
	if _, err := NewGovernor(nil, One{}, One{}, PeringBounds, false); err == nil {
		t.Error("nil predictor accepted")
	}
	if _, err := NewGovernor(NewPAST(), nil, One{}, PeringBounds, false); err == nil {
		t.Error("nil up setter accepted")
	}
	if _, err := NewGovernor(NewPAST(), One{}, nil, PeringBounds, false); err == nil {
		t.Error("nil down setter accepted")
	}
	if _, err := NewGovernor(NewPAST(), One{}, One{}, Bounds{9, 2}, false); err == nil {
		t.Error("bad bounds accepted")
	}
}

func TestMustGovernorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGovernor with bad input did not panic")
		}
	}()
	MustGovernor(nil, One{}, One{}, PeringBounds, false)
}

func TestGovernorHysteresis(t *testing.T) {
	g := MustGovernor(NewPAST(), One{}, One{}, PeringBounds, false)
	// Above Hi → up.
	d := g.Decide(8000, cpuStepMid)
	if !d.ScaledUp || d.Step != cpuStepMid+1 {
		t.Errorf("Decide(80%%) = %+v, want scale-up", d)
	}
	// Inside the dead band → hold.
	d = g.Decide(6000, cpuStepMid)
	if d.ScaledUp || d.ScaledDn || d.Step != cpuStepMid {
		t.Errorf("Decide(60%%) = %+v, want hold", d)
	}
	// Below Lo → down.
	d = g.Decide(2000, cpuStepMid)
	if !d.ScaledDn || d.Step != cpuStepMid-1 {
		t.Errorf("Decide(20%%) = %+v, want scale-down", d)
	}
	// Boundary values hold: the comparisons are strict.
	d = g.Decide(7000, cpuStepMid)
	if d.Step != cpuStepMid {
		t.Errorf("Decide(=Hi) moved to %v", d.Step)
	}
	d = g.Decide(5000, cpuStepMid)
	if d.Step != cpuStepMid {
		t.Errorf("Decide(=Lo) moved to %v", d.Step)
	}
}

func TestGovernorBestPolicyPegsBetweenExtremes(t *testing.T) {
	// The paper's best policy (PAST, peg-peg, 93/98) "only selects 59 MHz
	// or 206 MHz clock settings".
	g := MustGovernor(NewPAST(), Peg{}, Peg{}, BestBounds, false)
	cur := cpuStepMid
	seen := map[cpu.Step]bool{}
	utils := []int{10000, 9900, 9000, 500, 10000, 9400, 9790, 9850, 0, 10000}
	for _, u := range utils {
		d := g.Decide(u, cur)
		cur = d.Step
		seen[cur] = true
	}
	for s := range seen {
		if s != stepMin && s != stepMax && s != cpuStepMid {
			t.Errorf("peg-peg governor visited intermediate step %v", s)
		}
	}
	if !seen[stepMin] || !seen[stepMax] {
		t.Error("peg-peg governor never reached both extremes")
	}
}

func TestGovernorVoltageScaling(t *testing.T) {
	g := MustGovernor(NewPAST(), Peg{}, Peg{}, BestBounds, true)
	// Scale down: 59 MHz allows 1.23 V.
	d := g.Decide(0, stepMax)
	if d.Step != stepMin || d.V != cpu.VLow {
		t.Errorf("scale-down decision = %+v, want 59MHz @ 1.23V", d)
	}
	// Scale up: 206.4 MHz demands 1.5 V.
	d = g.Decide(10000, stepMin)
	if d.Step != stepMax || d.V != cpu.VHigh {
		t.Errorf("scale-up decision = %+v, want 206.4MHz @ 1.5V", d)
	}
}

func TestGovernorNoVoltageScalingStaysHigh(t *testing.T) {
	g := MustGovernor(NewPAST(), Peg{}, Peg{}, BestBounds, false)
	d := g.Decide(0, stepMax)
	if d.V != cpu.VHigh {
		t.Errorf("voltage = %v with scaling disabled", d.V)
	}
}

func TestGovernorScaleCountsAndReset(t *testing.T) {
	g := MustGovernor(NewPAST(), Peg{}, Peg{}, PeringBounds, false)
	g.Decide(10000, stepMin) // up
	g.Decide(0, stepMax)     // down
	g.Decide(10000, stepMax) // up decision but already at max: no change
	up, down := g.ScaleCounts()
	if up != 1 || down != 1 {
		t.Errorf("ScaleCounts = %d, %d; want 1, 1", up, down)
	}
	g.Reset()
	up, down = g.ScaleCounts()
	if up != 0 || down != 0 {
		t.Error("Reset did not clear counts")
	}
}

func TestGovernorOnQuantum(t *testing.T) {
	g := MustGovernor(NewPAST(), Peg{}, Peg{}, BestBounds, true)
	s, v := g.OnQuantum(0, 10000, stepMin, cpu.VHigh)
	if s != stepMax || v != cpu.VHigh {
		t.Errorf("OnQuantum = %v, %v", s, v)
	}
	s, v = g.OnQuantum(10000, 100, s, v)
	if s != stepMin || v != cpu.VLow {
		t.Errorf("OnQuantum = %v, %v, want 59MHz @ 1.23V", s, v)
	}
}

func TestGovernorName(t *testing.T) {
	g := MustGovernor(NewPAST(), Peg{}, Peg{}, BestBounds, false)
	want := "PAST, peg-peg, 93%-98%"
	if g.Name() != want {
		t.Errorf("Name = %q, want %q", g.Name(), want)
	}
	gv := MustGovernor(MustAvgN(9), One{}, Double{}, PeringBounds, true)
	if !strings.Contains(gv.Name(), "AVG_9") || !strings.Contains(gv.Name(), "voltage scaling") {
		t.Errorf("Name = %q", gv.Name())
	}
}

func TestConstantPolicy(t *testing.T) {
	c := Constant{S: cpuStepMid, V: cpu.VLow}
	s, v := c.OnQuantum(0, 10000, stepMax, cpu.VHigh)
	if s != cpuStepMid || v != cpu.VLow {
		t.Errorf("constant policy moved: %v, %v", s, v)
	}
	if c.Name() != "Constant Speed @ 132.7MHz, 1.23V" {
		t.Errorf("Name = %q", c.Name())
	}
}
