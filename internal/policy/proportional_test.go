package policy

import (
	"testing"

	"clocksched/internal/cpu"
)

func TestNewProportionalValidation(t *testing.T) {
	if _, err := NewProportional(nil, 7000, false); err == nil {
		t.Error("nil predictor accepted")
	}
	if _, err := NewProportional(NewPAST(), 0, false); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := NewProportional(NewPAST(), 10001, false); err == nil {
		t.Error("target above full accepted")
	}
}

func TestProportionalTracksDemand(t *testing.T) {
	p, err := NewProportional(NewPAST(), 10000, false)
	if err != nil {
		t.Fatal(err)
	}
	// Fully busy at 59 MHz: demand 59 MHz at 100% target → stay.
	s, _ := p.OnQuantum(0, FullUtil, cpu.MinStep, cpu.VHigh)
	if s != cpu.MinStep {
		t.Errorf("step = %v, want 59MHz (demand exactly met)", s)
	}
	// Half busy at 206.4 MHz: demand 103.2 MHz.
	s, _ = p.OnQuantum(0, 5000, cpu.MaxStep, cpu.VHigh)
	if s != cpu.Step(3) {
		t.Errorf("step = %v, want 103.2MHz", s)
	}
	// Idle: drop to the bottom.
	s, _ = p.OnQuantum(0, 0, cpu.MaxStep, cpu.VHigh)
	if s != cpu.MinStep {
		t.Errorf("step = %v, want 59MHz", s)
	}
}

func TestProportionalHeadroomTarget(t *testing.T) {
	// With a 70% target, a 70%-busy quantum holds; a fully busy one
	// scales up by the 1/0.7 factor.
	p, _ := NewProportional(NewPAST(), 7000, false)
	s, _ := p.OnQuantum(0, 7000, cpu.Step(5), cpu.VHigh)
	if s != cpu.Step(5) {
		t.Errorf("at target: step = %v, want unchanged", s)
	}
	s, _ = p.OnQuantum(0, FullUtil, cpu.Step(5), cpu.VHigh)
	// 132.7 / 0.7 = 189.6 MHz → 191.7 MHz.
	if s != cpu.Step(9) {
		t.Errorf("above target: step = %v, want 191.7MHz", s)
	}
}

func TestProportionalSaturationBlindness(t *testing.T) {
	// The paper's Section 3 point about Weiser's PAST, reproduced in
	// closed loop: "the scheduler can simply observe that the application
	// executed until the end of the scheduling quanta, and does not know
	// the amount of 'unfinished' computing left." A proportional governor
	// targeting 100% utilization can therefore never scale up — observed
	// utilization saturates at 100%, which demands exactly the current
	// frequency and nothing more.
	p, _ := NewProportional(NewPAST(), FullUtil, false)
	cur := cpu.MinStep
	for i := 0; i < 50; i++ {
		cur, _ = p.OnQuantum(0, FullUtil, cur, cpu.VHigh)
	}
	if cur != cpu.MinStep {
		t.Errorf("100%%-target governor climbed to %v; saturation should pin it", cur)
	}
}

func TestProportionalFigure5Pathology(t *testing.T) {
	// The closed-loop version of Figure 5(b): a windowed average coming
	// out of idle at the bottom step raises the demanded frequency only
	// as fast as the window fills — and because the demand is measured in
	// *cycles at the current slow clock*, recovery to the top step takes
	// several quanta even with a 70% headroom target.
	p, _ := NewProportional(MustSimpleWindow(4), 7000, false)
	cur := cpu.MinStep
	for i := 0; i < 4; i++ { // idle history
		cur, _ = p.OnQuantum(0, 0, cur, cpu.VHigh)
	}
	quanta := 0
	for cur != cpu.MaxStep && quanta < 100 {
		cur, _ = p.OnQuantum(0, FullUtil, cur, cpu.VHigh)
		quanta++
	}
	if quanta < 4 {
		t.Errorf("recovered to full speed in %d quanta; Figure 5 says the climb is slow", quanta)
	}
	if cur != cpu.MaxStep {
		t.Errorf("never recovered to full speed (stuck at %v)", cur)
	}
}

func TestProportionalVoltageScale(t *testing.T) {
	p, _ := NewProportional(NewPAST(), 10000, true)
	_, v := p.OnQuantum(0, 0, cpu.MaxStep, cpu.VHigh)
	if v != cpu.VLow {
		t.Errorf("voltage = %v at the bottom step with scaling on", v)
	}
	_, v = p.OnQuantum(0, FullUtil, cpu.MaxStep, cpu.VHigh)
	if v != cpu.VHigh {
		t.Errorf("voltage = %v at the top step", v)
	}
}

func TestProportionalChangesAndName(t *testing.T) {
	p, _ := NewProportional(NewPAST(), 7000, false)
	p.OnQuantum(0, FullUtil, cpu.MinStep, cpu.VHigh)
	p.OnQuantum(0, FullUtil, cpu.MinStep, cpu.VHigh)
	if p.Changes() != 2 {
		t.Errorf("Changes = %d", p.Changes())
	}
	if p.Name() != "PROPORTIONAL(PAST, 70%)" {
		t.Errorf("Name = %q", p.Name())
	}
}
