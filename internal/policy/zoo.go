package policy

import (
	"fmt"
	"math"
	"sort"

	"clocksched/internal/cpu"
	"clocksched/internal/sim"
)

// This file adapts the deadline-feasible family of feasible.go — AVR, OA,
// BKP — into online kernel speed policies with the same shape as
// DeadlineScheduler: per-quantum OnQuantum, application-submitted
// deadlines, and a retire estimate that drains work by observed busy
// cycles. Two sources feed the job set:
//
//   - Applications that advertise deadlines (the MPEG player) submit jobs
//     directly through the workload.DeadlineSink interface, exactly as
//     they do for DeadlineScheduler.
//   - On workloads with no deadline stream, each quantum's observed busy
//     cycles become a synthesized job due SlackQuanta quanta later — the
//     interval-scheduling assumption (recent demand predicts imminent
//     demand, and latency past a few quanta is user-visible) expressed in
//     the job vocabulary these algorithms need. The first application
//     submission permanently switches the scheduler to the app stream and
//     discards synthesized jobs, so MPEG work is never double-counted.
//
// The hardware's bounded step ladder voids the unbounded-speed feasibility
// theorem, so like DeadlineScheduler these policies pin the top step while
// any overdue job is pending.

// zooJob is one obligation tracked by a ZooScheduler.
type zooJob struct {
	id           int
	release, due sim.Time
	cycles       int64 // remaining (retire estimate)
	orig         int64 // as submitted; BKP's windowed density uses this
	overdue      bool
	synthesized  bool
}

// ZooAlgo selects the speed rule of a ZooScheduler.
type ZooAlgo string

const (
	AlgoOA  ZooAlgo = "OA"
	AlgoAVR ZooAlgo = "AVR"
	AlgoBKP ZooAlgo = "BKP"
)

// ZooScheduler runs one of the deadline-feasible online algorithms as a
// kernel speed policy. It satisfies the kernel SpeedPolicy interface and
// the workload DeadlineSink interface.
type ZooScheduler struct {
	algo ZooAlgo
	// VoltageScale drops the core to 1.23 V when the chosen step allows.
	VoltageScale bool
	// Quantum must match the kernel's scheduling quantum.
	Quantum sim.Duration
	// SlackQuanta is the deadline slack granted to synthesized jobs.
	SlackQuanta int

	jobs    []zooJob // sorted by due
	history []zooJob // BKP only: released-work records, window-pruned
	nextID  int
	sawApp  bool
	lastNow sim.Time

	// Expired counts jobs whose deadlines passed before completion.
	Expired int
}

// NewZooScheduler builds a scheduler for the given algorithm with the
// standard 10 ms quantum. slackQuanta must be positive.
func NewZooScheduler(algo ZooAlgo, slackQuanta int) (*ZooScheduler, error) {
	switch algo {
	case AlgoOA, AlgoAVR, AlgoBKP:
	default:
		return nil, fmt.Errorf("policy: unknown zoo algorithm %q", algo)
	}
	if slackQuanta <= 0 {
		return nil, fmt.Errorf("policy: zoo slack must be positive quanta, got %d", slackQuanta)
	}
	return &ZooScheduler{algo: algo, Quantum: sim.Quantum, SlackQuanta: slackQuanta}, nil
}

// Algo reports which rule the scheduler runs.
func (z *ZooScheduler) Algo() ZooAlgo { return z.algo }

// Pending returns the number of outstanding jobs.
func (z *ZooScheduler) Pending() int { return len(z.jobs) }

func (z *ZooScheduler) insert(j zooJob) {
	at := sort.Search(len(z.jobs), func(i int) bool { return z.jobs[i].due > j.due })
	z.jobs = append(z.jobs, zooJob{})
	copy(z.jobs[at+1:], z.jobs[at:])
	z.jobs[at] = j
	if z.algo == AlgoBKP {
		z.history = append(z.history, j)
	}
}

// Submit registers application work due at the given time (the
// workload.DeadlineSink interface). The first submission switches the
// scheduler to the application's deadline stream for good.
func (z *ZooScheduler) Submit(cycles int64, due sim.Time) int {
	if !z.sawApp {
		z.sawApp = true
		kept := z.jobs[:0]
		for _, j := range z.jobs {
			if !j.synthesized {
				kept = append(kept, j)
			}
		}
		z.jobs = kept
		z.history = nil
	}
	z.nextID++
	if cycles <= 0 {
		return z.nextID
	}
	z.insert(zooJob{id: z.nextID, release: z.lastNow, due: due, cycles: cycles, orig: cycles})
	return z.nextID
}

// Complete removes a job the application has finished. Unknown ids are
// ignored (the retire estimate may have drained the job already).
func (z *ZooScheduler) Complete(id int) {
	for i, j := range z.jobs {
		if j.id == id {
			z.jobs = append(z.jobs[:i], z.jobs[i+1:]...)
			return
		}
	}
}

// retire deducts the cycles executed during the last quantum from the
// earliest-due jobs, exactly as DeadlineScheduler does.
func (z *ZooScheduler) retire(utilPP10K int, s cpu.Step) {
	busyMicros := int64(utilPP10K) * int64(z.Quantum) / FullUtil
	cycles := busyMicros * s.KHz() / 1000
	for len(z.jobs) > 0 && cycles > 0 {
		if z.jobs[0].cycles > cycles {
			z.jobs[0].cycles -= cycles
			return
		}
		cycles -= z.jobs[0].cycles
		z.jobs = z.jobs[1:]
	}
}

// synthesize turns the last quantum's observed busy cycles into a job due
// SlackQuanta quanta out. Only runs before any application submission.
func (z *ZooScheduler) synthesize(now sim.Time, utilPP10K int, s cpu.Step) {
	if z.sawApp || utilPP10K <= 0 {
		return
	}
	busyMicros := int64(utilPP10K) * int64(z.Quantum) / FullUtil
	cycles := busyMicros * s.KHz() / 1000
	if cycles <= 0 {
		return
	}
	z.nextID++
	z.insert(zooJob{
		id:          z.nextID,
		release:     now - sim.Time(z.Quantum),
		due:         now + sim.Time(int64(z.SlackQuanta)*int64(z.Quantum)),
		cycles:      cycles,
		orig:        cycles,
		synthesized: true,
	})
}

// markExpired flags jobs whose deadlines have passed; they pin the clock
// until drained, like DeadlineScheduler's.
func (z *ZooScheduler) markExpired(now sim.Time) {
	for i := range z.jobs {
		if z.jobs[i].due > now {
			break
		}
		if !z.jobs[i].overdue {
			z.jobs[i].overdue = true
			z.Expired++
		}
	}
}

// requiredKHz evaluates the algorithm's speed rule. Any overdue job
// demands the top step (the unbounded-speed regime is out of reach).
func (z *ZooScheduler) requiredKHz(now sim.Time) int64 {
	var need int64
	switch z.algo {
	case AlgoOA:
		// Max density of remaining work over any deadline horizon.
		var cum int64
		for _, j := range z.jobs {
			cum += j.cycles
			horizon := int64(j.due - now)
			if horizon <= 0 {
				return cpu.MaxStep.KHz()
			}
			if n := (cum*1000 + horizon - 1) / horizon; n > need {
				need = n
			}
		}
	case AlgoAVR:
		// Sum of the active jobs' own densities.
		for _, j := range z.jobs {
			if int64(j.due-now) <= 0 {
				return cpu.MaxStep.KHz()
			}
			span := int64(j.due - j.release)
			if span <= 0 {
				span = 1
			}
			need += (j.orig*1000 + span - 1) / span
		}
	case AlgoBKP:
		// Windowed density with lookback memory: for each pending
		// deadline horizon Δ, count work released within the last
		// (e−1)·Δ — served or not — that is due inside the horizon.
		// The e in speed = e·w/(eΔ) cancels.
		var maxDue sim.Time
		for _, j := range z.jobs {
			if int64(j.due-now) <= 0 {
				return cpu.MaxStep.KHz()
			}
			if j.due > maxDue {
				maxDue = j.due
			}
		}
		if len(z.jobs) == 0 {
			z.history = nil
			return 0
		}
		keepFrom := now - sim.Time(int64(math.Ceil((math.E-1)*float64(int64(maxDue-now)))))
		kept := z.history[:0]
		for _, h := range z.history {
			if h.release >= keepFrom {
				kept = append(kept, h)
			}
		}
		z.history = kept
		for _, j := range z.jobs {
			delta := int64(j.due - now)
			lo := now - sim.Time(int64(math.Ceil((math.E-1)*float64(delta))))
			var w int64
			for _, h := range z.history {
				if h.release >= lo && h.release <= now && h.due <= j.due {
					w += h.orig
				}
			}
			if n := (w*1000 + delta - 1) / delta; n > need {
				need = n
			}
		}
	}
	return need
}

// OnQuantum implements the kernel's SpeedPolicy interface.
func (z *ZooScheduler) OnQuantum(now sim.Time, utilPP10K int, cur cpu.Step, _ cpu.Voltage) (cpu.Step, cpu.Voltage) {
	z.retire(utilPP10K, cur)
	z.synthesize(now, utilPP10K, cur)
	z.markExpired(now)
	z.lastNow = now
	step := cpu.StepForKHz(z.requiredKHz(now))
	v := cpu.VHigh
	if z.VoltageScale && cpu.VoltageOK(step, cpu.VLow) {
		v = cpu.VLow
	}
	return step, v
}

// Name identifies the policy in the paper's style.
func (z *ZooScheduler) Name() string {
	vs := ""
	if z.VoltageScale {
		vs = ", voltage scaling"
	}
	return fmt.Sprintf("%s(slack=%d)%s", z.algo, z.SlackQuanta, vs)
}

// String summarizes the scheduler state for debugging.
func (z *ZooScheduler) String() string {
	return fmt.Sprintf("zoo{%s pending=%d expired=%d app=%v}",
		z.algo, len(z.jobs), z.Expired, z.sawApp)
}
