package policy

import (
	"math"
	"math/rand/v2"
	"testing"
)

// ydsReferenceEnergy is an independent O(n³) implementation of the
// Yao–Demers–Shenker optimum by repeated critical-interval peeling: find
// the densest interval [a, b] over all (release, deadline) pairs, run its
// jobs at that density, collapse the interval, recurse. The taut-string
// oracle must agree with it on energy to float precision.
func ydsReferenceEnergy(jobs []OracleJob) float64 {
	type job struct{ r, d, w float64 }
	var js []job
	for _, j := range jobs {
		if j.Work > 0 {
			js = append(js, job{j.Release, j.Due, j.Work})
		}
	}
	energy := 0.0
	for len(js) > 0 {
		bestG, bestA, bestB := -1.0, 0.0, 0.0
		for _, ja := range js {
			for _, jb := range js {
				a, b := ja.r, jb.d
				if b <= a {
					continue
				}
				w := 0.0
				for _, j := range js {
					if j.r >= a && j.d <= b {
						w += j.w
					}
				}
				if g := w / (b - a); g > bestG {
					bestG, bestA, bestB = g, a, b
				}
			}
		}
		energy += bestG * bestG * bestG * (bestB - bestA)
		width := bestB - bestA
		var rest []job
		for _, j := range js {
			if j.r >= bestA && j.d <= bestB {
				continue // scheduled inside the critical interval
			}
			if j.r > bestB {
				j.r -= width
			} else if j.r > bestA {
				j.r = bestA
			}
			if j.d > bestB {
				j.d -= width
			} else if j.d > bestA {
				j.d = bestA
			}
			rest = append(rest, j)
		}
		js = rest
	}
	return energy
}

func randomInstance(rng *rand.Rand, maxJobs int) []OracleJob {
	n := 1 + rng.IntN(maxJobs)
	jobs := make([]OracleJob, n)
	for i := range jobs {
		r := float64(rng.IntN(16))
		d := r + 1 + float64(rng.IntN(6))
		jobs[i] = OracleJob{Release: r, Due: d, Work: 0.05 + 1.95*rng.Float64()}
	}
	return jobs
}

func instanceHorizon(jobs []OracleJob) int {
	h := 0.0
	for _, j := range jobs {
		if j.Due > h {
			h = j.Due
		}
	}
	return int(math.Ceil(h))
}

func totalWork(jobs []OracleJob) float64 {
	w := 0.0
	for _, j := range jobs {
		w += j.Work
	}
	return w
}

func TestOracleSingleJob(t *testing.T) {
	sched, err := OptimalSchedule([]OracleJob{{Release: 0, Due: 2, Work: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 1 || sched[0].Start != 0 || sched[0].End != 2 {
		t.Fatalf("schedule %+v", sched)
	}
	if math.Abs(sched[0].Speed-0.5) > 1e-12 {
		t.Fatalf("speed %v, want 0.5", sched[0].Speed)
	}
	if e := sched.Energy(); math.Abs(e-0.25) > 1e-12 {
		t.Fatalf("energy %v, want 0.25", e)
	}
}

// TestOracleClassicCriticalInterval pins the canonical YDS shape: a dense
// job forces a fast critical interval, and the surrounding work runs at
// the residual density — not at the naive average.
func TestOracleClassicCriticalInterval(t *testing.T) {
	jobs := []OracleJob{
		{Release: 0, Due: 10, Work: 2}, // background, density 0.2
		{Release: 4, Due: 6, Work: 2},  // spike, density 1.0
	}
	sched, err := OptimalSchedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if missed, late := VerifySchedule(jobs, sched); missed > 1e-9 || late != 0 {
		t.Fatalf("oracle infeasible: missed %v, late %d", missed, late)
	}
	// Critical interval [4,6] at speed 1; remaining 2 units of background
	// work spread over the other 8 time units at 0.25.
	if s := sched.MaxSpeed(); math.Abs(s-1) > 1e-9 {
		t.Fatalf("max speed %v, want 1", s)
	}
	want := 1.0*1.0*1.0*2 + 0.25*0.25*0.25*8
	if e := sched.Energy(); math.Abs(e-want) > 1e-9 {
		t.Fatalf("energy %v, want %v", e, want)
	}
}

func TestOracleMatchesYDSReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	for i := 0; i < 250; i++ {
		jobs := randomInstance(rng, 10)
		sched, err := OptimalSchedule(jobs)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if missed, late := VerifySchedule(jobs, sched); missed > 1e-6 || late != 0 {
			t.Fatalf("instance %d %+v: oracle infeasible, missed %v late %d\nschedule %+v",
				i, jobs, missed, late, sched)
		}
		if w, want := sched.TotalWork(), totalWork(jobs); math.Abs(w-want) > 1e-6 {
			t.Fatalf("instance %d: schedule serves %v of %v work", i, w, want)
		}
		ref := ydsReferenceEnergy(jobs)
		if got := sched.Energy(); math.Abs(got-ref) > 1e-6*(1+ref) {
			t.Fatalf("instance %d %+v: oracle energy %v, YDS reference %v",
				i, jobs, got, ref)
		}
	}
}

// TestOracleEndDeadlineEqualsHull checks the adapter's slack<0 mode
// against OptSpeeds: with every deadline at the trace end, the
// Li–Yao–Yuan corridor's floor is flat and the taut string is exactly the
// lower convex hull of cumulative arrivals — Weiser's OPT.
func TestOracleEndDeadlineEqualsHull(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 0))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.IntN(60)
		util := make([]float64, n)
		for i := range util {
			if rng.Float64() < 0.3 {
				continue // idle interval
			}
			util[i] = rng.Float64()
		}
		jobs := OracleFromTrace(util, -1)
		sched, err := OptimalSchedule(jobs)
		if err != nil {
			t.Fatal(err)
		}
		speeds, err := OptSpeeds(util, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		res, err := EvaluateSpeeds(util, speeds, true)
		if err != nil {
			t.Fatal(err)
		}
		if res.MissedWork > 1e-6 {
			t.Fatalf("trial %d: OptSpeeds misses %v work", trial, res.MissedWork)
		}
		if o, h := sched.Energy(), res.Energy; math.Abs(o-h) > 1e-6*(1+h) {
			t.Fatalf("trial %d: oracle %v != hull %v on end-deadline instance", trial, o, h)
		}
	}
}

func TestOraclePerIntervalExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 0))
	for trial := 0; trial < 50; trial++ {
		jobs := randomInstance(rng, 8)
		sched, err := OptimalSchedule(jobs)
		if err != nil {
			t.Fatal(err)
		}
		n := instanceHorizon(jobs)
		per := sched.PerInterval(n)
		sum := 0.0
		for _, s := range per {
			sum += s
		}
		if want := totalWork(jobs); math.Abs(sum-want) > 1e-6 {
			t.Fatalf("trial %d: per-interval serves %v of %v", trial, sum, want)
		}
		// Integer-aligned instance: resampling must not introduce misses.
		sc := ScoreSpeeds(jobs, per, false)
		if sc.MissedWork > 1e-6 || sc.LateJobs != 0 {
			t.Fatalf("trial %d: per-interval schedule misses %v work (%d jobs)",
				trial, sc.MissedWork, sc.LateJobs)
		}
		if math.Abs(sc.Energy-sched.Energy()) > 1e-6*(1+sc.Energy) {
			t.Fatalf("trial %d: per-interval energy %v != schedule energy %v",
				trial, sc.Energy, sched.Energy())
		}
	}
}

func TestOracleRejectsBadInstances(t *testing.T) {
	bad := [][]OracleJob{
		{{Release: 0, Due: 1, Work: math.NaN()}},
		{{Release: 0, Due: 1, Work: -1}},
		{{Release: 2, Due: 1, Work: 1}},
		{{Release: 1, Due: 1, Work: 1}},
	}
	for i, jobs := range bad {
		if _, err := OptimalSchedule(jobs); err == nil {
			t.Errorf("instance %d accepted: %+v", i, jobs)
		}
	}
	sched, err := OptimalSchedule(nil)
	if err != nil || len(sched) != 0 {
		t.Fatalf("empty instance: %+v, %v", sched, err)
	}
	// Zero-work jobs are ignored, not errors.
	sched, err = OptimalSchedule([]OracleJob{{Release: 0, Due: 0, Work: 0}})
	if err != nil || len(sched) != 0 {
		t.Fatalf("zero-work instance: %+v, %v", sched, err)
	}
}
