// Package stats provides the small set of descriptive statistics the paper's
// methodology needs: sample mean, standard deviation, and Student-t 95%
// confidence intervals ("we found the 95% confidence interval of the energy
// to be less than 0.7% of the mean energy"), plus simple histograms for
// utilization distributions.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic needs at least one sample.
var ErrEmpty = errors.New("stats: no samples")

// Mean returns the arithmetic mean of xs, or an error if xs is empty.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the unbiased sample variance (divisor n−1). A single
// sample has zero variance by convention.
func Variance(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) == 1 {
		return 0, nil
	}
	m, _ := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// MinMax returns the extremes of xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac, nil
}

// Quantile returns the p-th percentile (0 ≤ p ≤ 100) of xs under the
// nearest-rank definition: the smallest sample x such that at least p% of
// the samples are ≤ x. Unlike Percentile it never interpolates, so the
// result is always an actual sample and the computation is exactly
// reproducible across platforms — no float blending whose rounding could
// split a byte-identity guarantee. The fleet reducer's population tables
// are built on it for exactly that reason.
//
// Boundary conventions: p = 0 returns the minimum, p = 100 the maximum,
// and a single-sample set returns that sample for every p. The input is
// not modified.
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if math.IsNaN(p) || p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	// Nearest rank: ceil(p/100 · n), clamped to [1, n] so p = 0 still
	// indexes the first sample.
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1], nil
}

// Quantiles computes several nearest-rank quantiles over one sort of xs.
// The result is ordered like ps. Use it when reducing the same sample set
// to p50/p95/p99 in one pass.
func Quantiles(xs []float64, ps ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if math.IsNaN(p) || p < 0 || p > 100 {
			return nil, fmt.Errorf("stats: quantile %v out of [0,100]", p)
		}
		rank := int(math.Ceil(p / 100 * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		if rank > len(sorted) {
			rank = len(sorted)
		}
		out[i] = sorted[rank-1]
	}
	return out, nil
}

// tTable holds two-sided 95% Student-t critical values indexed by degrees of
// freedom 1..30. Beyond 30 degrees the normal approximation 1.96 is used.
var tTable = [31]float64{
	0, // df 0 unused
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom (≥1).
func TCritical95(df int) float64 {
	if df < 1 {
		df = 1
	}
	if df <= 30 {
		return tTable[df]
	}
	return 1.96
}

// Interval is a symmetric confidence interval around a sample mean.
type Interval struct {
	Mean float64
	Low  float64
	High float64
	N    int
}

// HalfWidth returns half the interval's span.
func (iv Interval) HalfWidth() float64 { return (iv.High - iv.Low) / 2 }

// RelativeWidth returns the half-width as a fraction of the mean, the
// "CI less than 0.7% of the mean" figure the paper quotes. It returns +Inf
// for a zero mean with nonzero width.
func (iv Interval) RelativeWidth() float64 {
	if iv.Mean == 0 {
		if iv.HalfWidth() == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(iv.HalfWidth() / iv.Mean)
}

// String formats the interval the way the paper's Table 2 does:
// "low - high".
func (iv Interval) String() string {
	return fmt.Sprintf("%.2f - %.2f", iv.Low, iv.High)
}

// CI95 returns the 95% Student-t confidence interval for the mean of xs.
// At least two samples are required for a nonzero width.
func CI95(xs []float64) (Interval, error) {
	m, err := Mean(xs)
	if err != nil {
		return Interval{}, err
	}
	if len(xs) == 1 {
		return Interval{Mean: m, Low: m, High: m, N: 1}, nil
	}
	sd, err := StdDev(xs)
	if err != nil {
		return Interval{}, err
	}
	h := TCritical95(len(xs)-1) * sd / math.Sqrt(float64(len(xs)))
	return Interval{Mean: m, Low: m - h, High: m + h, N: len(xs)}, nil
}

// Summary bundles the descriptive statistics of one sample set.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	CI     Interval
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	m, _ := Mean(xs)
	sd, _ := StdDev(xs)
	lo, hi, _ := MinMax(xs)
	ci, _ := CI95(xs)
	return Summary{N: len(xs), Mean: m, StdDev: sd, Min: lo, Max: hi, CI: ci}, nil
}

// Histogram counts samples into nbins equal-width bins over [lo, hi).
// Samples outside the range are clamped into the end bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram creates a histogram with nbins bins over [lo, hi). It returns
// an error if nbins < 1, the range is empty, or an endpoint is not finite.
func NewHistogram(lo, hi float64, nbins int) (*Histogram, error) {
	if nbins < 1 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) is not finite", lo, hi)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}, nil
}

// MustHistogram is NewHistogram that panics on error, for composing literals
// with known-good constant ranges.
func MustHistogram(lo, hi float64, nbins int) *Histogram {
	h, err := NewHistogram(lo, hi, nbins)
	if err != nil {
		panic(err)
	}
	return h
}

// Add records one sample. Out-of-range samples clamp to the edge bins; NaN
// samples are ignored, since int(NaN) would silently land in bin 0 and
// corrupt both the bin and Total.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	bin := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if bin < 0 {
		bin = 0
	}
	if bin >= len(h.Counts) {
		bin = len(h.Counts) - 1
	}
	h.Counts[bin]++
	h.Total++
}

// Fraction returns the fraction of samples that fell in bin i. An empty
// histogram or an out-of-range bin index reports 0 rather than NaN or a
// panic.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 || i < 0 || i >= len(h.Counts) {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}
