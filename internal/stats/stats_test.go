package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Errorf("Mean = %v, %v", m, err)
	}
	m, _ = Mean([]float64{7})
	if m != 7 {
		t.Errorf("Mean single = %v", m)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	if _, err := Variance(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Variance(nil) did not return ErrEmpty")
	}
	v, _ := Variance([]float64{5})
	if v != 0 {
		t.Errorf("single-sample variance = %v, want 0", v)
	}
	// Known: variance of {2,4,4,4,5,5,7,9} is 32/7 (unbiased).
	v, _ = Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("variance = %v, want %v", v, 32.0/7)
	}
	sd, _ := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(sd-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("stddev = %v", sd)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 4, 1, 5})
	if err != nil || lo != -1 || hi != 5 {
		t.Errorf("MinMax = %v, %v, %v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); !errors.Is(err, ErrEmpty) {
		t.Error("MinMax(nil) did not return ErrEmpty")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	} {
		got, err := Percentile(xs, c.p)
		if err != nil || math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, %v, want %v", c.p, got, err, c.want)
		}
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) did not error")
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Error("Percentile(nil) did not return ErrEmpty")
	}
	got, _ := Percentile([]float64{9}, 73)
	if got != 9 {
		t.Errorf("single-sample percentile = %v", got)
	}
	// Percentile must not mutate its input.
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 || unsorted[1] != 1 || unsorted[2] != 2 {
		t.Error("Percentile mutated its input slice")
	}
}

func TestQuantile(t *testing.T) {
	if _, err := Quantile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Error("Quantile(nil) did not return ErrEmpty")
	}
	if _, err := Quantile([]float64{}, 95); !errors.Is(err, ErrEmpty) {
		t.Error("Quantile(empty) did not return ErrEmpty")
	}
	// Single sample: every p, including the extremes, returns that sample.
	for _, p := range []float64{0, 1, 50, 95, 99, 100} {
		got, err := Quantile([]float64{42}, p)
		if err != nil || got != 42 {
			t.Errorf("Quantile(single, %v) = %v, %v, want 42", p, got, err)
		}
	}
	// Nearest rank never interpolates: p50 of {1..4} is the 2nd sample, not 2.5.
	xs := []float64{4, 1, 3, 2}
	for _, c := range []struct{ p, want float64 }{
		{0, 1}, {25, 1}, {50, 2}, {75, 3}, {95, 4}, {99, 4}, {100, 4},
	} {
		got, err := Quantile(xs, c.p)
		if err != nil || got != c.want {
			t.Errorf("Quantile(%v, %v) = %v, %v, want %v", xs, c.p, got, err, c.want)
		}
	}
	// 100 samples 1..100: p95 = 95th sample, p99 = 99th.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(100 - i)
	}
	for _, c := range []struct{ p, want float64 }{{50, 50}, {95, 95}, {99, 99}} {
		got, _ := Quantile(big, c.p)
		if got != c.want {
			t.Errorf("Quantile(1..100, %v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Out-of-range and NaN probabilities are rejected.
	for _, p := range []float64{-1, 100.5, math.NaN()} {
		if _, err := Quantile(xs, p); err == nil {
			t.Errorf("Quantile(p=%v) did not error", p)
		}
	}
	// Input must not be mutated.
	unsorted := []float64{3, 1, 2}
	Quantile(unsorted, 50)
	if unsorted[0] != 3 || unsorted[1] != 1 || unsorted[2] != 2 {
		t.Error("Quantile mutated its input slice")
	}
}

func TestQuantiles(t *testing.T) {
	if _, err := Quantiles(nil, 50, 95, 99); !errors.Is(err, ErrEmpty) {
		t.Error("Quantiles(nil) did not return ErrEmpty")
	}
	xs := []float64{5, 2, 9, 1, 7}
	got, err := Quantiles(xs, 50, 95, 99)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 9, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Quantiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Batch and single forms agree for every p.
	for _, p := range []float64{0, 10, 33, 50, 66, 90, 95, 99, 100} {
		single, _ := Quantile(xs, p)
		batch, _ := Quantiles(xs, p)
		if single != batch[0] {
			t.Errorf("Quantile(%v)=%v disagrees with Quantiles=%v", p, single, batch[0])
		}
	}
	if _, err := Quantiles(xs, 50, math.NaN()); err == nil {
		t.Error("Quantiles with NaN p did not error")
	}
}

func TestTCritical95(t *testing.T) {
	if got := TCritical95(1); got != 12.706 {
		t.Errorf("t(df=1) = %v", got)
	}
	if got := TCritical95(9); got != 2.262 {
		t.Errorf("t(df=9) = %v", got)
	}
	if got := TCritical95(30); got != 2.042 {
		t.Errorf("t(df=30) = %v", got)
	}
	if got := TCritical95(1000); got != 1.96 {
		t.Errorf("t(df=1000) = %v", got)
	}
	if got := TCritical95(0); got != 12.706 {
		t.Errorf("t(df=0) should clamp to df=1, got %v", got)
	}
}

func TestCI95(t *testing.T) {
	if _, err := CI95(nil); !errors.Is(err, ErrEmpty) {
		t.Error("CI95(nil) did not return ErrEmpty")
	}
	iv, err := CI95([]float64{10})
	if err != nil || iv.Low != 10 || iv.High != 10 || iv.N != 1 {
		t.Errorf("single-sample CI = %+v, %v", iv, err)
	}
	// Hand-checked: {8,9,10,11,12}: mean 10, sd sqrt(2.5), df=4, t=2.776,
	// half = 2.776*sqrt(2.5)/sqrt(5) = 1.9629...
	iv, err = CI95([]float64{8, 9, 10, 11, 12})
	if err != nil {
		t.Fatal(err)
	}
	wantHalf := 2.776 * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(iv.Mean-10) > 1e-12 || math.Abs(iv.HalfWidth()-wantHalf) > 1e-9 {
		t.Errorf("CI = %+v, want mean 10 half %v", iv, wantHalf)
	}
	if iv.Low >= iv.Mean || iv.High <= iv.Mean {
		t.Errorf("interval %v does not bracket the mean", iv)
	}
}

func TestIntervalRelativeWidth(t *testing.T) {
	iv := Interval{Mean: 100, Low: 99, High: 101}
	if got := iv.RelativeWidth(); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("RelativeWidth = %v, want 0.01", got)
	}
	zero := Interval{}
	if zero.RelativeWidth() != 0 {
		t.Error("zero interval should have zero relative width")
	}
	weird := Interval{Mean: 0, Low: -1, High: 1}
	if !math.IsInf(weird.RelativeWidth(), 1) {
		t.Error("nonzero width around zero mean should be +Inf")
	}
}

func TestIntervalString(t *testing.T) {
	iv := Interval{Mean: 86.04, Low: 85.59, High: 86.49}
	if got := iv.String(); got != "85.59 - 86.49" {
		t.Errorf("String() = %q (Table 2 format)", got)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Summarize(nil) did not return ErrEmpty")
	}
}

func TestHistogram(t *testing.T) {
	h := MustHistogram(0, 1, 10)
	for _, x := range []float64{0.05, 0.15, 0.15, 0.95, 1.5, -0.5} {
		h.Add(x)
	}
	if h.Counts[0] != 2 { // 0.05 and the clamped -0.5
		t.Errorf("bin 0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 2 {
		t.Errorf("bin 1 = %d, want 2", h.Counts[1])
	}
	if h.Counts[9] != 2 { // 0.95 and the clamped 1.5
		t.Errorf("bin 9 = %d, want 2", h.Counts[9])
	}
	if h.Total != 6 {
		t.Errorf("total = %d", h.Total)
	}
	if got := h.Fraction(0); math.Abs(got-2.0/6) > 1e-12 {
		t.Errorf("Fraction(0) = %v", got)
	}
	if (&Histogram{Counts: make([]int, 1)}).Fraction(0) != 0 {
		t.Error("empty histogram fraction should be 0")
	}
	// Out-of-range bin indices report 0 instead of panicking.
	if h.Fraction(-1) != 0 || h.Fraction(len(h.Counts)) != 0 {
		t.Error("out-of-range bin fraction should be 0")
	}
	// NaN samples are ignored: they would otherwise clamp into bin 0 and
	// inflate Total.
	before0, beforeTotal := h.Counts[0], h.Total
	h.Add(math.NaN())
	if h.Counts[0] != before0 || h.Total != beforeTotal {
		t.Errorf("NaN sample changed histogram: bin0 %d→%d, total %d→%d",
			before0, h.Counts[0], beforeTotal, h.Total)
	}
}

func TestHistogramConstructionErrors(t *testing.T) {
	bad := []struct {
		lo, hi float64
		nbins  int
	}{
		{0, 1, 0},
		{1, 1, 5},
		{2, 1, 5},
		{math.NaN(), 1, 5},
		{0, math.Inf(1), 5},
	}
	for _, c := range bad {
		if h, err := NewHistogram(c.lo, c.hi, c.nbins); err == nil {
			t.Errorf("NewHistogram(%v, %v, %d) = %v, want error", c.lo, c.hi, c.nbins, h)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustHistogram on a bad range did not panic")
		}
	}()
	MustHistogram(1, 0, 5)
}

// Property: the CI always brackets the mean, and widens with more spread.
func TestCI95Property(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		iv, err := CI95(xs)
		if err != nil {
			return false
		}
		return iv.Low <= iv.Mean && iv.Mean <= iv.High
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is translation-invariant.
func TestVarianceShiftProperty(t *testing.T) {
	f := func(raw []int8, shift int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = float64(v) + float64(shift)
		}
		vx, _ := Variance(xs)
		vy, _ := Variance(ys)
		return math.Abs(vx-vy) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
