package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator (SplitMix64).
// Simulations take an explicit *RNG so that every run is reproducible from
// its seed; nothing in this module ever consults a global or time-based
// source of randomness.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent-looking streams; seed 0 is valid.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	// Rejection sampling to avoid modulo bias.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int64(v % max)
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Norm returns a standard normal deviate using the polar Box–Muller method.
func (r *RNG) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Duration returns a uniform duration in [lo, hi]. It panics if hi < lo.
func (r *RNG) Duration(lo, hi Duration) Duration {
	if hi < lo {
		panic("sim: Duration with hi < lo")
	}
	if hi == lo {
		return lo
	}
	return lo + Duration(r.Int63n(int64(hi-lo)+1))
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Split returns a new generator whose stream is independent of r's
// continued output, for giving each simulated process its own source.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// NewRNGStream returns a generator for the numbered stream of a seed. The
// stream id is diffused through the SplitMix64 finalizer before mixing, so
// stream k is not merely a time-shifted view of stream 0: consumers that
// must not perturb each other (the workload's jitter source and the
// fault injector, say) derive disjoint-looking streams from one run seed.
func NewRNGStream(seed, stream uint64) *RNG {
	z := (stream + 1) * 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return NewRNG(seed ^ z ^ (z >> 31))
}
