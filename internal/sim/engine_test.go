package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEngineZeroValueReady(t *testing.T) {
	var e Engine
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
	if e.Step() {
		t.Fatal("Step() on empty queue reported an event")
	}
}

func TestEngineFiresInTimeOrder(t *testing.T) {
	var e Engine
	var got []Time
	for _, at := range []Time{30, 10, 20, 10, 5} {
		if _, err := e.At(at, func(now Time) { got = append(got, now) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	want := []Time{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
	if e.Now() != 30 {
		t.Errorf("final Now() = %v, want 30", e.Now())
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := e.At(100, func(Time) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", order)
		}
	}
}

func TestEngineRejectsPast(t *testing.T) {
	var e Engine
	if _, err := e.At(50, func(Time) {}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if _, err := e.At(10, func(Time) {}); !errors.Is(err, ErrPast) {
		t.Fatalf("At(past) error = %v, want ErrPast", err)
	}
}

func TestEngineRejectsNilEvent(t *testing.T) {
	var e Engine
	if _, err := e.At(0, nil); err == nil {
		t.Fatal("At(nil) succeeded, want error")
	}
}

func TestEngineAfterClampsNegative(t *testing.T) {
	var e Engine
	fired := false
	if _, err := e.After(-5, func(now Time) {
		if now != 0 {
			t.Errorf("fired at %v, want 0", now)
		}
		fired = true
	}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
}

func TestEngineCancel(t *testing.T) {
	var e Engine
	fired := false
	h, err := e.At(10, func(Time) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if !e.Cancel(h) {
		t.Fatal("Cancel of pending event reported false")
	}
	if e.Cancel(h) {
		t.Fatal("double Cancel reported true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineCancelAfterFire(t *testing.T) {
	var e Engine
	h, err := e.At(10, func(Time) {})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if e.Cancel(h) {
		t.Fatal("Cancel after fire reported true")
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	var e Engine
	var got []Time
	handles := make([]Handle, 0, 5)
	for _, at := range []Time{1, 2, 3, 4, 5} {
		h, err := e.At(at, func(now Time) { got = append(got, now) })
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	e.Cancel(handles[2]) // remove the event at t=3
	e.Run()
	want := []Time{1, 2, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("fired at %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired at %v, want %v", got, want)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	count := 0
	for _, at := range []Time{10, 20, 30, 40} {
		if _, err := e.At(at, func(Time) { count++ }); err != nil {
			t.Fatal(err)
		}
	}
	e.RunUntil(25)
	if count != 2 {
		t.Errorf("RunUntil(25) fired %d events, want 2", count)
	}
	if e.Now() != 25 {
		t.Errorf("Now() = %v, want 25", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", e.Pending())
	}
	e.RunUntil(100)
	if count != 4 {
		t.Errorf("after second RunUntil fired %d, want 4", count)
	}
}

func TestEngineHalt(t *testing.T) {
	var e Engine
	count := 0
	for i := Time(1); i <= 10; i++ {
		if _, err := e.At(i, func(Time) {
			count++
			if count == 3 {
				e.Halt()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	if count != 3 {
		t.Errorf("Halt let %d events fire, want 3", count)
	}
}

func TestEngineEvery(t *testing.T) {
	var e Engine
	var times []Time
	e.Every(10, func(now Time) bool {
		times = append(times, now)
		return now < 50
	})
	e.Run()
	want := []Time{10, 20, 30, 40, 50}
	if len(times) != len(want) {
		t.Fatalf("Every fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("Every fired at %v, want %v", times, want)
		}
	}
}

func TestEngineEveryRejectsBadPeriod(t *testing.T) {
	var e Engine
	if err := e.Every(0, func(Time) bool { return false }); err == nil {
		t.Fatal("Every(0) succeeded, want error")
	}
	if err := e.Every(-5, func(Time) bool { return false }); err == nil {
		t.Fatal("Every(-5) succeeded, want error")
	}
}

func TestEngineFailHaltsAndKeepsFirstError(t *testing.T) {
	var e Engine
	first := errors.New("first failure")
	count := 0
	for i := Time(1); i <= 10; i++ {
		if _, err := e.At(i, func(Time) {
			count++
			if count == 3 {
				e.Fail(first)
				e.Fail(errors.New("second failure"))
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); !errors.Is(err, first) {
		t.Fatalf("Run() = %v, want the first failure", err)
	}
	if count != 3 {
		t.Errorf("Fail let %d events fire, want 3", count)
	}
	if !errors.Is(e.Err(), first) {
		t.Errorf("Err() = %v, want the first failure", e.Err())
	}
	// A failed engine stays failed: stepping fires nothing further.
	if e.Step() {
		t.Error("Step() on failed engine fired an event")
	}
}

func TestEngineEventCap(t *testing.T) {
	var e Engine
	e.MaxEvents = 50
	// A self-re-arming zero-delay event: without the cap this never drains.
	var loop Event
	loop = func(now Time) {
		if _, err := e.At(now, loop); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.At(0, loop); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); !errors.Is(err, ErrEventCap) {
		t.Fatalf("Run() = %v, want ErrEventCap", err)
	}
	if e.Fired() != 50 {
		t.Errorf("Fired = %d, want exactly the cap", e.Fired())
	}
}

func TestEngineRunUntilReturnsFailure(t *testing.T) {
	var e Engine
	boom := errors.New("boom")
	if _, err := e.At(10, func(Time) { e.Fail(boom) }); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(100); !errors.Is(err, boom) {
		t.Fatalf("RunUntil = %v, want boom", err)
	}
	// The clock stays at the failing instant rather than jumping to end.
	if e.Now() != 10 {
		t.Errorf("Now() = %v after failure, want 10", e.Now())
	}
}

func TestEngineScheduleFromInsideEvent(t *testing.T) {
	var e Engine
	var got []Time
	if _, err := e.At(10, func(now Time) {
		got = append(got, now)
		if _, err := e.After(5, func(now Time) { got = append(got, now) }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Fatalf("got %v, want [10 15]", got)
	}
}

// Property: any batch of events fires in nondecreasing time order.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		var e Engine
		var fired []Time
		for _, off := range offsets {
			at := Time(off)
			if _, err := e.At(at, func(now Time) { fired = append(fired, now) }); err != nil {
				return false
			}
		}
		e.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0µs"},
		{999, "999µs"},
		{Millisecond, "1ms"},
		{1500, "1.5ms"},
		{Second, "1s"},
		{2*Second + 500*Millisecond, "2.5s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestFromSeconds(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500000 {
		t.Errorf("FromSeconds(1.5) = %d, want 1500000", int64(got))
	}
	if got := FromSeconds(-1.5); got != -1500000 {
		t.Errorf("FromSeconds(-1.5) = %d, want -1500000", int64(got))
	}
	if got := FromSeconds(0); got != 0 {
		t.Errorf("FromSeconds(0) = %d, want 0", int64(got))
	}
}

func TestTimeConversions(t *testing.T) {
	tm := 2500 * Millisecond
	if got := tm.Seconds(); got != 2.5 {
		t.Errorf("Seconds() = %v, want 2.5", got)
	}
	if got := tm.Millis(); got != 2500 {
		t.Errorf("Millis() = %v, want 2500", got)
	}
	if got := tm.Std().Milliseconds(); got != 2500 {
		t.Errorf("Std() = %v, want 2.5s", tm.Std())
	}
}

func TestEngineFiredCounter(t *testing.T) {
	var e Engine
	for i := Time(1); i <= 5; i++ {
		if _, err := e.At(i, func(Time) {}); err != nil {
			t.Fatal(err)
		}
	}
	if e.Fired() != 0 {
		t.Errorf("Fired = %d before run", e.Fired())
	}
	e.Run()
	if e.Fired() != 5 {
		t.Errorf("Fired = %d, want 5", e.Fired())
	}
}

func TestEngineEveryStopsOnHalt(t *testing.T) {
	var e Engine
	count := 0
	e.Every(10, func(Time) bool {
		count++
		if count == 3 {
			e.Halt()
		}
		return true
	})
	e.Run()
	halted := count
	if halted != 3 {
		t.Fatalf("halt let %d ticks fire", halted)
	}
	// The periodic event is still queued; resuming continues the series.
	e.RunUntil(100)
	if count <= halted {
		t.Error("Every did not resume after halt")
	}
}
