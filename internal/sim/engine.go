package sim

import (
	"container/heap"
	"errors"
	"fmt"

	"clocksched/internal/telemetry"
)

// Event is a callback scheduled to fire at a specific virtual time.
type Event func(now Time)

// scheduled is one pending event in the queue. seq breaks ties so that two
// events at the same instant fire in the order they were scheduled,
// keeping runs deterministic.
type scheduled struct {
	at    Time
	seq   uint64
	fn    Event
	index int // heap index; -1 once popped or cancelled
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*scheduled

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	s := x.(*scheduled)
	s.index = len(*q)
	*q = append(*q, s)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	s.index = -1
	*q = old[:n-1]
	return s
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	e *scheduled
}

// Engine is a discrete-event simulator. The zero value is ready to use and
// starts at time zero.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	fired  uint64
	halted bool
	err    error

	// MaxEvents, when non-zero, bounds how many events a run may fire.
	// Exceeding it records an ErrEventCap failure and halts the run: a
	// runaway schedule (an event loop re-arming itself at the same
	// instant, say) terminates with a diagnostic instead of hanging the
	// host process.
	MaxEvents uint64

	// Telemetry instruments; nil (the default) when telemetry is disabled,
	// in which case the hot path pays one nil check per operation.
	telFired *telemetry.Counter
	telDepth *telemetry.Gauge
}

// Instrument attaches telemetry instruments to the engine. A nil registry
// detaches them (sim_events_fired_total, sim_event_queue_depth).
func (e *Engine) Instrument(reg *telemetry.Registry) {
	e.telFired = reg.Counter(telemetry.MSimEventsFired)
	e.telDepth = reg.Gauge(telemetry.MSimQueueDepth)
}

// ErrPast is returned when an event is scheduled before the current time.
var ErrPast = errors.New("sim: event scheduled in the past")

// ErrEventCap is the failure recorded when a run exceeds Engine.MaxEvents.
var ErrEventCap = errors.New("sim: event-count cap exceeded")

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have fired so far; useful for loop bounds in
// tests and for diagnosing runaway schedules.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to fire at absolute time t. Scheduling at the current time
// is allowed — the event fires before time advances further.
func (e *Engine) At(t Time, fn Event) (Handle, error) {
	if t < e.now {
		return Handle{}, fmt.Errorf("%w: at %v, now %v", ErrPast, t, e.now)
	}
	if fn == nil {
		return Handle{}, errors.New("sim: nil event")
	}
	s := &scheduled{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, s)
	e.telDepth.Set(float64(len(e.queue)))
	return Handle{e: s}, nil
}

// After schedules fn to fire d microseconds from now. A non-positive delay
// fires at the current instant.
func (e *Engine) After(d Duration, fn Event) (Handle, error) {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false if it already fired or was already cancelled).
func (e *Engine) Cancel(h Handle) bool {
	s := h.e
	if s == nil || s.index < 0 {
		return false
	}
	heap.Remove(&e.queue, s.index)
	s.index = -1
	s.fn = nil
	e.telDepth.Set(float64(len(e.queue)))
	return true
}

// Halt stops the run loop after the currently-firing event returns.
func (e *Engine) Halt() { e.halted = true }

// Fail records err as the run's failure and halts the run loop. Only the
// first failure is kept; later calls halt again but do not overwrite it.
// Event callbacks cannot return errors, so this is how an event reports an
// internal inconsistency to whoever called Run or RunUntil.
func (e *Engine) Fail(err error) {
	if err == nil {
		return
	}
	if e.err == nil {
		e.err = err
	}
	e.halted = true
}

// Err returns the failure recorded by Fail (or the event-cap guard), if any.
func (e *Engine) Err() error { return e.err }

// Step fires the single earliest pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty or a failure has been
// recorded.
func (e *Engine) Step() bool {
	if e.err != nil || len(e.queue) == 0 {
		return false
	}
	if e.MaxEvents > 0 && e.fired >= e.MaxEvents {
		e.Fail(fmt.Errorf("%w: %d events fired by %v with %d still pending",
			ErrEventCap, e.fired, e.now, len(e.queue)))
		return false
	}
	s := heap.Pop(&e.queue).(*scheduled)
	e.now = s.at
	e.fired++
	e.telFired.Inc()
	e.telDepth.Set(float64(len(e.queue)))
	fn := s.fn
	s.fn = nil
	fn(e.now)
	return true
}

// Run fires events until the queue drains, Halt is called, or a failure is
// recorded; it returns the recorded failure, if any.
func (e *Engine) Run() error {
	e.halted = false
	for !e.halted && e.Step() {
	}
	return e.err
}

// RunUntil fires events with timestamps ≤ end, then sets the clock to end.
// Events scheduled beyond end remain queued. It returns the failure
// recorded during the run, if any; after a failure the clock stays at the
// failing instant.
func (e *Engine) RunUntil(end Time) error {
	e.halted = false
	for !e.halted && e.err == nil && len(e.queue) > 0 && e.queue[0].at <= end {
		e.Step()
	}
	if !e.halted && e.err == nil && e.now < end {
		e.now = end
	}
	return e.err
}

// Every schedules fn to fire now+period, now+2·period, … until either fn
// returns false or the engine halts. It returns an error if period is not
// positive.
func (e *Engine) Every(period Duration, fn func(now Time) bool) error {
	if period <= 0 {
		return fmt.Errorf("sim: Every with non-positive period %v", period)
	}
	var tick Event
	tick = func(now Time) {
		if !fn(now) {
			return
		}
		// Re-arm. Scheduling from inside an event cannot fail — now+period
		// is strictly in the future — but surface any failure rather than
		// assuming.
		if _, err := e.At(now+period, tick); err != nil {
			e.Fail(err)
		}
	}
	_, err := e.After(period, tick)
	return err
}
