package sim

import (
	"errors"
	"fmt"

	"clocksched/internal/telemetry"
)

// Event is a callback scheduled to fire at a specific virtual time.
type Event func(now Time)

// scheduled is one pending event in the queue. seq breaks ties so that two
// events at the same instant fire in the order they were scheduled,
// keeping runs deterministic. Nodes are recycled through the engine's free
// list once fired or cancelled; gen counts recycles so a stale Handle can
// never cancel the node's next occupant.
type scheduled struct {
	at    Time
	seq   uint64
	gen   uint64
	fn    Event
	index int // heap index; -1 once popped or cancelled
}

// eventQueue is a min-heap ordered by (at, seq), maintained by hand (no
// container/heap) so the hot path pays no interface boxing or indirect
// calls: a 60-second run schedules and fires tens of thousands of events.
type eventQueue []*scheduled

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q eventQueue) down(i int) {
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && q.less(r, l) {
			least = r
		}
		if !q.less(least, i) {
			return
		}
		q.swap(i, least)
		i = least
	}
}

// push adds s to the heap.
func (q *eventQueue) push(s *scheduled) {
	s.index = len(*q)
	*q = append(*q, s)
	q.up(s.index)
}

// popMin removes and returns the earliest event.
func (q *eventQueue) popMin() *scheduled {
	old := *q
	s := old[0]
	n := len(old) - 1
	old.swap(0, n)
	old[n] = nil
	*q = old[:n]
	if n > 0 {
		(*q).down(0)
	}
	s.index = -1
	return s
}

// remove deletes the event at heap index i.
func (q *eventQueue) remove(i int) {
	old := *q
	n := len(old) - 1
	s := old[i]
	if i != n {
		old.swap(i, n)
	}
	old[n] = nil
	*q = old[:n]
	if i != n {
		(*q).down(i)
		(*q).up(i)
	}
	s.index = -1
}

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is valid and cancels nothing. A Handle kept past its event's
// firing (or cancellation) is harmless: the generation check rejects it
// even after the underlying node has been recycled for another event.
type Handle struct {
	e   *scheduled
	gen uint64
}

// Engine is a discrete-event simulator. The zero value is ready to use and
// starts at time zero.
type Engine struct {
	now    Time
	queue  eventQueue
	free   []*scheduled // recycled nodes, reused by At
	seq    uint64
	fired  uint64
	halted bool
	err    error

	// MaxEvents, when non-zero, bounds how many events a run may fire.
	// Exceeding it records an ErrEventCap failure and halts the run: a
	// runaway schedule (an event loop re-arming itself at the same
	// instant, say) terminates with a diagnostic instead of hanging the
	// host process.
	MaxEvents uint64

	// Telemetry instruments; nil (the default) when telemetry is disabled,
	// in which case the hot path pays one nil check per operation.
	telFired *telemetry.Counter
	telDepth *telemetry.Gauge
}

// Instrument attaches telemetry instruments to the engine. A nil registry
// detaches them (sim_events_fired_total, sim_event_queue_depth).
func (e *Engine) Instrument(reg *telemetry.Registry) {
	e.telFired = reg.Counter(telemetry.MSimEventsFired)
	e.telDepth = reg.Gauge(telemetry.MSimQueueDepth)
}

// ErrPast is returned when an event is scheduled before the current time.
var ErrPast = errors.New("sim: event scheduled in the past")

// ErrEventCap is the failure recorded when a run exceeds Engine.MaxEvents.
var ErrEventCap = errors.New("sim: event-count cap exceeded")

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have fired so far; useful for loop bounds in
// tests and for diagnosing runaway schedules.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// recycle returns a fired or cancelled node to the free list for the next
// At. The generation bump invalidates every Handle still pointing at it.
func (e *Engine) recycle(s *scheduled) {
	s.gen++
	s.fn = nil
	e.free = append(e.free, s)
}

// At schedules fn to fire at absolute time t. Scheduling at the current time
// is allowed — the event fires before time advances further.
func (e *Engine) At(t Time, fn Event) (Handle, error) {
	if t < e.now {
		return Handle{}, fmt.Errorf("%w: at %v, now %v", ErrPast, t, e.now)
	}
	if fn == nil {
		return Handle{}, errors.New("sim: nil event")
	}
	var s *scheduled
	if n := len(e.free); n > 0 {
		s = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		s.at, s.seq, s.fn = t, e.seq, fn
	} else {
		s = &scheduled{at: t, seq: e.seq, fn: fn}
	}
	e.seq++
	e.queue.push(s)
	e.telDepth.Set(float64(len(e.queue)))
	return Handle{e: s, gen: s.gen}, nil
}

// After schedules fn to fire d microseconds from now. A non-positive delay
// fires at the current instant.
func (e *Engine) After(d Duration, fn Event) (Handle, error) {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false if it already fired or was already cancelled).
func (e *Engine) Cancel(h Handle) bool {
	s := h.e
	if s == nil || s.gen != h.gen || s.index < 0 {
		return false
	}
	e.queue.remove(s.index)
	e.recycle(s)
	e.telDepth.Set(float64(len(e.queue)))
	return true
}

// Halt stops the run loop after the currently-firing event returns.
func (e *Engine) Halt() { e.halted = true }

// Fail records err as the run's failure and halts the run loop. Only the
// first failure is kept; later calls halt again but do not overwrite it.
// Event callbacks cannot return errors, so this is how an event reports an
// internal inconsistency to whoever called Run or RunUntil.
func (e *Engine) Fail(err error) {
	if err == nil {
		return
	}
	if e.err == nil {
		e.err = err
	}
	e.halted = true
}

// Err returns the failure recorded by Fail (or the event-cap guard), if any.
func (e *Engine) Err() error { return e.err }

// Step fires the single earliest pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty or a failure has been
// recorded.
func (e *Engine) Step() bool {
	if e.err != nil || len(e.queue) == 0 {
		return false
	}
	if e.MaxEvents > 0 && e.fired >= e.MaxEvents {
		e.Fail(fmt.Errorf("%w: %d events fired by %v with %d still pending",
			ErrEventCap, e.fired, e.now, len(e.queue)))
		return false
	}
	s := e.queue.popMin()
	e.now = s.at
	e.fired++
	e.telFired.Inc()
	e.telDepth.Set(float64(len(e.queue)))
	fn := s.fn
	// Recycle before firing: fn may schedule new events, and the bumped
	// generation already protects the node from the firing event's own
	// (now stale) Handle.
	e.recycle(s)
	fn(e.now)
	return true
}

// Run fires events until the queue drains, Halt is called, or a failure is
// recorded; it returns the recorded failure, if any.
func (e *Engine) Run() error {
	e.halted = false
	for !e.halted && e.Step() {
	}
	return e.err
}

// RunUntil fires events with timestamps ≤ end, then sets the clock to end.
// Events scheduled beyond end remain queued. It returns the failure
// recorded during the run, if any; after a failure the clock stays at the
// failing instant.
func (e *Engine) RunUntil(end Time) error {
	e.halted = false
	for !e.halted && e.err == nil && len(e.queue) > 0 && e.queue[0].at <= end {
		e.Step()
	}
	if !e.halted && e.err == nil && e.now < end {
		e.now = end
	}
	return e.err
}

// Every schedules fn to fire now+period, now+2·period, … until either fn
// returns false or the engine halts. It returns an error if period is not
// positive.
func (e *Engine) Every(period Duration, fn func(now Time) bool) error {
	if period <= 0 {
		return fmt.Errorf("sim: Every with non-positive period %v", period)
	}
	var tick Event
	tick = func(now Time) {
		if !fn(now) {
			return
		}
		// Re-arm. Scheduling from inside an event cannot fail — now+period
		// is strictly in the future — but surface any failure rather than
		// assuming.
		if _, err := e.At(now+period, tick); err != nil {
			e.Fail(err)
		}
	}
	_, err := e.After(period, tick)
	return err
}
