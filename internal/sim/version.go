package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Version identifies the behavioural revision of the simulation module: the
// engine, kernel, workloads, power model, and policies together. It
// participates in every sweep cache key, so bumping it invalidates all
// previously cached run results. Bump it whenever a change can alter the
// output of any run — a new power calibration, a workload tweak, a policy
// fix — and leave it alone for pure refactors.
//
// sim/3: the DAQ now covers capture windows that are not whole multiples of
// the sample interval (ceiling division plus a last-sample overhang refund
// in Energy), and the cached Result wire format gained the per-run
// telemetry summary.
//
// sim/4: DAQ energy integration is incremental (daq.Integrate): the
// fault-free path quantizes each power-timeline segment once and weights it
// by reading count instead of resampling every 200 µs window, so energy and
// average-power sums accumulate in segment order rather than sample order.
// The readings themselves are unchanged, but floating-point addition is not
// associative, so totals can differ from sim/3 at ULP scale; run results
// also now carry the DAQ digest (daq.Summary) instead of the materialized
// sample array.
const Version = "clocksched-sim/4"

// Hasher accumulates named fields into a canonical, order-sensitive
// encoding and digests them into a content-addressed cache key. Two specs
// hash equal exactly when every field was written with the same name and
// value in the same order, so a key is stable across processes and runs.
type Hasher struct {
	b strings.Builder
}

// NewHasher starts a key for the given domain (e.g. "clocksched.Config"),
// bound to the current simulation Version.
func NewHasher(domain string) *Hasher {
	return NewHasherAt(domain, Version)
}

// NewHasherAt starts a key bound to an explicit version string. It exists
// so cache-invalidation tests can prove that a version bump changes every
// key; production callers use NewHasher.
func NewHasherAt(domain, version string) *Hasher {
	h := &Hasher{}
	h.Field("domain", domain)
	h.Field("version", version)
	return h
}

// Field appends one named value. Values must be plain data (numbers,
// strings, booleans, or values with a deterministic String method):
// pointers and maps have no canonical %v rendering and must be flattened by
// the caller before hashing.
func (h *Hasher) Field(name string, v any) *Hasher {
	fmt.Fprintf(&h.b, "%s=%v;", name, v)
	return h
}

// Sum returns the hex SHA-256 digest of everything written so far.
func (h *Hasher) Sum() string {
	sum := sha256.Sum256([]byte(h.b.String()))
	return hex.EncodeToString(sum[:])
}
