// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated time is virtual: the engine's clock advances only when an
// event fires, never from the host's wall clock. This makes every run with
// the same inputs bit-for-bit repeatable and removes the interval-timing
// jitter that a real Go runtime would impose on 10 ms scheduling quanta.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in microseconds since the start of the
// simulation. The paper's kernel instrumentation records scheduling events
// with microsecond resolution, so a µs tick is exactly sufficient.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration = Time

// Common durations, in virtual microseconds.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000
	Second      Duration = 1000 * 1000

	// Quantum is the Linux 2.0.30 scheduling quantum used throughout the
	// paper: the 100 Hz system clock fires every 10 ms and the authors
	// force the scheduler to run on every tick.
	Quantum Duration = 10 * Millisecond
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Std converts t to a time.Duration for display purposes only; the engine
// never consumes host time.
func (t Time) Std() time.Duration { return time.Duration(t) * time.Microsecond }

// String formats the time compactly, e.g. "1.234s" or "567µs".
func (t Time) String() string {
	switch {
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.6gms", t.Millis())
	default:
		return fmt.Sprintf("%dµs", int64(t))
	}
}

// FromSeconds converts floating-point seconds into virtual time, rounding to
// the nearest microsecond.
func FromSeconds(s float64) Time {
	if s >= 0 {
		return Time(s*float64(Second) + 0.5)
	}
	return Time(s*float64(Second) - 0.5)
}
