package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestRNGInt63nRange(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []int64{1, 2, 3, 10, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			v := r.Int63n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGInt63nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(0) did not panic")
		}
	}()
	NewRNG(1).Int63n(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of %d uniforms = %v, want ≈0.5", n, mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(13)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ≈1", variance)
	}
}

func TestRNGDurationBounds(t *testing.T) {
	r := NewRNG(17)
	sawLo, sawHi := false, false
	for i := 0; i < 10000; i++ {
		d := r.Duration(5, 8)
		if d < 5 || d > 8 {
			t.Fatalf("Duration(5,8) = %d out of range", d)
		}
		if d == 5 {
			sawLo = true
		}
		if d == 8 {
			sawHi = true
		}
	}
	if !sawLo || !sawHi {
		t.Error("Duration(5,8) never hit an endpoint; bounds look exclusive")
	}
	if r.Duration(3, 3) != 3 {
		t.Error("Duration(3,3) != 3")
	}
}

func TestRNGDurationPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Duration(hi<lo) did not panic")
		}
	}()
	NewRNG(1).Duration(10, 5)
}

func TestRNGBool(t *testing.T) {
	r := NewRNG(19)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	trues := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			trues++
		}
	}
	frac := float64(trues) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) true fraction = %v", frac)
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	r := NewRNG(23)
	child := r.Split()
	// The child stream should not be a shifted copy of the parent stream.
	a := make([]uint64, 32)
	b := make([]uint64, 32)
	for i := range a {
		a[i] = r.Uint64()
		b[i] = child.Uint64()
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("parent and child streams collided %d/32 times", same)
	}
}

// Property: Int63n never escapes its bound for any positive n.
func TestRNGInt63nProperty(t *testing.T) {
	f := func(seed uint64, n int64) bool {
		if n <= 0 {
			n = -n + 1
		}
		r := NewRNG(seed)
		v := r.Int63n(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// NewRNGStream must give repeatable, pairwise-distinct streams: the fault
// injector's stream may never collide with the workload's stream for the
// same run seed.
func TestRNGStreamIsolation(t *testing.T) {
	const n = 32
	draw := func(r *RNG) []uint64 {
		out := make([]uint64, n)
		for i := range out {
			out[i] = r.Uint64()
		}
		return out
	}
	base := draw(NewRNG(7))
	for stream := uint64(0); stream < 4; stream++ {
		a := draw(NewRNGStream(7, stream))
		b := draw(NewRNGStream(7, stream))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("stream %d not repeatable at draw %d", stream, i)
			}
		}
		collisions := 0
		for i := range a {
			if a[i] == base[i] {
				collisions++
			}
		}
		if collisions != 0 {
			t.Fatalf("stream %d collided %d/%d times with the base stream", stream, collisions, n)
		}
	}
}
