// Package telemetry is the zero-dependency observation layer for the
// simulator and the sweep engine: counters, gauges, histograms, timed spans,
// and a bounded structured run-event stream, collected into a Registry and
// exported as Prometheus text or a JSON snapshot (export.go) or served over
// HTTP alongside expvar and pprof (serve.go).
//
// The design rule is that disabled telemetry must cost one branch on the hot
// path and zero allocations. Every lookup on a nil *Registry returns a nil
// instrument, and every method on a nil instrument is a no-op, so
// instrumented code resolves its instruments once —
//
//	quanta := reg.Counter(MKernelQuanta) // nil reg → nil counter
//	...
//	quanta.Inc() // one nil check when telemetry is off
//
// — and never guards call sites. All instruments are safe for concurrent
// use; a single Registry is shared by every worker of a parallel sweep and
// simply aggregates.
//
// Metric names may carry a Prometheus label block, e.g.
// `sweep_cells_total{result="cached"}`. The registry treats the full string
// as the identity; the exporters group names by their base (the part before
// '{') so labelled series share one TYPE declaration.
package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"clocksched/internal/journal"
)

// Canonical metric names. Instrumentation sites and the pre-registration
// done by servers use these constants so the exposition never drifts.
const (
	// internal/sim
	MSimEventsFired = "sim_events_fired_total"
	MSimQueueDepth  = "sim_event_queue_depth"
	// internal/kernel
	MKernelQuanta       = "kernel_quanta_total"
	MKernelQuantumUtil  = "kernel_quantum_util"
	MKernelIdleDispatch = "kernel_idle_dispatch_total"
	MKernelSpeedChanges = "kernel_speed_changes_total"
	MKernelFailedSpeed  = "kernel_failed_speed_changes_total"
	MKernelVoltChanges  = "kernel_voltage_changes_total"
	MKernelStallMicros  = "kernel_stall_microseconds_total"
	// internal/policy
	MPolicyScaleUp       = `policy_decisions_total{decision="up"}`
	MPolicyScaleDown     = `policy_decisions_total{decision="down"}`
	MPolicyHold          = `policy_decisions_total{decision="hold"}`
	MWatchdogOscillation = `policy_watchdog_trips_total{kind="oscillation"}`
	MWatchdogPegging     = `policy_watchdog_trips_total{kind="pegging"}`
	MWatchdogMissStreak  = `policy_watchdog_trips_total{kind="missstreak"}`
	MWatchdogSafeMode    = "policy_watchdog_safe_mode"
	// internal/sweep
	MSweepWorkersBusy   = "sweep_workers_busy"
	MSweepWorkersPeak   = "sweep_workers_busy_peak"
	MSweepCellsRun      = `sweep_cells_total{result="run"}`
	MSweepCellsCached   = `sweep_cells_total{result="cached"}`
	MSweepCellsFailed   = `sweep_cells_total{result="failed"}`
	MSweepCellsReplayed = `sweep_cells_total{result="replayed"}`
	MSweepCellSeconds   = "sweep_cell_seconds"
	MSweepCellRetries   = "sweep_cell_retries_total"
	MSweepCellDeadline  = "sweep_cell_deadline_total"
	MCacheHits          = "sweep_cache_hits_total"
	MCacheMisses        = "sweep_cache_misses_total"
	MCacheDiskHits      = "sweep_cache_disk_hits_total"
	MCacheCorrupt       = "sweep_cache_corrupt_total"
	MJournalCommits     = "sweep_journal_commits_total"
	MJournalErrors      = "sweep_journal_errors_total"
	MJournalRecovered   = "sweep_journal_recovered_cells"
	MJournalTornTail    = "sweep_journal_torn_tail"
	MJournalCompacted   = "sweep_journal_compacted"
	// event spill (spill.go)
	MEventsSpilled    = "telemetry_events_spilled_total"
	MEventSpillErrors = "telemetry_event_spill_errors_total"
	MCacheGetHitSecs  = `sweep_cache_get_seconds{result="hit"}`
	MCacheGetMissSecs = `sweep_cache_get_seconds{result="miss"}`
	MCacheGetDiskSecs = `sweep_cache_get_seconds{result="disk"}`
	MCachePutSecs     = "sweep_cache_put_seconds"
	// internal/daq
	MDAQCaptures        = "daq_captures_total"
	MDAQSamples         = "daq_samples_total"
	MDAQSamplesDropped  = "daq_samples_dropped_total"
	MDAQSamplesGlitched = "daq_samples_glitched_total"
)

// UtilBuckets are the histogram bounds for per-quantum utilization in
// [0, 1]: ten equal bins.
var UtilBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}

// SecondsBuckets are the default bounds for wall-clock latency histograms,
// exponential from 1 µs to ~10 s.
var SecondsBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10,
}

// EventCap bounds the structured run-event stream; once full, the oldest
// events are dropped.
const EventCap = 1024

// Counter is a monotonically increasing integer metric. All methods are
// nil-safe no-ops so disabled telemetry costs one branch.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — a
// high-water mark (peak pool occupancy, say).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge reading (zero on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into buckets with fixed upper bounds (an
// implicit +Inf bucket catches the rest) and tracks the sum and count, in
// the Prometheus style.
type Histogram struct {
	bounds  []float64 // ascending upper bounds
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample. NaN observations are ignored: a NaN can only
// come from an upstream measurement bug, and folding it into the sum would
// poison every later export.
func (h *Histogram) Observe(x float64) {
	if h == nil || math.IsNaN(x) {
		return
	}
	i := 0
	for i < len(h.bounds) && x > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the wall-clock seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns how many samples have been observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// snapshot copies the histogram's state (bounds are shared, immutable).
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram, JSON-friendly.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"` // upper bounds; a final +Inf bucket is implicit
	Counts []uint64  `json:"counts"` // per-bucket counts, len(Bounds)+1
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Timer is a histogram of wall-clock span durations in seconds.
type Timer struct {
	h *Histogram
}

// Start opens a span. On a nil timer the span is inert and Stop is free.
func (t *Timer) Start() Span {
	if t == nil || t.h == nil {
		return Span{}
	}
	return Span{h: t.h, t0: time.Now()}
}

// Span is one in-flight timed section.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// Stop records the span's duration. Inert spans (from a nil timer) do
// nothing.
func (s Span) Stop() {
	if s.h == nil {
		return
	}
	s.h.ObserveSince(s.t0)
}

// Field is one key/value pair of a structured event.
type Field struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// F builds a Field.
func F(key, value string) Field { return Field{Key: key, Value: value} }

// Event is one entry of the structured run-event stream.
type Event struct {
	Seq    uint64    `json:"seq"`
	Wall   time.Time `json:"wall"`
	Name   string    `json:"name"`
	Fields []Field   `json:"fields,omitempty"`
}

// Registry holds every instrument by name. The zero value is not usable;
// call New. A nil *Registry is the disabled layer: every lookup returns nil
// and every emit is dropped.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	seq    uint64
	events []Event // ring, capacity EventCap
	head   int     // index of the oldest event once the ring wrapped
	full   bool

	// Optional spill-to-disk event log (spill.go). The counters are
	// resolved in SpillEvents — never inside Emit, which already holds mu.
	spill     *journal.Writer
	spilled   *Counter
	spillErrs *Counter
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (registering on first use) the named counter, or nil on a
// nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge, or nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram with the
// given bucket upper bounds, or nil on a nil registry. A name registered
// earlier keeps its original bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Timer returns a wall-clock span timer over the named seconds histogram
// (SecondsBuckets bounds), or a nil-safe inert timer on a nil registry.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	return &Timer{h: r.Histogram(name, SecondsBuckets)}
}

// Emit appends one structured event to the bounded run-event stream. On a
// nil registry the event is dropped. Once EventCap events are buffered the
// oldest is overwritten.
func (r *Registry) Emit(name string, fields ...Field) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	e := Event{Seq: r.seq, Wall: time.Now(), Name: name, Fields: fields}
	r.spillLocked(e)
	if len(r.events) < EventCap {
		r.events = append(r.events, e)
		return
	}
	r.full = true
	r.events[r.head] = e
	r.head = (r.head + 1) % len(r.events)
}

// Events returns the buffered run events, oldest first.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.events))
	if r.full {
		out = append(out, r.events[r.head:]...)
		out = append(out, r.events[:r.head]...)
	} else {
		out = append(out, r.events...)
	}
	return out
}
