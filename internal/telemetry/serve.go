package telemetry

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// served points at the most recently served registry, for the process-wide
// expvar publication (expvar's namespace is global and rejects duplicate
// names, so the "telemetry" var is published once and follows the latest
// server).
var (
	served     atomic.Pointer[Registry]
	expvarOnce sync.Once
)

// Server is a live telemetry HTTP endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server on addr (":0" picks an ephemeral port)
// exposing the registry at /metrics (Prometheus text) and /metrics.json
// (JSON snapshot with the run-event stream), the process expvars at
// /debug/vars — including a "telemetry" var mirroring the snapshot — and
// the net/http/pprof profiler under /debug/pprof/, so a long sweep can be
// watched and profiled live.
func Serve(addr string, r *Registry) (*Server, error) {
	served.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			return served.Load().Snapshot()
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address, e.g. "127.0.0.1:43115".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its listener immediately, dropping in-flight
// requests. Prefer Shutdown for an orderly exit.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown drains the server gracefully: the listener closes at once so no
// new scrapes are accepted, while in-flight requests (a /metrics scrape, a
// pprof profile) run to completion or until ctx expires, whichever comes
// first. On ctx expiry the remaining connections are dropped and ctx's
// error is returned.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }
