package telemetry

import (
	"encoding/json"
	"fmt"

	"clocksched/internal/journal"
)

// SpillEvents attaches a journal writer to the registry's event stream: from
// this call on, every Emit also appends the event — JSON-encoded — to the
// writer, so the in-memory ring's EventCap bound stops being a retention
// limit and a multi-hour sweep keeps a complete on-disk event log for
// post-mortems. Events are buffered in the writer, not fsynced per emit;
// the caller owns the writer's Sync/Close cadence. A nil writer detaches
// the spill.
//
// Spill traffic is counted on MEventsSpilled and failures (a full disk,
// say) on MEventSpillErrors; a failed spill never blocks or drops the
// in-memory event.
func (r *Registry) SpillEvents(w *journal.Writer) {
	if r == nil {
		return
	}
	// Resolve the counters before taking mu — Counter locks it too, and
	// Emit appends to the spill while holding it.
	spilled := r.Counter(MEventsSpilled)
	errs := r.Counter(MEventSpillErrors)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spill = w
	r.spilled = spilled
	r.spillErrs = errs
}

// spillLocked appends one event to the spill journal. Caller holds r.mu.
func (r *Registry) spillLocked(e Event) {
	if r.spill == nil {
		return
	}
	b, err := json.Marshal(e)
	if err == nil {
		err = r.spill.Append(b)
	}
	if err != nil {
		r.spillErrs.Inc()
		return
	}
	r.spilled.Inc()
}

// ReadSpill replays a spilled event log from disk, oldest first. A torn
// tail (from a crash mid-write) is silently ignored, exactly like a sweep
// journal; a record that frames correctly but does not decode as an Event
// is reported as an error, since the framing layer's checksum rules out
// silent corruption.
func ReadSpill(path string) ([]Event, error) {
	var out []Event
	_, err := journal.ReplayFile(path, func(p []byte) error {
		var e Event
		if err := json.Unmarshal(p, &e); err != nil {
			return fmt.Errorf("telemetry: spill record %d: %w", len(out), err)
		}
		out = append(out, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
