package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c_total") != c {
		t.Error("re-lookup returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %v, want 1.5", g.Value())
	}
	g.SetMax(1.0)
	if g.Value() != 1.5 {
		t.Error("SetMax lowered the gauge")
	}
	g.SetMax(3)
	if g.Value() != 3 {
		t.Error("SetMax did not raise the gauge")
	}

	h := r.Histogram("h", []float64{1, 2})
	for _, x := range []float64{0.5, 1.5, 5, math.NaN()} {
		h.Observe(x)
	}
	if h.Count() != 3 {
		t.Errorf("histogram count = %d, want 3 (NaN ignored)", h.Count())
	}
	if h.Sum() != 7 {
		t.Errorf("histogram sum = %v, want 7", h.Sum())
	}
}

// TestNilRegistryIsInert covers the whole disabled surface: lookups on a nil
// registry return nil instruments whose methods do nothing.
func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h", UtilBuckets).Observe(0.5)
	r.Timer("t").Start().Stop()
	r.Emit("event", F("k", "v"))
	if ev := r.Events(); ev != nil {
		t.Errorf("nil registry buffered events: %v", ev)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
}

// TestDisabledPathAllocations is the no-op mode allocation check: with
// telemetry disabled (nil registry, hence nil instruments) the hot-path
// operations must not allocate at all.
func TestDisabledPathAllocations(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", UtilBuckets)
	tm := r.Timer("t")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(1)
		h.Observe(0.5)
		tm.Start().Stop()
	}); n != 0 {
		t.Errorf("disabled path allocates %v per op, want 0", n)
	}
}

// TestConcurrentInstruments hammers one registry from many goroutines the
// way parallel sweep workers do; run under -race this is the shared-counter
// soundness proof, and the totals must still be exact.
func TestConcurrentInstruments(t *testing.T) {
	const workers, per = 8, 2000
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total")
			g := r.Gauge("busy")
			h := r.Histogram("lat", SecondsBuckets)
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.001)
				if i%100 == 0 {
					r.Emit("tick", F("i", fmt.Sprint(i)))
				}
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("shared_total").Value(); v != workers*per {
		t.Errorf("shared counter = %d, want %d", v, workers*per)
	}
	if v := r.Gauge("busy").Value(); v != 0 {
		t.Errorf("gauge = %v, want 0", v)
	}
	if c := r.Histogram("lat", SecondsBuckets).Count(); c != workers*per {
		t.Errorf("histogram count = %d, want %d", c, workers*per)
	}
	if want := workers * (per / 100); len(r.Events()) != want {
		t.Errorf("event ring holds %d, want %d", len(r.Events()), want)
	}
}

func TestEventRingKeepsNewest(t *testing.T) {
	r := New()
	for i := 0; i < EventCap+10; i++ {
		r.Emit("e", F("i", fmt.Sprint(i)))
	}
	ev := r.Events()
	if len(ev) != EventCap {
		t.Fatalf("ring holds %d", len(ev))
	}
	if ev[0].Seq != 11 || ev[len(ev)-1].Seq != EventCap+10 {
		t.Errorf("ring kept seqs %d..%d, want 11..%d", ev[0].Seq, ev[len(ev)-1].Seq, EventCap+10)
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq+1 {
			t.Fatalf("ring out of order at %d", i)
		}
	}
}

// TestPrometheusGolden pins the text exposition format exactly: sorted
// names, one TYPE line per base name, cumulative buckets with merged le
// labels.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Counter(`cells_total{result="cached"}`).Add(2)
	r.Counter(`cells_total{result="run"}`).Add(5)
	r.Gauge("busy").Set(3)
	h := r.Histogram("util", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# TYPE cells_total counter`,
		`cells_total{result="cached"} 2`,
		`cells_total{result="run"} 5`,
		`# TYPE busy gauge`,
		`busy 3`,
		`# TYPE util histogram`,
		`util_bucket{le="0.5"} 1`,
		`util_bucket{le="1"} 2`,
		`util_bucket{le="+Inf"} 3`,
		`util_sum 3`,
		`util_count 3`,
	}, "\n") + "\n"
	if got := b.String(); got != want {
		t.Errorf("prometheus output:\n%s\nwant:\n%s", got, want)
	}
}

// TestPrometheusScopedMerge pins the multi-registry export: every scope's
// label is injected into its series (including inside existing label
// blocks and histogram le labels), and a base name exported by several
// scopes still gets exactly one TYPE line.
func TestPrometheusScopedMerge(t *testing.T) {
	mk := func(cached, run int64, obs float64) *Registry {
		r := New()
		r.Counter(`cells_total{result="cached"}`).Add(cached)
		r.Counter(`cells_total{result="run"}`).Add(run)
		r.Histogram("util", []float64{1}).Observe(obs)
		return r
	}
	a, b := mk(1, 2, 0.5), mk(3, 4, 2)
	shared := New()
	shared.Gauge("jobs_active").Set(2)

	var out bytes.Buffer
	err := WritePrometheusAll(&out,
		Scoped{Reg: shared},
		Scoped{Labels: `job="a"`, Reg: a},
		Scoped{Labels: `job="b"`, Reg: b},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# TYPE cells_total counter`,
		`cells_total{result="cached",job="a"} 1`,
		`cells_total{result="cached",job="b"} 3`,
		`cells_total{result="run",job="a"} 2`,
		`cells_total{result="run",job="b"} 4`,
		`# TYPE jobs_active gauge`,
		`jobs_active 2`,
		`# TYPE util histogram`,
		`util_bucket{job="a",le="1"} 1`,
		`util_bucket{job="a",le="+Inf"} 1`,
		`util_sum{job="a"} 0.5`,
		`util_count{job="a"} 1`,
		`util_bucket{job="b",le="1"} 0`,
		`util_bucket{job="b",le="+Inf"} 1`,
		`util_sum{job="b"} 2`,
		`util_count{job="b"} 1`,
	}, "\n") + "\n"
	if got := out.String(); got != want {
		t.Errorf("scoped output:\n%s\nwant:\n%s", got, want)
	}
}

func TestJSONSnapshotRoundTrips(t *testing.T) {
	r := New()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(1.5)
	r.Histogram("h", []float64{1}).Observe(0.5)
	r.Emit("run.start", F("workload", "mpeg"))

	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(b.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["c"] != 7 || s.Gauges["g"] != 1.5 {
		t.Errorf("snapshot %+v", s)
	}
	if h := s.Histograms["h"]; h.Count != 1 || h.Sum != 0.5 {
		t.Errorf("histogram snapshot %+v", h)
	}
	if len(s.Events) != 1 || s.Events[0].Name != "run.start" {
		t.Errorf("events %+v", s.Events)
	}
}

func TestServeEndpoints(t *testing.T) {
	r := New()
	r.Counter(MKernelQuanta).Add(42)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if body := get("/metrics"); !strings.Contains(body, MKernelQuanta+" 42") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/metrics.json"); !strings.Contains(body, `"`+MKernelQuanta+`": 42`) {
		t.Errorf("/metrics.json missing counter:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "telemetry") {
		t.Errorf("/debug/vars missing telemetry var:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ unexpected:\n%s", body)
	}
}
