package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is a point-in-time copy of every instrument in a registry plus
// the buffered run events, shaped for JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Events     []Event                      `json:"events,omitempty"`
}

// Snapshot copies the registry. A nil registry snapshots empty (non-nil
// maps, so callers can index without guards).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}
	s.Events = r.Events()
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// baseName strips a trailing {label} block from a metric name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labels returns the label block's contents, without braces, or "".
func labels(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return ""
	}
	return strings.TrimSuffix(name[i+1:], "}")
}

// withLabels renders base plus merged label pairs as a series name.
func withLabels(base string, pairs ...string) string {
	var kept []string
	for _, p := range pairs {
		if p != "" {
			kept = append(kept, p)
		}
	}
	if len(kept) == 0 {
		return base
	}
	return base + "{" + strings.Join(kept, ",") + "}"
}

// Scoped pairs a registry with extra label pairs (e.g. `job="j42"`)
// injected into every series it exports. A multi-tenant process — the
// sweep daemon with one registry per job — exports all its registries
// through WritePrometheusAll as one well-formed page.
type Scoped struct {
	// Labels is a comma-joined list of label pairs, each already in
	// Prometheus form (`job="j42"`), or "" for no extra labels.
	Labels string
	Reg    *Registry
}

// WritePrometheus writes every instrument in the Prometheus text exposition
// format (version 0.0.4): counters, gauges, and histograms with cumulative
// _bucket/_sum/_count series. Names are emitted in sorted order so the
// output is deterministic; labelled series share one TYPE line per base
// name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheusAll(w, Scoped{Reg: r})
}

// WritePrometheusAll merges the scoped registries into a single Prometheus
// text page: each scope's extra labels are appended to its series names,
// the merged series are emitted in sorted order, and each base name gets
// exactly one TYPE line even when several scopes export it — the property
// the exposition format requires and naive page concatenation violates.
// Series that collide after labelling keep the last scope's value, so give
// scopes distinguishing labels.
func WritePrometheusAll(w io.Writer, scopes ...Scoped) error {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, sc := range scopes {
		snap := sc.Reg.Snapshot()
		for n, v := range snap.Counters {
			s.Counters[withLabels(baseName(n), labels(n), sc.Labels)] = v
		}
		for n, v := range snap.Gauges {
			s.Gauges[withLabels(baseName(n), labels(n), sc.Labels)] = v
		}
		for n, v := range snap.Histograms {
			s.Histograms[withLabels(baseName(n), labels(n), sc.Labels)] = v
		}
	}

	typed := map[string]bool{} // base names whose TYPE line was written
	writeType := func(base, kind string) error {
		if typed[base] {
			return nil
		}
		typed[base] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}

	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := writeType(baseName(n), "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", n, s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := writeType(baseName(n), "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", n, formatFloat(s.Gauges[n])); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		base, lab := baseName(n), labels(n)
		if err := writeType(base, "histogram"); err != nil {
			return err
		}
		cum := uint64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			series := withLabels(base+"_bucket", lab, `le="`+formatFloat(b)+`"`)
			if _, err := fmt.Fprintf(w, "%s %d\n", series, cum); err != nil {
				return err
			}
		}
		series := withLabels(base+"_bucket", lab, `le="+Inf"`)
		if _, err := fmt.Fprintf(w, "%s %d\n", series, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", withLabels(base+"_sum", lab), formatFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", withLabels(base+"_count", lab), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a float the way Prometheus expects: shortest exact
// representation, integers without an exponent.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
