package telemetry

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"clocksched/internal/journal"
)

func TestSpillEventsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	w, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	r.Emit("before.spill") // emitted before attach: ring only, never spilled
	r.SpillEvents(w)
	const n = EventCap + 50 // overflow the ring to prove the spill keeps all
	for i := 0; i < n; i++ {
		r.Emit("cell.done", F("cell", fmt.Sprint(i)))
	}
	r.SpillEvents(nil) // detach
	r.Emit("after.detach")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	evs, err := ReadSpill(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != n {
		t.Fatalf("spilled %d events, want %d", len(evs), n)
	}
	for i, e := range evs {
		if e.Name != "cell.done" || len(e.Fields) != 1 || e.Fields[0].Value != fmt.Sprint(i) {
			t.Fatalf("event %d = %+v", i, e)
		}
		if e.Seq != uint64(i+2) { // seq 1 was before.spill
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	// The in-memory ring kept only the newest EventCap, the log kept all.
	if got := len(r.Events()); got != EventCap {
		t.Errorf("ring holds %d events, want %d", got, EventCap)
	}
	snap := r.Snapshot()
	if got := snap.Counters[MEventsSpilled]; got != n {
		t.Errorf("%s = %v, want %d", MEventsSpilled, got, n)
	}
	if got := snap.Counters[MEventSpillErrors]; got != 0 {
		t.Errorf("%s = %v, want 0", MEventSpillErrors, got)
	}
}

func TestSpillTornTailIsDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	w, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	r.SpillEvents(w)
	r.Emit("one")
	r.Emit("two")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadSpill(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Name != "one" {
		t.Fatalf("events after torn tail: %+v", evs)
	}
}

func TestSpillConcurrentEmit(t *testing.T) {
	// Emit from many goroutines while spilling; every event must land in the
	// log exactly once (the -race tier cares about the locking too).
	path := filepath.Join(t.TempDir(), "events.wal")
	w, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	r.SpillEvents(w)
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Emit("tick")
			}
		}()
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadSpill(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != workers*per {
		t.Fatalf("spilled %d events, want %d", len(evs), workers*per)
	}
}

func TestServerShutdownGraceful(t *testing.T) {
	r := New()
	r.Counter("x").Inc()
	s, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// The listener is gone: a new scrape must fail.
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Error("server still accepting after Shutdown")
	}
}
