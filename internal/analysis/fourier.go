package analysis

import (
	"fmt"
	"math"
	"math/cmplx"
)

// DFT computes the discrete Fourier transform of a real signal directly from
// the definition. It is O(n²) and intended for small analytic checks; use
// FFT for long signals.
func DFT(x []float64) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += complex(x[t], 0) * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// FFT computes the discrete Fourier transform of a real signal using the
// radix-2 Cooley–Tukey algorithm. The length must be a power of two.
func FFT(x []float64) ([]complex128, error) {
	n := len(x)
	if n == 0 {
		return nil, ErrEmpty
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("analysis: FFT length %d is not a power of two", n)
	}
	buf := make([]complex128, n)
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	fftInPlace(buf)
	return buf, nil
}

func fftInPlace(a []complex128) {
	n := len(a)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	// Butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := a[i+j]
				v := a[i+j+length/2] * w
				a[i+j] = u + v
				a[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// Magnitudes returns |X_k| for each bin of a transform.
func Magnitudes(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// Spectrum computes the single-sided magnitude spectrum of a real signal
// sampled at sampleHz: frequencies 0 … sampleHz/2 and the corresponding
// magnitudes (normalized by n). The length must be a power of two.
func Spectrum(x []float64, sampleHz float64) (freqs, mags []float64, err error) {
	if sampleHz <= 0 {
		return nil, nil, fmt.Errorf("analysis: bad sample rate %v", sampleHz)
	}
	X, err := FFT(x)
	if err != nil {
		return nil, nil, err
	}
	n := len(X)
	half := n/2 + 1
	freqs = make([]float64, half)
	mags = make([]float64, half)
	for k := 0; k < half; k++ {
		freqs[k] = float64(k) * sampleHz / float64(n)
		mags[k] = cmplx.Abs(X[k]) / float64(n)
		if k != 0 && k != n/2 {
			mags[k] *= 2 // fold the negative frequencies in
		}
	}
	return freqs, mags, nil
}

// DominantFrequency returns the frequency bin (excluding DC) with the
// largest magnitude in the single-sided spectrum of x.
func DominantFrequency(x []float64, sampleHz float64) (float64, error) {
	freqs, mags, err := Spectrum(x, sampleHz)
	if err != nil {
		return 0, err
	}
	if len(mags) < 2 {
		return 0, ErrEmpty
	}
	best := 1
	for k := 2; k < len(mags); k++ {
		if mags[k] > mags[best] {
			best = k
		}
	}
	return freqs[best], nil
}

// IFFT computes the inverse discrete Fourier transform, returning the real
// parts (the imaginary residue of a transform of real data is numerical
// noise). The length must be a power of two.
func IFFT(x []complex128) ([]float64, error) {
	n := len(x)
	if n == 0 {
		return nil, ErrEmpty
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("analysis: IFFT length %d is not a power of two", n)
	}
	// Conjugate, forward transform, conjugate, scale.
	buf := make([]complex128, n)
	for i, v := range x {
		buf[i] = cmplx.Conj(v)
	}
	fftInPlace(buf)
	out := make([]float64, n)
	for i, v := range buf {
		out[i] = real(cmplx.Conj(v)) / float64(n)
	}
	return out, nil
}
