package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestExpDecayFilterMatchesTable1(t *testing.T) {
	// Table 1 of the paper: AVG_9 over 15 active quanta then idle, with
	// utilization scaled ×10000. Floating-point version tracks the same
	// trajectory.
	u := make([]float64, 20)
	for i := 0; i < 15; i++ {
		u[i] = 10000
	}
	w, err := ExpDecayFilter(u, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantPrefix := []float64{1000, 1900, 2710, 3439, 4095.1}
	for i, want := range wantPrefix {
		if !almostEqual(w[i], want, 0.5) {
			t.Errorf("W_%d = %v, want ≈%v", i+1, w[i], want)
		}
	}
	// After the transition to idle the average must fall.
	if w[15] >= w[14] {
		t.Error("weighted utilization did not fall on the idle quantum")
	}
}

func TestExpDecayFilterPASTIsIdentity(t *testing.T) {
	// AVG_0 (PAST) predicts exactly the previous interval.
	u := []float64{0.2, 0.9, 0.1, 1.0}
	w, err := ExpDecayFilter(u, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range u {
		if w[i] != u[i] {
			t.Errorf("PAST filter altered the signal at %d: %v", i, w[i])
		}
	}
}

func TestExpDecayFilterRejectsNegativeN(t *testing.T) {
	if _, err := ExpDecayFilter([]float64{1}, -1, 0); err == nil {
		t.Error("negative N accepted")
	}
}

func TestExpDecayKernel(t *testing.T) {
	k, err := ExpDecayKernel(9, 5)
	if err != nil {
		t.Fatal(err)
	}
	// w_k = 0.1 · 0.9^k
	for i, want := range []float64{0.1, 0.09, 0.081, 0.0729, 0.06561} {
		if !almostEqual(k[i], want, 1e-12) {
			t.Errorf("kernel[%d] = %v, want %v", i, k[i], want)
		}
	}
	if _, err := ExpDecayKernel(-1, 5); err == nil {
		t.Error("negative N accepted")
	}
	if _, err := ExpDecayKernel(3, 0); err == nil {
		t.Error("zero length accepted")
	}
}

func TestKernelSumsToOne(t *testing.T) {
	// The infinite kernel is a probability distribution; a long prefix
	// must sum close to 1 so filtering preserves steady-state level.
	k, _ := ExpDecayKernel(9, 500)
	sum := 0.0
	for _, v := range k {
		sum += v
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Errorf("kernel sum = %v, want 1", sum)
	}
}

func TestConvolveMatchesRecursion(t *testing.T) {
	// The paper's algebra: the recursion equals convolution with the
	// decaying-exponential kernel (for W_0 = 0, with the convolution
	// seeing the input delayed by one quantum).
	u := []float64{1, 0, 1, 1, 0, 1, 1, 1, 0, 0, 1, 0.5, 0.25}
	w, _ := ExpDecayFilter(u, 3, 0)
	kernel, _ := ExpDecayKernel(3, len(u))
	conv := Convolve(u, kernel)
	for i := range u {
		if !almostEqual(w[i], conv[i], 1e-9) {
			t.Errorf("recursion and convolution disagree at %d: %v vs %v", i, w[i], conv[i])
		}
	}
}

func TestConvolveIdentityKernel(t *testing.T) {
	x := []float64{3, 1, 4, 1, 5}
	y := Convolve(x, []float64{1})
	for i := range x {
		if y[i] != x[i] {
			t.Errorf("identity convolution changed the signal at %d", i)
		}
	}
}

func TestMovingAverage(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y, err := MovingAverage(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1.5, 2.5, 3.5, 4.5}
	for i := range want {
		if !almostEqual(y[i], want[i], 1e-12) {
			t.Errorf("MA[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	if _, err := MovingAverage(x, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestMovingAverageSmoothsVariance(t *testing.T) {
	// Figure 4's purpose: a 10-quantum (100 ms) window shrinks the
	// swing of a noisy periodic signal.
	wave, _ := RectWave(9, 1, 400)
	ma, _ := MovingAverage(wave, 10)
	raw, _ := MeasureOscillation(wave, 50)
	smooth, _ := MeasureOscillation(ma, 50)
	if smooth.PeakToPeak >= raw.PeakToPeak {
		t.Errorf("moving average did not shrink oscillation: %v vs %v",
			smooth.PeakToPeak, raw.PeakToPeak)
	}
	if !almostEqual(smooth.Mean, 0.9, 0.01) {
		t.Errorf("smoothed mean = %v, want ≈0.9", smooth.Mean)
	}
}

func TestRectWave(t *testing.T) {
	w, err := RectWave(9, 1, 25)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range w {
		want := 0.0
		if i%10 < 9 {
			want = 1
		}
		if v != want {
			t.Fatalf("wave[%d] = %v, want %v", i, v, want)
		}
	}
	for _, c := range []struct{ b, i, l int }{{-1, 1, 5}, {1, -1, 5}, {0, 0, 5}, {1, 1, -1}} {
		if _, err := RectWave(c.b, c.i, c.l); err == nil {
			t.Errorf("RectWave(%d,%d,%d) accepted", c.b, c.i, c.l)
		}
	}
}

func TestMeasureOscillation(t *testing.T) {
	x := []float64{0, 100, 0.4, 0.6, 0.4, 0.6} // big transient then ±0.1
	o, err := MeasureOscillation(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(o.PeakToPeak, 0.2, 1e-12) {
		t.Errorf("peak-to-peak = %v, want 0.2", o.PeakToPeak)
	}
	if !almostEqual(o.Mean, 0.5, 1e-12) {
		t.Errorf("mean = %v, want 0.5", o.Mean)
	}
	if _, err := MeasureOscillation(x, 10); err == nil {
		t.Error("skip beyond series accepted")
	}
	// Negative skip clamps to zero.
	if _, err := MeasureOscillation(x, -1); err != nil {
		t.Error("negative skip rejected")
	}
}

func TestAvgNNeverSettlesOnRectWave(t *testing.T) {
	// The core claim of Section 5.3 / Figure 7: AVG_3 filtering of the
	// 9-busy/1-idle wave keeps oscillating in steady state over a
	// "surprisingly wide range".
	wave, _ := RectWave(9, 1, 800)
	w, _ := ExpDecayFilter(wave, 3, 0.9)
	o, err := MeasureOscillation(w, 400) // well past any transient
	if err != nil {
		t.Fatal(err)
	}
	if o.PeakToPeak < 0.15 {
		t.Errorf("steady-state oscillation = %v, want a wide swing (>0.15)", o.PeakToPeak)
	}
}

func TestLargerNAttenuatesMore(t *testing.T) {
	wave, _ := RectWave(9, 1, 2000)
	swings := make([]float64, 0, 3)
	for _, n := range []int{1, 3, 9} {
		w, _ := ExpDecayFilter(wave, n, 0.9)
		o, _ := MeasureOscillation(w, 1000)
		swings = append(swings, o.PeakToPeak)
	}
	if !(swings[0] > swings[1] && swings[1] > swings[2]) {
		t.Errorf("oscillation did not shrink with N: %v", swings)
	}
	// But even AVG_9 never reaches zero: attenuated, not eliminated.
	if swings[2] <= 0.001 {
		t.Errorf("AVG_9 oscillation %v vanished; paper says it must persist", swings[2])
	}
}

func TestExpDecayTransformMag(t *testing.T) {
	// |X(0)| = 1/α, and the transform decays monotonically with ω.
	got, err := ExpDecayTransformMag(2, 0)
	if err != nil || !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("|X(0)| = %v, %v; want 0.5", got, err)
	}
	prev := math.Inf(1)
	for w := 0.0; w <= 15; w += 0.5 {
		m, err := ExpDecayTransformMag(0.5, w)
		if err != nil {
			t.Fatal(err)
		}
		if m > prev {
			t.Fatalf("transform magnitude increased at ω=%v", w)
		}
		if m == 0 {
			t.Fatalf("transform hit zero at ω=%v; it must only attenuate", w)
		}
		prev = m
	}
	if _, err := ExpDecayTransformMag(0, 1); err == nil {
		t.Error("α=0 accepted")
	}
}

func TestSmallerAlphaAttenuatesMore(t *testing.T) {
	// "As α gets smaller the higher frequencies are attenuated to a
	// greater degree" — relative to the DC gain.
	aSmall, _ := AlphaForAvgN(9)
	aBig, _ := AlphaForAvgN(1)
	relSmall := func() float64 {
		hi, _ := ExpDecayTransformMag(aSmall, 3)
		dc, _ := ExpDecayTransformMag(aSmall, 0)
		return hi / dc
	}()
	relBig := func() float64 {
		hi, _ := ExpDecayTransformMag(aBig, 3)
		dc, _ := ExpDecayTransformMag(aBig, 0)
		return hi / dc
	}()
	if relSmall >= relBig {
		t.Errorf("relative high-frequency gain: α=%v → %v vs α=%v → %v",
			aSmall, relSmall, aBig, relBig)
	}
}

func TestAlphaForAvgN(t *testing.T) {
	a9, err := AlphaForAvgN(9)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a9, -math.Log(0.9), 1e-12) {
		t.Errorf("α(9) = %v", a9)
	}
	if _, err := AlphaForAvgN(0); err == nil {
		t.Error("AVG_0 α accepted")
	}
}

// Property: the filter output is a convex combination of past inputs, so it
// stays inside the input's range.
func TestFilterBoundedProperty(t *testing.T) {
	f := func(raw []uint8, n uint8) bool {
		u := make([]float64, len(raw))
		for i, v := range raw {
			u[i] = float64(v) / 255
		}
		w, err := ExpDecayFilter(u, int(n%16), 0)
		if err != nil {
			return false
		}
		for _, v := range w {
			if v < -1e-12 || v > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: filtering is linear — filter(a·x) = a·filter(x) for W_0 = 0.
func TestFilterLinearityProperty(t *testing.T) {
	f := func(raw []int8, scaleRaw uint8) bool {
		scale := float64(scaleRaw%10) + 0.5
		x := make([]float64, len(raw))
		sx := make([]float64, len(raw))
		for i, v := range raw {
			x[i] = float64(v)
			sx[i] = scale * float64(v)
		}
		w1, _ := ExpDecayFilter(x, 4, 0)
		w2, _ := ExpDecayFilter(sx, 4, 0)
		for i := range w1 {
			if !almostEqual(scale*w1[i], w2[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
