package analysis

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestDFTConstantSignal(t *testing.T) {
	x := []float64{2, 2, 2, 2}
	X := DFT(x)
	if !almostEqual(real(X[0]), 8, 1e-9) || !almostEqual(imag(X[0]), 0, 1e-9) {
		t.Errorf("DC bin = %v, want 8", X[0])
	}
	for k := 1; k < 4; k++ {
		if cmplx.Abs(X[k]) > 1e-9 {
			t.Errorf("bin %d = %v, want 0", k, X[k])
		}
	}
}

func TestDFTSingleTone(t *testing.T) {
	n := 32
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 4 * float64(i) / float64(n))
	}
	X := DFT(x)
	// Energy concentrates in bins 4 and n−4.
	if cmplx.Abs(X[4]) < float64(n)/2-1e-6 {
		t.Errorf("|X[4]| = %v, want %v", cmplx.Abs(X[4]), float64(n)/2)
	}
	for k := 0; k < n; k++ {
		if k == 4 || k == n-4 {
			continue
		}
		if cmplx.Abs(X[k]) > 1e-6 {
			t.Errorf("leakage at bin %d: %v", k, cmplx.Abs(X[k]))
		}
	}
}

func TestFFTMatchesDFT(t *testing.T) {
	x := make([]float64, 64)
	for i := range x {
		x[i] = math.Sin(0.3*float64(i)) + 0.5*math.Cos(1.1*float64(i))
	}
	want := DFT(x)
	got, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if cmplx.Abs(got[k]-want[k]) > 1e-6 {
			t.Fatalf("FFT and DFT disagree at bin %d: %v vs %v", k, got[k], want[k])
		}
	}
}

func TestFFTErrors(t *testing.T) {
	if _, err := FFT(nil); err == nil {
		t.Error("empty FFT accepted")
	}
	if _, err := FFT(make([]float64, 12)); err == nil {
		t.Error("non-power-of-two FFT accepted")
	}
	if _, err := FFT(make([]float64, 1)); err != nil {
		t.Error("length-1 FFT rejected")
	}
}

func TestFFTParseval(t *testing.T) {
	// Σ|x|² = (1/N)·Σ|X|².
	x := make([]float64, 128)
	for i := range x {
		x[i] = math.Sin(0.7*float64(i)) * math.Exp(-0.01*float64(i))
	}
	X, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	var timeE, freqE float64
	for _, v := range x {
		timeE += v * v
	}
	for _, v := range X {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	freqE /= float64(len(x))
	if !almostEqual(timeE, freqE, 1e-6) {
		t.Errorf("Parseval violated: %v vs %v", timeE, freqE)
	}
}

func TestMagnitudes(t *testing.T) {
	m := Magnitudes([]complex128{3 + 4i, 1, -2i})
	want := []float64{5, 1, 2}
	for i := range want {
		if !almostEqual(m[i], want[i], 1e-12) {
			t.Errorf("mag[%d] = %v, want %v", i, m[i], want[i])
		}
	}
}

func TestSpectrumTone(t *testing.T) {
	// 10 Hz tone sampled at 128 Hz for 1 s.
	n := 128
	x := make([]float64, n)
	for i := range x {
		x[i] = 3 * math.Sin(2*math.Pi*10*float64(i)/128)
	}
	freqs, mags, err := Spectrum(x, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(freqs) != n/2+1 {
		t.Fatalf("spectrum has %d bins", len(freqs))
	}
	if freqs[10] != 10 {
		t.Errorf("bin 10 frequency = %v", freqs[10])
	}
	if !almostEqual(mags[10], 3, 1e-6) {
		t.Errorf("tone amplitude = %v, want 3", mags[10])
	}
	if _, _, err := Spectrum(x, 0); err == nil {
		t.Error("zero sample rate accepted")
	}
}

func TestDominantFrequencyOfRectWave(t *testing.T) {
	// A 3-busy/1-idle wave has period 4 quanta = 40 ms → 25 Hz
	// fundamental at a 100 Hz quantum rate. (Period 4 divides the FFT
	// length exactly, so there is no spectral leakage.)
	wave, _ := RectWave(3, 1, 1024)
	f, err := DominantFrequency(wave, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f, 25, 0.2) {
		t.Errorf("dominant frequency = %v Hz, want 25 Hz", f)
	}
}

func TestFilteredWaveKeepsFundamental(t *testing.T) {
	// Section 5.3's conclusion: after AVG_N filtering, the fundamental is
	// still there — attenuated, not removed — so the policy oscillates.
	wave, _ := RectWave(3, 1, 1024)
	w, _ := ExpDecayFilter(wave, 3, 0)
	f, err := DominantFrequency(w, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f, 25, 0.2) {
		t.Errorf("dominant frequency after filtering = %v Hz, want 25 Hz", f)
	}
}

func TestIFFTRoundTrip(t *testing.T) {
	x := make([]float64, 256)
	for i := range x {
		x[i] = math.Sin(0.2*float64(i)) + 0.3*math.Cos(1.7*float64(i))
	}
	X, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	back, err := IFFT(X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEqual(back[i], x[i], 1e-9) {
			t.Fatalf("round trip diverged at %d: %v vs %v", i, back[i], x[i])
		}
	}
}

func TestIFFTErrors(t *testing.T) {
	if _, err := IFFT(nil); err == nil {
		t.Error("empty IFFT accepted")
	}
	if _, err := IFFT(make([]complex128, 6)); err == nil {
		t.Error("non-power-of-two IFFT accepted")
	}
}

// Property: FFT→IFFT is the identity for random real signals.
func TestFFTRoundTripProperty(t *testing.T) {
	f := func(raw []int16) bool {
		// Pad to the next power of two, bounded.
		n := 1
		for n < len(raw) {
			n <<= 1
		}
		if n > 1024 {
			n = 1024
		}
		x := make([]float64, n)
		for i := 0; i < n && i < len(raw); i++ {
			x[i] = float64(raw[i]) / 1000
		}
		X, err := FFT(x)
		if err != nil {
			return false
		}
		back, err := IFFT(X)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEqual(back[i], x[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
