package analysis_test

import (
	"fmt"

	"clocksched/internal/analysis"
)

// The Section 5.3 demonstration: AVG_3 filtering of the 9-busy/1-idle
// rectangular wave never settles.
func ExampleExpDecayFilter() {
	wave, _ := analysis.RectWave(9, 1, 800)
	filtered, _ := analysis.ExpDecayFilter(wave, 3, 0.9)
	osc, _ := analysis.MeasureOscillation(filtered, 400)
	fmt.Printf("steady-state swing: %.3f\n", osc.PeakToPeak)
	// Output:
	// steady-state swing: 0.245
}

// The Fourier magnitude of the decaying exponential attenuates but never
// eliminates high frequencies (Figure 6).
func ExampleExpDecayTransformMag() {
	alpha, _ := analysis.AlphaForAvgN(9)
	dc, _ := analysis.ExpDecayTransformMag(alpha, 0)
	hi, _ := analysis.ExpDecayTransformMag(alpha, 10)
	fmt.Printf("attenuation at ω=10: %.4f of DC, still nonzero\n", hi/dc)
	// Output:
	// attenuation at ω=10: 0.0105 of DC, still nonzero
}
