// Package analysis provides the signal-processing toolkit Section 5.3 of the
// paper uses to explain why AVG_N oscillates: the exponentially-decaying
// weighting function, its convolution form, discrete and analytic Fourier
// transforms, moving averages, and oscillation measures.
package analysis

import (
	"errors"
	"fmt"
	"math"
)

// ExpDecayFilter applies the AVG_N recursion W_t = (N·W_{t−1} + U_{t−1})/(N+1)
// to a utilization series, returning the weighted series. W_0 is initial.
// This is the exact smoothing the paper's scheduler performs, in float form
// for analysis (the scheduler itself uses fixed point; see package policy).
func ExpDecayFilter(u []float64, n int, initial float64) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("analysis: negative decay N = %d", n)
	}
	w := make([]float64, len(u))
	prev := initial
	for i, ut := range u {
		prev = (float64(n)*prev + ut) / float64(n+1)
		w[i] = prev
	}
	return w, nil
}

// ExpDecayKernel returns the first length taps of the convolution kernel
// equivalent to the AVG_N recursion: w_k = (1/(N+1)) · (N/(N+1))^k. The
// paper derives this by recursively expanding the W_{t−1} term.
func ExpDecayKernel(n, length int) ([]float64, error) {
	if n < 0 || length < 1 {
		return nil, fmt.Errorf("analysis: bad kernel parameters n=%d length=%d", n, length)
	}
	k := make([]float64, length)
	base := float64(n) / float64(n+1)
	coeff := 1 / float64(n+1)
	pow := 1.0
	for i := range k {
		k[i] = coeff * pow
		pow *= base
	}
	return k, nil
}

// Convolve computes the causal discrete convolution y_t = Σ_k kernel_k ·
// x_{t−k}, truncated at the signal boundary (x_{t<0} treated as 0).
func Convolve(x, kernel []float64) []float64 {
	y := make([]float64, len(x))
	for t := range x {
		sum := 0.0
		for k := 0; k < len(kernel) && k <= t; k++ {
			sum += kernel[k] * x[t-k]
		}
		y[t] = sum
	}
	return y
}

// MovingAverage returns the trailing moving average of x with the given
// window (the plot transformation of Figure 4: a 100 ms window over 10 ms
// samples is window=10). Early points average over what is available.
func MovingAverage(x []float64, window int) ([]float64, error) {
	if window < 1 {
		return nil, fmt.Errorf("analysis: bad moving-average window %d", window)
	}
	y := make([]float64, len(x))
	sum := 0.0
	for i := range x {
		sum += x[i]
		if i >= window {
			sum -= x[i-window]
		}
		n := window
		if i+1 < window {
			n = i + 1
		}
		y[i] = sum / float64(n)
	}
	return y, nil
}

// RectWave generates a repeating rectangular utilization wave: busy quanta
// at 1.0 followed by idle quanta at 0.0, repeated for the requested total
// length. The paper's running example is busy=9, idle=1 — "an idealized
// version of our MPEG player running roughly at an optimal speed".
func RectWave(busy, idle, length int) ([]float64, error) {
	if busy < 0 || idle < 0 || busy+idle == 0 || length < 0 {
		return nil, fmt.Errorf("analysis: bad rect wave busy=%d idle=%d length=%d",
			busy, idle, length)
	}
	w := make([]float64, length)
	period := busy + idle
	for i := range w {
		if i%period < busy {
			w[i] = 1
		}
	}
	return w, nil
}

// ErrEmpty is returned when an analysis needs at least one sample.
var ErrEmpty = errors.New("analysis: empty series")

// Oscillation describes the steady-state oscillation of a filtered series.
type Oscillation struct {
	Min, Max float64
	// PeakToPeak is Max − Min over the analysed region.
	PeakToPeak float64
	// Mean is the average level over the analysed region.
	Mean float64
}

// MeasureOscillation examines the last portion of a series (after skipping
// the first skip samples of transient) and reports its oscillation. The
// paper's Figure 7 point is that AVG_3 filtering of a steady rectangular
// wave never settles: PeakToPeak stays large forever.
func MeasureOscillation(x []float64, skip int) (Oscillation, error) {
	if skip < 0 {
		skip = 0
	}
	if skip >= len(x) {
		return Oscillation{}, ErrEmpty
	}
	region := x[skip:]
	o := Oscillation{Min: region[0], Max: region[0]}
	sum := 0.0
	for _, v := range region {
		if v < o.Min {
			o.Min = v
		}
		if v > o.Max {
			o.Max = v
		}
		sum += v
	}
	o.PeakToPeak = o.Max - o.Min
	o.Mean = sum / float64(len(region))
	return o, nil
}

// ExpDecayTransformMag returns the magnitude of the Fourier transform of the
// continuous decaying exponential x(t) = e^{−αt}·u(t) at angular frequency
// ω: |X(ω)| = 1/√(ω² + α²). This is the curve of the paper's Figure 6; it
// attenuates but never eliminates high frequencies, which is the analytic
// heart of the oscillation argument.
func ExpDecayTransformMag(alpha, omega float64) (float64, error) {
	if alpha <= 0 {
		return 0, fmt.Errorf("analysis: decay rate α = %v must be positive", alpha)
	}
	return 1 / math.Sqrt(omega*omega+alpha*alpha), nil
}

// AlphaForAvgN maps the discrete AVG_N filter onto the continuous decay rate
// of its envelope, in units of 1/quantum: the discrete kernel decays by
// N/(N+1) per quantum, so α = −ln(N/(N+1)). Larger N gives smaller α —
// stronger attenuation at the price of longer lag, exactly the tradeoff the
// paper describes.
func AlphaForAvgN(n int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("analysis: AVG_%d has no continuous decay envelope", n)
	}
	return -math.Log(float64(n) / float64(n+1)), nil
}
