package workload

import (
	"clocksched/internal/cpu"
	"clocksched/internal/sim"
)

// Demand is a steady-state estimate of one workload class's processor
// requirement, in the spirit of the Nokia schedulability-estimation work:
// a cheap analytical "can workload W meet its deadlines at frequency f?"
// answered without running the simulation. It separates work that scales
// with the clock (cycle bursts, whose wall time stretches as the step
// drops and whose memory-stall component follows Table 3) from work pinned
// to the wall clock (ComputeFor planning/search, which occupies the same
// real time at any frequency).
type Demand struct {
	// PerSecond is the cycle-denominated work issued per second of
	// session time, at full-speed scale like every cpu.Burst.
	PerSecond cpu.Burst
	// WallFraction is the fraction of each second consumed by
	// frequency-invariant (wall-clock) computation.
	WallFraction float64
}

// Util estimates the utilization Demand imposes at clock step s: the
// wall-pinned fraction plus the stretched duration of the per-second
// cycle work. Values above 1 mean the class cannot keep up at s.
func (d Demand) Util(s cpu.Step) float64 {
	return d.WallFraction + float64(d.PerSecond.Duration(s))/float64(sim.Second)
}

// EstimateDemand returns the demand estimate for a workload class by its
// wire name ("mpeg", "web", "chess", "editor", "rect", "feedback"), or
// ok=false for an unknown class. The figures are derived from the same
// default configurations the experiment layer instantiates, so the
// estimate tracks the generators:
//
//   - mpeg: sustained frame decode (GOP-averaged) plus the audio stream.
//     Lands at ≈0.70 utilization at 206.4 MHz and ≈0.87 at 132.7 MHz,
//     crossing 0.9 below that — the paper's "plays cleanly at 132.7 MHz
//     but not below" boundary.
//   - editor: the sustained requirement is speech synthesis holding
//     real-time rate during playback (UI bursts and the sound driver are
//     transient or small); infeasible below 132.7 MHz, where the paper
//     reports "noticeable delays".
//   - chess: mostly wall-pinned Crafty search (feasible at any step, by
//     construction) plus board repaints and the Kaffe polling loop.
//   - web: scroll-phase rendering plus the polling loop; light enough
//     for every step.
//   - feedback: the closed loop evaluated at its maximum (most-shed)
//     period — the loop trades rate for feasibility, so its demand floor
//     is what schedulability must clear.
//   - rect: the 9-busy/1-idle wall-clock wave of Section 5.3.
func EstimateDemand(class string) (Demand, bool) {
	switch class {
	case "mpeg":
		cfg := DefaultMPEGConfig()
		avg := (cfg.IFrameFactor + float64(cfg.GOPLength-1)*cfg.PFrameFactor) / float64(cfg.GOPLength)
		video := cfg.FrameBurst.Scale(avg * float64(cfg.FPS))
		audio := audioBurst.Scale(float64(sim.Second / audioChunk))
		return Demand{PerSecond: video.Add(audio)}, true
	case "web":
		// Scroll phase: one screenful repaint every ~3.5 s on average.
		scroll := webScrollBurst.Scale(1.0 / 3.5)
		return Demand{PerSecond: scroll.Add(pollPerSecond())}, true
	case "chess":
		// Crafty plans ≈2.75 s wall time per ≈10 s move cycle, plus two
		// board repaints per cycle.
		boards := chessBoardBurst.Scale(2.0 / 10.0)
		return Demand{PerSecond: boards.Add(pollPerSecond()), WallFraction: 0.275}, true
	case "editor":
		// Real-time speech synthesis: one chunk per speechChunk of
		// playback must finish before the pipeline drains.
		synth := synthChunkBurst.Scale(float64(sim.Second) / float64(speechChunk))
		return Demand{PerSecond: synth}, true
	case "feedback":
		cfg := DefaultFeedbackConfig()
		rate := float64(sim.Second) / float64(cfg.MaxPeriod)
		return Demand{PerSecond: cfg.Burst.Scale(rate)}, true
	case "rect":
		// The paper's example wave: 9 busy quanta, 1 idle.
		return Demand{WallFraction: 0.9}, true
	}
	return Demand{}, false
}

// pollPerSecond is the Kaffe 30 ms polling loop's per-second cycle cost,
// carried by every Java workload.
func pollPerSecond() cpu.Burst {
	return javaPollBurst.Scale(float64(sim.Second) / float64(JavaPollPeriod))
}
