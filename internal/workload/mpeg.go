package workload

import (
	"fmt"

	"clocksched/internal/cpu"
	"clocksched/internal/kernel"
	"clocksched/internal/metrics"
	"clocksched/internal/sim"
)

// MPEGConfig shapes the MPEG player. The defaults model the paper's clip:
// a 320×200 MPEG-1 video at 15 frames/s, 14 s long, looped to 60 s, with
// the audio stream sent to a separate player process.
type MPEGConfig struct {
	// FPS is the frame rate.
	FPS int
	// Length is the playback length.
	Length sim.Duration
	// FrameBurst is the average per-frame decode work. The default is
	// calibrated so decoding busies ≈70% of the frame period at
	// 206.4 MHz and ≈87% at 132.7 MHz (Figure 9), with the plateau at
	// 162.2–176.9 MHz emerging from the Table 3 memory model.
	FrameBurst cpu.Burst
	// GOPLength is the I-frame spacing; I-frames (key or reference
	// frames) cost IFrameFactor× the base burst, P-frames jitter around
	// PFrameFactor×.
	GOPLength    int
	IFrameFactor float64
	PFrameFactor float64
	// PJitter is the uniform ± fraction applied to P-frame cost.
	PJitter float64
	// SpinThreshold is the player's scheduling heuristic: if a frame
	// completes with less than this much time to its display deadline,
	// the player spins rather than sleeping (the Itsy player used 12 ms).
	SpinThreshold sim.Duration
	// Seed drives frame-cost jitter.
	Seed uint64
	// Deadlines, when non-nil, makes the player advertise each frame's
	// work and due time to a deadline-based clock scheduler before
	// decoding it, and report completion afterwards — the cooperative
	// application model of the paper's future-work section.
	// *policy.DeadlineScheduler satisfies this interface.
	Deadlines DeadlineSink
	// DropLateFrames switches the player to Pering et al.'s elastic
	// assumption: a frame whose display time has already passed when
	// decoding would start is skipped rather than decoded late. The
	// paper's own methodology treats constraints as inelastic
	// (DropLateFrames = false); the drop-tolerant mode exists to
	// reproduce the energy-vs-frame-rate comparison of Section 3.
	DropLateFrames bool
}

// DeadlineSink is where a deadline-aware application registers its timing
// obligations.
type DeadlineSink interface {
	// Submit registers work (worst-case cycles) due at an absolute time
	// and returns a job id.
	Submit(cycles int64, due sim.Time) int
	// Complete reports that the job finished.
	Complete(id int)
}

// DefaultMPEGConfig returns the paper's clip parameters.
func DefaultMPEGConfig() MPEGConfig {
	return MPEGConfig{
		FPS:    15,
		Length: 60 * sim.Second,
		// Calibrated against Figure 9; see package cpu's Table 3 model.
		FrameBurst:    cpu.Burst{Core: 3_800_000, Mem: 136_000, Cache: 38_000},
		GOPLength:     12,
		IFrameFactor:  1.70,
		PFrameFactor:  0.95,
		PJitter:       0.10,
		SpinThreshold: 12 * sim.Millisecond,
		Seed:          1,
	}
}

func (c MPEGConfig) validate() error {
	if c.FPS < 1 || c.FPS > 60 {
		return fmt.Errorf("workload: bad FPS %d", c.FPS)
	}
	if c.Length <= 0 {
		return fmt.Errorf("workload: bad length %v", c.Length)
	}
	if c.FrameBurst.Zero() {
		return fmt.Errorf("workload: empty frame burst")
	}
	if c.GOPLength < 1 {
		return fmt.Errorf("workload: bad GOP length %d", c.GOPLength)
	}
	if c.IFrameFactor <= 0 || c.PFrameFactor <= 0 || c.PJitter < 0 || c.PJitter >= 1 {
		return fmt.Errorf("workload: bad frame cost factors")
	}
	if c.SpinThreshold < 0 {
		return fmt.Errorf("workload: negative spin threshold")
	}
	return nil
}

// MPEG is the video+audio playback workload.
type MPEG struct {
	cfg       MPEGConfig
	col       metrics.Collector
	video     *mpegVideo
	installed bool
}

// NewMPEG builds the workload.
func NewMPEG(cfg MPEGConfig) (*MPEG, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &MPEG{cfg: cfg}, nil
}

// Name implements Workload.
func (m *MPEG) Name() string { return "MPEG" }

// Duration implements Workload.
func (m *MPEG) Duration() sim.Duration { return m.cfg.Length }

// Metrics implements Workload.
func (m *MPEG) Metrics() *metrics.Collector { return &m.col }

// DroppedFrames reports how many frames the player skipped; always zero
// unless DropLateFrames is set. Valid after the run.
func (m *MPEG) DroppedFrames() int {
	if m.video == nil {
		return 0
	}
	return m.video.dropped
}

// Install implements Workload: it spawns the video player and the forked
// audio player.
func (m *MPEG) Install(k *kernel.Kernel) error {
	if m.installed {
		return errReinstall
	}
	m.installed = true
	m.video = &mpegVideo{cfg: m.cfg, col: &m.col, rng: sim.NewRNG(m.cfg.Seed)}
	if _, err := k.Spawn(m.video); err != nil {
		return err
	}
	// Audio runs as a separate process fed from the WAV stream: cheap,
	// periodic chunks, one per 100 ms of sound.
	if _, err := k.Spawn(&mpegAudio{length: m.cfg.Length, col: &m.col}); err != nil {
		return err
	}
	return nil
}

// framePeriod returns the exact deadline of frame i (0-based): frames are
// sequenced against the wall clock so late frames do not shift the
// schedule, keeping audio and video nominally synchronized at 15 frames/s.
func frameDeadline(i int, fps int) sim.Time {
	return sim.Time((int64(i+1)*1000000 + int64(fps)/2) / int64(fps))
}

// mpegVideo decodes frames and either sleeps or spins out the slack, like
// the default Itsy player.
type mpegVideo struct {
	cfg   MPEGConfig
	col   *metrics.Collector
	rng   *sim.RNG
	frame int
	// decoded marks that the current frame's burst completed and the
	// player is deciding how to wait.
	decoded bool
	// job is the deadline-scheduler id of the in-flight frame.
	job int
	// dropped counts frames skipped under DropLateFrames.
	dropped int
}

// Name implements kernel.Program.
func (v *mpegVideo) Name() string { return "mpeg_play" }

// Next implements kernel.Program.
func (v *mpegVideo) Next(now sim.Time) kernel.Action {
	deadline := frameDeadline(v.frame, v.cfg.FPS)
	if !v.decoded {
		if deadline > v.cfg.Length {
			return kernel.Exit()
		}
		if v.cfg.DropLateFrames && now >= deadline {
			// Pering-style elasticity: the frame's moment has passed;
			// skip to the first frame that can still be shown.
			v.dropped++
			v.frame++
			return kernel.Compute(cpu.Burst{}) // loop to the next frame
		}
		v.decoded = true
		burst := v.frameBurst()
		if v.cfg.Deadlines != nil {
			// Advertise the frame's worst-case work to the deadline
			// scheduler before starting to decode it.
			v.job = v.cfg.Deadlines.Submit(burst.Cycles(cpu.MaxStep), deadline)
		}
		return kernel.Compute(burst)
	}
	// Frame decoded: record its deadline and wait for display time.
	v.decoded = false
	if v.cfg.Deadlines != nil {
		v.cfg.Deadlines.Complete(v.job)
	}
	v.col.Record(fmt.Sprintf("frame-%d", v.frame), deadline, now)
	v.frame++
	slack := deadline - now
	switch {
	case slack <= 0:
		// Late: start the next frame immediately.
		return kernel.Compute(cpu.Burst{}) // no-op, loop continues
	case slack < v.cfg.SpinThreshold:
		return kernel.SpinUntil(deadline)
	default:
		return kernel.SleepUntil(deadline)
	}
}

func (v *mpegVideo) frameBurst() cpu.Burst {
	factor := v.cfg.PFrameFactor
	if v.frame%v.cfg.GOPLength == 0 {
		factor = v.cfg.IFrameFactor
	} else if v.cfg.PJitter > 0 {
		factor *= 1 + v.cfg.PJitter*(2*v.rng.Float64()-1)
	}
	return v.cfg.FrameBurst.Scale(factor)
}

// audioChunk is the playback granule of the WAV stream.
const audioChunk = 100 * sim.Millisecond

// mpegAudio renders the audio stream: a small fixed burst per chunk,
// sequenced on the wall clock like the video.
type mpegAudio struct {
	length  sim.Duration
	col     *metrics.Collector
	chunk   int
	playing bool
}

// Name implements kernel.Program.
func (a *mpegAudio) Name() string { return "wav_play" }

// audioBurst is ~2 ms of decode work at full speed per 100 ms chunk.
var audioBurst = cpu.Burst{Core: 350_000, Mem: 5_000, Cache: 1_200}

// Next implements kernel.Program.
func (a *mpegAudio) Next(now sim.Time) kernel.Action {
	due := sim.Time(a.chunk+1) * audioChunk
	if !a.playing {
		if due > a.length {
			return kernel.Exit()
		}
		a.playing = true
		return kernel.Compute(audioBurst)
	}
	a.playing = false
	a.col.Record(fmt.Sprintf("audio-%d", a.chunk), due, now)
	a.chunk++
	if due > now {
		return kernel.SleepUntil(due)
	}
	return kernel.Compute(cpu.Burst{})
}
