package workload

import (
	"fmt"

	"clocksched/internal/cpu"
	"clocksched/internal/kernel"
	"clocksched/internal/metrics"
	"clocksched/internal/sim"
	"clocksched/internal/trace"
)

// Chess models the paper's 218-second Crafty game through a Java interface:
// a novice player thinks (near-idle stretches, only the UI and polling loop
// ticking) and then Crafty plans. Crafty "uses a play book for opening
// moves and then plays for specific periods of time in later stages",
// playing the best move found when time expires — so planning is busy for
// a fixed wall-clock span no matter the clock step, which is why the
// utilization plots pin at 100% during planning at any frequency.
type Chess struct {
	tr        *trace.Trace
	col       metrics.Collector
	installed bool
}

// UI repaint work for moves (at-full-speed scale).
var chessBoardBurst = cpu.Burst{Core: 5_000_000, Mem: 150_000, Cache: 40_000}

// Opening-book replies are near-instant lookups.
const chessBookTime = 120 * sim.Millisecond

// DefaultChessTrace generates the deterministic game: "usermove" events
// whose Arg is the move number. Early moves come quickly (both sides in
// book); later ones follow long novice think times.
func DefaultChessTrace(seed uint64) *trace.Trace {
	rng := sim.NewRNG(seed)
	rec := trace.NewRecorder("chess")
	now := 2 * sim.Second
	move := int64(1)
	for now < 210*sim.Second {
		rec.Add(now, "usermove", move)
		var think sim.Duration
		if move <= 8 {
			think = rng.Duration(2*sim.Second, 5*sim.Second)
		} else {
			// The novice slows down (and loses, badly).
			think = rng.Duration(5*sim.Second, 15*sim.Second)
		}
		// Crafty's reply time is part of the gap before the next user
		// move; the handler models it explicitly.
		now += think
		move++
	}
	tr, err := rec.Finish()
	if err != nil {
		panic(err)
	}
	return tr
}

// craftyPlanTime is how long Crafty searches for a given move number: book
// moves are instant, middlegame searches run a few seconds of wall time.
func craftyPlanTime(move int64, rng *sim.RNG) sim.Duration {
	if move <= 8 {
		return chessBookTime
	}
	return rng.Duration(1500*sim.Millisecond, 4*sim.Second)
}

// NewChess builds the workload from an input trace; nil selects
// DefaultChessTrace(1).
func NewChess(tr *trace.Trace) (*Chess, error) {
	if tr == nil {
		tr = DefaultChessTrace(1)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &Chess{tr: tr}, nil
}

// Name implements Workload.
func (c *Chess) Name() string { return "Chess" }

// Duration implements Workload.
func (c *Chess) Duration() sim.Duration { return 218 * sim.Second }

// Metrics implements Workload.
func (c *Chess) Metrics() *metrics.Collector { return &c.col }

// Install implements Workload.
func (c *Chess) Install(k *kernel.Kernel) error {
	if c.installed {
		return errReinstall
	}
	c.installed = true
	rng := sim.NewRNG(7) // plan-time jitter, independent of the trace seed
	prog := &eventDriven{
		name: "crafty",
		col:  &c.col,
		handle: func(now sim.Time, e trace.Event) response {
			if e.Kind != "usermove" {
				return response{}
			}
			plan := craftyPlanTime(e.Arg, rng)
			return response{
				actions: []kernel.Action{
					kernel.Compute(chessBoardBurst), // render the user's move
					kernel.ComputeFor(plan),         // Crafty searches in wall time
					kernel.Compute(chessBoardBurst), // render the reply
				},
				// The reply should appear promptly once the search's time
				// allotment expires.
				name: fmt.Sprintf("reply-%d", e.Arg),
				due:  e.At + plan + 500*sim.Millisecond,
			}
		},
	}
	proc, err := k.Spawn(prog)
	if err != nil {
		return err
	}
	if err := installTrace(k, prog, proc, c.tr); err != nil {
		return err
	}
	_, err = k.Spawn(NewJavaPoll(c.Duration()))
	return err
}
