package workload

import (
	"testing"

	"clocksched/internal/cpu"
	"clocksched/internal/kernel"
	"clocksched/internal/sim"
	"clocksched/internal/trace"
)

func TestEventDrivenIgnoresUnknownEvents(t *testing.T) {
	tr := &trace.Trace{Name: "weird", Events: []trace.Event{
		{At: 100 * sim.Millisecond, Kind: "teleport", Arg: 1},
		{At: 200 * sim.Millisecond, Kind: "scroll", Arg: 10},
	}}
	w, err := NewWeb(tr)
	if err != nil {
		t.Fatal(err)
	}
	runAt(t, w, cpu.MaxStep, sim.Second)
	// Only the scroll produced a deadline; the unknown event was dropped.
	if got := w.Metrics().Count(); got != 1 {
		t.Errorf("recorded %d deadlines, want 1", got)
	}
}

func TestChessIgnoresUnknownEvents(t *testing.T) {
	tr := &trace.Trace{Name: "odd", Events: []trace.Event{
		{At: 100 * sim.Millisecond, Kind: "resign", Arg: 1},
		{At: 300 * sim.Millisecond, Kind: "usermove", Arg: 1},
	}}
	c, err := NewChess(tr)
	if err != nil {
		t.Fatal(err)
	}
	runAt(t, c, cpu.MaxStep, 2*sim.Second)
	if got := c.Metrics().Count(); got != 1 {
		t.Errorf("recorded %d deadlines, want 1", got)
	}
}

func TestEditorIgnoresUnknownEvents(t *testing.T) {
	tr := &trace.Trace{Name: "odd", Events: []trace.Event{
		{At: 100 * sim.Millisecond, Kind: "explode", Arg: 1},
		{At: 300 * sim.Millisecond, Kind: "ui", Arg: 10},
	}}
	e, err := NewTalkingEditor(tr)
	if err != nil {
		t.Fatal(err)
	}
	runAt(t, e, cpu.MaxStep, 2*sim.Second)
	if got := e.Metrics().Count(); got != 1 {
		t.Errorf("recorded %d deadlines, want 1", got)
	}
}

func TestFeedbackIgnoresUnknownEvents(t *testing.T) {
	cfg := DefaultFeedbackConfig()
	cfg.Length = sim.Second
	cfg.Disturbances = &trace.Trace{Name: "odd", Events: []trace.Event{
		{At: 100 * sim.Millisecond, Kind: "meltdown", Arg: 1},
		{At: 300 * sim.Millisecond, Kind: "spike", Arg: 10},
	}}
	f, err := NewFeedback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runAt(t, f, cpu.MaxStep, 2*sim.Second)
	// Exactly one spike deadline among the loop's own records; the unknown
	// event must contribute nothing.
	spikes := 0
	for _, d := range f.Metrics().Deadlines() {
		if len(d.Name) >= 5 && d.Name[:5] == "spike" {
			spikes++
		}
	}
	if spikes != 1 {
		t.Errorf("recorded %d spike deadlines, want 1", spikes)
	}
}

func TestFeedbackRejectsInvalidParams(t *testing.T) {
	bad := []func(*FeedbackConfig){
		func(c *FeedbackConfig) { c.Period = 0 },
		func(c *FeedbackConfig) { c.Period = -sim.Millisecond },
		func(c *FeedbackConfig) { c.MinPeriod = 0 },
		func(c *FeedbackConfig) { c.MaxPeriod = c.MinPeriod - 1 },
		func(c *FeedbackConfig) { c.Period = c.MaxPeriod + sim.Millisecond },
		func(c *FeedbackConfig) { c.Period = c.MinPeriod - 1 },
		func(c *FeedbackConfig) { c.Burst = cpu.Burst{} },
		func(c *FeedbackConfig) { c.Jitter = -0.1 },
		func(c *FeedbackConfig) { c.Jitter = 1 },
		func(c *FeedbackConfig) { c.Length = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultFeedbackConfig()
		mutate(&cfg)
		if _, err := NewFeedback(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	// Invalid disturbance traces are rejected like the other workloads'.
	cfg := DefaultFeedbackConfig()
	cfg.Disturbances = &trace.Trace{Name: "", Events: nil}
	if _, err := NewFeedback(cfg); err == nil {
		t.Error("feedback accepted invalid trace")
	}
}

func TestFeedbackShedsRateWhenSlow(t *testing.T) {
	mk := func(step cpu.Step) *Feedback {
		cfg := DefaultFeedbackConfig()
		cfg.Length = 10 * sim.Second
		f, err := NewFeedback(cfg)
		if err != nil {
			t.Fatal(err)
		}
		runAt(t, f, step, 0)
		return f
	}
	fast := mk(cpu.MaxStep)
	slow := mk(cpu.MinStep)
	if fast.FinalPeriod() > DefaultFeedbackConfig().Period {
		t.Errorf("full-speed loop stretched its period to %v", fast.FinalPeriod())
	}
	if slow.FinalPeriod() <= fast.FinalPeriod() {
		t.Errorf("slow loop period %v not longer than fast %v — no self-shedding",
			slow.FinalPeriod(), fast.FinalPeriod())
	}
	// The closed loop trades rate for feasibility: fewer samples at 59 MHz.
	if slow.Metrics().Count() >= fast.Metrics().Count() {
		t.Errorf("slow loop recorded %d deadlines, fast %d — expected fewer when shed",
			slow.Metrics().Count(), fast.Metrics().Count())
	}
}

func TestWorkloadsRejectDoubleInstall(t *testing.T) {
	builders := []func() Workload{
		func() Workload { w, _ := NewWeb(nil); return w },
		func() Workload { c, _ := NewChess(nil); return c },
		func() Workload { e, _ := NewTalkingEditor(nil); return e },
		func() Workload { r, _ := NewRectWave(9, 1, sim.Second); return r },
		func() Workload { f, _ := NewFeedback(DefaultFeedbackConfig()); return f },
	}
	for _, mk := range builders {
		w := mk()
		eng := &sim.Engine{}
		k, _ := kernel.New(eng, kernel.DefaultConfig())
		if err := w.Install(k); err != nil {
			t.Fatalf("%s: first install failed: %v", w.Name(), err)
		}
		if err := w.Install(k); err == nil {
			t.Errorf("%s: double install accepted", w.Name())
		}
	}
}

func TestWorkloadsRejectInvalidTraces(t *testing.T) {
	bad := &trace.Trace{Name: "", Events: nil}
	if _, err := NewChess(bad); err == nil {
		t.Error("chess accepted invalid trace")
	}
	if _, err := NewTalkingEditor(bad); err == nil {
		t.Error("editor accepted invalid trace")
	}
}

func TestMPEGDropModeShedsFramesWhenSlow(t *testing.T) {
	cfg := DefaultMPEGConfig()
	cfg.Length = 10 * sim.Second
	cfg.DropLateFrames = true
	m, err := NewMPEG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runAt(t, m, cpu.MinStep, 0)
	if m.DroppedFrames() == 0 {
		t.Error("drop-tolerant player dropped nothing at 59MHz")
	}
	// Dropped + rendered ≈ total frames.
	rendered := 0
	for _, d := range m.Metrics().Deadlines() {
		if len(d.Name) > 5 && d.Name[:5] == "frame" {
			rendered++
		}
	}
	total := 10 * cfg.FPS
	if got := rendered + m.DroppedFrames(); got < total-2 || got > total {
		t.Errorf("rendered %d + dropped %d = %d, want ≈%d",
			rendered, m.DroppedFrames(), got, total)
	}
}

func TestMPEGDropModeKeepsEverythingWhenFast(t *testing.T) {
	cfg := DefaultMPEGConfig()
	cfg.Length = 10 * sim.Second
	cfg.DropLateFrames = true
	m, _ := NewMPEG(cfg)
	runAt(t, m, cpu.MaxStep, 0)
	if m.DroppedFrames() != 0 {
		t.Errorf("dropped %d frames at full speed", m.DroppedFrames())
	}
}

func TestMPEGDroppedFramesBeforeInstall(t *testing.T) {
	m, _ := NewMPEG(DefaultMPEGConfig())
	if m.DroppedFrames() != 0 {
		t.Error("uninstalled workload reports drops")
	}
}

func TestJavaPollStopsAtLength(t *testing.T) {
	eng := &sim.Engine{}
	k, _ := kernel.New(eng, kernel.DefaultConfig())
	p, _ := k.Spawn(NewJavaPoll(100 * sim.Millisecond))
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if p.State() != kernel.StateExited {
		t.Errorf("poll process state = %v after its horizon", p.State())
	}
	// ~4 polls of ~1 ms.
	if p.CPUTime() > 10*sim.Millisecond {
		t.Errorf("poll used %v CPU in 100ms window", p.CPUTime())
	}
}
