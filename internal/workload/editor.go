package workload

import (
	"fmt"

	"clocksched/internal/cpu"
	"clocksched/internal/kernel"
	"clocksched/internal/metrics"
	"clocksched/internal/sim"
	"clocksched/internal/trace"
)

// TalkingEditor models the paper's modified "mpedit" Java text editor that
// reads files aloud through DECtalk: the 70-second input trace opens a file
// through the file dialogue (bursty UI work — dragging, JIT'ing, opening
// files), has it spoken aloud (long synthesis computation feeding the
// OSS-compatible sound driver), then opens and speaks a second file. As in
// the paper, the speech synthesizer runs as a separate process, and the
// sound driver takes its own cycles during playback; the application is
// "bursty at a higher level" than the others.
type TalkingEditor struct {
	tr        *trace.Trace
	col       metrics.Collector
	installed bool
}

// UI work per dialogue event (at-full-speed scale).
var (
	editorUIBurst  = cpu.Burst{Core: 12_000_000, Mem: 500_000, Cache: 120_000}
	editorOpenFile = cpu.Burst{Core: 25_000_000, Mem: 900_000, Cache: 250_000}
)

// Speech synthesis parameters: text is synthesized in chunks, each covering
// speechChunk of playback, buffered speechBuffer chunks ahead. Synthesizing
// one chunk costs synthChunkBurst — roughly 290 ms at 206.4 MHz and 410 ms
// at 132.7 MHz per 500 ms of speech — so synthesis keeps ahead of playback
// at 132.7 MHz and above even with the polling loop and sound driver
// competing for quanta, but falls behind at the slowest steps ("the speech
// synthesis engine had noticeable delays").
const (
	speechChunk  = 500 * sim.Millisecond
	speechBuffer = 4 // chunks the audio pipeline holds
)

var synthChunkBurst = cpu.Burst{Core: 42_000_000, Mem: 500_000, Cache: 120_000}

// soundDriverBurst is the per-100 ms cost of feeding the OSS sound device
// during playback.
var soundDriverBurst = cpu.Burst{Core: 700_000, Mem: 15_000, Cache: 3_000}

const soundDriverPeriod = 100 * sim.Millisecond

const editorUIDeadline = 500 * sim.Millisecond

// DefaultEditorTrace generates the deterministic 70 s session. Kinds:
// "ui" (dialogue interaction, arg = weight in tenths) and "openfile"
// (arg = file length in seconds of speech).
func DefaultEditorTrace(seed uint64) *trace.Trace {
	rng := sim.NewRNG(seed)
	rec := trace.NewRecorder("talking-editor")
	// Phase 1: navigate the file dialogue to the short text file.
	now := sim.Time(1 * sim.Second)
	for i := 0; i < 6; i++ {
		rec.Add(now, "ui", 6+rng.Int63n(8))
		now += rng.Duration(800*sim.Millisecond, 2200*sim.Millisecond)
	}
	// Speak the short file: ~18 s of speech.
	rec.Add(now, "openfile", 18)
	now += 24 * sim.Second
	// Phase 2: open the second text file.
	for i := 0; i < 4; i++ {
		rec.Add(now, "ui", 6+rng.Int63n(8))
		now += rng.Duration(800*sim.Millisecond, 2000*sim.Millisecond)
	}
	rec.Add(now, "openfile", 22)
	tr, err := rec.Finish()
	if err != nil {
		panic(err)
	}
	return tr
}

// NewTalkingEditor builds the workload from an input trace; nil selects
// DefaultEditorTrace(1).
func NewTalkingEditor(tr *trace.Trace) (*TalkingEditor, error) {
	if tr == nil {
		tr = DefaultEditorTrace(1)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &TalkingEditor{tr: tr}, nil
}

// Name implements Workload.
func (e *TalkingEditor) Name() string { return "TalkingEditor" }

// Duration implements Workload.
func (e *TalkingEditor) Duration() sim.Duration { return 70 * sim.Second }

// Metrics implements Workload.
func (e *TalkingEditor) Metrics() *metrics.Collector { return &e.col }

// Install implements Workload.
func (e *TalkingEditor) Install(k *kernel.Kernel) error {
	if e.installed {
		return errReinstall
	}
	e.installed = true

	synth := &dectalk{col: &e.col}
	synthProc, err := k.Spawn(synth)
	if err != nil {
		return err
	}
	driver := &soundDriver{}
	driverProc, err := k.Spawn(driver)
	if err != nil {
		return err
	}
	synth.startPlayback = func(start, end sim.Time) {
		driver.enqueue(start, end)
		k.Wake(driverProc)
	}

	passage := 0
	ui := &eventDriven{
		name: "mpedit",
		col:  &e.col,
		handle: func(now sim.Time, ev trace.Event) response {
			switch ev.Kind {
			case "ui":
				return response{
					actions: []kernel.Action{kernel.Compute(editorUIBurst.Scale(float64(ev.Arg) / 10))},
					name:    fmt.Sprintf("ui-%d", int64(ev.At)/1000),
					due:     ev.At + editorUIDeadline,
				}
			case "openfile":
				passage++
				chunks := int(ev.Arg * int64(sim.Second) / int64(speechChunk))
				p := passage
				return response{
					actions: []kernel.Action{
						kernel.Compute(editorOpenFile),
						// Hand the text to DECtalk once the file is read.
						handoff(func(handNow sim.Time) {
							synth.enqueue(p, handNow, chunks)
							k.Wake(synthProc)
						}),
					},
					name: fmt.Sprintf("open-%d", passage),
					due:  ev.At + editorUIDeadline,
				}
			default:
				return response{}
			}
		},
	}
	uiProc, err := k.Spawn(ui)
	if err != nil {
		return err
	}
	if err := installTrace(k, ui, uiProc, e.tr); err != nil {
		return err
	}
	_, err = k.Spawn(NewJavaPoll(e.Duration()))
	return err
}

// handoff is a zero-length action whose only purpose is its side effect:
// the kernel runs the callback when it picks the action up, which is the
// moment the preceding action (reading the file) completed.
func handoff(fn func(now sim.Time)) kernel.Action {
	return kernel.Action{Kind: kernel.ActSleepFor, Dur: 0, SideEffect: fn}
}

// speechJob is one passage handed to the synthesizer.
type speechJob struct {
	passage int
	start   sim.Time
	chunks  int
}

// dectalk is the speech-synthesis process: it races ahead of playback,
// throttled by the audio buffer, and records a deadline for every chunk —
// the chunk must be synthesized before playback needs it.
type dectalk struct {
	col           *metrics.Collector
	startPlayback func(start, end sim.Time)

	queue []speechJob
	job   *speechJob
	chunk int
	// synthesizing marks that the current chunk's burst was issued.
	synthesizing bool
	playStart    sim.Time
}

// enqueue adds a passage; the caller wakes the process.
func (d *dectalk) enqueue(passage int, now sim.Time, chunks int) {
	d.queue = append(d.queue, speechJob{passage: passage, start: now, chunks: chunks})
}

// Name implements kernel.Program.
func (d *dectalk) Name() string { return "dectalk" }

// Next implements kernel.Program.
func (d *dectalk) Next(now sim.Time) kernel.Action {
	for {
		if d.job == nil {
			if len(d.queue) == 0 {
				return kernel.WaitEvent()
			}
			j := d.queue[0]
			d.queue = d.queue[1:]
			d.job = &j
			d.chunk = 0
			d.synthesizing = false
			// Playback begins one chunk after synthesis starts.
			d.playStart = j.start + speechChunk
			if d.startPlayback != nil {
				d.startPlayback(d.playStart, d.playStart+sim.Time(j.chunks)*speechChunk)
			}
		}
		if d.chunk >= d.job.chunks {
			d.job = nil
			continue
		}
		if !d.synthesizing {
			// Throttle: the buffer holds speechBuffer chunks ahead of the
			// playhead.
			gate := d.playStart + sim.Time(d.chunk-speechBuffer)*speechChunk
			if now < gate {
				return kernel.SleepUntil(gate)
			}
			d.synthesizing = true
			return kernel.Compute(synthChunkBurst)
		}
		// Chunk synthesized: record its playback deadline.
		d.synthesizing = false
		due := d.playStart + sim.Time(d.chunk)*speechChunk
		d.col.Record(fmt.Sprintf("speech-%d-chunk-%d", d.job.passage, d.chunk), due, now)
		d.chunk++
	}
}

// soundDriver feeds the audio device during playback windows.
type soundDriver struct {
	windows [][2]sim.Time
	cur     *[2]sim.Time
	next    sim.Time
	working bool
}

// enqueue adds a playback window; the caller wakes the process.
func (s *soundDriver) enqueue(start, end sim.Time) {
	s.windows = append(s.windows, [2]sim.Time{start, end})
}

// Name implements kernel.Program.
func (s *soundDriver) Name() string { return "oss-audio" }

// Next implements kernel.Program.
func (s *soundDriver) Next(now sim.Time) kernel.Action {
	for {
		if s.working {
			s.working = false
			s.next += soundDriverPeriod
		}
		if s.cur == nil {
			if len(s.windows) == 0 {
				return kernel.WaitEvent()
			}
			w := s.windows[0]
			s.windows = s.windows[1:]
			s.cur = &w
			s.next = w[0]
		}
		if s.next >= s.cur[1] {
			s.cur = nil
			continue
		}
		if now < s.next {
			return kernel.SleepUntil(s.next)
		}
		s.working = true
		return kernel.Compute(soundDriverBurst)
	}
}
