package workload

import (
	"fmt"

	"clocksched/internal/cpu"
	"clocksched/internal/kernel"
	"clocksched/internal/metrics"
	"clocksched/internal/sim"
)

// JavaPollPeriod is the Kaffe graphics library's input-polling interval:
// "the Java implementation we used has a 30 ms I/O polling loop".
const JavaPollPeriod = 30 * sim.Millisecond

// javaPollBurst is the ~1 ms of work each poll takes at full speed ("a
// constant polling action every 30 ms that takes about a millisecond to
// complete").
var javaPollBurst = cpu.Burst{Core: 180_000, Mem: 1_200, Cache: 200}

// JavaPoll is the background polling process that every Java workload
// carries; it is the periodic disturbance the paper blames for part of the
// clock-setting instability.
type JavaPoll struct {
	length  sim.Duration
	working bool
	tick    int
}

// NewJavaPoll returns a polling process that exits after length.
func NewJavaPoll(length sim.Duration) *JavaPoll { return &JavaPoll{length: length} }

// Name implements kernel.Program.
func (j *JavaPoll) Name() string { return "kaffe-poll" }

// Next implements kernel.Program.
func (j *JavaPoll) Next(now sim.Time) kernel.Action {
	if !j.working {
		j.working = true
		return kernel.Compute(javaPollBurst)
	}
	j.working = false
	j.tick++
	next := sim.Time(j.tick) * JavaPollPeriod
	if next > j.length {
		return kernel.Exit()
	}
	return kernel.SleepUntil(next)
}

// RectWave is the idealized workload of Section 5.3: busy for a fixed
// number of quanta, idle for a fixed number, repeating — "an idealized
// version of our MPEG player running roughly at an optimal speed".
type RectWave struct {
	BusyQuanta int
	IdleQuanta int
	Length     sim.Duration

	col       metrics.Collector
	installed bool
}

// NewRectWave builds the wave workload; the paper's example is 9 busy, 1
// idle.
func NewRectWave(busy, idle int, length sim.Duration) (*RectWave, error) {
	if busy < 1 || idle < 1 {
		return nil, fmt.Errorf("workload: rect wave needs positive phases, got %d/%d", busy, idle)
	}
	if length <= 0 {
		return nil, fmt.Errorf("workload: bad length %v", length)
	}
	return &RectWave{BusyQuanta: busy, IdleQuanta: idle, Length: length}, nil
}

// Name implements Workload.
func (r *RectWave) Name() string { return fmt.Sprintf("RectWave%d-%d", r.BusyQuanta, r.IdleQuanta) }

// Duration implements Workload.
func (r *RectWave) Duration() sim.Duration { return r.Length }

// Metrics implements Workload. The wave has no deadlines; the collector
// stays empty.
func (r *RectWave) Metrics() *metrics.Collector { return &r.col }

// Install implements Workload.
func (r *RectWave) Install(k *kernel.Kernel) error {
	if r.installed {
		return errReinstall
	}
	r.installed = true
	_, err := k.Spawn(&rectProgram{wave: r})
	return err
}

type rectProgram struct {
	wave    *RectWave
	working bool
	cycle   int
}

// Name implements kernel.Program.
func (p *rectProgram) Name() string { return p.wave.Name() }

// Next implements kernel.Program.
func (p *rectProgram) Next(now sim.Time) kernel.Action {
	if now >= p.wave.Length {
		return kernel.Exit()
	}
	p.working = !p.working
	if p.working {
		// Busy exactly through the busy quanta: time-based so the wave
		// shape is frequency-independent, as in the paper's analysis.
		return kernel.ComputeFor(sim.Duration(p.wave.BusyQuanta) * sim.Quantum)
	}
	return kernel.SleepFor(sim.Duration(p.wave.IdleQuanta) * sim.Quantum)
}
