package workload

import (
	"fmt"

	"clocksched/internal/cpu"
	"clocksched/internal/kernel"
	"clocksched/internal/metrics"
	"clocksched/internal/sim"
	"clocksched/internal/trace"
)

// Feedback models the closed-loop control workload of Xia et al.'s
// energy-aware feedback scheduling: a periodic control task samples, runs
// its control-law computation, and actuates before the next sample is due.
// Unlike the open-loop traces, the task observes its own measured response
// time and adapts its sampling period — stretching the period when the
// processor (at whatever speed the policy chose) can't finish a sample
// comfortably within it, and tightening back toward the nominal rate when
// there is slack. That makes it the one workload whose demand is a moving
// target for the clock scheduler: slow the clock and the loop sheds rate
// instead of missing deadlines, trading control quality for energy.
//
// A second, event-driven process injects load disturbances ("spike"
// events from a seeded trace): transient extra work the loop must absorb,
// as in the paper's setpoint-change experiments.
type Feedback struct {
	cfg       FeedbackConfig
	col       metrics.Collector
	loop      *feedbackLoop
	installed bool
}

// FeedbackConfig shapes the control loop.
type FeedbackConfig struct {
	// Period is the nominal (initial) sampling period.
	Period sim.Duration
	// MinPeriod and MaxPeriod bound the adaptation: the loop never samples
	// faster than MinPeriod or slower than MaxPeriod.
	MinPeriod sim.Duration
	MaxPeriod sim.Duration
	// Burst is the per-sample control-law computation at full-speed scale.
	Burst cpu.Burst
	// Jitter is the uniform ± fraction applied to each sample's cost.
	Jitter float64
	// Length is the session length.
	Length sim.Duration
	// Seed drives cost jitter and the default disturbance trace.
	Seed uint64
	// Deadlines, when non-nil, makes the loop advertise each sample's
	// work and due time to a deadline-based clock scheduler, like the
	// MPEG player does. *policy.DeadlineScheduler satisfies this.
	Deadlines DeadlineSink
	// Disturbances is the load-disturbance input trace; nil selects
	// DefaultFeedbackTrace(Seed).
	Disturbances *trace.Trace
}

// DefaultFeedbackConfig returns a loop calibrated against the SA-1100
// model: one sample costs ≈11 ms at 206.4 MHz (comfortable in the 30 ms
// nominal period) and ≈31 ms at 59.0 MHz (just over the period), so the
// loop holds its nominal rate at the upper clock steps and self-sheds
// toward a longer period at the lowest ones.
func DefaultFeedbackConfig() FeedbackConfig {
	return FeedbackConfig{
		Period:    30 * sim.Millisecond,
		MinPeriod: 15 * sim.Millisecond,
		MaxPeriod: 120 * sim.Millisecond,
		Burst:     cpu.Burst{Core: 1_200_000, Mem: 30_000, Cache: 8_000},
		Jitter:    0.10,
		Length:    50 * sim.Second,
		Seed:      1,
	}
}

func (c FeedbackConfig) validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("workload: bad feedback period %v", c.Period)
	}
	if c.MinPeriod <= 0 || c.MaxPeriod < c.MinPeriod {
		return fmt.Errorf("workload: bad feedback period bounds [%v, %v]", c.MinPeriod, c.MaxPeriod)
	}
	if c.Period < c.MinPeriod || c.Period > c.MaxPeriod {
		return fmt.Errorf("workload: feedback period %v outside [%v, %v]", c.Period, c.MinPeriod, c.MaxPeriod)
	}
	if c.Burst.Zero() {
		return fmt.Errorf("workload: empty feedback burst")
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		return fmt.Errorf("workload: bad feedback jitter %v", c.Jitter)
	}
	if c.Length <= 0 {
		return fmt.Errorf("workload: bad length %v", c.Length)
	}
	return nil
}

// disturbanceBurst is the transient extra work one unit of "spike"
// injects: roughly two nominal samples' worth.
var disturbanceBurst = cpu.Burst{Core: 2_500_000, Mem: 60_000, Cache: 16_000}

// disturbanceDeadline is how promptly a disturbance must be absorbed.
const disturbanceDeadline = 150 * sim.Millisecond

// DefaultFeedbackTrace generates the deterministic disturbance schedule:
// "spike" events (arg = magnitude in tenths of disturbanceBurst) every few
// seconds across a 50 s session.
func DefaultFeedbackTrace(seed uint64) *trace.Trace {
	rng := sim.NewRNG(seed)
	rec := trace.NewRecorder("feedback")
	now := 2 * sim.Second
	for now < 48*sim.Second {
		rec.Add(now, "spike", 5+rng.Int63n(11))
		now += rng.Duration(3*sim.Second, 8*sim.Second)
	}
	tr, err := rec.Finish()
	if err != nil {
		panic(err) // deterministic construction cannot produce a bad trace
	}
	return tr
}

// NewFeedback builds the workload.
func NewFeedback(cfg FeedbackConfig) (*Feedback, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Disturbances == nil {
		cfg.Disturbances = DefaultFeedbackTrace(cfg.Seed)
	}
	if err := cfg.Disturbances.Validate(); err != nil {
		return nil, err
	}
	return &Feedback{cfg: cfg}, nil
}

// Name implements Workload.
func (f *Feedback) Name() string { return "Feedback" }

// Duration implements Workload.
func (f *Feedback) Duration() sim.Duration { return f.cfg.Length }

// Metrics implements Workload.
func (f *Feedback) Metrics() *metrics.Collector { return &f.col }

// FinalPeriod reports the sampling period the loop converged to; valid
// after the run. Zero before installation.
func (f *Feedback) FinalPeriod() sim.Duration {
	if f.loop == nil {
		return 0
	}
	return f.loop.period
}

// Install implements Workload: it spawns the control loop and the
// disturbance injector.
func (f *Feedback) Install(k *kernel.Kernel) error {
	if f.installed {
		return errReinstall
	}
	f.installed = true
	f.loop = &feedbackLoop{
		cfg:    f.cfg,
		col:    &f.col,
		rng:    sim.NewRNG(f.cfg.Seed),
		period: f.cfg.Period,
	}
	if _, err := k.Spawn(f.loop); err != nil {
		return err
	}
	seq := 0
	prog := &eventDriven{
		name: "fb_disturb",
		col:  &f.col,
		handle: func(now sim.Time, e trace.Event) response {
			if e.Kind != "spike" {
				return response{} // unknown events are ignored
			}
			seq++
			return response{
				actions: []kernel.Action{
					kernel.Compute(disturbanceBurst.Scale(float64(e.Arg) / 10)),
				},
				name: fmt.Sprintf("spike-%d", seq),
				due:  e.At + disturbanceDeadline,
			}
		},
	}
	proc, err := k.Spawn(prog)
	if err != nil {
		return err
	}
	return installTrace(k, prog, proc, f.cfg.Disturbances)
}

// feedbackLoop is the adaptive control task.
type feedbackLoop struct {
	cfg     FeedbackConfig
	col     *metrics.Collector
	rng     *sim.RNG
	period  sim.Duration
	release sim.Time
	due     sim.Time
	iter    int
	job     int
	// computing marks that the current sample's burst was issued and the
	// loop is deciding what to do with the measured response.
	computing bool
}

// Name implements kernel.Program.
func (f *feedbackLoop) Name() string { return "fb_control" }

// Next implements kernel.Program.
func (f *feedbackLoop) Next(now sim.Time) kernel.Action {
	if !f.computing {
		if f.release >= f.cfg.Length {
			return kernel.Exit()
		}
		f.computing = true
		f.due = f.release + f.period
		burst := f.cfg.Burst
		if f.cfg.Jitter > 0 {
			burst = burst.Scale(1 + f.cfg.Jitter*(2*f.rng.Float64()-1))
		}
		if f.cfg.Deadlines != nil {
			f.job = f.cfg.Deadlines.Submit(burst.Cycles(cpu.MaxStep), f.due)
		}
		return kernel.Compute(burst)
	}
	f.computing = false
	if f.cfg.Deadlines != nil {
		f.cfg.Deadlines.Complete(f.job)
	}
	f.col.Record(fmt.Sprintf("loop-%d", f.iter), f.due, now)
	f.iter++
	// The feedback law, in pure integer arithmetic so adaptation is exact
	// across platforms: a response consuming ≥90% of the period means the
	// processor is struggling at its current speed — back the rate off by
	// 25%. A response under 40% means ample slack — creep back toward the
	// nominal rate by ~9%. In between, hold.
	resp := now - f.release
	prev := f.period
	switch {
	case resp*10 >= f.period*9:
		f.period = f.period * 5 / 4
	case resp*5 <= f.period*2:
		f.period = f.period * 10 / 11
	}
	if f.period < f.cfg.MinPeriod {
		f.period = f.cfg.MinPeriod
	}
	if f.period > f.cfg.MaxPeriod {
		f.period = f.cfg.MaxPeriod
	}
	next := f.release + prev
	if next <= now {
		// Overran the whole period: release the next sample immediately.
		f.release = now
		return kernel.Compute(cpu.Burst{}) // no-op, loop continues
	}
	f.release = next
	return kernel.SleepUntil(next)
}
