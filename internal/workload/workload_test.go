package workload

import (
	"testing"

	"clocksched/internal/cpu"
	"clocksched/internal/kernel"
	"clocksched/internal/sim"
)

// runAt installs w into a fresh kernel at a fixed clock step and runs it
// for the given duration (the workload's own duration if zero).
func runAt(t *testing.T, w Workload, step cpu.Step, length sim.Duration) *kernel.Kernel {
	t.Helper()
	eng := &sim.Engine{}
	cfg := kernel.DefaultConfig()
	cfg.InitialStep = step
	k, err := kernel.New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Install(k); err != nil {
		t.Fatal(err)
	}
	if length == 0 {
		length = w.Duration()
	}
	if err := k.Run(length); err != nil {
		t.Fatal(err)
	}
	return k
}

// meanUtil returns the average utilization over the run, in [0,1].
func meanUtil(k *kernel.Kernel) float64 {
	log := k.UtilLog()
	if len(log) == 0 {
		return 0
	}
	sum := 0
	for _, u := range log {
		sum += u.PP10K
	}
	return float64(sum) / float64(len(log)) / 10000
}

// frameSlack is the perceptual slack for MPEG frames: half a frame period.
const frameSlack = 33 * sim.Millisecond

func TestMPEGConfigValidation(t *testing.T) {
	bad := []func(c *MPEGConfig){
		func(c *MPEGConfig) { c.FPS = 0 },
		func(c *MPEGConfig) { c.FPS = 100 },
		func(c *MPEGConfig) { c.Length = 0 },
		func(c *MPEGConfig) { c.FrameBurst = cpu.Burst{} },
		func(c *MPEGConfig) { c.GOPLength = 0 },
		func(c *MPEGConfig) { c.IFrameFactor = 0 },
		func(c *MPEGConfig) { c.PJitter = 1 },
		func(c *MPEGConfig) { c.SpinThreshold = -1 },
	}
	for i, mutate := range bad {
		c := DefaultMPEGConfig()
		mutate(&c)
		if _, err := NewMPEG(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewMPEG(DefaultMPEGConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestMPEGAtFullSpeedMeetsDeadlines(t *testing.T) {
	cfg := DefaultMPEGConfig()
	cfg.Length = 20 * sim.Second
	m, _ := NewMPEG(cfg)
	k := runAt(t, m, cpu.MaxStep, 0)

	if got := m.Metrics().MissCount(frameSlack); got != 0 {
		t.Errorf("missed %d deadlines at 206.4MHz: %v", got, m.Metrics().Misses(frameSlack)[:min(got, 5)])
	}
	// 15 fps for 20 s: 300 frames (the last may be cut off by the run
	// end) plus audio chunks.
	frames := 0
	for _, d := range m.Metrics().Deadlines() {
		if len(d.Name) > 5 && d.Name[:5] == "frame" {
			frames++
		}
	}
	if frames < 295 || frames > 300 {
		t.Errorf("rendered %d frames, want ≈300", frames)
	}
	// Figure 9: utilization ≈ 70-78% at 206.4 MHz.
	if u := meanUtil(k); u < 0.62 || u > 0.82 {
		t.Errorf("utilization at 206.4MHz = %.3f, want ≈0.70-0.75", u)
	}
}

func TestMPEGAt132MeetsDeadlinesWithHighUtilization(t *testing.T) {
	cfg := DefaultMPEGConfig()
	cfg.Length = 20 * sim.Second
	m, _ := NewMPEG(cfg)
	k := runAt(t, m, cpu.Step(5), 0) // 132.7 MHz

	if got := m.Metrics().MissCount(frameSlack); got != 0 {
		t.Errorf("missed %d deadlines at 132.7MHz (the paper's sweet spot)", got)
	}
	// Figure 9: utilization ≈ 87-95% at 132.7 MHz.
	if u := meanUtil(k); u < 0.85 || u > 0.99 {
		t.Errorf("utilization at 132.7MHz = %.3f, want ≈0.9", u)
	}
}

func TestMPEGTooSlowMissesFrames(t *testing.T) {
	cfg := DefaultMPEGConfig()
	cfg.Length = 20 * sim.Second
	m, _ := NewMPEG(cfg)
	runAt(t, m, cpu.Step(3), 0) // 103.2 MHz: cannot keep up

	if got := m.Metrics().MissCount(frameSlack); got == 0 {
		t.Error("no deadline misses at 103.2MHz; the clip must not fit")
	}
}

func TestMPEGFrameTakesAboutSevenQuanta(t *testing.T) {
	// "Each frame is rendered in 67ms or just under 7 scheduling quanta"
	// — at 206.4 MHz decode takes 4-5 of those quanta busy.
	cfg := DefaultMPEGConfig()
	cfg.Length = 5 * sim.Second
	cfg.PJitter = 0
	m, _ := NewMPEG(cfg)
	k := runAt(t, m, cpu.MaxStep, 0)
	procs := k.Processes()
	video := procs[0]
	frames := float64(5 * 15)
	perFrame := float64(video.CPUTime()) / frames
	if perFrame < 38000 || perFrame > 55000 {
		t.Errorf("decode time per frame = %.0fµs, want ≈43-50ms", perFrame)
	}
}

func TestMPEGUtilizationPlateau(t *testing.T) {
	// Figure 9: utilization barely changes from 162.2 to 176.9 MHz.
	util := func(step cpu.Step) float64 {
		cfg := DefaultMPEGConfig()
		cfg.Length = 15 * sim.Second
		m, _ := NewMPEG(cfg)
		return meanUtil(runAt(t, m, step, 0))
	}
	u7 := util(cpu.Step(7))
	u8 := util(cpu.Step(8))
	if diff := u7 - u8; diff > 0.02 || diff < -0.03 {
		t.Errorf("utilization 162.2MHz=%.3f vs 176.9MHz=%.3f: plateau missing", u7, u8)
	}
	// And a clear drop exists from 132.7 to 206.4 overall.
	u5 := util(cpu.Step(5))
	u10 := util(cpu.Step(10))
	if u5-u10 < 0.1 {
		t.Errorf("utilization 132.7MHz=%.3f vs 206.4MHz=%.3f: spread too small", u5, u10)
	}
}

func TestMPEGDeterministicAcrossRuns(t *testing.T) {
	run := func() sim.Duration {
		cfg := DefaultMPEGConfig()
		cfg.Length = 5 * sim.Second
		m, _ := NewMPEG(cfg)
		k := runAt(t, m, cpu.MaxStep, 0)
		return k.Processes()[0].CPUTime()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("two identical runs differ: %v vs %v", a, b)
	}
}

func TestMPEGReinstallFails(t *testing.T) {
	m, _ := NewMPEG(DefaultMPEGConfig())
	eng := &sim.Engine{}
	k, _ := kernel.New(eng, kernel.DefaultConfig())
	if err := m.Install(k); err != nil {
		t.Fatal(err)
	}
	if err := m.Install(k); err == nil {
		t.Error("double install accepted")
	}
}

func TestWebWorkload(t *testing.T) {
	w, err := NewWeb(nil)
	if err != nil {
		t.Fatal(err)
	}
	k := runAt(t, w, cpu.MaxStep, 0)
	// At full speed every interaction is responsive.
	if got := w.Metrics().MissCount(0); got != 0 {
		t.Errorf("missed %d web deadlines at full speed", got)
	}
	if w.Metrics().Count() < 30 {
		t.Errorf("only %d interactions over 190s", w.Metrics().Count())
	}
	// Web browsing is mostly reading: low average utilization, but the
	// Java polling loop keeps it from being zero.
	if u := meanUtil(k); u < 0.02 || u > 0.40 {
		t.Errorf("web utilization = %.3f, want low but nonzero", u)
	}
}

func TestWebTraceDeterministic(t *testing.T) {
	a := DefaultWebTrace(42)
	b := DefaultWebTrace(42)
	if len(a.Events) != len(b.Events) {
		t.Fatal("same-seed traces differ in length")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("same-seed traces differ at event %d", i)
		}
	}
	c := DefaultWebTrace(43)
	same := len(c.Events) == len(a.Events)
	if same {
		identical := true
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds gave identical traces")
		}
	}
}

func TestWebRejectsBadTrace(t *testing.T) {
	tr := DefaultWebTrace(1)
	tr.Events[0].At = -1
	if _, err := NewWeb(tr); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestChessWorkload(t *testing.T) {
	c, err := NewChess(nil)
	if err != nil {
		t.Fatal(err)
	}
	k := runAt(t, c, cpu.MaxStep, 0)
	if got := c.Metrics().MissCount(0); got != 0 {
		t.Errorf("missed %d chess reply deadlines at full speed", got)
	}
	// The utilization pattern: full quanta while Crafty plans, idle while
	// the user thinks.
	full, idleish := 0, 0
	for _, u := range k.UtilLog() {
		switch {
		case u.PP10K >= 9900:
			full++
		case u.PP10K <= 500:
			idleish++
		}
	}
	if full < 100 {
		t.Errorf("only %d fully-busy quanta; Crafty planning should pin the CPU", full)
	}
	if idleish < 1000 {
		t.Errorf("only %d near-idle quanta; the novice thinks for long stretches", idleish)
	}
}

func TestChessPlanningIsWallClock(t *testing.T) {
	// Crafty plays for fixed periods: total planning CPU time is roughly
	// the same at 59 MHz as at 206.4 MHz (it just searches fewer nodes).
	run := func(step cpu.Step) sim.Duration {
		c, _ := NewChess(DefaultChessTrace(5))
		k := runAt(t, c, step, 0)
		var total sim.Duration
		for _, p := range k.Processes() {
			if p.Name() == "crafty" {
				total = p.CPUTime()
			}
		}
		return total
	}
	fast := run(cpu.MaxStep)
	slow := run(cpu.MinStep)
	ratio := float64(slow) / float64(fast)
	if ratio < 0.95 || ratio > 1.6 {
		t.Errorf("planning time ratio slow/fast = %.2f; search is time-boxed, want ≈1", ratio)
	}
}

func TestEditorWorkload(t *testing.T) {
	e, err := NewTalkingEditor(nil)
	if err != nil {
		t.Fatal(err)
	}
	runAt(t, e, cpu.MaxStep, 0)
	if got := e.Metrics().MissCount(0); got != 0 {
		misses := e.Metrics().Misses(0)
		t.Errorf("missed %d editor deadlines at full speed, first: %+v",
			got, misses[0])
	}
	// Both passages produce speech chunks.
	chunks := 0
	for _, d := range e.Metrics().Deadlines() {
		if len(d.Name) > 6 && d.Name[:6] == "speech" {
			chunks++
		}
	}
	if chunks < 70 { // 18s + 22s of speech at 2 chunks/s
		t.Errorf("only %d speech chunks recorded", chunks)
	}
}

func TestEditorSlowClockDelaysSpeech(t *testing.T) {
	e, _ := NewTalkingEditor(nil)
	runAt(t, e, cpu.MinStep, 0)
	if got := e.Metrics().MissCount(100 * sim.Millisecond); got == 0 {
		t.Error("no speech delays at 59MHz; synthesis must fall behind")
	}
}

func TestEditorKeepsUpAt132(t *testing.T) {
	// The paper's interaction constraint: every application "was able to
	// run at 132MHz and still meet any user interaction constraints".
	e, _ := NewTalkingEditor(nil)
	runAt(t, e, cpu.Step(5), 0)
	if got := e.Metrics().MissCount(100 * sim.Millisecond); got != 0 {
		misses := e.Metrics().Misses(100 * sim.Millisecond)
		t.Errorf("editor missed %d deadlines at 132.7MHz, first: %+v", got, misses[0])
	}
}

func TestRectWaveShape(t *testing.T) {
	w, err := NewRectWave(9, 1, 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	k := runAt(t, w, cpu.MaxStep, 0)
	// Mean utilization ≈ 0.9.
	if u := meanUtil(k); u < 0.88 || u > 0.92 {
		t.Errorf("rect wave utilization = %.3f, want ≈0.9", u)
	}
	// The quantum log alternates 9 busy, 1 idle.
	busyRun, maxBusyRun := 0, 0
	for _, u := range k.UtilLog() {
		if u.PP10K > 5000 {
			busyRun++
			if busyRun > maxBusyRun {
				maxBusyRun = busyRun
			}
		} else {
			busyRun = 0
		}
	}
	if maxBusyRun < 8 || maxBusyRun > 11 {
		t.Errorf("longest busy run = %d quanta, want ≈9", maxBusyRun)
	}
}

func TestRectWaveValidation(t *testing.T) {
	if _, err := NewRectWave(0, 1, sim.Second); err == nil {
		t.Error("zero busy accepted")
	}
	if _, err := NewRectWave(1, 0, sim.Second); err == nil {
		t.Error("zero idle accepted")
	}
	if _, err := NewRectWave(9, 1, 0); err == nil {
		t.Error("zero length accepted")
	}
}

func TestJavaPollShape(t *testing.T) {
	eng := &sim.Engine{}
	k, _ := kernel.New(eng, kernel.DefaultConfig())
	if _, err := k.Spawn(NewJavaPoll(sim.Second)); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	// ~33 polls of ~1 ms each.
	var total sim.Duration
	for _, p := range k.Processes() {
		total += p.CPUTime()
	}
	if total < 25*sim.Millisecond || total > 45*sim.Millisecond {
		t.Errorf("poll CPU time over 1s = %v, want ≈33ms", total)
	}
}

func TestWorkloadNamesAndDurations(t *testing.T) {
	m, _ := NewMPEG(DefaultMPEGConfig())
	w, _ := NewWeb(nil)
	c, _ := NewChess(nil)
	e, _ := NewTalkingEditor(nil)
	r, _ := NewRectWave(9, 1, sim.Second)
	cases := []struct {
		w    Workload
		name string
		dur  sim.Duration
	}{
		{m, "MPEG", 60 * sim.Second},
		{w, "Web", 190 * sim.Second},
		{c, "Chess", 218 * sim.Second},
		{e, "TalkingEditor", 70 * sim.Second},
		{r, "RectWave9-1", sim.Second},
	}
	for _, tc := range cases {
		if tc.w.Name() != tc.name {
			t.Errorf("Name = %q, want %q", tc.w.Name(), tc.name)
		}
		if tc.w.Duration() != tc.dur {
			t.Errorf("%s Duration = %v, want %v", tc.name, tc.w.Duration(), tc.dur)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
