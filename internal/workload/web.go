package workload

import (
	"fmt"

	"clocksched/internal/cpu"
	"clocksched/internal/kernel"
	"clocksched/internal/metrics"
	"clocksched/internal/sim"
	"clocksched/internal/trace"
)

// Web models the paper's browsing session: a JavaBean IceWeb browser
// viewing locally-stored content — a news article scrolled and read in
// full, then a return to the root menu and a table-heavy technical report
// (WRL TN-56). The overall trace is 190 seconds. Being a Java application
// it carries the Kaffe 30 ms polling loop.
type Web struct {
	tr        *trace.Trace
	col       metrics.Collector
	installed bool
}

// Rendering work per event kind, at-full-speed scale. Opens JIT and lay
// out a whole page; scrolls repaint a screenful; "back" repaints the menu.
var (
	webOpenBurst   = cpu.Burst{Core: 40_000_000, Mem: 1_500_000, Cache: 400_000}
	webScrollBurst = cpu.Burst{Core: 8_000_000, Mem: 300_000, Cache: 80_000}
	webBackBurst   = cpu.Burst{Core: 4_000_000, Mem: 120_000, Cache: 30_000}
)

// Interactive responsiveness deadlines: the user should not perceive the
// response as delayed.
const (
	webOpenDeadline   = 800 * sim.Millisecond
	webScrollDeadline = 250 * sim.Millisecond
)

// DefaultWebTrace generates the deterministic 190 s browsing session.
// Event kinds: "open" (arg = page weight in tenths, 10 = the news article,
// 15 = the table-heavy TN-56), "scroll" (arg = distance weight in tenths),
// "back".
func DefaultWebTrace(seed uint64) *trace.Trace {
	rng := sim.NewRNG(seed)
	rec := trace.NewRecorder("web")
	now := 500 * sim.Millisecond
	rec.Add(now, "open", 10) // the www.news.com article about the Itsy

	// Scroll through the article, reading between scrolls.
	for now < 85*sim.Second {
		now += rng.Duration(2500*sim.Millisecond, 6*sim.Second)
		rec.Add(now, "scroll", 8+rng.Int63n(5))
	}
	// Back to the root menu, then open TN-56.
	now += 2 * sim.Second
	rec.Add(now, "back", 0)
	now += 1500 * sim.Millisecond
	rec.Add(now, "open", 15)
	// Scroll through the tables until the session ends.
	for now < 185*sim.Second {
		now += rng.Duration(2*sim.Second, 5*sim.Second)
		rec.Add(now, "scroll", 8+rng.Int63n(7))
	}
	tr, err := rec.Finish()
	if err != nil {
		panic(err) // deterministic construction cannot produce a bad trace
	}
	return tr
}

// NewWeb builds the workload from an input trace; nil selects
// DefaultWebTrace(1).
func NewWeb(tr *trace.Trace) (*Web, error) {
	if tr == nil {
		tr = DefaultWebTrace(1)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &Web{tr: tr}, nil
}

// Name implements Workload.
func (w *Web) Name() string { return "Web" }

// Duration implements Workload.
func (w *Web) Duration() sim.Duration { return 190 * sim.Second }

// Metrics implements Workload.
func (w *Web) Metrics() *metrics.Collector { return &w.col }

// Install implements Workload.
func (w *Web) Install(k *kernel.Kernel) error {
	if w.installed {
		return errReinstall
	}
	w.installed = true
	seq := 0
	prog := &eventDriven{
		name: "iceweb",
		col:  &w.col,
		handle: func(now sim.Time, e trace.Event) response {
			seq++
			switch e.Kind {
			case "open":
				return response{
					actions: []kernel.Action{kernel.Compute(webOpenBurst.Scale(float64(e.Arg) / 10))},
					name:    fmt.Sprintf("open-%d", seq),
					due:     e.At + webOpenDeadline,
				}
			case "scroll":
				return response{
					actions: []kernel.Action{kernel.Compute(webScrollBurst.Scale(float64(e.Arg) / 10))},
					name:    fmt.Sprintf("scroll-%d", seq),
					due:     e.At + webScrollDeadline,
				}
			case "back":
				return response{
					actions: []kernel.Action{kernel.Compute(webBackBurst)},
					name:    fmt.Sprintf("back-%d", seq),
					due:     e.At + webScrollDeadline,
				}
			default:
				return response{} // unknown events are ignored
			}
		},
	}
	proc, err := k.Spawn(prog)
	if err != nil {
		return err
	}
	if err := installTrace(k, prog, proc, w.tr); err != nil {
		return err
	}
	_, err = k.Spawn(NewJavaPoll(w.Duration()))
	return err
}
