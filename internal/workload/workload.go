// Package workload provides synthetic versions of the paper's benchmark
// applications — MPEG, Web, Chess, and TalkingEditor — plus the Java
// runtime's 30 ms I/O polling loop and the idealized rectangular wave of
// Section 5.3. Each workload installs one or more processes into a
// simulated kernel, drives interactive ones from a deterministic replayable
// input trace, and records application deadlines into a metrics.Collector.
//
// The generators are calibrated to reproduce the demand *shapes* the paper
// reports: MPEG renders 15 frames/s with each frame taking just under 7
// scheduling quanta at 206.4 MHz and runs without missing frames at
// 132.7 MHz but not below; Chess alternates user think-time idleness with
// 100%-utilization planning; TalkingEditor is bursty during UI work and
// then computes long speech-synthesis runs; Web scrolls and renders against
// think time. All randomness flows from an explicit seed.
package workload

import (
	"errors"

	"clocksched/internal/kernel"
	"clocksched/internal/metrics"
	"clocksched/internal/sim"
	"clocksched/internal/trace"
)

// Workload is one installable benchmark application.
type Workload interface {
	// Name is the paper's name for the benchmark.
	Name() string
	// Duration is the natural session length (the paper's trace lengths:
	// 60 s MPEG, 190 s Web, 218 s Chess, 70 s TalkingEditor).
	Duration() sim.Duration
	// Install spawns the workload's processes into the kernel and
	// schedules its input-trace events on the kernel's engine. It may be
	// called once, before Kernel.Run.
	Install(k *kernel.Kernel) error
	// Metrics returns the deadline collector; valid after the run.
	Metrics() *metrics.Collector
}

// response is what an eventDriven handler produces for one input event: a
// sequence of actions and, optionally, a deadline to record once the
// actions have all completed (the user-visible response to the event).
type response struct {
	actions []kernel.Action
	// name/due describe the deadline; an empty name records nothing.
	name string
	due  sim.Time
}

// eventDriven is a process that sleeps until input events arrive (delivered
// by the trace installer through Wake) and runs a queue of actions in
// response to each, like the paper's traced interactive applications. When
// an event's actions drain, the completion time is recorded against the
// event's deadline.
type eventDriven struct {
	name    string
	col     *metrics.Collector
	handle  func(now sim.Time, e trace.Event) response
	pending []trace.Event
	actions []kernel.Action
	curName string
	curDue  sim.Time
	inEvent bool
	done    bool
}

// Next implements kernel.Program.
func (p *eventDriven) Next(now sim.Time) kernel.Action {
	for {
		if len(p.actions) > 0 {
			a := p.actions[0]
			p.actions = p.actions[1:]
			return a
		}
		if p.inEvent {
			p.inEvent = false
			if p.curName != "" && p.col != nil {
				p.col.Record(p.curName, p.curDue, now)
			}
		}
		if len(p.pending) == 0 {
			if p.done {
				return kernel.Exit()
			}
			return kernel.WaitEvent()
		}
		e := p.pending[0]
		p.pending = p.pending[1:]
		r := p.handle(now, e)
		p.actions = r.actions
		p.curName, p.curDue = r.name, r.due
		p.inEvent = true
	}
}

// Name implements kernel.Program.
func (p *eventDriven) Name() string { return p.name }

// deliver enqueues an event and wakes the process.
func (p *eventDriven) deliver(k *kernel.Kernel, proc *kernel.Process, e trace.Event) {
	p.pending = append(p.pending, e)
	k.Wake(proc)
}

// installTrace schedules every event of tr to be delivered to p at its
// recorded time, reproducing the paper's millisecond-accurate replay.
func installTrace(k *kernel.Kernel, p *eventDriven, proc *kernel.Process, tr *trace.Trace) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	for _, e := range tr.Events {
		e := e
		if _, err := k.Engine().At(e.At, func(sim.Time) {
			p.deliver(k, proc, e)
		}); err != nil {
			return err
		}
	}
	return nil
}

// errReinstall is returned when Install is called twice.
var errReinstall = errors.New("workload: already installed")
