package workload

import (
	"testing"

	"clocksched/internal/cpu"
)

func TestEstimateDemandKnownClasses(t *testing.T) {
	for _, class := range []string{"mpeg", "web", "chess", "editor", "rect", "feedback"} {
		d, ok := EstimateDemand(class)
		if !ok {
			t.Errorf("%s: no demand estimate", class)
			continue
		}
		if d.PerSecond.Zero() && d.WallFraction == 0 {
			t.Errorf("%s: zero demand", class)
		}
		// Utilization is not monotone step-to-step (the Table 3 memory-cost
		// jump between 162.2 and 176.9 MHz produces the Figure 9 plateau),
		// but the full ladder must still help: cycle work is strictly
		// cheaper at the top step than the bottom one.
		if !d.PerSecond.Zero() && d.Util(cpu.MaxStep) >= d.Util(cpu.MinStep) {
			t.Errorf("%s: util %v at max step not below %v at min step",
				class, d.Util(cpu.MaxStep), d.Util(cpu.MinStep))
		}
	}
	if _, ok := EstimateDemand("bogus"); ok {
		t.Error("unknown class produced an estimate")
	}
}

// The calibration boundaries the generators were built around: MPEG and the
// editor clear a 0.9 utilization bar at 132.7 MHz (step 5) but not below,
// matching the paper's reported playback boundaries, while the light and
// self-shedding classes clear it everywhere.
func TestEstimateDemandCalibration(t *testing.T) {
	const bar = 0.9
	step132 := cpu.StepForKHz(132_700)
	for _, class := range []string{"mpeg", "editor"} {
		d, _ := EstimateDemand(class)
		if u := d.Util(step132); u > bar {
			t.Errorf("%s: util %v at 132.7MHz exceeds %v", class, u, bar)
		}
		if u := d.Util(step132 - 1); u <= bar {
			t.Errorf("%s: util %v at 118MHz within %v — boundary lost", class, u, bar)
		}
	}
	for _, class := range []string{"web", "chess", "feedback"} {
		d, _ := EstimateDemand(class)
		if u := d.Util(cpu.MinStep); u > bar {
			t.Errorf("%s: util %v at 59MHz exceeds %v", class, u, bar)
		}
	}
}
