package fault

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNetPlanValidateAndEnabled(t *testing.T) {
	var nilPlan *NetPlan
	if nilPlan.Enabled() || nilPlan.Validate() != nil {
		t.Error("nil plan must validate and be disabled")
	}
	if (&NetPlan{}).Enabled() {
		t.Error("zero plan enabled")
	}
	if !(&NetPlan{RefuseProb: 0.1}).Enabled() {
		t.Error("refusing plan disabled")
	}
	bad := []NetPlan{
		{RefuseProb: -0.1},
		{LatencyProb: 1.5},
		{CutBodyProb: 2},
		{PartitionProb: -1},
		{LatencyMax: -time.Second},
		{PartitionRequests: -3},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad plan %d accepted: %+v", i, p)
		}
	}
	if _, err := NewNetInjector(&NetPlan{RefuseProb: 2}, 1); err == nil {
		t.Error("NewNetInjector accepted an invalid plan")
	}
}

func TestNetInjectorNilIsDisabled(t *testing.T) {
	in, err := NewNetInjector(&NetPlan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if in != nil {
		t.Fatal("zero plan built a live injector")
	}
	if in.Counts() != (NetCounts{}) {
		t.Error("nil injector has counts")
	}
	next := http.DefaultTransport
	if got := in.RoundTripper(next); got != next {
		t.Error("nil injector wrapped the transport")
	}
	if got := in.RoundTripper(nil); got != http.DefaultTransport {
		t.Error("nil injector with nil next must be the default transport")
	}
}

// roundTrips runs n GETs against a live server through the injector and
// reports per-request outcomes: "ok", "fault" (request error), or "cut"
// (body error mid-read).
func roundTrips(t *testing.T, in *NetInjector, n int) []string {
	t.Helper()
	body := strings.Repeat("x", 8192) // longer than the injector's cut range
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	defer srv.Close()
	client := &http.Client{Transport: in.RoundTripper(nil)}
	var out []string
	for i := 0; i < n; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			if !errors.Is(err, ErrNetFault) {
				t.Fatalf("request %d failed with a non-injected error: %v", i, err)
			}
			out = append(out, "fault")
			continue
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case err == nil && string(b) == body:
			out = append(out, "ok")
		case err != nil && errors.Is(err, ErrNetFault):
			if len(b) == 0 || len(b) >= len(body) {
				t.Fatalf("request %d cut outside the body: %d of %d bytes", i, len(b), len(body))
			}
			out = append(out, "cut")
		default:
			t.Fatalf("request %d: unexpected body outcome (%d bytes, err %v)", i, len(b), err)
		}
	}
	return out
}

func TestNetInjectorEveryFaultKindFires(t *testing.T) {
	plan := &NetPlan{
		RefuseProb:        0.2,
		LatencyProb:       0.2,
		LatencyMax:        time.Millisecond,
		CutBodyProb:       0.2,
		PartitionProb:     0.05,
		PartitionRequests: 3,
	}
	in, err := NewNetInjector(plan, 42)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := roundTrips(t, in, 200)
	c := in.Counts()
	if c.Refused == 0 || c.Delayed == 0 || c.Cut == 0 || c.Partitions == 0 || c.Dropped == 0 {
		t.Fatalf("not every fault kind fired in 200 requests: %v", c)
	}
	if c.Total() == 0 || c.String() == "" {
		t.Error("counts accessors broken")
	}
	faults := 0
	for _, o := range outcomes {
		if o != "ok" {
			faults++
		}
	}
	// Request-level failures observed by the client must equal the injector's
	// own tally of refusals, partition opens, drops, and cuts.
	if want := c.Refused + c.Partitions + c.Dropped + c.Cut; faults != want {
		t.Errorf("client saw %d faults, injector tallied %d (%v)", faults, want, c)
	}
}

func TestNetInjectorDeterministicUnderSeed(t *testing.T) {
	plan := &NetPlan{RefuseProb: 0.3, CutBodyProb: 0.2, PartitionProb: 0.05}
	run := func(seed uint64) ([]string, NetCounts) {
		in, err := NewNetInjector(plan, seed)
		if err != nil {
			t.Fatal(err)
		}
		return roundTrips(t, in, 100), in.Counts()
	}
	a, ca := run(7)
	b, cb := run(7)
	if ca != cb {
		t.Fatalf("same seed, different counts: %v vs %v", ca, cb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, request %d diverged: %s vs %s", i, a[i], b[i])
		}
	}
	_, cc := run(8)
	if ca == cc {
		t.Error("different seeds produced an identical fault schedule (suspicious)")
	}
}

func TestNetInjectorPartitionEpisode(t *testing.T) {
	// PartitionProb 1 opens an episode on the first request; every request
	// fails until the episode drains, then the next one immediately opens
	// another.
	in, err := NewNetInjector(&NetPlan{PartitionProb: 1, PartitionRequests: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	rt := in.RoundTripper(http.DefaultTransport)
	for i := 0; i < 20; i++ {
		req, _ := http.NewRequest("GET", "http://peer.invalid/", nil)
		if _, err := rt.RoundTrip(req); !errors.Is(err, ErrNetFault) {
			t.Fatalf("request %d not dropped: %v", i, err)
		}
	}
	c := in.Counts()
	if c.Partitions == 0 || c.Dropped == 0 || c.Partitions+c.Dropped != 20 {
		t.Fatalf("partition accounting off: %v", c)
	}
}
