// Package fault provides deterministic, seed-driven fault injection for the
// simulated Itsy. A Plan declares which hardware and kernel misbehaviours a
// run should suffer and at what rates; an Injector draws every fault
// decision from its own RNG stream, isolated from the workload's jitter
// stream, so that enabling or tuning faults never perturbs the rest of the
// simulation and every faulted run is bit-for-bit repeatable from its seed.
//
// The injectable faults mirror the ways the paper's measurement setup could
// really misbehave: the SA-1100's clock-change register write can fail or
// the PLL can take longer than its specified 200 µs to relock; the DAQ can
// drop or glitch shunt-resistor samples; and the kernel's 100 Hz timer can
// fire late or lose scheduler-log records to its limited log memory.
package fault

import (
	"fmt"

	"clocksched/internal/sim"
)

// Stream is the injector's RNG stream id under the run seed (the workload
// uses the unnumbered base stream).
const Stream = 0xFA017

// abortStreamBase numbers the cell-abort decision streams, one per retry
// attempt (abortStreamBase+attempt). Abort draws live on their own streams,
// apart from Stream, for two reasons: a run that survives must stay
// bit-identical whether or not aborts were armed, and a retried attempt
// must see an independent abort schedule — otherwise a deterministic
// injector would kill every retry at the same quantum forever and the
// retry budget could never help.
const abortStreamBase = 0x7AB007E1

// ErrCellAbort is the injected mid-run failure. It declares itself
// transient (Transient() == true), which is what tells the sweep's retry
// layer the cell is worth re-running.
var ErrCellAbort error = cellAbortError{}

// cellAbortError is comparable and stateless so errors.Is works naturally.
type cellAbortError struct{}

func (cellAbortError) Error() string   { return "fault: injected cell abort" }
func (cellAbortError) Transient() bool { return true }

// Plan declares the faults to inject into one run. The zero value injects
// nothing. Probabilities are per opportunity (per attempted clock change,
// per DAQ sample, per timer re-arm, per log record) in [0, 1].
type Plan struct {
	// ClockChangeFailProb is the probability that a requested clock-step
	// change silently fails: the clock stays at the old step, no PLL
	// stall occurs, and the policy only discovers the failure by seeing
	// the unchanged step at the next quantum.
	ClockChangeFailProb float64
	// SettleStallProb is the probability that a successful clock change
	// stalls the processor for an extended relock, adding a uniform extra
	// duration in (0, SettleStallMax] on top of the nominal 200 µs.
	SettleStallProb float64
	// SettleStallMax bounds the extra relock stall; zero selects 2 ms.
	SettleStallMax sim.Duration

	// SampleDropProb is the probability that one DAQ reading is lost. The
	// capture holds the previous reading (sample-and-hold), as the
	// paper's instrument does on a missed conversion.
	SampleDropProb float64
	// SampleGlitchProb is the probability that one DAQ reading is
	// corrupted by additive noise, uniform in ±SampleGlitchWatts, clipped
	// to the instrument's full scale.
	SampleGlitchProb float64
	// SampleGlitchWatts bounds the glitch amplitude; zero selects 0.5 W.
	SampleGlitchWatts float64

	// TimerJitterProb is the probability that one 100 Hz timer interrupt
	// is delivered late, by a uniform delay in (0, TimerJitterMax]. The
	// following interrupts re-align to the stretched schedule, so jitter
	// accumulates the way a flaky interrupt controller's would.
	TimerJitterProb float64
	// TimerJitterMax bounds the delay; zero selects 2 ms.
	TimerJitterMax sim.Duration

	// TraceDropProb is the probability that one scheduler-log record is
	// lost before being written.
	TraceDropProb float64
	// TraceDelayProb is the probability that one scheduler-log record is
	// timestamped late by a uniform delay in (0, TraceDelayMax],
	// modelling deferred log writes; analysis code must tolerate the
	// resulting non-monotonic log.
	TraceDelayProb float64
	// TraceDelayMax bounds the timestamp delay; zero selects 5 ms.
	TraceDelayMax sim.Duration

	// CellAbortProb is the per-quantum probability that the whole run is
	// killed mid-flight with ErrCellAbort — the crashed-process /
	// lost-worker failure mode, as opposed to the degraded-measurement
	// faults above. The decision draws from a per-attempt stream so a
	// sweep's retry of an aborted cell faces fresh luck, while runs that
	// complete are unaffected by arming it.
	CellAbortProb float64
}

// Defaults for the bound fields when the matching probability is set.
const (
	DefaultSettleStallMax = 2 * sim.Millisecond
	DefaultTimerJitterMax = 2 * sim.Millisecond
	DefaultTraceDelayMax  = 5 * sim.Millisecond
	DefaultGlitchWatts    = 0.5
)

// Enabled reports whether the plan injects anything at all.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	return p.ClockChangeFailProb > 0 || p.SettleStallProb > 0 ||
		p.SampleDropProb > 0 || p.SampleGlitchProb > 0 ||
		p.TimerJitterProb > 0 ||
		p.TraceDropProb > 0 || p.TraceDelayProb > 0 ||
		p.CellAbortProb > 0
}

// Validate checks every rate and bound is in range.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	probs := []struct {
		name string
		v    float64
	}{
		{"ClockChangeFailProb", p.ClockChangeFailProb},
		{"SettleStallProb", p.SettleStallProb},
		{"SampleDropProb", p.SampleDropProb},
		{"SampleGlitchProb", p.SampleGlitchProb},
		{"TimerJitterProb", p.TimerJitterProb},
		{"TraceDropProb", p.TraceDropProb},
		{"TraceDelayProb", p.TraceDelayProb},
		{"CellAbortProb", p.CellAbortProb},
	}
	for _, pr := range probs {
		if pr.v < 0 || pr.v > 1 || pr.v != pr.v {
			return fmt.Errorf("fault: %s = %v out of [0, 1]", pr.name, pr.v)
		}
	}
	if p.SettleStallMax < 0 {
		return fmt.Errorf("fault: negative SettleStallMax %v", p.SettleStallMax)
	}
	if p.TimerJitterMax < 0 {
		return fmt.Errorf("fault: negative TimerJitterMax %v", p.TimerJitterMax)
	}
	if p.TraceDelayMax < 0 {
		return fmt.Errorf("fault: negative TraceDelayMax %v", p.TraceDelayMax)
	}
	if p.SampleGlitchWatts < 0 || p.SampleGlitchWatts != p.SampleGlitchWatts {
		return fmt.Errorf("fault: bad SampleGlitchWatts %v", p.SampleGlitchWatts)
	}
	return nil
}

// withDefaults fills the zero bound fields.
func (p Plan) withDefaults() Plan {
	if p.SettleStallMax == 0 {
		p.SettleStallMax = DefaultSettleStallMax
	}
	if p.TimerJitterMax == 0 {
		p.TimerJitterMax = DefaultTimerJitterMax
	}
	if p.TraceDelayMax == 0 {
		p.TraceDelayMax = DefaultTraceDelayMax
	}
	if p.SampleGlitchWatts == 0 {
		p.SampleGlitchWatts = DefaultGlitchWatts
	}
	return p
}

// Counts tallies what an injector actually did, for run diagnostics.
type Counts struct {
	ClockChangeFails int
	SettleStalls     int
	ExtraStallTime   sim.Duration
	SamplesDropped   int
	SamplesGlitched  int
	TimerJitters     int
	TimerJitterTime  sim.Duration
	TraceDrops       int
	TraceDelays      int
	CellAborts       int
}

// Total returns the number of injected faults of every kind.
func (c Counts) Total() int {
	return c.ClockChangeFails + c.SettleStalls +
		c.SamplesDropped + c.SamplesGlitched +
		c.TimerJitters + c.TraceDrops + c.TraceDelays +
		c.CellAborts
}

// String summarizes the tally compactly.
func (c Counts) String() string {
	return fmt.Sprintf(
		"clock fails %d, settle stalls %d (+%v), samples dropped %d glitched %d, "+
			"timer jitters %d (+%v), trace drops %d delays %d, cell aborts %d",
		c.ClockChangeFails, c.SettleStalls, c.ExtraStallTime,
		c.SamplesDropped, c.SamplesGlitched,
		c.TimerJitters, c.TimerJitterTime, c.TraceDrops, c.TraceDelays,
		c.CellAborts)
}

// Injector executes a Plan. Every decision draws from the injector's own
// RNG stream, derived from the run seed on the dedicated fault Stream, so
// two runs with the same seed and plan inject the same faults at the same
// opportunities. All methods are nil-safe: a nil *Injector injects nothing
// and draws nothing, which is what keeps the no-faults configuration
// bit-identical to a build without the fault layer.
type Injector struct {
	plan     Plan
	rng      *sim.RNG
	abortRNG *sim.RNG
	counts   Counts
}

// NewInjector builds an injector for the plan under the given run seed. A
// nil or all-zero plan yields a nil injector (inject nothing), so callers
// can thread the result unconditionally. Equivalent to NewInjectorAttempt
// with attempt 0.
func NewInjector(p *Plan, seed uint64) (*Injector, error) {
	return NewInjectorAttempt(p, seed, 0)
}

// NewInjectorAttempt builds an injector for a numbered retry attempt of the
// same cell. All measurement-degrading faults stay identical across
// attempts (same seed, same Stream), preserving bit-identical replays; only
// the cell-abort schedule is re-drawn per attempt, so a retried cell can
// survive where the previous attempt died.
func NewInjectorAttempt(p *Plan, seed uint64, attempt int) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if attempt < 0 {
		return nil, fmt.Errorf("fault: negative attempt %d", attempt)
	}
	if !p.Enabled() {
		return nil, nil
	}
	return &Injector{
		plan:     p.withDefaults(),
		rng:      sim.NewRNGStream(seed, Stream),
		abortRNG: sim.NewRNGStream(seed, abortStreamBase+uint64(attempt)),
	}, nil
}

// Counts returns the tally of injected faults so far.
func (in *Injector) Counts() Counts {
	if in == nil {
		return Counts{}
	}
	return in.counts
}

// Plan returns the effective plan (bounds defaulted); the zero Plan for a
// nil injector.
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// ClockChangeFails decides whether one requested clock-step change
// silently fails.
func (in *Injector) ClockChangeFails() bool {
	if in == nil || in.plan.ClockChangeFailProb <= 0 {
		return false
	}
	if !in.rng.Bool(in.plan.ClockChangeFailProb) {
		return false
	}
	in.counts.ClockChangeFails++
	return true
}

// ExtraSettle returns the extra PLL relock stall for one successful clock
// change (zero for no fault).
func (in *Injector) ExtraSettle() sim.Duration {
	if in == nil || in.plan.SettleStallProb <= 0 {
		return 0
	}
	if !in.rng.Bool(in.plan.SettleStallProb) {
		return 0
	}
	d := in.rng.Duration(1, in.plan.SettleStallMax)
	in.counts.SettleStalls++
	in.counts.ExtraStallTime += d
	return d
}

// DropSample decides whether one DAQ reading is lost.
func (in *Injector) DropSample() bool {
	if in == nil || in.plan.SampleDropProb <= 0 {
		return false
	}
	if !in.rng.Bool(in.plan.SampleDropProb) {
		return false
	}
	in.counts.SamplesDropped++
	return true
}

// GlitchWatts returns the additive noise for one DAQ reading and whether a
// glitch occurred at all.
func (in *Injector) GlitchWatts() (float64, bool) {
	if in == nil || in.plan.SampleGlitchProb <= 0 {
		return 0, false
	}
	if !in.rng.Bool(in.plan.SampleGlitchProb) {
		return 0, false
	}
	in.counts.SamplesGlitched++
	return in.plan.SampleGlitchWatts * (2*in.rng.Float64() - 1), true
}

// TimerJitter returns the extra delay for one timer interrupt delivery
// (zero for an on-time tick).
func (in *Injector) TimerJitter() sim.Duration {
	if in == nil || in.plan.TimerJitterProb <= 0 {
		return 0
	}
	if !in.rng.Bool(in.plan.TimerJitterProb) {
		return 0
	}
	d := in.rng.Duration(1, in.plan.TimerJitterMax)
	in.counts.TimerJitters++
	in.counts.TimerJitterTime += d
	return d
}

// DropTraceEvent decides whether one scheduler-log record is lost.
func (in *Injector) DropTraceEvent() bool {
	if in == nil || in.plan.TraceDropProb <= 0 {
		return false
	}
	if !in.rng.Bool(in.plan.TraceDropProb) {
		return false
	}
	in.counts.TraceDrops++
	return true
}

// RunAborts decides whether the run dies at this quantum boundary with
// ErrCellAbort. The draw comes from the attempt-numbered abort stream, so
// it neither perturbs the other fault decisions nor repeats across retry
// attempts.
func (in *Injector) RunAborts() bool {
	if in == nil || in.plan.CellAbortProb <= 0 {
		return false
	}
	if !in.abortRNG.Bool(in.plan.CellAbortProb) {
		return false
	}
	in.counts.CellAborts++
	return true
}

// TraceDelay returns the timestamp delay for one scheduler-log record
// (zero for an on-time write).
func (in *Injector) TraceDelay() sim.Duration {
	if in == nil || in.plan.TraceDelayProb <= 0 {
		return 0
	}
	if !in.rng.Bool(in.plan.TraceDelayProb) {
		return 0
	}
	d := in.rng.Duration(1, in.plan.TraceDelayMax)
	in.counts.TraceDelays++
	return d
}
