package fault

// Injectable network faults. A NetPlan declares how often the HTTP
// round-trips between a sweep-fabric coordinator and its peers misbehave;
// a NetInjector draws every decision from its own seeded RNG stream —
// exactly like the simulation-fault Injector and the DiskInjector — so a
// chaos run's fault schedule is repeatable from its seed.
//
// The injected failures are the ways a real network dies under a
// coordinator: the peer's port refusing connections, a slow link delaying
// a request, a response body cut mid-stream (proxy timeout, peer crash
// mid-send), and a partition episode that blackholes a run of consecutive
// requests. Every injected error wraps ErrNetFault so the layers above
// can distinguish injected damage from programming bugs, and every
// decision is tallied in NetCounts.
//
// A nil *NetInjector is the disabled layer: RoundTripper returns the next
// transport unchanged, which is what lets a client thread an injector
// unconditionally.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"clocksched/internal/sim"
)

// NetStream is the network injector's RNG stream id under its seed,
// distinct from the simulation and disk streams so arming network faults
// never perturbs either schedule.
const NetStream = 0x7E7FA017

// ErrNetFault is wrapped by every injected network failure, so callers
// can tell injected damage from real outages with errors.Is.
var ErrNetFault = errors.New("fault: injected network fault")

// NetPlan declares the network faults to inject. The zero value injects
// nothing. Probabilities are per opportunity (per request, per response
// body) in [0, 1].
type NetPlan struct {
	// RefuseProb is the probability that one request fails before any
	// bytes move — a connection refused.
	RefuseProb float64
	// LatencyProb is the probability that one request is delayed by a
	// seeded duration in (0, LatencyMax] before being forwarded.
	LatencyProb float64
	// LatencyMax bounds an injected delay; zero selects 50ms.
	LatencyMax time.Duration
	// CutBodyProb is the probability that one successful response's body
	// is cut after a seeded prefix — the reader sees some bytes, then an
	// error instead of EOF.
	CutBodyProb float64
	// PartitionProb is the probability that one request starts a
	// partition episode: it and the next seeded count of requests all
	// fail outright, which is what a routing blackhole looks like from
	// one endpoint.
	PartitionProb float64
	// PartitionRequests bounds an episode's length in requests; zero
	// selects 8.
	PartitionRequests int
}

// Enabled reports whether the plan injects anything at all.
func (p *NetPlan) Enabled() bool {
	if p == nil {
		return false
	}
	return p.RefuseProb > 0 || p.LatencyProb > 0 || p.CutBodyProb > 0 || p.PartitionProb > 0
}

// Validate checks every rate is in range.
func (p *NetPlan) Validate() error {
	if p == nil {
		return nil
	}
	probs := []struct {
		name string
		v    float64
	}{
		{"RefuseProb", p.RefuseProb},
		{"LatencyProb", p.LatencyProb},
		{"CutBodyProb", p.CutBodyProb},
		{"PartitionProb", p.PartitionProb},
	}
	for _, pr := range probs {
		if pr.v < 0 || pr.v > 1 || pr.v != pr.v {
			return fmt.Errorf("fault: %s = %v out of [0, 1]", pr.name, pr.v)
		}
	}
	if p.LatencyMax < 0 {
		return fmt.Errorf("fault: negative LatencyMax %v", p.LatencyMax)
	}
	if p.PartitionRequests < 0 {
		return fmt.Errorf("fault: negative PartitionRequests %d", p.PartitionRequests)
	}
	return nil
}

// NetCounts tallies what a network injector actually did.
type NetCounts struct {
	Refused    int // connection-refused failures
	Delayed    int // requests delayed
	Cut        int // response bodies cut mid-stream
	Partitions int // partition episodes started
	Dropped    int // requests failed inside a partition episode
}

// Total returns the number of injected request-level faults of every kind.
func (c NetCounts) Total() int {
	return c.Refused + c.Delayed + c.Cut + c.Partitions + c.Dropped
}

// String summarizes the tally compactly.
func (c NetCounts) String() string {
	return fmt.Sprintf("refused %d, delayed %d, cut bodies %d, partitions %d, dropped %d",
		c.Refused, c.Delayed, c.Cut, c.Partitions, c.Dropped)
}

// NetInjector executes a NetPlan over an http.RoundTripper. It is safe
// for concurrent use — a coordinator's per-peer clients may share one
// injector. A nil *NetInjector injects nothing.
type NetInjector struct {
	mu            sync.Mutex
	plan          NetPlan
	rng           *sim.RNG
	counts        NetCounts
	partitionLeft int // requests remaining in the current episode
}

// NewNetInjector builds an injector for the plan under the given seed. A
// nil or all-zero plan yields a nil injector (real transport), so callers
// can thread the result unconditionally.
func NewNetInjector(p *NetPlan, seed uint64) (*NetInjector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.Enabled() {
		return nil, nil
	}
	return &NetInjector{
		plan: *p,
		rng:  sim.NewRNGStream(seed, NetStream),
	}, nil
}

// Counts returns the tally of injected network faults so far.
func (in *NetInjector) Counts() NetCounts {
	if in == nil {
		return NetCounts{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// RoundTripper wraps next with the injector's faults; a nil next selects
// http.DefaultTransport, and a nil injector returns next unchanged (or
// the default transport), so the seam costs nothing when faults are off.
func (in *NetInjector) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	if in == nil {
		return next
	}
	return &faultTransport{in: in, next: next}
}

// faultTransport is the RoundTripper the injector hands out.
type faultTransport struct {
	in   *NetInjector
	next http.RoundTripper
}

// decide draws this request's fate under the injector's lock. Concurrent
// requests serialize their draws, so the schedule is a deterministic
// function of the seed and the arrival order.
func (in *NetInjector) decide(host string) (fail error, delay time.Duration, cutAt int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.partitionLeft > 0 {
		in.partitionLeft--
		in.counts.Dropped++
		return fmt.Errorf("%w: partitioned from %s", ErrNetFault, host), 0, -1
	}
	if in.rng.Bool(in.plan.PartitionProb) {
		in.counts.Partitions++
		n := in.plan.PartitionRequests
		if n <= 0 {
			n = 8
		}
		in.partitionLeft = int(in.rng.Int63n(int64(n))) + 1
		return fmt.Errorf("%w: partition opened toward %s", ErrNetFault, host), 0, -1
	}
	if in.rng.Bool(in.plan.RefuseProb) {
		in.counts.Refused++
		return fmt.Errorf("%w: connection refused by %s", ErrNetFault, host), 0, -1
	}
	if in.rng.Bool(in.plan.LatencyProb) {
		in.counts.Delayed++
		maxD := in.plan.LatencyMax
		if maxD <= 0 {
			maxD = 50 * time.Millisecond
		}
		delay = time.Duration(in.rng.Int63n(int64(maxD))) + 1
	}
	cutAt = -1
	if in.rng.Bool(in.plan.CutBodyProb) {
		in.counts.Cut++
		// Cut after a seeded short prefix: small enough to hit even
		// modest response bodies, never zero so headers-only consumers
		// survive.
		cutAt = in.rng.Int63n(4096) + 1
	}
	return nil, delay, cutAt
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	fail, delay, cutAt := t.in.decide(req.URL.Host)
	if fail != nil {
		return nil, fail
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	resp, err := t.next.RoundTrip(req)
	if err != nil || cutAt < 0 {
		return resp, err
	}
	resp.Body = &cutBody{rc: resp.Body, remain: cutAt}
	return resp, nil
}

// cutBody serves a prefix of the underlying body, then fails — what a
// reader sees when the sender dies mid-response.
type cutBody struct {
	rc     io.ReadCloser
	remain int64
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, fmt.Errorf("%w: response body cut mid-stream", ErrNetFault)
	}
	if int64(len(p)) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= int64(n)
	if err == io.EOF && b.remain > 0 {
		// The body ended before the cut point: pass the clean EOF through.
		return n, err
	}
	if b.remain <= 0 && err == nil {
		err = fmt.Errorf("%w: response body cut mid-stream", ErrNetFault)
	}
	return n, err
}

func (b *cutBody) Close() error { return b.rc.Close() }
