package fault

// Injectable disk faults. A DiskPlan declares how often the durable-write
// syscalls underneath the journal, the job manifest, the result files, and
// the cell cache misbehave; a DiskInjector draws every decision from its
// own seeded RNG stream — exactly like the simulation-fault Injector — so a
// chaos run's fault schedule is bit-for-bit repeatable from its seed.
//
// The injected failures are the ways a real disk dies under a long-lived
// daemon: fsync returning EIO, a write persisting only a prefix before
// failing (torn page / interrupted syscall), the volume running out of
// space, and a rename "tearing" on a filesystem whose rename is not atomic
// across a crash — the destination is left holding a prefix of the new
// content. Every injected error wraps ErrDiskFault so the layers above can
// distinguish injected damage from programming bugs, and every decision is
// tallied in DiskCounts.
//
// A nil *DiskInjector is the disabled layer: every method performs the real
// operation with nothing drawn and nothing counted, which is what lets the
// journal, cache, and service thread an injector unconditionally.

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"syscall"

	"clocksched/internal/sim"
)

// DiskStream is the disk injector's RNG stream id under its seed, distinct
// from the simulation-fault Stream so arming disk faults never perturbs a
// run's simulated fault schedule.
const DiskStream = 0xD15CFA17

// ErrDiskFault is wrapped by every injected disk failure, so callers can
// tell injected damage from real bugs with errors.Is.
var ErrDiskFault = errors.New("fault: injected disk fault")

// DiskPlan declares the disk faults to inject. The zero value injects
// nothing. Probabilities are per opportunity (per write, per fsync, per
// rename) in [0, 1].
type DiskPlan struct {
	// WriteErrProb is the probability that one write fails with EIO before
	// persisting anything.
	WriteErrProb float64
	// ShortWriteProb is the probability that one write persists only a
	// seeded prefix of its payload and then fails — the torn-page /
	// interrupted-syscall failure mode the journal's CRC framing exists to
	// catch.
	ShortWriteProb float64
	// SyncErrProb is the probability that one fsync fails with EIO. The
	// data may or may not be durable; the caller must assume it is not.
	SyncErrProb float64
	// ENOSPCProb is the probability that one write fails with ENOSPC
	// before persisting anything — the full-disk failure mode a bounded
	// retention policy exists to prevent.
	ENOSPCProb float64
	// TornRenameProb is the probability that one rename fails after
	// leaving the destination holding a seeded-length prefix of the source
	// — the crash-mid-rename outcome on a filesystem without atomic
	// rename. The source file is left in place, as a real interrupted
	// rename would.
	TornRenameProb float64
}

// Enabled reports whether the plan injects anything at all.
func (p *DiskPlan) Enabled() bool {
	if p == nil {
		return false
	}
	return p.WriteErrProb > 0 || p.ShortWriteProb > 0 || p.SyncErrProb > 0 ||
		p.ENOSPCProb > 0 || p.TornRenameProb > 0
}

// Validate checks every rate is in range.
func (p *DiskPlan) Validate() error {
	if p == nil {
		return nil
	}
	probs := []struct {
		name string
		v    float64
	}{
		{"WriteErrProb", p.WriteErrProb},
		{"ShortWriteProb", p.ShortWriteProb},
		{"SyncErrProb", p.SyncErrProb},
		{"ENOSPCProb", p.ENOSPCProb},
		{"TornRenameProb", p.TornRenameProb},
	}
	for _, pr := range probs {
		if pr.v < 0 || pr.v > 1 || pr.v != pr.v {
			return fmt.Errorf("fault: %s = %v out of [0, 1]", pr.name, pr.v)
		}
	}
	return nil
}

// DiskCounts tallies what a disk injector actually did.
type DiskCounts struct {
	WriteErrs   int
	ShortWrites int
	SyncErrs    int
	ENOSPCs     int
	TornRenames int
}

// Total returns the number of injected disk faults of every kind.
func (c DiskCounts) Total() int {
	return c.WriteErrs + c.ShortWrites + c.SyncErrs + c.ENOSPCs + c.TornRenames
}

// String summarizes the tally compactly.
func (c DiskCounts) String() string {
	return fmt.Sprintf("write errs %d, short writes %d, sync errs %d, enospc %d, torn renames %d",
		c.WriteErrs, c.ShortWrites, c.SyncErrs, c.ENOSPCs, c.TornRenames)
}

// DiskInjector executes a DiskPlan over the real filesystem. It implements
// the write/sync/rename surface the journal, cache, and service route
// their durable writes through, and is safe for concurrent use — the
// daemon's workers share one injector. A nil *DiskInjector performs every
// operation for real.
type DiskInjector struct {
	mu     sync.Mutex
	plan   DiskPlan
	rng    *sim.RNG
	counts DiskCounts
}

// NewDiskInjector builds an injector for the plan under the given seed. A
// nil or all-zero plan yields a nil injector (real filesystem), so callers
// can thread the result unconditionally.
func NewDiskInjector(p *DiskPlan, seed uint64) (*DiskInjector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.Enabled() {
		return nil, nil
	}
	return &DiskInjector{
		plan: *p,
		rng:  sim.NewRNGStream(seed, DiskStream),
	}, nil
}

// Counts returns the tally of injected disk faults so far.
func (in *DiskInjector) Counts() DiskCounts {
	if in == nil {
		return DiskCounts{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// Write writes p to f, possibly injecting an outright EIO, an ENOSPC, or a
// short write that persists only a prefix before failing.
func (in *DiskInjector) Write(f *os.File, p []byte) (int, error) {
	if in == nil {
		return f.Write(p)
	}
	in.mu.Lock()
	switch {
	case in.rng.Bool(in.plan.WriteErrProb):
		in.counts.WriteErrs++
		in.mu.Unlock()
		return 0, fmt.Errorf("%w: write %s: %v", ErrDiskFault, f.Name(), syscall.EIO)
	case in.rng.Bool(in.plan.ENOSPCProb):
		in.counts.ENOSPCs++
		in.mu.Unlock()
		return 0, fmt.Errorf("%w: write %s: %v", ErrDiskFault, f.Name(), syscall.ENOSPC)
	case len(p) > 0 && in.rng.Bool(in.plan.ShortWriteProb):
		in.counts.ShortWrites++
		n := int(in.rng.Int63n(int64(len(p)))) // persist [0, len) bytes
		in.mu.Unlock()
		if n > 0 {
			if wn, err := f.Write(p[:n]); err != nil {
				return wn, err
			}
		}
		return n, fmt.Errorf("%w: short write %s: %d of %d bytes", ErrDiskFault, f.Name(), n, len(p))
	}
	in.mu.Unlock()
	return f.Write(p)
}

// Sync fsyncs f, possibly injecting an EIO. After an injected sync error
// the caller must assume nothing since the last successful sync is durable.
func (in *DiskInjector) Sync(f *os.File) error {
	if in == nil {
		return f.Sync()
	}
	in.mu.Lock()
	if in.rng.Bool(in.plan.SyncErrProb) {
		in.counts.SyncErrs++
		in.mu.Unlock()
		return fmt.Errorf("%w: fsync %s: %v", ErrDiskFault, f.Name(), syscall.EIO)
	}
	in.mu.Unlock()
	return f.Sync()
}

// Rename renames oldpath to newpath, possibly injecting a torn rename: the
// destination is left holding a seeded-length prefix of the source's
// content, the source survives, and an error is returned — what a crash
// mid-rename leaves on a filesystem without atomic rename. Layers above
// must treat the destination as suspect after any rename error; the
// journal's CRC framing and the cache's quarantine both do.
func (in *DiskInjector) Rename(oldpath, newpath string) error {
	if in == nil {
		return os.Rename(oldpath, newpath)
	}
	in.mu.Lock()
	if !in.rng.Bool(in.plan.TornRenameProb) {
		in.mu.Unlock()
		return os.Rename(oldpath, newpath)
	}
	in.counts.TornRenames++
	var cut int64 = -1
	if b, err := os.ReadFile(oldpath); err == nil && len(b) > 0 {
		cut = in.rng.Int63n(int64(len(b)))
		in.mu.Unlock()
		// Best-effort tear: a failure to plant the damage still fails the
		// rename, which is damage enough.
		_ = os.WriteFile(newpath, b[:cut], 0o644)
	} else {
		in.mu.Unlock()
	}
	return fmt.Errorf("%w: torn rename %s -> %s (%d bytes landed)", ErrDiskFault, oldpath, newpath, cut)
}
