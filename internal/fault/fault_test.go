package fault

import (
	"math"
	"testing"

	"clocksched/internal/sim"
)

func TestNilAndZeroPlansAreInert(t *testing.T) {
	for _, p := range []*Plan{nil, {}} {
		in, err := NewInjector(p, 42)
		if err != nil {
			t.Fatal(err)
		}
		if in != nil {
			t.Fatalf("NewInjector(%v) = %v, want nil injector", p, in)
		}
	}
	// Every hook must be nil-safe and inject nothing.
	var in *Injector
	if in.ClockChangeFails() || in.DropSample() || in.DropTraceEvent() {
		t.Error("nil injector injected a fault")
	}
	if d := in.ExtraSettle(); d != 0 {
		t.Errorf("nil ExtraSettle = %v", d)
	}
	if d := in.TimerJitter(); d != 0 {
		t.Errorf("nil TimerJitter = %v", d)
	}
	if d := in.TraceDelay(); d != 0 {
		t.Errorf("nil TraceDelay = %v", d)
	}
	if w, ok := in.GlitchWatts(); ok || w != 0 {
		t.Errorf("nil GlitchWatts = %v, %v", w, ok)
	}
	if c := in.Counts(); c != (Counts{}) {
		t.Errorf("nil Counts = %+v", c)
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{ClockChangeFailProb: -0.1},
		{ClockChangeFailProb: 1.5},
		{SampleDropProb: math.NaN()},
		{SettleStallProb: 0.5, SettleStallMax: -sim.Millisecond},
		{TimerJitterProb: 0.5, TimerJitterMax: -1},
		{TraceDelayProb: 0.5, TraceDelayMax: -1},
		{SampleGlitchProb: 0.5, SampleGlitchWatts: -1},
		{SampleGlitchProb: 0.5, SampleGlitchWatts: math.NaN()},
	}
	for i, p := range bad {
		p := p
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d validated: %+v", i, p)
		}
		if _, err := NewInjector(&p, 1); err == nil {
			t.Errorf("NewInjector accepted bad plan %d", i)
		}
	}
	good := Plan{ClockChangeFailProb: 0.01, SettleStallProb: 1, TimerJitterProb: 0.3}
	if err := good.Validate(); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
}

// drive exercises every hook a fixed number of times and returns the tally.
func drive(t *testing.T, in *Injector, n int) (Counts, []sim.Duration) {
	t.Helper()
	var durs []sim.Duration
	for i := 0; i < n; i++ {
		in.ClockChangeFails()
		durs = append(durs, in.ExtraSettle(), in.TimerJitter(), in.TraceDelay())
		in.DropSample()
		if w, ok := in.GlitchWatts(); ok {
			durs = append(durs, sim.Duration(math.Float64bits(w)&0xffff))
		}
		in.DropTraceEvent()
	}
	return in.Counts(), durs
}

func TestInjectorDeterministicPerSeed(t *testing.T) {
	plan := &Plan{
		ClockChangeFailProb: 0.1,
		SettleStallProb:     0.2,
		SampleDropProb:      0.1,
		SampleGlitchProb:    0.1,
		TimerJitterProb:     0.3,
		TraceDropProb:       0.2,
		TraceDelayProb:      0.2,
	}
	mk := func(seed uint64) *Injector {
		in, err := NewInjector(plan, seed)
		if err != nil {
			t.Fatal(err)
		}
		if in == nil {
			t.Fatal("enabled plan produced nil injector")
		}
		return in
	}
	c1, d1 := drive(t, mk(7), 500)
	c2, d2 := drive(t, mk(7), 500)
	if c1 != c2 {
		t.Fatalf("same seed, different counts:\n%+v\n%+v", c1, c2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("same seed, different draw %d: %v vs %v", i, d1[i], d2[i])
		}
	}
	if c1.Total() == 0 {
		t.Fatal("plan with every rate set injected nothing in 500 rounds")
	}
	c3, _ := drive(t, mk(8), 500)
	if c1 == c3 {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestInjectorRespectsBounds(t *testing.T) {
	plan := &Plan{
		SettleStallProb: 1,
		SettleStallMax:  700 * sim.Microsecond,
		TimerJitterProb: 1,
		TimerJitterMax:  300 * sim.Microsecond,
		TraceDelayProb:  1,
		TraceDelayMax:   sim.Millisecond,
	}
	in, err := NewInjector(plan, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if d := in.ExtraSettle(); d <= 0 || d > plan.SettleStallMax {
			t.Fatalf("ExtraSettle = %v outside (0, %v]", d, plan.SettleStallMax)
		}
		if d := in.TimerJitter(); d <= 0 || d > plan.TimerJitterMax {
			t.Fatalf("TimerJitter = %v outside (0, %v]", d, plan.TimerJitterMax)
		}
		if d := in.TraceDelay(); d <= 0 || d > plan.TraceDelayMax {
			t.Fatalf("TraceDelay = %v outside (0, %v]", d, plan.TraceDelayMax)
		}
	}
	c := in.Counts()
	if c.SettleStalls != 1000 || c.TimerJitters != 1000 || c.TraceDelays != 1000 {
		t.Errorf("probability-1 faults missed opportunities: %+v", c)
	}
}

func TestGlitchAmplitudeBounded(t *testing.T) {
	plan := &Plan{SampleGlitchProb: 1, SampleGlitchWatts: 0.25}
	in, err := NewInjector(plan, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		w, ok := in.GlitchWatts()
		if !ok {
			t.Fatal("probability-1 glitch missed")
		}
		if w < -0.25 || w > 0.25 {
			t.Fatalf("glitch %v outside ±0.25 W", w)
		}
	}
}

func TestDefaultsFilled(t *testing.T) {
	in, err := NewInjector(&Plan{SettleStallProb: 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := in.Plan()
	if p.SettleStallMax != DefaultSettleStallMax ||
		p.TimerJitterMax != DefaultTimerJitterMax ||
		p.TraceDelayMax != DefaultTraceDelayMax ||
		p.SampleGlitchWatts != DefaultGlitchWatts {
		t.Errorf("defaults not filled: %+v", p)
	}
}
