package fault

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// tempFile creates a writable file for injector calls.
func tempFile(t *testing.T) *os.File {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "faultfs-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestDiskPlanValidate(t *testing.T) {
	good := &DiskPlan{WriteErrProb: 0.5, TornRenameProb: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if !good.Enabled() {
		t.Error("non-zero plan reported disabled")
	}
	var nilPlan *DiskPlan
	if err := nilPlan.Validate(); err != nil || nilPlan.Enabled() {
		t.Errorf("nil plan: err %v, enabled %v", err, nilPlan.Enabled())
	}
	for _, bad := range []DiskPlan{
		{WriteErrProb: -0.1}, {ShortWriteProb: 1.5}, {SyncErrProb: 2},
		{ENOSPCProb: -1}, {TornRenameProb: 1.01},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("plan %+v validated", bad)
		}
	}
}

// TestNilInjectorIsRealFS pins the disabled layer: a nil or zero plan
// yields a nil injector whose methods perform real operations — what lets
// every caller thread the injector unconditionally.
func TestNilInjectorIsRealFS(t *testing.T) {
	for _, p := range []*DiskPlan{nil, {}} {
		in, err := NewDiskInjector(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if in != nil {
			t.Fatalf("plan %+v produced a live injector", p)
		}
	}
	var in *DiskInjector
	f := tempFile(t)
	if n, err := in.Write(f, []byte("hello")); n != 5 || err != nil {
		t.Fatalf("nil Write: %d, %v", n, err)
	}
	if err := in.Sync(f); err != nil {
		t.Fatalf("nil Sync: %v", err)
	}
	dst := f.Name() + ".moved"
	if err := in.Rename(f.Name(), dst); err != nil {
		t.Fatalf("nil Rename: %v", err)
	}
	if b, err := os.ReadFile(dst); err != nil || string(b) != "hello" {
		t.Fatalf("renamed content %q, %v", b, err)
	}
	if in.Counts().Total() != 0 {
		t.Error("nil injector counted faults")
	}
}

// TestDeterministicSchedule pins the seeding contract: the same plan and
// seed produce the same fault schedule over the same operation sequence.
func TestDeterministicSchedule(t *testing.T) {
	plan := &DiskPlan{WriteErrProb: 0.3, SyncErrProb: 0.3, ENOSPCProb: 0.1}
	run := func(seed uint64) []bool {
		in, err := NewDiskInjector(plan, seed)
		if err != nil {
			t.Fatal(err)
		}
		f := tempFile(t)
		var outcomes []bool
		for i := 0; i < 200; i++ {
			_, werr := in.Write(f, []byte("x"))
			outcomes = append(outcomes, werr != nil, in.Sync(f) != nil)
		}
		return outcomes
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d", i)
		}
	}
	diff := false
	for i, v := range run(43) {
		if v != a[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("seeds 42 and 43 produced identical schedules")
	}
}

// TestInjectedErrorsWrapSentinel checks every failure mode is
// distinguishable from a real bug via errors.Is, carries the right errno,
// and is tallied.
func TestInjectedErrorsWrapSentinel(t *testing.T) {
	cases := []struct {
		name  string
		plan  DiskPlan
		errno error
		count func(DiskCounts) int
	}{
		{"write", DiskPlan{WriteErrProb: 1}, syscall.EIO, func(c DiskCounts) int { return c.WriteErrs }},
		{"enospc", DiskPlan{ENOSPCProb: 1}, syscall.ENOSPC, func(c DiskCounts) int { return c.ENOSPCs }},
		{"sync", DiskPlan{SyncErrProb: 1}, syscall.EIO, func(c DiskCounts) int { return c.SyncErrs }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, err := NewDiskInjector(&tc.plan, 7)
			if err != nil {
				t.Fatal(err)
			}
			f := tempFile(t)
			var opErr error
			if tc.plan.SyncErrProb > 0 {
				opErr = in.Sync(f)
			} else {
				_, opErr = in.Write(f, []byte("payload"))
			}
			if !errors.Is(opErr, ErrDiskFault) {
				t.Fatalf("error %v does not wrap ErrDiskFault", opErr)
			}
			if tc.errno != nil && !strings.Contains(opErr.Error(), tc.errno.Error()) {
				t.Errorf("error %q does not carry %v", opErr, tc.errno)
			}
			if got := tc.count(in.Counts()); got != 1 {
				t.Errorf("count %d, want 1 (%s)", got, in.Counts())
			}
		})
	}
}

// TestShortWritePersistsPrefix pins the torn-page mode: only a prefix
// lands, the reported n matches what landed, and the error wraps the
// sentinel.
func TestShortWritePersistsPrefix(t *testing.T) {
	in, err := NewDiskInjector(&DiskPlan{ShortWriteProb: 1}, 11)
	if err != nil {
		t.Fatal(err)
	}
	f := tempFile(t)
	payload := []byte("0123456789abcdef")
	n, werr := in.Write(f, payload)
	if !errors.Is(werr, ErrDiskFault) {
		t.Fatalf("short write error: %v", werr)
	}
	if n < 0 || n >= len(payload) {
		t.Fatalf("short write persisted %d of %d bytes", n, len(payload))
	}
	got, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload[:n]) {
		t.Fatalf("file holds %q, want the %d-byte prefix", got, n)
	}
	if c := in.Counts(); c.ShortWrites != 1 {
		t.Errorf("counts: %s", c)
	}
}

// TestTornRenameLeavesPrefix pins the crash-mid-rename mode: the
// destination holds a prefix of the source, the source survives, and the
// rename reports failure.
func TestTornRenameLeavesPrefix(t *testing.T) {
	in, err := NewDiskInjector(&DiskPlan{TornRenameProb: 1}, 13)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "src")
	dst := filepath.Join(dir, "dst")
	content := []byte("the quick brown fox jumps over the lazy dog")
	if err := os.WriteFile(src, content, 0o644); err != nil {
		t.Fatal(err)
	}
	rerr := in.Rename(src, dst)
	if !errors.Is(rerr, ErrDiskFault) {
		t.Fatalf("torn rename error: %v", rerr)
	}
	if _, err := os.Stat(src); err != nil {
		t.Errorf("source vanished after torn rename: %v", err)
	}
	if got, err := os.ReadFile(dst); err == nil {
		if len(got) > len(content) || string(got) != string(content[:len(got)]) {
			t.Errorf("destination %q is not a prefix of the source", got)
		}
	}
	if c := in.Counts(); c.TornRenames != 1 {
		t.Errorf("counts: %s", c)
	}
}
