package sweep

// Durability layer: the cell journal that makes an interrupted sweep
// resumable, per-cell retry with seeded exponential backoff, and the
// transient-error classification that decides what is worth retrying.
//
// The invariants, in order of trust:
//
//   - The journal is the commit point. A cell is "completed" iff a journal
//     record holding its cache key and the sha256 of its encoded result
//     bytes has been fsynced. The record is written only after the cache
//     write, so a committed cell always had its bytes on disk at commit
//     time.
//   - The cache is verified, never trusted. On resume a journalled cell is
//     replayed only if the cache still produces bytes whose hash matches
//     the journal record; any mismatch (evicted file, corrupt entry, codec
//     drift) silently re-runs the cell. Since every run is a deterministic
//     simulation, a re-run reproduces the identical bytes — resume
//     correctness never depends on cache durability.
//   - Backoff is seeded. Retry delays derive from (seed, cell index,
//     attempt), not from a global RNG or the clock, so a sweep's retry
//     schedule is reproducible regardless of worker interleaving.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"clocksched/internal/journal"
	"clocksched/internal/sim"
	"clocksched/internal/telemetry"
)

// FS is the injectable filesystem surface the durability layer's writes
// run through — an alias of journal.FS so one injector (the chaos tests
// use *fault.DiskInjector) serves journal, cache, and service alike. Nil
// means the real filesystem.
type FS = journal.FS

// attemptKey carries the zero-based retry attempt through the context into
// the cell closure, so a deterministic simulation can salt its
// fault-injection streams per attempt — giving each retry an independent
// abort schedule while leaving the successful run bit-identical.
type attemptKey struct{}

// WithAttempt returns ctx annotated with the cell's zero-based attempt
// number.
func WithAttempt(ctx context.Context, attempt int) context.Context {
	return context.WithValue(ctx, attemptKey{}, attempt)
}

// AttemptFromContext reports the cell's zero-based attempt number, zero if
// the context carries none (a first attempt, or a run outside the sweep).
func AttemptFromContext(ctx context.Context) int {
	n, _ := ctx.Value(attemptKey{}).(int)
	return n
}

// IsTransient reports whether err declares itself retryable by exposing a
// `Transient() bool` method anywhere in its chain. The sweep engine retries
// only transient failures: a deterministic simulation that failed on bad
// input will fail identically forever, but an injected fault or a flaky
// external dependency may clear on the next attempt.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// RetryPolicy bounds and paces per-cell retries of transient failures.
type RetryPolicy struct {
	// Max is the retry budget: a cell runs at most 1+Max times. Zero
	// disables retries.
	Max int
	// Base is the first backoff delay; non-positive selects 100ms. The
	// delay doubles per attempt.
	Base time.Duration
	// Cap bounds the grown delay; non-positive selects 5s.
	Cap time.Duration
	// Seed keys the jitter stream. The same (Seed, cell, attempt) triple
	// always yields the same delay.
	Seed uint64
}

// retryDefaults returns the policy with zero fields resolved.
func (p RetryPolicy) retryDefaults() RetryPolicy {
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 5 * time.Second
	}
	return p
}

// delay computes the backoff before retry number attempt (zero-based) of
// the given cell: exponential growth clamped at Cap, jittered into
// [d/2, d] by a stream keyed on (Seed, cell, attempt) so the schedule is
// deterministic however workers interleave.
func (p RetryPolicy) delay(cell, attempt int) time.Duration {
	p = p.retryDefaults()
	d := p.Cap
	// Grow by doubling, watching for overflow past the cap.
	if shift := uint(attempt); shift < 62 && p.Base<<shift > 0 && p.Base<<shift < p.Cap {
		d = p.Base << shift
	}
	rng := sim.NewRNGStream(p.Seed^(uint64(cell)*0x9e3779b97f4a7c15+0xd1b54a32d192ed03), uint64(attempt))
	half := d / 2
	return half + time.Duration(rng.Uint64()%uint64(half+1))
}

// cellRecord is one journal entry: a completed cell's cache key and the
// sha256 of its encoded result bytes.
type cellRecord struct {
	K string `json:"k"`
	H string `json:"h"`
}

// hashBytes returns the journal's content hash of encoded result bytes.
func hashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// CellJournal is the sweep's write-ahead completion log: one fsynced record
// per completed cell. Opening it with resume recovers the completed-cell
// set from a previous (possibly killed) process so Run can replay those
// cells from the cache instead of re-simulating them. A nil *CellJournal is
// the disabled layer; all methods are no-ops.
type CellJournal struct {
	mu        sync.Mutex
	w         *journal.Writer
	done      map[string]string // cache key → result hash
	recovered int               // records recovered at open
	torn      bool              // open found (and truncated) a torn tail
	compacted bool              // open rewrote the log down to live records

	tel atomic.Pointer[journalTel]
}

// CompactThreshold is the resumed-journal size (bytes of valid prefix)
// above which OpenCellJournal rewrites the log down to one record per live
// cell. Long-lived journals accumulate duplicate commits — cache hits
// re-journal, re-runs re-commit — and replaying an unbounded log on every
// resume is wasted work. A var, not a const, so tests (and unusual
// deployments) can lower it.
var CompactThreshold int64 = 1 << 20

// journalTel bundles the journal's pre-resolved instruments.
type journalTel struct {
	commits, errs *telemetry.Counter
}

// OpenCellJournal opens the cell journal at path; see OpenCellJournalFS.
func OpenCellJournal(path string, resume bool) (*CellJournal, error) {
	return OpenCellJournalFS(path, resume, nil)
}

// OpenCellJournalFS opens (resume=false: truncates) the cell journal at path,
// routing its durable writes — appends, fsyncs, and the compaction rewrite —
// through fs (nil selects the real filesystem; chaos tests inject faults).
// With resume, previously committed records are recovered — a torn tail
// from a crash mid-append is dropped, never misread — and Recovered/Torn
// report what was found. A record that passes the framing checksum but is
// not a valid cell record means the file is some other journal (or a format
// break) and fails the open rather than silently resuming wrong.
//
// A resumed journal whose valid prefix exceeds CompactThreshold is
// compacted before appending resumes: the log is atomically rewritten with
// one record per live cell (latest hash, first-commit order), dropping
// duplicate commits and the already-truncated tail. Compaction preserves
// exactly the recovered cell set — it changes the file, never the
// semantics — and Compacted reports that it happened.
func OpenCellJournalFS(path string, resume bool, fs FS) (*CellJournal, error) {
	done := map[string]string{}
	var order []string // first-commit order of distinct keys
	parse := func(p []byte) error {
		var rec cellRecord
		if err := json.Unmarshal(p, &rec); err != nil {
			return fmt.Errorf("sweep: journal %s: bad cell record: %w", path, err)
		}
		if rec.K == "" || rec.H == "" {
			return fmt.Errorf("sweep: journal %s: cell record missing key or hash", path)
		}
		if _, seen := done[rec.K]; !seen {
			order = append(order, rec.K)
		}
		done[rec.K] = rec.H
		return nil
	}

	var torn, compacted bool
	if resume {
		stats, err := journal.ReplayFile(path, parse)
		if err != nil {
			return nil, err
		}
		torn = stats.Torn
		if stats.ValidBytes > CompactThreshold {
			payloads := make([][]byte, 0, len(order))
			for _, k := range order {
				rec, err := json.Marshal(cellRecord{K: k, H: done[k]})
				if err != nil {
					return nil, fmt.Errorf("sweep: journal %s: %w", path, err)
				}
				payloads = append(payloads, rec)
			}
			if err := journal.RewriteFS(path, payloads, fs); err != nil {
				return nil, fmt.Errorf("sweep: compacting journal %s: %w", path, err)
			}
			compacted = true
		}
	}

	// The records are already parsed (or the log is fresh); the second scan
	// inside Open just finds the append offset and drops any torn tail.
	w, _, err := journal.OpenFS(path, resume, nil, fs)
	if err != nil {
		return nil, err
	}
	return &CellJournal{w: w, done: done, recovered: len(done), torn: torn, compacted: compacted}, nil
}

// Instrument attaches commit/error counters and publishes the recovery
// gauges (records recovered, torn-tail flag) to the registry. Safe to call
// once per Run on a shared journal: counters accumulate, gauges are
// idempotent. A nil registry detaches; a nil journal is a no-op.
func (jr *CellJournal) Instrument(reg *telemetry.Registry) {
	if jr == nil {
		return
	}
	if reg == nil {
		jr.tel.Store(nil)
		return
	}
	jr.tel.Store(&journalTel{
		commits: reg.Counter(telemetry.MJournalCommits),
		errs:    reg.Counter(telemetry.MJournalErrors),
	})
	jr.mu.Lock()
	recovered, torn, compacted := jr.recovered, jr.torn, jr.compacted
	jr.mu.Unlock()
	reg.Gauge(telemetry.MJournalRecovered).Set(float64(recovered))
	flag := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	reg.Gauge(telemetry.MJournalTornTail).Set(flag(torn))
	reg.Gauge(telemetry.MJournalCompacted).Set(flag(compacted))
}

// Recovered reports how many completed-cell records the open replayed.
func (jr *CellJournal) Recovered() int {
	if jr == nil {
		return 0
	}
	jr.mu.Lock()
	defer jr.mu.Unlock()
	return jr.recovered
}

// Torn reports whether the open found (and truncated) a damaged tail.
func (jr *CellJournal) Torn() bool {
	if jr == nil {
		return false
	}
	jr.mu.Lock()
	defer jr.mu.Unlock()
	return jr.torn
}

// Compacted reports whether the open rewrote an oversized resumed journal
// down to its live records.
func (jr *CellJournal) Compacted() bool {
	if jr == nil {
		return false
	}
	jr.mu.Lock()
	defer jr.mu.Unlock()
	return jr.compacted
}

// Completed reports the recorded result hash for a cache key, if the cell
// has been committed (in this process or a resumed one).
func (jr *CellJournal) Completed(key string) (hash string, ok bool) {
	if jr == nil || key == "" {
		return "", false
	}
	jr.mu.Lock()
	defer jr.mu.Unlock()
	h, ok := jr.done[key]
	return h, ok
}

// Commit durably records the cell: the key/hash record is appended and
// fsynced before Commit returns, making this the moment the cell survives a
// crash. Re-committing an identical record is a no-op. A failed commit
// degrades durability, not the sweep — the caller counts it and carries on.
func (jr *CellJournal) Commit(key string, enc []byte) error {
	if jr == nil || key == "" {
		return nil
	}
	h := hashBytes(enc)
	jr.mu.Lock()
	if prev, ok := jr.done[key]; ok && prev == h {
		jr.mu.Unlock()
		return nil
	}
	jr.done[key] = h
	jr.mu.Unlock()

	var commits, errsC *telemetry.Counter
	if t := jr.tel.Load(); t != nil {
		commits, errsC = t.commits, t.errs
	}
	rec, err := json.Marshal(cellRecord{K: key, H: h})
	if err == nil {
		if err = jr.w.Append(rec); err == nil {
			err = jr.w.Sync()
		}
	}
	if err != nil {
		errsC.Inc()
		return err
	}
	commits.Inc()
	return nil
}

// Close syncs and closes the underlying journal file.
func (jr *CellJournal) Close() error {
	if jr == nil {
		return nil
	}
	return jr.w.Close()
}

// cellRunner is the per-sweep execution environment for one cell: cache,
// journal, deadline budget, retry policy, and the pre-resolved instruments.
type cellRunner struct {
	cache       *Cache
	journal     *CellJournal
	timeout     time.Duration
	retry       RetryPolicy
	telRetries  *telemetry.Counter
	telDeadline *telemetry.Counter
}

// run executes cell i: journal replay, cache lookup, then the retry loop.
// Cache and journal failures are swallowed — durability accelerates and
// protects, it never gates a result.
func (cr *cellRunner) run(ctx context.Context, i int, j Job) Outcome {
	if err := ctx.Err(); err != nil {
		return Outcome{Err: err}
	}

	// Journal replay: the journal proves the cell completed in a previous
	// run; the cache must still produce bytes with the committed hash to be
	// believed. A mismatch — evicted entry, corruption, codec drift — falls
	// through to an ordinary re-run, which reproduces the same result.
	if h, ok := cr.journal.Completed(j.Key); ok && cr.cache != nil && j.Key != "" {
		if v, enc, hit, err := cr.cache.GetWithBytes(j.Key); err == nil && hit && hashBytes(enc) == h {
			return Outcome{Value: v, Cached: true, Replayed: true}
		}
	}

	if cr.cache != nil && j.Key != "" {
		if v, enc, hit, err := cr.cache.GetWithBytes(j.Key); err == nil && hit {
			// A plain cache hit also completes the cell; journal it so a
			// later resume replays instead of depending on cache policy.
			_ = cr.journal.Commit(j.Key, enc)
			return Outcome{Value: v, Cached: true}
		}
	}

	attempts := 0
	for {
		attempts++
		cellCtx := WithAttempt(ctx, attempts-1)
		var cancel context.CancelFunc
		if cr.timeout > 0 {
			cellCtx, cancel = context.WithTimeout(cellCtx, cr.timeout)
		}
		v, err := j.Run(cellCtx)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			if cr.cache != nil && j.Key != "" {
				if enc, perr := cr.cache.PutEncoded(j.Key, v); perr == nil {
					_ = cr.journal.Commit(j.Key, enc)
				}
			}
			return Outcome{Value: v, Attempts: attempts}
		}
		// A blown per-cell deadline (with the sweep itself still healthy)
		// is terminal, not transient: the same budget would expire the same
		// way on every retry of a deterministic cell.
		if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			cr.telDeadline.Inc()
			return Outcome{
				Err:      fmt.Errorf("cell deadline %v exceeded after %d attempt(s): %w", cr.timeout, attempts, err),
				Attempts: attempts,
			}
		}
		if ctx.Err() != nil {
			return Outcome{Err: err, Attempts: attempts}
		}
		if !IsTransient(err) {
			return Outcome{Err: err, Attempts: attempts}
		}
		if attempts > cr.retry.Max {
			return Outcome{
				Err:      fmt.Errorf("retry budget (%d) exhausted: %w", cr.retry.Max, err),
				Attempts: attempts,
			}
		}
		cr.telRetries.Inc()
		select {
		case <-time.After(cr.retry.delay(i, attempts-1)):
		case <-ctx.Done():
			return Outcome{Err: ctx.Err(), Attempts: attempts}
		}
	}
}
