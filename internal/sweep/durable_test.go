package sweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clocksched/internal/journal"
	"clocksched/internal/telemetry"
)

// flakyErr is a transient failure for retry tests.
type flakyErr struct{ msg string }

func (f flakyErr) Error() string   { return f.msg }
func (f flakyErr) Transient() bool { return true }

// fastRetry keeps test backoffs in the microsecond range.
func fastRetry(max int) RetryPolicy {
	return RetryPolicy{Max: max, Base: time.Microsecond, Cap: 10 * time.Microsecond}
}

func TestIsTransient(t *testing.T) {
	if !IsTransient(flakyErr{"x"}) {
		t.Error("flakyErr should be transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", flakyErr{"x"})) {
		t.Error("transience must survive wrapping")
	}
	if IsTransient(errors.New("plain")) {
		t.Error("plain errors are not transient")
	}
	if IsTransient(nil) {
		t.Error("nil is not transient")
	}
}

func TestWithAttemptRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := AttemptFromContext(ctx); got != 0 {
		t.Fatalf("bare context attempt = %d, want 0", got)
	}
	if got := AttemptFromContext(WithAttempt(ctx, 3)); got != 3 {
		t.Fatalf("attempt = %d, want 3", got)
	}
}

func TestRetryDelayDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{Max: 5, Base: 100 * time.Millisecond, Cap: 5 * time.Second, Seed: 7}
	for cell := 0; cell < 4; cell++ {
		for attempt := 0; attempt < 8; attempt++ {
			d1 := p.delay(cell, attempt)
			d2 := p.delay(cell, attempt)
			if d1 != d2 {
				t.Fatalf("delay(%d,%d) nondeterministic: %v vs %v", cell, attempt, d1, d2)
			}
			grown := p.Cap
			if attempt < 6 && p.Base<<uint(attempt) < p.Cap {
				grown = p.Base << uint(attempt)
			}
			if d1 < grown/2 || d1 > grown {
				t.Fatalf("delay(%d,%d) = %v outside [%v, %v]", cell, attempt, d1, grown/2, grown)
			}
		}
	}
	// Different seeds must produce different schedules somewhere.
	q := p
	q.Seed = 8
	same := true
	for attempt := 0; attempt < 8 && same; attempt++ {
		same = p.delay(0, attempt) == q.delay(0, attempt)
	}
	if same {
		t.Error("seed does not influence the backoff schedule")
	}
}

func TestRetryTransientThenSucceed(t *testing.T) {
	reg := telemetry.New()
	var calls atomic.Int64
	jobs := []Job{{Run: func(ctx context.Context) (any, error) {
		n := calls.Add(1)
		if AttemptFromContext(ctx) != int(n-1) {
			t.Errorf("call %d saw attempt %d", n, AttemptFromContext(ctx))
		}
		if n < 3 {
			return nil, flakyErr{"injected"}
		}
		return 42, nil
	}}}
	var stats PoolStats
	out, err := Run(context.Background(), jobs, Options{
		Workers: 1, Retry: fastRetry(5), Telemetry: reg, Stats: &stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Value.(int) != 42 || out[0].Attempts != 3 {
		t.Fatalf("outcome %+v, want value 42 after 3 attempts", out[0])
	}
	if stats.Retries != 2 {
		t.Errorf("stats.Retries = %d, want 2", stats.Retries)
	}
	if got := reg.Snapshot().Counters[telemetry.MSweepCellRetries]; got != 2 {
		t.Errorf("%s = %v, want 2", telemetry.MSweepCellRetries, got)
	}
}

func TestRetryBudgetExhaustedDegradesToError(t *testing.T) {
	var calls atomic.Int64
	jobs := []Job{{Run: func(context.Context) (any, error) {
		calls.Add(1)
		return nil, flakyErr{"always"}
	}}}
	out, err := Run(context.Background(), jobs, Options{Workers: 1, Retry: fastRetry(2)})
	if err == nil {
		t.Fatal("exhausted retries should surface an error")
	}
	if calls.Load() != 3 {
		t.Fatalf("ran %d times, want 1+2 retries", calls.Load())
	}
	if out[0].Attempts != 3 || !IsTransient(out[0].Err) {
		t.Fatalf("outcome %+v: want 3 attempts and a transient chain", out[0])
	}
	if want := "retry budget (2) exhausted"; !contains(out[0].Err.Error(), want) {
		t.Errorf("err %q does not mention %q", out[0].Err, want)
	}
}

func TestNonTransientNotRetried(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("deterministic failure")
	jobs := []Job{{Run: func(context.Context) (any, error) {
		calls.Add(1)
		return nil, boom
	}}}
	out, err := Run(context.Background(), jobs, Options{Workers: 1, Retry: fastRetry(5)})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 1 || out[0].Attempts != 1 {
		t.Fatalf("non-transient failure retried: %d calls, %d attempts", calls.Load(), out[0].Attempts)
	}
}

func TestCellTimeoutIsTerminal(t *testing.T) {
	reg := telemetry.New()
	var calls atomic.Int64
	jobs := []Job{{Run: func(ctx context.Context) (any, error) {
		calls.Add(1)
		<-ctx.Done() // a well-behaved cell observes cancellation
		return nil, ctx.Err()
	}}}
	out, err := Run(context.Background(), jobs, Options{
		Workers:     1,
		CellTimeout: 10 * time.Millisecond,
		Retry:       fastRetry(5), // must NOT rescue a blown deadline
		Telemetry:   reg,
	})
	if err == nil || !errors.Is(out[0].Err, context.DeadlineExceeded) {
		t.Fatalf("err=%v cell=%v, want DeadlineExceeded", err, out[0].Err)
	}
	if calls.Load() != 1 {
		t.Fatalf("deadline failure retried: %d calls", calls.Load())
	}
	if want := "cell deadline"; !contains(out[0].Err.Error(), want) {
		t.Errorf("err %q does not mention %q", out[0].Err, want)
	}
	if got := reg.Snapshot().Counters[telemetry.MSweepCellDeadline]; got != 1 {
		t.Errorf("%s = %v, want 1", telemetry.MSweepCellDeadline, got)
	}
}

func TestJournalCommitAndResumeReplays(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "sweep.wal")
	cacheDir := filepath.Join(dir, "cache")
	reg := telemetry.New()

	mk := func(mustRun bool) []Job {
		jobs := make([]Job, 4)
		for i := range jobs {
			jobs[i] = Job{
				Key: fmt.Sprintf("cell-%d", i),
				Run: func(context.Context) (any, error) {
					if !mustRun {
						t.Errorf("cell %d re-ran after journal commit", i)
					}
					return i * 11, nil
				},
			}
		}
		return jobs
	}

	// First run: everything simulates and commits.
	c1, err := NewCache(8, cacheDir, jsonCodec())
	if err != nil {
		t.Fatal(err)
	}
	jr1, err := OpenCellJournal(wal, false)
	if err != nil {
		t.Fatal(err)
	}
	var s1 PoolStats
	out1, err := Run(context.Background(), mk(true), Options{Workers: 2, Cache: c1, Journal: jr1, Stats: &s1})
	if err != nil {
		t.Fatal(err)
	}
	if err := jr1.Close(); err != nil {
		t.Fatal(err)
	}
	if s1.Ran != 4 {
		t.Fatalf("first run stats %+v", s1)
	}

	// Second process: resume replays every cell from the journal + cache
	// without invoking a single closure.
	c2, err := NewCache(8, cacheDir, jsonCodec())
	if err != nil {
		t.Fatal(err)
	}
	jr2, err := OpenCellJournal(wal, true)
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()
	if jr2.Recovered() != 4 || jr2.Torn() {
		t.Fatalf("recovered %d torn %v, want 4/false", jr2.Recovered(), jr2.Torn())
	}
	var s2 PoolStats
	out2, err := Run(context.Background(), mk(false), Options{
		Workers: 2, Cache: c2, Journal: jr2, Telemetry: reg, Stats: &s2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out2 {
		if !out2[i].Replayed || !out2[i].Cached || out2[i].Value.(int) != out1[i].Value.(int) {
			t.Fatalf("cell %d = %+v, want replayed %v", i, out2[i], out1[i].Value)
		}
	}
	if s2.Replayed != 4 || s2.Cached != 4 || s2.Ran != 0 {
		t.Fatalf("resume stats %+v", s2)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[telemetry.MSweepCellsReplayed]; got != 4 {
		t.Errorf("%s = %v, want 4", telemetry.MSweepCellsReplayed, got)
	}
	if got := snap.Gauges[telemetry.MJournalRecovered]; got != 4 {
		t.Errorf("%s = %v, want 4", telemetry.MJournalRecovered, got)
	}
}

// TestResumeProgressStartsAtReplayedCount pins the resume-aware progress
// contract: a resumed sweep announces its replayed cells in one initial
// OnProgress call — done starts at the replayed count — and the workers
// report only the remaining cells.
func TestResumeProgressStartsAtReplayedCount(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "sweep.wal")
	cacheDir := filepath.Join(dir, "cache")

	mk := func() []Job {
		jobs := make([]Job, 6)
		for i := range jobs {
			jobs[i] = Job{
				Key: fmt.Sprintf("cell-%d", i),
				Run: func(context.Context) (any, error) { return i * 7, nil },
			}
		}
		return jobs
	}

	// First process: run only the first four cells (a truncated grid), as
	// an interrupted sweep would have.
	c1, err := NewCache(8, cacheDir, jsonCodec())
	if err != nil {
		t.Fatal(err)
	}
	jr1, err := OpenCellJournal(wal, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), mk()[:4], Options{Workers: 2, Cache: c1, Journal: jr1}); err != nil {
		t.Fatal(err)
	}
	jr1.Close()

	// Second process: resume over the full grid.
	c2, err := NewCache(8, cacheDir, jsonCodec())
	if err != nil {
		t.Fatal(err)
	}
	jr2, err := OpenCellJournal(wal, true)
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()

	var mu sync.Mutex
	var calls [][2]int
	_, err = Run(context.Background(), mk(), Options{
		Workers: 2, Cache: c2, Journal: jr2,
		OnProgress: func(done, total int) {
			mu.Lock()
			calls = append(calls, [2]int{done, total})
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 {
		t.Fatal("no progress calls")
	}
	if calls[0] != [2]int{4, 6} {
		t.Fatalf("first progress call %v, want [4 6]: resumed done-count must start at the replayed count", calls[0])
	}
	if len(calls) != 3 {
		t.Fatalf("%d progress calls, want 3 (1 replay batch + 2 fresh cells): %v", len(calls), calls)
	}
	seen := map[int]bool{}
	for _, c := range calls {
		if c[1] != 6 || seen[c[0]] {
			t.Fatalf("bad progress sequence %v", calls)
		}
		seen[c[0]] = true
	}
	if !seen[6] {
		t.Fatalf("final call never reported done == total: %v", calls)
	}
}

func TestJournalHashMismatchReruns(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "sweep.wal")
	cacheDir := filepath.Join(dir, "cache")

	c1, err := NewCache(8, cacheDir, jsonCodec())
	if err != nil {
		t.Fatal(err)
	}
	jr1, err := OpenCellJournal(wal, false)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{{Key: "k", Run: func(context.Context) (any, error) { return 7, nil }}}
	if _, err := Run(context.Background(), jobs, Options{Workers: 1, Cache: c1, Journal: jr1}); err != nil {
		t.Fatal(err)
	}
	jr1.Close()

	// Tamper with the cached bytes: still a decodable entry, but its hash no
	// longer matches the journal record, so the cell must re-run rather than
	// serve the imposter.
	files, err := filepath.Glob(filepath.Join(cacheDir, "*.cell"))
	if err != nil || len(files) != 1 {
		t.Fatalf("files %v err %v", files, err)
	}
	if err := os.WriteFile(files[0], []byte("999"), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := NewCache(8, cacheDir, jsonCodec())
	if err != nil {
		t.Fatal(err)
	}
	jr2, err := OpenCellJournal(wal, true)
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()
	var ran atomic.Bool
	jobs2 := []Job{{Key: "k", Run: func(context.Context) (any, error) { ran.Store(true); return 7, nil }}}
	out, err := Run(context.Background(), jobs2, Options{Workers: 1, Cache: c2, Journal: jr2})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Replayed {
		t.Error("hash-mismatched cell was replayed")
	}
	// The tampered entry is a valid cache hit for the plain-cache path, so the
	// defining property is only: no replay without hash verification. If the
	// cache served the tampered value, Replayed must still be false.
	if !ran.Load() && out[0].Value.(int) != 999 {
		t.Fatalf("outcome %+v: expected either a re-run or an honest cache hit", out[0])
	}
}

func TestPlainCacheHitIsJournalled(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "sweep.wal")
	c, err := NewCache(8, "", jsonCodec())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("warm", 5); err != nil {
		t.Fatal(err)
	}
	jr, err := OpenCellJournal(wal, false)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	jobs := []Job{{Key: "warm", Run: func(context.Context) (any, error) {
		t.Error("warm cell ran")
		return nil, nil
	}}}
	out, err := Run(context.Background(), jobs, Options{Workers: 1, Cache: c, Journal: jr})
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Cached || out[0].Replayed {
		t.Fatalf("outcome %+v, want plain cache hit", out[0])
	}
	if _, ok := jr.Completed("warm"); !ok {
		t.Error("cache hit was not committed to the journal")
	}
}

func TestCellJournalTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "sweep.wal")
	jr, err := OpenCellJournal(wal, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := jr.Commit("a", []byte("payload-a")); err != nil {
		t.Fatal(err)
	}
	if err := jr.Commit("b", []byte("payload-b")); err != nil {
		t.Fatal(err)
	}
	jr.Close()

	// Chop bytes off the tail, as a crash mid-append would.
	info, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal, info.Size()-4); err != nil {
		t.Fatal(err)
	}

	re, err := OpenCellJournal(wal, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Recovered() != 1 || !re.Torn() {
		t.Fatalf("recovered %d torn %v, want 1/true", re.Recovered(), re.Torn())
	}
	if _, ok := re.Completed("a"); !ok {
		t.Error("intact record lost")
	}
	if _, ok := re.Completed("b"); ok {
		t.Error("torn record believed")
	}
	// The truncated journal accepts new commits.
	if err := re.Commit("b", []byte("payload-b")); err != nil {
		t.Fatal(err)
	}
}

// TestCellJournalCompactionRoundTrip drives the full life cycle the
// compaction path exists for: a log bloated by duplicate commits loses its
// tail to a crash, resume compacts it, and the compacted log carries the
// identical live-cell set through further commits and another resume.
func TestCellJournalCompactionRoundTrip(t *testing.T) {
	defer func(v int64) { CompactThreshold = v }(CompactThreshold)

	dir := t.TempDir()
	wal := filepath.Join(dir, "sweep.wal")
	jr, err := OpenCellJournal(wal, false)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate commits: every key committed three times, "k1" with a
	// changed payload so compaction must keep the latest hash.
	for round := 0; round < 3; round++ {
		for i := 0; i < 8; i++ {
			key := fmt.Sprintf("k%d", i)
			payload := []byte("payload-" + key)
			if round == 2 && i == 1 {
				payload = []byte("payload-k1-final")
			}
			// Force re-append on changed hash by clearing the dedupe entry.
			jr.mu.Lock()
			delete(jr.done, key)
			jr.mu.Unlock()
			if err := jr.Commit(key, payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	jr.Close()

	// Crash damage: chop into the last record.
	info, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	bloated := info.Size()
	if err := os.Truncate(wal, bloated-3); err != nil {
		t.Fatal(err)
	}

	// Resume over the threshold: torn tail dropped, log rewritten.
	CompactThreshold = 64
	re, err := OpenCellJournal(wal, true)
	if err != nil {
		t.Fatal(err)
	}
	if !re.Compacted() || !re.Torn() {
		t.Fatalf("compacted %v torn %v, want true/true", re.Compacted(), re.Torn())
	}
	if re.Recovered() != 8 {
		t.Fatalf("recovered %d live cells, want 8", re.Recovered())
	}
	if h, ok := re.Completed("k1"); !ok || h != hashBytes([]byte("payload-k1-final")) {
		t.Fatal("compaction lost the latest hash for a re-committed cell")
	}
	info, err = os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() >= bloated {
		t.Fatalf("compaction did not shrink the log: %d -> %d bytes", bloated, info.Size())
	}
	// The compacted log accepts fresh commits.
	if err := re.Commit("k8", []byte("payload-k8")); err != nil {
		t.Fatal(err)
	}
	re.Close()

	// Round trip: a small compacted log resumes clean — no tear, no
	// re-compaction — with every cell intact.
	CompactThreshold = 1 << 20
	again, err := OpenCellJournal(wal, true)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Torn() || again.Compacted() {
		t.Fatalf("torn %v compacted %v after clean reopen, want false/false",
			again.Torn(), again.Compacted())
	}
	if again.Recovered() != 9 {
		t.Fatalf("recovered %d cells after compaction round trip, want 9", again.Recovered())
	}
	for i := 0; i < 9; i++ {
		if _, ok := again.Completed(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("cell k%d lost across compaction round trip", i)
		}
	}
}

func TestOpenCellJournalRejectsForeignRecords(t *testing.T) {
	// A frame that passes the CRC but is not a cell record means the file
	// belongs to something else; resuming from it must fail loudly.
	wal := filepath.Join(t.TempDir(), "other.wal")
	w, err := journal.Create(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte(`{"seq":1,"name":"run.start"}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCellJournal(wal, true); err == nil {
		t.Fatal("foreign journal resumed without error")
	}
}

func TestFailFastErrorIsDeterministic(t *testing.T) {
	mkJobs := func() []Job {
		jobs := make([]Job, 16)
		for i := range jobs {
			switch i {
			case 5, 11:
				jobs[i] = Job{Run: func(context.Context) (any, error) {
					return nil, fmt.Errorf("cell failure %d", i)
				}}
			default:
				jobs[i] = Job{Run: func(context.Context) (any, error) {
					time.Sleep(time.Duration(i%3) * time.Millisecond)
					return i, nil
				}}
			}
		}
		return jobs
	}

	// Serial: cell 5 always fails first and is always the reported error —
	// fully deterministic.
	for trial := 0; trial < 5; trial++ {
		_, err := Run(context.Background(), mkJobs(), Options{Workers: 1, FailFast: true})
		if err == nil || !contains(err.Error(), "cell 5:") {
			t.Fatalf("serial trial %d: err %q, want cell 5", trial, err)
		}
	}

	// Parallel: a failing cell can itself be overtaken by the abort (its
	// error degrades to context.Canceled), so the guarantee is the
	// lowest-index genuine failure among those that ran — never a healthy
	// cell, and never whichever-worker-finished-first arbitrariness beyond
	// the failing set.
	for trial := 0; trial < 10; trial++ {
		out, err := Run(context.Background(), mkJobs(), Options{Workers: 8, FailFast: true})
		if err == nil {
			t.Fatal("fail-fast sweep succeeded")
		}
		if !contains(err.Error(), "cell 5:") && !contains(err.Error(), "cell 11:") {
			t.Fatalf("trial %d: err %q names a non-failing cell", trial, err)
		}
		if contains(err.Error(), "cell 5:") {
			continue
		}
		// Cell 11 may be reported only when cell 5's own failure was
		// pre-empted by the abort.
		if out[5].Err == nil || !errors.Is(out[5].Err, context.Canceled) {
			t.Fatalf("trial %d: cell 11 reported but cell 5 = %v", trial, out[5].Err)
		}
	}
}

func TestNilJournalIsNoop(t *testing.T) {
	var jr *CellJournal
	if err := jr.Commit("k", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, ok := jr.Completed("k"); ok {
		t.Error("nil journal claims completion")
	}
	if jr.Recovered() != 0 || jr.Torn() {
		t.Error("nil journal reports recovery state")
	}
	jr.Instrument(telemetry.New())
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
}

// contains reports substring presence without importing strings in every
// assertion above.
func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
