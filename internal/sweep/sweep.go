// Package sweep executes grids of independent measurement runs across a
// bounded worker pool with a deterministic merge: however the cells
// interleave at runtime, the returned slice is ordered by grid index and
// each cell's value is bit-identical to what a serial loop would have
// produced, because every run is a self-contained deterministic simulation.
//
// The package is deliberately generic — a job is just a cache key and a
// closure — so both the public clocksched batch API and the internal
// experiment harness can fan their grids through the same engine. An
// optional content-addressed cache (in-memory LRU plus an on-disk layer)
// lets repeated regenerations of the paper's tables and figures skip cells
// that have already been measured.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"clocksched/internal/telemetry"
)

// Job is one cell of a sweep grid.
type Job struct {
	// Key is the cell's content-addressed cache key; empty disables
	// caching for this cell. Keys must fully determine the cell's output
	// (spec, seed, and module version), or the cache will serve stale
	// results.
	Key string
	// Run executes the cell. The context is cancelled when the sweep is
	// aborted; long cells should observe it.
	Run func(ctx context.Context) (any, error)
}

// Options tunes one sweep.
type Options struct {
	// Workers bounds the concurrency; values < 1 select GOMAXPROCS.
	Workers int
	// FailFast aborts the sweep at the first cell error, cancelling
	// outstanding cells. The default runs every cell and collects all
	// errors.
	FailFast bool
	// Cache, when non-nil, consults and fills the result cache for jobs
	// with non-empty keys. Cache failures are never fatal: a broken entry
	// just re-runs the cell.
	Cache *Cache
	// OnProgress, when non-nil, is called after each cell completes (hit,
	// run, or failed) with the number done and the grid total. A resumed
	// sweep reports its journal-replayed cells in one initial call before
	// any worker starts, so done-counts begin at the replayed count rather
	// than rediscovering completed work one cell at a time. Calls may
	// run concurrently from multiple workers and completions may be
	// reported out of order, but each call carries a distinct done count
	// and the final cell always reports done == total; the callback must
	// synchronize its own state and must not re-enter the sweep. It is
	// called outside the pool's internal lock, so a slow callback costs
	// only its own worker.
	OnProgress func(done, total int)
	// Telemetry, when non-nil, receives live pool-occupancy gauges, cell
	// counters/latencies, and (together with Cache) cache traffic. Nil
	// disables instrumentation.
	Telemetry *telemetry.Registry
	// Stats, when non-nil, is filled with the sweep's pool statistics
	// before Run returns.
	Stats *PoolStats
	// CellTimeout, when positive, bounds each cell attempt's wall time. A
	// cell that blows the budget fails with a wrapped
	// context.DeadlineExceeded; deadlines are terminal, never retried.
	CellTimeout time.Duration
	// Retry paces re-runs of cells that fail with a transient error (see
	// IsTransient). The zero value disables retries.
	Retry RetryPolicy
	// Journal, when non-nil (and combined with Cache), makes the sweep
	// durable: completed cells are committed to the write-ahead journal and
	// a resumed sweep replays them from the cache — hash-verified against
	// the journal — instead of re-running them.
	Journal *CellJournal
}

// PoolStats summarizes one sweep's worker-pool behaviour.
type PoolStats struct {
	Workers  int // pool size actually used
	PeakBusy int // most cells observed running concurrently
	Ran      int // cells executed fresh
	Cached   int // cells served from the cache
	Replayed int // subset of Cached committed by a previous run's journal
	Failed   int // cells that returned an error
	Skipped  int // cells never started (cancellation or FailFast)
	Retries  int // extra attempts spent on transient failures
}

// Outcome is one cell's result, in grid order.
type Outcome struct {
	// Value is the cell's result; nil when Err is non-nil.
	Value any
	// Err is the cell's failure, ErrSkipped if the sweep aborted before
	// the cell ran, or nil.
	Err error
	// Cached reports that Value was served from the cache.
	Cached bool
	// Replayed reports that the cell was journalled complete by a previous
	// run and served from the cache after hash verification (implies
	// Cached).
	Replayed bool
	// Attempts counts how many times the cell's Run closure executed; zero
	// for cached/replayed/skipped cells, above one when transient failures
	// were retried.
	Attempts int
}

// ErrSkipped marks cells that never ran because the sweep was cancelled or
// aborted by FailFast.
var ErrSkipped = errors.New("sweep: cell skipped")

// Run executes every job across the worker pool and returns the outcomes
// ordered by grid index regardless of completion order.
//
// The returned error is nil when every cell succeeded; the first failure
// (wrapped with its grid index) under FailFast; otherwise the errors.Join
// of every cell failure. Context cancellation is joined in as well, so
// errors.Is(err, context.Canceled) works. The outcome slice is always
// complete and indexable, even on error.
func Run(ctx context.Context, jobs []Job, opts Options) ([]Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]Outcome, len(jobs))
	if len(jobs) == 0 {
		return out, nil
	}
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	tel := opts.Telemetry
	telBusy := tel.Gauge(telemetry.MSweepWorkersBusy)
	telPeak := tel.Gauge(telemetry.MSweepWorkersPeak)
	telRun := tel.Counter(telemetry.MSweepCellsRun)
	telCached := tel.Counter(telemetry.MSweepCellsCached)
	telReplayed := tel.Counter(telemetry.MSweepCellsReplayed)
	telFailed := tel.Counter(telemetry.MSweepCellsFailed)
	telCell := tel.Timer(telemetry.MSweepCellSeconds)
	opts.Cache.Instrument(tel)
	opts.Journal.Instrument(tel)

	runner := &cellRunner{
		cache:       opts.Cache,
		journal:     opts.Journal,
		timeout:     opts.CellTimeout,
		retry:       opts.Retry,
		telRetries:  tel.Counter(telemetry.MSweepCellRetries),
		telDeadline: tel.Counter(telemetry.MSweepCellDeadline),
	}

	var (
		mu   sync.Mutex
		done int
		ran  = make([]bool, len(jobs))

		busy, peak atomic.Int64
	)

	// Resume prescan: every cell the journal proves complete — and the
	// cache still verifies — is resolved before the pool starts, reported
	// through one initial OnProgress call. A resumed sweep's done-count
	// therefore begins at the replayed-cell count instead of rediscovering
	// finished work one worker pull at a time, and the workers only ever
	// touch cells with real work left.
	skip := make([]bool, len(jobs))
	if opts.Journal != nil && opts.Cache != nil {
		for i, j := range jobs {
			if j.Key == "" {
				continue
			}
			h, ok := opts.Journal.Completed(j.Key)
			if !ok {
				continue
			}
			if v, enc, hit, err := opts.Cache.GetWithBytes(j.Key); err == nil && hit && hashBytes(enc) == h {
				out[i] = Outcome{Value: v, Cached: true, Replayed: true}
				ran[i], skip[i] = true, true
				done++
				telReplayed.Inc()
			}
		}
		if done > 0 && opts.OnProgress != nil {
			opts.OnProgress(done, len(jobs))
		}
	}

	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range jobs {
			if skip[i] {
				continue
			}
			select {
			case idx <- i:
			case <-runCtx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				b := busy.Add(1)
				telBusy.Set(float64(b))
				telPeak.SetMax(float64(b))
				for p := peak.Load(); b > p && !peak.CompareAndSwap(p, b); p = peak.Load() {
				}
				span := telCell.Start()
				o := runner.run(runCtx, i, jobs[i])
				span.Stop()
				telBusy.Set(float64(busy.Add(-1)))
				switch {
				case o.Err != nil:
					telFailed.Inc()
				case o.Replayed:
					telReplayed.Inc()
				case o.Cached:
					telCached.Inc()
				default:
					telRun.Inc()
				}

				mu.Lock()
				out[i] = o
				ran[i] = true
				done++
				d := done
				if o.Err != nil && opts.FailFast {
					cancel()
				}
				mu.Unlock()
				// The callback runs outside the pool lock: a slow or
				// re-entrant observer stalls only its own worker instead of
				// serializing (or deadlocking) the whole pool.
				if opts.OnProgress != nil {
					opts.OnProgress(d, len(jobs))
				}
			}
		}()
	}
	wg.Wait()

	var errs []error
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	stats := PoolStats{Workers: workers, PeakBusy: int(peak.Load())}
	for i := range jobs {
		if !ran[i] {
			out[i] = Outcome{Err: ErrSkipped}
			stats.Skipped++
			continue
		}
		switch {
		case out[i].Err != nil:
			stats.Failed++
		case out[i].Replayed:
			stats.Replayed++
			stats.Cached++
		case out[i].Cached:
			stats.Cached++
		default:
			stats.Ran++
		}
		if out[i].Attempts > 1 {
			stats.Retries += out[i].Attempts - 1
		}
		if out[i].Err != nil && !opts.FailFast {
			errs = append(errs, fmt.Errorf("cell %d: %w", i, out[i].Err))
		}
	}
	if opts.FailFast {
		// Report the lowest-grid-index genuine failure, not whichever
		// worker happened to finish first: the error is deterministic
		// whenever the failing cell set is. Cells that died of the abort
		// itself (cancelled or never started) are only reported when
		// nothing better exists.
		first := -1
		for i := range jobs {
			err := out[i].Err
			if err == nil || errors.Is(err, ErrSkipped) || errors.Is(err, context.Canceled) {
				continue
			}
			first = i
			break
		}
		if first < 0 {
			for i := range jobs {
				if out[i].Err != nil && !errors.Is(out[i].Err, ErrSkipped) {
					first = i
					break
				}
			}
		}
		if first >= 0 {
			errs = append(errs, fmt.Errorf("cell %d: %w", first, out[first].Err))
		}
	}
	if opts.Stats != nil {
		*opts.Stats = stats
	}
	return out, errors.Join(errs...)
}
