// Package sweep executes grids of independent measurement runs across a
// bounded worker pool with a deterministic merge: however the cells
// interleave at runtime, the returned slice is ordered by grid index and
// each cell's value is bit-identical to what a serial loop would have
// produced, because every run is a self-contained deterministic simulation.
//
// The package is deliberately generic — a job is just a cache key and a
// closure — so both the public clocksched batch API and the internal
// experiment harness can fan their grids through the same engine. An
// optional content-addressed cache (in-memory LRU plus an on-disk layer)
// lets repeated regenerations of the paper's tables and figures skip cells
// that have already been measured.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Job is one cell of a sweep grid.
type Job struct {
	// Key is the cell's content-addressed cache key; empty disables
	// caching for this cell. Keys must fully determine the cell's output
	// (spec, seed, and module version), or the cache will serve stale
	// results.
	Key string
	// Run executes the cell. The context is cancelled when the sweep is
	// aborted; long cells should observe it.
	Run func(ctx context.Context) (any, error)
}

// Options tunes one sweep.
type Options struct {
	// Workers bounds the concurrency; values < 1 select GOMAXPROCS.
	Workers int
	// FailFast aborts the sweep at the first cell error, cancelling
	// outstanding cells. The default runs every cell and collects all
	// errors.
	FailFast bool
	// Cache, when non-nil, consults and fills the result cache for jobs
	// with non-empty keys. Cache failures are never fatal: a broken entry
	// just re-runs the cell.
	Cache *Cache
	// OnProgress, when non-nil, is called after each cell completes (hit,
	// run, or failed) with the number done and the grid total. Calls are
	// serialized; the callback must not re-enter the sweep.
	OnProgress func(done, total int)
}

// Outcome is one cell's result, in grid order.
type Outcome struct {
	// Value is the cell's result; nil when Err is non-nil.
	Value any
	// Err is the cell's failure, ErrSkipped if the sweep aborted before
	// the cell ran, or nil.
	Err error
	// Cached reports that Value was served from the cache.
	Cached bool
}

// ErrSkipped marks cells that never ran because the sweep was cancelled or
// aborted by FailFast.
var ErrSkipped = errors.New("sweep: cell skipped")

// Run executes every job across the worker pool and returns the outcomes
// ordered by grid index regardless of completion order.
//
// The returned error is nil when every cell succeeded; the first failure
// (wrapped with its grid index) under FailFast; otherwise the errors.Join
// of every cell failure. Context cancellation is joined in as well, so
// errors.Is(err, context.Canceled) works. The outcome slice is always
// complete and indexable, even on error.
func Run(ctx context.Context, jobs []Job, opts Options) ([]Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]Outcome, len(jobs))
	if len(jobs) == 0 {
		return out, nil
	}
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		done     int
		firstErr error
		ran      = make([]bool, len(jobs))
	)

	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range jobs {
			select {
			case idx <- i:
			case <-runCtx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				o := runJob(runCtx, jobs[i], opts.Cache)
				mu.Lock()
				out[i] = o
				ran[i] = true
				done++
				if o.Err != nil && firstErr == nil {
					firstErr = fmt.Errorf("cell %d: %w", i, o.Err)
					if opts.FailFast {
						cancel()
					}
				}
				if opts.OnProgress != nil {
					opts.OnProgress(done, len(jobs))
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	var errs []error
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	for i := range jobs {
		if !ran[i] {
			out[i] = Outcome{Err: ErrSkipped}
			continue
		}
		if out[i].Err != nil && !opts.FailFast {
			errs = append(errs, fmt.Errorf("cell %d: %w", i, out[i].Err))
		}
	}
	if opts.FailFast && firstErr != nil {
		errs = append(errs, firstErr)
	}
	return out, errors.Join(errs...)
}

// runJob executes one cell: cache lookup, run, cache fill. Cache errors are
// swallowed — the cache accelerates, it never gates.
func runJob(ctx context.Context, j Job, cache *Cache) Outcome {
	if err := ctx.Err(); err != nil {
		return Outcome{Err: err}
	}
	if cache != nil && j.Key != "" {
		if v, ok, err := cache.Get(j.Key); err == nil && ok {
			return Outcome{Value: v, Cached: true}
		}
	}
	v, err := j.Run(ctx)
	if err != nil {
		return Outcome{Err: err}
	}
	if cache != nil && j.Key != "" {
		_ = cache.Put(j.Key, v)
	}
	return Outcome{Value: v}
}
