package sweep

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"clocksched/internal/telemetry"
)

// Codec serializes cached values. The cache stores encoded bytes — in
// memory and on disk — and decodes on every hit, so a hit can never alias a
// value another cell is still mutating, and a disk entry written by one
// process is readable by the next.
type Codec struct {
	Encode func(v any) ([]byte, error)
	Decode func(b []byte) (any, error)
}

// CacheStats counts cache traffic.
type CacheStats struct {
	Hits     int // served from memory or disk
	DiskHits int // subset of Hits that came off disk
	Misses   int
	Corrupt  int   // disk entries that failed to decode and were deleted
	Entries  int   // live in-memory entries
	Bytes    int64 // encoded bytes held in memory
}

// Cache is a content-addressed result cache: a bounded in-memory LRU with
// an optional on-disk layer. It is safe for concurrent use.
type Cache struct {
	codec      Codec
	dir        string // "" disables the disk layer
	maxEntries int
	fs         FS // injectable write/rename surface; nil = real filesystem

	mu      sync.Mutex
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	stats   CacheStats

	// tel is swapped atomically so Get/Put read it without the LRU lock;
	// nil (the default) means no instrumentation and no clock reads.
	tel atomic.Pointer[cacheTel]
}

// cacheTel bundles the cache's pre-resolved telemetry instruments.
type cacheTel struct {
	hits, misses, diskHits, corrupt *telemetry.Counter
	getHit, getMiss, getDisk, putH  *telemetry.Histogram
}

// Instrument attaches cache-traffic counters and Get/Put latency histograms
// to the registry (sweep_cache_*). A nil registry detaches them; a nil cache
// is a no-op, so callers can instrument unconditionally.
func (c *Cache) Instrument(reg *telemetry.Registry) {
	if c == nil {
		return
	}
	if reg == nil {
		c.tel.Store(nil)
		return
	}
	c.tel.Store(&cacheTel{
		hits:     reg.Counter(telemetry.MCacheHits),
		misses:   reg.Counter(telemetry.MCacheMisses),
		diskHits: reg.Counter(telemetry.MCacheDiskHits),
		corrupt:  reg.Counter(telemetry.MCacheCorrupt),
		getHit:   reg.Histogram(telemetry.MCacheGetHitSecs, telemetry.SecondsBuckets),
		getMiss:  reg.Histogram(telemetry.MCacheGetMissSecs, telemetry.SecondsBuckets),
		getDisk:  reg.Histogram(telemetry.MCacheGetDiskSecs, telemetry.SecondsBuckets),
		putH:     reg.Histogram(telemetry.MCachePutSecs, telemetry.SecondsBuckets),
	})
}

// SetFS routes the cache's disk writes (entry files and their renames)
// through the injectable filesystem surface. Call it before the cache sees
// traffic — it exists so the chaos tests can make the disk layer
// misbehave; production caches leave the default (real) filesystem.
func (c *Cache) SetFS(fs FS) {
	if c == nil {
		return
	}
	c.fs = fs
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	key string
	b   []byte
}

// DefaultCacheEntries bounds the in-memory layer when the caller passes a
// non-positive size.
const DefaultCacheEntries = 1024

// NewCache builds a cache holding at most maxEntries encoded results in
// memory (non-positive selects DefaultCacheEntries). A non-empty dir adds a
// persistent disk layer under it — one file per key, written atomically —
// created on demand.
func NewCache(maxEntries int, dir string, codec Codec) (*Cache, error) {
	if codec.Encode == nil || codec.Decode == nil {
		return nil, errors.New("sweep: cache needs both codec halves")
	}
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("sweep: cache dir: %w", err)
		}
	}
	return &Cache{
		codec:      codec,
		dir:        dir,
		maxEntries: maxEntries,
		ll:         list.New(),
		entries:    map[string]*list.Element{},
	}, nil
}

// Get looks the key up in memory, then on disk. A disk hit is promoted into
// memory. The decoded value, a hit flag, and any decode error are returned;
// a missing entry is (nil, false, nil).
func (c *Cache) Get(key string) (any, bool, error) {
	v, _, ok, err := c.GetWithBytes(key)
	return v, ok, err
}

// GetWithBytes is Get, additionally returning the entry's encoded bytes on
// a hit — the representation the journal layer hashes to verify a replayed
// cell. The bytes are the cache's own copy and must not be mutated.
func (c *Cache) GetWithBytes(key string) (any, []byte, bool, error) {
	tel := c.tel.Load()
	var t0 time.Time
	if tel != nil {
		t0 = time.Now()
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		b := el.Value.(*cacheEntry).b
		c.stats.Hits++
		c.mu.Unlock()
		v, err := c.codec.Decode(b)
		if err != nil {
			return nil, nil, false, err
		}
		if tel != nil {
			tel.hits.Inc()
			tel.getHit.ObserveSince(t0)
		}
		return v, b, true, nil
	}
	c.mu.Unlock()

	if c.dir != "" {
		b, err := os.ReadFile(c.path(key))
		if err == nil {
			v, derr := c.codec.Decode(b)
			if derr == nil {
				c.insert(key, b, true)
				if tel != nil {
					tel.hits.Inc()
					tel.diskHits.Inc()
					tel.getDisk.ObserveSince(t0)
				}
				return v, b, true, nil
			}
			// A corrupt or truncated entry file (a crashed writer that
			// predates the atomic rename, a partial copy, bit rot) is
			// quarantined: delete it so it cannot shadow the fresh result,
			// count it, and report a plain miss — the cell just re-runs.
			_ = os.Remove(c.path(key))
			c.mu.Lock()
			c.stats.Corrupt++
			c.mu.Unlock()
			if tel != nil {
				tel.corrupt.Inc()
			}
		}
	}

	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	if tel != nil {
		tel.misses.Inc()
		tel.getMiss.ObserveSince(t0)
	}
	return nil, nil, false, nil
}

// Put encodes v and stores it under key, in memory and (when configured) on
// disk.
func (c *Cache) Put(key string, v any) error {
	_, err := c.PutEncoded(key, v)
	return err
}

// PutEncoded is Put, additionally returning the encoded bytes it stored —
// what the journal layer hashes when committing the cell.
func (c *Cache) PutEncoded(key string, v any) ([]byte, error) {
	if tel := c.tel.Load(); tel != nil {
		defer tel.putH.ObserveSince(time.Now())
	}
	b, err := c.codec.Encode(v)
	if err != nil {
		return nil, fmt.Errorf("sweep: encoding cache entry: %w", err)
	}
	c.insert(key, b, false)
	if c.dir == "" {
		return b, nil
	}
	// Atomic write: a crashed or concurrent writer never leaves a torn
	// file for Get to misread. (Under an injected torn rename the entry
	// file can hold a prefix — which Get's decode-or-quarantine path treats
	// as a miss, so a faulted write still only costs a re-run.)
	path := c.path(key)
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("sweep: cache write: %w", err)
	}
	werr := func() error {
		if c.fs == nil {
			_, err := tmp.Write(b)
			return err
		}
		_, err := c.fs.Write(tmp, b)
		return err
	}()
	if werr != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("sweep: cache write: %w", werr)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("sweep: cache write: %w", err)
	}
	rename := os.Rename
	if c.fs != nil {
		rename = c.fs.Rename
	}
	if err := rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("sweep: cache write: %w", err)
	}
	return b, nil
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	return s
}

// Len reports the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// insert stores encoded bytes at the LRU front, evicting from the back past
// capacity. diskHit marks the insert as a disk-layer promotion for stats.
func (c *Cache) insert(key string, b []byte, diskHit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if diskHit {
		c.stats.Hits++
		c.stats.DiskHits++
	}
	if el, ok := c.entries[key]; ok {
		c.stats.Bytes += int64(len(b)) - int64(len(el.Value.(*cacheEntry).b))
		el.Value.(*cacheEntry).b = b
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, b: b})
	c.stats.Bytes += int64(len(b))
	for c.ll.Len() > c.maxEntries {
		last := c.ll.Back()
		e := last.Value.(*cacheEntry)
		c.ll.Remove(last)
		delete(c.entries, e.key)
		c.stats.Bytes -= int64(len(e.b))
	}
}

// path maps a key to its disk file. The key itself is hashed into the
// filename, so arbitrary key strings are safe.
func (c *Cache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+".cell")
}
