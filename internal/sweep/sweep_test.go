package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clocksched/internal/telemetry"
)

// jsonCodec round-trips int values for cache tests.
func jsonCodec() Codec {
	return Codec{
		Encode: func(v any) ([]byte, error) { return json.Marshal(v) },
		Decode: func(b []byte) (any, error) {
			var v int
			if err := json.Unmarshal(b, &v); err != nil {
				return nil, err
			}
			return v, nil
		},
	}
}

func TestRunMergesInGridOrder(t *testing.T) {
	const n = 64
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Run: func(context.Context) (any, error) {
			// Stagger completions so late-index cells often finish first.
			time.Sleep(time.Duration((n-i)%7) * time.Millisecond)
			return i * 10, nil
		}}
	}
	out, err := Run(context.Background(), jobs, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if o.Err != nil || o.Value.(int) != i*10 {
			t.Fatalf("cell %d = %+v", i, o)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	jobs := make([]Job, 32)
	for i := range jobs {
		jobs[i] = Job{Run: func(context.Context) (any, error) {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
			return nil, nil
		}}
	}
	if _, err := Run(context.Background(), jobs, Options{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("peak concurrency %d with 3 workers", p)
	}
}

func TestRunCollectsAllErrors(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job{
		{Run: func(context.Context) (any, error) { return 1, nil }},
		{Run: func(context.Context) (any, error) { return nil, boom }},
		{Run: func(context.Context) (any, error) { return nil, fmt.Errorf("other") }},
		{Run: func(context.Context) (any, error) { return 4, nil }},
	}
	out, err := Run(context.Background(), jobs, Options{Workers: 2})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("joined error %v should include boom", err)
	}
	if out[0].Value.(int) != 1 || out[3].Value.(int) != 4 {
		t.Error("healthy cells missing")
	}
	if out[1].Err == nil || out[2].Err == nil {
		t.Error("failed cells lost their errors")
	}
}

func TestRunFailFast(t *testing.T) {
	boom := errors.New("boom")
	var ranLater atomic.Bool
	jobs := make([]Job, 40)
	for i := range jobs {
		switch {
		case i == 0:
			jobs[i] = Job{Run: func(context.Context) (any, error) { return nil, boom }}
		default:
			jobs[i] = Job{Run: func(ctx context.Context) (any, error) {
				time.Sleep(time.Millisecond)
				if i > 20 {
					ranLater.Store(true)
				}
				return i, nil
			}}
		}
	}
	out, err := Run(context.Background(), jobs, Options{Workers: 1, FailFast: true})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	skipped := 0
	for _, o := range out {
		if errors.Is(o.Err, ErrSkipped) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Error("fail-fast ran the whole grid")
	}
	if ranLater.Load() {
		t.Error("cells far past the failure still ran")
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := make([]Job, 30)
	for i := range jobs {
		jobs[i] = Job{Run: func(context.Context) (any, error) {
			if i == 2 {
				cancel()
			}
			return i, nil
		}}
	}
	_, err := Run(ctx, jobs, Options{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunProgress(t *testing.T) {
	// Callbacks may run concurrently and out of order, but each done count
	// must be reported exactly once with the right total.
	var mu sync.Mutex
	seen := map[int]int{}
	jobs := make([]Job, 9)
	for i := range jobs {
		jobs[i] = Job{Run: func(context.Context) (any, error) { return i, nil }}
	}
	_, err := Run(context.Background(), jobs, Options{
		Workers: 4,
		OnProgress: func(done, total int) {
			if total != 9 {
				t.Errorf("total = %d, want 9", total)
			}
			mu.Lock()
			seen[done]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 9 {
		t.Fatalf("%d distinct done counts, want 9", len(seen))
	}
	for d := 1; d <= 9; d++ {
		if seen[d] != 1 {
			t.Errorf("done=%d reported %d times", d, seen[d])
		}
	}
}

// TestRunProgressOutsideLock is the regression test for the progress
// deadlock: OnProgress used to be invoked while holding the pool mutex, so a
// callback that blocked until another cell completed could never be
// satisfied — the completing worker needed the same mutex to finish. With
// the callback outside the lock, a worker blocked in OnProgress must not
// stop other workers from completing cells.
func TestRunProgressOutsideLock(t *testing.T) {
	release := make(chan struct{}, 1)
	var once sync.Once
	done := make(chan struct{})
	go func() {
		defer close(done)
		jobs := make([]Job, 8)
		for i := range jobs {
			jobs[i] = Job{Run: func(context.Context) (any, error) { return i, nil }}
		}
		_, err := Run(context.Background(), jobs, Options{
			Workers: 4,
			OnProgress: func(d, total int) {
				// The first callback to arrive parks until some other
				// worker's callback runs. Under the old
				// callback-inside-lock behaviour both needed the pool
				// mutex, so this deadlocked.
				var first bool
				once.Do(func() { first = true })
				if first {
					<-release
				} else {
					select {
					case release <- struct{}{}:
					default:
					}
				}
			},
		})
		if err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sweep deadlocked: progress callback blocked the pool")
	}
}

// TestRunTelemetryAndStats drives parallel workers against one shared
// registry (the -race soundness case) and checks the pool metrics and
// PoolStats agree with the outcomes.
func TestRunTelemetryAndStats(t *testing.T) {
	reg := telemetry.New()
	c, err := NewCache(64, "", jsonCodec())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("warm", 7); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	jobs := []Job{
		{Key: "warm", Run: func(context.Context) (any, error) { t.Error("warm cell ran"); return nil, nil }},
		{Key: "cold-a", Run: func(context.Context) (any, error) { return 1, nil }},
		{Key: "cold-b", Run: func(context.Context) (any, error) { return 2, nil }},
		{Run: func(context.Context) (any, error) { return nil, boom }},
	}
	var stats PoolStats
	_, err = Run(context.Background(), jobs, Options{
		Workers:   3,
		Cache:     c,
		Telemetry: reg,
		Stats:     &stats,
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	want := PoolStats{Workers: 3, PeakBusy: stats.PeakBusy, Ran: 2, Cached: 1, Failed: 1}
	if stats.PeakBusy < 1 || stats.PeakBusy > 3 {
		t.Errorf("peak busy = %d, want 1..3", stats.PeakBusy)
	}
	if stats != want {
		t.Errorf("stats = %+v, want %+v", stats, want)
	}
	s := reg.Snapshot()
	if s.Counters[telemetry.MSweepCellsRun] != 2 ||
		s.Counters[telemetry.MSweepCellsCached] != 1 ||
		s.Counters[telemetry.MSweepCellsFailed] != 1 {
		t.Errorf("cell counters: %v", s.Counters)
	}
	if s.Counters[telemetry.MCacheHits] != 1 || s.Counters[telemetry.MCacheMisses] != 2 {
		t.Errorf("cache counters: %v", s.Counters)
	}
	// The busy gauge's final value depends on Set interleaving near the
	// end of the sweep; it must only end within the pool's bounds.
	if got := s.Gauges[telemetry.MSweepWorkersBusy]; got < 0 || got >= 3 {
		t.Errorf("busy gauge = %v after sweep, want within [0, workers)", got)
	}
	if got := s.Gauges[telemetry.MSweepWorkersPeak]; got != float64(stats.PeakBusy) {
		t.Errorf("peak gauge = %v, stats peak %d", got, stats.PeakBusy)
	}
	if h := s.Histograms[telemetry.MSweepCellSeconds]; h.Count != 4 {
		t.Errorf("cell timer observed %d cells, want 4", h.Count)
	}
}

func TestRunEmptyGrid(t *testing.T) {
	out, err := Run(context.Background(), nil, Options{})
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestCacheHitsAndLRU(t *testing.T) {
	c, err := NewCache(2, "", jsonCodec())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	// k0 is evicted (capacity 2), k1 and k2 live.
	if _, ok, _ := c.Get("k0"); ok {
		t.Error("k0 survived eviction")
	}
	v, ok, err := c.Get("k2")
	if err != nil || !ok || v.(int) != 2 {
		t.Fatalf("k2 = %v/%v/%v", v, ok, err)
	}
	s := c.Stats()
	if s.Entries != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestCacheDiskLayer(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(8, dir, jsonCodec())
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put("answer", 42); err != nil {
		t.Fatal(err)
	}
	// A fresh cache over the same directory — a later process — hits disk.
	c2, err := NewCache(8, dir, jsonCodec())
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := c2.Get("answer")
	if err != nil || !ok || v.(int) != 42 {
		t.Fatalf("disk layer: %v/%v/%v", v, ok, err)
	}
	if s := c2.Stats(); s.DiskHits != 1 {
		t.Errorf("stats %+v", s)
	}
	// Second read is a memory hit.
	if _, ok, _ := c2.Get("answer"); !ok {
		t.Error("promotion to memory failed")
	}
	if s := c2.Stats(); s.DiskHits != 1 || s.Hits != 2 {
		t.Errorf("stats after promotion %+v", s)
	}
}

func TestCacheCorruptDiskEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(8, dir, jsonCodec())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k", 7); err != nil {
		t.Fatal(err)
	}
	// Find the entry file and corrupt it, then read through a cold cache.
	files, err := filepath.Glob(filepath.Join(dir, "*.cell"))
	if err != nil || len(files) != 1 {
		t.Fatalf("files %v err %v", files, err)
	}
	if err := os.WriteFile(files[0], []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	cold, err := NewCache(8, dir, jsonCodec())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	cold.Instrument(reg)
	if _, ok, err := cold.Get("k"); ok || err != nil {
		t.Fatalf("corrupt entry: ok=%v err=%v", ok, err)
	}
	// The corrupt file is quarantined — deleted so it cannot shadow a fresh
	// result — and counted, both in the stats and on the registry.
	if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
		t.Errorf("corrupt entry file survived quarantine: %v", err)
	}
	if s := cold.Stats(); s.Corrupt != 1 || s.Misses != 1 {
		t.Errorf("stats %+v, want 1 corrupt + 1 miss", s)
	}
	if got := reg.Snapshot().Counters[telemetry.MCacheCorrupt]; got != 1 {
		t.Errorf("%s = %v, want 1", telemetry.MCacheCorrupt, got)
	}
	// After quarantine the key re-Puts cleanly and reads back.
	if err := cold.Put("k", 8); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cold.Get("k"); err != nil || !ok || v.(int) != 8 {
		t.Fatalf("post-quarantine readback: %v/%v/%v", v, ok, err)
	}
}

func TestRunUsesCache(t *testing.T) {
	c, err := NewCache(8, "", jsonCodec())
	if err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int64
	mk := func() []Job {
		jobs := make([]Job, 4)
		for i := range jobs {
			jobs[i] = Job{
				Key: fmt.Sprintf("cell-%d", i),
				Run: func(context.Context) (any, error) {
					runs.Add(1)
					return i, nil
				},
			}
		}
		return jobs
	}
	if _, err := Run(context.Background(), mk(), Options{Workers: 2, Cache: c}); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 4 {
		t.Fatalf("cold sweep ran %d cells", runs.Load())
	}
	out, err := Run(context.Background(), mk(), Options{Workers: 2, Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 4 {
		t.Fatalf("warm sweep re-ran cells: %d total runs", runs.Load())
	}
	for i, o := range out {
		if !o.Cached || o.Value.(int) != i {
			t.Fatalf("cell %d = %+v", i, o)
		}
	}
}
