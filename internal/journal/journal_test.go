package journal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// collect replays the file at path and returns copies of every payload.
func collect(t *testing.T, path string) ([][]byte, ReplayStats) {
	t.Helper()
	var got [][]byte
	stats, err := ReplayFile(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("ReplayFile: %v", err)
	}
	return got, stats
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	w, err := Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	want := [][]byte{[]byte("alpha"), {}, []byte("gamma with\x00binary"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, p := range want {
		if err := w.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := w.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}

	got, stats := collect(t, path)
	if stats.Torn {
		t.Fatal("clean journal reported torn")
	}
	if stats.Records != len(want) {
		t.Fatalf("Records = %d, want %d", stats.Records, len(want))
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != stats.ValidBytes {
		t.Fatalf("file size %d != ValidBytes %d", fi.Size(), stats.ValidBytes)
	}
}

// TestRewrite pins the compaction primitive: the rewritten file holds
// exactly the given payloads, is byte-identical to appending them fresh,
// and replaces the original atomically (no temp file left behind).
func TestRewrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.wal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := w.Append([]byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	live := [][]byte{[]byte("keep-a"), {}, []byte("keep-b")}
	if err := Rewrite(path, live); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}

	got, stats := collect(t, path)
	if stats.Torn || stats.Records != len(live) {
		t.Fatalf("rewritten journal: stats=%+v", stats)
	}
	for i := range live {
		if !bytes.Equal(got[i], live[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], live[i])
		}
	}

	// Byte-identical to a journal built by appending the same payloads.
	fresh := filepath.Join(dir, "fresh.wal")
	fw, err := Create(fresh)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range live {
		if err := fw.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("rewritten journal differs from an append-built one")
	}

	// No rewrite debris in the directory.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "j.wal" && e.Name() != "fresh.wal" {
			t.Fatalf("leftover file %q after rewrite", e.Name())
		}
	}

	// The rewritten log keeps accepting appends.
	w2, stats, err := Open(path, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != len(live) {
		t.Fatalf("resume after rewrite replayed %d records, want %d", stats.Records, len(live))
	}
	if err := w2.Append([]byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ = collect(t, path)
	if len(got) != len(live)+1 || string(got[len(got)-1]) != "new" {
		t.Fatalf("append after rewrite: got %d records", len(got))
	}
}

func TestEmptyAndMissing(t *testing.T) {
	dir := t.TempDir()

	stats, err := ReplayFile(filepath.Join(dir, "nope.wal"), nil)
	if err != nil || stats.Records != 0 || stats.Torn {
		t.Fatalf("missing file: stats=%+v err=%v", stats, err)
	}

	empty := filepath.Join(dir, "empty.wal")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	stats, err = ReplayFile(empty, func([]byte) error { t.Fatal("fn called"); return nil })
	if err != nil || stats.Records != 0 || stats.Torn {
		t.Fatalf("empty file: stats=%+v err=%v", stats, err)
	}
}

func TestResumeAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var replayed [][]byte
	w, stats, err := Open(path, true, func(p []byte) error {
		replayed = append(replayed, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Open resume: %v", err)
	}
	if stats.Records != 1 || stats.Torn {
		t.Fatalf("resume stats = %+v", stats)
	}
	if len(replayed) != 1 || string(replayed[0]) != "one" {
		t.Fatalf("replayed = %q", replayed)
	}
	if err := w.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, stats := collect(t, path)
	if stats.Torn || len(got) != 2 || string(got[0]) != "one" || string(got[1]) != "two" {
		t.Fatalf("after resume-append: got=%q stats=%+v", got, stats)
	}
}

func TestTornTailTruncatedOnResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop the last record in half.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	w, stats, err := Open(path, true, nil)
	if err != nil {
		t.Fatalf("Open resume over torn tail: %v", err)
	}
	if !stats.Torn || stats.Records != 2 {
		t.Fatalf("resume stats = %+v, want Torn with 2 records", stats)
	}
	if err := w.Append([]byte("rec-2-retry")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, stats := collect(t, path)
	if stats.Torn {
		t.Fatalf("journal still torn after resume truncation: %+v", stats)
	}
	want := []string{"rec-0", "rec-1", "rec-2-retry"}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i, s := range want {
		if string(got[i]) != s {
			t.Fatalf("record %d = %q, want %q", i, got[i], s)
		}
	}
}

func TestBadMagicStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, stats, err := Open(path, true, func([]byte) error { t.Fatal("fn called"); return nil })
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !stats.Torn || stats.Records != 0 {
		t.Fatalf("stats = %+v, want torn, 0 records", stats)
	}
	if err := w.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, stats := collect(t, path)
	if stats.Torn || len(got) != 1 || string(got[0]) != "fresh" {
		t.Fatalf("after fresh restart: got=%q stats=%+v", got, stats)
	}
}

func TestOversizeLengthIsTorn(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(fileMagic)
	var hdr [recHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MaxRecord+1)
	binary.LittleEndian.PutUint32(hdr[4:8], 0)
	buf.Write(hdr[:])
	buf.Write(bytes.Repeat([]byte{0xFF}, 64)) // garbage "payload"

	stats, err := Replay(&buf, func([]byte) error { t.Fatal("fn called"); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Torn || stats.Records != 0 {
		t.Fatalf("stats = %+v, want torn with 0 records", stats)
	}
}

func TestChecksumMismatchIsTorn(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(fileMagic)
	payload := []byte("good record")
	var hdr [recHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf.Write(hdr[:])
	buf.Write(payload)
	// Second record with a corrupted byte.
	bad := []byte("evil record")
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(bad)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(bad))
	buf.Write(hdr[:])
	bad[3] ^= 0x40
	buf.Write(bad)

	var got [][]byte
	stats, err := Replay(&buf, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Torn || stats.Records != 1 || len(got) != 1 || string(got[0]) != "good record" {
		t.Fatalf("stats=%+v got=%q, want 1 good record then torn", stats, got)
	}
}

func TestFnErrorAborts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Append([]byte("a"))
	w.Append([]byte("b"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("stop here")
	_, err = ReplayFile(path, func([]byte) error { return wantErr })
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func TestAppendTooLarge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	big := make([]byte, MaxRecord+1)
	if err := w.Append(big); err == nil {
		t.Fatal("Append of oversize record succeeded")
	}
	// The oversize rejection must not poison the writer.
	if err := w.Append([]byte("small")); err != nil {
		t.Fatalf("Append after oversize rejection: %v", err)
	}
}
