package journal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// buildJournal frames three records into an in-memory journal image.
func buildJournal(recs [][]byte) []byte {
	var buf bytes.Buffer
	buf.Write(fileMagic)
	var hdr [recHeader]byte
	for _, p := range recs {
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(p))
		buf.Write(hdr[:])
		buf.Write(p)
	}
	return buf.Bytes()
}

// FuzzJournalReplay is the durability contract under adversarial damage: a
// journal that is truncated at any offset or has any single bit flipped
// must never panic, and every record it does replay must be a faithful
// prefix of what was written. CRC32 detects all single-bit corruption, so a
// flipped record is dropped, never returned mangled.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte("alpha"), []byte("beta"), []byte("gamma"), uint16(0), uint16(0), false)
	f.Add([]byte(`{"k":"cell-0","h":"ab12"}`), []byte{}, []byte{0, 1, 2, 3}, uint16(9), uint16(3), true)
	f.Add([]byte("x"), []byte("y"), []byte("z"), uint16(6), uint16(200), true)

	f.Fuzz(func(t *testing.T, r0, r1, r2 []byte, cut, flipPos uint16, flip bool) {
		recs := [][]byte{r0, r1, r2}
		img := buildJournal(recs)

		if flip {
			// Flip one bit somewhere in the image.
			if len(img) == 0 {
				return
			}
			pos := int(flipPos) % len(img)
			img[pos] ^= 1 << (flipPos % 8)
		} else {
			// Truncate at an arbitrary offset.
			if n := int(cut) % (len(img) + 1); n < len(img) {
				img = img[:n]
			}
		}

		var got [][]byte
		stats, err := Replay(bytes.NewReader(img), func(p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("Replay returned error: %v", err)
		}
		if stats.Records != len(got) {
			t.Fatalf("stats.Records=%d but %d payloads delivered", stats.Records, len(got))
		}
		if len(got) > len(recs) {
			t.Fatalf("replayed %d records from a 3-record journal", len(got))
		}
		// Every replayed record must exactly match the original at its
		// position — damage may shorten the replay but never alter it.
		for i, p := range got {
			if !bytes.Equal(p, recs[i]) {
				t.Fatalf("record %d replayed as %q, want %q (damage leaked through)", i, p, recs[i])
			}
		}
		if stats.ValidBytes > int64(len(img)) {
			t.Fatalf("ValidBytes %d exceeds image size %d", stats.ValidBytes, len(img))
		}
	})
}
