// Package journal is the crash-safe append-only record log underneath
// durable sweeps and the telemetry event spill. A journal file is a magic
// header followed by length-prefixed, CRC32-checksummed records; appends go
// through one writer that can fsync on demand, so a caller gets a real
// write-ahead commit point, and Replay recovers exactly the prefix of
// records that were fully written — a torn or bit-flipped tail is detected
// by the checksum and ignored, never replayed.
//
// The payload is opaque bytes: the sweep layer stores JSON cell-commit
// records, the telemetry layer stores JSON run events. The framing layer
// guarantees only integrity and ordering.
package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// fileMagic opens every journal file and names the format revision; a file
// that does not start with it is not (or no longer) a journal and replays
// as empty.
var fileMagic = []byte("CSWJ1\n")

// MaxRecord bounds one record's payload. The bound exists so a corrupted
// length prefix can never make Replay allocate gigabytes: any larger length
// is treated as damage, ending the valid prefix.
const MaxRecord = 1 << 26 // 64 MiB

// recHeader is the per-record frame: a little-endian uint32 payload length
// followed by the little-endian CRC32 (IEEE) of the payload.
const recHeader = 8

// ErrClosed is returned by appends to a closed writer.
var ErrClosed = errors.New("journal: writer closed")

// ReplayStats summarizes one journal scan.
type ReplayStats struct {
	// Records is the number of intact records replayed.
	Records int
	// ValidBytes is the byte length of the valid prefix — header plus every
	// intact record. Open truncates a resumed journal to this offset.
	ValidBytes int64
	// Torn reports that damage was found past the valid prefix: a missing
	// or wrong magic header, a truncated frame, an oversized length, or a
	// checksum mismatch. Damage is not an error — it is exactly what a
	// crash mid-append leaves behind — but callers may want to count it.
	Torn bool
}

// Replay scans r from the start and calls fn with each intact record's
// payload in append order. Scanning stops at the first sign of damage —
// after which no record is trusted — and reports what was recovered. The
// only error Replay itself returns is fn's: a failed callback aborts the
// scan with that error. The payload slice is reused; fn must copy it to
// retain it.
func Replay(r io.Reader, fn func(payload []byte) error) (ReplayStats, error) {
	var stats ReplayStats
	br := bufio.NewReader(r)

	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		// Empty file: a journal that never got its header (or never
		// existed). Anything shorter than the magic is a torn header.
		if err == io.EOF {
			return stats, nil
		}
		stats.Torn = true
		return stats, nil
	}
	if string(magic) != string(fileMagic) {
		stats.Torn = true
		return stats, nil
	}
	stats.ValidBytes = int64(len(fileMagic))

	var hdr [recHeader]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			stats.Torn = err != io.EOF
			return stats, nil
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > MaxRecord {
			stats.Torn = true
			return stats, nil
		}
		if uint32(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			stats.Torn = true
			return stats, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			stats.Torn = true
			return stats, nil
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return stats, err
			}
		}
		stats.Records++
		stats.ValidBytes += recHeader + int64(n)
	}
}

// ReplayFile replays the journal at path; a missing file replays as empty.
func ReplayFile(path string, fn func(payload []byte) error) (ReplayStats, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return ReplayStats{}, nil
		}
		return ReplayStats{}, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	return Replay(f, fn)
}

// FS is the syscall surface the writer's appends and rewrites run
// through. A nil FS selects the real filesystem; the chaos tests inject a
// *fault.DiskInjector, which implements the same method set, to make the
// disk misbehave deterministically. Only the durable-commit operations are
// abstracted — opens, reads, and truncates happen at boot, before any
// record a caller depends on exists.
type FS interface {
	Write(f *os.File, p []byte) (int, error)
	Sync(f *os.File) error
	Rename(oldpath, newpath string) error
}

// fsWrite, fsSync, and fsRename route one operation through fs, or the
// real filesystem when fs is nil.
func fsWrite(fs FS, f *os.File, p []byte) (int, error) {
	if fs == nil {
		return f.Write(p)
	}
	return fs.Write(f, p)
}

func fsSync(fs FS, f *os.File) error {
	if fs == nil {
		return f.Sync()
	}
	return fs.Sync(f)
}

func fsRename(fs FS, oldpath, newpath string) error {
	if fs == nil {
		return os.Rename(oldpath, newpath)
	}
	return fs.Rename(oldpath, newpath)
}

// fileWriter adapts one (FS, *os.File) pair to io.Writer so the buffered
// append path can sit on top of the injectable surface.
type fileWriter struct {
	fs FS
	f  *os.File
}

func (w fileWriter) Write(p []byte) (int, error) { return fsWrite(w.fs, w.f, p) }

// Writer appends records to one journal file. It is safe for concurrent
// use. Appends are buffered; Sync flushes the buffer and fsyncs the file,
// making everything appended so far the durable commit point.
type Writer struct {
	mu  sync.Mutex
	f   *os.File
	fs  FS
	bw  *bufio.Writer
	err error // first write failure; sticky, so a bad disk fails loudly once
}

// Create opens a fresh journal at path, truncating anything already there,
// and writes the format header.
func Create(path string) (*Writer, error) {
	w, _, err := Open(path, false, nil)
	return w, err
}

// Open opens the journal at path for appending; see OpenFS.
func Open(path string, resume bool, fn func(payload []byte) error) (*Writer, ReplayStats, error) {
	return OpenFS(path, resume, fn, nil)
}

// OpenFS opens the journal at path for appending, routing durable writes
// through fs (nil selects the real filesystem).
//
// With resume false the file is truncated and re-headed: a fresh log.
//
// With resume true the existing file (if any) is replayed through fn —
// exactly like Replay — the torn tail past the valid prefix is truncated
// away, and subsequent appends extend the recovered log. A fn error aborts
// the open. fn may be nil to resume without observing the old records.
func OpenFS(path string, resume bool, fn func(payload []byte) error, fs FS) (*Writer, ReplayStats, error) {
	var stats ReplayStats
	if resume {
		var err error
		stats, err = ReplayFile(path, fn)
		if err != nil {
			return nil, stats, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, stats, fmt.Errorf("journal: %w", err)
	}
	if stats.ValidBytes == 0 {
		// Fresh log (or a file so damaged nothing was recoverable): start
		// over with a clean header.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, stats, fmt.Errorf("journal: %w", err)
		}
		if _, err := f.WriteAt(fileMagic, 0); err != nil {
			f.Close()
			return nil, stats, fmt.Errorf("journal: %w", err)
		}
		stats.ValidBytes = int64(len(fileMagic))
	} else if err := f.Truncate(stats.ValidBytes); err != nil {
		// Drop the torn tail so the next append starts at a record
		// boundary; leaving it would corrupt the first new record.
		f.Close()
		return nil, stats, fmt.Errorf("journal: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(stats.ValidBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, stats, fmt.Errorf("journal: %w", err)
	}
	return &Writer{f: f, fs: fs, bw: bufio.NewWriter(fileWriter{fs: fs, f: f})}, stats, nil
}

// writeRecord frames one payload — length, checksum, bytes — onto w. It is
// the single encoder behind both live appends and Rewrite, so a rewritten
// journal is byte-for-byte what appending the same payloads would produce.
func writeRecord(w io.Writer, payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("journal: record of %d bytes exceeds MaxRecord", len(payload))
	}
	var hdr [recHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Append frames and buffers one record. The record is not durable until
// Sync (or Close) returns.
func (w *Writer) Append(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := writeRecord(w.bw, payload); err != nil {
		if len(payload) <= MaxRecord {
			// An oversized record is the caller's mistake, not a broken
			// file; only real write failures poison the writer.
			w.err = err
		}
		return err
	}
	return nil
}

// Sync flushes buffered records and fsyncs the file: the write-ahead
// commit. Everything appended before a successful Sync survives process
// death and power loss.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	if w.err != nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
		return err
	}
	if err := fsSync(w.fs, w.f); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Rewrite atomically replaces the journal at path with a fresh one holding
// exactly the given payloads, in order; see RewriteFS.
func Rewrite(path string, payloads [][]byte) error {
	return RewriteFS(path, payloads, nil)
}

// RewriteFS atomically replaces the journal at path with a fresh one
// holding exactly the given payloads, in order, routing durable writes
// through fs (nil selects the real filesystem). The new log is assembled
// in a temporary file in the same directory, fsynced, and renamed over the
// original, so a crash at any point leaves either the old journal or the
// complete new one — never a mix (on a filesystem with atomic rename; a
// torn rename leaves a prefix the CRC framing detects on the next replay).
// This is the primitive under journal compaction: the caller replays the
// old log, decides which records are still live, and rewrites.
func RewriteFS(path string, payloads [][]byte, fs FS) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".rewrite-*")
	if err != nil {
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op once the rename lands

	bw := bufio.NewWriter(fileWriter{fs: fs, f: tmp})
	werr := func() error {
		if _, err := bw.Write(fileMagic); err != nil {
			return err
		}
		for _, p := range payloads {
			if err := writeRecord(bw, p); err != nil {
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		return fsSync(fs, tmp)
	}()
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("journal: rewrite: %w", werr)
	}
	if err := fsRename(fs, tmp.Name(), path); err != nil {
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	// Best-effort directory sync so the rename itself survives power loss;
	// filesystems that cannot fsync a directory still got the atomic rename.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// Close syncs and closes the file. Further appends return ErrClosed.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == ErrClosed {
		return nil
	}
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.err = ErrClosed
	return err
}
