package kernel

import (
	"errors"
	"fmt"

	"clocksched/internal/cpu"
	"clocksched/internal/fault"
	"clocksched/internal/power"
	"clocksched/internal/sim"
	"clocksched/internal/telemetry"
)

// SpeedPolicy is the installable clock scaling policy module. The kernel
// calls it from the clock-interrupt handler at every quantum with the
// utilization of the quantum that just ended (PP10K: busy microseconds per
// 10 ms quantum) and the current clock step and core voltage; it returns
// the settings for the next quantum. policy.Governor and policy.Constant
// satisfy this interface.
type SpeedPolicy interface {
	OnQuantum(now sim.Time, utilPP10K int, s cpu.Step, v cpu.Voltage) (cpu.Step, cpu.Voltage)
}

// Config configures a kernel instance.
type Config struct {
	// Policy is the clock scaling module; nil runs at the initial
	// settings forever (no module installed).
	Policy SpeedPolicy
	// InitialStep and InitialV are the boot clock settings.
	InitialStep cpu.Step
	InitialV    cpu.Voltage
	// Model is the power model used for the energy timeline.
	Model power.Model
	// Quantum is the scheduling quantum; zero selects the Linux default
	// of 10 ms.
	Quantum sim.Duration
	// SchedOverhead is the execution overhead of forcing the scheduler to
	// run every quantum; the paper measured about 6 µs per 10 ms
	// interval (0.06%). It is charged as busy time. Zero means zero.
	SchedOverhead sim.Duration
	// SchedLogCap bounds the scheduler activity log, reproducing the
	// paper's instrumentation artifact: "Due to kernel memory
	// limitations, we could only capture a subset of the process
	// behavior." Zero means unbounded; once the cap is reached, further
	// decisions go unrecorded (scheduling itself is unaffected).
	// A non-zero cap implies RetainSchedLog.
	SchedLogCap int
	// RetainSchedLog keeps the full []SchedEntry record list for
	// SchedLog(). By default the kernel folds every decision into the
	// running LogStats digest and discards the record: a long run makes
	// hundreds of thousands of decisions, and retaining them all was the
	// single largest allocation of a sweep cell. AnalyzeLog works either
	// way and reports identical numbers.
	RetainSchedLog bool
	// Faults, when non-nil, injects hardware and kernel misbehaviour:
	// failed clock changes, extended PLL stalls, timer jitter, and
	// dropped or delayed scheduler-log records. Nil injects nothing and
	// leaves the simulation bit-identical to a fault-free build.
	Faults *fault.Injector
	// EventCap bounds how many engine events the run may fire; a run
	// exceeding it aborts with a diagnostic instead of hanging. Zero
	// leaves the engine's own MaxEvents setting untouched.
	EventCap uint64
	// CheckCancel, when non-nil, is polled at every quantum boundary
	// (before the policy module runs); a non-nil return aborts the run
	// with that error. It is how context cancellation reaches the virtual
	// clock: the simulation never blocks, so the quantum tick is the
	// natural — and deterministic — preemption point.
	CheckCancel func() error
	// Telemetry, when non-nil, receives live quantum/idle/speed-change
	// metrics and also instruments the engine. Nil disables instrumentation
	// at the cost of one nil check per operation on the hot path.
	Telemetry *telemetry.Registry
}

// DefaultConfig returns the paper's measurement configuration: no policy
// module, full speed at 1.5 V, the calibrated power model, 10 ms quanta,
// and the measured 6 µs scheduler overhead.
func DefaultConfig() Config {
	return Config{
		InitialStep:   cpu.MaxStep,
		InitialV:      cpu.VHigh,
		Model:         power.DefaultModel(),
		Quantum:       sim.Quantum,
		SchedOverhead: 6 * sim.Microsecond,
	}
}

// SchedEntry is one record of the scheduler activity log: which process was
// scheduled, when (microsecond resolution), and the clock rate at the time.
type SchedEntry struct {
	At  sim.Time
	PID int
	KHz int64
}

// UtilSample is one quantum's utilization as the policy module saw it.
type UtilSample struct {
	At     sim.Time // end of the quantum
	PP10K  int      // busy fraction, parts per 10000
	StepAt cpu.Step // clock step during the quantum
}

// Kernel is the simulated operating system.
type Kernel struct {
	eng *sim.Engine
	cfg Config

	procs []*Process
	// runq is a head-indexed ring: popping advances runqHead instead of
	// re-slicing, so the round-robin queue churns no memory. The slice
	// compacts when the dead prefix grows large and resets when drained.
	runq     []*Process
	runqHead int
	cur      *Process
	nextPID  int

	// Event callbacks bound once in New. The clock interrupt re-arms
	// itself every quantum; binding the method value once means re-arming
	// allocates nothing (a `k.tick` method-value expression allocates a
	// fresh closure at every evaluation).
	tickFn       sim.Event
	stallEndFn   sim.Event
	voltSettleFn sim.Event

	// powerW memoizes cfg.Model.Power for every (step, voltage, mode)
	// combination — the state space is tiny (11×2×3) and setPowerState
	// runs several times per quantum.
	powerW [cpu.NumSteps][2][3]float64

	step cpu.Step
	volt cpu.Voltage
	// powerVolt lags volt by the settle time on downward changes: the
	// supply drains slowly through the decoupling capacitors, so the
	// power rail stays at the old level for VoltageSettleDown.
	powerVolt cpu.Voltage

	stalling   bool
	completion sim.Handle // pending burst-completion event for cur

	lastAccount   sim.Time
	busyQuantum   sim.Duration
	rec           *power.Recorder
	schedLog      []SchedEntry
	logStats      logTally
	utilLog       []UtilSample
	speedChanges  int
	failedChanges int
	voltChanges   int
	stallTime     sim.Duration

	residency    [cpu.NumSteps]sim.Duration
	lastResStamp sim.Time

	// inProgram guards against reentrant dispatch: a program's Next (or
	// an action's SideEffect) may call Wake, which must then only queue
	// the woken process, not start it while the caller still holds the
	// scheduling state.
	inProgram bool

	finished bool
	// err is the first internal failure; once set the engine is halted
	// and Run returns it instead of a result.
	err error

	// Telemetry instruments, resolved once in New; all nil (no-op) when
	// Config.Telemetry is nil.
	telQuanta  *telemetry.Counter
	telUtil    *telemetry.Histogram
	telIdle    *telemetry.Counter
	telSpeed   *telemetry.Counter
	telFailed  *telemetry.Counter
	telVolt    *telemetry.Counter
	telStallUs *telemetry.Counter
}

// Structured failure classes a run can report. Callers match them with
// errors.Is on the error returned by Run.
var (
	// ErrProgramSpin: a program returned zero-length actions without
	// bound, so the simulation could make no progress.
	ErrProgramSpin = errors.New("kernel: program spins on zero-length actions")
	// ErrUnknownAction: a program returned an action kind the kernel
	// does not implement.
	ErrUnknownAction = errors.New("kernel: program returned unknown action")
)

// fail records the first internal failure and halts the engine, so the run
// unwinds back to Run with a diagnostic instead of panicking mid-event.
func (k *Kernel) fail(err error) {
	if err == nil {
		return
	}
	if k.err == nil {
		k.err = err
	}
	k.eng.Fail(err)
}

// New creates a kernel on the given engine. The engine must be at time 0.
func New(eng *sim.Engine, cfg Config) (*Kernel, error) {
	if eng == nil {
		return nil, errors.New("kernel: nil engine")
	}
	if eng.Now() != 0 {
		return nil, fmt.Errorf("kernel: engine already at %v", eng.Now())
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = sim.Quantum
	}
	if cfg.Quantum < 0 {
		return nil, fmt.Errorf("kernel: negative quantum %v", cfg.Quantum)
	}
	if cfg.SchedOverhead < 0 || cfg.SchedOverhead >= cfg.Quantum {
		return nil, fmt.Errorf("kernel: scheduler overhead %v out of range", cfg.SchedOverhead)
	}
	if !cfg.InitialStep.Valid() {
		return nil, fmt.Errorf("kernel: invalid initial step %d", int(cfg.InitialStep))
	}
	if !cpu.VoltageOK(cfg.InitialStep, cfg.InitialV) {
		return nil, fmt.Errorf("kernel: %v unsafe at %v", cfg.InitialV, cfg.InitialStep)
	}
	k := &Kernel{
		eng:       eng,
		cfg:       cfg,
		nextPID:   1,
		step:      cfg.InitialStep,
		volt:      cfg.InitialV,
		powerVolt: cfg.InitialV,
	}
	k.rec = power.NewRecorder(cfg.Model, power.State{
		Step: k.step, V: k.powerVolt, Mode: power.ModeNap,
	})
	k.tickFn = k.tick
	k.stallEndFn = func(t sim.Time) {
		k.account(t)
		k.stalling = false
		k.dispatch(t)
	}
	k.voltSettleFn = func(t sim.Time) {
		if k.volt == cpu.VLow {
			k.powerVolt = cpu.VLow
			k.setPowerState(t)
		}
	}
	for s := cpu.MinStep; s <= cpu.MaxStep; s++ {
		for _, v := range []cpu.Voltage{cpu.VHigh, cpu.VLow} {
			for _, m := range []power.Mode{power.ModeNap, power.ModeActive, power.ModeStall} {
				k.powerW[s][v][m] = cfg.Model.Power(power.State{Step: s, V: v, Mode: m})
			}
		}
	}
	reg := cfg.Telemetry
	k.telQuanta = reg.Counter(telemetry.MKernelQuanta)
	k.telUtil = reg.Histogram(telemetry.MKernelQuantumUtil, telemetry.UtilBuckets)
	k.telIdle = reg.Counter(telemetry.MKernelIdleDispatch)
	k.telSpeed = reg.Counter(telemetry.MKernelSpeedChanges)
	k.telFailed = reg.Counter(telemetry.MKernelFailedSpeed)
	k.telVolt = reg.Counter(telemetry.MKernelVoltChanges)
	k.telStallUs = reg.Counter(telemetry.MKernelStallMicros)
	eng.Instrument(reg)
	return k, nil
}

// Engine returns the simulation engine, for scheduling external events
// (e.g. input-trace wakeups) against the same clock.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Step returns the current clock step.
func (k *Kernel) Step() cpu.Step { return k.step }

// Voltage returns the current core voltage.
func (k *Kernel) Voltage() cpu.Voltage { return k.volt }

// Recorder returns the power timeline. It is complete only after Run.
func (k *Kernel) Recorder() *power.Recorder { return k.rec }

// SchedLog returns the scheduler activity log.
func (k *Kernel) SchedLog() []SchedEntry { return k.schedLog }

// UtilLog returns the per-quantum utilization log.
func (k *Kernel) UtilLog() []UtilSample { return k.utilLog }

// SpeedChanges returns how many clock-step changes the policy made.
func (k *Kernel) SpeedChanges() int { return k.speedChanges }

// FailedSpeedChanges returns how many requested clock-step changes were
// lost to injected clock-change failures.
func (k *Kernel) FailedSpeedChanges() int { return k.failedChanges }

// VoltageChanges returns how many core-voltage changes the policy made.
func (k *Kernel) VoltageChanges() int { return k.voltChanges }

// StallTime returns the total time lost to PLL relock stalls.
func (k *Kernel) StallTime() sim.Duration { return k.stallTime }

// Residency returns the time spent at each clock step.
func (k *Kernel) Residency() [cpu.NumSteps]sim.Duration { return k.residency }

// Processes returns all spawned processes (excluding the implicit idle
// process).
func (k *Kernel) Processes() []*Process { return k.procs }

// Spawn creates a runnable process executing prog. It must be called before
// or during Run, at the engine's current time.
func (k *Kernel) Spawn(prog Program) (*Process, error) {
	if prog == nil {
		return nil, errors.New("kernel: nil program")
	}
	if k.finished {
		return nil, errors.New("kernel: Spawn after Run completed")
	}
	p := &Process{pid: k.nextPID, name: prog.Name(), prog: prog, kind: ActSleepFor}
	p.completeFn = func(t sim.Time) { k.onCompletion(p, t) }
	p.wakeFn = func(sim.Time) {
		if p.state == StateSleeping {
			k.Wake(p)
		}
	}
	k.nextPID++
	k.procs = append(k.procs, p)
	// The process's first action is fetched when it is first scheduled.
	p.state = StateRunnable
	k.runq = append(k.runq, p)
	if k.cur == nil && !k.stalling {
		k.dispatch(k.eng.Now())
	}
	return p, nil
}

// Wake makes a waiting or sleeping process runnable, as an interrupt
// delivering an input event would. Waking a runnable or exited process is a
// no-op.
func (k *Kernel) Wake(p *Process) {
	if p == nil || (p.state != StateWaiting && p.state != StateSleeping) {
		return
	}
	k.eng.Cancel(p.wake)
	p.state = StateRunnable
	k.runq = append(k.runq, p)
	if k.cur == nil && !k.stalling && !k.inProgram {
		k.account(k.eng.Now())
		k.dispatch(k.eng.Now())
	}
}

// Run executes the simulation until the given time, then closes the power
// timeline. It may be called once. An internal inconsistency — a spinning
// program, an unschedulable event, a regressing power timeline, or the
// configured event cap — aborts the run and is returned as a wrapped,
// structured error; Run never panics on them.
func (k *Kernel) Run(until sim.Time) error {
	if k.finished {
		return errors.New("kernel: Run called twice")
	}
	if until <= k.eng.Now() {
		return fmt.Errorf("kernel: Run until %v is not in the future", until)
	}
	if k.cfg.EventCap > 0 {
		k.eng.MaxEvents = k.cfg.EventCap
	}
	// Preallocate the utilization log (one sample per quantum, so the
	// final size is known up front) and hint the power timeline's density
	// (a handful of mode changes per quantum in the common case).
	quanta := int((until - k.eng.Now()) / k.cfg.Quantum)
	if n := quanta + 2; cap(k.utilLog) < n {
		k.utilLog = make([]UtilSample, len(k.utilLog), n)
	}
	k.rec.Grow(quanta*2 + 16)
	// Arm the periodic clock interrupt.
	if _, err := k.eng.At(k.eng.Now()+k.cfg.Quantum, k.tickFn); err != nil {
		return err
	}
	if k.cur == nil && !k.stalling {
		k.dispatch(k.eng.Now())
	}
	err := k.eng.RunUntil(until)
	k.finished = true
	if k.err == nil && err != nil {
		k.err = err
	}
	if k.err != nil {
		return fmt.Errorf("kernel: run aborted at %v: %w", k.eng.Now(), k.err)
	}
	k.account(until)
	k.stampResidency(until)
	if err := k.rec.Finish(until); err != nil {
		return fmt.Errorf("kernel: closing power timeline: %w", err)
	}
	return nil
}

// --- internals ---

// account attributes the time since lastAccount to the current activity:
// busy time for a running process or a stall, progress for the running
// action.
func (k *Kernel) account(now sim.Time) {
	dt := now - k.lastAccount
	if dt <= 0 {
		return
	}
	k.lastAccount = now
	if k.stalling {
		k.busyQuantum += dt
		k.stallTime += dt
		return
	}
	if k.cur != nil {
		k.busyQuantum += dt
		k.cur.advanceBy(dt, k.step)
	}
}

func (k *Kernel) stampResidency(now sim.Time) {
	k.residency[k.step] += now - k.lastResStamp
	k.lastResStamp = now
}

// logDecision records one scheduling decision, honouring the configured
// log capacity (the paper's kernel-memory limitation) and any injected
// trace faults: a record can be dropped outright or written with a late
// timestamp, leaving the log non-monotonic the way deferred log writes on
// real hardware would. Every surviving record is folded into the running
// LogStats tally; the record itself is kept only when retention is on.
func (k *Kernel) logDecision(e SchedEntry) {
	if k.cfg.SchedLogCap > 0 && k.logStats.decisions >= k.cfg.SchedLogCap {
		return
	}
	if k.cfg.Faults.DropTraceEvent() {
		return
	}
	e.At += k.cfg.Faults.TraceDelay()
	k.logStats.note(e)
	if k.cfg.RetainSchedLog || k.cfg.SchedLogCap > 0 {
		k.schedLog = append(k.schedLog, e)
	}
}

// setPowerState pushes the current mode/step/voltage to the recorder,
// through the memoized power table.
func (k *Kernel) setPowerState(now sim.Time) {
	mode := power.ModeNap
	switch {
	case k.stalling:
		mode = power.ModeStall
	case k.cur != nil:
		mode = power.ModeActive
	}
	if err := k.rec.SetWatts(now, k.powerW[k.step][k.powerVolt][mode]); err != nil {
		k.fail(err)
	}
}

// tick is the 100 Hz clock interrupt with the forced per-quantum scheduler
// invocation: account utilization, run the policy module, then round-robin.
func (k *Kernel) tick(now sim.Time) {
	if k.cfg.CheckCancel != nil {
		if err := k.cfg.CheckCancel(); err != nil {
			k.fail(fmt.Errorf("cancelled at quantum boundary: %w", err))
			return
		}
	}
	if k.cfg.Faults.RunAborts() {
		k.fail(fmt.Errorf("fault injection at quantum boundary: %w", fault.ErrCellAbort))
		return
	}
	k.account(now)

	// Charge the forced-rescheduling overhead as busy time.
	k.busyQuantum += k.cfg.SchedOverhead

	util := int(k.busyQuantum * 10000 / k.cfg.Quantum)
	if util > 10000 {
		util = 10000
	}
	k.utilLog = append(k.utilLog, UtilSample{At: now, PP10K: util, StepAt: k.step})
	k.busyQuantum = 0
	k.telQuanta.Inc()
	k.telUtil.Observe(float64(util) / 10000)

	if k.cfg.Policy != nil {
		s, v := k.cfg.Policy.OnQuantum(now, util, k.step, k.volt)
		k.applySettings(now, s, v)
	}

	// Round-robin: the running process goes to the back of the queue.
	if k.cur != nil {
		k.eng.Cancel(k.completion)
		p := k.cur
		k.cur = nil
		if p.actionDone(now) {
			k.advanceProgram(p, now)
		}
		if p.state == StateRunnable {
			k.runq = append(k.runq, p)
		}
	}
	if !k.stalling {
		k.dispatch(now)
	}

	// Re-arm the interrupt, late when the injected timer jitter says so.
	// Subsequent ticks re-align to the stretched schedule, so a jittered
	// quantum runs long rather than the next one running short.
	if _, err := k.eng.At(now+k.cfg.Quantum+k.cfg.Faults.TimerJitter(), k.tickFn); err != nil {
		k.fail(fmt.Errorf("re-arming clock interrupt: %w", err))
	}
}

// applySettings moves the clock step and voltage, modelling the PLL stall
// and the voltage settle. An injected clock-change failure leaves the step
// untouched with no stall: the policy only learns of it from the unchanged
// step at the next quantum.
func (k *Kernel) applySettings(now sim.Time, s cpu.Step, v cpu.Voltage) {
	s = s.Clamp()
	if !cpu.VoltageOK(s, v) {
		v = cpu.VHigh
	}
	if v != k.volt {
		k.voltChanges++
		k.telVolt.Inc()
		old := k.volt
		k.volt = v
		if v == cpu.VLow && old == cpu.VHigh {
			// Dropping: the rail stays high for the settle time.
			if _, err := k.eng.At(now+cpu.VoltageSettleDown, k.voltSettleFn); err != nil {
				k.fail(fmt.Errorf("scheduling voltage settle: %w", err))
			}
		} else {
			// Rising is effectively instantaneous.
			k.powerVolt = v
		}
	}
	if s != k.step {
		if k.cfg.Faults.ClockChangeFails() {
			k.failedChanges++
			k.telFailed.Inc()
		} else {
			k.speedChanges++
			k.telSpeed.Inc()
			k.stampResidency(now)
			k.step = s
			k.beginStall(now, cpu.ClockChangeStall+k.cfg.Faults.ExtraSettle())
		}
	}
	k.setPowerState(now)
}

// beginStall suspends execution while the PLL relocks, for the given stall
// time (the nominal 200 µs plus any injected extension).
func (k *Kernel) beginStall(now sim.Time, stall sim.Duration) {
	// Preempt whatever is running; progress stops during the stall.
	if k.cur != nil {
		k.eng.Cancel(k.completion)
		p := k.cur
		k.cur = nil
		if p.state == StateRunnable {
			k.runq = append(k.runq, p)
		}
	}
	k.stalling = true
	k.telStallUs.Add(int64(stall))
	k.setPowerState(now)
	if _, err := k.eng.At(now+stall, k.stallEndFn); err != nil {
		k.fail(fmt.Errorf("scheduling PLL relock: %w", err))
	}
}

// runqLen reports how many processes are queued.
func (k *Kernel) runqLen() int { return len(k.runq) - k.runqHead }

// runqPop removes and returns the process at the head of the run queue.
func (k *Kernel) runqPop() *Process {
	p := k.runq[k.runqHead]
	k.runq[k.runqHead] = nil
	k.runqHead++
	switch {
	case k.runqHead == len(k.runq):
		// Drained: reclaim the whole slice.
		k.runq = k.runq[:0]
		k.runqHead = 0
	case k.runqHead >= 64 && k.runqHead > len(k.runq)/2:
		// The dead prefix dominates: slide the live tail down.
		n := copy(k.runq, k.runq[k.runqHead:])
		for i := n; i < len(k.runq); i++ {
			k.runq[i] = nil
		}
		k.runq = k.runq[:n]
		k.runqHead = 0
	}
	return p
}

// dispatch picks the next runnable process and starts it, or enters nap.
// It must be called with no current process and no stall in progress.
func (k *Kernel) dispatch(now sim.Time) {
	for k.cur == nil {
		if k.runqLen() == 0 {
			// Idle: pid 0 runs and the power manager naps the core.
			k.telIdle.Inc()
			k.logDecision(SchedEntry{At: now, PID: 0, KHz: k.step.KHz()})
			k.setPowerState(now)
			return
		}
		p := k.runqPop()
		if p.state != StateRunnable {
			continue
		}
		if p.actionDone(now) {
			k.advanceProgram(p, now)
			if p.state != StateRunnable {
				continue
			}
		}
		k.cur = p
		k.lastAccount = now
		k.logDecision(SchedEntry{At: now, PID: p.pid, KHz: k.step.KHz()})
		k.setPowerState(now)
		k.armCompletion(p, now)
	}
}

// armCompletion schedules the event marking the end of cur's action. The
// callback is the process's prebound completeFn, so arming allocates no
// closure; staleness is handled by the k.cur != p guard plus the engine's
// handle cancellation.
func (k *Kernel) armCompletion(p *Process, now sim.Time) {
	d := p.timeToFinish(now, k.step)
	h, err := k.eng.At(now+d, p.completeFn)
	if err != nil {
		k.fail(fmt.Errorf("scheduling completion of %q: %w", p.name, err))
		return
	}
	k.completion = h
}

// onCompletion handles the end of p's current action.
func (k *Kernel) onCompletion(p *Process, t sim.Time) {
	k.account(t)
	if k.cur != p {
		return // stale event; the process was preempted
	}
	k.cur = nil
	k.advanceProgram(p, t)
	if p.state == StateRunnable {
		// Continue in the same quantum: the process keeps the CPU.
		k.cur = p
		k.lastAccount = t
		k.setPowerState(t)
		k.armCompletion(p, t)
		return
	}
	k.dispatch(t)
}

// maxProgramSteps bounds how many zero-length actions a program may return
// consecutively before the kernel declares it broken.
const maxProgramSteps = 10000

// advanceProgram fetches actions from p's program until one takes time or
// blocks, updating the process state accordingly.
func (k *Kernel) advanceProgram(p *Process, now sim.Time) {
	wasInProgram := k.inProgram
	k.inProgram = true
	defer func() { k.inProgram = wasInProgram }()
	for i := 0; ; i++ {
		if i >= maxProgramSteps {
			// Quarantine the broken program and abort the run: leaving it
			// runnable would wedge the scheduler.
			p.state = StateExited
			k.fail(fmt.Errorf("%w: %q", ErrProgramSpin, p.name))
			return
		}
		a := p.prog.Next(now)
		if a.SideEffect != nil {
			a.SideEffect(now)
		}
		p.kind = a.Kind
		switch a.Kind {
		case ActCompute:
			if a.Burst.Zero() {
				continue
			}
			p.exec = cpu.StartExecution(a.Burst)
			return
		case ActComputeFor:
			if a.Dur <= 0 {
				continue
			}
			p.remaining = a.Dur
			return
		case ActSpinUntil:
			if a.Until <= now {
				continue
			}
			p.until = a.Until
			return
		case ActSleepFor:
			if a.Dur <= 0 {
				continue
			}
			k.sleepUntil(p, now+a.Dur)
			return
		case ActSleepUntil:
			if a.Until <= now {
				continue
			}
			k.sleepUntil(p, a.Until)
			return
		case ActWaitEvent:
			p.state = StateWaiting
			return
		case ActExit:
			p.state = StateExited
			return
		default:
			p.state = StateExited
			k.fail(fmt.Errorf("%w: %q returned %v", ErrUnknownAction, p.name, a.Kind))
			return
		}
	}
}

func (k *Kernel) sleepUntil(p *Process, t sim.Time) {
	p.state = StateSleeping
	h, err := k.eng.At(t, p.wakeFn)
	if err != nil {
		k.fail(fmt.Errorf("scheduling wakeup of %q: %w", p.name, err))
		return
	}
	p.wake = h
}
