// Package kernel simulates the slice of Linux 2.0.30 that the paper
// instruments: a round-robin process scheduler driven by the 100 Hz system
// clock with the scheduler forced to run every 10 ms quantum, an idle
// process (pid 0) that puts the processor into a low-power nap, per-quantum
// CPU-utilization accounting read and cleared by an installable clock
// scaling policy module, and a scheduler activity log recording the process
// identifier, the microsecond-resolution time, and the current clock rate
// of every scheduling decision.
package kernel

import (
	"fmt"

	"clocksched/internal/cpu"
	"clocksched/internal/sim"
)

// ActionKind enumerates what a simulated program can ask the kernel for.
type ActionKind int

const (
	// ActCompute executes a burst of frequency-dependent work (cycles and
	// memory references); its wall-clock time shrinks as the clock rises.
	ActCompute ActionKind = iota
	// ActComputeFor is busy for a fixed wall-clock duration regardless of
	// clock speed — e.g. Crafty planning moves "for specific periods of
	// time", or a busy-wait calibrated in time.
	ActComputeFor
	// ActSpinUntil busy-waits until an absolute time — the MPEG player's
	// spin loop when a frame is ready less than 12 ms early.
	ActSpinUntil
	// ActSleepFor blocks for a duration (timer sleep).
	ActSleepFor
	// ActSleepUntil blocks until an absolute time.
	ActSleepUntil
	// ActWaitEvent blocks until the process is woken externally — an
	// input event arriving from a replayed trace.
	ActWaitEvent
	// ActExit terminates the process.
	ActExit
)

// String names the action kind.
func (k ActionKind) String() string {
	switch k {
	case ActCompute:
		return "compute"
	case ActComputeFor:
		return "compute-for"
	case ActSpinUntil:
		return "spin-until"
	case ActSleepFor:
		return "sleep-for"
	case ActSleepUntil:
		return "sleep-until"
	case ActWaitEvent:
		return "wait-event"
	case ActExit:
		return "exit"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is one step of a simulated program.
type Action struct {
	Kind  ActionKind
	Burst cpu.Burst    // ActCompute
	Dur   sim.Duration // ActComputeFor, ActSleepFor
	Until sim.Time     // ActSpinUntil, ActSleepUntil
	// SideEffect, if set, runs when the kernel picks the action up —
	// i.e. when the preceding action has completed. Programs use it to
	// signal other processes (for example, handing text to a speech
	// synthesizer once the file has been read). It may call Kernel.Wake.
	SideEffect func(now sim.Time)
}

// Convenience constructors keep workload code readable.

// Compute returns an action executing the burst.
func Compute(b cpu.Burst) Action { return Action{Kind: ActCompute, Burst: b} }

// ComputeFor returns an action that is busy for a fixed wall-clock span.
func ComputeFor(d sim.Duration) Action { return Action{Kind: ActComputeFor, Dur: d} }

// SpinUntil returns an action that busy-waits until t.
func SpinUntil(t sim.Time) Action { return Action{Kind: ActSpinUntil, Until: t} }

// SleepFor returns an action that blocks for d.
func SleepFor(d sim.Duration) Action { return Action{Kind: ActSleepFor, Dur: d} }

// SleepUntil returns an action that blocks until t.
func SleepUntil(t sim.Time) Action { return Action{Kind: ActSleepUntil, Until: t} }

// WaitEvent returns an action that blocks until an external wake.
func WaitEvent() Action { return Action{Kind: ActWaitEvent} }

// Exit returns the terminating action.
func Exit() Action { return Action{Kind: ActExit} }

// Program is the behaviour of one simulated process. The kernel calls Next
// whenever the previous action has completed; now is the current virtual
// time. Programs must be deterministic given their own state and the times
// they observe.
type Program interface {
	Next(now sim.Time) Action
	Name() string
}

// ProgramFunc adapts a closure into a Program.
type ProgramFunc struct {
	ProgName string
	Fn       func(now sim.Time) Action
}

// Next implements Program.
func (p ProgramFunc) Next(now sim.Time) Action { return p.Fn(now) }

// Name implements Program.
func (p ProgramFunc) Name() string { return p.ProgName }
