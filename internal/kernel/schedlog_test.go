package kernel

import (
	"strings"
	"testing"

	"clocksched/internal/cpu"
	"clocksched/internal/sim"
)

func TestAnalyzeLogIdleOnly(t *testing.T) {
	_, k := newKernel(t, DefaultConfig())
	if err := k.Run(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	st := k.AnalyzeLog()
	if st.Decisions == 0 {
		t.Fatal("no decisions logged")
	}
	if st.IdleDecisions != st.Decisions {
		t.Errorf("idle system logged %d idle of %d decisions", st.IdleDecisions, st.Decisions)
	}
	if len(st.RatesSeen) != 1 || st.RatesSeen[0] != cpu.MaxStep.KHz() {
		t.Errorf("rates seen = %v", st.RatesSeen)
	}
	if len(st.Shares) != 0 {
		t.Errorf("idle system has %d process shares", len(st.Shares))
	}
}

func TestAnalyzeLogTwoProcesses(t *testing.T) {
	_, k := newKernel(t, DefaultConfig())
	a, _ := k.Spawn(busyLoop{burst: cpu.Burst{Core: 500_000}})
	b, _ := k.Spawn(busyLoop{burst: cpu.Burst{Core: 500_000}})
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	st := k.AnalyzeLog()
	if len(st.Shares) != 2 {
		t.Fatalf("%d shares", len(st.Shares))
	}
	if st.Shares[0].PID != a.PID() || st.Shares[1].PID != b.PID() {
		t.Errorf("shares out of pid order: %+v", st.Shares)
	}
	for _, sh := range st.Shares {
		if sh.Decisions == 0 || sh.CPUTime == 0 || sh.Name != "busy" {
			t.Errorf("share incomplete: %+v", sh)
		}
	}
	// Round-robin between two runnables switches pids constantly.
	if st.Switches < 90 {
		t.Errorf("only %d switches over 100 quanta", st.Switches)
	}
	if st.IdleDecisions != 0 {
		t.Errorf("idle picked %d times with two busy loops", st.IdleDecisions)
	}
}

func TestAnalyzeLogSeesRateChanges(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = &stepPolicy{to: cpu.MinStep, v: cpu.VHigh}
	_, k := newKernel(t, cfg)
	k.Spawn(busyLoop{burst: cpu.Burst{Core: 500_000}})
	if err := k.Run(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	st := k.AnalyzeLog()
	if len(st.RatesSeen) != 2 {
		t.Errorf("rates seen = %v, want both 59MHz and 206.4MHz", st.RatesSeen)
	}
	text := st.Render()
	if !strings.Contains(text, "59.0MHz") || !strings.Contains(text, "206.4MHz") {
		t.Errorf("render = %q", text)
	}
	if !strings.Contains(text, "busy") {
		t.Error("render missing process name")
	}
}

func TestSchedLogCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SchedLogCap = 25
	_, k := newKernel(t, cfg)
	k.Spawn(busyLoop{burst: cpu.Burst{Core: 500_000}})
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(k.SchedLog()); got != 25 {
		t.Errorf("log has %d entries, want capped at 25", got)
	}
	// Scheduling itself is unaffected: the process still ran the whole
	// second.
	if got := k.Processes()[0].CPUTime(); got < sim.Second-20*sim.Millisecond {
		t.Errorf("capped log disturbed scheduling: CPU time %v", got)
	}
	// Utilization accounting is independent of the log cap.
	if got := len(k.UtilLog()); got != 100 {
		t.Errorf("utilization log has %d samples", got)
	}
}
