package kernel

import (
	"fmt"

	"clocksched/internal/cpu"
	"clocksched/internal/sim"
)

// ProcState is a process's scheduling state.
type ProcState int

const (
	// StateRunnable: on the run queue (or currently running).
	StateRunnable ProcState = iota
	// StateSleeping: blocked on a timer.
	StateSleeping
	// StateWaiting: blocked on an external event (Wake).
	StateWaiting
	// StateExited: terminated; never scheduled again.
	StateExited
)

// String names the state.
func (s ProcState) String() string {
	switch s {
	case StateRunnable:
		return "runnable"
	case StateSleeping:
		return "sleeping"
	case StateWaiting:
		return "waiting"
	case StateExited:
		return "exited"
	default:
		return fmt.Sprintf("ProcState(%d)", int(s))
	}
}

// Process is one simulated task.
type Process struct {
	pid  int
	name string
	prog Program

	state ProcState

	// Current in-flight action. exec is held by value: a burst starts
	// hundreds of thousands of times per run, and giving each start its own
	// heap allocation dominated the allocation profile.
	kind      ActionKind
	exec      cpu.Execution // ActCompute
	remaining sim.Duration  // ActComputeFor
	until     sim.Time      // ActSpinUntil

	wake sim.Handle // pending sleep timer, if any

	// Event callbacks bound once at Spawn. Scheduling them repeatedly
	// (every burst completion, every sleep) reuses these closures instead
	// of allocating a fresh one per occurrence.
	completeFn sim.Event
	wakeFn     sim.Event

	// Accounting.
	cpuTime sim.Duration // total busy time attributed to this process
}

// PID returns the process identifier; the idle process is 0.
func (p *Process) PID() int { return p.pid }

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// State returns the scheduling state.
func (p *Process) State() ProcState { return p.state }

// CPUTime returns the total processor time this process has consumed.
func (p *Process) CPUTime() sim.Duration { return p.cpuTime }

// timeToFinish reports how long the current action needs at the given step,
// from time now. It returns 0 for a completed or non-running action.
func (p *Process) timeToFinish(now sim.Time, s cpu.Step) sim.Duration {
	switch p.kind {
	case ActCompute:
		return p.exec.TimeToFinish(s)
	case ActComputeFor:
		return p.remaining
	case ActSpinUntil:
		if p.until <= now {
			return 0
		}
		return p.until - now
	default:
		return 0
	}
}

// advanceBy credits dt of execution at step s to the current action.
func (p *Process) advanceBy(dt sim.Duration, s cpu.Step) {
	if dt <= 0 {
		return
	}
	p.cpuTime += dt
	switch p.kind {
	case ActCompute:
		p.exec.Advance(dt, s)
	case ActComputeFor:
		p.remaining -= dt
		if p.remaining < 0 {
			p.remaining = 0
		}
	case ActSpinUntil:
		// Progress is the wall clock itself; nothing to track.
	}
}

// actionDone reports whether the current action has completed at time now.
func (p *Process) actionDone(now sim.Time) bool {
	switch p.kind {
	case ActCompute:
		return p.exec.Done()
	case ActComputeFor:
		return p.remaining <= 0
	case ActSpinUntil:
		return p.until <= now
	default:
		return true
	}
}
