package kernel

import (
	"errors"
	"math"
	"testing"

	"clocksched/internal/cpu"
	"clocksched/internal/power"
	"clocksched/internal/sim"
)

// busyLoop is a program that computes forever in bursts of the given size.
type busyLoop struct{ burst cpu.Burst }

func (b busyLoop) Next(sim.Time) Action { return Compute(b.burst) }
func (b busyLoop) Name() string         { return "busy" }

// periodic computes for onDur then sleeps for offDur, forever.
type periodic struct {
	onDur, offDur sim.Duration
	working       bool
}

func (p *periodic) Next(sim.Time) Action {
	p.working = !p.working
	if p.working {
		return ComputeFor(p.onDur)
	}
	return SleepFor(p.offDur)
}
func (p *periodic) Name() string { return "periodic" }

func newKernel(t *testing.T, cfg Config) (*sim.Engine, *Kernel) {
	t.Helper()
	eng := &sim.Engine{}
	k, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, k
}

func TestNewValidation(t *testing.T) {
	eng := &sim.Engine{}
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Error("nil engine accepted")
	}
	cfg := DefaultConfig()
	cfg.Quantum = -1
	if _, err := New(eng, cfg); err == nil {
		t.Error("negative quantum accepted")
	}
	cfg = DefaultConfig()
	cfg.SchedOverhead = 20 * sim.Millisecond
	if _, err := New(eng, cfg); err == nil {
		t.Error("overhead above quantum accepted")
	}
	cfg = DefaultConfig()
	cfg.InitialStep = cpu.Step(99)
	if _, err := New(eng, cfg); err == nil {
		t.Error("invalid step accepted")
	}
	cfg = DefaultConfig()
	cfg.InitialV = cpu.VLow // unsafe at 206.4 MHz
	if _, err := New(eng, cfg); err == nil {
		t.Error("unsafe voltage accepted")
	}
	// Engine not at time zero.
	eng2 := &sim.Engine{}
	eng2.At(5, func(sim.Time) {})
	eng2.Run()
	if _, err := New(eng2, DefaultConfig()); err == nil {
		t.Error("non-zero engine accepted")
	}
}

func TestIdleRun(t *testing.T) {
	_, k := newKernel(t, DefaultConfig())
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	// 100 quanta, each with only the 6 µs scheduler overhead busy.
	if len(k.UtilLog()) != 100 {
		t.Fatalf("%d utilization samples, want 100", len(k.UtilLog()))
	}
	for _, u := range k.UtilLog() {
		if u.PP10K != 6 {
			t.Fatalf("idle quantum utilization = %d PP10K, want 6 (overhead only)", u.PP10K)
		}
	}
	// Energy is nap power for a second.
	m := power.DefaultModel()
	napW := m.Power(power.State{Step: cpu.MaxStep, V: cpu.VHigh, Mode: power.ModeNap})
	e, err := k.Recorder().Energy(0, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-napW) > 1e-9 {
		t.Errorf("idle energy = %v J, want %v", e, napW)
	}
}

func TestBusyRun(t *testing.T) {
	_, k := newKernel(t, DefaultConfig())
	if _, err := k.Spawn(busyLoop{burst: cpu.Burst{Core: 1_000_000}}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	for _, u := range k.UtilLog() {
		if u.PP10K != 10000 {
			t.Fatalf("busy quantum utilization = %d, want 10000", u.PP10K)
		}
	}
	// Energy is active power for a second.
	m := power.DefaultModel()
	activeW := m.Power(power.State{Step: cpu.MaxStep, V: cpu.VHigh, Mode: power.ModeActive})
	e, _ := k.Recorder().Energy(0, sim.Second)
	if math.Abs(e-activeW) > 1e-6 {
		t.Errorf("busy energy = %v J, want %v", e, activeW)
	}
}

func TestComputeBurstDuration(t *testing.T) {
	// One burst of exactly 25 ms at 206.4 MHz, then wait forever: the
	// process's CPU time must be 25 ms ± rounding.
	_, k := newKernel(t, DefaultConfig())
	done := false
	var doneAt sim.Time
	prog := ProgramFunc{ProgName: "oneshot", Fn: func(now sim.Time) Action {
		if done {
			return WaitEvent()
		}
		done = true
		return Compute(cpu.Burst{Core: 206400 * 25}) // 25 ms worth of cycles
	}}
	p, err := k.Spawn(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	_ = doneAt
	if got := p.CPUTime(); got < 25*sim.Millisecond-5 || got > 25*sim.Millisecond+20 {
		t.Errorf("one-shot CPU time = %v, want ≈25ms", got)
	}
	if p.State() != StateWaiting {
		t.Errorf("state = %v, want waiting", p.State())
	}
}

func TestFrequencyScalesComputeTime(t *testing.T) {
	// The same cycle count takes ~3.5× longer at 59 MHz.
	run := func(step cpu.Step) sim.Duration {
		cfg := DefaultConfig()
		cfg.InitialStep = step
		_, k := newKernel(t, cfg)
		started := false
		prog := ProgramFunc{ProgName: "oneshot", Fn: func(sim.Time) Action {
			if started {
				return WaitEvent()
			}
			started = true
			return Compute(cpu.Burst{Core: 2_064_000}) // 10 ms at max step
		}}
		p, _ := k.Spawn(prog)
		if err := k.Run(sim.Second); err != nil {
			t.Fatal(err)
		}
		return p.CPUTime()
	}
	fast := run(cpu.MaxStep)
	slow := run(cpu.MinStep)
	ratio := float64(slow) / float64(fast)
	want := float64(cpu.MaxStep.KHz()) / float64(cpu.MinStep.KHz())
	if math.Abs(ratio-want) > 0.01 {
		t.Errorf("slow/fast = %v, want %v", ratio, want)
	}
}

func TestPartialUtilization(t *testing.T) {
	// 4 ms busy then 6 ms sleep, aligned with quanta: utilization ≈ 40%.
	_, k := newKernel(t, DefaultConfig())
	if _, err := k.Spawn(&periodic{onDur: 4 * sim.Millisecond, offDur: 6 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	for i, u := range k.UtilLog() {
		if u.PP10K < 3900 || u.PP10K > 4100 {
			t.Fatalf("quantum %d utilization = %d, want ≈4000", i, u.PP10K)
		}
	}
}

func TestRoundRobinFairness(t *testing.T) {
	_, k := newKernel(t, DefaultConfig())
	a, _ := k.Spawn(busyLoop{burst: cpu.Burst{Core: 500_000}})
	b, _ := k.Spawn(busyLoop{burst: cpu.Burst{Core: 500_000}})
	if err := k.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	ta, tb := a.CPUTime(), b.CPUTime()
	total := ta + tb
	if total < 2*sim.Second-20*sim.Millisecond {
		t.Errorf("combined CPU time %v, want ≈2s", total)
	}
	imbalance := math.Abs(float64(ta-tb)) / float64(total)
	if imbalance > 0.02 {
		t.Errorf("unfair split: %v vs %v", ta, tb)
	}
}

func TestSchedLogRecordsDecisions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetainSchedLog = true
	_, k := newKernel(t, cfg)
	p, _ := k.Spawn(busyLoop{burst: cpu.Burst{Core: 500_000}})
	if err := k.Run(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	log := k.SchedLog()
	if len(log) < 10 {
		t.Fatalf("only %d scheduler log entries", len(log))
	}
	for _, e := range log {
		if e.PID != p.PID() {
			t.Fatalf("unexpected pid %d in log", e.PID)
		}
		if e.KHz != cpu.MaxStep.KHz() {
			t.Fatalf("log clock rate = %d", e.KHz)
		}
	}
}

func TestIdleLogsPIDZero(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetainSchedLog = true
	_, k := newKernel(t, cfg)
	if err := k.Run(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, e := range k.SchedLog() {
		if e.PID != 0 {
			t.Fatalf("idle system logged pid %d", e.PID)
		}
	}
	if len(k.SchedLog()) == 0 {
		t.Fatal("no idle scheduling decisions logged")
	}
}

// stepPolicy switches to a fixed step on the first quantum.
type stepPolicy struct {
	to      cpu.Step
	v       cpu.Voltage
	applied bool
}

func (s *stepPolicy) OnQuantum(_ sim.Time, _ int, cur cpu.Step, curV cpu.Voltage) (cpu.Step, cpu.Voltage) {
	if s.applied {
		return cur, curV
	}
	s.applied = true
	return s.to, s.v
}

func TestPolicyChangesSpeedWithStall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = &stepPolicy{to: cpu.MinStep, v: cpu.VHigh}
	_, k := newKernel(t, cfg)
	if _, err := k.Spawn(busyLoop{burst: cpu.Burst{Core: 500_000}}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if k.Step() != cpu.MinStep {
		t.Errorf("step = %v, want 59MHz", k.Step())
	}
	if k.SpeedChanges() != 1 {
		t.Errorf("speed changes = %d, want 1", k.SpeedChanges())
	}
	if k.StallTime() != cpu.ClockChangeStall {
		t.Errorf("stall time = %v, want %dµs", k.StallTime(), cpu.ClockChangeStall)
	}
	// Residency: 10 ms at max (before the first tick), the rest at min.
	res := k.Residency()
	if res[cpu.MaxStep] != 10*sim.Millisecond {
		t.Errorf("residency at max = %v, want 10ms", res[cpu.MaxStep])
	}
	if res[cpu.MinStep] != sim.Second-10*sim.Millisecond {
		t.Errorf("residency at min = %v", res[cpu.MinStep])
	}
}

func TestVoltageDropSettles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialStep = cpu.Step(5) // 132.7 MHz allows 1.23 V
	cfg.Policy = &stepPolicy{to: cpu.Step(5), v: cpu.VLow}
	_, k := newKernel(t, cfg)
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if k.Voltage() != cpu.VLow {
		t.Fatalf("voltage = %v, want 1.23V", k.Voltage())
	}
	if k.VoltageChanges() != 1 {
		t.Errorf("voltage changes = %d, want 1", k.VoltageChanges())
	}
	// The power rail must stay at 1.5 V for the settle time after the
	// drop at t=10ms: power at 10.1 ms still reflects 1.5 V nap, power at
	// 10.3 ms reflects 1.23 V nap.
	m := cfg.Model
	before, _ := k.Recorder().PowerAt(10*sim.Millisecond + 100)
	after, _ := k.Recorder().PowerAt(10*sim.Millisecond + 300)
	wantHi := m.Power(power.State{Step: cpu.Step(5), V: cpu.VHigh, Mode: power.ModeNap})
	wantLo := m.Power(power.State{Step: cpu.Step(5), V: cpu.VLow, Mode: power.ModeNap})
	if math.Abs(before-wantHi) > 1e-9 {
		t.Errorf("power during settle = %v, want %v (still high)", before, wantHi)
	}
	if math.Abs(after-wantLo) > 1e-9 {
		t.Errorf("power after settle = %v, want %v", after, wantLo)
	}
}

func TestUnsafeVoltageRequestIsRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = &stepPolicy{to: cpu.MaxStep, v: cpu.VLow} // 1.23 V at 206.4 MHz: unsafe
	_, k := newKernel(t, cfg)
	if err := k.Run(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if k.Voltage() != cpu.VHigh {
		t.Errorf("kernel accepted unsafe voltage: %v", k.Voltage())
	}
}

func TestSleepWakeTiming(t *testing.T) {
	_, k := newKernel(t, DefaultConfig())
	var wokeAt sim.Time
	phase := 0
	prog := ProgramFunc{ProgName: "sleeper", Fn: func(now sim.Time) Action {
		switch phase {
		case 0:
			phase = 1
			return SleepFor(123 * sim.Millisecond)
		case 1:
			phase = 2
			wokeAt = now
			return Exit()
		}
		return Exit()
	}}
	p, _ := k.Spawn(prog)
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if wokeAt != 123*sim.Millisecond {
		t.Errorf("woke at %v, want 123ms", wokeAt)
	}
	if p.State() != StateExited {
		t.Errorf("state = %v, want exited", p.State())
	}
}

func TestWaitEventAndWake(t *testing.T) {
	eng, k := newKernel(t, DefaultConfig())
	var wokeAt sim.Time
	phase := 0
	prog := ProgramFunc{ProgName: "waiter", Fn: func(now sim.Time) Action {
		switch phase {
		case 0:
			phase = 1
			return WaitEvent()
		default:
			if wokeAt == 0 {
				wokeAt = now
			}
			return ComputeFor(sim.Millisecond)
		}
	}}
	p, _ := k.Spawn(prog)
	// Deliver the event mid-quantum at t=34.5ms.
	if _, err := eng.At(34500, func(sim.Time) { k.Wake(p) }); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if wokeAt != 34500 {
		t.Errorf("woke at %v, want 34.5ms (immediate dispatch from idle)", wokeAt)
	}
}

func TestWakeIsIdempotent(t *testing.T) {
	_, k := newKernel(t, DefaultConfig())
	p, _ := k.Spawn(busyLoop{burst: cpu.Burst{Core: 1000}})
	k.Wake(p) // runnable: no-op
	k.Wake(nil)
	if err := k.Run(20 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	// The process must appear exactly once per queue cycle — CPU time
	// accounts for the whole run.
	if p.CPUTime() < 19*sim.Millisecond {
		t.Errorf("cpu time = %v after double wake", p.CPUTime())
	}
}

func TestSpinUntilCountsBusy(t *testing.T) {
	_, k := newKernel(t, DefaultConfig())
	phase := 0
	prog := ProgramFunc{ProgName: "spinner", Fn: func(now sim.Time) Action {
		switch phase {
		case 0:
			phase = 1
			return SpinUntil(25 * sim.Millisecond)
		default:
			return WaitEvent()
		}
	}}
	p, _ := k.Spawn(prog)
	if err := k.Run(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := p.CPUTime(); got != 25*sim.Millisecond {
		t.Errorf("spin CPU time = %v, want 25ms", got)
	}
	// The first two quanta were fully busy.
	if k.UtilLog()[0].PP10K != 10000 || k.UtilLog()[1].PP10K != 10000 {
		t.Errorf("spin quanta utilization = %d, %d",
			k.UtilLog()[0].PP10K, k.UtilLog()[1].PP10K)
	}
}

func TestExitRemovesProcess(t *testing.T) {
	_, k := newKernel(t, DefaultConfig())
	calls := 0
	prog := ProgramFunc{ProgName: "quitter", Fn: func(sim.Time) Action {
		calls++
		if calls == 1 {
			return ComputeFor(5 * sim.Millisecond)
		}
		return Exit()
	}}
	p, _ := k.Spawn(prog)
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if p.State() != StateExited {
		t.Fatalf("state = %v", p.State())
	}
	if calls != 2 {
		t.Errorf("program called %d times after exit", calls)
	}
	if p.CPUTime() != 5*sim.Millisecond {
		t.Errorf("cpu time = %v", p.CPUTime())
	}
}

func TestBrokenProgramReturnsError(t *testing.T) {
	_, k := newKernel(t, DefaultConfig())
	p, err := k.Spawn(ProgramFunc{ProgName: "broken", Fn: func(sim.Time) Action {
		return Compute(cpu.Burst{}) // zero work, forever
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.Second); !errors.Is(err, ErrProgramSpin) {
		t.Fatalf("Run = %v, want ErrProgramSpin", err)
	}
	if p.State() != StateExited {
		t.Errorf("broken program state = %v, want exited (quarantined)", p.State())
	}
}

func TestUnknownActionReturnsError(t *testing.T) {
	_, k := newKernel(t, DefaultConfig())
	if _, err := k.Spawn(ProgramFunc{ProgName: "bogus", Fn: func(sim.Time) Action {
		return Action{Kind: ActionKind(99)}
	}}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.Second); !errors.Is(err, ErrUnknownAction) {
		t.Fatalf("Run = %v, want ErrUnknownAction", err)
	}
}

func TestEventCapAbortsRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EventCap = 100
	_, k := newKernel(t, cfg)
	// A well-behaved busy loop still fires completion + tick events; the
	// tiny cap must abort the run with a diagnostic instead of hanging.
	if _, err := k.Spawn(busyLoop{burst: cpu.Burst{Core: 1000}}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(100 * sim.Second); !errors.Is(err, sim.ErrEventCap) {
		t.Fatalf("Run = %v, want ErrEventCap", err)
	}
}

func TestRunTwiceFails(t *testing.T) {
	_, k := newKernel(t, DefaultConfig())
	if err := k.Run(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(20 * sim.Millisecond); err == nil {
		t.Error("second Run accepted")
	}
	if _, err := k.Spawn(busyLoop{}); err == nil {
		t.Error("Spawn after Run accepted")
	}
}

func TestRunValidation(t *testing.T) {
	_, k := newKernel(t, DefaultConfig())
	if err := k.Run(0); err == nil {
		t.Error("Run(0) accepted")
	}
}

func TestSpawnValidation(t *testing.T) {
	_, k := newKernel(t, DefaultConfig())
	if _, err := k.Spawn(nil); err == nil {
		t.Error("nil program accepted")
	}
}

func TestPIDsAreSequential(t *testing.T) {
	_, k := newKernel(t, DefaultConfig())
	a, _ := k.Spawn(busyLoop{burst: cpu.Burst{Core: 1000}})
	b, _ := k.Spawn(busyLoop{burst: cpu.Burst{Core: 1000}})
	if a.PID() != 1 || b.PID() != 2 {
		t.Errorf("pids = %d, %d; want 1, 2", a.PID(), b.PID())
	}
	if len(k.Processes()) != 2 {
		t.Errorf("Processes() has %d entries", len(k.Processes()))
	}
	if a.Name() != "busy" {
		t.Errorf("name = %q", a.Name())
	}
}

func TestActionKindStrings(t *testing.T) {
	kinds := map[ActionKind]string{
		ActCompute: "compute", ActComputeFor: "compute-for",
		ActSpinUntil: "spin-until", ActSleepFor: "sleep-for",
		ActSleepUntil: "sleep-until", ActWaitEvent: "wait-event", ActExit: "exit",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if ActionKind(99).String() != "ActionKind(99)" {
		t.Error("unknown kind string")
	}
}

func TestProcStateStrings(t *testing.T) {
	states := map[ProcState]string{
		StateRunnable: "runnable", StateSleeping: "sleeping",
		StateWaiting: "waiting", StateExited: "exited",
	}
	for s, want := range states {
		if s.String() != want {
			t.Errorf("state string = %q, want %q", s.String(), want)
		}
	}
	if ProcState(42).String() != "ProcState(42)" {
		t.Error("unknown state string")
	}
}

func TestSleepUntilAndPastDeadlinesSkip(t *testing.T) {
	_, k := newKernel(t, DefaultConfig())
	var times []sim.Time
	phase := 0
	prog := ProgramFunc{ProgName: "untiler", Fn: func(now sim.Time) Action {
		times = append(times, now)
		phase++
		switch phase {
		case 1:
			return SleepUntil(40 * sim.Millisecond)
		case 2:
			return SleepUntil(10 * sim.Millisecond) // already past: skipped
		case 3:
			return SpinUntil(5 * sim.Millisecond) // already past: skipped
		case 4:
			return SleepFor(-5) // non-positive: skipped
		case 5:
			return ComputeFor(0) // non-positive: skipped
		default:
			return Exit()
		}
	}}
	if _, err := k.Spawn(prog); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(times) != 6 {
		t.Fatalf("program called %d times, want 6", len(times))
	}
	if times[1] != 40*sim.Millisecond {
		t.Errorf("second call at %v, want 40ms", times[1])
	}
	// Calls 3..6 happen immediately at 40 ms (all degenerate actions).
	for i := 2; i < 6; i++ {
		if times[i] != 40*sim.Millisecond {
			t.Errorf("call %d at %v, want 40ms", i, times[i])
		}
	}
}

func TestEnergyDropsAtLowerStep(t *testing.T) {
	// The same busy workload at 59 MHz uses less power (but the burst
	// work rate also drops — this checks the power side only, with
	// always-busy load).
	run := func(step cpu.Step) float64 {
		cfg := DefaultConfig()
		cfg.InitialStep = step
		_, k := newKernel(t, cfg)
		k.Spawn(busyLoop{burst: cpu.Burst{Core: 500_000}})
		if err := k.Run(sim.Second); err != nil {
			t.Fatal(err)
		}
		e, err := k.Recorder().Energy(0, sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if eFast, eSlow := run(cpu.MaxStep), run(cpu.MinStep); eSlow >= eFast {
		t.Errorf("busy energy at 59MHz (%v) not below 206MHz (%v)", eSlow, eFast)
	}
}

func TestManyProcessesConservation(t *testing.T) {
	// CPU time across N busy processes plus idle must equal wall time.
	_, k := newKernel(t, DefaultConfig())
	procs := make([]*Process, 5)
	for i := range procs {
		procs[i], _ = k.Spawn(busyLoop{burst: cpu.Burst{Core: 300_000}})
	}
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	var total sim.Duration
	for _, p := range procs {
		total += p.CPUTime()
	}
	if total < sim.Second-30*sim.Millisecond || total > sim.Second {
		t.Errorf("total CPU time = %v over 1s wall", total)
	}
}
