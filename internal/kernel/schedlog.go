package kernel

import (
	"fmt"
	"sort"
	"strings"

	"clocksched/internal/sim"
)

// This file provides the analysis side of the paper's process-logging
// facility (Section 4.3): "For each scheduling decision, we record the
// process identifier of the process being scheduled, the time at which it
// was scheduled (with microsecond resolution) and the current clock rate."
// LogStats digests that log the way the paper's post-processing did to
// produce the utilization plots and per-process breakdowns.

// ProcessShare is one process's slice of the scheduler's attention.
type ProcessShare struct {
	PID       int
	Name      string
	Decisions int          // times the scheduler picked it
	CPUTime   sim.Duration // busy time it accumulated
}

// LogStats summarizes a completed run's scheduler activity.
type LogStats struct {
	Decisions     int // total scheduling decisions, including idle picks
	IdleDecisions int // times pid 0 (idle) was picked
	Switches      int // decisions that changed the running pid
	Shares        []ProcessShare
	// RatesSeen lists the distinct clock rates (kHz) appearing in the
	// log, ascending.
	RatesSeen []int64
}

// logTally is the running digest of the scheduler log, updated as each
// decision is recorded so AnalyzeLog never needs the retained record list.
// It counts exactly the entries that survive the cap and the injected
// trace drops — the same population the old log-walking analysis saw.
type logTally struct {
	decisions int
	idle      int
	switches  int
	started   bool  // at least one decision noted (so lastPID is valid)
	lastPID   int   // pid of the previous decision
	perPID    []int // decision count per pid; index = pid (0 is idle)
	rates     []int64
}

func (t *logTally) note(e SchedEntry) {
	t.decisions++
	if e.PID == 0 {
		t.idle++
	}
	if !t.started || e.PID != t.lastPID {
		t.switches++
		t.lastPID = e.PID
		t.started = true
	}
	for len(t.perPID) <= e.PID {
		t.perPID = append(t.perPID, 0)
	}
	t.perPID[e.PID]++
	// At most NumSteps distinct rates ever appear; a linear scan of a
	// tiny slice beats a map allocation per run.
	for _, r := range t.rates {
		if r == e.KHz {
			return
		}
	}
	t.rates = append(t.rates, e.KHz)
}

// AnalyzeLog digests the kernel's scheduler activity and process table. It
// is meaningful after Run, and works whether or not the full record list
// was retained (Config.RetainSchedLog).
func (k *Kernel) AnalyzeLog() LogStats {
	t := &k.logStats
	st := LogStats{
		Decisions:     t.decisions,
		IdleDecisions: t.idle,
		Switches:      t.switches,
	}
	for _, p := range k.procs {
		sh := ProcessShare{PID: p.pid, Name: p.name, CPUTime: p.cpuTime}
		if p.pid < len(t.perPID) {
			sh.Decisions = t.perPID[p.pid]
		}
		st.Shares = append(st.Shares, sh)
	}
	sort.Slice(st.Shares, func(i, j int) bool { return st.Shares[i].PID < st.Shares[j].PID })
	st.RatesSeen = append(st.RatesSeen, t.rates...)
	sort.Slice(st.RatesSeen, func(i, j int) bool { return st.RatesSeen[i] < st.RatesSeen[j] })
	return st
}

// Render formats the stats as a small report.
func (s LogStats) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheduler log: %d decisions (%d idle), %d context switches\n",
		s.Decisions, s.IdleDecisions, s.Switches)
	for _, sh := range s.Shares {
		fmt.Fprintf(&b, "  pid %-3d %-14s %6d decisions  %v CPU\n",
			sh.PID, sh.Name, sh.Decisions, sh.CPUTime)
	}
	if len(s.RatesSeen) > 0 {
		fmt.Fprintf(&b, "  clock rates seen:")
		for _, r := range s.RatesSeen {
			fmt.Fprintf(&b, " %.1fMHz", float64(r)/1000)
		}
		b.WriteString("\n")
	}
	return b.String()
}
