package kernel

import (
	"fmt"
	"sort"
	"strings"

	"clocksched/internal/sim"
)

// This file provides the analysis side of the paper's process-logging
// facility (Section 4.3): "For each scheduling decision, we record the
// process identifier of the process being scheduled, the time at which it
// was scheduled (with microsecond resolution) and the current clock rate."
// LogStats digests that log the way the paper's post-processing did to
// produce the utilization plots and per-process breakdowns.

// ProcessShare is one process's slice of the scheduler's attention.
type ProcessShare struct {
	PID       int
	Name      string
	Decisions int          // times the scheduler picked it
	CPUTime   sim.Duration // busy time it accumulated
}

// LogStats summarizes a completed run's scheduler activity.
type LogStats struct {
	Decisions     int // total scheduling decisions, including idle picks
	IdleDecisions int // times pid 0 (idle) was picked
	Switches      int // decisions that changed the running pid
	Shares        []ProcessShare
	// RatesSeen lists the distinct clock rates (kHz) appearing in the
	// log, ascending.
	RatesSeen []int64
}

// AnalyzeLog digests the kernel's scheduler log and process table. It is
// meaningful after Run.
func (k *Kernel) AnalyzeLog() LogStats {
	st := LogStats{}
	rates := map[int64]bool{}
	lastPID := -1
	for _, e := range k.schedLog {
		st.Decisions++
		if e.PID == 0 {
			st.IdleDecisions++
		}
		if e.PID != lastPID {
			st.Switches++
			lastPID = e.PID
		}
		rates[e.KHz] = true
	}
	byPID := map[int]*ProcessShare{}
	for _, e := range k.schedLog {
		if e.PID == 0 {
			continue
		}
		if _, ok := byPID[e.PID]; !ok {
			byPID[e.PID] = &ProcessShare{PID: e.PID}
		}
		byPID[e.PID].Decisions++
	}
	for _, p := range k.procs {
		sh, ok := byPID[p.pid]
		if !ok {
			sh = &ProcessShare{PID: p.pid}
			byPID[p.pid] = sh
		}
		sh.Name = p.name
		sh.CPUTime = p.cpuTime
	}
	for _, sh := range byPID {
		st.Shares = append(st.Shares, *sh)
	}
	sort.Slice(st.Shares, func(i, j int) bool { return st.Shares[i].PID < st.Shares[j].PID })
	for r := range rates {
		st.RatesSeen = append(st.RatesSeen, r)
	}
	sort.Slice(st.RatesSeen, func(i, j int) bool { return st.RatesSeen[i] < st.RatesSeen[j] })
	return st
}

// Render formats the stats as a small report.
func (s LogStats) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheduler log: %d decisions (%d idle), %d context switches\n",
		s.Decisions, s.IdleDecisions, s.Switches)
	for _, sh := range s.Shares {
		fmt.Fprintf(&b, "  pid %-3d %-14s %6d decisions  %v CPU\n",
			sh.PID, sh.Name, sh.Decisions, sh.CPUTime)
	}
	if len(s.RatesSeen) > 0 {
		fmt.Fprintf(&b, "  clock rates seen:")
		for _, r := range s.RatesSeen {
			fmt.Fprintf(&b, " %.1fMHz", float64(r)/1000)
		}
		b.WriteString("\n")
	}
	return b.String()
}
