package kernel

import (
	"fmt"
	"testing"

	"clocksched/internal/cpu"
	"clocksched/internal/sim"
)

// chaosProgram emits a random mix of every action kind, driven by a seeded
// generator, and records how much busy time it believes it asked for.
type chaosProgram struct {
	rng  *sim.RNG
	name string
	step int
}

func (c *chaosProgram) Name() string { return c.name }

func (c *chaosProgram) Next(now sim.Time) Action {
	c.step++
	switch c.rng.Int63n(6) {
	case 0:
		return Compute(cpu.Burst{
			Core:  c.rng.Int63n(3_000_000),
			Mem:   c.rng.Int63n(100_000),
			Cache: c.rng.Int63n(20_000),
		})
	case 1:
		return ComputeFor(c.rng.Duration(0, 15*sim.Millisecond))
	case 2:
		return SpinUntil(now + c.rng.Duration(0, 8*sim.Millisecond))
	case 3:
		return SleepFor(c.rng.Duration(0, 25*sim.Millisecond))
	case 4:
		return SleepUntil(now + c.rng.Duration(0, 25*sim.Millisecond))
	default:
		// Mostly keep going; occasionally a zero-work action.
		return Compute(cpu.Burst{Core: c.rng.Int63n(500_000)})
	}
}

// chaosPolicy makes random legal policy decisions.
type chaosPolicy struct{ rng *sim.RNG }

func (p *chaosPolicy) OnQuantum(_ sim.Time, _ int, cur cpu.Step, _ cpu.Voltage) (cpu.Step, cpu.Voltage) {
	s := cpu.Step(p.rng.Int63n(cpu.NumSteps))
	v := cpu.VHigh
	if p.rng.Bool(0.5) && cpu.VoltageOK(s, cpu.VLow) {
		v = cpu.VLow
	}
	return s, v
}

// TestKernelChaos runs several random programs under a random policy and
// checks the conservation invariants that must hold regardless of
// scheduling order: CPU time ≤ wall time, utilization within bounds,
// residency accounts for the whole run, the power timeline is complete,
// and the run is deterministic.
func TestKernelChaos(t *testing.T) {
	const wall = 20 * sim.Second
	run := func(seed uint64) (total sim.Duration, energy float64) {
		eng := &sim.Engine{}
		cfg := DefaultConfig()
		cfg.Policy = &chaosPolicy{rng: sim.NewRNG(seed + 1000)}
		k, err := New(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		procs := make([]*Process, 4)
		for i := range procs {
			p, err := k.Spawn(&chaosProgram{
				rng:  sim.NewRNG(seed + uint64(i)),
				name: fmt.Sprintf("chaos-%d", i),
			})
			if err != nil {
				t.Fatal(err)
			}
			procs[i] = p
		}
		if err := k.Run(wall); err != nil {
			t.Fatal(err)
		}

		for _, p := range procs {
			if p.CPUTime() < 0 || p.CPUTime() > wall {
				t.Fatalf("process %s CPU time %v out of [0, %v]", p.Name(), p.CPUTime(), wall)
			}
			total += p.CPUTime()
		}
		// Total CPU time can't exceed wall time (single processor), and
		// stall time is on top of process time.
		if total+k.StallTime() > wall {
			t.Fatalf("CPU time %v + stalls %v exceeds wall %v", total, k.StallTime(), wall)
		}
		for _, u := range k.UtilLog() {
			if u.PP10K < 0 || u.PP10K > 10000 {
				t.Fatalf("utilization %d out of range", u.PP10K)
			}
		}
		var res sim.Duration
		for _, d := range k.Residency() {
			res += d
		}
		if res != wall {
			t.Fatalf("residency %v != wall %v", res, wall)
		}
		e, err := k.Recorder().Energy(0, wall)
		if err != nil {
			t.Fatal(err)
		}
		if e <= 0 {
			t.Fatal("non-positive energy")
		}
		return total, e
	}

	for seed := uint64(1); seed <= 8; seed++ {
		a1, e1 := run(seed)
		a2, e2 := run(seed)
		if a1 != a2 || e1 != e2 {
			t.Fatalf("seed %d not deterministic: %v/%v vs %v/%v", seed, a1, e1, a2, e2)
		}
	}
}

// TestKernelChaosWithWakes adds externally-scheduled wakes racing the
// random policy's stalls, covering the Wake-during-stall and
// Wake-during-idle paths.
func TestKernelChaosWithWakes(t *testing.T) {
	eng := &sim.Engine{}
	cfg := DefaultConfig()
	cfg.Policy = &chaosPolicy{rng: sim.NewRNG(99)}
	k, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	waiter, err := k.Spawn(ProgramFunc{ProgName: "waiter", Fn: func(now sim.Time) Action {
		if now.Seconds() > 4.5 {
			return Exit()
		}
		return WaitEvent()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn(&chaosProgram{rng: sim.NewRNG(7), name: "load"}); err != nil {
		t.Fatal(err)
	}
	// Wake the waiter at arbitrary offsets, many of which land inside
	// stalls or ticks.
	rng := sim.NewRNG(5)
	for at := sim.Time(0); at < 5*sim.Second; {
		at += rng.Duration(sim.Millisecond, 60*sim.Millisecond)
		if _, err := eng.At(at, func(sim.Time) { k.Wake(waiter) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if waiter.State() != StateExited {
		t.Errorf("waiter state = %v, want exited", waiter.State())
	}
}

// TestSpawnMidRun launches a process from an engine event while the kernel
// is running — how a shell would fork a new application mid-session.
func TestSpawnMidRun(t *testing.T) {
	eng := &sim.Engine{}
	k, err := New(eng, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var late *Process
	if _, err := eng.At(500*sim.Millisecond, func(sim.Time) {
		p, err := k.Spawn(busyLoop{burst: cpu.Burst{Core: 500_000}})
		if err != nil {
			t.Error(err)
			return
		}
		late = p
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if late == nil {
		t.Fatal("mid-run spawn never happened")
	}
	// The late process ran for roughly the remaining half second.
	if got := late.CPUTime(); got < 450*sim.Millisecond || got > 510*sim.Millisecond {
		t.Errorf("late process CPU time = %v, want ≈500ms", got)
	}
}
