package kernel

import (
	"testing"

	"clocksched/internal/cpu"
	"clocksched/internal/sim"
)

// runQuanta builds a fresh engine+kernel over a busy process and runs it
// for the given number of scheduling quanta.
func runQuanta(t testing.TB, quanta int) {
	eng := &sim.Engine{}
	k, err := New(eng, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn(busyLoop{burst: cpu.Burst{Core: 2_000_000}}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.Duration(quanta) * sim.Quantum); err != nil {
		t.Fatal(err)
	}
}

// TestQuantumStepAllocs pins the steady-state allocation cost of a
// scheduling quantum at zero. The short and long runs share the same
// setup-time allocations (kernel, spawn, preallocated logs), so their
// difference isolates the per-quantum cost: event arming through the
// prebound closures, the run-queue ring, the utilization log append, and
// the power-recorder append must all reuse memory. A regression here —
// a method-value closure handed to the engine, a per-quantum record, a
// log growing past its preallocation — shows up as a fraction of an
// allocation per quantum and fails the test long before it shows up in a
// profile.
func TestQuantumStepAllocs(t *testing.T) {
	const short, long = 200, 1200
	base := testing.AllocsPerRun(5, func() { runQuanta(t, short) })
	full := testing.AllocsPerRun(5, func() { runQuanta(t, long) })
	perQuantum := (full - base) / float64(long-short)
	if perQuantum > 0.05 {
		t.Errorf("steady-state quantum step allocates %.3f objects/quantum (short run %.0f, long run %.0f), want ~0",
			perQuantum, base, full)
	}
}
