package kernel

import (
	"context"
	"errors"
	"testing"

	"clocksched/internal/cpu"
	"clocksched/internal/sim"
)

// TestCheckCancelAbortsAtQuantumBoundary cancels a run after the third
// quantum tick and checks that the run stops exactly there — at a quantum
// boundary, not mid-quantum — with the cause preserved through the error
// chain.
func TestCheckCancelAbortsAtQuantumBoundary(t *testing.T) {
	cfg := DefaultConfig()
	ticks := 0
	cfg.CheckCancel = func() error {
		ticks++
		if ticks > 3 {
			return context.Canceled
		}
		return nil
	}
	eng, k := newKernel(t, cfg)
	if _, err := k.Spawn(busyLoop{burst: cpu.Burst{Core: 1000}}); err != nil {
		t.Fatal(err)
	}
	err := k.Run(sim.Second)
	if err == nil {
		t.Fatal("cancelled run finished cleanly")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause lost: %v", err)
	}
	// Three ticks survive, the fourth aborts: the clock stops at the
	// fourth quantum boundary (40 ms), never past it.
	if now := eng.Now(); now != 4*cfg.Quantum {
		t.Errorf("aborted at %v, want the 40ms quantum boundary", now)
	}
}

// TestCheckCancelNilIsFree checks that runs without a cancel hook behave
// exactly as before.
func TestCheckCancelNilIsFree(t *testing.T) {
	cfg := DefaultConfig()
	eng, k := newKernel(t, cfg)
	if _, err := k.Spawn(busyLoop{burst: cpu.Burst{Core: 1000}}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if eng.Now() != sim.Second {
		t.Errorf("run ended at %v", eng.Now())
	}
}
