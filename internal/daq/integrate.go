package daq

import (
	"fmt"

	"clocksched/internal/power"
	"clocksched/internal/sim"
	"clocksched/internal/telemetry"
)

// Summary is the digest of one measurement window: everything the
// experiment harnesses report (energy, average, peak, sample count)
// without the materialized per-sample array a Capture carries.
type Summary struct {
	Config Config
	Start  sim.Time
	// Window is the requested capture span (end − start); the trailing
	// partial interval, if any, is weighted accordingly in EnergyJ.
	Window sim.Duration
	// Samples is how many readings the instrument took.
	Samples int
	// EnergyJ is Σ pᵢ·Δt with the partial-window overhang refunded —
	// the same integral Capture.Energy computes.
	EnergyJ float64
	// AvgPowerW is the mean of the readings, in watts.
	AvgPowerW float64
	// PeakW is the largest reading, in watts.
	PeakW float64
}

// Duration returns the time span the summary covers.
func (s Summary) Duration() sim.Duration {
	if s.Window > 0 {
		return s.Window
	}
	return sim.Duration(s.Samples) * s.Config.SampleInterval
}

// MeanCurrent returns the average supply current implied by the window, in
// amperes, as the instrument operator would compute it from the shunt.
func (s Summary) MeanCurrent() float64 {
	if s.Config.SupplyVolts <= 0 {
		return 0
	}
	return s.AvgPowerW / s.Config.SupplyVolts
}

// Integrate measures rec over [start, end) the way Sample does — one
// reading every SampleInterval, quantized to the ADC grid — but folds the
// readings into a Summary as it goes instead of materializing them.
//
// On a fault-free instrument it walks the recorder's piecewise-constant
// segments directly: every reading inside one segment sees the same power,
// so the segment is quantized once and weighted by its reading count. That
// turns per-window cost from O(samples·log segments) into O(segments +
// log samples) and eliminates the dominant allocation of a run. The
// segment-ordered energy accumulation sums in a different order than the
// sample-ordered loop in Capture.Energy, so totals may differ from the old
// path at ULP scale — the clocksched-sim/4 measurement-path bump.
//
// With sample faults enabled (drops or glitches) every reading needs its
// own RNG draw, so Integrate falls back to a per-sample walk that makes
// draws in exactly the order Sample does, keeping fault schedules
// bit-identical between the two paths.
func Integrate(rec *power.Recorder, start, end sim.Time, cfg Config) (Summary, error) {
	if err := cfg.validate(); err != nil {
		return Summary{}, err
	}
	if start < 0 || end <= start {
		return Summary{}, fmt.Errorf("daq: bad capture window [%v, %v)", start, end)
	}
	if end > rec.End() {
		return Summary{}, fmt.Errorf("daq: capture window ends at %v but timeline ends at %v",
			end, rec.End())
	}
	window := end - start
	interval := cfg.SampleInterval
	// Ceiling division: a trailing partial interval gets its own reading
	// rather than being silently dropped from the energy integral.
	n := int64((window + interval - 1) / interval)
	sum := Summary{Config: cfg, Start: start, Window: window, Samples: int(n)}

	points := rec.Points()
	faulty := false
	if in := cfg.Faults; in != nil {
		p := in.Plan()
		faulty = p.SampleDropProb > 0 || p.SampleGlitchProb > 0
	}

	var total, peak, last float64
	// psum accumulates Σp on the per-sample path, where bit-identity with
	// Capture.AveragePower (which divides Σp by n) is promised; the batched
	// path recovers the mean from the energy total instead.
	var psum float64
	if faulty {
		// Per-sample fallback: identical draw order to Sample.
		tel := cfg.Telemetry
		telDropped := tel.Counter(telemetry.MDAQSamplesDropped)
		telGlitched := tel.Counter(telemetry.MDAQSamplesGlitched)
		seg := 0
		held := 0.0
		for i := int64(0); i < n; i++ {
			t := start + sim.Time(i)*interval
			for seg+1 < len(points) && points[seg+1].At <= t {
				seg++
			}
			if cfg.Faults.DropSample() {
				telDropped.Inc()
			} else {
				w := points[seg].Watts
				if g, ok := cfg.Faults.GlitchWatts(); ok {
					telGlitched.Inc()
					w += g
				}
				held = cfg.quantize(w)
			}
			total += held * interval.Seconds()
			psum += held
			if held > peak {
				peak = held
			}
			last = held
		}
	} else {
		// Segment-batched: quantize each timeline segment once and weight
		// it by how many readings land inside it. Reading i falls in the
		// segment whose span contains start + i·interval.
		for seg := 0; seg < len(points); seg++ {
			segStart := points[seg].At
			segEnd := end
			if seg+1 < len(points) && points[seg+1].At < end {
				segEnd = points[seg+1].At
			}
			if segEnd <= start || segStart >= end {
				continue
			}
			// First reading index at or after segStart, last before segEnd.
			i0 := int64(0)
			if segStart > start {
				i0 = int64(segStart - start + interval - 1) / int64(interval)
			}
			i1 := int64(segEnd - start + interval - 1) / int64(interval)
			if i1 > n {
				i1 = n
			}
			if i1 <= i0 {
				continue
			}
			q := cfg.quantize(points[seg].Watts)
			total += q * float64(i1-i0) * interval.Seconds()
			if q > peak {
				peak = q
			}
			if i1 == n {
				last = q
			}
		}
	}

	if covered := sim.Duration(n) * interval; window < covered {
		// The last reading overhangs the window; refund the overhang.
		total -= last * (covered - window).Seconds()
	}
	sum.EnergyJ = total
	sum.PeakW = peak
	if n > 0 {
		if faulty {
			sum.AvgPowerW = psum / float64(n)
		} else {
			// Mean of the readings: each reading contributed interval·p to
			// the pre-refund total, so dividing by the full covered span
			// recovers Σp/n up to summation order.
			sum.AvgPowerW = (total + last*(sim.Duration(n)*interval-window).Seconds()) /
				(sim.Duration(n) * interval).Seconds()
		}
	}

	tel := cfg.Telemetry
	tel.Counter(telemetry.MDAQCaptures).Inc()
	tel.Counter(telemetry.MDAQSamples).Add(n)
	return sum, nil
}

// Summarize folds an already-materialized capture into the same digest
// Integrate produces, for callers that need both the raw samples and the
// summary quantities.
func Summarize(c Capture) Summary {
	return Summary{
		Config:    c.Config,
		Start:     c.Start,
		Window:    c.Window,
		Samples:   len(c.Samples),
		EnergyJ:   c.Energy(),
		AvgPowerW: c.AveragePower(),
		PeakW:     c.PeakPower(),
	}
}
