package daq

import (
	"math"
	"math/rand"
	"testing"

	"clocksched/internal/cpu"
	"clocksched/internal/fault"
	"clocksched/internal/power"
	"clocksched/internal/sim"
)

// randomRecorder builds a piecewise-constant power timeline with the given
// number of random-length, random-level segments, ending at end.
func randomRecorder(rng *rand.Rand, segments int, end sim.Time) *power.Recorder {
	r := power.NewRecorder(power.DefaultModel(),
		power.State{Step: cpu.MaxStep, V: cpu.VHigh, Mode: power.ModeActive})
	r.SetWatts(0, rng.Float64()*8)
	for i := 1; i < segments; i++ {
		at := sim.Time(1 + rng.Int63n(int64(end)-1))
		r.SetWatts(at, rng.Float64()*8)
	}
	r.Finish(end)
	return r
}

// relDiff is |a-b| scaled by the larger magnitude (0 when both are 0).
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	return d / math.Max(math.Abs(a), math.Abs(b))
}

// TestIntegrateMatchesSampleRandomized is the property test behind the
// clocksched-sim/4 bump: on randomized timelines and randomized,
// deliberately unaligned windows, the incremental segment-walk integral
// must equal the old materialize-every-reading path exactly in sample
// count and peak, and within ULP-scale relative tolerance in energy and
// average power (the two paths sum the same addends in different orders).
func TestIntegrateMatchesSampleRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const tol = 1e-9
	for trial := 0; trial < 200; trial++ {
		end := sim.Time(10_000 + rng.Int63n(int64(2*sim.Second)))
		rec := randomRecorder(rng, 1+rng.Intn(40), end)

		start := sim.Time(rng.Int63n(int64(end)))
		stop := start + 1 + sim.Time(rng.Int63n(int64(end-start)))
		cfg := DefaultConfig()
		// Random, often non-divisor intervals exercise the partial
		// trailing reading and the overhang refund.
		cfg.SampleInterval = sim.Duration(7 + rng.Int63n(997))

		cap, err := Sample(rec, start, stop, cfg)
		if err != nil {
			t.Fatalf("trial %d: Sample: %v", trial, err)
		}
		want := Summarize(cap)
		got, err := Integrate(rec, start, stop, cfg)
		if err != nil {
			t.Fatalf("trial %d: Integrate: %v", trial, err)
		}

		if got.Samples != want.Samples {
			t.Fatalf("trial %d [%d,%d) @%d: samples %d, want %d",
				trial, start, stop, cfg.SampleInterval, got.Samples, want.Samples)
		}
		if got.PeakW != want.PeakW {
			t.Fatalf("trial %d: peak %v, want %v", trial, got.PeakW, want.PeakW)
		}
		if d := relDiff(got.EnergyJ, want.EnergyJ); d > tol {
			t.Fatalf("trial %d [%d,%d) @%d: energy %v vs %v (rel %.3g)",
				trial, start, stop, cfg.SampleInterval, got.EnergyJ, want.EnergyJ, d)
		}
		if d := relDiff(got.AvgPowerW, want.AvgPowerW); d > tol {
			t.Fatalf("trial %d: avg %v vs %v (rel %.3g)",
				trial, got.AvgPowerW, want.AvgPowerW, d)
		}
		if got.Start != want.Start || got.Window != want.Window {
			t.Fatalf("trial %d: window [%v,%v), want [%v,%v)",
				trial, got.Start, got.Window, want.Start, want.Window)
		}
	}
}

// TestIntegrateMatchesSampleWithFaults pins the fallback path: with sample
// drops and glitches active, Integrate must make RNG draws in exactly the
// order Sample does, so two injectors built from the same seed produce
// bit-identical summaries.
func TestIntegrateMatchesSampleWithFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	plan := &fault.Plan{SampleDropProb: 0.1, SampleGlitchProb: 0.05}
	for trial := 0; trial < 50; trial++ {
		end := sim.Time(10_000 + rng.Int63n(int64(sim.Second)))
		rec := randomRecorder(rng, 1+rng.Intn(20), end)
		seed := rng.Uint64()

		injA, err := fault.NewInjector(plan, seed)
		if err != nil {
			t.Fatal(err)
		}
		injB, err := fault.NewInjector(plan, seed)
		if err != nil {
			t.Fatal(err)
		}

		cfgA := DefaultConfig()
		cfgA.Faults = injA
		cap, err := Sample(rec, 0, end, cfgA)
		if err != nil {
			t.Fatalf("trial %d: Sample: %v", trial, err)
		}
		want := Summarize(cap)

		cfgB := DefaultConfig()
		cfgB.Faults = injB
		got, err := Integrate(rec, 0, end, cfgB)
		if err != nil {
			t.Fatalf("trial %d: Integrate: %v", trial, err)
		}

		// Configs differ only by injector pointer; null them for the
		// comparable-struct equality check.
		got.Config.Faults, want.Config.Faults = nil, nil
		if got != want {
			t.Fatalf("trial %d seed %d: faulty summaries diverge:\n got %+v\nwant %+v",
				trial, seed, got, want)
		}
	}
}

// TestIntegrateAllocs pins the point of Integrate: measuring a window must
// not allocate, however many readings it covers. (Sample materializes one
// float per reading — 300k for a 60-second run — which was the dominant
// allocation of a sweep cell.)
func TestIntegrateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rec := randomRecorder(rng, 64, 60*sim.Second)
	cfg := DefaultConfig()
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Integrate(rec, 0, 60*sim.Second, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Integrate allocates %.1f objects per 60s window, want 0", allocs)
	}
}
