// Package daq simulates the data-acquisition setup of Section 4.1: an
// external instrument samples the Itsy's supply voltage and the voltage drop
// across a 0.02 Ω precision shunt resistor 5000 times per second, quantizes
// each reading to 16 bits, and begins recording when the device under test
// toggles a GPIO pin.
//
// Every energy number an experiment reports flows through this package, so
// results carry the same sampling and quantization structure as the paper's:
// E = Σ pᵢ · 0.0002 J, where pᵢ are the captured power readings.
package daq

import (
	"errors"
	"fmt"
	"math"

	"clocksched/internal/fault"
	"clocksched/internal/power"
	"clocksched/internal/sim"
	"clocksched/internal/telemetry"
)

// Config describes the instrument.
type Config struct {
	// SampleInterval is the time between successive readings. The paper's
	// DAQ read 5000 times per second: 200 µs.
	SampleInterval sim.Duration
	// Bits is the ADC resolution.
	Bits int
	// FullScaleWatts is the power corresponding to a full-scale ADC
	// reading; readings clip above it.
	FullScaleWatts float64
	// SupplyVolts is the external supply level, 3.1 V in the paper's
	// setup. It is recorded for current computations.
	SupplyVolts float64
	// ShuntOhms is the sense-resistor value, 0.02 Ω in the paper.
	ShuntOhms float64
	// Faults optionally injects acquisition-side failures: dropped
	// conversions (the instrument holds its previous reading, as a real
	// sample-and-hold front end would) and additive glitches on the shunt
	// voltage. Nil means a perfect instrument.
	Faults *fault.Injector
	// Telemetry, when non-nil, receives capture counts and per-sample
	// drop/glitch statistics. Nil disables instrumentation.
	Telemetry *telemetry.Registry
}

// DefaultConfig returns the paper's instrument settings.
func DefaultConfig() Config {
	return Config{
		SampleInterval: 200 * sim.Microsecond,
		Bits:           16,
		FullScaleWatts: 8.0,
		SupplyVolts:    3.1,
		ShuntOhms:      0.02,
	}
}

func (c Config) validate() error {
	if c.SampleInterval <= 0 {
		return errors.New("daq: non-positive sample interval")
	}
	if c.Bits < 1 || c.Bits > 32 {
		return fmt.Errorf("daq: unreasonable ADC resolution %d bits", c.Bits)
	}
	if c.FullScaleWatts <= 0 {
		return errors.New("daq: non-positive full scale")
	}
	return nil
}

// quantize maps w onto the ADC's code grid and back, clipping at full scale.
func (c Config) quantize(w float64) float64 {
	if w <= 0 {
		return 0
	}
	if w >= c.FullScaleWatts {
		return c.FullScaleWatts
	}
	codes := float64(int64(1)<<uint(c.Bits) - 1)
	lsb := c.FullScaleWatts / codes
	return math.Round(w/lsb) * lsb
}

// Capture is one recorded measurement window.
type Capture struct {
	Config Config
	Start  sim.Time
	// Window is the requested capture span (end − start). When it is not a
	// whole number of sample intervals the final reading stands for a
	// shortened interval; Duration and Energy account for that. A zero
	// Window (captures built before the field existed, or literals in
	// tests) means exactly len(Samples) whole intervals.
	Window  sim.Duration
	Samples []float64 // quantized power readings, watts
}

// Sample records power readings from rec over [start, end), beginning at the
// trigger instant start, one reading every SampleInterval. A window that is
// not a whole number of sample intervals is still covered in full: the
// instrument takes one extra reading at the start of the trailing partial
// interval, and Energy weights it by the partial interval's length.
func Sample(rec *power.Recorder, start, end sim.Time, cfg Config) (Capture, error) {
	if err := cfg.validate(); err != nil {
		return Capture{}, err
	}
	if start < 0 || end <= start {
		return Capture{}, fmt.Errorf("daq: bad capture window [%v, %v)", start, end)
	}
	if end > rec.End() {
		return Capture{}, fmt.Errorf("daq: capture window ends at %v but timeline ends at %v",
			end, rec.End())
	}
	window := end - start
	// Ceiling division: a trailing partial interval gets its own reading
	// rather than being silently dropped from the energy integral.
	n := int((window + cfg.SampleInterval - 1) / cfg.SampleInterval)
	cap := Capture{Config: cfg, Start: start, Window: window, Samples: make([]float64, 0, n)}
	tel := cfg.Telemetry
	telDropped := tel.Counter(telemetry.MDAQSamplesDropped)
	telGlitched := tel.Counter(telemetry.MDAQSamplesGlitched)
	held := 0.0 // last good quantized reading, for sample-and-hold drops
	for i := 0; i < n; i++ {
		t := start + sim.Time(i)*cfg.SampleInterval
		if cfg.Faults.DropSample() {
			// Conversion lost: the instrument repeats its previous
			// reading (zero before the first good conversion).
			telDropped.Inc()
			cap.Samples = append(cap.Samples, held)
			continue
		}
		w, err := rec.PowerAt(t)
		if err != nil {
			return Capture{}, err
		}
		if g, ok := cfg.Faults.GlitchWatts(); ok {
			telGlitched.Inc()
			w += g // quantize clips the result to [0, full scale]
		}
		held = cfg.quantize(w)
		cap.Samples = append(cap.Samples, held)
	}
	tel.Counter(telemetry.MDAQCaptures).Inc()
	tel.Counter(telemetry.MDAQSamples).Add(int64(len(cap.Samples)))
	return cap, nil
}

// Duration returns the time span the capture covers.
func (c Capture) Duration() sim.Duration {
	if c.Window > 0 {
		return c.Window
	}
	return sim.Duration(len(c.Samples)) * c.Config.SampleInterval
}

// Energy computes total energy exactly as the paper does: each reading
// stands for the average power over the following sample interval. When the
// capture window ends inside the final interval, that reading is weighted by
// the partial interval it actually covers.
func (c Capture) Energy() float64 {
	dt := c.Config.SampleInterval.Seconds()
	sum := 0.0
	for _, p := range c.Samples {
		sum += p * dt
	}
	if covered := sim.Duration(len(c.Samples)) * c.Config.SampleInterval; c.Window > 0 && c.Window < covered {
		// The last reading overhangs the window; refund the overhang.
		sum -= c.Samples[len(c.Samples)-1] * (covered - c.Window).Seconds()
	}
	return sum
}

// AveragePower returns the mean of the captured readings, in watts.
func (c Capture) AveragePower() float64 {
	if len(c.Samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range c.Samples {
		sum += p
	}
	return sum / float64(len(c.Samples))
}

// PeakPower returns the largest captured reading, in watts.
func (c Capture) PeakPower() float64 {
	peak := 0.0
	for _, p := range c.Samples {
		if p > peak {
			peak = p
		}
	}
	return peak
}

// MeanCurrent returns the average supply current implied by the capture, in
// amperes, as the instrument operator would compute it from the shunt.
func (c Capture) MeanCurrent() float64 {
	if c.Config.SupplyVolts <= 0 {
		return 0
	}
	return c.AveragePower() / c.Config.SupplyVolts
}
