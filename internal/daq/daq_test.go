package daq

import (
	"math"
	"testing"

	"clocksched/internal/cpu"
	"clocksched/internal/fault"
	"clocksched/internal/power"
	"clocksched/internal/sim"
)

func constantRecorder(watts float64, end sim.Time) *power.Recorder {
	r := power.NewRecorder(power.DefaultModel(),
		power.State{Step: cpu.MaxStep, V: cpu.VHigh, Mode: power.ModeActive})
	r.SetWatts(0, watts)
	r.Finish(end)
	return r
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.SampleInterval != 200 {
		t.Errorf("sample interval = %v, want 200µs (5 kHz)", c.SampleInterval)
	}
	if c.Bits != 16 {
		t.Errorf("bits = %d, want 16", c.Bits)
	}
	if c.SupplyVolts != 3.1 || c.ShuntOhms != 0.02 {
		t.Errorf("supply/shunt = %v/%v, want 3.1V/0.02Ω", c.SupplyVolts, c.ShuntOhms)
	}
}

func TestSampleCountAndEnergy(t *testing.T) {
	rec := constantRecorder(2.0, sim.Second)
	cap, err := Sample(rec, 0, sim.Second, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cap.Samples) != 5000 {
		t.Fatalf("captured %d samples over 1s, want 5000", len(cap.Samples))
	}
	// Constant 2 W for 1 s = 2 J, modulo one quantization LSB.
	if got := cap.Energy(); math.Abs(got-2.0) > 1e-3 {
		t.Errorf("energy = %v, want 2.0", got)
	}
	if got := cap.AveragePower(); math.Abs(got-2.0) > 1e-3 {
		t.Errorf("avg power = %v, want 2.0", got)
	}
	if got := cap.Duration(); got != sim.Second {
		t.Errorf("duration = %v, want 1s", got)
	}
}

func TestQuantization(t *testing.T) {
	c := DefaultConfig()
	lsb := c.FullScaleWatts / 65535
	// A value between code centres snaps to the grid.
	in := 3.0*lsb + 0.4*lsb
	got := c.quantize(in)
	if math.Abs(got-3*lsb) > 1e-12 {
		t.Errorf("quantize(%v) = %v, want %v", in, got, 3*lsb)
	}
	if got := c.quantize(-1); got != 0 {
		t.Errorf("quantize(-1) = %v, want 0 (clip)", got)
	}
	if got := c.quantize(99); got != c.FullScaleWatts {
		t.Errorf("quantize(99) = %v, want full scale (clip)", got)
	}
	// Quantization error is bounded by half an LSB inside the range.
	for _, w := range []float64{0.1, 1.0, 1.43, 5.5, 7.99} {
		if err := math.Abs(c.quantize(w) - w); err > lsb/2+1e-12 {
			t.Errorf("quantize(%v) error %v exceeds LSB/2", w, err)
		}
	}
}

func TestSampleStepTimeline(t *testing.T) {
	// 1 W for the first half, 3 W for the second: sampled energy ≈ 2 J,
	// and the samples visibly change level.
	r := power.NewRecorder(power.DefaultModel(),
		power.State{Step: cpu.MaxStep, V: cpu.VHigh, Mode: power.ModeActive})
	r.SetWatts(0, 1.0)
	r.SetWatts(500*sim.Millisecond, 3.0)
	r.Finish(sim.Second)
	cap, err := Sample(r, 0, sim.Second, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cap.Samples[0]-1.0) > 1e-3 {
		t.Errorf("first sample = %v, want 1.0", cap.Samples[0])
	}
	last := cap.Samples[len(cap.Samples)-1]
	if math.Abs(last-3.0) > 1e-3 {
		t.Errorf("last sample = %v, want 3.0", last)
	}
	if got := cap.Energy(); math.Abs(got-2.0) > 1e-3 {
		t.Errorf("energy = %v, want 2.0", got)
	}
	if got := cap.PeakPower(); math.Abs(got-3.0) > 1e-3 {
		t.Errorf("peak = %v, want 3.0", got)
	}
}

func TestSampleWindowed(t *testing.T) {
	// Triggering mid-run captures only the window, like the GPIO trigger.
	rec := constantRecorder(1.0, sim.Second)
	cap, err := Sample(rec, 250*sim.Millisecond, 750*sim.Millisecond, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cap.Samples) != 2500 {
		t.Errorf("windowed capture has %d samples, want 2500", len(cap.Samples))
	}
	if cap.Start != 250*sim.Millisecond {
		t.Errorf("capture start = %v", cap.Start)
	}
}

func TestSampleErrors(t *testing.T) {
	rec := constantRecorder(1.0, sim.Second)
	cfg := DefaultConfig()
	cases := []struct {
		name       string
		start, end sim.Time
		cfg        Config
	}{
		{"negative start", -1, sim.Second, cfg},
		{"empty window", 100, 100, cfg},
		{"inverted window", 200, 100, cfg},
		{"beyond timeline", 0, 2 * sim.Second, cfg},
	}
	for _, c := range cases {
		if _, err := Sample(rec, c.start, c.end, c.cfg); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
	bad := cfg
	bad.SampleInterval = 0
	if _, err := Sample(rec, 0, sim.Second, bad); err == nil {
		t.Error("zero sample interval: no error")
	}
	bad = cfg
	bad.Bits = 0
	if _, err := Sample(rec, 0, sim.Second, bad); err == nil {
		t.Error("zero bits: no error")
	}
	bad = cfg
	bad.FullScaleWatts = 0
	if _, err := Sample(rec, 0, sim.Second, bad); err == nil {
		t.Error("zero full scale: no error")
	}
}

// TestSamplePartialWindow is the regression test for the truncation bug:
// Sample used to floor the window to whole 200 µs intervals, silently
// dropping the trailing partial interval's energy. A window not divisible by
// the sample interval must now be covered in full.
func TestSamplePartialWindow(t *testing.T) {
	rec := constantRecorder(2.0, 2*sim.Second)
	window := sim.Second + 300*sim.Microsecond // 1.0003 s: 5001 whole intervals + 100 µs
	cap, err := Sample(rec, 0, sim.Time(window), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cap.Samples) != 5002 {
		t.Fatalf("captured %d samples over %v, want 5002 (ceil)", len(cap.Samples), window)
	}
	if got := cap.Duration(); got != window {
		t.Errorf("duration = %v, want %v", got, window)
	}
	// Constant 2 W over 1.0003 s is 2.0006 J. The old floor-truncating code
	// reported 2.0002 J (5001 samples × 200 µs), losing the partial interval.
	if got := cap.Energy(); math.Abs(got-2.0006) > 1e-4 {
		t.Errorf("energy = %v, want 2.0006 (partial interval covered)", got)
	}

	// A window shorter than one sample interval is likewise covered by a
	// single partial-interval reading instead of erroring.
	small, err := Sample(rec, 0, 100, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Samples) != 1 {
		t.Fatalf("sub-interval window captured %d samples, want 1", len(small.Samples))
	}
	if got, want := small.Energy(), 2.0*(100*sim.Microsecond).Seconds(); math.Abs(got-want) > 1e-7 {
		t.Errorf("sub-interval energy = %v, want %v", got, want)
	}

	// A divisible window is bit-identical to the pre-fix behaviour.
	exact, err := Sample(rec, 0, sim.Second, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Samples) != 5000 || math.Abs(exact.Energy()-2.0) > 1e-3 {
		t.Errorf("divisible window: %d samples, %v J", len(exact.Samples), exact.Energy())
	}
}

func TestMeanCurrent(t *testing.T) {
	rec := constantRecorder(3.1, sim.Second) // 3.1 W at 3.1 V → 1 A
	cap, err := Sample(rec, 0, sim.Second, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := cap.MeanCurrent(); math.Abs(got-1.0) > 1e-3 {
		t.Errorf("mean current = %v, want 1.0 A", got)
	}
	capBad := cap
	capBad.Config.SupplyVolts = 0
	if capBad.MeanCurrent() != 0 {
		t.Error("zero supply volts should yield zero current, not Inf")
	}
}

func TestEmptyCaptureStats(t *testing.T) {
	var c Capture
	c.Config = DefaultConfig()
	if c.AveragePower() != 0 || c.PeakPower() != 0 || c.Energy() != 0 {
		t.Error("empty capture should report zeros")
	}
}

func TestSampleDropsHoldPreviousReading(t *testing.T) {
	// A ramp timeline makes drops visible: every held sample repeats its
	// predecessor exactly, which a fresh conversion of the ramp never does.
	r := power.NewRecorder(power.DefaultModel(),
		power.State{Step: cpu.MaxStep, V: cpu.VHigh, Mode: power.ModeActive})
	for ms := 0; ms < 1000; ms++ {
		r.SetWatts(sim.Time(ms)*sim.Millisecond, 1.0+0.005*float64(ms))
	}
	r.Finish(sim.Second)

	cfg := DefaultConfig()
	in, err := fault.NewInjector(&fault.Plan{SampleDropProb: 0.2}, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = in
	cap, err := Sample(r, 0, sim.Second, cfg)
	if err != nil {
		t.Fatal(err)
	}
	drops := in.Counts().SamplesDropped
	if drops == 0 {
		t.Fatal("20% drop rate injected nothing in 5000 samples")
	}
	if len(cap.Samples) != 5000 {
		t.Fatalf("drops changed sample count: %d", len(cap.Samples))
	}
	// Count samples identical to their predecessor; with 5 conversions per
	// 1 ms ramp segment, 4/5 of clean adjacent pairs also repeat, so only
	// check held readings never exceed the running maximum of the ramp.
	for i := 1; i < len(cap.Samples); i++ {
		if cap.Samples[i] < cap.Samples[i-1]-1e-9 {
			t.Fatalf("sample %d decreased on a rising ramp: %v < %v",
				i, cap.Samples[i], cap.Samples[i-1])
		}
	}
}

func TestSampleGlitchesStayClipped(t *testing.T) {
	rec := constantRecorder(7.9, sim.Second) // near full scale
	cfg := DefaultConfig()
	in, err := fault.NewInjector(&fault.Plan{SampleGlitchProb: 1, SampleGlitchWatts: 1.0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = in
	cap, err := Sample(rec, 0, sim.Second, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if in.Counts().SamplesGlitched != len(cap.Samples) {
		t.Errorf("probability-1 glitches hit %d of %d samples",
			in.Counts().SamplesGlitched, len(cap.Samples))
	}
	saw := false
	for i, s := range cap.Samples {
		if s < 0 || s > cfg.FullScaleWatts {
			t.Fatalf("sample %d = %v escaped ADC range", i, s)
		}
		if math.Abs(s-7.9) > 0.01 {
			saw = true
		}
	}
	if !saw {
		t.Error("±1 W glitches left every reading within 0.01 W of truth")
	}
}

func TestSampleFaultsDeterministic(t *testing.T) {
	rec := constantRecorder(2.0, sim.Second)
	run := func() []float64 {
		cfg := DefaultConfig()
		in, err := fault.NewInjector(&fault.Plan{SampleDropProb: 0.1, SampleGlitchProb: 0.1}, 21)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = in
		cap, err := Sample(rec, 0, sim.Second, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return cap.Samples
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, sample %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEnergyMatchesExactIntegralClosely(t *testing.T) {
	// Sampled energy of a many-segment timeline tracks the exact integral
	// to within sampling + quantization error.
	m := power.DefaultModel()
	r := power.NewRecorder(m, power.State{Step: cpu.MaxStep, V: cpu.VHigh, Mode: power.ModeActive})
	st := power.State{Step: cpu.MaxStep, V: cpu.VHigh}
	rng := sim.NewRNG(5)
	now := sim.Time(0)
	for now < 10*sim.Second {
		now += rng.Duration(sim.Millisecond, 40*sim.Millisecond)
		st.Mode = power.Mode(rng.Int63n(2))
		st.Step = cpu.Step(rng.Int63n(cpu.NumSteps))
		if now < 10*sim.Second {
			r.SetState(now, st)
		}
	}
	r.Finish(10 * sim.Second)
	exact, err := r.Energy(0, 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	cap, err := Sample(r, 0, 10*sim.Second, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(cap.Energy()-exact) / exact; rel > 0.01 {
		t.Errorf("sampled energy off by %.2f%% from exact integral", rel*100)
	}
}
