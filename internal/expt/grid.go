package expt

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"time"

	"clocksched/internal/cpu"
	"clocksched/internal/kernel"
	"clocksched/internal/sim"
	"clocksched/internal/sweep"
	"clocksched/internal/telemetry"
)

// Env carries the cross-cutting execution settings for one experiment run:
// the cancellation context, the workload jitter seed, the sweep worker
// count, and an optional cell cache. The zero value runs serially with seed
// 0 and no cache.
type Env struct {
	Ctx     context.Context
	Seed    uint64
	Workers int
	Cache   *sweep.Cache
	// Telemetry, when non-nil, instruments the sweep pool, the cache, and
	// every cell's simulation stack. Purely observational: results are
	// bit-identical with or without it.
	Telemetry *telemetry.Registry
	// Stats, when non-nil, is filled with the pool statistics of the last
	// grid run.
	Stats *sweep.PoolStats
	// Journal, when non-nil (with Cache), durably commits each completed
	// cell so an interrupted experiment regeneration can resume, replaying
	// committed cells from the disk cache.
	Journal *sweep.CellJournal
	// CellTimeout, when positive, bounds each cell attempt's wall time.
	CellTimeout time.Duration
	// Retries and RetryBase configure per-cell retry of transient failures
	// with seeded exponential backoff; zero Retries disables.
	Retries   int
	RetryBase time.Duration
	// Progress, when non-nil, receives the sweep pool's done/total counts
	// (see sweep.Options.OnProgress). A resumed run's counts start at the
	// journal-replayed cell count.
	Progress func(done, total int)
	// DataDir, when non-empty, is a durable scratch directory for
	// experiments that keep their own cell caches and journals. Cache and
	// Journal above carry grid-cell payloads, so experiments sweeping the
	// public clocksched.Sweep path (the fleet experiment) cannot share
	// them; they open result-typed state under DataDir instead.
	DataDir string
	// Resume tells DataDir-owning experiments to replay the journal left
	// by an interrupted run instead of truncating it, mirroring the
	// Journal field's semantics for grid experiments.
	Resume bool
}

// DefaultEnv is the serial environment the pre-batch API ran under: one
// worker, no cache.
func DefaultEnv(seed uint64) Env {
	return Env{Ctx: context.Background(), Seed: seed, Workers: 1}
}

func (e Env) ctx() context.Context {
	if e.Ctx == nil {
		return context.Background()
	}
	return e.Ctx
}

// Cell is the serializable projection of one measurement run that grid
// experiments consume. Unlike RunOutcome — which exposes the live kernel
// and workload for arbitrary queries — a Cell is plain data, so it can be
// cached on disk and compared bit for bit. Misses are counted at the
// paper's 33 ms perceptual slack.
type Cell struct {
	WorkloadName string // the workload's display name, e.g. "MPEG"

	EnergyJ   float64
	AvgPowerW float64
	MeanUtil  float64

	Deadlines   int
	Misses      int
	MaxLateness sim.Duration

	SpeedChanges   int
	VoltageChanges int
	Residency      [cpu.NumSteps]sim.Duration

	// Util is the per-quantum utilization log; captured only when the
	// grid asks for it, since it dominates the cell's footprint.
	Util []kernel.UtilSample
}

// GridCell names one cell of an experiment grid and builds its spec.
type GridCell struct {
	// Key discriminates the cell for caching; it must determine the spec
	// completely (configuration name, seed, duration, …). Empty disables
	// caching for the cell. RunGrid prefixes the simulation version and
	// the capture mode, so bumping sim.Version invalidates every entry.
	Key string
	// Spec builds a fresh spec; it is called once, on the worker, because
	// policy modules carry per-run state.
	Spec func() RunSpec
}

// projectCell reduces a run outcome to its serializable projection.
func projectCell(out *RunOutcome, keepUtil bool) Cell {
	col := out.Workload.Metrics()
	c := Cell{
		WorkloadName:   out.Workload.Name(),
		EnergyJ:        out.EnergyJ,
		AvgPowerW:      out.AvgPowerW,
		MeanUtil:       out.MeanUtil,
		Deadlines:      col.Count(),
		Misses:         col.MissCount(table2Slack),
		MaxLateness:    col.MaxLateness(),
		SpeedChanges:   out.Kernel.SpeedChanges(),
		VoltageChanges: out.Kernel.VoltageChanges(),
		Residency:      out.Kernel.Residency(),
	}
	if keepUtil {
		c.Util = out.Kernel.UtilLog()
	}
	return c
}

// RunGrid fans the cells across Env.Workers goroutines and returns their
// projections ordered by grid index — bit-identical to running the same
// specs in a serial loop, whatever the completion order. The first cell
// error aborts the grid. keepUtil retains each cell's per-quantum
// utilization log (needed by the figure panels, costly for big grids).
func RunGrid(env Env, cells []GridCell, keepUtil bool) ([]Cell, error) {
	jobs := make([]sweep.Job, len(cells))
	for i, c := range cells {
		key := ""
		if c.Key != "" {
			key = sim.NewHasher("expt.Cell").
				Field("cell", c.Key).
				Field("util", keepUtil).
				Sum()
		}
		spec := c.Spec
		jobs[i] = sweep.Job{
			Key: key,
			Run: func(ctx context.Context) (any, error) {
				s := spec()
				s.Telemetry = env.Telemetry
				out, err := RunContext(ctx, s)
				if err != nil {
					return nil, err
				}
				return projectCell(out, keepUtil), nil
			},
		}
	}
	outs, err := sweep.Run(env.ctx(), jobs, sweep.Options{
		Workers:     env.Workers,
		FailFast:    true,
		Cache:       env.Cache,
		OnProgress:  env.Progress,
		Telemetry:   env.Telemetry,
		Stats:       env.Stats,
		Journal:     env.Journal,
		CellTimeout: env.CellTimeout,
		Retry:       sweep.RetryPolicy{Max: env.Retries, Base: env.RetryBase, Seed: env.Seed},
	})
	if err != nil {
		return nil, err
	}
	res := make([]Cell, len(outs))
	for i, o := range outs {
		cell, ok := o.Value.(Cell)
		if !ok {
			return nil, fmt.Errorf("expt: grid cell %d returned %T", i, o.Value)
		}
		res[i] = cell
	}
	return res, nil
}

// NewCellCache builds a sweep cache for grid cells: maxEntries in memory
// (non-positive selects the default), plus a disk layer under dir when it
// is non-empty.
func NewCellCache(maxEntries int, dir string) (*sweep.Cache, error) {
	return sweep.NewCache(maxEntries, dir, sweep.Codec{
		Encode: func(v any) ([]byte, error) {
			cell, ok := v.(Cell)
			if !ok {
				return nil, fmt.Errorf("expt: caching %T, want Cell", v)
			}
			var b bytes.Buffer
			if err := gob.NewEncoder(&b).Encode(cell); err != nil {
				return nil, err
			}
			return b.Bytes(), nil
		},
		Decode: func(b []byte) (any, error) {
			var cell Cell
			if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&cell); err != nil {
				return nil, err
			}
			return cell, nil
		},
	})
}
