package expt

import (
	"strings"
	"testing"

	"clocksched/internal/cpu"
)

func TestDeadlineComparison(t *testing.T) {
	rows, err := DeadlineComparison(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	const (
		constant = 0
		best     = 1
		deadline = 2
		deadVS   = 3
	)
	// Nothing misses deadlines.
	for _, r := range rows {
		if r.Misses != 0 {
			t.Errorf("%s missed %d deadlines", r.Policy, r.Misses)
		}
	}
	// The deadline scheduler beats both the constant baseline and the
	// best heuristic: application-supplied deadlines are worth real
	// energy, which is why the paper's future work pointed there.
	if !(rows[deadline].EnergyJ < rows[best].EnergyJ) {
		t.Errorf("deadline (%0.2f J) not below best heuristic (%0.2f J)",
			rows[deadline].EnergyJ, rows[best].EnergyJ)
	}
	if !(rows[best].EnergyJ < rows[constant].EnergyJ) {
		t.Errorf("best heuristic (%0.2f J) not below constant (%0.2f J)",
			rows[best].EnergyJ, rows[constant].EnergyJ)
	}
	// Voltage scaling helps the deadline scheduler (it actually lives
	// below 162.2 MHz, unlike peg-peg).
	if !(rows[deadVS].EnergyJ < rows[deadline].EnergyJ) {
		t.Errorf("voltage scaling did not help: %0.2f vs %0.2f J",
			rows[deadVS].EnergyJ, rows[deadline].EnergyJ)
	}
	// The deadline scheduler settles near the clip's ideal speed rather
	// than slamming between the extremes.
	if rows[deadline].ModalMHz < 118 || rows[deadline].ModalMHz > 162.2 {
		t.Errorf("deadline scheduler modal clock = %.1f MHz, want near the 132.7 ideal",
			rows[deadline].ModalMHz)
	}
	if rows[best].ModalMHz != 206.4 && rows[best].ModalMHz != 59.0 {
		t.Errorf("peg-peg modal clock = %.1f MHz, want an extreme", rows[best].ModalMHz)
	}
	text := RenderDeadlineComparison(rows)
	if !strings.Contains(text, "DEADLINE") {
		t.Error("render missing rows")
	}
	t.Logf("\n%s", text)
}

func TestMartinOptimumInterior(t *testing.T) {
	res, err := MartinOptimum(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != cpu.NumSteps {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// With a heavy-load exponent the optimum is interior: Martin's
	// "lower bound on clock frequency".
	if res.Best == cpu.MinStep || res.Best == cpu.MaxStep {
		t.Errorf("optimum at %v; want an interior step", res.Best)
	}
	// Lifetime decreases with clock speed throughout.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].LifetimeH >= res.Rows[i-1].LifetimeH {
			t.Errorf("lifetime not decreasing at %v", res.Rows[i].Step)
		}
	}
	if !strings.Contains(res.Render(), "optimum") {
		t.Error("render missing optimum marker")
	}
}

func TestMartinOptimumLimits(t *testing.T) {
	// A nearly ideal battery (k→1) favours the fastest clock: capacity
	// barely shrinks, so more cycles per hour wins.
	ideal, err := MartinOptimum(1.05)
	if err != nil {
		t.Fatal(err)
	}
	if ideal.Best != cpu.MaxStep {
		t.Errorf("k=1.05 optimum at %v, want the fastest step", ideal.Best)
	}
	// A brutal rate-capacity effect favours the slowest clock.
	steep, err := MartinOptimum(4.0)
	if err != nil {
		t.Fatal(err)
	}
	if steep.Best != cpu.MinStep {
		t.Errorf("k=4 optimum at %v, want the slowest step", steep.Best)
	}
}

func TestMartinOptimumValidation(t *testing.T) {
	if _, err := MartinOptimum(0.5); err == nil {
		t.Error("exponent below 1 accepted")
	}
}
