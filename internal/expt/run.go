// Package expt defines one reproduction harness per table and figure of the
// paper's evaluation. Each experiment returns a typed result with a text
// renderer that prints the same rows or series the paper reports;
// cmd/experiments regenerates everything, and the module-level benchmarks
// (bench_test.go) time each one.
package expt

import (
	"context"
	"fmt"

	"clocksched/internal/cpu"
	"clocksched/internal/daq"
	"clocksched/internal/fault"
	"clocksched/internal/kernel"
	"clocksched/internal/metrics"
	"clocksched/internal/policy"
	"clocksched/internal/power"
	"clocksched/internal/sim"
	"clocksched/internal/sweep"
	"clocksched/internal/telemetry"
	"clocksched/internal/workload"
)

// RunSpec describes one simulated measurement run: a workload on the Itsy
// under a clock scaling policy, instrumented by the DAQ.
type RunSpec struct {
	// Workload is one of "mpeg", "web", "chess", "editor", "rect", or
	// "feedback".
	Workload string
	// Seed drives workload jitter; distinct seeds stand in for the
	// paper's repeated measurement runs.
	Seed uint64
	// Duration bounds the run; zero uses the workload's natural length.
	Duration sim.Duration
	// Policy is the installed clock scaling module; nil runs at constant
	// initial settings.
	Policy kernel.SpeedPolicy
	// InitialStep and InitialV are the boot clock settings (zero values:
	// 59 MHz at 1.5 V — pass cpu.MaxStep explicitly for full speed).
	InitialStep cpu.Step
	InitialV    cpu.Voltage
	// Model overrides the power model (nil: the calibrated Itsy model).
	Model *power.Model

	// Faults, when non-nil and non-zero, injects hardware/driver failures
	// into the run. The injector draws from its own RNG stream derived
	// from Seed, so a nil plan is bit-identical to the pre-fault-layer
	// behaviour and the same seed+plan always injects the same schedule.
	Faults *fault.Plan
	// Watchdog, when non-nil, wraps Policy in a supervisory
	// policy.Watchdog with these settings (zero fields take defaults).
	Watchdog *policy.WatchdogConfig
	// WatchdogSlack is the lateness beyond which a completed deadline
	// counts against the watchdog's miss-streak detector; zero selects
	// 33 ms, matching the public API's default perceptual slack.
	WatchdogSlack sim.Duration
	// EventCap bounds the number of events the engine may fire; zero
	// derives a generous cap from the run length. The cap converts a
	// runaway schedule (a policy or fault interaction that would spin
	// forever at one instant) into a structured error instead of a hang.
	EventCap uint64
	// Cancel, when non-nil, is polled at every quantum boundary; a
	// non-nil return aborts the run with that error. RunContext wires a
	// context's Err here; it is excluded from spec hashing.
	Cancel func() error
	// Attempt is the zero-based retry attempt of this cell within a sweep.
	// It salts only the fault injector's cell-abort stream — attempt 0 is
	// bit-identical to the pre-retry behaviour, and successful runs are
	// identical across attempts — so it is excluded from spec hashing.
	// RunContext fills it from the context when the sweep's retry layer
	// annotated one.
	Attempt int
	// Telemetry, when non-nil, receives live instrumentation from the
	// engine, kernel, policy, and DAQ. Like Cancel it is observational
	// plumbing: it never influences the simulation and is excluded from
	// spec hashing.
	Telemetry *telemetry.Registry
}

// RunOutcome bundles everything a measurement run produced.
type RunOutcome struct {
	Spec     RunSpec
	Workload workload.Workload
	Kernel   *kernel.Kernel
	// DAQ is the instrument's digest of the run: sample count, energy,
	// average and peak power. The per-sample array is no longer
	// materialized on this path (daq.Sample remains available for callers
	// that need raw readings).
	DAQ daq.Summary

	// Faults tallies what the injector actually did (zero when no plan
	// was given).
	Faults fault.Counts
	// Watchdog is the supervisory wrapper, when one was requested.
	Watchdog *policy.Watchdog

	// EnergyJ is the DAQ-integrated energy of the whole run, the
	// quantity Table 2 reports.
	EnergyJ float64
	// AvgPowerW is the mean sampled power.
	AvgPowerW float64
	// MeanUtil is the average per-quantum utilization in [0,1].
	MeanUtil float64
}

func buildWorkload(spec RunSpec) (workload.Workload, error) {
	switch spec.Workload {
	case "mpeg":
		cfg := workload.DefaultMPEGConfig()
		if spec.Seed != 0 {
			cfg.Seed = spec.Seed
		}
		if spec.Duration != 0 {
			cfg.Length = spec.Duration
		}
		// A deadline-consuming policy — DeadlineScheduler or any of the
		// zoo schedulers — gets the cooperative application model of the
		// paper's future-work section: the player advertises each frame's
		// work and due time through the DeadlineSink interface.
		if ds, ok := spec.Policy.(workload.DeadlineSink); ok {
			cfg.Deadlines = ds
		}
		return workload.NewMPEG(cfg)
	case "web":
		return workload.NewWeb(workload.DefaultWebTrace(spec.Seed + 1))
	case "chess":
		return workload.NewChess(workload.DefaultChessTrace(spec.Seed + 1))
	case "editor":
		return workload.NewTalkingEditor(workload.DefaultEditorTrace(spec.Seed + 1))
	case "rect":
		length := spec.Duration
		if length == 0 {
			length = 60 * sim.Second
		}
		return workload.NewRectWave(9, 1, length)
	case "feedback":
		cfg := workload.DefaultFeedbackConfig()
		if spec.Seed != 0 {
			cfg.Seed = spec.Seed
		}
		if spec.Duration != 0 {
			cfg.Length = spec.Duration
		}
		// Like MPEG, the control loop cooperates with a deadline-consuming
		// policy by advertising each sample's work and due time.
		if ds, ok := spec.Policy.(workload.DeadlineSink); ok {
			cfg.Deadlines = ds
		}
		return workload.NewFeedback(cfg)
	default:
		return nil, fmt.Errorf("expt: unknown workload %q", spec.Workload)
	}
}

// Run executes one measurement run.
func Run(spec RunSpec) (*RunOutcome, error) {
	return RunContext(context.Background(), spec)
}

// RunContext executes one measurement run under a context. Cancellation is
// observed at quantum boundaries — the simulation's only blocking-free
// preemption points — so an aborted run stops within one simulated quantum
// of the cancel and returns an error satisfying errors.Is(err, ctx.Err()).
func RunContext(ctx context.Context, spec RunSpec) (*RunOutcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if spec.Cancel == nil && ctx.Done() != nil {
		spec.Cancel = ctx.Err
	}
	if spec.Attempt == 0 {
		spec.Attempt = sweep.AttemptFromContext(ctx)
	}
	// The workload is built against the unwrapped policy: MPEG inspects
	// spec.Policy for a DeadlineScheduler to cooperate with, and that
	// check must see through to the real policy, so the watchdog wraps
	// only afterwards.
	w, err := buildWorkload(spec)
	if err != nil {
		return nil, err
	}
	length := spec.Duration
	if length == 0 {
		length = w.Duration()
	}

	inj, err := fault.NewInjectorAttempt(spec.Faults, spec.Seed, spec.Attempt)
	if err != nil {
		return nil, err
	}

	var wd *policy.Watchdog
	pol := spec.Policy
	if spec.Watchdog != nil {
		if pol == nil {
			return nil, fmt.Errorf("expt: watchdog requested but no policy to supervise")
		}
		wd, err = policy.NewWatchdog(pol, *spec.Watchdog)
		if err != nil {
			return nil, err
		}
		pol = wd
		slack := spec.WatchdogSlack
		if slack == 0 {
			slack = 33 * sim.Millisecond
		}
		w.Metrics().OnRecord = func(d metrics.Deadline) {
			wd.NoteDeadline(d.Late() > slack)
		}
	}

	eng := &sim.Engine{}
	cfg := kernel.DefaultConfig()
	cfg.InitialStep = spec.InitialStep
	cfg.InitialV = spec.InitialV
	cfg.Policy = pol
	cfg.Faults = inj
	cfg.CheckCancel = spec.Cancel
	cfg.Telemetry = spec.Telemetry
	cfg.EventCap = spec.EventCap
	if in, ok := pol.(interface {
		Instrument(*telemetry.Registry)
	}); ok && spec.Telemetry != nil {
		in.Instrument(spec.Telemetry)
	}
	spec.Telemetry.Emit("run.start",
		telemetry.F("workload", spec.Workload),
		telemetry.F("seed", fmt.Sprint(spec.Seed)))
	if cfg.EventCap == 0 {
		// A real run fires a handful of events per quantum plus a few per
		// workload burst; a thousand per simulated millisecond is two
		// orders of magnitude of headroom, yet a zero-delay spin still
		// hits it in microseconds of wall time.
		cfg.EventCap = uint64(length/sim.Millisecond)*1000 + 1_000_000
	}
	if spec.Model != nil {
		cfg.Model = *spec.Model
	}
	k, err := kernel.New(eng, cfg)
	if err != nil {
		return nil, err
	}
	if err := w.Install(k); err != nil {
		return nil, err
	}
	if err := k.Run(length); err != nil {
		return nil, err
	}

	dcfg := daq.DefaultConfig()
	dcfg.Faults = inj
	dcfg.Telemetry = spec.Telemetry
	sum, err := daq.Integrate(k.Recorder(), 0, length, dcfg)
	if err != nil {
		return nil, err
	}

	out := &RunOutcome{
		Spec:      spec,
		Workload:  w,
		Kernel:    k,
		DAQ:       sum,
		Faults:    inj.Counts(),
		Watchdog:  wd,
		EnergyJ:   sum.EnergyJ,
		AvgPowerW: sum.AvgPowerW,
	}
	if log := k.UtilLog(); len(log) > 0 {
		sum := 0
		for _, u := range log {
			sum += u.PP10K
		}
		out.MeanUtil = float64(sum) / float64(len(log)) / 10000
	}
	spec.Telemetry.Emit("run.done",
		telemetry.F("workload", spec.Workload),
		telemetry.F("seed", fmt.Sprint(spec.Seed)),
		telemetry.F("energy_j", fmt.Sprintf("%.4f", out.EnergyJ)))
	return out, nil
}
