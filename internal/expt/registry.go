package expt

import (
	"fmt"
	"strings"

	"clocksched/internal/plot"
)

// Artifact is one file an experiment produces (raw series or rendered
// table).
type Artifact struct {
	Name    string
	Content string
}

// Experiment is one regenerable result: a console summary plus artifacts.
type Experiment struct {
	// Name is the key used by cmd/experiments -only.
	Name string
	// Paper says what the experiment reproduces.
	Paper string
	// Run executes the experiment under the given environment (seed,
	// context, worker count, cell cache).
	Run func(env Env) (summary string, artifacts []Artifact, err error)
}

// Registry lists every experiment, in the paper's presentation order
// followed by the extensions.
func Registry() []Experiment {
	return []Experiment{
		{"figure3", "Fig 3: utilization, 10ms quanta, 206.4MHz", runFigure3},
		{"figure4", "Fig 4: utilization, 100ms moving average", runFigure4},
		{"figure5", "Fig 5: naive window averaging", runFigure5},
		{"table1", "Table 1: AVG_9 scheduling actions", runTable1},
		{"figure6", "Fig 6: Fourier transform of decaying exponential", runFigure6},
		{"figure7", "Fig 7: AVG_3 oscillation on the rect wave", runFigure7},
		{"figure8", "Fig 8: clock timeline under the best policy", runFigure8},
		{"figure9", "Fig 9: utilization vs clock frequency", runFigure9},
		{"table2", "Table 2: energy of the best algorithms", runTable2},
		{"table3", "Table 3: memory access cycles", runTable3},
		{"battery", "§2.1: idle battery lifetime", runBattery},
		{"transitions", "§5.4: clock/voltage transition costs", runTransitions},
		{"overhead", "§4.3: forced rescheduling overhead", runOverhead},
		{"deadline", "§6 future work: deadline scheduling", runDeadline},
		{"martin", "§3: computations per battery lifetime", runMartin},
		{"pering", "§3: elastic frames, energy vs frame rate", runPering},
		{"playback", "battery-coupled playback endurance", runPlayback},
		{"sensitivity", "§5.3: threshold sensitivity", runSensitivity},
		{"exhaustion", "playback to battery exhaustion", runExhaustion},
		{"sa2", "§2.1: SA-2 voltage-scaling arithmetic", runSA2},
		{"dvs", "§2.1 projection: policies on an ideal DVS core", runDVS},
		{"weiser", "§3: Weiser trace-driven OPT/FUTURE/PAST scoring", runWeiser},
		{"zoo", "optimality gap: every registered policy vs the offline oracle", runZoo},
		{"fleet", "population-scale sweep: the policy zoo across a simulated device fleet", runFleet},
	}
}

// Find returns the named experiment.
func Find(name string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// svgArtifact renders a series as an SVG chart artifact; series that fail
// to plot are skipped rather than failing the experiment.
func svgArtifact(name string, s Series) []Artifact {
	line := plot.Line{Name: s.Name, Points: make([]plot.Point, 0, len(s.Points))}
	for _, p := range s.Points {
		line.Points = append(line.Points, plot.Point{X: p.X, Y: p.Y})
	}
	svg, err := plot.SVG(plot.Chart{
		Title:  s.Name,
		XLabel: s.XLabel,
		YLabel: s.YLabel,
		Lines:  []plot.Line{line},
	})
	if err != nil {
		return nil
	}
	return []Artifact{{Name: name, Content: svg}}
}

func runFigure3(env Env) (string, []Artifact, error) {
	panels, err := Figure3Panels(env)
	if err != nil {
		return "", nil, err
	}
	summary := ""
	var arts []Artifact
	for i, s := range panels {
		w := FigureWorkloads[i]
		summary += fmt.Sprintf("%-14s %s\n", w, s.Sparkline(72))
		arts = append(arts, Artifact{Name: "figure3_" + w + ".dat", Content: s.Render()})
		arts = append(arts, svgArtifact("figure3_"+w+".svg", s)...)
	}
	return summary, arts, nil
}

func runFigure4(env Env) (string, []Artifact, error) {
	panels, err := Figure4Panels(env)
	if err != nil {
		return "", nil, err
	}
	summary := ""
	var arts []Artifact
	for i, s := range panels {
		w := FigureWorkloads[i]
		summary += fmt.Sprintf("%-14s %s\n", w, s.Sparkline(72))
		arts = append(arts, Artifact{Name: "figure4_" + w + ".dat", Content: s.Render()})
		arts = append(arts, svgArtifact("figure4_"+w+".svg", s)...)
	}
	return summary, arts, nil
}

func runFigure5(Env) (string, []Artifact, error) {
	text := Figure5().Render()
	return text, []Artifact{{Name: "figure5.txt", Content: text}}, nil
}

func runTable1(Env) (string, []Artifact, error) {
	text := RenderTable1(Table1())
	return text, []Artifact{{Name: "table1.txt", Content: text}}, nil
}

func runFigure6(Env) (string, []Artifact, error) {
	s, err := Figure6(9)
	if err != nil {
		return "", nil, err
	}
	arts := append([]Artifact{{Name: "figure6.dat", Content: s.Render()}},
		svgArtifact("figure6.svg", s)...)
	return fmt.Sprintf("%s\n%s\n", s.Name, s.Sparkline(62)), arts, nil
}

func runFigure7(Env) (string, []Artifact, error) {
	s, osc, err := Figure7()
	if err != nil {
		return "", nil, err
	}
	summary := fmt.Sprintf("%s\n%s\nsteady-state oscillation: %.3f peak-to-peak around mean %.3f\n",
		s.Name, s.Sparkline(80), osc.PeakToPeak, osc.Mean)
	arts := append([]Artifact{{Name: "figure7.dat", Content: s.Render()}},
		svgArtifact("figure7.svg", s)...)
	return summary, arts, nil
}

func runFigure8(env Env) (string, []Artifact, error) {
	s, out, err := Figure8(env.Seed)
	if err != nil {
		return "", nil, err
	}
	summary := fmt.Sprintf("%s\n%s\nclock changes over 30s: %d; deadlines missed: %d\n",
		s.Name, s.Sparkline(80), out.Kernel.SpeedChanges(),
		out.Workload.Metrics().MissCount(table2Slack))
	arts := append([]Artifact{{Name: "figure8.dat", Content: s.Render()}},
		svgArtifact("figure8.svg", s)...)
	return summary, arts, nil
}

// figure9PaperPoints are utilization values read off the published Figure 9
// plot (approximate; the paper's x-axis runs 128–198 MHz). They exist only
// for the side-by-side comparison chart.
var figure9PaperPoints = []plot.Point{
	{X: 132.7, Y: 93}, {X: 147.5, Y: 84}, {X: 162.2, Y: 76},
	{X: 176.9, Y: 76}, {X: 191.7, Y: 73}, {X: 206.4, Y: 72},
}

func runFigure9(env Env) (string, []Artifact, error) {
	s, err := Figure9Env(env)
	if err != nil {
		return "", nil, err
	}
	summary := s.Name + "\n"
	for _, p := range s.Points {
		summary += fmt.Sprintf("  %6.1f MHz  %5.1f%%\n", p.X, p.Y)
	}
	arts := append([]Artifact{{Name: "figure9.dat", Content: s.Render()}},
		svgArtifact("figure9.svg", s)...)

	// Side-by-side with the published curve, over the paper's x-range.
	measured := plot.Line{Name: "measured (this reproduction)"}
	for _, p := range s.Points {
		if p.X >= 128 {
			measured.Points = append(measured.Points, plot.Point{X: p.X, Y: p.Y})
		}
	}
	if svg, err := plot.SVG(plot.Chart{
		Title:  "Figure 9: measured vs paper (plot-digitized, approximate)",
		XLabel: s.XLabel,
		YLabel: s.YLabel,
		Lines:  []plot.Line{measured, {Name: "paper (read off plot)", Points: figure9PaperPoints}},
	}); err == nil {
		arts = append(arts, Artifact{Name: "figure9_compare.svg", Content: svg})
	}
	return summary, arts, nil
}

func runTable2(env Env) (string, []Artifact, error) {
	rows, err := Table2Env(env)
	if err != nil {
		return "", nil, err
	}
	text := RenderTable2(rows)
	return text, []Artifact{{Name: "table2.txt", Content: text}}, nil
}

func runTable3(Env) (string, []Artifact, error) {
	text := RenderTable3(Table3())
	return text, []Artifact{{Name: "table3.txt", Content: text}}, nil
}

func runBattery(Env) (string, []Artifact, error) {
	res, err := BatteryLifetime()
	if err != nil {
		return "", nil, err
	}
	text := res.Render()
	return text, []Artifact{{Name: "battery.txt", Content: text}}, nil
}

func runTransitions(Env) (string, []Artifact, error) {
	res, err := TransitionCost()
	if err != nil {
		return "", nil, err
	}
	text := res.Render()
	return text, []Artifact{{Name: "transitions.txt", Content: text}}, nil
}

func runOverhead(Env) (string, []Artifact, error) {
	res, err := SchedulerOverhead()
	if err != nil {
		return "", nil, err
	}
	text := res.Render()
	return text, []Artifact{{Name: "overhead.txt", Content: text}}, nil
}

func runDeadline(env Env) (string, []Artifact, error) {
	rows, err := DeadlineComparisonEnv(env)
	if err != nil {
		return "", nil, err
	}
	text := RenderDeadlineComparison(rows)
	return text, []Artifact{{Name: "deadline.txt", Content: text}}, nil
}

func runMartin(Env) (string, []Artifact, error) {
	res, err := MartinOptimum(2.0)
	if err != nil {
		return "", nil, err
	}
	text := res.Render()
	return text, []Artifact{{Name: "martin.txt", Content: text}}, nil
}

func runPering(env Env) (string, []Artifact, error) {
	rows, err := PeringTradeoff(env.Seed)
	if err != nil {
		return "", nil, err
	}
	text := RenderPeringTradeoff(rows)
	return text, []Artifact{{Name: "pering.txt", Content: text}}, nil
}

func runPlayback(env Env) (string, []Artifact, error) {
	rows, err := PlaybackLifetime(env.Seed)
	if err != nil {
		return "", nil, err
	}
	text := RenderPlaybackLifetime(rows)
	return text, []Artifact{{Name: "playback.txt", Content: text}}, nil
}

func runSensitivity(env Env) (string, []Artifact, error) {
	cells, err := ThresholdSensitivityEnv(env)
	if err != nil {
		return "", nil, err
	}
	text := RenderSensitivity(cells)
	return text, []Artifact{{Name: "sensitivity.txt", Content: text}}, nil
}

func runExhaustion(env Env) (string, []Artifact, error) {
	rows, err := PlayUntilExhaustion(env.Seed)
	if err != nil {
		return "", nil, err
	}
	text := RenderExhaustion(rows)
	return text, []Artifact{{Name: "exhaustion.txt", Content: text}}, nil
}

func runSA2(Env) (string, []Artifact, error) {
	text := SA2Example().Render()
	return text, []Artifact{{Name: "sa2.txt", Content: text}}, nil
}

func runDVS(env Env) (string, []Artifact, error) {
	rows, err := IdealDVSComparison(env.Seed)
	if err != nil {
		return "", nil, err
	}
	text := RenderIdealDVS(rows)
	return text, []Artifact{{Name: "dvs.txt", Content: text}}, nil
}

func runWeiser(env Env) (string, []Artifact, error) {
	rows, err := WeiserOnWorkloads(env.Seed)
	if err != nil {
		return "", nil, err
	}
	text := RenderWeiser(rows)
	return text, []Artifact{{Name: "weiser.txt", Content: text}}, nil
}

func runZoo(env Env) (string, []Artifact, error) {
	rows, err := ZooComparison(env, 0)
	if err != nil {
		return "", nil, err
	}
	text := RenderZoo(rows)
	return text, []Artifact{{Name: "zoo.txt", Content: text}}, nil
}

// IndexHTML builds a small results index linking every artifact, with SVG
// figures inlined as images, so `cmd/experiments` leaves a browsable report
// behind.
func IndexHTML(artifacts []string) string {
	sb := &strings.Builder{}
	sb.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">" +
		"<title>Policies for Dynamic Clock Scheduling — reproduction results</title></head><body>\n")
	sb.WriteString("<h1>Policies for Dynamic Clock Scheduling — reproduction results</h1>\n")
	sb.WriteString("<p>Generated by <code>cmd/experiments</code>. " +
		"See EXPERIMENTS.md for the paper-vs-measured discussion.</p>\n<ul>\n")
	for _, name := range artifacts {
		fmt.Fprintf(sb, `<li><a href="%s">%s</a></li>`+"\n", name, name)
	}
	sb.WriteString("</ul>\n")
	for _, name := range artifacts {
		if strings.HasSuffix(name, ".svg") {
			fmt.Fprintf(sb, `<div><img src="%s" alt="%s"/></div>`+"\n", name, name)
		}
	}
	sb.WriteString("</body></html>\n")
	return sb.String()
}
