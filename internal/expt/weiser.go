package expt

import (
	"fmt"
	"strings"

	"clocksched/internal/cpu"
	"clocksched/internal/policy"
	"clocksched/internal/sim"
)

// This file applies Weiser et al.'s original trace-driven methodology —
// which the paper's Related Work section describes and critiques — to this
// reproduction's workloads: record a per-quantum utilization trace from a
// full-speed run, then score the offline OPT, FUTURE and PAST schedules on
// it using Weiser's speed² energy model. The point the paper makes is that
// only PAST is implementable, and OPT/FUTURE's headroom is exactly the
// energy the online heuristics fail to collect.

// WeiserRow is one workload's offline-schedule scoring.
type WeiserRow struct {
	Workload string
	// Energies are relative (Weiser's Σ work·speed² model), normalized so
	// running everything at full speed is 1.0.
	OptEnergy    float64
	FutureEnergy float64
	PastEnergy   float64
	// PastMissed is the work PAST left undone (fraction of total work) —
	// the lag cost that shows up as missed deadlines in a live system.
	PastMissed float64
}

// WeiserOnWorkloads records utilization traces from full-speed runs of the
// four applications and scores the offline schedules on each.
func WeiserOnWorkloads(seed uint64) ([]WeiserRow, error) {
	const floor = 0.01
	rows := make([]WeiserRow, 0, len(FigureWorkloads))
	for _, w := range FigureWorkloads {
		out, err := Run(RunSpec{
			Workload: w, Seed: seed,
			Duration:    30 * sim.Second,
			InitialStep: cpu.MaxStep,
		})
		if err != nil {
			return nil, err
		}
		util := make([]float64, 0, len(out.Kernel.UtilLog()))
		totalWork := 0.0
		for _, u := range out.Kernel.UtilLog() {
			v := float64(u.PP10K) / 10000
			util = append(util, v)
			totalWork += v
		}
		if totalWork == 0 {
			return nil, fmt.Errorf("weiser: workload %q recorded no work", w)
		}

		opt, err := policy.OptSpeeds(util, floor)
		if err != nil {
			return nil, err
		}
		fut, err := policy.FutureSpeeds(util, floor)
		if err != nil {
			return nil, err
		}
		pst, err := policy.PastSpeeds(util, floor)
		if err != nil {
			return nil, err
		}
		eOpt, err := policy.EvaluateSpeeds(util, opt, true)
		if err != nil {
			return nil, err
		}
		eFut, err := policy.EvaluateSpeeds(util, fut, false)
		if err != nil {
			return nil, err
		}
		ePst, err := policy.EvaluateSpeeds(util, pst, false)
		if err != nil {
			return nil, err
		}
		// Normalize by the full-speed energy: Σ work·1².
		rows = append(rows, WeiserRow{
			Workload:     w,
			OptEnergy:    eOpt.Energy / totalWork,
			FutureEnergy: eFut.Energy / totalWork,
			PastEnergy:   ePst.Energy / totalWork,
			PastMissed:   ePst.MissedWork / totalWork,
		})
	}
	return rows, nil
}

// RenderWeiser prints the scoring.
func RenderWeiser(rows []WeiserRow) string {
	var b strings.Builder
	b.WriteString("Weiser trace-driven scoring on this reproduction's workloads (energy relative to full speed)\n")
	fmt.Fprintf(&b, "%-10s %8s %8s %8s %12s\n", "workload", "OPT", "FUTURE", "PAST", "PAST missed")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8.3f %8.3f %8.3f %11.1f%%\n",
			r.Workload, r.OptEnergy, r.FutureEnergy, r.PastEnergy, r.PastMissed*100)
	}
	b.WriteString("OPT and FUTURE need future knowledge; PAST is implementable but lags — and the\n" +
		"missed-work column is what surfaces as missed deadlines in the live system.\n")
	return b.String()
}
