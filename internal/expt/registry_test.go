package expt

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 24 {
		t.Fatalf("%d experiments registered", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.Name == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.Name] {
			t.Errorf("duplicate name %q", e.Name)
		}
		seen[e.Name] = true
	}
	// The paper's evaluation section: every table and figure present.
	for _, want := range []string{
		"figure3", "figure4", "figure5", "figure6", "figure7", "figure8",
		"figure9", "table1", "table2", "table3",
	} {
		if !seen[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("table1"); !ok {
		t.Error("table1 not found")
	}
	if _, ok := Find("nope"); ok {
		t.Error("bogus name found")
	}
}

// TestRegistryRunsEverything executes every registered experiment end to
// end (the full paper reproduction) and checks each produces a summary and
// at least one artifact.
func TestRegistryRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full reproduction")
	}
	// The fleet experiment defaults to a 10k-device population; a few
	// hundred devices exercise the same code end to end in test time.
	t.Setenv("CLOCKSCHED_FLEET_DEVICES", "120")
	for _, e := range Registry() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			summary, artifacts, err := e.Run(DefaultEnv(1))
			if err != nil {
				t.Fatal(err)
			}
			if strings.TrimSpace(summary) == "" {
				t.Error("empty summary")
			}
			if len(artifacts) == 0 {
				t.Error("no artifacts")
			}
			for _, a := range artifacts {
				if a.Name == "" || strings.TrimSpace(a.Content) == "" {
					t.Errorf("empty artifact %q", a.Name)
				}
			}
		})
	}
}

func TestIndexHTML(t *testing.T) {
	html := IndexHTML([]string{"table2.txt", "figure9.svg"})
	for _, want := range []string{
		"<!DOCTYPE html>", `href="table2.txt"`, `img src="figure9.svg"`,
	} {
		if !strings.Contains(html, want) {
			t.Errorf("index missing %q", want)
		}
	}
	// Text artifacts are linked but not inlined as images.
	if strings.Contains(html, `img src="table2.txt"`) {
		t.Error("text artifact inlined as image")
	}
}

func TestFigure9CompareArtifact(t *testing.T) {
	_, arts, err := runFigure9(DefaultEnv(1))
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, a := range arts {
		names[a.Name] = true
	}
	for _, want := range []string{"figure9.dat", "figure9.svg", "figure9_compare.svg"} {
		if !names[want] {
			t.Errorf("missing artifact %q", want)
		}
	}
}
